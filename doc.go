// Package hivempi is a Go reproduction of "Accelerating Apache Hive
// with MPI for Data Warehouse Systems" (ICDCS 2015): a HiveQL data
// warehouse with two pluggable execution engines — Hadoop MapReduce and
// the paper's DataMPI bipartite communication engine — plus the full
// evaluation harness (Intel HiBench and TPC-H) that regenerates every
// table and figure of the paper's §V.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for measured
// paper-vs-reproduction results.
package hivempi
