package hivempi_test

// One benchmark per table and figure of the paper's evaluation (§V).
// Each executes the real workloads on both engines at reduced data
// scale, replays the traces through the calibrated cluster model, and
// reports the simulated seconds the corresponding figure plots as
// custom benchmark metrics. Run with:
//
//	go test -bench=. -benchmem
//
// The quick scale (1:8000) keeps the full suite to a few minutes; the
// cmd/benchsuite binary runs the 1:1000 reproduction and renders the
// full tables.

import (
	"os"
	"testing"

	"hivempi/internal/bench"
)

func newRunner(b *testing.B) *bench.Runner {
	b.Helper()
	cfg := bench.QuickConfig()
	dir, err := os.MkdirTemp("", "hivempi-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	cfg.SpillDir = dir
	return bench.NewRunner(cfg)
}

func BenchmarkTableI(b *testing.B) {
	r := newRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.TableI([]int{5}, []int{10})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.HiBench[5]["uservisits"]), "uservisits_bytes")
	}
}

func BenchmarkFigure1(b *testing.B) {
	r := newRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		var ms, tot float64
		for _, w := range res.Workloads {
			for _, j := range w.Jobs {
				ms += j.MapShuffle
				tot += j.Total()
			}
		}
		b.ReportMetric(100*ms/tot, "ms_share_pct")
	}
}

func BenchmarkFigure2(b *testing.B) {
	r := newRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AggSpread, "hive_endtime_spread")
		b.ReportMetric(res.TeraSpread, "terasort_endtime_spread")
	}
}

func BenchmarkFigure6(b *testing.B) {
	r := newRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BlockingOPhase, "blocking_s")
		b.ReportMetric(res.NonBlockingOPhase, "nonblocking_s")
	}
}

func BenchmarkFigure8(b *testing.B) {
	r := newRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MemPercent[0.4], "mem04_s")
		b.ReportMetric(res.MemPercent[1.0], "mem10_s")
		b.ReportMetric(res.SendQueue[2], "queue2_s")
		b.ReportMetric(res.SendQueue[6], "queue6_s")
	}
}

func BenchmarkFigure9(b *testing.B) {
	r := newRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure9([]int{5, 20})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.AverageGain(), "datampi_gain_pct")
	}
}

func BenchmarkFigure10(b *testing.B) {
	r := newRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		gains := res.MSGains()
		var sum float64
		for _, g := range gains {
			sum += g
		}
		if len(gains) > 0 {
			b.ReportMetric(100*sum/float64(len(gains)), "avg_ms_gain_pct")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	r := newRunner(b)
	qs := []int{1, 3, 6, 12, 14}
	for i := 0; i < b.N; i++ {
		res, err := r.TableII(qs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Cells)), "cells")
	}
}

func BenchmarkFigure11(b *testing.B) {
	r := newRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure11([]int{1, 9})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.StrategyGain("datampi"), "enhanced_gain_pct")
	}
}

func BenchmarkFigure12(b *testing.B) {
	r := newRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure12([]int{10, 20}, []int{3, 12})
		if err != nil {
			b.Fatal(err)
		}
		_, _, _, gain := res.BestCase()
		b.ReportMetric(100*gain, "best_gain_pct")
	}
}

func BenchmarkFigure13(b *testing.B) {
	r := newRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HadoopSeconds, "hadoop_q9_s")
		b.ReportMetric(res.DataMPISeconds, "datampi_q9_s")
	}
}

func BenchmarkTableIII(b *testing.B) {
	r := newRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.CoreLines), "plugin_lines")
	}
}
