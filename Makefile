GO ?= go

.PHONY: build test race vet fmt check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# check is the tier-1 verification gate: static checks, then the full
# suite under the race detector (covers the mpi/datampi concurrency
# tests and the chaos soak).
check: vet fmt build race

# bench runs the shuffle hot-path microbenchmarks (kvio framing,
# MPI_D_Send, dfs memory tier) and writes the parsed numbers to
# BENCH_shuffle.json.
bench:
	$(GO) test -run '^$$' -bench . -benchmem \
		./internal/kvio/ ./internal/datampi/ ./internal/dfs/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchfmt > BENCH_shuffle.json
