GO ?= go

.PHONY: build test race vet fmt lint sarif check bench benchdiff obscheck trace comm soak bundles

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# lint runs the project-specific analyzers (cmd/hivelint): wall-clock
# use in virtual-time packages, leaked MPI requests, lock-order cycles,
# per-call metric lookups on hot paths, unsignalled goroutines, and the
# determinism dataflow suite (map-order leaks into emission sinks,
# order-dependent float accumulation, per-iteration allocations on
# benchmarked hot paths). Exits non-zero on any finding not in the
# committed .hivelint-baseline.json.
lint:
	$(GO) run ./cmd/hivelint

# sarif emits the same findings as SARIF 2.1.0 for code scanning
# (fresh findings are errors; baselined ones stay visible as notes).
sarif:
	$(GO) run ./cmd/hivelint -sarif > hivelint.sarif

# obscheck vets and race-tests the observability plane (the metrics
# registry and the span/Chrome-trace exporter) explicitly; `race`
# covers them too, but this keeps the plane's gate visible on its own.
obscheck:
	$(GO) vet ./internal/obs/ ./internal/metrics/
	$(GO) test -race ./internal/obs/ ./internal/metrics/

# check is the tier-1 verification gate: static checks, then the full
# suite under the race detector (covers the mpi/datampi concurrency
# tests and the chaos soak).
check: vet fmt lint build obscheck race

# soak runs the failure-domain soak under the race detector: all 22
# TPC-H queries against the reference executor while seeded node-loss
# schedules (crash mid-stage, crash during re-replication, slow-node
# flap) tear at the cluster, plus the task/IO chaos soak. The verbose
# log lands in soak.log (uploaded as a CI artifact).
soak:
	$(GO) test -race -count=1 -v \
		-run 'TestNodeLossSoak|TestChaosSoak' ./internal/refexec/ \
		| tee soak.log

# bench runs the shuffle hot-path microbenchmarks (kvio framing,
# MPI_D_Send, dfs memory tier) and writes the parsed numbers to
# BENCH_shuffle.json.
# Each benchmark runs BENCH_COUNT times and benchfmt keeps the fastest
# run, which damps scheduler/noisy-neighbour interference in the
# committed numbers.
BENCH_COUNT ?= 3
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) \
		./internal/kvio/ ./internal/datampi/ ./internal/dfs/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchfmt > BENCH_shuffle.json
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) ./internal/vec/ ./internal/exec/ ./internal/storage/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchfmt > BENCH_vec.json
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) ./internal/adapt/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchfmt > BENCH_skew.json

# bundles captures run bundles (hivempi.bundle/v1) into BUNDLE_DIR:
# the seeded skew A/B pair (adaptation off vs. on — the reference
# regression for attribution) plus a Q1+Q9 capture bundle. Diff any two
# with `go run ./cmd/tracediff`.
BUNDLE_DIR ?= bundles
bundles:
	$(GO) run ./cmd/benchsuite -quick -exp skew -bundle $(BUNDLE_DIR)

# benchdiff re-runs the shuffle and vectorized microbenchmarks and
# compares them to the committed BENCH_shuffle.json / BENCH_vec.json
# baselines; it fails on a ns/op regression past BENCH_TOL (or any
# allocs/op growth). CI runs this blocking at the default 10%; label a
# PR `bench-regression-ok` to demote the gate to advisory when a
# regression is intentional (see README). Override locally with e.g.
# `make benchdiff BENCH_TOL=0.30` on noisy machines. When the gate
# trips, -attr appends tracediff attribution from the BUNDLE_DIR pairs
# so the failure names the regressing category, not just a percentage.
BENCH_TOL ?= 0.10
benchdiff: bundles
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) \
		./internal/kvio/ ./internal/datampi/ ./internal/dfs/ \
		| $(GO) run ./cmd/benchfmt > /tmp/bench_current.json
	$(GO) run ./cmd/benchdiff -tolerance $(BENCH_TOL) -attr $(BUNDLE_DIR) BENCH_shuffle.json /tmp/bench_current.json
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) ./internal/vec/ ./internal/exec/ ./internal/storage/ \
		| $(GO) run ./cmd/benchfmt > /tmp/bench_vec_current.json
	$(GO) run ./cmd/benchdiff -tolerance $(BENCH_TOL) -attr $(BUNDLE_DIR) BENCH_vec.json /tmp/bench_vec_current.json
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) ./internal/adapt/ \
		| $(GO) run ./cmd/benchfmt > /tmp/bench_skew_current.json
	$(GO) run ./cmd/benchdiff -tolerance $(BENCH_TOL) -attr $(BUNDLE_DIR) BENCH_skew.json /tmp/bench_skew_current.json

# comm runs TPC-H Q1 (aggregate) + Q9 (join) on DataMPI at quick scale
# and writes the communication report — per-stage O x A shuffle
# matrices with skew statistics — to BENCH_comm.json (the committed
# snapshot of the comm plane's output).
comm:
	$(GO) run ./cmd/benchsuite -quick -exp none -comm BENCH_comm.json

# trace runs TPC-H Q9 DAG-parallel at quick scale and exports its
# Chrome trace-event timeline (schema-checked by benchsuite before the
# file is written). Open /tmp/q9.trace.json in Perfetto.
trace:
	$(GO) run ./cmd/benchsuite -quick -exp dag -trace /tmp/q9.trace.json
