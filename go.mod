module hivempi

go 1.22
