// TPC-H analytics walk-through: load the warehouse, EXPLAIN a query's
// stage DAG, run representative queries on both engines and both file
// formats, and report the simulated cluster times the paper's Table II
// compares.
package main

import (
	"fmt"
	"log"
	"os"

	"hivempi/internal/core"
	"hivempi/internal/dfs"
	"hivempi/internal/exec"
	"hivempi/internal/hive"
	"hivempi/internal/mrengine"
	"hivempi/internal/perfmodel"
	"hivempi/internal/tpch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func newDriver(engine exec.Engine, format string) (*hive.Driver, error) {
	env := &exec.Env{FS: dfs.New(dfs.Config{
		BlockSize: 64 << 10,
		Nodes: []string{"slave1", "slave2", "slave3", "slave4",
			"slave5", "slave6", "slave7"},
	})}
	conf := exec.DefaultEngineConf()
	conf.SpillDir = os.TempDir()
	conf.Parallelism = exec.ParallelismEnhanced
	d := hive.NewDriver(env, engine, conf)
	// "10 GB" at 1:1000 scale = SF 0.01.
	if err := tpch.Load(d, 0.01, 42, format, 4); err != nil {
		return nil, err
	}
	return d, nil
}

func run() error {
	// 1. Show the compiled plan of Q3 (customer x orders x lineitem).
	d, err := newDriver(core.New(), "textfile")
	if err != nil {
		return err
	}
	q3, _ := tpch.Query(3)
	stmts := hive.SplitStatements(q3)
	res, err := d.Execute("EXPLAIN " + stmts[len(stmts)-1])
	if err != nil {
		return err
	}
	fmt.Println("== TPC-H Q3 plan ==")
	fmt.Println(res.Plan)

	// 2. Run Q3, Q6 and Q12 on every engine x format combination.
	model := perfmodel.DefaultParams()
	fmt.Println("== simulated cluster seconds (10 GB, enhanced parallelism) ==")
	fmt.Println("query  engine   format        rows   sim_s")
	for _, q := range []int{3, 6, 12} {
		script, err := tpch.Query(q)
		if err != nil {
			return err
		}
		for _, format := range []string{"textfile", "orc"} {
			for _, engine := range []exec.Engine{mrengine.New(), core.New()} {
				d, err := newDriver(engine, format)
				if err != nil {
					return err
				}
				d.Collector.Reset()
				results, err := d.Run(script)
				if err != nil {
					return err
				}
				var sim float64
				for _, tr := range d.Collector.Queries() {
					sim += model.SimulateQuery(tr).Total
				}
				last := results[len(results)-1]
				fmt.Printf("%-6s %-8s %-10s %7d  %6.1f\n",
					tpch.QueryName(q), engine.Name(), format, len(last.Rows), sim)
			}
		}
	}
	fmt.Println("\nDataMPI should win each pairing, with ORC ahead of Text (paper Table II).")
	return nil
}
