// Web-log analytics: the workload family the paper's introduction
// motivates (HiBench-style page-visit logs). Builds a revenue report
// with a join between the rankings catalogue and the Zipfian visit log,
// then contrasts the blocking and non-blocking DataMPI shuffle styles
// on the same query (the paper's Fig. 6 experiment, programmatically).
package main

import (
	"fmt"
	"log"
	"os"

	"hivempi/internal/core"
	"hivempi/internal/dfs"
	"hivempi/internal/exec"
	"hivempi/internal/hibench"
	"hivempi/internal/hive"
	"hivempi/internal/perfmodel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func newDriver(nonBlocking bool) (*hive.Driver, error) {
	env := &exec.Env{FS: dfs.New(dfs.Config{
		BlockSize: 64 << 10,
		Nodes: []string{"slave1", "slave2", "slave3", "slave4",
			"slave5", "slave6", "slave7"},
	})}
	conf := exec.DefaultEngineConf()
	conf.SpillDir = os.TempDir()
	conf.NonBlocking = nonBlocking
	d := hive.NewDriver(env, core.New(), conf)
	d.MapJoinThresholdBytes = 1 // common join, as at paper scale
	// "5 GB" of logs at 1:1000.
	if err := hibench.Load(d, 5<<20, 7, "sequencefile", 4); err != nil {
		return nil, err
	}
	return d, nil
}

func run() error {
	d, err := newDriver(true)
	if err != nil {
		return err
	}

	// Top pages by ad revenue, with their catalogue rank.
	res, err := d.Execute(`
		SELECT r.pageurl, r.pagerank, sum(u.adrevenue) AS revenue, count(*) AS visits
		FROM rankings r JOIN uservisits u ON r.pageurl = u.desturl
		GROUP BY r.pageurl, r.pagerank
		ORDER BY revenue DESC
		LIMIT 5`)
	if err != nil {
		return err
	}
	fmt.Println("top pages by revenue (Zipfian skew makes the head heavy):")
	for _, row := range res.Rows {
		fmt.Printf("  %-42s rank=%4d revenue=%10.2f visits=%d\n",
			row[0].Str(), row[1].Int(), row[2].Float(), row[3].Int())
	}

	// Revenue per country for one quarter.
	res, err = d.Execute(`
		SELECT countrycode, sum(adrevenue) AS revenue
		FROM uservisits
		WHERE visitdate BETWEEN DATE '1999-01-01' AND DATE '1999-03-31'
		GROUP BY countrycode
		ORDER BY revenue DESC`)
	if err != nil {
		return err
	}
	fmt.Println("\nQ1-1999 revenue by country:")
	for _, row := range res.Rows {
		fmt.Printf("  %s  %12.2f\n", row[0].Str(), row[1].Float())
	}

	// Blocking vs non-blocking shuffle on the full JOIN workload.
	model := perfmodel.DefaultParams()
	fmt.Println("\nshuffle style comparison on the HiBench JOIN workload:")
	for _, nb := range []bool{false, true} {
		d, err := newDriver(nb)
		if err != nil {
			return err
		}
		d.Collector.Reset()
		if _, err := d.Run(hibench.JoinQuery); err != nil {
			return err
		}
		var sim float64
		for _, q := range d.Collector.Queries() {
			sim += model.SimulateQuery(q).Total
		}
		style := "blocking"
		if nb {
			style = "non-blocking"
		}
		fmt.Printf("  %-13s simulated %6.1fs\n", style, sim)
	}
	fmt.Println("(the non-blocking engine overlaps O-task compute with the shuffle — paper Fig. 6)")
	return nil
}
