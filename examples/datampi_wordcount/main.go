// DataMPI library usage without the Hive layer: a bipartite
// (COMM_BIPARTITE_O / COMM_BIPARTITE_A) word count with a combiner,
// the programming model the paper's §II describes.
package main

import (
	"fmt"
	"io"
	"log"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hivempi/internal/datampi"
)

var corpus = strings.Fields(strings.Repeat(
	"the quick brown fox jumps over the lazy dog and the dog barks back ", 500))

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	job, err := datampi.NewJob(datampi.Config{
		NumO:        4,
		NumA:        2,
		NonBlocking: true, // the paper's optimized shuffle style
		// Fold counts before transmission, like a MapReduce combiner.
		Combiner: func(key []byte, values [][]byte) [][]byte {
			total := 0
			for _, v := range values {
				n, _ := strconv.Atoi(string(v))
				total += n
			}
			return [][]byte{[]byte(strconv.Itoa(total))}
		},
	})
	if err != nil {
		return err
	}

	var mu sync.Mutex
	counts := map[string]int{}

	err = job.Run(
		// O task (operator / map side): MPI_D_Send per word.
		func(o *datampi.OContext) error {
			per := (len(corpus) + o.Size() - 1) / o.Size()
			lo, hi := o.Rank()*per, (o.Rank()+1)*per
			if hi > len(corpus) {
				hi = len(corpus)
			}
			for _, w := range corpus[lo:hi] {
				if err := o.Send([]byte(w), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		},
		// A task (aggregator / reduce side): grouped iterator in key order.
		func(a *datampi.AContext) error {
			for {
				key, vals, err := a.NextGroup()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				total := 0
				for _, v := range vals {
					n, _ := strconv.Atoi(string(v))
					total += n
				}
				mu.Lock()
				counts[string(key)] += total
				mu.Unlock()
			}
		})
	if err != nil {
		return err
	}

	var words []string
	for w := range counts {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool { return counts[words[i]] > counts[words[j]] })
	fmt.Println("word counts via DataMPI bipartite communication:")
	for _, w := range words {
		fmt.Printf("  %-6s %d\n", w, counts[w])
	}

	// The job records the same trace metrics the engines feed into the
	// performance model.
	var sent int64
	for _, m := range job.OMetrics() {
		sent += m.ShuffleOutBytes
	}
	fmt.Printf("shuffled %d bytes through the non-blocking engine (combiner applied)\n", sent)
	return nil
}
