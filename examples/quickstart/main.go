// Quickstart: spin up an in-process warehouse, create a table, load
// rows, and run the same HiveQL on both execution engines.
package main

import (
	"fmt"
	"log"
	"os"

	"hivempi/internal/core"
	"hivempi/internal/dfs"
	"hivempi/internal/exec"
	"hivempi/internal/hive"
	"hivempi/internal/mrengine"
	"hivempi/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A simulated 7-node cluster: the DFS places replicated 64 KB
	// blocks (64 MB at paper scale) across the slaves.
	env := &exec.Env{FS: dfs.New(dfs.Config{
		BlockSize: 64 << 10,
		Nodes: []string{"slave1", "slave2", "slave3", "slave4",
			"slave5", "slave6", "slave7"},
	})}
	conf := exec.DefaultEngineConf()
	conf.SpillDir = os.TempDir()

	for _, engine := range []exec.Engine{core.New(), mrengine.New()} {
		d := hive.NewDriver(env, engine, conf)

		if _, err := d.Run(`
			CREATE TABLE visits (page string, country string, ms bigint) STORED AS orc;
		`); err != nil {
			return err
		}
		var rows []types.Row
		pages := []string{"/home", "/home", "/home", "/search", "/search",
			"/checkout", "/about"} // skewed traffic
		countries := []string{"DE", "US", "JP"}
		for i := 0; i < 10000; i++ {
			rows = append(rows, types.Row{
				types.String(pages[i%len(pages)]),
				types.String(countries[i%len(countries)]),
				types.Int(int64(10 + i%500)),
			})
		}
		if err := d.LoadTableData("visits", 0, rows); err != nil {
			return err
		}

		res, err := d.Execute(`
			SELECT page, count(*) AS hits, avg(ms) AS avg_ms
			FROM visits
			WHERE country IN ('DE', 'US')
			GROUP BY page
			HAVING count(*) > 100
			ORDER BY hits DESC
			LIMIT 3`)
		if err != nil {
			return err
		}
		fmt.Printf("engine=%s (%d stages)\n", engine.Name(), len(res.Stages))
		fmt.Println("  page        hits   avg_ms")
		for _, r := range res.Rows {
			fmt.Printf("  %-10s %5d   %6.1f\n", r[0].Str(), r[1].Int(), r[2].Float())
		}

		// Same cluster, next engine: drop the table so the second pass
		// starts clean.
		if _, err := d.Execute("DROP TABLE visits"); err != nil {
			return err
		}
	}
	return nil
}
