package cluster

import (
	"reflect"
	"testing"

	"hivempi/internal/chaos"
	"hivempi/internal/metrics"
	"hivempi/internal/testutil/leakcheck"
)

func newTestMembership(plan chaos.Plan) *Membership {
	m := New(Config{Nodes: []string{"s1", "s2", "s3", "s4"}})
	m.SetChaos(chaos.NewPlane(plan))
	return m
}

// TestCrashToDead walks a crashed node through the full detector
// timeline: UP while within the suspect threshold, SUSPECT past 2.5
// intervals, DEAD past 6.
func TestCrashToDead(t *testing.T) {
	defer leakcheck.Check(t)()
	m := newTestMembership(chaos.Plan{Specs: []chaos.Spec{
		{Kind: chaos.NodeCrash, Node: "s2"},
	}})
	var events []Event
	m.Subscribe(func(ev Event) { events = append(events, ev) })

	// The crash fires at the first heartbeat consultation (now=1); the
	// node's last beat stays at 0 forever.
	m.Advance(2) // now=2, stale=2 <= 2.5
	if !m.IsUp("s2") {
		t.Fatal("s2 suspect before the threshold")
	}
	m.Advance(1) // now=3, stale=3 > 2.5
	if st, _ := m.State("s2"); st != Suspect {
		t.Fatalf("s2 state = %v, want SUSPECT", st)
	}
	if m.IsUp("s2") {
		t.Fatal("SUSPECT node reports up")
	}
	m.Advance(3) // now=6, stale=6: not yet past DeadAfterSec
	if st, _ := m.State("s2"); st != Suspect {
		t.Fatalf("s2 state = %v, want SUSPECT at the boundary", st)
	}
	m.Advance(1) // now=7, stale=7 > 6
	if st, _ := m.State("s2"); st != Dead {
		t.Fatalf("s2 state = %v, want DEAD", st)
	}

	want := []Event{
		{Node: "s2", From: Up, To: Suspect, At: 3},
		{Node: "s2", From: Suspect, To: Dead, At: 7},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %+v, want %+v", events, want)
	}
	if got := m.UpNodes(); !reflect.DeepEqual(got, []string{"s1", "s3", "s4"}) {
		t.Fatalf("UpNodes = %v", got)
	}
	up, suspect, dead := m.Counts()
	if up != 3 || suspect != 0 || dead != 1 {
		t.Fatalf("counts = %d/%d/%d, want 3/0/1", up, suspect, dead)
	}
}

// TestPauseFlapsAndRecovers pins the GC-pause analogue: heartbeats
// freeze for DelaySec, the node flaps through SUSPECT, and the first
// post-pause beat recovers it to UP without dying.
func TestPauseFlapsAndRecovers(t *testing.T) {
	defer leakcheck.Check(t)()
	m := newTestMembership(chaos.Plan{Specs: []chaos.Spec{
		{Kind: chaos.NodePause, Node: "s3", DelaySec: 4},
	}})
	var events []Event
	m.Subscribe(func(ev Event) { events = append(events, ev) })

	// Pause fires at now=1 (pausedUntil=5): beats at 2,3,4 are lost,
	// the beat at 5 lands again.
	m.Advance(7)
	want := []Event{
		{Node: "s3", From: Up, To: Suspect, At: 3},
		{Node: "s3", From: Suspect, To: Up, At: 5},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %+v, want %+v", events, want)
	}
	if !m.IsUp("s3") {
		t.Fatal("s3 did not recover after the pause")
	}
}

// TestSlowBeatsFlapSuspect pins the slow-node semantics: a run of
// heartbeats each arriving DelaySec late pushes staleness past the
// suspect threshold without ever reaching DEAD, and the first on-time
// beat recovers the node.
func TestSlowBeatsFlapSuspect(t *testing.T) {
	defer leakcheck.Check(t)()
	m := newTestMembership(chaos.Plan{Specs: []chaos.Spec{
		{Kind: chaos.NodeSlow, Node: "s4", After: 2, DelaySec: 3, Count: 3},
	}})
	var events []Event
	m.Subscribe(func(ev Event) { events = append(events, ev) })

	// Clean beats at 1,2 (warm-up); slow beats at 3,4,5 are 3s stale so
	// none moves lastBeat past 2; at now=5 stale=3 > 2.5 -> SUSPECT;
	// clean beat at 6 recovers.
	m.Advance(8)
	want := []Event{
		{Node: "s4", From: Up, To: Suspect, At: 5},
		{Node: "s4", From: Suspect, To: Up, At: 6},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %+v, want %+v", events, want)
	}
	if st, _ := m.State("s4"); st != Up {
		t.Fatalf("s4 state = %v after recovery, want UP", st)
	}
}

// TestJoinAndRevive covers operator actions: MarkDead fences a node,
// Join revives it empty, and Join of a brand-new node extends the
// membership.
func TestJoinAndRevive(t *testing.T) {
	defer leakcheck.Check(t)()
	m := newTestMembership(chaos.Plan{})
	var events []Event
	m.Subscribe(func(ev Event) { events = append(events, ev) })

	if err := m.MarkDead("nope"); err == nil {
		t.Fatal("MarkDead accepted an unknown node")
	}
	if err := m.MarkDead("s1"); err != nil {
		t.Fatal(err)
	}
	if m.IsUp("s1") {
		t.Fatal("fenced node reports up")
	}
	m.Join("s1")
	if !m.IsUp("s1") {
		t.Fatal("revived node not up")
	}
	m.Join("s5")
	if !m.IsUp("s5") {
		t.Fatal("joined node not up")
	}
	if m.IsUp("s6") {
		t.Fatal("unknown node reports up")
	}
	want := []Event{
		{Node: "s1", From: Up, To: Dead, At: 0},
		{Node: "s1", From: Dead, To: Up, At: 0},
		{Node: "s5", From: Dead, To: Up, At: 0},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %+v, want %+v", events, want)
	}
	// A fenced node stays dead through detector rounds (crashed flag),
	// a revived one keeps beating.
	if err := m.MarkDead("s2"); err != nil {
		t.Fatal(err)
	}
	m.Advance(10)
	if st, _ := m.State("s2"); st != Dead {
		t.Fatalf("fenced s2 = %v after advance, want DEAD", st)
	}
	if !m.IsUp("s1") || !m.IsUp("s5") {
		t.Fatal("live nodes flapped without faults")
	}
}

// TestMetricsGauges checks the published populations track transitions.
func TestMetricsGauges(t *testing.T) {
	defer leakcheck.Check(t)()
	m := newTestMembership(chaos.Plan{Specs: []chaos.Spec{
		{Kind: chaos.NodeCrash, Node: "s2"},
	}})
	r := metrics.NewRegistry()
	m.SetMetrics(r)
	if got := r.Gauge(metrics.GaugeClusterUp).Value(); got != 4 {
		t.Fatalf("initial up gauge = %d, want 4", got)
	}
	m.Advance(7) // crash at 1, suspect at 3, dead at 7
	if got := r.Gauge(metrics.GaugeClusterUp).Value(); got != 3 {
		t.Fatalf("up gauge = %d, want 3", got)
	}
	if got := r.Gauge(metrics.GaugeClusterDead).Value(); got != 1 {
		t.Fatalf("dead gauge = %d, want 1", got)
	}
	if got := r.Counter(metrics.CtrClusterFlaps).Value(); got != 2 {
		t.Fatalf("transition counter = %d, want 2 (up->suspect->dead)", got)
	}
}

// TestDeterministicSchedule runs the same plan twice and requires the
// identical event tape — the property the chaos soak leans on.
func TestDeterministicSchedule(t *testing.T) {
	defer leakcheck.Check(t)()
	run := func() []Event {
		m := newTestMembership(chaos.Plan{Seed: 11, Specs: []chaos.Spec{
			{Kind: chaos.NodeCrash, Node: "s2", After: 3},
			{Kind: chaos.NodePause, Node: "s4", DelaySec: 4, After: 1},
		}})
		var events []Event
		m.Subscribe(func(ev Event) { events = append(events, ev) })
		for i := 0; i < 15; i++ {
			m.Advance(1)
		}
		return events
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan diverged:\n a %+v\n b %+v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("plan produced no transitions")
	}
}

// TestPartialAdvanceGrowsStaleness: sub-interval advances move the
// clock (staleness accrues) without landing beats.
func TestPartialAdvanceGrowsStaleness(t *testing.T) {
	defer leakcheck.Check(t)()
	m := newTestMembership(chaos.Plan{})
	m.Advance(1) // beats land, lastBeat=1
	m.Advance(0.6)
	if got := m.Now(); got != 1.6 {
		t.Fatalf("Now = %v, want 1.6", got)
	}
	if !m.IsUp("s1") {
		t.Fatal("node flapped inside one interval")
	}
}
