// Package cluster is the node-level failure domain: a virtual-time
// cluster-membership table driven by a heartbeat failure detector.
// Every data node is UP, SUSPECT or DEAD; the detector advances in
// heartbeat intervals of virtual seconds (the same clock the perfmodel
// charges), consulting the chaos plane's NodeCrash/NodePause/NodeSlow
// plans to decide which heartbeats arrive. State transitions are
// published to subscribed watchers — the dfs uses them to fail reads
// over, drop dead replicas and trigger re-replication, and the
// scheduler uses the UP view to blacklist placement.
//
// Timing model: a node's heartbeat normally lands every
// HeartbeatInterval virtual seconds. A node whose last heartbeat is
// older than SuspectAfterSec becomes SUSPECT (still holding readable
// replicas — it may just be slow); older than DeadAfterSec becomes
// DEAD, which is the point of no return for its replicas. A SUSPECT
// node that beats again recovers to UP; a DEAD node only returns via
// Join (operator action), re-entering empty like a reformatted HDFS
// datanode.
package cluster

import (
	"fmt"
	"sync"

	"hivempi/internal/chaos"
	"hivempi/internal/metrics"
)

// State is a node's membership state.
type State int

// Node states.
const (
	Up State = iota
	Suspect
	Dead
)

// String returns the conventional upper-case label.
func (s State) String() string {
	switch s {
	case Up:
		return "UP"
	case Suspect:
		return "SUSPECT"
	case Dead:
		return "DEAD"
	default:
		return "?"
	}
}

// Config describes the detector deployment.
type Config struct {
	// Nodes is the initial membership (all UP).
	Nodes []string
	// HeartbeatInterval is the virtual seconds between heartbeats
	// (default 1.0).
	HeartbeatInterval float64
	// SuspectAfterSec marks a node SUSPECT when its last heartbeat is
	// older than this (default 2.5 intervals).
	SuspectAfterSec float64
	// DeadAfterSec declares a node DEAD when its last heartbeat is
	// older than this (default 6 intervals).
	DeadAfterSec float64
}

// Event is one state transition, published to watchers.
type Event struct {
	Node string
	From State
	To   State
	At   float64 // virtual seconds since the membership started
}

type nodeState struct {
	name        string
	state       State
	lastBeat    float64
	pausedUntil float64
	crashed     bool
}

// Membership is the live membership table. All methods are safe for
// concurrent use. Watchers are invoked outside the table lock (so they
// may call back into IsUp/State), in Subscribe order, serialized per
// Advance/MarkDead/Join call.
type Membership struct {
	mu       sync.Mutex
	cfg      Config
	now      float64
	nodes    map[string]*nodeState
	order    []string // deterministic iteration order
	plane    *chaos.Plane
	watchers []func(Event)
	epoch    int64 // membership generation: bumped on every state transition

	gUp, gSuspect, gDead *metrics.Gauge
	ctrFlaps             *metrics.Counter
}

// New builds a membership table with every node UP at virtual time 0.
func New(cfg Config) *Membership {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 1.0
	}
	if cfg.SuspectAfterSec <= 0 {
		cfg.SuspectAfterSec = 2.5 * cfg.HeartbeatInterval
	}
	if cfg.DeadAfterSec <= cfg.SuspectAfterSec {
		cfg.DeadAfterSec = 6 * cfg.HeartbeatInterval
	}
	m := &Membership{cfg: cfg, nodes: make(map[string]*nodeState, len(cfg.Nodes))}
	for _, n := range cfg.Nodes {
		m.nodes[n] = &nodeState{name: n, state: Up}
		m.order = append(m.order, n)
	}
	return m
}

// SetChaos attaches the fault plane consulted at each heartbeat; nil
// detaches it (all heartbeats arrive on time).
func (m *Membership) SetChaos(p *chaos.Plane) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.plane = p
}

// SetMetrics attaches an observability registry: node-state populations
// are published as gauges and transitions as a counter. Nil detaches.
func (m *Membership) SetMetrics(r *metrics.Registry) {
	m.mu.Lock()
	m.gUp = r.Gauge(metrics.GaugeClusterUp)
	m.gSuspect = r.Gauge(metrics.GaugeClusterSuspect)
	m.gDead = r.Gauge(metrics.GaugeClusterDead)
	m.ctrFlaps = r.Counter(metrics.CtrClusterFlaps)
	m.publishLocked()
	m.mu.Unlock()
}

// Subscribe registers a watcher for state-transition events. Watchers
// run outside the membership lock and must not block indefinitely.
func (m *Membership) Subscribe(fn func(Event)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.watchers = append(m.watchers, fn)
}

// Interval returns the configured heartbeat interval in virtual seconds.
func (m *Membership) Interval() float64 { return m.cfg.HeartbeatInterval }

// Now returns the current virtual time of the detector.
func (m *Membership) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// IsUp reports whether the node is UP. Unknown nodes report false —
// schedulers must not place work on hosts the membership has never
// seen. (Implements the exec.NodeView the engines consult.)
func (m *Membership) IsUp(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ns, ok := m.nodes[node]
	return ok && ns.state == Up
}

// State returns the node's state and whether it is known.
func (m *Membership) State(node string) (State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ns, ok := m.nodes[node]
	if !ok {
		return Dead, false
	}
	return ns.state, true
}

// UpNodes returns the UP nodes in membership order.
func (m *Membership) UpNodes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, n := range m.order {
		if m.nodes[n].state == Up {
			out = append(out, n)
		}
	}
	return out
}

// Epoch returns the membership generation counter: it advances on
// every node state transition (detector or administrative) and on
// every join, so any two calls straddling a topology change observe
// different values. The plan cache folds it into its fingerprint so a
// compiled plan never outlives the cluster shape it was sized for.
func (m *Membership) Epoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Counts returns the (up, suspect, dead) populations.
func (m *Membership) Counts() (up, suspect, dead int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.countsLocked()
}

func (m *Membership) countsLocked() (up, suspect, dead int) {
	for _, ns := range m.nodes {
		switch ns.state {
		case Up:
			up++
		case Suspect:
			suspect++
		case Dead:
			dead++
		}
	}
	return
}

func (m *Membership) publishLocked() {
	up, suspect, dead := m.countsLocked()
	m.gUp.Set(int64(up))
	m.gSuspect.Set(int64(suspect))
	m.gDead.Set(int64(dead))
}

// Advance moves the detector forward dt virtual seconds, processing one
// heartbeat round per elapsed interval: every non-crashed, non-paused
// node beats (the chaos plane may crash it, pause it, or deliver the
// beat late), then staleness thresholds drive UP -> SUSPECT -> DEAD.
// Fired events are returned and also delivered to watchers.
func (m *Membership) Advance(dt float64) []Event {
	var events []Event
	m.mu.Lock()
	for dt > 0 {
		step := m.cfg.HeartbeatInterval
		if dt < step {
			// Partial intervals still advance the clock (staleness keeps
			// growing) but land no fresh heartbeats.
			m.now += dt
			events = append(events, m.detectLocked()...)
			break
		}
		dt -= step
		m.now += step
		m.beatLocked()
		events = append(events, m.detectLocked()...)
	}
	m.publishLocked()
	watchers := append([]func(Event){}, m.watchers...)
	m.mu.Unlock()
	m.deliver(watchers, events)
	return events
}

// beatLocked lands one heartbeat round at m.now.
func (m *Membership) beatLocked() {
	for _, name := range m.order {
		ns := m.nodes[name]
		if ns.crashed || ns.state == Dead {
			continue
		}
		if m.now < ns.pausedUntil {
			continue // paused: heartbeat lost, staleness grows
		}
		// Chaos consultation order is the deterministic membership order,
		// so a plan's Count/After budgets position faults reproducibly.
		if m.plane.NodeCrash(name) {
			ns.crashed = true
			continue
		}
		if d := m.plane.NodePause(name); d > 0 {
			ns.pausedUntil = m.now + d
			continue
		}
		beat := m.now
		if d := m.plane.NodeSlow(name); d > 0 {
			beat -= d // the beat that lands now is d seconds stale
		}
		if beat > ns.lastBeat {
			ns.lastBeat = beat
		}
	}
}

// detectLocked applies the staleness thresholds and returns transitions.
func (m *Membership) detectLocked() []Event {
	var events []Event
	for _, name := range m.order {
		ns := m.nodes[name]
		if ns.state == Dead {
			continue
		}
		stale := m.now - ns.lastBeat
		var want State
		switch {
		case stale > m.cfg.DeadAfterSec:
			want = Dead
		case stale > m.cfg.SuspectAfterSec:
			want = Suspect
		default:
			want = Up
		}
		if want != ns.state {
			events = append(events, Event{Node: name, From: ns.state, To: want, At: m.now})
			ns.state = want
			m.epoch++
			m.ctrFlaps.Inc()
		}
	}
	return events
}

func (m *Membership) deliver(watchers []func(Event), events []Event) {
	for _, ev := range events {
		for _, w := range watchers {
			w(ev)
		}
	}
}

// MarkDead administratively declares the node DEAD (decommission /
// fencing path), firing the transition like a detector decision.
func (m *Membership) MarkDead(node string) error {
	m.mu.Lock()
	ns, ok := m.nodes[node]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %q", node)
	}
	var events []Event
	if ns.state != Dead {
		events = append(events, Event{Node: node, From: ns.state, To: Dead, At: m.now})
		ns.state = Dead
		ns.crashed = true
		m.epoch++
		m.ctrFlaps.Inc()
		m.publishLocked()
	}
	watchers := append([]func(Event){}, m.watchers...)
	m.mu.Unlock()
	m.deliver(watchers, events)
	return nil
}

// Join adds a fresh node (or revives a DEAD one) as UP with a current
// heartbeat. Reviving publishes a Dead -> Up event; watchers treat it
// as an empty rejoin (its old replicas were dropped at death).
func (m *Membership) Join(node string) {
	m.mu.Lock()
	var events []Event
	ns, ok := m.nodes[node]
	if !ok {
		m.nodes[node] = &nodeState{name: node, state: Up, lastBeat: m.now}
		m.order = append(m.order, node)
		m.epoch++
		events = append(events, Event{Node: node, From: Dead, To: Up, At: m.now})
	} else if ns.state != Up {
		events = append(events, Event{Node: node, From: ns.state, To: Up, At: m.now})
		ns.state = Up
		ns.crashed = false
		ns.pausedUntil = 0
		ns.lastBeat = m.now
		m.epoch++
		m.ctrFlaps.Inc()
	}
	m.publishLocked()
	watchers := append([]func(Event){}, m.watchers...)
	m.mu.Unlock()
	m.deliver(watchers, events)
}
