package mpi

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrDeadlock is the sentinel the opt-in deadlock watchdog wraps when
// it aborts a world whose parked receives form a wait cycle.
var ErrDeadlock = errors.New("mpi: deadlock detected")

// watchdog is the opt-in communicator deadlock sentinel (MPI_CHECK=1
// or World.SetDeadlockCheck). It tracks which rank every parked
// receive waits on; when a new park closes a cycle of ranks all parked
// with no matching message in flight, it aborts the world with a
// deterministic rank/tag report. The check assumes the CommonProcess
// discipline the paper's engine uses — one goroutine drives one rank —
// so a rank parked in a receive cannot produce the send another parked
// rank is waiting for. Wildcard (AnySource) receives never contribute
// edges: they cannot name the rank they depend on.
type watchdog struct {
	mu    sync.Mutex
	waits map[int][]*parkedWait // rank -> currently parked receives
}

// parkedWait is one receive that has reached the blocking point.
type parkedWait struct {
	me, src, tag int
	ch           chan message
	satisfied    bool // sender has (or is about to) deliver; guarded by watchdog.mu
}

func newWatchdog() *watchdog {
	return &watchdog{waits: make(map[int][]*parkedWait)}
}

// register records a parked receive and reports the wait cycle it
// closes, if any ("" when the wait graph stays acyclic).
func (wd *watchdog) register(w *parkedWait) string {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	wd.waits[w.me] = append(wd.waits[w.me], w)
	return wd.findCycle(w.me)
}

// unregister removes a wait once its receive wakes.
func (wd *watchdog) unregister(w *parkedWait) {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	ws := wd.waits[w.me]
	for i, x := range ws {
		if x == w {
			wd.waits[w.me] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(wd.waits[w.me]) == 0 {
		delete(wd.waits, w.me)
	}
}

// satisfy marks every registered wait on ch as fulfilled. Senders call
// this before delivering so the wait stops counting as a blocked edge
// from that point on — even in the window after the receiver drains the
// channel but before its deferred unregister runs.
func (wd *watchdog) satisfy(ch chan message) {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	for _, ws := range wd.waits {
		for _, w := range ws {
			if w.ch == ch {
				w.satisfied = true
			}
		}
	}
}

// blockedEdges lists rank r's genuinely blocked waits — a satisfied
// wait or a delivered message sitting in the channel means the receive
// is about to wake, so it is not an edge — in deterministic (src, tag)
// order.
func (wd *watchdog) blockedEdges(r int) []*parkedWait {
	out := make([]*parkedWait, 0, len(wd.waits[r]))
	for _, w := range wd.waits[r] {
		if w.src >= 0 && !w.satisfied && len(w.ch) == 0 {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].src != out[j].src {
			return out[i].src < out[j].src
		}
		return out[i].tag < out[j].tag
	})
	return out
}

// findCycle searches for a wait cycle through rank start (any cycle
// completed by the newest park necessarily passes through it) and
// renders it deterministically: edges are explored in sorted order, so
// the same deadlock always produces the same report.
func (wd *watchdog) findCycle(start int) string {
	// A cycle visits each rank at most once, bounding the path.
	path := make([]*parkedWait, 0, len(wd.waits))
	visited := make(map[int]bool)
	var dfs func(r int) bool
	dfs = func(r int) bool {
		if visited[r] {
			return false
		}
		visited[r] = true
		for _, w := range wd.blockedEdges(r) {
			path = append(path, w)
			if w.src == start || dfs(w.src) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	if !dfs(start) {
		return ""
	}
	var b strings.Builder
	for i, w := range path {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "rank %d waits on rank %d (tag %s)", w.me, w.src, tagString(w.tag))
	}
	return b.String()
}

func tagString(tag int) string {
	if tag == AnyTag {
		return "any"
	}
	return fmt.Sprintf("%d", tag)
}
