package mpi

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hivempi/internal/testutil/leakcheck"
)

func TestSendRecvBasic(t *testing.T) {
	defer leakcheck.Check(t)()
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		data, st, err := w.Recv(1, 0, 7)
		if err != nil {
			t.Errorf("Recv: %v", err)
			return
		}
		if string(data) != "hello" || st.Source != 0 || st.Tag != 7 || st.Bytes != 5 {
			t.Errorf("got %q status %+v", data, st)
		}
	}()
	if err := w.Send(0, 1, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestUnexpectedMessageQueue(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(2)
	// Send before any receive is posted: message goes to unexpected queue.
	if err := w.Send(0, 1, 3, []byte("early")); err != nil {
		t.Fatal(err)
	}
	data, _, err := w.Recv(1, 0, 3)
	if err != nil || string(data) != "early" {
		t.Fatalf("Recv after early send: %q, %v", data, err)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(3)
	if err := w.Send(0, 2, 10, []byte("fromA")); err != nil {
		t.Fatal(err)
	}
	if err := w.Send(1, 2, 20, []byte("fromB")); err != nil {
		t.Fatal(err)
	}
	// Receive tag 20 first even though tag 10 arrived earlier.
	data, st, err := w.Recv(2, AnySource, 20)
	if err != nil || string(data) != "fromB" || st.Source != 1 {
		t.Fatalf("tag match: %q %+v %v", data, st, err)
	}
	data, _, err = w.Recv(2, 0, AnyTag)
	if err != nil || string(data) != "fromA" {
		t.Fatalf("source match: %q %v", data, err)
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(4)
	const msgs = 10
	var wg sync.WaitGroup
	for dst := 1; dst < 4; dst++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			reqs := make([]*Request, 0, msgs)
			for i := 0; i < msgs; i++ {
				r, err := w.Irecv(dst, 0, i)
				if err != nil {
					t.Errorf("Irecv: %v", err)
					return
				}
				reqs = append(reqs, r)
			}
			if err := Waitall(reqs); err != nil {
				t.Errorf("Waitall: %v", err)
			}
			for i, r := range reqs {
				data, st := r.Payload()
				if st.Tag != i || len(data) != i {
					t.Errorf("req %d: tag %d len %d", i, st.Tag, len(data))
				}
			}
		}(dst)
	}
	var sends []*Request
	for i := 0; i < msgs; i++ {
		for dst := 1; dst < 4; dst++ {
			r, err := w.Isend(0, dst, i, make([]byte, i))
			if err != nil {
				t.Fatal(err)
			}
			sends = append(sends, r)
		}
	}
	if err := Waitall(sends); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestTestNonBlocking(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(2)
	req, err := w.Irecv(1, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := req.Test(); ok {
		t.Error("request complete before send")
	}
	if err := w.Send(0, 1, 5, []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		if ok, err := req.Test(); ok {
			if err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Test never completed")
		}
	}
	data, _ := req.Payload()
	if string(data) != "x" {
		t.Errorf("payload %q", data)
	}
}

func TestSendBufferIsCopied(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(2)
	buf := []byte("orig")
	if err := w.Send(0, 1, 0, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXX")
	data, _, err := w.Recv(1, 0, 0)
	if err != nil || string(data) != "orig" {
		t.Errorf("send did not copy buffer: %q %v", data, err)
	}
}

func TestBarrier(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(4)
	var reached sync.WaitGroup
	counter := make(chan int, 8)
	for r := 0; r < 4; r++ {
		reached.Add(1)
		go func(r int) {
			defer reached.Done()
			counter <- 1
			w.Barrier()
			counter <- 2
		}(r)
	}
	reached.Wait()
	close(counter)
	// All the 1s must come before any 2 is possible only if barrier
	// held; we verify counts.
	ones, twos := 0, 0
	for v := range counter {
		if v == 1 {
			ones++
		} else {
			twos++
		}
	}
	if ones != 4 || twos != 4 {
		t.Errorf("barrier counts %d/%d", ones, twos)
	}
}

func TestFinalizeUnblocksReceivers(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(2)
	errc := make(chan error, 1)
	go func() {
		_, _, err := w.Recv(1, 0, 0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Finalize()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrFinalized) {
			t.Errorf("err = %v, want ErrFinalized", err)
		}
	case <-time.After(time.Second):
		t.Fatal("receiver not unblocked by Finalize")
	}
	if err := w.Send(0, 1, 0, nil); !errors.Is(err, ErrFinalized) {
		t.Errorf("Send after finalize: %v", err)
	}
}

func TestRankValidation(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(2)
	if err := w.Send(0, 5, 0, nil); err == nil {
		t.Error("send to invalid rank should fail")
	}
	if err := w.Send(-1, 1, 0, nil); err == nil {
		t.Error("send from invalid rank should fail")
	}
	if _, err := w.Irecv(9, 0, 0); err == nil {
		t.Error("irecv on invalid rank should fail")
	}
	if _, err := NewWorld(0); err == nil {
		t.Error("zero-size world should fail")
	}
}

func TestComm(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(6)
	// O communicator = ranks 0..3, A communicator = ranks 4..5.
	o, err := w.NewComm([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := w.NewComm([]int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if o.Size() != 4 || a.Size() != 2 {
		t.Error("comm sizes wrong")
	}
	if a.WorldRank(1) != 5 {
		t.Error("WorldRank translation wrong")
	}
	if a.LocalRank(4) != 0 || a.LocalRank(0) != -1 {
		t.Error("LocalRank translation wrong")
	}
	if _, err := w.NewComm([]int{99}); err == nil {
		t.Error("invalid comm rank should fail")
	}
}

func TestManyToOneStress(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(9)
	const per = 200
	var wg sync.WaitGroup
	for src := 1; src < 9; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Send(src, 0, src, []byte{byte(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(src)
	}
	got := 0
	for got < 8*per {
		_, _, err := w.Recv(0, AnySource, AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	wg.Wait()
}
