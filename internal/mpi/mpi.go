// Package mpi is an in-process message-passing library with the subset
// of MPI semantics DataMPI needs: a world of ranks, derived
// communicators, blocking Send/Recv, non-blocking Isend/Irecv with
// request handles, Wait/Test/Waitall and a barrier.
//
// Delivery uses the eager protocol: a send buffers the message at the
// receiver and completes immediately; receives match by (source, tag)
// with wildcard support, servicing the unexpected-message queue first,
// exactly like an MPI progress engine.
package mpi

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"hivempi/internal/chaos"
)

// Wildcards for Recv/Irecv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// ErrFinalized is returned by operations on a finalized world.
var ErrFinalized = errors.New("mpi: world finalized")

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

type message struct {
	src     int
	tag     int
	data    []byte
	corrupt bool // payload damaged in transit (injected); receiver fails
}

type recvWaiter struct {
	src, tag int
	done     chan message
}

type rankState struct {
	mu         sync.Mutex
	unexpected []message
	waiters    []*recvWaiter
	closed     bool
}

// World is a set of communicating ranks (the COMM_WORLD analogue).
type World struct {
	n     int
	ranks []*rankState

	barrierMu    sync.Mutex
	barrierCount int
	barrierGen   int
	barrierCond  *sync.Cond

	chaosMu sync.Mutex
	plane   *chaos.Plane // fault-injection plane; nil = no faults
	failErr error        // first transport failure; aborts the world
	watch   *watchdog    // opt-in deadlock sentinel; nil = off
	sendObs SendObserver // comms flight recorder hook; nil = off
}

// SendObserver receives one callback per successfully delivered
// message: source and destination world ranks, the message tag and the
// payload size. Observers run on the sender's goroutine inside the
// delivery path, so they must be cheap and thread-safe (the comm
// matrix recorder is a single atomic add).
type SendObserver func(src, dst, tag int, bytes int)

// SetSendObserver attaches the delivery observer (nil detaches).
func (w *World) SetSendObserver(obs SendObserver) {
	w.chaosMu.Lock()
	defer w.chaosMu.Unlock()
	w.sendObs = obs
}

func (w *World) sendObserver() SendObserver {
	w.chaosMu.Lock()
	defer w.chaosMu.Unlock()
	return w.sendObs
}

// SetDeadlockCheck toggles the communicator deadlock watchdog (see
// watchdog.go). NewWorld arms it automatically when MPI_CHECK=1 is set
// in the environment.
func (w *World) SetDeadlockCheck(on bool) {
	w.chaosMu.Lock()
	defer w.chaosMu.Unlock()
	if on && w.watch == nil {
		w.watch = newWatchdog()
	} else if !on {
		w.watch = nil
	}
}

// watchdogPlane returns the armed watchdog (possibly nil).
func (w *World) watchdogPlane() *watchdog {
	if w == nil {
		return nil
	}
	w.chaosMu.Lock()
	defer w.chaosMu.Unlock()
	return w.watch
}

// SetChaos attaches a fault-injection plane consulted on every send.
func (w *World) SetChaos(p *chaos.Plane) {
	w.chaosMu.Lock()
	defer w.chaosMu.Unlock()
	w.plane = p
}

func (w *World) chaosPlane() *chaos.Plane {
	w.chaosMu.Lock()
	defer w.chaosMu.Unlock()
	return w.plane
}

// fail records the first transport error and aborts the world: as in
// real MPI, a lost message is a communicator failure, so every pending
// and future operation returns the error instead of deadlocking.
func (w *World) fail(err error) {
	w.chaosMu.Lock()
	if w.failErr == nil {
		w.failErr = err
	}
	w.chaosMu.Unlock()
	for _, r := range w.ranks {
		r.mu.Lock()
		r.closed = true
		for _, wt := range r.waiters {
			close(wt.done)
		}
		r.waiters = nil
		r.mu.Unlock()
	}
}

// closedErr is the error for operations on a closed world: the aborting
// transport failure if one happened, otherwise plain finalization.
func (w *World) closedErr() error {
	if w == nil {
		return ErrFinalized
	}
	w.chaosMu.Lock()
	defer w.chaosMu.Unlock()
	if w.failErr != nil {
		return w.failErr
	}
	return ErrFinalized
}

// NewWorld creates a world with n ranks.
func NewWorld(n int) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: world size %d must be positive", n)
	}
	w := &World{n: n, ranks: make([]*rankState, n)}
	for i := range w.ranks {
		w.ranks[i] = &rankState{}
	}
	w.barrierCond = sync.NewCond(&w.barrierMu)
	if os.Getenv("MPI_CHECK") == "1" {
		w.watch = newWatchdog()
	}
	return w, nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.n }

// Finalize unblocks pending receivers with an error state and marks the
// world closed. Further operations fail.
func (w *World) Finalize() {
	for _, r := range w.ranks {
		r.mu.Lock()
		r.closed = true
		for _, wt := range r.waiters {
			close(wt.done)
		}
		r.waiters = nil
		r.mu.Unlock()
	}
}

func (w *World) checkRank(r int) error {
	if r < 0 || r >= w.n {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", r, w.n)
	}
	return nil
}

// Send delivers data from rank src to rank dst with the given tag.
// The payload is copied, so the caller may reuse the buffer.
func (w *World) Send(src, dst, tag int, data []byte) error {
	if err := w.checkRank(src); err != nil {
		return err
	}
	if err := w.checkRank(dst); err != nil {
		return err
	}
	msg := message{src: src, tag: tag, data: append([]byte(nil), data...)}
	if f := w.chaosPlane().Message(src, dst, tag); f.Drop {
		err := fmt.Errorf("%w: message %d->%d tag %d lost in transit", chaos.ErrInjected, src, dst, tag)
		w.fail(err)
		return err
	} else if f.Corrupt {
		msg.corrupt = true
	}
	r := w.ranks[dst]
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return w.closedErr()
	}
	for i, wt := range r.waiters {
		if (wt.src == AnySource || wt.src == src) && (wt.tag == AnyTag || wt.tag == tag) {
			r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
			r.mu.Unlock()
			// Tell the watchdog this wait is fulfilled BEFORE delivering:
			// otherwise the receiver can drain the channel and proceed
			// while still registered, and a concurrent park would read the
			// stale empty-channel wait as a blocked edge (false deadlock).
			if wd := w.watchdogPlane(); wd != nil {
				wd.satisfy(wt.done)
			}
			wt.done <- msg
			if obs := w.sendObserver(); obs != nil {
				obs(src, dst, tag, len(msg.data))
			}
			return nil
		}
	}
	r.unexpected = append(r.unexpected, msg)
	r.mu.Unlock()
	if obs := w.sendObserver(); obs != nil {
		obs(src, dst, tag, len(msg.data))
	}
	return nil
}

// Recv blocks until a matching message arrives at rank me.
func (w *World) Recv(me, src, tag int) ([]byte, Status, error) {
	req, err := w.Irecv(me, src, tag)
	if err != nil {
		return nil, Status{}, err
	}
	return req.WaitRecv()
}

// tryMatch removes and returns a matching unexpected message, if any.
func (r *rankState) tryMatch(src, tag int) (message, bool) {
	for i, m := range r.unexpected {
		if (src == AnySource || src == m.src) && (tag == AnyTag || tag == m.tag) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// Request is the handle for a non-blocking operation.
type Request struct {
	mu     sync.Mutex
	done   bool
	err    error
	msg    message
	isRecv bool
	ch     chan message
	w      *World // for resolving abort errors on a closed world

	// Receive matching terms, kept for the deadlock watchdog: the rank
	// that posted the receive and what it is waiting for.
	me, src, tag int
}

// corruptErr is what a receiver reports when checksum verification of a
// delivered message fails (the MsgCorrupt chaos fault).
func corruptErr(m message) error {
	return fmt.Errorf("%w: corrupt message from %d tag %d", chaos.ErrInjected, m.src, m.tag)
}

// Isend starts a non-blocking send. With the eager protocol the send
// buffers immediately, so the returned request is already complete; the
// handle exists so shuffle engines can treat sends and receives
// uniformly through Wait/Test.
func (w *World) Isend(src, dst, tag int, data []byte) (*Request, error) {
	err := w.Send(src, dst, tag, data)
	req := &Request{done: true, err: err}
	if err != nil {
		return req, err
	}
	return req, nil
}

// Irecv posts a non-blocking receive at rank me.
func (w *World) Irecv(me, src, tag int) (*Request, error) {
	if err := w.checkRank(me); err != nil {
		return nil, err
	}
	if src != AnySource {
		if err := w.checkRank(src); err != nil {
			return nil, err
		}
	}
	r := w.ranks[me]
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, w.closedErr()
	}
	if m, ok := r.tryMatch(src, tag); ok {
		r.mu.Unlock()
		req := &Request{done: true, msg: m, isRecv: true, w: w}
		if m.corrupt {
			req.err = corruptErr(m)
		}
		return req, nil
	}
	wt := &recvWaiter{src: src, tag: tag, done: make(chan message, 1)}
	r.waiters = append(r.waiters, wt)
	r.mu.Unlock()
	return &Request{isRecv: true, ch: wt.done, w: w, me: me, src: src, tag: tag}, nil
}

// Wait blocks until the request completes.
func (r *Request) Wait() error {
	_, _, err := r.WaitRecv()
	return err
}

// WaitRecv blocks until completion and returns the received payload (nil
// for send requests).
func (r *Request) WaitRecv() ([]byte, Status, error) {
	r.mu.Lock()
	if r.done {
		defer r.mu.Unlock()
		if r.err != nil {
			return nil, Status{}, r.err
		}
		return r.msg.data, Status{Source: r.msg.src, Tag: r.msg.tag, Bytes: len(r.msg.data)}, nil
	}
	ch := r.ch
	r.mu.Unlock()

	// Deadlock watchdog: this receive is about to park. If registering
	// it closes a rank wait cycle, abort the world — fail() closes every
	// waiter channel, so the park below wakes immediately with the
	// deadlock error instead of hanging forever.
	if wd := r.w.watchdogPlane(); wd != nil && r.isRecv {
		pw := &parkedWait{me: r.me, src: r.src, tag: r.tag, ch: ch}
		if cycle := wd.register(pw); cycle != "" {
			r.w.fail(fmt.Errorf("%w: %s", ErrDeadlock, cycle))
		}
		defer wd.unregister(pw)
	}

	msg, ok := <-ch
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		// A concurrent Test won the race and recorded the outcome.
		if r.err != nil {
			return nil, Status{}, r.err
		}
		return r.msg.data, Status{Source: r.msg.src, Tag: r.msg.tag, Bytes: len(r.msg.data)}, nil
	}
	r.done = true
	if !ok {
		r.err = r.w.closedErr()
		return nil, Status{}, r.err
	}
	r.msg = msg
	// Wake any concurrent Wait/Test racing on this same request; they
	// observe done and return the recorded outcome.
	close(ch)
	if msg.corrupt {
		r.err = corruptErr(msg)
		return nil, Status{}, r.err
	}
	return msg.data, Status{Source: msg.src, Tag: msg.tag, Bytes: len(msg.data)}, nil
}

// Test reports whether the request has completed without blocking.
func (r *Request) Test() (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return true, r.err
	}
	if r.ch == nil {
		return false, nil
	}
	select {
	case msg, ok := <-r.ch:
		r.done = true
		if !ok {
			r.err = r.w.closedErr()
			return true, r.err
		}
		r.msg = msg
		close(r.ch) // wake a concurrent Wait racing on this request
		if msg.corrupt {
			r.err = corruptErr(msg)
		}
		return true, r.err
	default:
		return false, nil
	}
}

// Payload returns the received bytes of a completed receive request.
func (r *Request) Payload() ([]byte, Status) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.msg.data, Status{Source: r.msg.src, Tag: r.msg.tag, Bytes: len(r.msg.data)}
}

// Waitall blocks until every request completes, returning the first error.
func Waitall(reqs []*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Barrier blocks until all n ranks of the world have entered it.
func (w *World) Barrier() {
	w.barrierMu.Lock()
	defer w.barrierMu.Unlock()
	gen := w.barrierGen
	w.barrierCount++
	if w.barrierCount == w.n {
		w.barrierCount = 0
		w.barrierGen++
		w.barrierCond.Broadcast()
		return
	}
	for gen == w.barrierGen {
		w.barrierCond.Wait()
	}
}

// Comm is a derived communicator: an ordered subset of world ranks.
// Rank i of the communicator maps to Ranks[i] in the world.
type Comm struct {
	world *World
	ranks []int
}

// NewComm builds a communicator over the given world ranks.
func (w *World) NewComm(ranks []int) (*Comm, error) {
	for _, r := range ranks {
		if err := w.checkRank(r); err != nil {
			return nil, err
		}
	}
	return &Comm{world: w, ranks: append([]int(nil), ranks...)}, nil
}

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a communicator rank to its world rank.
func (c *Comm) WorldRank(r int) int { return c.ranks[r] }

// LocalRank translates a world rank into this communicator (-1 if absent).
func (c *Comm) LocalRank(worldRank int) int {
	for i, r := range c.ranks {
		if r == worldRank {
			return i
		}
	}
	return -1
}
