package mpi

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"hivempi/internal/testutil/leakcheck"
)

// TestWatchdogMutualRecvDeadlock: two ranks each park in a receive from
// the other with nothing in flight. The watchdog must abort the world
// and both parked receives must surface ErrDeadlock with the same
// deterministic cycle report.
func TestWatchdogMutualRecvDeadlock(t *testing.T) {
	defer leakcheck.Check(t)()
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Finalize()
	w.SetDeadlockCheck(true)

	errs := make([]error, 2)
	var wg sync.WaitGroup
	for me := 0; me < 2; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			_, _, errs[me] = w.Recv(me, 1-me, 7)
		}(me)
	}
	wg.Wait()

	for me, e := range errs {
		if !errors.Is(e, ErrDeadlock) {
			t.Fatalf("rank %d: got %v, want ErrDeadlock", me, e)
		}
	}
	// The report names both edges of the cycle, regardless of which
	// rank's park closed it.
	msg := errs[0].Error()
	for _, want := range []string{
		"rank 0 waits on rank 1 (tag 7)",
		"rank 1 waits on rank 0 (tag 7)",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("report %q missing %q", msg, want)
		}
	}
}

// TestWatchdogThreeRankCycle: 0 waits on 1, 1 waits on 2, 2 waits on 0.
func TestWatchdogThreeRankCycle(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(3)
	defer w.Finalize()
	w.SetDeadlockCheck(true)

	errs := make([]error, 3)
	var wg sync.WaitGroup
	for me := 0; me < 3; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			_, _, errs[me] = w.Recv(me, (me+1)%3, 3)
		}(me)
	}
	wg.Wait()
	for me, e := range errs {
		if !errors.Is(e, ErrDeadlock) {
			t.Fatalf("rank %d: got %v, want ErrDeadlock", me, e)
		}
	}
}

// TestWatchdogNoFalsePositive: a correct ping-pong exchange with the
// watchdog armed must complete normally — a receive whose message is
// already in flight (or that parks without closing a cycle) is fine.
func TestWatchdogNoFalsePositive(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(2)
	defer w.Finalize()
	w.SetDeadlockCheck(true)

	const rounds = 50
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	report := func(err error) {
		mu.Lock()
		if firstErr == nil && err != nil {
			firstErr = err
		}
		mu.Unlock()
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := w.Send(0, 1, i, []byte{byte(i)}); err != nil {
				report(err)
				return
			}
			if _, _, err := w.Recv(0, 1, i); err != nil {
				report(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, _, err := w.Recv(1, 0, i); err != nil {
				report(err)
				return
			}
			if err := w.Send(1, 0, i, []byte{byte(i)}); err != nil {
				report(err)
				return
			}
		}
	}()
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("watchdog broke a correct ping-pong: %v", firstErr)
	}
}

// TestWatchdogAnySourceNeverEdges: a wildcard receive cannot name the
// rank it depends on, so it must never be reported as part of a cycle
// even while parked.
func TestWatchdogAnySourceNeverEdges(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(2)
	defer w.Finalize()
	w.SetDeadlockCheck(true)

	done := make(chan error, 1)
	go func() {
		_, _, err := w.Recv(0, AnySource, AnyTag)
		done <- err
	}()
	// Rank 1 sends after rank 0 has (likely) parked; no deadlock report
	// may fire in the window in between.
	if err := w.Send(1, 0, 9, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("wildcard receive failed: %v", err)
	}
}

// TestWatchdogEnvArming: MPI_CHECK=1 arms the watchdog at NewWorld.
func TestWatchdogEnvArming(t *testing.T) {
	defer leakcheck.Check(t)()
	t.Setenv("MPI_CHECK", "1")
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Finalize()
	if w.watchdogPlane() == nil {
		t.Fatal("MPI_CHECK=1 did not arm the deadlock watchdog")
	}

	t.Setenv("MPI_CHECK", "0")
	w2, _ := NewWorld(2)
	defer w2.Finalize()
	if w2.watchdogPlane() != nil {
		t.Fatal("watchdog armed without MPI_CHECK=1")
	}
}

// TestWatchdogSetDeadlockCheckToggle: the programmatic switch arms and
// disarms the sentinel.
func TestWatchdogSetDeadlockCheckToggle(t *testing.T) {
	defer leakcheck.Check(t)()
	w, _ := NewWorld(2)
	defer w.Finalize()
	if w.watchdogPlane() != nil {
		t.Fatal("watchdog armed by default")
	}
	w.SetDeadlockCheck(true)
	if w.watchdogPlane() == nil {
		t.Fatal("SetDeadlockCheck(true) did not arm")
	}
	w.SetDeadlockCheck(false)
	if w.watchdogPlane() != nil {
		t.Fatal("SetDeadlockCheck(false) did not disarm")
	}
}
