package mpi

import (
	"errors"
	"sync"
	"testing"

	"hivempi/internal/testutil/leakcheck"

	"hivempi/internal/chaos"
)

// TestWaitCalledTwice verifies a request handle is reusable: the second
// Wait returns the recorded outcome without blocking or losing data.
func TestWaitCalledTwice(t *testing.T) {
	defer leakcheck.Check(t)()
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Finalize()
	req, err := w.Irecv(1, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Send(0, 1, 5, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, st, err := req.WaitRecv()
	if err != nil || string(data) != "payload" || st.Source != 0 || st.Tag != 5 {
		t.Fatalf("first wait: %q %+v %v", data, st, err)
	}
	data2, st2, err := req.WaitRecv()
	if err != nil || string(data2) != "payload" || st2.Bytes != 7 {
		t.Fatalf("second wait: %q %+v %v", data2, st2, err)
	}
	if err := req.Wait(); err != nil {
		t.Fatalf("third wait: %v", err)
	}
}

// TestWaitallMixedFailedCompleted drives Waitall over completed sends,
// a satisfied receive, a failed (corrupt) receive and a nil slot, and
// checks it returns the first failure while still draining the rest.
func TestWaitallMixedFailedCompleted(t *testing.T) {
	defer leakcheck.Check(t)()
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Finalize()
	w.SetChaos(chaos.NewPlane(chaos.Plan{Specs: []chaos.Spec{
		{Kind: chaos.MsgCorrupt, Tag: 9},
	}}))

	good, err := w.Irecv(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := w.Irecv(2, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	sent, err := w.Isend(0, 2, 1, []byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Send(1, 2, 9, []byte("garbled")); err != nil {
		t.Fatal(err)
	}

	err = Waitall([]*Request{sent, nil, good, bad})
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Waitall err = %v, want injected corruption", err)
	}
	// The healthy receive still completed with its payload.
	data, st := good.Payload()
	if string(data) != "ok" || st.Source != 0 {
		t.Errorf("good request payload %q from %d", data, st.Source)
	}
	// Waiting again on the failed request reports the same error.
	if err := bad.Wait(); !errors.Is(err, chaos.ErrInjected) {
		t.Errorf("re-wait on failed request: %v", err)
	}
}

// TestTestRacingConcurrentWait hammers Test from one goroutine while
// another blocks in WaitRecv on the same request; exactly one consumes
// the message and both observe the same outcome (run under -race).
func TestTestRacingConcurrentWait(t *testing.T) {
	defer leakcheck.Check(t)()
	for iter := 0; iter < 200; iter++ {
		w, err := NewWorld(2)
		if err != nil {
			t.Fatal(err)
		}
		req, err := w.Irecv(1, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			data, _, err := req.WaitRecv()
			if err != nil || string(data) != "x" {
				t.Errorf("wait: %q %v", data, err)
			}
		}()
		go func() {
			defer wg.Done()
			for {
				done, err := req.Test()
				if err != nil {
					t.Errorf("test: %v", err)
					return
				}
				if done {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			if err := w.Send(0, 1, 1, []byte("x")); err != nil {
				t.Errorf("send: %v", err)
			}
		}()
		wg.Wait()
		w.Finalize()
	}
}

// TestDropAbortsWorld verifies an injected message drop is a fatal
// transport failure: pending receivers unblock with the injected error
// instead of deadlocking, and later operations fail the same way.
func TestDropAbortsWorld(t *testing.T) {
	defer leakcheck.Check(t)()
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	w.SetChaos(chaos.NewPlane(chaos.Plan{Specs: []chaos.Spec{
		{Kind: chaos.MsgDrop, Tag: 2},
	}}))
	pending, err := w.Irecv(1, AnySource, AnyTag)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Send(0, 1, 2, []byte("doomed")); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("send of dropped message: %v", err)
	}
	if _, _, err := pending.WaitRecv(); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("pending receive after abort: %v", err)
	}
	if err := w.Send(0, 1, 3, []byte("late")); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("send after abort: %v", err)
	}
	if _, err := w.Irecv(1, 0, 3); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("irecv after abort: %v", err)
	}
}

// TestMsgDelayAccumulatesVirtualTime checks delays do not fail delivery
// but accrue on the plane for the perfmodel to charge.
func TestMsgDelayAccumulatesVirtualTime(t *testing.T) {
	defer leakcheck.Check(t)()
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Finalize()
	plane := chaos.NewPlane(chaos.Plan{Specs: []chaos.Spec{
		{Kind: chaos.MsgDelay, DelaySec: 1.5, Count: 3},
	}})
	w.SetChaos(plane)
	for i := 0; i < 5; i++ {
		if err := w.Send(0, 1, 1, []byte("m")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := w.Recv(1, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if d := plane.DrainVirtualDelay(); d != 4.5 {
		t.Fatalf("accumulated delay %v, want 4.5", d)
	}
}
