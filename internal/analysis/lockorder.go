package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The lock-scope package set lives in roots.go (LockScopePackages).
// PR 3 fixed races exactly there (dfs rename/delete vs imstore
// residency), and its fix depends on the documented order fs.mu ->
// tierMu -> store.mu staying acyclic; the membership fires its watcher
// callbacks (which take fs.mu) outside m.mu for the same reason.

// LockOrder builds the mutex acquisition graph of the storage
// substrate from source — an edge A -> B means some function acquires B
// while holding A, directly or through a static call chain — and
// reports every edge that participates in a cycle, plus recursive
// acquisitions of the same mutex. New code that inverts the documented
// dfs -> imstore order shows up as a cycle the moment it is written.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "reject mutex acquisition cycles across dfs/imstore/metrics",
	Run:  runLockOrder,
}

// lockEdge is one "acquired while held" observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(prog *Program) []Diagnostic {
	idx := prog.FuncIndex()

	// Pass 1: the set of lock IDs each function acquires directly.
	direct := make(map[*types.Func]map[string]bool)
	callees := make(map[*types.Func][]*types.Func)
	for obj, fi := range idx {
		locks := make(map[string]bool)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, acquire := lockCall(fi.Pkg, call); id != "" && acquire {
				locks[id] = true
			} else if c := Callee(fi.Pkg, call); c != nil {
				if _, known := idx[c]; known {
					callees[obj] = append(callees[obj], c)
				}
			}
			return true
		})
		if len(locks) > 0 {
			direct[obj] = locks
		}
	}

	// Pass 2: transitive closure — every lock a call into f may take.
	trans := make(map[*types.Func]map[string]bool, len(direct))
	for obj := range idx {
		trans[obj] = make(map[string]bool, len(direct[obj]))
		for id := range direct[obj] {
			trans[obj][id] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, cs := range callees {
			for _, c := range cs {
				for id := range trans[c] {
					if !trans[obj][id] {
						trans[obj][id] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: hold-region walk over the scoped packages, recording
	// edges held -> acquired for direct locks and for calls whose
	// transitive set takes locks.
	var edges []lockEdge
	for _, pkg := range prog.Packages {
		if !prog.internalPath(pkg, LockScopePackages...) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				edges = append(edges, walkHoldRegions(pkg, fd.Body, idx, trans)...)
			}
		}
	}

	// Cycle detection: keep the first position per edge, find strongly
	// connected components, report every edge inside one.
	first := make(map[[2]string]token.Pos)
	adj := make(map[string][]string)
	for _, e := range edges {
		k := [2]string{e.from, e.to}
		if _, ok := first[k]; !ok {
			first[k] = e.pos
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	for n := range adj {
		sort.Strings(adj[n])
	}
	scc := stronglyConnected(adj)

	var diags []Diagnostic
	for k, pos := range first {
		from, to := k[0], k[1]
		if from == to {
			diags = append(diags, diag(prog, "lockorder", pos,
				"recursive acquisition: %s is taken while already held (self-deadlock)", from))
			continue
		}
		if scc[from] != "" && scc[from] == scc[to] {
			diags = append(diags, diag(prog, "lockorder", pos,
				"lock-order cycle: %s is acquired while holding %s, but the reverse order also exists (cycle through %s)",
				to, from, cyclePath(adj, scc, from)))
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		return diags[i].Line < diags[j].Line
	})
	return diags
}

// walkHoldRegions traverses body in source order tracking the held
// lock set. Function literals (deferred closures, goroutines) start
// with an empty held set: a goroutine does not inherit its spawner's
// locks, and a deferred unlock is modeled by simply never removing the
// lock from the held set.
func walkHoldRegions(pkg *Package, body *ast.BlockStmt, idx map[*types.Func]*FuncInfo, trans map[*types.Func]map[string]bool) []lockEdge {
	var edges []lockEdge
	var held []string

	release := func(id string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == id {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncLit:
				// Separate execution context: fresh held set.
				saved := held
				held = nil
				walk(st.Body)
				held = saved
				return false
			case *ast.DeferStmt:
				// defer x.Unlock() keeps the lock held to function end;
				// deferred closures run after the region, so skip both.
				return false
			case *ast.CallExpr:
				if id, acquire := lockCall(pkg, st); id != "" {
					if acquire {
						for _, h := range held {
							edges = append(edges, lockEdge{from: h, to: id, pos: st.Pos()})
						}
						held = append(held, id)
					} else {
						release(id)
					}
					return true
				}
				if len(held) == 0 {
					return true
				}
				if c := Callee(pkg, st); c != nil {
					if _, known := idx[c]; known {
						ids := make([]string, 0, len(trans[c]))
						for id := range trans[c] {
							ids = append(ids, id)
						}
						sort.Strings(ids)
						for _, id := range ids {
							for _, h := range held {
								edges = append(edges, lockEdge{from: h, to: id, pos: st.Pos()})
							}
						}
					}
				}
				return true
			}
			return true
		})
	}
	walk(body)
	return edges
}

// lockCall classifies a call as a mutex acquire/release and returns
// the canonical lock ID ("" when the call is not a trackable mutex
// operation). Lock and RLock map to the same node: RLock-under-Lock on
// the same RWMutex self-deadlocks just as hard with a writer pending.
func lockCall(pkg *Package, call *ast.CallExpr) (id string, acquire bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	f, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", false
	}
	switch f.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false
	}
	return lockID(pkg, sel.X), acquire
}

// lockID names the mutex a Lock/Unlock selector refers to:
// "pkg.Type.field" for a struct-field mutex reached through any base
// expression, "pkg.var" for a package-level mutex. Local mutexes
// return "" — they cannot participate in cross-function ordering.
func lockID(pkg *Package, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			if n := recvNamed(s.Recv()); n != nil && n.Obj().Pkg() != nil {
				return fmt.Sprintf("%s.%s.%s", n.Obj().Pkg().Name(), n.Obj().Name(), e.Sel.Name)
			}
		}
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	}
	return ""
}

// stronglyConnected returns, for every node in a component of size > 1,
// the component's representative (smallest member); nodes alone in
// their component map to "". Tarjan's algorithm, iterative-free since
// the lock graphs here are tiny.
func stronglyConnected(adj map[string][]string) map[string]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	comp := make(map[string]string)

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				sort.Strings(members)
				for _, m := range members {
					comp[m] = members[0]
				}
			} else {
				comp[members[0]] = ""
			}
		}
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return comp
}

// cyclePath renders one cycle through the component containing start,
// for the diagnostic message.
func cyclePath(adj map[string][]string, comp map[string]string, start string) string {
	path := []string{start}
	seen := map[string]bool{start: true}
	cur := start
	for {
		advanced := false
		for _, w := range adj[cur] {
			if comp[w] != "" && comp[w] == comp[start] {
				if w == start {
					return strings.Join(append(path, start), " -> ")
				}
				if !seen[w] {
					seen[w] = true
					path = append(path, w)
					cur = w
					advanced = true
					break
				}
			}
		}
		if !advanced {
			return strings.Join(path, " -> ")
		}
	}
}
