package analysis

// FloatOrder is the determinism analyzer for exact aggregates: it
// reports float32/float64 accumulation (sum += v, prod *= v,
// acc = acc + v) whose operand order derives from a nondeterministic
// source — a map range, select arrival order, or an order-tainted
// collection per the dataflow engine. Float addition is not
// associative: reordering the operands changes the low bits of the
// sum, which is precisely how PR 7's concurrent-sender arrival order
// turned into non-byte-identical TPC-H aggregates.
//
// Scope is the exact-aggregate plane (FloatOrderPackages in roots.go):
// the operator layer (exec), the kv merge layer (kvio) and the
// adaptive runtime (adapt), whose histogram folds feed scheduling
// decisions that must replay identically. Per-key accumulation into a
// map element (m[k] += v) is order-independent and exempt.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc:  "float accumulation in exec/kvio/adapt must not fold operands in map-range/arrival order",
	Run:  runFloatOrder,
}

func runFloatOrder(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, f := range prog.Flow().Findings("float-accum") {
		if !prog.internalPath(f.Pkg, FloatOrderPackages...) {
			continue
		}
		diags = append(diags, diag(prog, "floatorder", f.Pos, "%s", f.Message))
	}
	return diags
}
