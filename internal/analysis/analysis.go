package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check over a loaded Program.
type Analyzer struct {
	Name string // short name; suppressions refer to "hivelint/<Name>"
	Doc  string // one-line description
	Run  func(prog *Program) []Diagnostic
}

// diag is the helper analyzers use to build a Diagnostic from a Pos.
func diag(prog *Program, name string, pos token.Pos, format string, args ...any) Diagnostic {
	p := prog.Fset.Position(pos)
	return Diagnostic{
		Analyzer: name,
		Pos:      p,
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// SuppressPrefix is the namespace suppression comments use:
// //lint:ignore hivelint/<analyzer> <reason>
const SuppressPrefix = "hivelint/"

var suppressRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// suppression marks one //lint:ignore comment: it silences diagnostics
// of the named analyzers on the comment's own line and the next line.
type suppression struct {
	analyzers map[string]bool
	line      int
	file      string
	pos       token.Pos
	reason    string
}

// collectSuppressions scans every file's comments for lint:ignore
// directives. Malformed directives (no reason, or a target outside the
// hivelint/ namespace) are themselves diagnostics so suppressions stay
// auditable.
func collectSuppressions(prog *Program) ([]suppression, []Diagnostic) {
	var sups []suppression
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := suppressRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					reason := strings.TrimSpace(m[2])
					if reason == "" {
						diags = append(diags, diag(prog, "suppress", c.Pos(),
							"lint:ignore needs a reason: //lint:ignore %s <why this site is exempt>", m[1]))
						continue
					}
					names := make(map[string]bool)
					bad := false
					for _, target := range strings.Split(m[1], ",") {
						name, ok := strings.CutPrefix(target, SuppressPrefix)
						if !ok || name == "" {
							diags = append(diags, diag(prog, "suppress", c.Pos(),
								"lint:ignore target %q is not in the %s<analyzer> namespace", target, SuppressPrefix))
							bad = true
							break
						}
						names[name] = true
					}
					if bad {
						continue
					}
					sups = append(sups, suppression{
						analyzers: names,
						line:      pos.Line,
						file:      pos.Filename,
						pos:       c.Pos(),
						reason:    reason,
					})
				}
			}
		}
	}
	return sups, diags
}

// RunAnalyzers runs the analyzers over the program, applies lint:ignore
// suppressions and returns the surviving diagnostics sorted by
// position. Unused suppressions are reported so stale exemptions do not
// accumulate, and a suppression naming an analyzer that is not in the
// running set (a typo, or a retired analyzer) is reported as stale
// rather than silently skipped — a directive that can never fire is
// worse than none, because it reads as an audited exemption.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	known := make(map[string]bool, len(analyzers))
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		all = append(all, a.Run(prog)...)
		known[a.Name] = true
		names = append(names, a.Name)
	}
	sort.Strings(names)
	sups, diags := collectSuppressions(prog)
	used := make([]bool, len(sups))
	for i, s := range sups {
		unknown := false
		for n := range s.analyzers {
			if !known[n] {
				diags = append(diags, diag(prog, "suppress", s.pos,
					"lint:ignore %s%s names no registered analyzer; the directive is stale (known: %s)",
					SuppressPrefix, n, strings.Join(names, ", ")))
				unknown = true
			}
		}
		// Mark it used so the typo is not double-reported through the
		// generic suppresses-nothing path below.
		if unknown {
			used[i] = true
		}
	}
	for _, d := range all {
		hit := false
		for i, s := range sups {
			if s.file == d.File && s.analyzers[d.Analyzer] && (d.Line == s.line || d.Line == s.line+1) {
				used[i] = true
				hit = true
			}
		}
		if !hit {
			diags = append(diags, d)
		}
	}
	for i, s := range sups {
		if !used[i] {
			names := make([]string, 0, len(s.analyzers))
			for n := range s.analyzers {
				names = append(names, SuppressPrefix+n)
			}
			sort.Strings(names)
			diags = append(diags, diag(prog, "suppress", s.pos,
				"lint:ignore %s suppresses nothing here; remove the stale exemption", strings.Join(names, ",")))
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// internalPath reports whether pkg lives under modulePath/internal/<one
// of names>.
func (prog *Program) internalPath(pkg *Package, names ...string) bool {
	for _, n := range names {
		if pkg.Path == prog.ModulePath+"/internal/"+n {
			return true
		}
	}
	return false
}
