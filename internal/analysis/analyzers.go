package analysis

// All returns the full hivelint analyzer suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, MPIReq, LockOrder, MetricsHot, CtxLeak}
}
