package analysis

// All returns the full hivelint analyzer suite, in reporting order.
// The determinism analyzers (maporder, floatorder) share one dataflow
// pass, and everything shares the Program's single type-check pass.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, MPIReq, LockOrder, MetricsHot, CtxLeak, MapOrder, FloatOrder, HotAlloc}
}
