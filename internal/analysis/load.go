// Package analysis is the hivelint analyzer suite: project-specific
// static checks for the invariants the DataMPI engine depends on —
// virtual-time determinism (wallclock), non-blocking request completion
// (mpireq), cross-package mutex acquisition order (lockorder), cached
// metric handles on shuffle hot paths (metricshot) and goroutine
// completion signalling (ctxleak).
//
// Loading is deliberately dependency-free: packages are parsed with
// go/parser and type-checked with go/types, importing module-internal
// packages from the already-checked set and everything else (the
// standard library) through go/importer's source importer. No
// golang.org/x/tools machinery is required.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("hivempi/internal/mpi")
	Dir   string // absolute source directory
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Program is the full set of packages hivelint analyzes in one run.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Packages   []*Package // sorted by import path
	ByPath     map[string]*Package

	funcIndex map[*types.Func]*FuncInfo // built lazily by FuncIndex
	hotFuncs  map[*types.Func]string    // built lazily by HotPathFuncs
	flow      *Dataflow                 // built lazily by Flow
}

// moduleImporter resolves module-internal import paths from the set of
// packages already type-checked in this run and defers everything else
// (the standard library) to the source importer.
type moduleImporter struct {
	std  types.ImporterFrom
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}

// ModulePathOf reads the module path from root's go.mod.
func ModulePathOf(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(strings.TrimSuffix(rest, "// indirect")), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// DiscoverDirs walks root and returns the module-relative directories
// that contain non-test Go files, skipping testdata, hidden and vendor
// trees. "." stands for the module root package itself.
func DiscoverDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
			dirs = append(dirs, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// LoadModule loads every package of the module rooted at root.
func LoadModule(root string) (*Program, error) {
	modPath, err := ModulePathOf(root)
	if err != nil {
		return nil, err
	}
	dirs, err := DiscoverDirs(root)
	if err != nil {
		return nil, err
	}
	return Load(root, modPath, dirs)
}

type rawPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string // module-internal imports only
}

// Load parses and type-checks the packages found in the given
// module-relative directories, in dependency order.
func Load(root, modulePath string, dirs []string) (*Program, error) {
	fset := token.NewFileSet()
	raw := make(map[string]*rawPkg, len(dirs))
	for _, dir := range dirs {
		importPath := modulePath
		if dir != "." && dir != "" {
			importPath = modulePath + "/" + dir
		}
		abs := filepath.Join(root, filepath.FromSlash(dir))
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, err
		}
		rp := &rawPkg{path: importPath, dir: abs}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(abs, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
			}
			rp.files = append(rp.files, f)
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == modulePath || strings.HasPrefix(p, modulePath+"/") {
					rp.imports = append(rp.imports, p)
				}
			}
		}
		if len(rp.files) > 0 {
			raw[importPath] = rp
		}
	}

	order, err := topoSort(raw)
	if err != nil {
		return nil, err
	}

	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	imp := &moduleImporter{std: std, pkgs: make(map[string]*types.Package, len(order))}

	prog := &Program{Fset: fset, ModulePath: modulePath, ByPath: make(map[string]*Package, len(order))}
	for _, path := range order {
		rp := raw[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, rp.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
		}
		imp.pkgs[path] = tpkg
		p := &Package{Path: path, Dir: rp.dir, Files: rp.files, Pkg: tpkg, Info: info}
		prog.Packages = append(prog.Packages, p)
		prog.ByPath[path] = p
	}
	return prog, nil
}

// topoSort orders the raw packages so every module-internal import of a
// package precedes it.
func topoSort(raw map[string]*rawPkg) ([]string, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(raw))
	var order []string
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		rp, ok := raw[path]
		if !ok {
			// Imported module path not among the loaded dirs (e.g. a
			// pruned subtree); the importer will fail later if it is
			// actually needed.
			return nil
		}
		switch state[path] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("analysis: import cycle: %s", strings.Join(append(stack, path), " -> "))
		}
		state[path] = grey
		for _, dep := range rp.imports {
			if err := visit(dep, append(stack, path)); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}
