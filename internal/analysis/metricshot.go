package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MetricsHot flags per-call metrics.Registry lookups (Counter, Gauge,
// Add, Histogram, Timer) inside functions reachable from the
// shuffle/kvio/vectorized hot paths or the plan-cache statement path.
// Registry lookups take the registry's read lock and hash the name on
// every call; hot paths must cache the *Counter/*Gauge handle once at
// setup (as datampi.NewJob and dfs.SetMetrics do) and hit the cached
// atomic afterwards. Setup-shaped functions — New*/new*, Set*/set*,
// ensure*/Ensure*, init — are exempt: running once per job is the
// sanctioned pattern.
var MetricsHot = &Analyzer{
	Name: "metricshot",
	Doc:  "no per-call Registry lookups in functions reachable from shuffle/kvio/vec or plan-cache hot paths",
	Run:  runMetricsHot,
}

// The hot-path root tables live in roots.go (HotRootPackages,
// HotRootMethods); metricshot and hotalloc share them through
// HotPathFuncs.

// isSetupFunc reports whether the function is a once-per-job setup
// site where Registry lookups are the sanctioned caching pattern.
// ensure* counts: lazily-initialize-once helpers are setup that
// happens to run on the first hot call.
func isSetupFunc(name string) bool {
	for _, p := range []string{"New", "new", "Set", "set", "Ensure", "ensure"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return name == "init"
}

func runMetricsHot(prog *Program) []Diagnostic {
	idx := prog.FuncIndex()
	metricsPath := prog.ModulePath + "/internal/metrics"
	via := prog.HotPathFuncs()

	var diags []Diagnostic
	for obj, root := range via {
		fi := idx[obj]
		// The registry's own internals are the lookup implementation,
		// not a caller that should have cached a handle.
		if isSetupFunc(obj.Name()) || fi.Pkg.Path == metricsPath {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			c := Callee(fi.Pkg, call)
			if c == nil || !isMethodOn(c, metricsPath, "Registry") {
				return true
			}
			switch c.Name() {
			case "Counter", "Gauge", "Add", "Histogram", "Timer":
				diags = append(diags, diag(prog, "metricshot", call.Pos(),
					"per-call Registry.%s lookup in %s (reachable from hot path %s); cache the handle once at setup and use the cached *%s",
					c.Name(), funcDisplayName(obj), root, handleType(c.Name())))
			}
			return true
		})
	}
	return diags
}

func handleType(method string) string {
	switch method {
	case "Gauge":
		return "metrics.Gauge"
	case "Histogram":
		return "metrics.Histogram"
	case "Timer":
		return "metrics.Timer"
	}
	return "metrics.Counter"
}

// funcDisplayName renders "Type.Method" for methods and "Func" for
// plain functions.
func funcDisplayName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := recvNamed(sig.Recv().Type()); n != nil {
			return n.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}
