package analysis

// This file is the single shared roots table for every scope-sensitive
// analyzer. PR 6 (cluster) and PR 8 (adapt) each had to hand-extend
// three separately-hardcoded package lists; now wallclock, lockorder,
// metricshot, ctxleak and the determinism analyzers (maporder,
// floatorder, hotalloc) all read from here, and roots_test.go asserts
// the virtual-time set actually covers every package that depends on
// the virtual clock. Adding a package to the engine means touching this
// file exactly once — or failing the coverage test loudly.

// VirtualTimePackages are the packages whose timing model is the
// deterministic virtual clock (perfmodel seconds threaded through
// traces and spans). A stray wall-clock read or an unseeded RNG in any
// of them silently corrupts determinism and resume-safety, so both are
// forbidden mechanically (wallclock analyzer).
//
//   - bench rides along: its numbers feed the paper tables and must come
//     from the model, not the host clock.
//   - cluster is the failure detector: its heartbeat timeline IS virtual
//     time, so a wall-clock read there breaks detector determinism.
//   - adapt feeds observed stage statistics back into scheduling — a
//     wall-clock read there would make repartition decisions run-order
//     dependent.
//   - obs/comm renders comm-plane skew statistics measured in virtual
//     seconds; it imports perfmodel directly, so it is in the set (the
//     roots coverage test would flag its absence).
//   - obs/bundle serializes the run record whose every duration is
//     virtual seconds; a wall-clock read there would make two captures
//     of the same run diff non-zero.
var VirtualTimePackages = []string{
	"perfmodel", "core", "datampi", "hive", "obs", "obs/comm",
	"obs/bundle", "chaos", "bench", "cluster", "adapt",
}

// LockScopePackages are the packages whose mutexes participate in the
// cross-layer acquisition graph analyzed by lockorder: the dfs
// namespace lock, the imstore budget lock, the metrics registry lock
// and the cluster membership lock.
var LockScopePackages = []string{"dfs", "imstore", "metrics", "cluster"}

// CtxLeakPackages are the packages whose goroutines must signal
// completion (ctxleak analyzer): the DAG stage scheduler, the DataMPI
// engine core and the shuffle library.
var CtxLeakPackages = []string{"hive", "core", "datampi"}

// HotRootPackages contribute every declared function as a hot-path
// root for metricshot and hotalloc: the shuffle library, the kv wire
// format, and the columnar batch layer (vec runs per batch inside
// every vectorized operator). These are exactly the packages whose
// alloc budgets are committed in BENCH_shuffle.json / BENCH_vec.json.
var HotRootPackages = []string{"kvio", "datampi", "vec"}

// HotRootMethods are individual hot entry points outside those
// packages, keyed by internal package name, then receiver type name
// ("" for free functions): the dfs per-I/O paths and the plan cache's
// per-statement lookup/insert path in hive.
var HotRootMethods = map[string]map[string][]string{
	"dfs": {
		"Writer": {"Write"},
		"Reader": {"Read", "ReadAt"},
	},
	"hive": {
		"PlanCache": {"lookup", "put"},
		"Driver":    {"foldPlanCacheEvictions"},
		"":          {"normalizePlanKey"},
	},
	// bundle.categorize runs per stage on every bundle capture and
	// inside the benchdiff attribution path; keeping it alloc- and
	// lookup-clean keeps capture zero-cost enough to leave on in CI.
	"obs/bundle": {
		"": {"categorize"},
	},
}

// FloatOrderPackages are the packages floatorder scans for
// order-sensitive float accumulation: the operator layer (exact
// aggregates), the kv merge layer (partial-sum merge order — the PR 7
// bug class) and the adaptive runtime (histogram folds that feed
// scheduling decisions).
var FloatOrderPackages = []string{"exec", "kvio", "adapt"}
