package analysis

import (
	"go/ast"
	"go/types"
)

// MPIReq enforces the non-blocking request discipline: every request
// handle returned by World.Isend/World.Irecv must either reach a
// completion call (Wait, WaitRecv, Test) in the enclosing function or
// escape it (returned, appended into a slice, stored into a field or
// map, sent on a channel, or passed to another function such as
// mpi.Waitall). A handle that does neither is a leaked request: nothing
// will ever observe its completion or its error, the exact class of bug
// behind lost shuffle acknowledgements.
//
// The check is flow-insensitive over the function body: one completing
// or escaping use anywhere satisfies it. Discarding the handle with _
// is always a violation.
var MPIReq = &Analyzer{
	Name: "mpireq",
	Doc:  "every Isend/Irecv request must be completed (Wait/Waitall/Test) or escape",
	Run:  runMPIReq,
}

// requestCompleters are the Request methods that count as observing
// completion.
var requestCompleters = map[string]bool{
	"Wait": true, "WaitRecv": true, "Test": true,
}

func runMPIReq(prog *Program) []Diagnostic {
	mpiPath := prog.ModulePath + "/internal/mpi"
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = append(diags, checkFuncRequests(prog, pkg, fd, mpiPath)...)
			}
		}
	}
	return diags
}

// checkFuncRequests finds the Isend/Irecv request bindings in one
// function and verifies each is completed or escapes.
func checkFuncRequests(prog *Program, pkg *Package, fd *ast.FuncDecl, mpiPath string) []Diagnostic {
	type binding struct {
		obj  types.Object
		pos  ast.Node
		op   string
		done bool
	}
	var bindings []binding
	var diags []Diagnostic

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			callee := Callee(pkg, call)
			if callee == nil || !isMethodOn(callee, mpiPath, "World") {
				continue
			}
			op := callee.Name()
			if op != "Isend" && op != "Irecv" {
				continue
			}
			// The request is the first value: lhs[0] for the usual
			// req, err := ... form, lhs[i] when assigned pairwise.
			var lhs ast.Expr
			if len(as.Rhs) == 1 {
				lhs = as.Lhs[0]
			} else {
				lhs = as.Lhs[i]
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue // stored straight into a field/index: escapes
			}
			if id.Name == "_" {
				diags = append(diags, diag(prog, "mpireq", call.Pos(),
					"%s request discarded with _; complete it (Wait/Waitall/Test) or keep the handle", op))
				continue
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				obj = pkg.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			bindings = append(bindings, binding{obj: obj, pos: call, op: op})
		}
		return true
	})
	if len(bindings) == 0 {
		return diags
	}

	usesObj := func(e ast.Expr, obj types.Object) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && (pkg.Info.Uses[id] == obj) {
				found = true
				return false
			}
			return !found
		})
		return found
	}

	satisfy := func(obj types.Object) {
		for i := range bindings {
			if bindings[i].obj == obj {
				bindings[i].done = true
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			// req.Wait() / req.WaitRecv() / req.Test() complete the handle.
			if sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok && requestCompleters[sel.Sel.Name] {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil {
						satisfy(obj)
					}
				}
			}
			// Passing the handle to any call (append, mpi.Waitall, a
			// helper) hands responsibility over: it escapes.
			for _, arg := range st.Args {
				for _, b := range bindings {
					if usesObj(arg, b.obj) {
						satisfy(b.obj)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				for _, b := range bindings {
					if usesObj(res, b.obj) {
						satisfy(b.obj)
					}
				}
			}
		case *ast.AssignStmt:
			// Re-assignment into a variable, field or index keeps the
			// handle alive; discarding it into _ does not.
			allBlank := true
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
					break
				}
			}
			if allBlank {
				break
			}
			for _, rhs := range st.Rhs {
				for _, b := range bindings {
					if usesObj(rhs, b.obj) {
						satisfy(b.obj)
					}
				}
			}
		case *ast.SendStmt:
			for _, b := range bindings {
				if usesObj(st.Value, b.obj) {
					satisfy(b.obj)
				}
			}
		}
		return true
	})

	for _, b := range bindings {
		if !b.done {
			diags = append(diags, diag(prog, "mpireq", b.pos.Pos(),
				"%s request is never completed (Wait/Waitall/Test) and never escapes this function; its completion and error are lost", b.op))
		}
	}
	return diags
}
