package analysis

import (
	"go/ast"
	"go/types"
)

// The virtual-time package set lives in roots.go (VirtualTimePackages)
// so every scope-sensitive analyzer shares one table.

// forbiddenTimeFuncs are the package-level time functions that read or
// schedule against the wall clock. Pure-value helpers (time.Duration
// arithmetic, time.Unix construction) stay allowed.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// allowedRandFuncs are the math/rand constructors that produce a
// seeded generator; everything else at package level draws from the
// global (unseeded or process-seeded) source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// Wallclock forbids wall-clock reads (time.Now and friends) and global
// math/rand draws inside the virtual-time packages. Methods on a
// seeded *rand.Rand are fine — the seed comes from the plan — and so
// is any usage in packages outside the virtual-time set (generators,
// commands, benchmarks).
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/time.Since/unseeded math/rand in virtual-time packages",
	Run:  runWallclock,
}

func runWallclock(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if !prog.internalPath(pkg, VirtualTimePackages...) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := Callee(pkg, call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				sig, ok := callee.Type().(*types.Signature)
				if !ok || sig.Recv() != nil {
					return true // methods (e.g. on a seeded *rand.Rand) are fine
				}
				switch callee.Pkg().Path() {
				case "time":
					if forbiddenTimeFuncs[callee.Name()] {
						diags = append(diags, diag(prog, "wallclock", call.Pos(),
							"time.%s reads the wall clock in virtual-time package %q; thread perfmodel virtual seconds instead",
							callee.Name(), pkg.Pkg.Name()))
					}
				case "math/rand", "math/rand/v2":
					if !allowedRandFuncs[callee.Name()] {
						diags = append(diags, diag(prog, "wallclock", call.Pos(),
							"rand.%s draws from the global RNG in virtual-time package %q; use a generator seeded from the plan (rand.New(rand.NewSource(seed)))",
							callee.Name(), pkg.Pkg.Name()))
					}
				}
				return true
			})
		}
	}
	return diags
}
