package analysis

import (
	"go/ast"
	"go/types"
)

// FuncInfo pairs a declared function (or method) with its body.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// FuncIndex maps every declared function and method in the program to
// its declaration, so analyzers can chase static call edges into bodies.
func (prog *Program) FuncIndex() map[*types.Func]*FuncInfo {
	if prog.funcIndex != nil {
		return prog.funcIndex
	}
	idx := make(map[*types.Func]*FuncInfo)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx[obj] = &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				}
			}
		}
	}
	prog.funcIndex = idx
	return idx
}

// Callee resolves the static callee of a call expression: the declared
// function or method it invokes, or nil for calls through function
// values, interface methods, builtins and conversions.
func Callee(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// recvNamed unwraps a method receiver type to its named type, looking
// through one level of pointer.
func recvNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isMethodOn reports whether f is a method whose receiver's named type
// is pkgPath.typeName.
func isMethodOn(f *types.Func, pkgPath, typeName string) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := recvNamed(sig.Recv().Type())
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == typeName
}
