package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// FuncInfo pairs a declared function (or method) with its body.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// FuncIndex maps every declared function and method in the program to
// its declaration, so analyzers can chase static call edges into bodies.
func (prog *Program) FuncIndex() map[*types.Func]*FuncInfo {
	if prog.funcIndex != nil {
		return prog.funcIndex
	}
	idx := make(map[*types.Func]*FuncInfo)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx[obj] = &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				}
			}
		}
	}
	prog.funcIndex = idx
	return idx
}

// HotPathFuncs returns every function reachable over static call edges
// from the benchmarked hot-path roots (HotRootPackages plus
// HotRootMethods, minus setup-shaped functions), mapped to the display
// name of the root that reached it. metricshot and hotalloc share this
// reachability set — and, because it is cached on the Program, pay for
// the BFS once per hivelint run.
func (prog *Program) HotPathFuncs() map[*types.Func]string {
	if prog.hotFuncs != nil {
		return prog.hotFuncs
	}
	idx := prog.FuncIndex()

	// Roots: the hot packages' functions (minus setup functions) plus
	// the named per-package entry points.
	rootOf := make(map[*types.Func]string)
	for obj, fi := range idx {
		if prog.internalPath(fi.Pkg, HotRootPackages...) && !isSetupFunc(obj.Name()) {
			rootOf[obj] = fi.Pkg.Pkg.Name() + "." + funcDisplayName(obj)
		}
		for pkgName, byType := range HotRootMethods {
			if !prog.internalPath(fi.Pkg, pkgName) {
				continue
			}
			recvName := ""
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				if n := recvNamed(sig.Recv().Type()); n != nil {
					recvName = n.Obj().Name()
				}
			}
			for _, m := range byType[recvName] {
				if obj.Name() == m {
					rootOf[obj] = fi.Pkg.Pkg.Name() + "." + funcDisplayName(obj)
				}
			}
		}
	}

	// BFS over static call edges; remember which root reached each
	// function for the diagnostic message.
	via := make(map[*types.Func]string, len(rootOf))
	queue := make([]*types.Func, 0, len(rootOf))
	roots := make([]*types.Func, 0, len(rootOf))
	for obj := range rootOf {
		roots = append(roots, obj)
	}
	sort.Slice(roots, func(i, j int) bool { return rootOf[roots[i]] < rootOf[roots[j]] })
	for _, obj := range roots {
		via[obj] = rootOf[obj]
		queue = append(queue, obj)
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		fi := idx[obj]
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			c := Callee(fi.Pkg, call)
			if c == nil {
				return true
			}
			if _, known := idx[c]; known {
				if _, seen := via[c]; !seen {
					via[c] = via[obj]
					queue = append(queue, c)
				}
			}
			return true
		})
	}
	prog.hotFuncs = via
	return via
}

// Callee resolves the static callee of a call expression: the declared
// function or method it invokes, or nil for calls through function
// values, interface methods, builtins and conversions.
func Callee(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// recvNamed unwraps a method receiver type to its named type, looking
// through one level of pointer.
func recvNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isMethodOn reports whether f is a method whose receiver's named type
// is pkgPath.typeName.
func isMethodOn(f *types.Func, pkgPath, typeName string) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := recvNamed(sig.Recv().Type())
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == typeName
}
