package analysis_test

import (
	"testing"

	"hivempi/internal/analysis"
	"hivempi/internal/analysis/analysistest"
	"hivempi/internal/testutil/leakcheck"
)

// Each analyzer must fail on its seeded fixture violations and stay
// silent on the compliant code next to them (acceptance criterion:
// every analyzer demonstrated against a fixture).

func TestWallclockFixture(t *testing.T) {
	defer leakcheck.Check(t)()
	analysistest.Run(t, "testdata/wallclock", analysis.Wallclock)
}

func TestMPIReqFixture(t *testing.T) {
	defer leakcheck.Check(t)()
	analysistest.Run(t, "testdata/mpireq", analysis.MPIReq)
}

func TestLockOrderFixture(t *testing.T) {
	defer leakcheck.Check(t)()
	analysistest.Run(t, "testdata/lockorder", analysis.LockOrder)
}

func TestMetricsHotFixture(t *testing.T) {
	defer leakcheck.Check(t)()
	analysistest.Run(t, "testdata/metricshot", analysis.MetricsHot)
}

func TestCtxLeakFixture(t *testing.T) {
	defer leakcheck.Check(t)()
	analysistest.Run(t, "testdata/ctxleak", analysis.CtxLeak)
}

func TestMapOrderFixture(t *testing.T) {
	defer leakcheck.Check(t)()
	analysistest.Run(t, "testdata/maporder", analysis.MapOrder)
}

func TestFloatOrderFixture(t *testing.T) {
	defer leakcheck.Check(t)()
	analysistest.Run(t, "testdata/floatorder", analysis.FloatOrder)
}

func TestHotAllocFixture(t *testing.T) {
	defer leakcheck.Check(t)()
	analysistest.Run(t, "testdata/hotalloc", analysis.HotAlloc)
}
