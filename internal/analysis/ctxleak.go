package analysis

import (
	"go/ast"
	"go/types"
)

// The scoped package set lives in roots.go (CtxLeakPackages). PR 3's
// runStagesDAG leak — stage goroutines parked on a send nobody
// drained — is the regression class this check pins.

// CtxLeak requires every goroutine spawned in the scheduler/engine
// packages to contain a completion signal: a channel send or receive, a
// select, a range over a channel, a close, or a sync.WaitGroup.Done.
// A goroutine with none of these is fire-and-forget — nothing can
// observe it finishing, so nothing can prove it did not leak.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "goroutines in scheduler/core/datampi must signal completion (channel op, select, or WaitGroup.Done)",
	Run:  runCtxLeak,
}

func runCtxLeak(prog *Program) []Diagnostic {
	idx := prog.FuncIndex()
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if !prog.internalPath(pkg, CtxLeakPackages...) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				var body *ast.BlockStmt
				switch fun := ast.Unparen(g.Call.Fun).(type) {
				case *ast.FuncLit:
					body = fun.Body
				default:
					// go obj.method() / go fn(): inspect the callee's
					// body when it is declared in this program.
					if c := Callee(pkg, g.Call); c != nil {
						if fi, known := idx[c]; known {
							body = fi.Decl.Body
						}
					}
				}
				if body == nil {
					return true // dynamic callee: nothing to inspect
				}
				if !hasCompletionSignal(pkg, idx, body) {
					diags = append(diags, diag(prog, "ctxleak", g.Pos(),
						"goroutine has no completion signal (no channel send/receive, select, close, or WaitGroup.Done); it can leak past its spawner"))
				}
				return true
			})
		}
	}
	return diags
}

// hasCompletionSignal reports whether the body contains any construct
// by which a spawner (or test) can observe the goroutine finishing.
func hasCompletionSignal(pkg *Package, idx map[*types.Func]*FuncInfo, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if st.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[st.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			c := Callee(pkg, st)
			if c == nil {
				// close(ch) is a builtin, not a *types.Func.
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "close" {
					if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						found = true
					}
				}
				return true
			}
			if c.Name() == "Done" || c.Name() == "Wait" {
				if isMethodOn(c, "sync", "WaitGroup") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
