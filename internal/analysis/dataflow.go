package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the determinism dataflow engine: a value-flow analysis
// over the typed AST that tracks where *element order* comes from. The
// repo's core correctness claim — 22 TPC-H queries byte-identical
// across row/vectorized/adaptive/chaos/node-loss modes — died once
// already on an ordering leak the runtime suites missed for six PRs
// (PR 7's kvio tie-break: concurrent-sender arrival order leaking
// through key-equal sort ties into float partial-sum merge order). The
// engine makes that bug class a lint error instead of a soak-test
// coin flip.
//
// Model:
//
//   - SOURCES of nondeterministic order: ranging over a map (or over
//     maps.Keys/Values/All), and the arms of a select with two or more
//     communication cases (arrival order). Loop variables of an
//     unordered range and collections appended to inside one become
//     order-tainted.
//   - PROPAGATION: assignment, append/copy, composite literals, slice
//     and index expressions, string concatenation, and calls — results
//     of module-internal calls carry their callee's summary; results of
//     unknown external calls conservatively inherit their arguments'
//     taint when collection-shaped.
//   - SANITIZERS: the canonicalizing sorts (sort.*, slices.Sort*,
//     kvio.Sort) clear taint, as does any module function whose own
//     body sorts the parameter (summarized as SanitizesParams).
//   - SINKS: order-sensitive emission points — the kvio encoders
//     (Writer.Write, AppendKV), the shuffle send path (OContext.Send),
//     the comm_report/Chrome-trace writers, io/bufio/bytes/strings
//     writers, and fmt print output. Order-tainted data reaching a
//     sink is a finding. The loop variables of an unordered range are
//     the carriers: emitting loop-invariant bytes N times in map order
//     produces byte-identical output and does not fire, and neither do
//     integer/bool folds (sums, maxima, counts) over a map, which are
//     order-independent at the value level.
//
// The analysis is intra-procedural per function with inter-procedural
// function summaries (unordered results, sink parameters, sanitized
// parameters, param→result order flow) iterated to a fixpoint over the
// static call graph. All analyzers built on the engine (maporder,
// floatorder) share one Flow() pass, which itself reuses the single
// type-check pass of the loaded Program — hivelint type-checks the
// module exactly once no matter how many analyzers run.
//
// Known precision limits (kept deliberately, documented in DESIGN.md):
// taint through struct fields is tracked within one function body but
// not across functions; method receivers do not participate in
// summaries; channels other than select arms are treated as ordered
// (single-producer channels are, and multi-producer ones are flagged
// at their select/merge points).

// Finding is one determinism finding produced by the engine, tagged
// with the analyzer kind that should report it.
type Finding struct {
	Kind    string // "order-leak" (maporder) or "float-accum" (floatorder)
	Pos     token.Pos
	Pkg     *Package
	Message string
}

// FuncSummary is the inter-procedural order-flow summary of one
// declared function.
type FuncSummary struct {
	// UnorderedResults[i]: result i is built in nondeterministic order
	// inside the callee (e.g. it returns a map's keys unsorted).
	UnorderedResults []bool
	// SinkParams: bitmask of parameters whose order (or per-call value)
	// reaches an order-sensitive sink inside the callee without a
	// canonicalizing sort.
	SinkParams uint64
	// SanitizesParams: bitmask of parameters the callee sorts in place.
	SanitizesParams uint64
	// ResultParams[i]: bitmask of parameters whose order flows into
	// result i (pass-through helpers like dedupe/filter).
	ResultParams []uint64
}

// Dataflow is the engine instance for one loaded Program.
type Dataflow struct {
	prog      *Program
	idx       map[*types.Func]*FuncInfo
	summaries map[*types.Func]*FuncSummary
	findings  []Finding
}

// Flow returns the program's determinism dataflow, computing summaries
// and findings on first use and caching them so maporder and
// floatorder share one pass.
func (prog *Program) Flow() *Dataflow {
	if prog.flow != nil {
		return prog.flow
	}
	df := &Dataflow{
		prog:      prog,
		idx:       prog.FuncIndex(),
		summaries: make(map[*types.Func]*FuncSummary),
	}
	df.run()
	prog.flow = df
	return df
}

// Findings returns the engine's findings of one kind, in stable
// position order.
func (df *Dataflow) Findings(kind string) []Finding {
	var out []Finding
	for _, f := range df.findings {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// run computes function summaries to a fixpoint, then does one
// reporting pass that records findings.
func (df *Dataflow) run() {
	funcs := make([]*types.Func, 0, len(df.idx))
	for obj := range df.idx {
		funcs = append(funcs, obj)
	}
	// Deterministic order: summaries converge regardless, but findings
	// and fixpoint iteration counts must not depend on map order.
	sort.Slice(funcs, func(i, j int) bool {
		return df.prog.Fset.Position(funcs[i].Pos()).Offset < df.prog.Fset.Position(funcs[j].Pos()).Offset ||
			df.idx[funcs[i]].Pkg.Path < df.idx[funcs[j]].Pkg.Path
	})
	for _, obj := range funcs {
		df.summaries[obj] = newSummary(obj)
	}
	for pass := 0; pass < 10; pass++ {
		changed := false
		for _, obj := range funcs {
			if df.analyzeFunc(obj, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, obj := range funcs {
		df.analyzeFunc(obj, true)
	}
}

func newSummary(obj *types.Func) *FuncSummary {
	sig := obj.Type().(*types.Signature)
	return &FuncSummary{
		UnorderedResults: make([]bool, sig.Results().Len()),
		ResultParams:     make([]uint64, sig.Results().Len()),
	}
}

// orderSrc is one nondeterministic origin, rendered into messages.
type orderSrc struct {
	desc string
	pos  token.Pos
}

// taint is the order lattice value of one expression or variable: the
// set of nondeterministic origins plus a bitmask of function
// parameters whose order it inherits.
type taint struct {
	srcs   []orderSrc
	params uint64
}

func (t taint) empty() bool { return len(t.srcs) == 0 && t.params == 0 }

func (t taint) union(o taint) taint {
	out := taint{params: t.params | o.params}
	out.srcs = append(out.srcs, t.srcs...)
	for _, s := range o.srcs {
		dup := false
		for _, have := range out.srcs {
			if have.desc == s.desc && have.pos == s.pos {
				dup = true
				break
			}
		}
		if !dup && len(out.srcs) < 4 {
			out.srcs = append(out.srcs, s)
		}
	}
	return out
}

// flowWalker analyzes one function body. The analysis is
// argument-driven: a sink fires only when order-tainted *data* reaches
// it, never merely because it executes inside an unordered loop —
// emitting loop-invariant bytes N times in map order produces
// identical output, and integer folds (sums, maxima) over a map are
// order-independent. The loop variables of an unordered range are the
// taint carriers.
type flowWalker struct {
	df      *Dataflow
	pkg     *Package
	obj     *types.Func
	sig     *types.Signature
	sum     *FuncSummary
	vars    map[types.Object]taint
	fields  map[string]taint
	report  bool
	changed bool
}

// analyzeFunc runs one intra-procedural pass over obj's body, updating
// its summary; report=true also records findings. Returns whether the
// summary changed.
func (df *Dataflow) analyzeFunc(obj *types.Func, report bool) bool {
	fi := df.idx[obj]
	w := &flowWalker{
		df:     df,
		pkg:    fi.Pkg,
		obj:    obj,
		sig:    obj.Type().(*types.Signature),
		sum:    df.summaries[obj],
		vars:   make(map[types.Object]taint),
		fields: make(map[string]taint),
		report: report,
	}
	// Seed: every parameter carries its own order/value mark so the
	// walk discovers which parameters reach sinks or results.
	for i := 0; i < w.sig.Params().Len() && i < 64; i++ {
		if p := w.sig.Params().At(i); p.Name() != "" && p.Name() != "_" {
			w.vars[p] = taint{params: 1 << uint(i)}
		}
	}
	w.walkStmt(fi.Decl.Body)
	return w.changed
}

// ---- summary mutation helpers (track convergence) ----

func (w *flowWalker) markSinkParams(mask uint64) {
	if mask&^w.sum.SinkParams != 0 {
		w.sum.SinkParams |= mask
		w.changed = true
	}
}

func (w *flowWalker) markSanitizes(mask uint64) {
	if mask&^w.sum.SanitizesParams != 0 {
		w.sum.SanitizesParams |= mask
		w.changed = true
	}
}

func (w *flowWalker) markResult(i int, t taint) {
	if i >= len(w.sum.UnorderedResults) {
		return
	}
	if len(t.srcs) > 0 && !w.sum.UnorderedResults[i] {
		w.sum.UnorderedResults[i] = true
		w.changed = true
	}
	if t.params&^w.sum.ResultParams[i] != 0 {
		w.sum.ResultParams[i] |= t.params
		w.changed = true
	}
}

func (w *flowWalker) finding(kind string, pos token.Pos, format string, args ...any) {
	if !w.report {
		return
	}
	w.df.findings = append(w.df.findings, Finding{
		Kind:    kind,
		Pos:     pos,
		Pkg:     w.pkg,
		Message: fmt.Sprintf(format, args...),
	})
}

// describe renders a taint's origin for a finding message.
func describe(t taint) string {
	if len(t.srcs) == 0 {
		return "a nondeterministic source"
	}
	parts := make([]string, 0, len(t.srcs))
	for _, s := range t.srcs {
		parts = append(parts, s.desc)
	}
	return strings.Join(parts, " and ")
}

// ---- places (assignable variables and fields) ----

// place resolves an assignable expression to its taint storage key:
// a *types.Var for locals/params, a field ID string for struct fields,
// or nil for untracked places (map/slice elements, blank).
func (w *flowWalker) place(e ast.Expr) any {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		if obj := w.pkg.Info.Defs[e]; obj != nil {
			return obj
		}
		if obj := w.pkg.Info.Uses[e]; obj != nil {
			return obj
		}
	case *ast.SelectorExpr:
		if s, ok := w.pkg.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			if n := recvNamed(s.Recv()); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + e.Sel.Name
			}
		}
	case *ast.StarExpr:
		return w.place(e.X)
	}
	return nil
}

func (w *flowWalker) getPlace(p any) taint {
	switch p := p.(type) {
	case types.Object:
		return w.vars[p]
	case string:
		return w.fields[p]
	}
	return taint{}
}

func (w *flowWalker) setPlace(p any, t taint) {
	switch p := p.(type) {
	case types.Object:
		if t.empty() {
			delete(w.vars, p)
		} else {
			w.vars[p] = t
		}
	case string:
		if t.empty() {
			delete(w.fields, p)
		} else {
			w.fields[p] = t
		}
	}
}

// clearPlaceOf removes taint from the place behind an expression (used
// by sanitizers: sort.Slice(x, ...) cleans x).
func (w *flowWalker) clearPlaceOf(e ast.Expr) {
	if p := w.place(e); p != nil {
		w.setPlace(p, taint{})
	}
	// &x sanitizes x too (sort.Sort(byKey(&x)) shapes).
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		w.clearPlaceOf(u.X)
	}
}

// ---- statement walk ----

func (w *flowWalker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range st.List {
			w.walkStmt(sub)
		}
	case *ast.IfStmt:
		w.walkStmt(st.Init)
		w.walkExpr(st.Cond)
		w.walkStmt(st.Body)
		w.walkStmt(st.Else)
	case *ast.ForStmt:
		w.walkStmt(st.Init)
		w.walkExpr(st.Cond)
		w.walkStmt(st.Post)
		w.walkStmt(st.Body)
	case *ast.RangeStmt:
		w.walkRange(st)
	case *ast.SelectStmt:
		w.walkSelect(st)
	case *ast.SwitchStmt:
		w.walkStmt(st.Init)
		w.walkExpr(st.Tag)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.walkExpr(e)
			}
			for _, sub := range cc.Body {
				w.walkStmt(sub)
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init)
		w.walkStmt(st.Assign)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, sub := range cc.Body {
				w.walkStmt(sub)
			}
		}
	case *ast.ExprStmt:
		w.walkExpr(st.X)
	case *ast.AssignStmt:
		w.walkAssign(st)
	case *ast.ReturnStmt:
		w.walkReturn(st)
	case *ast.DeferStmt:
		w.walkExpr(st.Call)
	case *ast.GoStmt:
		w.walkExpr(st.Call)
	case *ast.SendStmt:
		w.walkExpr(st.Chan)
		w.walkExpr(st.Value)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						t := w.walkExpr(vs.Values[i])
						if obj := w.pkg.Info.Defs[name]; obj != nil {
							w.setPlace(obj, t)
						}
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.IncDecStmt:
		w.walkExpr(st.X)
	}
}

// walkRange handles range statements: classify the iteration order and
// taint the loop variables when the order is nondeterministic or
// parameter-derived — they are the carriers that make downstream
// emission and accumulation findings fire.
func (w *flowWalker) walkRange(st *ast.RangeStmt) {
	xt := w.walkExpr(st.X)
	var lt taint

	if src, ok := w.unorderedRangeSource(st.X); ok {
		lt = lt.union(taint{srcs: []orderSrc{{desc: src, pos: st.Pos()}}})
	}
	if !xt.empty() {
		// Ranging over an order-tainted collection: the loop variables
		// arrive in that nondeterministic (or parameter-supplied) order.
		lt = lt.union(xt)
	}

	if !lt.empty() {
		for _, lv := range []ast.Expr{st.Key, st.Value} {
			if lv == nil {
				continue
			}
			if p := w.place(lv); p != nil {
				w.setPlace(p, lt)
			}
		}
		w.walkStmt(st.Body)
		// The loop variables do not outlive the loop.
		for _, lv := range []ast.Expr{st.Key, st.Value} {
			if lv == nil {
				continue
			}
			if id, ok := lv.(*ast.Ident); ok {
				if obj := w.pkg.Info.Defs[id]; obj != nil {
					delete(w.vars, obj)
				}
			}
		}
		return
	}
	w.walkStmt(st.Body)
}

// unorderedRangeSource reports whether ranging over x iterates in
// nondeterministic order by construction: map types, and the map
// iterators maps.Keys/maps.Values/maps.All.
func (w *flowWalker) unorderedRangeSource(x ast.Expr) (string, bool) {
	if tv, ok := w.pkg.Info.Types[x]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return "map iteration order", true
		}
	}
	if call, ok := ast.Unparen(x).(*ast.CallExpr); ok {
		if c := Callee(w.pkg, call); c != nil && c.Pkg() != nil && c.Pkg().Path() == "maps" {
			switch c.Name() {
			case "Keys", "Values", "All":
				return "maps." + c.Name() + " iteration order", true
			}
		}
	}
	return "", false
}

// walkSelect handles select statements: with two or more communication
// cases the chosen arm is arrival order, a nondeterministic source.
func (w *flowWalker) walkSelect(st *ast.SelectStmt) {
	comm := 0
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	unordered := comm >= 2
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if !unordered {
			w.walkStmt(cc.Comm)
			for _, sub := range cc.Body {
				w.walkStmt(sub)
			}
			continue
		}
		// Values received in the arm carry arrival-order taint: the
		// received payloads are what can leak arrival order downstream.
		at := taint{srcs: []orderSrc{{desc: "select arrival order", pos: st.Pos()}}}
		if as, ok := cc.Comm.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if p := w.place(lhs); p != nil {
					w.setPlace(p, at)
				}
			}
		} else {
			w.walkStmt(cc.Comm)
		}
		for _, sub := range cc.Body {
			w.walkStmt(sub)
		}
	}
}

// walkAssign handles assignments: sanitize-by-reassignment, append
// accumulation inside unordered regions, and float accumulation
// findings.
func (w *flowWalker) walkAssign(st *ast.AssignStmt) {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
			// x, y := f(): distribute the call's per-result taint.
			if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
				ts := w.callResultTaints(call, len(st.Lhs))
				for i, lhs := range st.Lhs {
					if p := w.place(lhs); p != nil {
						w.setPlace(p, ts[i])
					}
				}
				return
			}
		}
		for i, rhs := range st.Rhs {
			t := w.walkExpr(rhs)
			if i < len(st.Lhs) {
				w.maybeFloatAccum(st, st.Lhs[i], rhs, t)
				// Numeric/bool targets drop taint: folding tainted
				// values into an int max/sum/count is order-independent
				// (float folds were just checked above, before the
				// drop).
				if inertType(w.exprType(st.Lhs[i])) {
					t = taint{}
				}
				if p := w.place(st.Lhs[i]); p != nil {
					w.setPlace(p, t)
				}
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		t := w.walkExpr(st.Rhs[0])
		w.maybeFloatAccumOp(st, st.Lhs[0], t)
		// Accumulating order-tainted content (s += elem,
		// buf += render(k)) builds the string/slice in the taint's
		// order.
		if st.Tok == token.ADD_ASSIGN && isOrderCarrying(w.exprType(st.Lhs[0])) && !t.empty() {
			if p := w.place(st.Lhs[0]); p != nil {
				w.setPlace(p, w.getPlace(p).union(t))
			}
		}
	default:
		for _, rhs := range st.Rhs {
			w.walkExpr(rhs)
		}
	}
}

// maybeFloatAccum flags x = x + e / x = e + x float accumulation whose
// operand order is nondeterministic.
func (w *flowWalker) maybeFloatAccum(st *ast.AssignStmt, lhs, rhs ast.Expr, rhsTaint taint) {
	be, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok || (be.Op != token.ADD && be.Op != token.MUL) {
		return
	}
	lp := w.place(lhs)
	if lp == nil {
		return
	}
	if xp := w.place(be.X); xp != lp {
		if yp := w.place(be.Y); yp != lp {
			return
		}
	}
	w.floatAccumFinding(st.Pos(), lhs, rhsTaint)
}

// maybeFloatAccumOp flags x += e / x *= e float accumulation.
func (w *flowWalker) maybeFloatAccumOp(st *ast.AssignStmt, lhs ast.Expr, rhsTaint taint) {
	w.floatAccumFinding(st.Pos(), lhs, rhsTaint)
}

// floatAccumFinding emits a float-accum finding when lhs is a float
// accumulator (not element-indexed — per-key map accumulation is
// order-independent) and the folded operand is order-tainted: its
// values arrive in map-range or select-arrival order.
func (w *flowWalker) floatAccumFinding(pos token.Pos, lhs ast.Expr, rhsTaint taint) {
	if !w.report {
		return
	}
	if _, indexed := ast.Unparen(lhs).(*ast.IndexExpr); indexed {
		return
	}
	if !isFloat(w.exprType(lhs)) {
		return
	}
	src := rhsTaint
	if len(src.srcs) == 0 {
		return
	}
	w.finding("float-accum", pos,
		"float accumulation order derives from %s; float addition is not associative, so the sum's bits depend on iteration order — accumulate over a sorted sequence (or sort the operands) to keep exact aggregates byte-identical",
		describe(src))
}

// walkReturn folds returned taint into the function summary.
func (w *flowWalker) walkReturn(st *ast.ReturnStmt) {
	if len(st.Results) == 1 && len(w.sum.UnorderedResults) > 1 {
		if call, ok := ast.Unparen(st.Results[0]).(*ast.CallExpr); ok {
			ts := w.callResultTaints(call, len(w.sum.UnorderedResults))
			for i, t := range ts {
				w.markResult(i, t)
			}
			return
		}
	}
	for i, res := range st.Results {
		w.markResult(i, w.walkExpr(res))
	}
}

// ---- expression walk ----

// walkExpr computes the order taint of an expression, processing any
// calls inside it for sink/sanitizer/summary effects.
func (w *flowWalker) walkExpr(e ast.Expr) taint {
	switch e := e.(type) {
	case nil:
		return taint{}
	case *ast.Ident:
		if obj := w.pkg.Info.Uses[e]; obj != nil {
			return w.vars[obj]
		}
		return taint{}
	case *ast.ParenExpr:
		return w.walkExpr(e.X)
	case *ast.SelectorExpr:
		if s, ok := w.pkg.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			base := w.walkExpr(e.X)
			if p := w.place(e); p != nil {
				return w.getPlace(p).union(base)
			}
			return base
		}
		return w.walkExpr(e.X)
	case *ast.CallExpr:
		ts := w.callResultTaints(e, 1)
		return ts[0]
	case *ast.BinaryExpr:
		return w.walkExpr(e.X).union(w.walkExpr(e.Y))
	case *ast.UnaryExpr:
		return w.walkExpr(e.X)
	case *ast.StarExpr:
		return w.walkExpr(e.X)
	case *ast.IndexExpr:
		// An element read out of an order-tainted sequence is itself
		// position-dependent. Map indexing is deterministic.
		it := w.walkExpr(e.Index)
		xt := w.walkExpr(e.X)
		if tv, ok := w.pkg.Info.Types[e.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return it
			}
		}
		return xt.union(it)
	case *ast.SliceExpr:
		return w.walkExpr(e.X)
	case *ast.TypeAssertExpr:
		return w.walkExpr(e.X)
	case *ast.CompositeLit:
		var t taint
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.union(w.walkExpr(kv.Value))
				continue
			}
			t = t.union(w.walkExpr(el))
		}
		return t
	case *ast.FuncLit:
		// Closures share the enclosing variables' taint; their bodies
		// are walked for sink effects at the definition point.
		w.walkStmt(e.Body)
		return taint{}
	}
	return taint{}
}

// callResultTaints processes one call for its effects (sinks,
// sanitizers, summaries) and returns the taint of each of nres
// results.
func (w *flowWalker) callResultTaints(call *ast.CallExpr, nres int) []taint {
	out := make([]taint, nres)

	// Builtins first: append and copy are propagation, not calls.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				// Appending order-tainted elements (the loop variables
				// of an unordered range) builds the slice in that order.
				var t taint
				for _, arg := range call.Args {
					t = t.union(w.walkExpr(arg))
				}
				out[0] = t
				return out
			case "copy":
				st := w.walkExpr(call.Args[1])
				w.walkExpr(call.Args[0])
				if p := w.place(call.Args[0]); p != nil {
					w.setPlace(p, w.getPlace(p).union(st))
				}
				return out
			default:
				for _, arg := range call.Args {
					w.walkExpr(arg)
				}
				return out
			}
		}
	}

	argTaints := make([]taint, len(call.Args))
	var argUnion taint
	for i, arg := range call.Args {
		argTaints[i] = w.walkExpr(arg)
		argUnion = argUnion.union(argTaints[i])
	}
	// Method calls: walk the receiver expression once — its taint joins
	// the argument union so methods like Builder.String() propagate the
	// receiver's accumulated order.
	var recvTaint taint
	funWalked := false
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := w.pkg.Info.Selections[sel]; isSel {
			recvTaint = w.walkExpr(sel.X)
			argUnion = argUnion.union(recvTaint)
			funWalked = true
		}
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately-invoked literal: walk its body.
		w.walkStmt(fl.Body)
		return out
	}

	callee := Callee(w.pkg, call)
	if callee == nil {
		// Dynamic call (func value, interface method not resolved):
		// conservative collection pass-through.
		if !funWalked {
			w.walkExpr(call.Fun)
		}
		for i := range out {
			out[i] = w.passThrough(argUnion)
		}
		return out
	}

	// Sanitizers: canonicalizing sorts clean their argument in place.
	if mask, ok := w.sanitizerArgs(callee, call); ok {
		for i, arg := range call.Args {
			if mask&(1<<uint(i)) != 0 {
				w.clearPlaceOf(arg)
			}
		}
		return out
	}

	// Sinks: order-sensitive emission points.
	if desc, ok := w.sinkCall(callee); ok {
		w.sinkHit(call.Pos(), desc, argUnion)
		return out
	}

	// Module-internal callee: apply its summary.
	if sum, known := w.df.summaries[callee]; known {
		// Parameters the callee sorts are clean afterwards.
		if sum.SanitizesParams != 0 {
			for i, arg := range call.Args {
				if sum.SanitizesParams&(1<<uint(paramIndex(w.sig, callee, i))) != 0 {
					w.clearPlaceOf(arg)
					argTaints[i] = taint{}
				}
			}
		}
		// Parameters that reach a sink inside the callee: passing
		// order-tainted data (or calling per-iteration in an unordered
		// region) leaks order through it.
		if sum.SinkParams != 0 {
			var leaked taint
			for i := range call.Args {
				if sum.SinkParams&(1<<uint(paramIndex(w.sig, callee, i))) != 0 {
					leaked = leaked.union(argTaints[i])
				}
			}
			w.sinkHit(call.Pos(), funcDisplayName(callee)+" (which emits its argument to an order-sensitive sink)", leaked)
		}
		for i := range out {
			if i < len(sum.UnorderedResults) && sum.UnorderedResults[i] {
				out[i] = out[i].union(taint{srcs: []orderSrc{{
					desc: "the unordered result of " + funcDisplayName(callee),
					pos:  call.Pos(),
				}}})
			}
			if i < len(sum.ResultParams) && sum.ResultParams[i] != 0 {
				for j := range call.Args {
					if sum.ResultParams[i]&(1<<uint(j)) != 0 && j < len(argTaints) {
						out[i] = out[i].union(argTaints[j])
					}
				}
			}
		}
		return out
	}

	// Unknown external callee: results that are collection-shaped
	// conservatively inherit argument order (strings.Join,
	// slices.Collect, bytes.Join ... all preserve element order).
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil {
		for i := 0; i < nres && i < sig.Results().Len(); i++ {
			if isOrderCarrying(sig.Results().At(i).Type()) {
				out[i] = w.passThrough(argUnion)
			}
		}
	}
	return out
}

// paramIndex maps a call-site argument index to the callee's parameter
// index, folding variadic overflow onto the last parameter.
func paramIndex(_ *types.Signature, callee *types.Func, argIdx int) int {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return argIdx
	}
	if argIdx >= sig.Params().Len() {
		return sig.Params().Len() - 1
	}
	return argIdx
}

// passThrough keeps only taint worth propagating through an opaque
// callee.
func (w *flowWalker) passThrough(t taint) taint { return t }

// sinkHit handles order taint arriving at a sink: nondeterministic
// sources become findings, parameter marks become summary facts. Only
// the taint of the data actually passed matters — a sink executing
// inside an unordered loop with untainted arguments emits the same
// bytes regardless of iteration order.
func (w *flowWalker) sinkHit(pos token.Pos, desc string, argTaint taint) {
	full := argTaint
	if full.params != 0 {
		w.markSinkParams(full.params)
	}
	if len(full.srcs) > 0 {
		w.finding("order-leak", pos,
			"%s receives data whose order derives from %s without an intervening canonicalizing sort; byte-identical output across runs requires a deterministic emission order (sort keys first, or emit through kvio.Sort)",
			desc, describe(full))
	}
}

// sanitizerArgs reports whether callee is a canonicalizing sort and
// which argument indices it sanitizes.
func (w *flowWalker) sanitizerArgs(callee *types.Func, call *ast.CallExpr) (uint64, bool) {
	if callee.Pkg() == nil {
		return 0, false
	}
	switch callee.Pkg().Path() {
	case "sort":
		switch callee.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return 1, true
		}
	case "slices":
		switch callee.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return 1, true
		}
	}
	if callee.Pkg().Path() == w.df.prog.ModulePath+"/internal/kvio" && callee.Name() == "Sort" {
		return 1, true
	}
	return 0, false
}

// sinkCall reports whether callee is an order-sensitive emission point.
func (w *flowWalker) sinkCall(callee *types.Func) (string, bool) {
	if callee.Pkg() == nil {
		return "", false
	}
	mod := w.df.prog.ModulePath
	name := callee.Name()
	switch callee.Pkg().Path() {
	case "fmt":
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name + " output", true
		}
	case mod + "/internal/kvio":
		if name == "AppendKV" {
			return "the kvio wire encoder (AppendKV)", true
		}
	case mod + "/internal/obs":
		if name == "WriteChromeTrace" {
			return "the Chrome-trace writer", true
		}
	case mod + "/internal/obs/comm":
		if name == "WriteJSON" {
			return "the comm_report writer", true
		}
	}
	switch {
	case isMethodOn(callee, mod+"/internal/kvio", "Writer") && name == "Write":
		return "the kvio run writer", true
	case isMethodOn(callee, mod+"/internal/datampi", "OContext") && name == "Send":
		return "the shuffle send path (OContext.Send)", true
	case isMethodOn(callee, "io", "Writer") && name == "Write":
		return "an io.Writer", true
	case isMethodOn(callee, "bufio", "Writer") && strings.HasPrefix(name, "Write"):
		return "a bufio.Writer", true
	case isMethodOn(callee, "bytes", "Buffer") && strings.HasPrefix(name, "Write"):
		return "a bytes.Buffer", true
	case isMethodOn(callee, "strings", "Builder") && strings.HasPrefix(name, "Write"):
		return "a strings.Builder", true
	}
	return "", false
}

// ---- type helpers ----

func (w *flowWalker) exprType(e ast.Expr) types.Type {
	if tv, ok := w.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// inertType reports whether values of the type cannot carry observable
// order: integers and bools. Folding a map's values into an int
// max/sum/count yields the same scalar in any iteration order, so
// assignment into such a target is sound to drop. Floats are NOT
// inert — their folds are non-associative, and a tainted float copy
// must keep its mark so a later `sum += x` still fires.
func inertType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// isOrderCarrying reports whether a type can carry element order:
// slices, arrays and strings (the shapes taint propagates through).
func isOrderCarrying(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Info()&types.IsString != 0
	}
	return false
}
