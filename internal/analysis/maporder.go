package analysis

// MapOrder is the determinism analyzer for output order: it reports
// every place where map iteration order (or select arrival order)
// flows into an order-sensitive sink — the kvio encoders, the shuffle
// send path, the comm_report/Chrome-trace writers, io/bufio/bytes/
// strings writers and fmt output — without passing through a
// canonicalizing sort. This is exactly the leak class behind PR 7's
// latent kvio tie-break bug, caught at lint time instead of six PRs
// later.
//
// The analysis is the shared determinism dataflow engine (dataflow.go):
// value-flow with inter-procedural summaries, so a helper that emits
// its slice parameter verbatim propagates the obligation to sort back
// to its callers, and a helper that returns a map's keys unsorted
// propagates the taint forward.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map-range/select order must not reach encoders, shuffle flush or result output without a canonicalizing sort",
	Run:  runMapOrder,
}

func runMapOrder(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, f := range prog.Flow().Findings("order-leak") {
		diags = append(diags, diag(prog, "maporder", f.Pos, "%s", f.Message))
	}
	return diags
}
