package analysistest_test

import (
	"fmt"
	"strings"
	"testing"

	"hivempi/internal/analysis"
	"hivempi/internal/analysis/analysistest"
	"hivempi/internal/testutil/leakcheck"
)

// recordingTB intercepts the harness's failure calls so the harness
// itself can be tested. Fatalf panics with stopRun to model
// testing.T.Fatalf's goroutine exit.
type recordingTB struct {
	testing.TB
	failed bool
	fatal  string
	errs   []string
}

type stopRun struct{}

func (r *recordingTB) Helper() {}

func (r *recordingTB) Fatalf(format string, args ...any) {
	r.failed = true
	r.fatal = fmt.Sprintf(format, args...)
	panic(stopRun{})
}

func (r *recordingTB) Errorf(format string, args ...any) {
	r.failed = true
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
}

// runRecorded runs the harness against a recording TB, absorbing the
// Fatalf panic.
func runRecorded(t *testing.T, dir string, a *analysis.Analyzer) *recordingTB {
	t.Helper()
	rec := &recordingTB{TB: t}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopRun); !ok {
					panic(r)
				}
			}
		}()
		analysistest.Run(rec, dir, a)
	}()
	return rec
}

// Want comments spread across multiple files of one fixture package
// are all collected and matched.
func TestMultiFileFixture(t *testing.T) {
	defer leakcheck.Check(t)()
	analysistest.Run(t, "testdata/multifile", analysis.Wallclock)
}

// A want on the same line as a (stale) lint:ignore directive claims
// the stale-suppression diagnostic reported at that line.
func TestWantOnSuppressionLine(t *testing.T) {
	defer leakcheck.Check(t)()
	analysistest.Run(t, "testdata/suppressline", analysis.Wallclock)
}

// A fixture that fails to type-check must fail the test loudly, not
// skip silently: every want in an unloadable fixture would otherwise
// rot unnoticed.
func TestBrokenFixtureFailsLoudly(t *testing.T) {
	defer leakcheck.Check(t)()
	rec := runRecorded(t, "testdata/broken", analysis.Wallclock)
	if !rec.failed {
		t.Fatal("broken fixture did not fail the harness")
	}
	if !strings.Contains(rec.fatal, "load fixture") {
		t.Fatalf("broken fixture failure = %q, want a loud load failure naming the fixture", rec.fatal)
	}
}

// The harness reports both direction of mismatch: a diagnostic with no
// want is unexpected, and a want with no diagnostic is unmatched. The
// multifile fixture run under the wrong analyzer produces only
// unmatched wants (mpireq reports nothing there).
func TestUnmatchedWantsReported(t *testing.T) {
	defer leakcheck.Check(t)()
	rec := runRecorded(t, "testdata/multifile", analysis.MPIReq)
	if !rec.failed || len(rec.errs) == 0 {
		t.Fatal("running the wrong analyzer must leave wants unmatched and fail")
	}
	for _, e := range rec.errs {
		if !strings.Contains(e, "expected diagnostic containing") {
			t.Fatalf("unexpected harness error %q", e)
		}
	}
}
