// This fixture does not type-check. The harness must fail loudly on
// it — a fixture that silently fails to load would let every want in
// it rot unnoticed.
package perfmodel

func broken() int { return undefinedIdentifier }
