// A want comment may share a line with a lint:ignore directive: the
// harness scans raw source lines, so expectations attached to
// directive lines are honored. The stale directive below is diagnosed
// at its own position, and the want on that same line claims it.
package perfmodel

func nothingToSuppress() int {
	//lint:ignore hivelint/wallclock this directive is stale by design // want "suppresses nothing"
	return 1
}
