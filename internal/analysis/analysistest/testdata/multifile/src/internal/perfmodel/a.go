// Multi-file fixture: want comments in every file of the package must
// be collected and matched, not just the first file read.
package perfmodel

import "time"

func fileANow() time.Time { return time.Now() } // want "time.Now reads the wall clock"
