package perfmodel

import "time"

func fileBSince(t0 time.Time) time.Duration { return time.Since(t0) } // want "time.Since reads the wall clock"

func fileBOK(d time.Duration) time.Duration { return 2 * d }
