// Package analysistest is the golden-fixture harness for the hivelint
// analyzers. A fixture is a miniature module tree under
// testdata/<analyzer>/src with module path "hivempi", so package paths
// inside fixtures match the real project's paths exactly and the
// analyzers run unmodified. Expectations are `// want "substring"`
// comments: each declares that a diagnostic whose message contains the
// substring must be reported on that line.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"hivempi/internal/analysis"
)

// FixtureModulePath is the module path every fixture tree uses; it
// matches the real module so path-scoped analyzers behave identically.
const FixtureModulePath = "hivempi"

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

type expectation struct {
	file string
	line int
	text string
	hit  bool
}

// Run loads the fixture rooted at dir/src and checks the analyzer's
// diagnostics (after suppression filtering) against the fixture's want
// comments: every want must be matched by a diagnostic on its line,
// and every diagnostic must be claimed by a want. It takes testing.TB
// so the harness itself is testable against a recording TB (see
// analysistest_test.go); a fixture that fails to parse or type-check
// is a Fatalf, never a silent skip.
func Run(t testing.TB, dir string, a *analysis.Analyzer) {
	t.Helper()
	root := filepath.Join(dir, "src")
	dirs, err := analysis.DiscoverDirs(root)
	if err != nil {
		t.Fatalf("discover %s: %v", root, err)
	}
	prog, err := analysis.Load(root, FixtureModulePath, dirs)
	if err != nil {
		t.Fatalf("load fixture %s: %v", root, err)
	}
	diags := analysis.RunAnalyzers(prog, []*analysis.Analyzer{a})

	wants := collectWants(t, prog.Fset, root)

	for _, d := range diags {
		claimed := false
		for i := range wants {
			w := &wants[i]
			if !w.hit && w.file == d.File && w.line == d.Line && strings.Contains(d.Message, w.text) {
				w.hit = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.text)
		}
	}
}

// collectWants scans every fixture file for want comments. It reads
// the files directly (rather than through the AST) so wants attached
// to any token position are found uniformly.
func collectWants(t testing.TB, fset *token.FileSet, root string) []expectation {
	t.Helper()
	var wants []expectation
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				text := arg[1]
				if text == "" {
					text = arg[2]
				}
				wants = append(wants, expectation{file: path, line: i + 1, text: text})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan wants: %v", err)
	}
	return wants
}
