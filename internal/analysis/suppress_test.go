package analysis_test

import (
	"strings"
	"testing"

	"hivempi/internal/analysis"
)

// TestSuppressions covers the suppression policy end to end: a
// well-formed lint:ignore silences the diagnostic on the next line, a
// reason-less directive is rejected (and silences nothing), and a
// directive matching no diagnostic is reported as stale.
func TestSuppressions(t *testing.T) {
	root := "testdata/suppress/src"
	dirs, err := analysis.DiscoverDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.Load(root, "hivempi", dirs)
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.RunAnalyzers(prog, []*analysis.Analyzer{analysis.Wallclock})

	var gotWallclock, gotNoReason, gotStale int
	for _, d := range diags {
		switch {
		case d.Analyzer == "wallclock":
			gotWallclock++
		case strings.Contains(d.Message, "needs a reason"):
			gotNoReason++
		case strings.Contains(d.Message, "suppresses nothing"):
			gotStale++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	// suppressedOK's violation is silenced; noReason's is not (its
	// directive is invalid), so exactly one wallclock diagnostic.
	if gotWallclock != 1 {
		t.Errorf("wallclock diagnostics = %d, want 1 (suppressed site must be silent, reason-less site must not be)", gotWallclock)
	}
	if gotNoReason != 1 {
		t.Errorf("missing-reason diagnostics = %d, want 1", gotNoReason)
	}
	if gotStale != 1 {
		t.Errorf("stale-suppression diagnostics = %d, want 1", gotStale)
	}
}
