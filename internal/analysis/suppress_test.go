package analysis_test

import (
	"strings"
	"testing"

	"hivempi/internal/analysis"
	"hivempi/internal/testutil/leakcheck"
)

// TestSuppressions covers the suppression policy end to end: a
// well-formed lint:ignore silences the diagnostic on the next line, a
// reason-less directive is rejected (and silences nothing), a
// directive matching no diagnostic is reported as stale, and a
// directive naming an unregistered analyzer (a typo) is reported as
// stale rather than silently skipped.
func TestSuppressions(t *testing.T) {
	defer leakcheck.Check(t)()
	root := "testdata/suppress/src"
	dirs, err := analysis.DiscoverDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.Load(root, "hivempi", dirs)
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.RunAnalyzers(prog, []*analysis.Analyzer{analysis.Wallclock})

	var gotWallclock, gotNoReason, gotStale, gotUnknown int
	for _, d := range diags {
		switch {
		case d.Analyzer == "wallclock":
			gotWallclock++
		case strings.Contains(d.Message, "needs a reason"):
			gotNoReason++
		case strings.Contains(d.Message, "suppresses nothing"):
			gotStale++
		case strings.Contains(d.Message, "names no registered analyzer"):
			gotUnknown++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	// suppressedOK's violation is silenced; noReason's and
	// unknownAnalyzer's are not (their directives are invalid), so
	// exactly two wallclock diagnostics.
	if gotWallclock != 2 {
		t.Errorf("wallclock diagnostics = %d, want 2 (suppressed site must be silent; reason-less and typoed sites must not be)", gotWallclock)
	}
	if gotNoReason != 1 {
		t.Errorf("missing-reason diagnostics = %d, want 1", gotNoReason)
	}
	if gotStale != 1 {
		t.Errorf("stale-suppression diagnostics = %d, want 1", gotStale)
	}
	if gotUnknown != 1 {
		t.Errorf("unknown-analyzer diagnostics = %d, want 1 (typoed target must be reported, not skipped)", gotUnknown)
	}
}
