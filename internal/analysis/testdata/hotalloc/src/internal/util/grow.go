// util is not a hot-root package, but Grow is called from kvio, so the
// BFS marks it hot and prices its per-iteration growth.
package util

func Grow(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // want "append inside a loop grows out, declared with no capacity"
	}
	return out
}

// Unreachable from any hot root: not priced.
func coldHelper(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
