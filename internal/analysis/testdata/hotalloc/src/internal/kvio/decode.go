// Fixture for the hotalloc analyzer: kvio is a hot-root package, so
// every non-setup function here is on the benchmarked hot path.
// Per-iteration allocations (uncapped append, string concat, Sprintf,
// escaping closures, any-boxing) are violations; preallocated slices,
// cold error paths, goroutine spawns and setup functions are not.
package kvio

import (
	"errors"
	"fmt"

	"hivempi/internal/util"
)

type KV struct{ Key, Val []byte }

var errEmptyKey = errors.New("empty key")

func badAppend(kvs []KV) [][]byte {
	var out [][]byte
	for _, kv := range kvs {
		out = append(out, kv.Key) // want "append inside a loop grows out, declared with no capacity"
	}
	return out
}

func okPrealloc(kvs []KV) [][]byte {
	out := make([][]byte, 0, len(kvs))
	for _, kv := range kvs {
		out = append(out, kv.Key)
	}
	return out
}

func badConcat(keys []string) string {
	s := ""
	for _, k := range keys {
		s = s + k // want "string concatenation with + inside a loop"
	}
	return s
}

func badSprintf(kvs []KV) []string {
	out := make([]string, 0, len(kvs))
	for i, kv := range kvs {
		out = append(out, fmt.Sprintf("%d:%s", i, kv.Key)) // want "fmt.Sprintf inside a loop"
	}
	return out
}

func badClosure(kvs []KV, emit func(func() []byte)) {
	for _, kv := range kvs {
		kv := kv
		emit(func() []byte { return kv.Key }) // want "closure capturing outer variables allocated per loop iteration"
	}
}

func badBox(vals []int64, sink []any) []any {
	for _, v := range vals {
		sink = append(sink, any(v)) // want "conversion to any inside a loop boxes the value"
	}
	return sink
}

// Reachability: helpers called from a hot root are hot even in another
// package — see util.Grow's want in its own file.
func callsHelper(keys []string) []string {
	return util.Grow(keys)
}

// Terminating if-bodies are cold exit paths; fmt.Errorf is the cold
// path by definition.
func okColdError(kvs []KV) error {
	for i, kv := range kvs {
		if len(kv.Key) == 0 {
			return fmt.Errorf("record %d: %w", i, errEmptyKey)
		}
	}
	return nil
}

// A switch case ending in return is cold too.
func okColdSwitch(kvs []KV) error {
	for _, kv := range kvs {
		switch {
		case len(kv.Key) == 0:
			return fmt.Errorf("bad record %q", kv.Key)
		default:
		}
	}
	return nil
}

// But a case that falls through to the next iteration runs hot.
func badHotCase(kvs []KV) string {
	s := ""
	for _, kv := range kvs {
		switch {
		case len(kv.Key) > 0:
			s = s + string(kv.Key) // want "string concatenation with + inside a loop"
		}
	}
	return s
}

// The goroutine spawn dominates the closure allocation: exempt.
func okGoClosure(kvs []KV, ch chan<- []byte) {
	for _, kv := range kvs {
		kv := kv
		go func() { ch <- kv.Key }()
	}
}

// []error collection happens on failure paths, not per record: exempt.
func okErrorCollect(kvs []KV) []error {
	var errs []error
	for _, kv := range kvs {
		if len(kv.Key) == 0 {
			errs = append(errs, errEmptyKey)
		}
	}
	return errs
}

// Setup-shaped functions run once per job: exempt.
func NewIndex(names []string) map[string]string {
	idx := make(map[string]string, len(names))
	for i, n := range names {
		idx[n] = fmt.Sprintf("col%d", i)
	}
	return idx
}
