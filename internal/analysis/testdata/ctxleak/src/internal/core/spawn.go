// Fixture for the ctxleak analyzer: goroutines in the engine packages
// must contain a completion signal. Fire-and-forget literals and
// signal-free spawned methods are violations; WaitGroup.Done, channel
// sends, range-over-channel and close all count as signals.
package core

import "sync"

type pump struct {
	q    chan int
	done chan struct{}
	n    int
}

func fireAndForget(work func()) {
	go func() { // want "goroutine has no completion signal"
		work()
	}()
}

func okWaitGroup(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func okChannelSend(res chan error, work func() error) {
	go func() {
		res <- work()
	}()
}

func (p *pump) loop() {
	for v := range p.q {
		p.n += v
	}
	close(p.done)
}

func okMethod(p *pump) {
	go p.loop()
}

func (p *pump) spin() {
	for i := 0; i < 1000; i++ {
		p.n++
	}
}

func badMethod(p *pump) {
	go p.spin() // want "goroutine has no completion signal"
}

func okSelect(stop chan struct{}, work func()) {
	go func() {
		select {
		case <-stop:
		default:
			work()
		}
	}()
}
