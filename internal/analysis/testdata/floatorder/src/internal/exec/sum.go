// Fixture for the floatorder analyzer: float folds whose operand order
// derives from a map range or select arrival order are violations —
// float addition is not associative, so the sum's low bits depend on
// iteration order. Sorted folds and per-key map accumulation are not.
package exec

import "sort"

func badMapSum(parts map[int]float64) float64 {
	var sum float64
	for _, p := range parts {
		sum += p // want "float accumulation order derives from map iteration order"
	}
	return sum
}

func badExplicitForm(parts map[int]float64) float64 {
	total := 0.0
	for _, p := range parts {
		total = total + p // want "float accumulation order derives from map iteration order"
	}
	return total
}

func badProduct(weights map[string]float64) float64 {
	prod := 1.0
	for _, w := range weights {
		prod *= w // want "float accumulation order derives from map iteration order"
	}
	return prod
}

func okSortedSum(parts map[int]float64) float64 {
	keys := make([]int, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += parts[k]
	}
	return sum
}

// Per-key accumulation lands each value on its own key regardless of
// iteration order: exempt.
func okPerKey(pairs map[string]float64, acc map[string]float64) {
	for k, v := range pairs {
		acc[k] += v
	}
}

// Integer folds are associative: exempt.
func okIntSum(counts map[string]int) int {
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

// The PR 7 bug class: concurrent senders deliver float partial sums in
// arrival order; folding them as they arrive makes the total depend on
// scheduling.
func badArrivalMerge(parts <-chan float64, done <-chan struct{}) float64 {
	var total float64
	for {
		select {
		case p := <-parts:
			total += p // want "float accumulation order derives from select arrival order"
		case <-done:
			return total
		}
	}
}

// A tainted float copy keeps its mark: the fold through the
// intermediate still fires.
func badThroughCopy(parts map[int]float64) float64 {
	var sum float64
	for _, p := range parts {
		v := p
		sum += v // want "float accumulation order derives from map iteration order"
	}
	return sum
}
