// Fixture for the lockorder analyzer: Store.mu and Budget.mu are
// acquired in both orders (Put holds Store.mu then takes Budget.mu via
// Reserve; Flush holds Budget.mu then takes Store.mu via Drop), which
// is the deadlock-capable cycle the analyzer must reject. Recount
// additionally re-acquires Store.mu through a call while holding it.
package imstore

import "sync"

type Store struct {
	mu     sync.Mutex
	budget *Budget
	n      int64
}

type Budget struct {
	mu    sync.Mutex
	store *Store
	left  int64
}

func (s *Store) Put(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget.Reserve(n) // want "lock-order cycle"
}

func (b *Budget) Reserve(n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.left -= n
}

func (b *Budget) Flush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.store.Drop() // want "lock-order cycle"
}

func (s *Store) Drop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = 0
}

func (s *Store) Recount() {
	s.mu.Lock()
	s.Drop() // want "recursive acquisition"
	s.mu.Unlock()
}

// Balanced acquire/release before calling back into the other lock is
// fine: no overlap, no edge.
func (s *Store) Rebalance(n int64) {
	s.mu.Lock()
	s.n += n
	s.mu.Unlock()
	s.budget.Reserve(n)
}
