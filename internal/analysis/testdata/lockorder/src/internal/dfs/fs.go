// dfs side of the lockorder fixture: a one-way cross-package order
// (FS.mu taken before the imstore locks, never after) is legal and must
// not be reported even though the imstore locks themselves cycle.
package dfs

import (
	"sync"

	"hivempi/internal/imstore"
)

type FS struct {
	mu sync.Mutex
	st *imstore.Store
}

func (f *FS) Delete(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.st.Put(n)
}
