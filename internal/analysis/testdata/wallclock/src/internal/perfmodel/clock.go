// Fixture for the wallclock analyzer: perfmodel is a virtual-time
// package, so wall-clock reads and global RNG draws are violations;
// seeded generators and pure duration arithmetic are not.
package perfmodel

import (
	"math/rand"
	"time"
)

func badNow() time.Time { return time.Now() } // want "time.Now reads the wall clock"

func badSince(t0 time.Time) time.Duration { return time.Since(t0) } // want "time.Since reads the wall clock"

func badSleep() { time.Sleep(time.Millisecond) } // want "time.Sleep reads the wall clock"

func badRand() int { return rand.Intn(10) } // want "rand.Intn draws from the global RNG"

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the global RNG"
}

func okSeeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func okDuration(d time.Duration) time.Duration { return d * 2 }

func okSuppressed() time.Time {
	//lint:ignore hivelint/wallclock fixture demonstrates an audited exemption
	return time.Now()
}
