// storage is outside the virtual-time package set, so wall-clock use
// here is fine: the analyzer must scope itself to the listed packages.
package storage

import (
	"math/rand"
	"time"
)

func Stamp() time.Time { return time.Now() }

func Jitter() int { return rand.Intn(3) }
