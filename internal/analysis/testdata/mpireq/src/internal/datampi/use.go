// Fixture for the mpireq analyzer: leaked and discarded request
// handles are violations; completion via Wait/WaitRecv/Test, escape
// via append/field/return, and handing off to Waitall are all fine.
package datampi

import "hivempi/internal/mpi"

type sender struct {
	w       *mpi.World
	pending []*mpi.Request
}

func leak(w *mpi.World) error {
	req, err := w.Isend(0, 1, 7, nil) // want "Isend request is never completed"
	if err != nil {
		return err
	}
	_ = req
	return nil
}

func leakRecv(w *mpi.World) {
	req, _ := w.Irecv(0, 1, 7) // want "Irecv request is never completed"
	_ = req
}

func discard(w *mpi.World) {
	_, _ = w.Irecv(0, 1, 7) // want "Irecv request discarded with _"
}

func okWait(w *mpi.World) error {
	req, err := w.Irecv(0, 1, 7)
	if err != nil {
		return err
	}
	_, _, err = req.WaitRecv()
	return err
}

func okTest(w *mpi.World) (bool, error) {
	req, err := w.Isend(0, 1, 7, nil)
	if err != nil {
		return false, err
	}
	return req.Test()
}

func okWaitall(w *mpi.World) error {
	var reqs []*mpi.Request
	for i := 0; i < 3; i++ {
		req, err := w.Isend(0, i, 1, nil)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return mpi.Waitall(reqs)
}

func okEscapeField(s *sender) error {
	req, err := s.w.Isend(0, 1, 2, nil)
	if err != nil {
		return err
	}
	s.pending = append(s.pending, req)
	return nil
}

func okReturn(w *mpi.World) (*mpi.Request, error) {
	return w.Irecv(0, 1, 3)
}

func okChannel(w *mpi.World, out chan *mpi.Request) error {
	req, err := w.Irecv(0, 1, 4)
	if err != nil {
		return err
	}
	out <- req
	return nil
}
