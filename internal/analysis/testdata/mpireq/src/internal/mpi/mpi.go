// Stub of the real internal/mpi surface, just enough for the mpireq
// fixture: the analyzer matches methods on hivempi/internal/mpi.World,
// which is exactly this package's path inside the fixture module.
package mpi

type Status struct{ Source, Tag, Bytes int }

type Request struct{ done bool }

func (r *Request) Wait() error                       { return nil }
func (r *Request) WaitRecv() ([]byte, Status, error) { return nil, Status{}, nil }
func (r *Request) Test() (bool, error)               { return r.done, nil }

type World struct{}

func (w *World) Isend(src, dst, tag int, data []byte) (*Request, error) { return &Request{}, nil }
func (w *World) Irecv(me, src, tag int) (*Request, error)               { return &Request{}, nil }

func Waitall(reqs []*Request) error { return nil }
