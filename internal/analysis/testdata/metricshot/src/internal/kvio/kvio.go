// Fixture for the metricshot analyzer: kvio functions are hot-path
// roots, so a per-call Registry lookup inside one is a violation, while
// caching the handle in a New*/Set* setup function is sanctioned.
package kvio

import "hivempi/internal/metrics"

type Writer struct {
	reg   *metrics.Registry
	ctr   *metrics.Counter
	sizes *metrics.Histogram
}

func NewWriter(reg *metrics.Registry) *Writer {
	// Setup-time lookup: allowed — this runs once per writer.
	return &Writer{
		reg:   reg,
		ctr:   reg.Counter("kvio.write.bytes"),
		sizes: reg.Histogram("kvio.run.write.bytes"),
	}
}

func (w *Writer) WriteHot(p []byte) {
	w.reg.Counter("kvio.write.bytes").Add(int64(len(p)))           // want "per-call Registry.Counter lookup"
	w.ctr.Add(int64(len(p)))                                       // cached handle: allowed
	w.reg.Histogram("kvio.run.write.bytes").Observe(int64(len(p))) // want "per-call Registry.Histogram lookup"
	w.sizes.Observe(int64(len(p)))                                 // cached handle: allowed
}
