// hive side of the metricshot fixture: only the plan cache's
// per-statement path (PlanCache.lookup/put, normalizePlanKey,
// Driver.foldPlanCacheEvictions) is rooted — other hive functions are
// cold and may sample the registry freely — and ensure*-shaped
// lazy-init helpers are exempt like New*/Set*.
package hive

import "hivempi/internal/metrics"

type PlanCache struct {
	reg    *metrics.Registry
	hits   *metrics.Counter
	misses *metrics.Counter
}

func (pc *PlanCache) lookup(key string) bool {
	pc.reg.Counter("hive.plancache.misses").Inc() // want "per-call Registry.Counter lookup"
	pc.hits.Inc()                                 // cached handle: allowed
	return key != ""
}

func (pc *PlanCache) put(key string) {
	pc.reg.Add("hive.plancache.entries", 1) // want "per-call Registry.Add lookup"
}

func normalizePlanKey(sql string, reg *metrics.Registry) string {
	reg.Counter("hive.plancache.normalized").Inc() // want "per-call Registry.Counter lookup"
	return sql
}

type Driver struct {
	reg         *metrics.Registry
	pcEvictions *metrics.Counter
}

// ensureMetrics is the sanctioned caching site: ensure*-prefixed
// lazy-init helpers are setup even though a hot path calls them.
func (d *Driver) ensureMetrics() {
	if d.pcEvictions == nil {
		d.pcEvictions = d.reg.Counter("hive.plancache.evictions")
	}
}

func (d *Driver) foldPlanCacheEvictions(ev int64) {
	d.ensureMetrics()
	d.pcEvictions.Add(ev) // cached handle: allowed
}

// explain is not a rooted method, so cold-path sampling here must not
// be reported.
func (d *Driver) explain() {
	d.reg.Gauge("hive.plancache.len").Set(1)
}
