// driver is not reachable from any hot-path root, so its per-call
// gauge lookup is cold-path sampling and must not be reported.
package driver

import "hivempi/internal/metrics"

func Sample(r *metrics.Registry, used int64) {
	r.Gauge("imstore.used.bytes").Set(used)
}
