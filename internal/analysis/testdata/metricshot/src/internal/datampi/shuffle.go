// datampi side of the metricshot fixture: the violation sits one call
// below the hot entry point, proving reachability is transitive.
package datampi

import "hivempi/internal/metrics"

type job struct {
	reg *metrics.Registry
}

func (j *job) send(key []byte) {
	j.bump(len(key))
}

func (j *job) bump(n int) {
	j.reg.Add("datampi.send.flushes", int64(n)) // want "per-call Registry.Add lookup"
}

func (j *job) wait(sec float64) {
	j.reg.Timer("datampi.await").ObserveSeconds(sec) // want "per-call Registry.Timer lookup"
}
