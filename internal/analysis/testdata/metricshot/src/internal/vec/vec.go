// vec side of the metricshot fixture: every function in the columnar
// batch layer is a hot-path root (operators touch it once per batch),
// so a per-call Registry lookup inside one is a violation while the
// New*-shaped pool constructor stays exempt.
package vec

import "hivempi/internal/metrics"

type Pool struct {
	reg    *metrics.Registry
	allocs *metrics.Counter
}

func NewPool(reg *metrics.Registry) *Pool {
	// Setup-time lookup: allowed — this runs once per pool.
	return &Pool{reg: reg, allocs: reg.Counter("vec.pool.allocs")}
}

func (p *Pool) Get(ncols int) int {
	p.reg.Counter("vec.pool.allocs").Inc() // want "per-call Registry.Counter lookup"
	p.allocs.Inc()                         // cached handle: allowed
	return ncols
}

func (p *Pool) observe(n int) {
	p.reg.Histogram("vec.batch.rows").Observe(int64(n)) // want "per-call Registry.Histogram lookup"
}

func (p *Pool) Put(n int) {
	// Transitive reachability: the violation sits in observe, one call
	// below this root.
	p.observe(n)
}
