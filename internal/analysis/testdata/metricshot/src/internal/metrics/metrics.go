// Stub of the real internal/metrics registry surface for the
// metricshot fixture. The analyzer exempts this package itself: the
// registry's internals are the lookup implementation.
package metrics

type Counter struct{ v int64 }

func (c *Counter) Add(n int64) { c.v += n }
func (c *Counter) Inc()        { c.Add(1) }

type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64) { g.v = v }

type Histogram struct{ sum int64 }

func (h *Histogram) Observe(v int64) { h.sum += v }

type Timer struct{ h Histogram }

func (t *Timer) ObserveSeconds(s float64) { t.h.Observe(int64(s * 1e6)) }

type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

func (r *Registry) Counter(name string) *Counter     { return r.counters[name] }
func (r *Registry) Gauge(name string) *Gauge         { return r.gauges[name] }
func (r *Registry) Add(name string, n int64)         { r.Counter(name).Add(n) }
func (r *Registry) Histogram(name string) *Histogram { return r.hists[name] }
func (r *Registry) Timer(name string) *Timer         { return r.timers[name] }
