// Fixture for suppression handling: a well-formed lint:ignore silences
// the next line, a reason-less one is itself a diagnostic (and silences
// nothing), and a suppression that matches no diagnostic is stale.
package perfmodel

import "time"

func suppressedOK() time.Time {
	//lint:ignore hivelint/wallclock fixture: audited exemption with a reason
	return time.Now()
}

func noReason() time.Time {
	//lint:ignore hivelint/wallclock
	return time.Now()
}

func stale() int {
	//lint:ignore hivelint/wallclock nothing on the next line violates anything
	return 1
}

func unknownAnalyzer() time.Time {
	//lint:ignore hivelint/wallclokc typo in the analyzer name must be reported, not skipped
	return time.Now()
}
