// Fixture for the maporder analyzer: order-tainted data (map-range
// loop variables, select arrivals, unordered helper results) reaching
// order-sensitive sinks is a violation; sorted emission, loop-invariant
// emission and integer folds are not.
package exec

import (
	"bytes"
	"fmt"
	"sort"

	"hivempi/internal/kvio"
)

// The PR 7 bug class reduced to its essence: encoding records in map
// iteration order makes the run's bytes differ across runs.
func badEncode(m map[string][]byte, buf []byte) []byte {
	for k, v := range m {
		buf = kvio.AppendKV(buf, []byte(k), v) // want "the kvio wire encoder (AppendKV) receives data whose order derives from map iteration order"
	}
	return buf
}

func okEncodeSorted(m map[string][]byte, buf []byte) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf = kvio.AppendKV(buf, []byte(k), m[k])
	}
	return buf
}

func badPrint(counts map[string]int) {
	for k, n := range counts {
		fmt.Printf("%s=%d\n", k, n) // want "fmt.Printf output receives data whose order derives from map iteration order"
	}
}

func badBuffer(m map[string]string, out *bytes.Buffer) {
	for k := range m {
		out.WriteString(k) // want "a bytes.Buffer receives data whose order derives from map iteration order"
	}
}

// Loop-invariant emission in map order is byte-identical: no finding.
func okInvariant(m map[string]int, out *bytes.Buffer) {
	for range m {
		out.WriteString(".")
	}
}

// Integer folds over a map are order-independent: no finding.
func okMaxFold(counts map[string]int) int {
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	fmt.Println(max)
	return max
}

// unsortedKeys returns the map's keys in iteration order; the summary
// marks its result unordered so callers inherit the taint.
func unsortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func badInterprocedural(m map[string]int) {
	for _, k := range unsortedKeys(m) {
		fmt.Println(k) // want "fmt.Println output receives data whose order derives from the unordered result of unsortedKeys"
	}
}

func okInterproceduralSorted(m map[string]int) {
	keys := unsortedKeys(m)
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k)
	}
}

// emitAll leaks its parameter's order into a sink; callers passing
// unordered data are reported at the call site via SinkParams.
func emitAll(lines []string, out *bytes.Buffer) {
	for _, l := range lines {
		out.WriteString(l)
	}
}

func badThroughHelper(m map[string]string, out *bytes.Buffer) {
	vals := make([]string, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	emitAll(vals, out) // want "emitAll (which emits its argument to an order-sensitive sink) receives data whose order derives from map iteration order"
}

func badSelectArrival(a, b <-chan string, out *bytes.Buffer) {
	for i := 0; i < 4; i++ {
		var line string
		select {
		case line = <-a:
		case line = <-b:
		}
		out.WriteString(line) // want "a bytes.Buffer receives data whose order derives from select arrival order"
	}
}

func okSuppressed(m map[string]int) {
	for k := range m {
		//lint:ignore hivelint/maporder fixture demonstrates an audited exemption
		fmt.Println(k)
	}
}
