// Fixture stub of the kvio surface the maporder sink/sanitizer tables
// reference: the wire encoder (AppendKV), the run writer, and the
// canonicalizing Sort.
package kvio

// KV is one key/value record.
type KV struct{ Key, Val []byte }

// AppendKV encodes one record onto dst (order-sensitive sink).
func AppendKV(dst, k, v []byte) []byte {
	return append(append(dst, k...), v...)
}

// Sort canonicalizes record order (sanitizer).
func Sort(kvs []KV) {}

// Writer is the run writer (order-sensitive sink).
type Writer struct{ buf []byte }

func (w *Writer) Write(kv KV) error {
	w.buf = AppendKV(w.buf, kv.Key, kv.Val)
	return nil
}
