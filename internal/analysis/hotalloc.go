package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// HotAlloc flags per-iteration allocations inside functions reachable
// from the benchmarked hot paths (the shared HotPathFuncs set: kvio
// decode, datampi flush, vec kernels, dfs I/O, the plan-cache lookup
// path). The alloc counts committed in BENCH_shuffle.json /
// BENCH_vec.json are part of the tier-1 bench gate (≤1 alloc/op on
// decode and send); this analyzer catches the regressions before the
// benchmark does, and explains them better:
//
//   - string concatenation with + inside a loop (one allocation per
//     iteration; build once outside or use an indexed byte slice)
//   - fmt.Sprintf/Sprint/Sprintln inside a loop (allocates and boxes
//     every operand every iteration)
//   - a closure capturing outer variables inside a loop (the closure
//     and its captured-variable cells escape per iteration)
//   - append in a loop to a slice declared with no capacity in the
//     same function (per-iteration growth; preallocate with
//     make(T, 0, n))
//   - an explicit conversion to any/interface{} inside a loop (boxes
//     the value per iteration)
//
// Error/cold branches are exempt: a statement inside an if-block or
// switch/select case that terminates (return, panic, break, continue,
// goto) executes at most once per loop exit, not per iteration. Also
// exempt: fmt.Errorf (error construction is the cold path by
// definition), appends to []error (failure collection, not
// per-record), and closures passed to `go` (the goroutine spawn
// dominates the closure allocation).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no per-iteration allocations (uncapped append, string concat, Sprintf, escaping closures, boxing) on benchmarked hot paths",
	Run:  runHotAlloc,
}

func runHotAlloc(prog *Program) []Diagnostic {
	idx := prog.FuncIndex()
	hot := prog.HotPathFuncs()
	var diags []Diagnostic
	for obj, root := range hot {
		fi := idx[obj]
		// Setup-shaped functions run once per job, not per record.
		if isSetupFunc(obj.Name()) {
			continue
		}
		w := &hotAllocWalker{
			prog:      prog,
			pkg:       fi.Pkg,
			fn:        obj,
			root:      root,
			zeroCap:   zeroCapSlices(fi.Pkg, fi.Decl.Body),
			benchFile: benchBaselineFor(fi.Pkg),
		}
		w.walk(fi.Decl.Body, false)
		diags = append(diags, w.diags...)
	}
	return diags
}

// benchBaselineFor names the committed benchmark baseline that prices
// the package's hot path, for the diagnostic message.
func benchBaselineFor(pkg *Package) string {
	switch {
	case pkg.Path == "hivempi/internal/vec", pkg.Path == "hivempi/internal/exec", pkg.Path == "hivempi/internal/storage":
		return "BENCH_vec.json"
	default:
		return "BENCH_shuffle.json"
	}
}

// zeroCapSlices collects the slice variables declared in this function
// with no capacity: `var x []T`, `x := []T{}`, `x := make([]T, 0)`.
func zeroCapSlices(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(name *ast.Ident, val ast.Expr) {
		obj := pkg.Info.Defs[name]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if val == nil { // var x []T
			out[obj] = true
			return
		}
		switch v := ast.Unparen(val).(type) {
		case *ast.CompositeLit:
			if len(v.Elts) == 0 {
				out[obj] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					// make([]T, 0) or make([]T, 0, 0): no real capacity.
					capArg := v.Args[len(v.Args)-1]
					if tv, ok := pkg.Info.Types[capArg]; ok && tv.Value != nil &&
						constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0)) {
						out[obj] = true
					}
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							var val ast.Expr
							if i < len(vs.Values) {
								val = vs.Values[i]
							}
							mark(name, val)
						}
					}
				}
			}
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				for i, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && i < len(st.Rhs) {
						mark(id, st.Rhs[i])
					}
				}
			}
		}
		return true
	})
	return out
}

type hotAllocWalker struct {
	prog      *Program
	pkg       *Package
	fn        *types.Func
	root      string
	zeroCap   map[types.Object]bool
	benchFile string
	diags     []Diagnostic
}

// walk traverses the body; inLoop tracks whether the current node
// executes once per loop iteration (cold terminating branches reset
// it).
func (w *hotAllocWalker) walk(n ast.Node, inLoop bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ForStmt:
			w.walk(st.Init, inLoop)
			w.walkExprIn(st.Cond, inLoop)
			w.walk(st.Post, true)
			w.walk(st.Body, true)
			return false
		case *ast.RangeStmt:
			w.walkExprIn(st.X, inLoop)
			w.walk(st.Body, true)
			return false
		case *ast.IfStmt:
			w.walk(st.Init, inLoop)
			w.walkExprIn(st.Cond, inLoop)
			// A terminating if-body is a cold exit path, not a
			// per-iteration cost.
			w.walk(st.Body, inLoop && !terminates(st.Body))
			w.walk(st.Else, inLoop)
			return false
		case *ast.SwitchStmt:
			w.walk(st.Init, inLoop)
			w.walkExprIn(st.Tag, inLoop)
			w.walkCases(st.Body, inLoop)
			return false
		case *ast.TypeSwitchStmt:
			w.walk(st.Init, inLoop)
			w.walk(st.Assign, inLoop)
			w.walkCases(st.Body, inLoop)
			return false
		case *ast.SelectStmt:
			w.walkCases(st.Body, inLoop)
			return false
		case *ast.GoStmt:
			// The goroutine spawn itself allocates a stack; the closure
			// passed to `go` is not the marginal cost.
			if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
				for _, a := range st.Call.Args {
					w.walkExprIn(a, inLoop)
				}
				w.walk(fl.Body, false)
				return false
			}
		case *ast.FuncLit:
			if inLoop && capturesOuter(w.pkg, st) {
				w.flag(st.Pos(), "closure capturing outer variables allocated per loop iteration; hoist it out of the loop or pass state explicitly")
			}
			// The literal's own body runs at an unknown point.
			w.walk(st.Body, false)
			return false
		case *ast.BinaryExpr:
			if inLoop && st.Op == token.ADD && w.isStringConcat(st) {
				w.flag(st.Pos(), "string concatenation with + inside a loop allocates per iteration; write into a reused []byte or strings.Builder hoisted out of the loop")
			}
		case *ast.CallExpr:
			if inLoop {
				w.checkCall(st)
			}
		}
		return true
	})
}

func (w *hotAllocWalker) walkExprIn(e ast.Expr, inLoop bool) {
	if e != nil {
		w.walk(e, inLoop)
	}
}

// walkCases walks a switch/type-switch/select body; a case whose body
// terminates the loop iteration is cold (lexer default-arms that
// Sprintf an error and return are the canonical shape).
func (w *hotAllocWalker) walkCases(body *ast.BlockStmt, inLoop bool) {
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.walkExprIn(e, inLoop)
			}
			hot := inLoop && !caseTerminates(cc.Body)
			for _, sub := range cc.Body {
				w.walk(sub, hot)
			}
		case *ast.CommClause:
			w.walk(cc.Comm, inLoop)
			hot := inLoop && !caseTerminates(cc.Body)
			for _, sub := range cc.Body {
				w.walk(sub, hot)
			}
		}
	}
}

func (w *hotAllocWalker) checkCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" && len(call.Args) > 0 {
				if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					obj := w.pkg.Info.Uses[base]
					if obj == nil {
						obj = w.pkg.Info.Defs[base]
					}
					if obj != nil && w.zeroCap[obj] && !isErrorSlice(obj.Type()) {
						w.flag(call.Pos(), "append inside a loop grows "+base.Name+", declared with no capacity; preallocate with make(..., 0, n) to keep the hot path at its committed alloc budget")
					}
				}
			}
			return
		}
	}
	callee := Callee(w.pkg, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		// Errorf is exempt: error construction is the cold path.
		switch callee.Name() {
		case "Sprintf", "Sprint", "Sprintln":
			w.flag(call.Pos(), "fmt."+callee.Name()+" inside a loop allocates and boxes its operands per iteration; format once outside the loop or append to a reused buffer")
		}
		return
	}
	// Explicit boxing: any(x) / interface{}(x) conversions in the loop.
	if len(call.Args) == 1 && callee == nil {
		if tv, ok := w.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			if iface, isIface := tv.Type.Underlying().(*types.Interface); isIface && iface.NumMethods() == 0 {
				if atv, ok := w.pkg.Info.Types[call.Args[0]]; ok {
					if _, already := atv.Type.Underlying().(*types.Interface); !already {
						w.flag(call.Pos(), "conversion to any inside a loop boxes the value per iteration; keep the concrete type on the hot path")
					}
				}
			}
		}
	}
}

func (w *hotAllocWalker) isStringConcat(be *ast.BinaryExpr) bool {
	tv, ok := w.pkg.Info.Types[be]
	if !ok || tv.Value != nil { // constant-folded concat costs nothing
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (w *hotAllocWalker) flag(pos token.Pos, msg string) {
	w.diags = append(w.diags, diag(w.prog, "hotalloc", pos,
		"%s (in %s, reachable from hot path %s; alloc budget committed in %s)",
		msg, funcDisplayName(w.fn), w.root, w.benchFile))
}

// terminates reports whether a block's last statement unconditionally
// leaves the surrounding loop iteration (return, panic, break,
// continue, goto).
func terminates(b *ast.BlockStmt) bool {
	if b == nil {
		return false
	}
	return terminatesList(b.List)
}

func terminatesList(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch st := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		return isPanicCall(st.X)
	}
	return false
}

// caseTerminates is the stricter variant for switch/select case
// bodies: only return and panic leave the loop. A case ending in
// `continue` still runs its body every iteration, and a plain `break`
// inside a case only leaves the switch, not the loop.
func caseTerminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch st := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		return isPanicCall(st.X)
	}
	return false
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// isErrorSlice reports whether t is []error: failure-collection
// appends happen on error paths, not per successful record.
func isErrorSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	n, ok := sl.Elem().(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

// capturesOuter reports whether the literal references any variable
// declared outside it (the captured cells escape with the closure).
func capturesOuter(pkg *Package, fl *ast.FuncLit) bool {
	captured := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		// Package-level variables are not captured cells.
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		// Declared outside the literal's extent → captured.
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			captured = true
		}
		return true
	})
	return captured
}
