package analysis_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"hivempi/internal/analysis"
	"hivempi/internal/testutil/leakcheck"
)

// TestVirtualTimeRootsCoverage asserts the shared roots table actually
// covers the virtual-time plane: every internal package that imports
// internal/perfmodel (the virtual clock itself) must be listed in
// VirtualTimePackages, so the wallclock analyzer scans it. PRs 6 and 8
// each had to remember to hand-extend three separate hardcoded lists;
// this test turns the omission into a loud failure instead of a silent
// determinism hole.
func TestVirtualTimeRootsCoverage(t *testing.T) {
	defer leakcheck.Check(t)()
	root := moduleRoot(t)
	importers := packagesImporting(t, root, "hivempi/internal/perfmodel")
	for _, pkg := range importers {
		if pkg == "perfmodel" {
			continue // the clock itself is in the table already
		}
		if !slices.Contains(analysis.VirtualTimePackages, pkg) {
			t.Errorf("internal/%s imports internal/perfmodel but is missing from analysis.VirtualTimePackages; add it to roots.go so wallclock scans it", pkg)
		}
	}
	// The table must also not drift ahead of reality: every listed
	// package has to exist, or the analyzer scope silently shrinks when
	// a package is renamed.
	for _, pkg := range analysis.VirtualTimePackages {
		if _, err := os.Stat(filepath.Join(root, "internal", filepath.FromSlash(pkg))); err != nil {
			t.Errorf("analysis.VirtualTimePackages lists internal/%s, which does not exist: %v", pkg, err)
		}
	}
	for _, pkg := range append(slices.Clone(analysis.LockScopePackages), analysis.CtxLeakPackages...) {
		if _, err := os.Stat(filepath.Join(root, "internal", filepath.FromSlash(pkg))); err != nil {
			t.Errorf("analysis roots table lists internal/%s, which does not exist: %v", pkg, err)
		}
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// packagesImporting returns the internal/-relative package dirs whose
// non-test files import the given path. Imports are read syntactically
// (parser.ImportsOnly) so the test stays fast — no type-checking.
func packagesImporting(t *testing.T, root, importPath string) []string {
	t.Helper()
	fset := token.NewFileSet()
	seen := map[string]bool{}
	base := filepath.Join(root, "internal")
	err := filepath.Walk(base, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			if name := fi.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == importPath {
				rel, err := filepath.Rel(base, filepath.Dir(path))
				if err != nil {
					return err
				}
				seen[filepath.ToSlash(rel)] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	pkgs := make([]string, 0, len(seen))
	for p := range seen {
		pkgs = append(pkgs, p)
	}
	slices.Sort(pkgs)
	return pkgs
}
