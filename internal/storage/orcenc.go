package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"hivempi/internal/types"
	"hivempi/internal/vec"
)

// Column stream encodings for the ORC-like format. Each column of a
// stripe is encoded as:
//
//	[presence bitmap][values of the non-null rows]
//
// Integer-family columns (bool/int/date) use a run-length encoding:
// runs of >= minRunLength identical values become (marker, count, value)
// blocks, everything else zigzag varint literal blocks. Floats are
// fixed 8-byte little endian. Strings use dictionary encoding when the
// distinct ratio is low, otherwise direct (lengths + bytes).

const minRunLength = 4

const (
	blkRun     = 0x00
	blkLiteral = 0x01
)

const (
	strDirect = 0x00
	strDict   = 0x01
)

// appendPresence encodes the null bitmap (bit set = value present).
func appendPresence(buf []byte, col []types.Datum) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(col)))
	var cur byte
	for i, d := range col {
		if !d.IsNull() {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	if len(col)%8 != 0 {
		buf = append(buf, cur)
	}
	return buf
}

// decodePresence returns the presence flags and bytes consumed.
func decodePresence(buf []byte) ([]bool, int, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 {
		return nil, 0, fmt.Errorf("storage: orc presence count")
	}
	nbytes := (int(n) + 7) / 8
	if len(buf) < used+nbytes {
		return nil, 0, fmt.Errorf("storage: orc presence bitmap truncated")
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = buf[used+i/8]&(1<<(i%8)) != 0
	}
	return out, used + nbytes, nil
}

// appendInts RLE-encodes the non-null integer values.
func appendInts(buf []byte, vals []int64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	i := 0
	for i < len(vals) {
		// Measure the run starting at i.
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		if j-i >= minRunLength {
			buf = append(buf, blkRun)
			buf = binary.AppendUvarint(buf, uint64(j-i))
			buf = binary.AppendVarint(buf, vals[i])
			i = j
			continue
		}
		// Literal block: extend until the next long run begins.
		start := i
		for i < len(vals) {
			j := i + 1
			for j < len(vals) && vals[j] == vals[i] {
				j++
			}
			if j-i >= minRunLength {
				break
			}
			i = j
		}
		buf = append(buf, blkLiteral)
		buf = binary.AppendUvarint(buf, uint64(i-start))
		for k := start; k < i; k++ {
			buf = binary.AppendVarint(buf, vals[k])
		}
	}
	return buf
}

// decodeInts reverses appendInts, returning values and bytes consumed.
func decodeInts(buf []byte) ([]int64, int, error) {
	total, used := binary.Uvarint(buf)
	if used <= 0 {
		return nil, 0, fmt.Errorf("storage: orc int count")
	}
	pos := used
	out := make([]int64, 0, total)
	for uint64(len(out)) < total {
		if pos >= len(buf) {
			return nil, 0, fmt.Errorf("storage: orc int stream truncated")
		}
		kind := buf[pos]
		pos++
		count, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("storage: orc int block count")
		}
		pos += n
		switch kind {
		case blkRun:
			v, n := binary.Varint(buf[pos:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("storage: orc run value")
			}
			pos += n
			for k := uint64(0); k < count; k++ {
				out = append(out, v)
			}
		case blkLiteral:
			for k := uint64(0); k < count; k++ {
				v, n := binary.Varint(buf[pos:])
				if n <= 0 {
					return nil, 0, fmt.Errorf("storage: orc literal value")
				}
				pos += n
				out = append(out, v)
			}
		default:
			return nil, 0, fmt.Errorf("storage: orc int block kind %d", kind)
		}
	}
	return out, pos, nil
}

// appendFloats encodes non-null doubles as fixed 8-byte LE.
func appendFloats(buf []byte, vals []float64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, f := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

func decodeFloats(buf []byte) ([]float64, int, error) {
	total, used := binary.Uvarint(buf)
	if used <= 0 {
		return nil, 0, fmt.Errorf("storage: orc float count")
	}
	need := used + int(total)*8
	if len(buf) < need {
		return nil, 0, fmt.Errorf("storage: orc float stream truncated")
	}
	out := make([]float64, total)
	for i := range out {
		bits := binary.LittleEndian.Uint64(buf[used+i*8:])
		out[i] = math.Float64frombits(bits)
	}
	return out, need, nil
}

// appendStrings chooses dictionary or direct encoding by distinct ratio.
func appendStrings(buf []byte, vals []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	if len(vals) == 0 {
		return buf
	}
	dict := make(map[string]int, len(vals))
	order := make([]string, 0, 16)
	for _, s := range vals {
		if _, ok := dict[s]; !ok {
			dict[s] = len(order)
			order = append(order, s)
		}
	}
	if len(order)*2 <= len(vals) {
		buf = append(buf, strDict)
		buf = binary.AppendUvarint(buf, uint64(len(order)))
		for _, s := range order {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
		for _, s := range vals {
			buf = binary.AppendUvarint(buf, uint64(dict[s]))
		}
		return buf
	}
	buf = append(buf, strDirect)
	for _, s := range vals {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
	}
	for _, s := range vals {
		buf = append(buf, s...)
	}
	return buf
}

func decodeStrings(buf []byte) ([]string, int, error) {
	total, used := binary.Uvarint(buf)
	if used <= 0 {
		return nil, 0, fmt.Errorf("storage: orc string count")
	}
	pos := used
	if total == 0 {
		return nil, pos, nil
	}
	if pos >= len(buf) {
		return nil, 0, fmt.Errorf("storage: orc string mode truncated")
	}
	mode := buf[pos]
	pos++
	out := make([]string, total)
	switch mode {
	case strDict:
		dlen, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("storage: orc dict size")
		}
		pos += n
		dict := make([]string, dlen)
		for i := range dict {
			l, n := binary.Uvarint(buf[pos:])
			if n <= 0 || pos+n+int(l) > len(buf) {
				return nil, 0, fmt.Errorf("storage: orc dict entry")
			}
			pos += n
			dict[i] = string(buf[pos : pos+int(l)])
			pos += int(l)
		}
		for i := range out {
			idx, n := binary.Uvarint(buf[pos:])
			if n <= 0 || idx >= dlen {
				return nil, 0, fmt.Errorf("storage: orc dict index")
			}
			pos += n
			out[i] = dict[idx]
		}
	case strDirect:
		lens := make([]int, total)
		for i := range lens {
			l, n := binary.Uvarint(buf[pos:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("storage: orc string length")
			}
			pos += n
			lens[i] = int(l)
		}
		for i := range out {
			if pos+lens[i] > len(buf) {
				return nil, 0, fmt.Errorf("storage: orc string bytes truncated")
			}
			out[i] = string(buf[pos : pos+lens[i]])
			pos += lens[i]
		}
	default:
		return nil, 0, fmt.Errorf("storage: orc string mode %d", mode)
	}
	return out, pos, nil
}

// encodeColumn produces the full column stream (presence + values).
func encodeColumn(kind types.Kind, col []types.Datum) ([]byte, error) {
	buf := appendPresence(nil, col)
	switch kind {
	case types.KindBool, types.KindInt, types.KindDate:
		vals := make([]int64, 0, len(col))
		for _, d := range col {
			if !d.IsNull() {
				vals = append(vals, d.I)
			}
		}
		return appendInts(buf, vals), nil
	case types.KindFloat:
		vals := make([]float64, 0, len(col))
		for _, d := range col {
			if !d.IsNull() {
				vals = append(vals, d.F)
			}
		}
		return appendFloats(buf, vals), nil
	case types.KindString:
		vals := make([]string, 0, len(col))
		for _, d := range col {
			if !d.IsNull() {
				vals = append(vals, d.S)
			}
		}
		return appendStrings(buf, vals), nil
	default:
		return nil, fmt.Errorf("storage: orc cannot encode kind %v", kind)
	}
}

// decodedColumn holds one column's raw decoded streams (presence flags
// plus the dense non-null value array) before row or batch
// materialization. The batch path copies straight from these into
// vec.Vector payloads, skipping per-row Datum construction entirely.
type decodedColumn struct {
	kind    types.Kind
	present []bool
	ints    []int64
	floats  []float64
	strs    []string
	vi      int // cursor into the dense value stream
}

// decodeColumnStreams reverses encodeColumn into raw streams.
func decodeColumnStreams(kind types.Kind, buf []byte) (*decodedColumn, error) {
	present, pos, err := decodePresence(buf)
	if err != nil {
		return nil, err
	}
	dc := &decodedColumn{kind: kind, present: present}
	nPresent := 0
	for _, p := range present {
		if p {
			nPresent++
		}
	}
	switch kind {
	case types.KindBool, types.KindInt, types.KindDate:
		dc.ints, _, err = decodeInts(buf[pos:])
		if err != nil {
			return nil, err
		}
		if len(dc.ints) < nPresent {
			return nil, fmt.Errorf("storage: orc int column short")
		}
	case types.KindFloat:
		dc.floats, _, err = decodeFloats(buf[pos:])
		if err != nil {
			return nil, err
		}
		if len(dc.floats) < nPresent {
			return nil, fmt.Errorf("storage: orc float column short")
		}
	case types.KindString:
		dc.strs, _, err = decodeStrings(buf[pos:])
		if err != nil {
			return nil, err
		}
		if len(dc.strs) < nPresent {
			return nil, fmt.Errorf("storage: orc string column short")
		}
	default:
		return nil, fmt.Errorf("storage: orc cannot decode kind %v", kind)
	}
	return dc, nil
}

// fillVector copies rows [row, row+n) into v. The ORC presence bit is
// SET for present values; the vec convention is the inverse (bit set =
// NULL), converted here.
func (dc *decodedColumn) fillVector(v *vec.Vector, row, n int) {
	v.Reset(dc.kind, n)
	switch dc.kind {
	case types.KindBool, types.KindInt, types.KindDate:
		for i := 0; i < n; i++ {
			if dc.present[row+i] {
				v.I64[i] = dc.ints[dc.vi]
				dc.vi++
			} else {
				v.SetNull(i)
			}
		}
	case types.KindFloat:
		for i := 0; i < n; i++ {
			if dc.present[row+i] {
				v.F64[i] = dc.floats[dc.vi]
				dc.vi++
			} else {
				v.SetNull(i)
			}
		}
	case types.KindString:
		for i := 0; i < n; i++ {
			if dc.present[row+i] {
				v.Str[i] = dc.strs[dc.vi]
				dc.vi++
			} else {
				v.SetNull(i)
			}
		}
	}
}

// decodeColumn reverses encodeColumn into a datum vector.
func decodeColumn(kind types.Kind, buf []byte) ([]types.Datum, error) {
	present, pos, err := decodePresence(buf)
	if err != nil {
		return nil, err
	}
	out := make([]types.Datum, len(present))
	switch kind {
	case types.KindBool, types.KindInt, types.KindDate:
		vals, _, err := decodeInts(buf[pos:])
		if err != nil {
			return nil, err
		}
		vi := 0
		for i, p := range present {
			if p {
				if vi >= len(vals) {
					return nil, fmt.Errorf("storage: orc int column short")
				}
				out[i] = types.Datum{K: kind, I: vals[vi]}
				vi++
			}
		}
	case types.KindFloat:
		vals, _, err := decodeFloats(buf[pos:])
		if err != nil {
			return nil, err
		}
		vi := 0
		for i, p := range present {
			if p {
				if vi >= len(vals) {
					return nil, fmt.Errorf("storage: orc float column short")
				}
				out[i] = types.Float(vals[vi])
				vi++
			}
		}
	case types.KindString:
		vals, _, err := decodeStrings(buf[pos:])
		if err != nil {
			return nil, err
		}
		vi := 0
		for i, p := range present {
			if p {
				if vi >= len(vals) {
					return nil, fmt.Errorf("storage: orc string column short")
				}
				out[i] = types.String(vals[vi])
				vi++
			}
		}
	default:
		return nil, fmt.Errorf("storage: orc cannot decode kind %v", kind)
	}
	return out, nil
}
