package storage

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"hivempi/internal/types"
	"hivempi/internal/vec"
)

// The ORC-like file layout:
//
//	[stripe 0][stripe 1]...[footer JSON][uint32 footer length]["GORC"]
//
// Each stripe holds one flate-compressed stream per column; the footer
// records the schema, every stripe's offset/length, per-column stream
// offsets within the stripe, row counts and per-column min/max/null
// statistics used for predicate pushdown.

var orcMagic = []byte("GORC")

// ORCOptions tunes the writer.
type ORCOptions struct {
	StripeRows  int   // max rows per stripe; DefaultStripeRows if 0
	StripeBytes int64 // approx uncompressed bytes per stripe; 0 = rows only
}

// DefaultStripeRows matches a scaled-down ORC stripe granularity.
const DefaultStripeRows = 1 << 20

type orcStripeMeta struct {
	Offset     int64        `json:"offset"`
	Length     int64        `json:"length"`
	Rows       int          `json:"rows"`
	ColOffsets []int64      `json:"colOffsets"` // within-stripe, len nCols+1
	Stats      []orcColStat `json:"stats"`
}

type orcColStat struct {
	Min   jsonDatum `json:"min"`
	Max   jsonDatum `json:"max"`
	Nulls int64     `json:"nulls"`
}

// jsonDatum serializes a datum into the footer.
type jsonDatum struct {
	K uint8   `json:"k"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
}

func toJSONDatum(d types.Datum) jsonDatum {
	return jsonDatum{K: uint8(d.K), I: d.I, F: d.F, S: d.S}
}

func (j jsonDatum) datum() types.Datum {
	return types.Datum{K: types.Kind(j.K), I: j.I, F: j.F, S: j.S}
}

type orcColumnMeta struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type orcFooter struct {
	Columns []orcColumnMeta `json:"columns"`
	Stripes []orcStripeMeta `json:"stripes"`
	Rows    int64           `json:"rows"`
}

// orcWriter buffers rows into stripes.
type orcWriter struct {
	w      io.WriteCloser
	schema *types.Schema
	opts   ORCOptions

	cols        [][]types.Datum
	rows        int
	approxBytes int64
	offset      int64
	footer      orcFooter
}

func newORCWriter(w io.WriteCloser, schema *types.Schema, opts ORCOptions) *orcWriter {
	if opts.StripeRows <= 0 {
		opts.StripeRows = DefaultStripeRows
	}
	ow := &orcWriter{w: w, schema: schema, opts: opts}
	ow.cols = make([][]types.Datum, schema.Len())
	for _, c := range schema.Columns {
		ow.footer.Columns = append(ow.footer.Columns, orcColumnMeta{Name: c.Name, Type: c.Type.String()})
	}
	return ow
}

func (ow *orcWriter) Write(row types.Row) error {
	if len(row) != ow.schema.Len() {
		return fmt.Errorf("storage: orc row has %d columns, schema %d", len(row), ow.schema.Len())
	}
	for i, d := range row {
		ow.cols[i] = append(ow.cols[i], d)
		if d.K == types.KindString {
			ow.approxBytes += int64(len(d.S)) + 2
		} else {
			ow.approxBytes += 9
		}
	}
	ow.rows++
	if ow.rows >= ow.opts.StripeRows ||
		(ow.opts.StripeBytes > 0 && ow.approxBytes >= ow.opts.StripeBytes) {
		return ow.flushStripe()
	}
	return nil
}

func (ow *orcWriter) flushStripe() error {
	if ow.rows == 0 {
		return nil
	}
	meta := orcStripeMeta{Offset: ow.offset, Rows: ow.rows}
	meta.ColOffsets = make([]int64, 0, ow.schema.Len()+1)
	var stripe bytes.Buffer
	for ci, col := range ow.cols {
		meta.ColOffsets = append(meta.ColOffsets, int64(stripe.Len()))
		raw, err := encodeColumn(ow.schema.Columns[ci].Type, col)
		if err != nil {
			return err
		}
		fw, err := flate.NewWriter(&stripe, flate.BestSpeed)
		if err != nil {
			return err
		}
		if _, err := fw.Write(raw); err != nil {
			return err
		}
		if err := fw.Close(); err != nil {
			return err
		}
		meta.Stats = append(meta.Stats, columnStats(col))
	}
	meta.ColOffsets = append(meta.ColOffsets, int64(stripe.Len()))
	meta.Length = int64(stripe.Len())
	if _, err := ow.w.Write(stripe.Bytes()); err != nil {
		return err
	}
	ow.offset += meta.Length
	ow.footer.Stripes = append(ow.footer.Stripes, meta)
	ow.footer.Rows += int64(ow.rows)
	for i := range ow.cols {
		ow.cols[i] = ow.cols[i][:0]
	}
	ow.rows = 0
	ow.approxBytes = 0
	return nil
}

func columnStats(col []types.Datum) orcColStat {
	st := orcColStat{}
	var min, max types.Datum
	seen := false
	for _, d := range col {
		if d.IsNull() {
			st.Nulls++
			continue
		}
		if !seen {
			min, max = d, d
			seen = true
			continue
		}
		if types.Compare(d, min) < 0 {
			min = d
		}
		if types.Compare(d, max) > 0 {
			max = d
		}
	}
	st.Min = toJSONDatum(min)
	st.Max = toJSONDatum(max)
	return st
}

func (ow *orcWriter) Close() error {
	if err := ow.flushStripe(); err != nil {
		return err
	}
	fb, err := json.Marshal(&ow.footer)
	if err != nil {
		return err
	}
	if _, err := ow.w.Write(fb); err != nil {
		return err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[0:], uint32(len(fb)))
	copy(tail[4:], orcMagic)
	if _, err := ow.w.Write(tail[:]); err != nil {
		return err
	}
	return ow.w.Close()
}

// readORCFooter parses the footer from a ReadSeeker.
func readORCFooter(r io.ReadSeeker) (*orcFooter, error) {
	end, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	if end < 8 {
		return nil, fmt.Errorf("storage: orc file too small (%d bytes)", end)
	}
	var tail [8]byte
	if _, err := r.Seek(end-8, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, err
	}
	if !bytes.Equal(tail[4:], orcMagic) {
		return nil, fmt.Errorf("storage: bad orc magic %q", tail[4:])
	}
	flen := int64(binary.LittleEndian.Uint32(tail[0:]))
	if flen > end-8 {
		return nil, fmt.Errorf("storage: orc footer length %d exceeds file", flen)
	}
	fb := make([]byte, flen)
	if _, err := r.Seek(end-8-flen, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, fb); err != nil {
		return nil, err
	}
	var footer orcFooter
	if err := json.Unmarshal(fb, &footer); err != nil {
		return nil, fmt.Errorf("storage: orc footer: %w", err)
	}
	return &footer, nil
}

// orcSplitReader serves the stripes whose start offset lies inside the
// split range, materializing only projected columns and skipping
// stripes pruned by the predicate's min/max check.
type orcSplitReader struct {
	r       io.ReadSeeker
	schema  *types.Schema
	footer  *orcFooter
	stripes []orcStripeMeta
	project []int

	si   int
	cols [][]types.Datum
	row  int
	rows int

	// vcols holds the batch path's raw decoded streams (presence +
	// dense values) so NextBatch copies column data straight into
	// vector payloads without materializing Datums. A reader is used in
	// row mode or batch mode, never both.
	vcols []*decodedColumn

	// BytesReadPhysical counts compressed bytes actually fetched, the
	// quantity that makes ORC cheaper than Text in the cost model.
	BytesReadPhysical int64
	StripesSkipped    int64
}

func newORCSplitReader(r io.ReadSeeker, offset, length int64, schema *types.Schema,
	projection []int, predicate *Predicate) (*orcSplitReader, error) {
	footer, err := readORCFooter(r)
	if err != nil {
		return nil, err
	}
	if len(footer.Columns) != schema.Len() {
		return nil, fmt.Errorf("storage: orc has %d columns, schema %d", len(footer.Columns), schema.Len())
	}
	sr := &orcSplitReader{r: r, schema: schema, footer: footer, project: projection}
	for _, st := range footer.Stripes {
		if st.Offset < offset || st.Offset >= offset+length {
			continue
		}
		if predicate != nil && predicate.Column < len(st.Stats) {
			cs := st.Stats[predicate.Column]
			if !predicate.matchesRange(cs.Min.datum(), cs.Max.datum()) {
				sr.StripesSkipped++
				continue
			}
		}
		sr.stripes = append(sr.stripes, st)
	}
	return sr, nil
}

// projected returns the effective projection list (all columns when
// none was requested).
func (sr *orcSplitReader) projected() []int {
	if sr.project != nil {
		return sr.project
	}
	all := make([]int, sr.schema.Len())
	for i := range all {
		all[i] = i
	}
	return all
}

// readColumnStream fetches and inflates one column's stream of st.
func (sr *orcSplitReader) readColumnStream(st orcStripeMeta, ci int) ([]byte, error) {
	if ci < 0 || ci >= sr.schema.Len() {
		return nil, fmt.Errorf("storage: orc projection column %d out of range", ci)
	}
	lo := st.Offset + st.ColOffsets[ci]
	hi := st.Offset + st.ColOffsets[ci+1]
	comp := make([]byte, hi-lo)
	if _, err := sr.r.Seek(lo, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(sr.r, comp); err != nil {
		return nil, fmt.Errorf("storage: orc column stream: %w", err)
	}
	sr.BytesReadPhysical += int64(len(comp))
	raw, err := io.ReadAll(flate.NewReader(bytes.NewReader(comp)))
	if err != nil {
		return nil, fmt.Errorf("storage: orc inflate: %w", err)
	}
	return raw, nil
}

// loadStripe decompresses the projected columns of stripe si.
func (sr *orcSplitReader) loadStripe(st orcStripeMeta) error {
	sr.cols = make([][]types.Datum, sr.schema.Len())
	for _, ci := range sr.projected() {
		raw, err := sr.readColumnStream(st, ci)
		if err != nil {
			return err
		}
		col, err := decodeColumn(sr.schema.Columns[ci].Type, raw)
		if err != nil {
			return err
		}
		if len(col) != st.Rows {
			return fmt.Errorf("storage: orc column has %d rows, stripe %d", len(col), st.Rows)
		}
		sr.cols[ci] = col
	}
	sr.rows = st.Rows
	sr.row = 0
	return nil
}

// loadStripeVec decompresses the projected columns of a stripe into
// raw streams for the batch path.
func (sr *orcSplitReader) loadStripeVec(st orcStripeMeta) error {
	sr.vcols = make([]*decodedColumn, sr.schema.Len())
	for _, ci := range sr.projected() {
		raw, err := sr.readColumnStream(st, ci)
		if err != nil {
			return err
		}
		dc, err := decodeColumnStreams(sr.schema.Columns[ci].Type, raw)
		if err != nil {
			return err
		}
		if len(dc.present) != st.Rows {
			return fmt.Errorf("storage: orc column has %d rows, stripe %d", len(dc.present), st.Rows)
		}
		sr.vcols[ci] = dc
	}
	sr.rows = st.Rows
	sr.row = 0
	return nil
}

// NextBatch implements BatchReader: it fills b's columns (one per
// schema column; unprojected columns come back all-null) with up to
// vec.DefaultSize rows decoded directly from the pruned column
// streams, and returns io.EOF when the split is exhausted.
func (sr *orcSplitReader) NextBatch(b *vec.Batch) error {
	for sr.row >= sr.rows || sr.vcols == nil {
		if sr.si >= len(sr.stripes) {
			return io.EOF
		}
		if err := sr.loadStripeVec(sr.stripes[sr.si]); err != nil {
			return err
		}
		sr.si++
	}
	n := sr.rows - sr.row
	if n > vec.DefaultSize {
		n = vec.DefaultSize
	}
	for ci := 0; ci < sr.schema.Len(); ci++ {
		if dc := sr.vcols[ci]; dc != nil {
			dc.fillVector(b.Cols[ci], sr.row, n)
		} else {
			b.Cols[ci].Reset(types.KindNull, n)
		}
	}
	b.N = n
	sr.row += n
	return nil
}

// PhysicalBytes implements PhysicalReader.
func (sr *orcSplitReader) PhysicalBytes() int64 { return sr.BytesReadPhysical }

func (sr *orcSplitReader) Next() (types.Row, error) {
	for sr.row >= sr.rows {
		if sr.si >= len(sr.stripes) {
			return nil, io.EOF
		}
		if err := sr.loadStripe(sr.stripes[sr.si]); err != nil {
			return nil, err
		}
		sr.si++
	}
	row := make(types.Row, sr.schema.Len())
	for ci := range row {
		if sr.cols[ci] != nil {
			row[ci] = sr.cols[ci][sr.row]
		} else {
			row[ci] = types.Null()
		}
	}
	sr.row++
	return row, nil
}
