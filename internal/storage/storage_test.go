package storage

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"hivempi/internal/dfs"
	"hivempi/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Col("id", types.KindInt),
		types.Col("name", types.KindString),
		types.Col("price", types.KindFloat),
		types.Col("ship", types.KindDate),
		types.Col("flag", types.KindBool),
	)
}

func testRows(n int) []types.Row {
	r := rand.New(rand.NewSource(11))
	names := []string{"widget", "gadget", "sprocket", "gizmo"}
	rows := make([]types.Row, n)
	for i := range rows {
		var name types.Datum
		if r.Intn(20) == 0 {
			name = types.Null()
		} else {
			name = types.String(names[r.Intn(len(names))])
		}
		rows[i] = types.Row{
			types.Int(int64(i)),
			name,
			types.Float(float64(r.Intn(10000)) / 100),
			types.Date(int64(9000 + r.Intn(1000))),
			types.Bool(r.Intn(2) == 1),
		}
	}
	return rows
}

func newFS() *dfs.FileSystem {
	return dfs.New(dfs.Config{BlockSize: 4 << 10, Nodes: []string{"n1", "n2", "n3"}})
}

func writeRows(t *testing.T, fs *dfs.FileSystem, path string, f Format, schema *types.Schema, rows []types.Row) {
	t.Helper()
	w, err := CreateTableFile(fs, path, f, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func rowsEqual(a, b types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsNull() != b[i].IsNull() {
			return false
		}
		if !a[i].IsNull() && types.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

func TestRoundTripAllFormats(t *testing.T) {
	schema := testSchema()
	rows := testRows(5000)
	for _, f := range []Format{FormatText, FormatSequence, FormatORC} {
		t.Run(f.String(), func(t *testing.T) {
			fs := newFS()
			path := "/t/" + f.String()
			writeRows(t, fs, path, f, schema, rows)
			got, err := ReadAll(fs, path, f, schema)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(rows) {
				t.Fatalf("read %d rows, want %d", len(got), len(rows))
			}
			for i := range rows {
				if !rowsEqual(got[i], rows[i]) {
					t.Fatalf("row %d: got %v want %v", i, got[i], rows[i])
				}
			}
		})
	}
}

func TestSplitsCoverExactlyOnce(t *testing.T) {
	schema := testSchema()
	rows := testRows(8000)
	for _, f := range []Format{FormatText, FormatSequence, FormatORC} {
		t.Run(f.String(), func(t *testing.T) {
			fs := newFS()
			path := "/split/" + f.String()
			writeRows(t, fs, path, f, schema, rows)
			splits, err := fs.Splits(path, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(splits) < 2 {
				t.Fatalf("want multiple splits, got %d", len(splits))
			}
			seen := map[int64]int{}
			total := 0
			for _, sp := range splits {
				rd, err := OpenSplit(fs, sp, f, schema, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				for {
					row, err := rd.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatal(err)
					}
					seen[row[0].Int()]++
					total++
				}
			}
			if total != len(rows) {
				t.Fatalf("splits yielded %d rows, want %d", total, len(rows))
			}
			for id, c := range seen {
				if c != 1 {
					t.Fatalf("row %d read %d times", id, c)
				}
			}
		})
	}
}

func TestORCProjectionOnlyMaterializesRequested(t *testing.T) {
	schema := testSchema()
	rows := testRows(3000)
	fs := newFS()
	writeRows(t, fs, "/proj", FormatORC, schema, rows)
	sz, _ := fs.Size("/proj")
	rd, err := OpenSplit(fs, dfs.Split{Path: "/proj", Offset: 0, Length: sz},
		FormatORC, schema, []int{0, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		row, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if row[0].IsNull() || row[2].IsNull() {
			t.Fatal("projected columns are null")
		}
		if !row[1].IsNull() || !row[3].IsNull() {
			t.Fatal("non-projected columns should be null")
		}
		n++
	}
	if n != len(rows) {
		t.Fatalf("projection read %d rows, want %d", n, len(rows))
	}
}

func TestORCProjectionReadsFewerBytes(t *testing.T) {
	schema := testSchema()
	rows := testRows(6000)
	fs := newFS()
	writeRows(t, fs, "/bytes", FormatORC, schema, rows)
	sz, _ := fs.Size("/bytes")
	read := func(proj []int) int64 {
		rd, err := OpenSplit(fs, dfs.Split{Path: "/bytes", Offset: 0, Length: sz},
			FormatORC, schema, proj, nil)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := rd.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		return rd.(*orcSplitReader).BytesReadPhysical
	}
	all := read(nil)
	one := read([]int{0})
	if one*2 >= all {
		t.Errorf("single-column read %d bytes vs %d for all; projection ineffective", one, all)
	}
}

func TestORCPredicateSkipsStripes(t *testing.T) {
	schema := types.NewSchema(types.Col("k", types.KindInt))
	fs := newFS()
	w, err := fs.CreateOverwrite("/pred")
	if err != nil {
		t.Fatal(err)
	}
	ow := newORCWriter(w, schema, ORCOptions{StripeRows: 100})
	// Monotonic keys: stripes have disjoint [min,max] ranges.
	for i := 0; i < 1000; i++ {
		if err := ow.Write(types.Row{types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ow.Close(); err != nil {
		t.Fatal(err)
	}
	sz, _ := fs.Size("/pred")
	pred := &Predicate{Column: 0, Op: PredGE, Value: types.Int(900)}
	rd, err := OpenSplit(fs, dfs.Split{Path: "/pred", Offset: 0, Length: sz},
		FormatORC, schema, nil, pred)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := rd.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	osr := rd.(*orcSplitReader)
	if osr.StripesSkipped != 9 {
		t.Errorf("skipped %d stripes, want 9", osr.StripesSkipped)
	}
	if n != 100 {
		t.Errorf("predicate read %d rows, want 100 (one stripe)", n)
	}
}

func TestORCSmallerThanTextForRepetitiveData(t *testing.T) {
	schema := types.NewSchema(
		types.Col("status", types.KindString),
		types.Col("qty", types.KindInt),
	)
	rows := make([]types.Row, 20000)
	for i := range rows {
		rows[i] = types.Row{types.String([]string{"OK", "PENDING", "FAILED"}[i%3]), types.Int(int64(i % 10))}
	}
	fsT, fsO := newFS(), newFS()
	writeRows(t, fsT, "/cmp", FormatText, schema, rows)
	writeRows(t, fsO, "/cmp", FormatORC, schema, rows)
	tsz, _ := fsT.Size("/cmp")
	osz, _ := fsO.Size("/cmp")
	if osz*3 > tsz {
		t.Errorf("ORC %d bytes not much smaller than text %d bytes", osz, tsz)
	}
}

func TestTextBoundaryRule(t *testing.T) {
	// Force a split boundary mid-line and verify the line is read by
	// exactly the split containing its first byte.
	schema := types.NewSchema(types.Col("v", types.KindString))
	fs := dfs.New(dfs.Config{BlockSize: 37, Nodes: []string{"a"}})
	var rows []types.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, types.Row{types.String(fmt.Sprintf("line-%04d", i))})
	}
	writeRows(t, fs, "/b", FormatText, schema, rows)
	splits, _ := fs.Splits("/b", 0)
	if len(splits) < 3 {
		t.Fatalf("want many tiny splits, got %d", len(splits))
	}
	var got []string
	for _, sp := range splits {
		rd, err := OpenSplit(fs, sp, FormatText, schema, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for {
			row, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, row[0].Str())
		}
	}
	if len(got) != 100 {
		t.Fatalf("got %d lines, want 100", len(got))
	}
	for i, s := range got {
		if s != fmt.Sprintf("line-%04d", i) {
			t.Fatalf("line %d = %q out of order", i, s)
		}
	}
}

func TestEmptyFiles(t *testing.T) {
	schema := testSchema()
	for _, f := range []Format{FormatText, FormatSequence, FormatORC} {
		fs := newFS()
		writeRows(t, fs, "/empty", f, schema, nil)
		got, err := ReadAll(fs, "/empty", f, schema)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if len(got) != 0 {
			t.Errorf("%v: empty file yielded %d rows", f, len(got))
		}
	}
}

func TestParseFormat(t *testing.T) {
	for _, s := range []string{"textfile", "sequencefile", "orc"} {
		if _, err := ParseFormat(s); err != nil {
			t.Errorf("ParseFormat(%q): %v", s, err)
		}
	}
	if _, err := ParseFormat("parquet"); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestPredicateMatchesRange(t *testing.T) {
	mk := func(op PredicateOp, v int64) *Predicate {
		return &Predicate{Op: op, Value: types.Int(v)}
	}
	min, max := types.Int(10), types.Int(20)
	cases := []struct {
		p    *Predicate
		want bool
	}{
		{mk(PredEQ, 15), true},
		{mk(PredEQ, 5), false},
		{mk(PredEQ, 25), false},
		{mk(PredLT, 10), false},
		{mk(PredLT, 11), true},
		{mk(PredLE, 10), true},
		{mk(PredGT, 20), false},
		{mk(PredGT, 19), true},
		{mk(PredGE, 20), true},
		{mk(PredGE, 21), false},
		{nil, true},
	}
	for i, c := range cases {
		if got := c.p.matchesRange(min, max); got != c.want {
			t.Errorf("case %d: matchesRange = %v, want %v", i, got, c.want)
		}
	}
}
