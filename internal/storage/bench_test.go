package storage

import (
	"io"
	"testing"

	"hivempi/internal/dfs"
	"hivempi/internal/vec"
)

// benchORC writes a 20k-row ORC table once per benchmark and returns
// the FS, schema and whole-file split.
func benchORC(b *testing.B) (*dfs.FileSystem, dfs.Split) {
	b.Helper()
	fs := dfs.New(dfs.Config{BlockSize: 256 << 10, Nodes: []string{"n1"}})
	schema := testSchema()
	w, err := CreateTableFile(fs, "/bench.orc", FormatORC, schema)
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range testRows(20000) {
		if err := w.Write(row); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	sz, err := fs.Size("/bench.orc")
	if err != nil {
		b.Fatal(err)
	}
	return fs, dfs.Split{Path: "/bench.orc", Offset: 0, Length: sz}
}

// BenchmarkORCScanRow decodes the split row by row — the row-mode scan
// the engine runs without hive.exec.vectorized.
func BenchmarkORCScanRow(b *testing.B) {
	fs, split := benchORC(b)
	schema := testSchema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, err := OpenSplit(fs, split, FormatORC, schema, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			_, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != 20000 {
			b.Fatalf("read %d rows", n)
		}
	}
}

// BenchmarkORCScanBatch decodes the same split through the columnar
// path straight into vector payloads.
func BenchmarkORCScanBatch(b *testing.B) {
	fs, split := benchORC(b)
	schema := testSchema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, err := OpenSplitBatch(fs, split, FormatORC, schema, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		batch := vec.Get(schema.Len())
		n := 0
		for {
			err := rd.NextBatch(batch)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n += batch.N
		}
		vec.Put(batch)
		if n != 20000 {
			b.Fatalf("read %d rows", n)
		}
	}
}
