// Package storage implements the three table file formats the paper
// evaluates: delimited Text, a binary Sequence format (HiBench's
// default input), and an ORC-like columnar format with stripes, column
// projection, lightweight compression and stripe statistics for
// predicate pushdown (the source of Table II's Text vs ORC gap).
package storage

import (
	"fmt"
	"io"

	"hivempi/internal/dfs"
	"hivempi/internal/types"
	"hivempi/internal/vec"
)

// Format selects a table file format.
type Format int

// Supported formats.
const (
	FormatText Format = iota + 1
	FormatSequence
	FormatORC
)

// String returns the HiveQL STORED AS spelling.
func (f Format) String() string {
	switch f {
	case FormatText:
		return "textfile"
	case FormatSequence:
		return "sequencefile"
	case FormatORC:
		return "orc"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// ParseFormat parses a STORED AS clause value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "textfile", "text":
		return FormatText, nil
	case "sequencefile", "sequence", "seq":
		return FormatSequence, nil
	case "orc", "orcfile":
		return FormatORC, nil
	default:
		return 0, fmt.Errorf("storage: unknown format %q", s)
	}
}

// RowWriter writes rows of one schema to a file.
type RowWriter interface {
	Write(types.Row) error
	Close() error
}

// RowReader iterates rows; Next returns io.EOF at end of input.
type RowReader interface {
	Next() (types.Row, error)
}

// NewWriter creates a writer of the given format over w.
func NewWriter(f Format, w io.WriteCloser, schema *types.Schema) (RowWriter, error) {
	switch f {
	case FormatText:
		return newTextWriter(w, schema), nil
	case FormatSequence:
		return newSeqWriter(w, schema), nil
	case FormatORC:
		return newORCWriter(w, schema, ORCOptions{}), nil
	default:
		return nil, fmt.Errorf("storage: unknown format %v", f)
	}
}

// CreateTableFile creates path on fs and returns a writer for it. ORC
// stripes are cut at the DFS block size (Hive's default couples stripe
// and block sizes) so every split carries whole stripes.
func CreateTableFile(fs *dfs.FileSystem, path string, f Format, schema *types.Schema) (RowWriter, error) {
	w, err := fs.CreateOverwrite(path)
	if err != nil {
		return nil, err
	}
	if f == FormatORC {
		return newORCWriter(w, schema, ORCOptions{StripeBytes: fs.Config().BlockSize}), nil
	}
	return NewWriter(f, w, schema)
}

// PhysicalReader is implemented by readers whose physical I/O differs
// from the split length (ORC column projection + stripe skipping).
type PhysicalReader interface {
	PhysicalBytes() int64
}

// OpenSplit returns a reader over one input split. Each format applies
// its own boundary rule: text splits break at line boundaries, sequence
// splits at sync markers, ORC splits at stripe starts.
//
// projection optionally lists the column ordinals to materialize (ORC
// reads only those columns; row formats fill the full row regardless).
// predicate optionally enables stripe skipping in ORC.
func OpenSplit(fs *dfs.FileSystem, split dfs.Split, f Format, schema *types.Schema,
	projection []int, predicate *Predicate) (RowReader, error) {
	r, err := fs.Open(split.Path)
	if err != nil {
		return nil, err
	}
	switch f {
	case FormatText:
		return newTextSplitReader(r, split.Offset, split.Length, schema)
	case FormatSequence:
		return newSeqSplitReader(r, split.Offset, split.Length, schema)
	case FormatORC:
		return newORCSplitReader(r, split.Offset, split.Length, schema, projection, predicate)
	default:
		return nil, fmt.Errorf("storage: unknown format %v", f)
	}
}

// BatchReader iterates column batches; NextBatch fills b (whose
// column count must match the schema) and returns io.EOF at end of
// input. Unprojected columns come back all-null, mirroring row mode.
type BatchReader interface {
	NextBatch(b *vec.Batch) error
}

// OpenSplitBatch returns a batch reader over one input split. ORC
// serves batches natively from its pruned column streams; row formats
// are adapted by accumulating rows into datum-mode batches, so the
// vectorized path is available for every format.
func OpenSplitBatch(fs *dfs.FileSystem, split dfs.Split, f Format, schema *types.Schema,
	projection []int, predicate *Predicate) (BatchReader, error) {
	if f == FormatORC {
		r, err := fs.Open(split.Path)
		if err != nil {
			return nil, err
		}
		return newORCSplitReader(r, split.Offset, split.Length, schema, projection, predicate)
	}
	rd, err := OpenSplit(fs, split, f, schema, projection, predicate)
	if err != nil {
		return nil, err
	}
	return &rowBatchAdapter{rd: rd, width: schema.Len()}, nil
}

// rowBatchAdapter packs a RowReader's rows into datum-mode batches.
type rowBatchAdapter struct {
	rd    RowReader
	width int
	eof   bool
}

func (a *rowBatchAdapter) NextBatch(b *vec.Batch) error {
	if a.eof {
		return io.EOF
	}
	for ci := 0; ci < a.width; ci++ {
		b.Cols[ci].Reset(vec.KindAny, vec.DefaultSize)
	}
	n := 0
	for n < vec.DefaultSize {
		row, err := a.rd.Next()
		if err == io.EOF {
			a.eof = true
			break
		}
		if err != nil {
			return err
		}
		for ci := 0; ci < a.width && ci < len(row); ci++ {
			b.Cols[ci].SetDatum(n, row[ci])
		}
		n++
	}
	if n == 0 {
		return io.EOF
	}
	b.N = n
	return nil
}

// ReadAll reads every row of a file (testing and small-table helper).
func ReadAll(fs *dfs.FileSystem, path string, f Format, schema *types.Schema) ([]types.Row, error) {
	sz, err := fs.Size(path)
	if err != nil {
		return nil, err
	}
	rd, err := OpenSplit(fs, dfs.Split{Path: path, Offset: 0, Length: sz}, f, schema, nil, nil)
	if err != nil {
		return nil, err
	}
	var rows []types.Row
	for {
		row, err := rd.Next()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
}

// Predicate is a simple single-column comparison used for ORC stripe
// skipping (min/max pruning). The planner extracts one from pushed-down
// filters when possible.
type Predicate struct {
	Column int
	Op     PredicateOp
	Value  types.Datum
}

// PredicateOp enumerates prunable comparison operators.
type PredicateOp int

// Prunable operators.
const (
	PredEQ PredicateOp = iota + 1
	PredLT
	PredLE
	PredGT
	PredGE
)

// matchesRange reports whether any value in [min, max] can satisfy the
// predicate (if not, the stripe is skipped).
func (p *Predicate) matchesRange(min, max types.Datum) bool {
	if p == nil {
		return true
	}
	if min.IsNull() || max.IsNull() {
		return true // stats unavailable; cannot prune
	}
	switch p.Op {
	case PredEQ:
		return types.Compare(p.Value, min) >= 0 && types.Compare(p.Value, max) <= 0
	case PredLT:
		return types.Compare(min, p.Value) < 0
	case PredLE:
		return types.Compare(min, p.Value) <= 0
	case PredGT:
		return types.Compare(max, p.Value) > 0
	case PredGE:
		return types.Compare(max, p.Value) >= 0
	default:
		return true
	}
}
