package storage

import (
	"bufio"
	"fmt"
	"io"

	"hivempi/internal/types"
)

// TextDelim is Hive's default field delimiter rendered printable ('|'
// instead of \x01, matching TPC-H's .tbl convention).
const TextDelim = '|'

// textWriter writes delimiter-separated rows, one per line.
type textWriter struct {
	w      io.WriteCloser
	bw     *bufio.Writer
	schema *types.Schema
}

func newTextWriter(w io.WriteCloser, schema *types.Schema) *textWriter {
	return &textWriter{w: w, bw: bufio.NewWriter(w), schema: schema}
}

func (t *textWriter) Write(row types.Row) error {
	if len(row) != t.schema.Len() {
		return fmt.Errorf("storage: text row has %d columns, schema %d", len(row), t.schema.Len())
	}
	if _, err := t.bw.WriteString(row.Text(TextDelim)); err != nil {
		return err
	}
	return t.bw.WriteByte('\n')
}

func (t *textWriter) Close() error {
	if err := t.bw.Flush(); err != nil {
		return err
	}
	return t.w.Close()
}

// textSplitReader reads the lines belonging to one split: a line belongs
// to the split that contains its first byte, so readers at offset > 0
// skip the partial first line and every reader runs past the split end
// to finish its final line (the standard Hadoop TextInputFormat rule).
type textSplitReader struct {
	br     *bufio.Reader
	schema *types.Schema
	pos    int64 // offset of the next unread byte
	end    int64 // split end; lines starting at >= end belong to the next split
	done   bool
}

func newTextSplitReader(r io.ReadSeeker, offset, length int64, schema *types.Schema) (*textSplitReader, error) {
	if _, err := r.Seek(offset, io.SeekStart); err != nil {
		return nil, err
	}
	t := &textSplitReader{br: bufio.NewReader(r), schema: schema, pos: offset, end: offset + length}
	if offset > 0 {
		// Skip the tail of the previous split's last line.
		skipped, err := t.br.ReadString('\n')
		t.pos += int64(len(skipped))
		if err == io.EOF {
			t.done = true
		} else if err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (t *textSplitReader) Next() (types.Row, error) {
	// A line starting exactly at the end boundary belongs to this split
	// (the next split unconditionally skips its first partial line), so
	// the stop condition is pos > end, matching Hadoop's LineRecordReader.
	if t.done || t.pos > t.end {
		return nil, io.EOF
	}
	line, err := t.br.ReadString('\n')
	if err == io.EOF {
		t.done = true
		if len(line) == 0 {
			return nil, io.EOF
		}
	} else if err != nil {
		return nil, err
	}
	t.pos += int64(len(line))
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	row, perr := types.ParseRowText(line, TextDelim, t.schema)
	if perr != nil {
		return nil, fmt.Errorf("storage: text parse: %w", perr)
	}
	return row, nil
}
