package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"hivempi/internal/types"
)

// The sequence format stores binary-encoded rows in blocks, each
// preceded by a 16-byte sync marker so a reader can resynchronize at an
// arbitrary split offset, like Hadoop SequenceFiles.

var seqSync = []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x53, 0x45, 0x51, 0x46,
	0x13, 0x37, 0xC0, 0xDE, 0x0B, 0x10, 0xC4, 0x5D}

const seqBlockTarget = 64 << 10 // flush a block at ~64 KB

// seqWriter buffers encoded rows into sync-delimited blocks.
type seqWriter struct {
	w      io.WriteCloser
	schema *types.Schema
	buf    []byte
	rows   uint32
}

func newSeqWriter(w io.WriteCloser, schema *types.Schema) *seqWriter {
	return &seqWriter{w: w, schema: schema}
}

func (s *seqWriter) Write(row types.Row) error {
	if len(row) != s.schema.Len() {
		return fmt.Errorf("storage: seq row has %d columns, schema %d", len(row), s.schema.Len())
	}
	s.buf = types.EncodeRow(s.buf, row)
	s.rows++
	if len(s.buf) >= seqBlockTarget {
		return s.flushBlock()
	}
	return nil
}

func (s *seqWriter) flushBlock() error {
	if s.rows == 0 {
		return nil
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(s.buf)))
	binary.LittleEndian.PutUint32(hdr[4:], s.rows)
	if _, err := s.w.Write(seqSync); err != nil {
		return err
	}
	if _, err := s.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.w.Write(s.buf); err != nil {
		return err
	}
	s.buf = s.buf[:0]
	s.rows = 0
	return nil
}

func (s *seqWriter) Close() error {
	if err := s.flushBlock(); err != nil {
		return err
	}
	return s.w.Close()
}

// seqSplitReader reads the blocks whose sync marker starts inside the
// split's byte range.
type seqSplitReader struct {
	r      io.ReadSeeker
	schema *types.Schema
	pos    int64
	end    int64
	rows   []types.Row // decoded rows of the current block
	i      int
	window []byte // scan buffer
}

func newSeqSplitReader(r io.ReadSeeker, offset, length int64, schema *types.Schema) (*seqSplitReader, error) {
	if _, err := r.Seek(offset, io.SeekStart); err != nil {
		return nil, err
	}
	return &seqSplitReader{r: r, schema: schema, pos: offset, end: offset + length}, nil
}

// scanToSync advances to the next sync marker at or after pos,
// returning io.EOF when none starts before the split end.
func (s *seqSplitReader) scanToSync() error {
	// Read forward in chunks looking for the marker.
	const chunk = 32 << 10
	var tail []byte
	base := s.pos
	if _, err := s.r.Seek(s.pos, io.SeekStart); err != nil {
		return err
	}
	for {
		buf := make([]byte, chunk)
		n, err := s.r.Read(buf)
		if n == 0 {
			if err == io.EOF {
				return io.EOF
			}
			if err != nil {
				return err
			}
		}
		window := append(tail, buf[:n]...)
		if idx := bytes.Index(window, seqSync); idx >= 0 {
			markerPos := base - int64(len(tail)) + int64(idx)
			if markerPos >= s.end {
				return io.EOF
			}
			s.pos = markerPos
			return nil
		}
		if err == io.EOF {
			return io.EOF
		}
		// Keep a marker-sized tail in case the sync spans chunks.
		if len(window) >= len(seqSync)-1 {
			tail = append([]byte(nil), window[len(window)-(len(seqSync)-1):]...)
		} else {
			tail = append([]byte(nil), window...)
		}
		base += int64(n)
		if base-int64(len(tail)) >= s.end {
			return io.EOF
		}
	}
}

// loadBlock reads the block at the current marker position.
func (s *seqSplitReader) loadBlock() error {
	if err := s.scanToSync(); err != nil {
		return err
	}
	hdrPos := s.pos + int64(len(seqSync))
	if _, err := s.r.Seek(hdrPos, io.SeekStart); err != nil {
		return err
	}
	var hdr [8]byte
	if _, err := io.ReadFull(s.r, hdr[:]); err != nil {
		return fmt.Errorf("storage: seq block header: %w", err)
	}
	blen := binary.LittleEndian.Uint32(hdr[0:])
	nrows := binary.LittleEndian.Uint32(hdr[4:])
	payload := make([]byte, blen)
	if _, err := io.ReadFull(s.r, payload); err != nil {
		return fmt.Errorf("storage: seq block payload: %w", err)
	}
	s.pos = hdrPos + 8 + int64(blen)
	s.rows = make([]types.Row, 0, nrows)
	p := 0
	for i := uint32(0); i < nrows; i++ {
		row, n, err := types.DecodeRow(payload[p:])
		if err != nil {
			return fmt.Errorf("storage: seq row %d: %w", i, err)
		}
		if len(row) != s.schema.Len() {
			return fmt.Errorf("storage: seq row has %d columns, schema %d", len(row), s.schema.Len())
		}
		s.rows = append(s.rows, row)
		p += n
	}
	s.i = 0
	return nil
}

func (s *seqSplitReader) Next() (types.Row, error) {
	for s.i >= len(s.rows) {
		if err := s.loadBlock(); err != nil {
			return nil, err
		}
	}
	row := s.rows[s.i]
	s.i++
	return row, nil
}
