package storage

import (
	"strings"
	"testing"

	"hivempi/internal/dfs"
	"hivempi/internal/types"
)

// orcTestFile writes a tiny ORC file and returns its bytes.
func orcTestFile(t *testing.T) (*dfs.FileSystem, string) {
	t.Helper()
	fs := dfs.New(dfs.Config{BlockSize: 4 << 10, Nodes: []string{"n"}})
	schema := types.NewSchema(types.Col("a", types.KindInt), types.Col("b", types.KindString))
	w, err := CreateTableFile(fs, "/f", FormatORC, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Write(types.Row{types.Int(int64(i)), types.String("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return fs, "/f"
}

func openCorrupted(t *testing.T, mutate func([]byte) []byte) error {
	t.Helper()
	fs, path := orcTestFile(t)
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = mutate(append([]byte(nil), data...))
	if err := fs.WriteFile("/corrupt", data); err != nil {
		t.Fatal(err)
	}
	sz, _ := fs.Size("/corrupt")
	schema := types.NewSchema(types.Col("a", types.KindInt), types.Col("b", types.KindString))
	rd, err := OpenSplit(fs, dfs.Split{Path: "/corrupt", Offset: 0, Length: sz},
		FormatORC, schema, nil, nil)
	if err != nil {
		return err
	}
	for {
		if _, err := rd.Next(); err != nil {
			if err.Error() == "EOF" {
				return nil
			}
			return err
		}
	}
}

func TestORCBadMagicRejected(t *testing.T) {
	err := openCorrupted(t, func(b []byte) []byte {
		copy(b[len(b)-4:], "XXXX")
		return b
	})
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic not detected: %v", err)
	}
}

func TestORCTruncatedFileRejected(t *testing.T) {
	err := openCorrupted(t, func(b []byte) []byte { return b[:4] })
	if err == nil {
		t.Error("truncated file not detected")
	}
}

func TestORCFooterLengthOverflowRejected(t *testing.T) {
	err := openCorrupted(t, func(b []byte) []byte {
		// Footer length claims more bytes than the file holds.
		b[len(b)-8] = 0xFF
		b[len(b)-7] = 0xFF
		b[len(b)-6] = 0xFF
		b[len(b)-5] = 0x0F
		return b
	})
	if err == nil || !strings.Contains(err.Error(), "footer") {
		t.Errorf("footer overflow not detected: %v", err)
	}
}

func TestORCGarbageFooterRejected(t *testing.T) {
	err := openCorrupted(t, func(b []byte) []byte {
		// Zero the first footer byte so JSON parsing fails.
		// Footer length is in the last 8 bytes; corrupt just before it.
		if len(b) > 40 {
			b[len(b)-20] = 0x00
		}
		return b
	})
	if err == nil {
		t.Error("garbage footer not detected")
	}
}

func TestORCEmptySchemaMismatch(t *testing.T) {
	fs, path := orcTestFile(t)
	sz, _ := fs.Size(path)
	wrong := types.NewSchema(types.Col("only_one", types.KindInt))
	if _, err := OpenSplit(fs, dfs.Split{Path: path, Offset: 0, Length: sz},
		FormatORC, wrong, nil, nil); err == nil {
		t.Error("column count mismatch not detected")
	}
}
