package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hivempi/internal/types"
)

func TestIntRLERoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{1},
		{5, 5, 5, 5, 5, 5},                   // pure run
		{1, 2, 3, 4, 5},                      // pure literals
		{7, 7, 7, 7, 1, 2, 9, 9, 9, 9, 9, 3}, // mixed
		{-1, -1, -1, -1, 0, 1 << 40, -(1 << 40)},
	}
	for i, vals := range cases {
		buf := appendInts(nil, vals)
		got, n, err := decodeInts(buf)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(buf) {
			t.Errorf("case %d: consumed %d of %d", i, n, len(buf))
		}
		if len(got) != len(vals) {
			t.Fatalf("case %d: %d values, want %d", i, len(got), len(vals))
		}
		for j := range vals {
			if got[j] != vals[j] {
				t.Errorf("case %d value %d: %d != %d", i, j, got[j], vals[j])
			}
		}
	}
}

func TestIntRLECompressesRuns(t *testing.T) {
	run := make([]int64, 10000)
	for i := range run {
		run[i] = 42
	}
	buf := appendInts(nil, run)
	if len(buf) > 32 {
		t.Errorf("run of 10000 encoded to %d bytes", len(buf))
	}
}

func TestIntRLEProperty(t *testing.T) {
	f := func(vals []int64) bool {
		buf := appendInts(nil, vals)
		got, _, err := decodeInts(buf)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringDictionaryChosenForLowCardinality(t *testing.T) {
	vals := make([]string, 1000)
	for i := range vals {
		vals[i] = []string{"aa", "bb", "cc"}[i%3]
	}
	buf := appendStrings(nil, vals)
	// The mode byte follows the uvarint count (1000 -> 2 bytes).
	if buf[2] != strDict {
		t.Error("low-cardinality strings should use dictionary encoding")
	}
	got, _, err := decodeStrings(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestStringDirectChosenForHighCardinality(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	vals := make([]string, 200)
	for i := range vals {
		b := make([]byte, 8)
		r.Read(b)
		vals[i] = string(b)
	}
	buf := appendStrings(nil, vals)
	if buf[2] != strDirect && buf[1] != strDirect {
		t.Error("unique strings should use direct encoding")
	}
	got, _, err := decodeStrings(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestStringsProperty(t *testing.T) {
	f := func(vals []string) bool {
		buf := appendStrings(nil, vals)
		got, _, err := decodeStrings(buf)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatsRoundTrip(t *testing.T) {
	vals := []float64{0, -1.5, 3.14159, 1e300, -1e-300}
	buf := appendFloats(nil, vals)
	got, n, err := decodeFloats(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v (n=%d)", err, n)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("value %d: %g != %g", i, got[i], vals[i])
		}
	}
}

func TestPresenceBitmap(t *testing.T) {
	col := []types.Datum{
		types.Int(1), types.Null(), types.Int(3),
		types.Null(), types.Null(), types.Int(6),
		types.Int(7), types.Int(8), types.Int(9), // crosses byte boundary
	}
	buf := appendPresence(nil, col)
	present, _, err := decodePresence(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(present) != len(col) {
		t.Fatalf("presence length %d, want %d", len(present), len(col))
	}
	for i, d := range col {
		if present[i] != !d.IsNull() {
			t.Errorf("presence[%d] = %v", i, present[i])
		}
	}
}

func TestColumnRoundTripWithNulls(t *testing.T) {
	cols := map[types.Kind][]types.Datum{
		types.KindInt: {types.Int(5), types.Null(), types.Int(-9)},
		types.KindString: {types.String("x"), types.Null(),
			types.String(""), types.String("yy")},
		types.KindFloat: {types.Null(), types.Float(2.5)},
		types.KindDate:  {types.Date(1000), types.Null(), types.Date(2000)},
		types.KindBool:  {types.Bool(true), types.Null(), types.Bool(false)},
	}
	for kind, col := range cols {
		buf, err := encodeColumn(kind, col)
		if err != nil {
			t.Fatalf("%v encode: %v", kind, err)
		}
		got, err := decodeColumn(kind, buf)
		if err != nil {
			t.Fatalf("%v decode: %v", kind, err)
		}
		if len(got) != len(col) {
			t.Fatalf("%v: %d values, want %d", kind, len(got), len(col))
		}
		for i := range col {
			if col[i].IsNull() != got[i].IsNull() {
				t.Errorf("%v[%d] null mismatch", kind, i)
			}
			if !col[i].IsNull() && types.Compare(col[i], got[i]) != 0 {
				t.Errorf("%v[%d]: %v != %v", kind, i, got[i], col[i])
			}
		}
	}
}

func TestDecodeCorruption(t *testing.T) {
	if _, _, err := decodeInts([]byte{}); err == nil {
		t.Error("empty int stream should fail")
	}
	good := appendInts(nil, []int64{1, 2, 3, 4, 5, 6, 7, 8})
	if _, _, err := decodeInts(good[:len(good)-2]); err == nil {
		t.Error("truncated int stream should fail")
	}
	goodS := appendStrings(nil, []string{"hello", "world"})
	if _, _, err := decodeStrings(goodS[:len(goodS)-3]); err == nil {
		t.Error("truncated string stream should fail")
	}
}
