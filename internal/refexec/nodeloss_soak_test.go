package refexec

import (
	"testing"

	"hivempi/internal/chaos"
	"hivempi/internal/cluster"
	"hivempi/internal/hive"
	"hivempi/internal/metrics"
	"hivempi/internal/testutil/leakcheck"
	"hivempi/internal/tpch"
)

// Node-loss soak: the full TPC-H suite must return reference-identical
// results while the cluster membership loses nodes underneath it. Three
// seeded schedules cover the failure-domain surface:
//
//	crash-mid-stage:   one node fail-stops mid-run; reads fail over,
//	                   stale-hostfile ranks retry onto survivors, and
//	                   re-replication restores the factor.
//	crash-during-repair: a second node dies while the first death's
//	                   re-replication is still in flight; a fresh node
//	                   joins mid-run and the factor is restored by end.
//	slow-node-flap:    a node's heartbeats run late enough to flap it
//	                   through SUSPECT without dying; reads fail over
//	                   and no replica is dropped.
//
// Every schedule runs all 22 queries on one driver (the detector ticks
// once per completed stage, so the faults land mid-workload), under
// the race detector via `make soak` / `make check`.

// newClusterDriver builds the standard refexec driver with the failure
// domain attached: a 4-node membership with the default detector
// timing, armed with the schedule's chaos plan.
func newClusterDriver(t *testing.T, plan chaos.Plan) (*hive.Driver, *cluster.Membership, *chaos.Plane) {
	t.Helper()
	d := newDriver(t)
	d.Conf.MaxTaskAttempts = 5
	m := cluster.New(cluster.Config{Nodes: []string{"s1", "s2", "s3", "s4"}})
	plane := chaos.NewPlane(plan)
	m.SetChaos(plane)
	d.AttachCluster(m, nil)
	return d, m, plane
}

// runAll22 executes every TPC-H query on the driver and compares each
// result to the reference executor, calling onQuery (if set) between
// queries with the 1-based position.
func runAll22(t *testing.T, d *hive.Driver, db *DB, onQuery func(i int)) {
	t.Helper()
	for q := 1; q <= 22; q++ {
		script, err := tpch.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got := lastRows(t, d, script)
		want, err := Query(db, q)
		if err != nil {
			t.Fatal(err)
		}
		rowsMatch(t, q, got, want)
		if onQuery != nil {
			onQuery(q)
		}
	}
}

func TestNodeLossSoakCrashMidStage(t *testing.T) {
	defer leakcheck.Check(t)()
	db := Load(testSF, testSeed)
	// s2 fail-stops at its 9th heartbeat consultation — a few stages
	// into the workload — and is declared DEAD ~6 intervals later.
	d, m, plane := newClusterDriver(t, chaos.Plan{Seed: 9, Specs: []chaos.Spec{
		{Kind: chaos.NodeCrash, Node: "s2", After: 8},
	}})

	runAll22(t, d, db, nil)

	if plane.Fired(chaos.NodeCrash) != 1 {
		t.Fatal("the crash never fired; the soak proved nothing")
	}
	if st, _ := m.State("s2"); st != cluster.Dead {
		t.Fatalf("s2 = %v at end of soak, want DEAD", st)
	}
	if g := d.Env.Metrics.Gauge(metrics.GaugeClusterDead).Value(); g != 1 {
		t.Fatalf("cluster.nodes.dead = %d, want 1", g)
	}
	if n := d.Env.Metrics.Counter(metrics.CtrDFSRereplBlocks).Value(); n == 0 {
		t.Fatal("node death triggered no re-replication")
	}
	if u := d.Env.FS.UnderReplicated(); u != 0 {
		t.Fatalf("replication factor not restored: %d blocks under-replicated", u)
	}
	if n := d.Env.Metrics.Counter(metrics.CtrDFSLostBlocks).Value(); n != 0 {
		t.Fatalf("%d blocks lost despite 3-way replication and one death", n)
	}
}

func TestNodeLossSoakCrashDuringRereplication(t *testing.T) {
	defer leakcheck.Check(t)()
	db := Load(testSF, testSeed)
	// s2 dies first; s3's crash is armed two consultations later, so it
	// falls while s2's replicas are still being re-replicated. With two
	// of four nodes dead the 3-way factor is unsatisfiable until a
	// fresh node (s5) joins mid-run.
	d, m, plane := newClusterDriver(t, chaos.Plan{Seed: 17, Specs: []chaos.Spec{
		{Kind: chaos.NodeCrash, Node: "s2", After: 6},
		{Kind: chaos.NodeCrash, Node: "s3", After: 8},
	}})

	joined := false
	runAll22(t, d, db, func(i int) {
		if _, _, dead := m.Counts(); dead == 2 && !joined {
			joined = true
			m.Join("s5")
		}
	})

	if plane.Fired(chaos.NodeCrash) != 2 {
		t.Fatalf("%d crashes fired, want 2", plane.Fired(chaos.NodeCrash))
	}
	if !joined {
		t.Fatal("both deaths never landed during the workload")
	}
	up, _, dead := m.Counts()
	if dead != 2 || up != 3 {
		t.Fatalf("end membership up=%d dead=%d, want 3 up (s1,s4,s5) / 2 dead", up, dead)
	}
	if n := d.Env.Metrics.Counter(metrics.CtrDFSRereplBlocks).Value(); n == 0 {
		t.Fatal("no re-replication despite two deaths")
	}
	if u := d.Env.FS.UnderReplicated(); u != 0 {
		t.Fatalf("factor not restored after s5 joined: %d blocks under-replicated", u)
	}
	if n := d.Env.Metrics.Counter(metrics.CtrDFSLostBlocks).Value(); n != 0 {
		t.Fatalf("%d blocks lost; 3-way replication should survive staggered double death", n)
	}
	if d.Env.FS.RecoverySeconds() <= 0 {
		t.Fatal("re-replication charged no virtual recovery time")
	}
}

func TestNodeLossSoakSlowNodeFlap(t *testing.T) {
	defer leakcheck.Check(t)()
	db := Load(testSF, testSeed)
	// s4's heartbeats run 3s late for six consecutive intervals: past
	// the 2.5s suspect threshold, well short of the 6s death threshold.
	// The node flaps through SUSPECT (reads fail over) and recovers on
	// its first on-time beat; no replica may be dropped.
	d, m, plane := newClusterDriver(t, chaos.Plan{Seed: 23, Specs: []chaos.Spec{
		{Kind: chaos.NodeSlow, Node: "s4", After: 5, DelaySec: 3, Count: 6},
	}})
	flapped := false
	m.Subscribe(func(ev cluster.Event) {
		if ev.Node == "s4" && ev.To == cluster.Suspect {
			flapped = true
		}
	})

	runAll22(t, d, db, nil)

	if plane.Fired(chaos.NodeSlow) != 6 {
		t.Fatalf("%d slow beats fired, want 6", plane.Fired(chaos.NodeSlow))
	}
	if !flapped {
		t.Fatal("slow beats never pushed s4 into SUSPECT")
	}
	if st, _ := m.State("s4"); st != cluster.Up {
		t.Fatalf("s4 = %v at end, want UP (flap must recover)", st)
	}
	if g := d.Env.Metrics.Gauge(metrics.GaugeClusterDead).Value(); g != 0 {
		t.Fatalf("cluster.nodes.dead = %d, want 0 (suspicion must not kill)", g)
	}
	if n := d.Env.Metrics.Counter(metrics.CtrDFSReadFailovers).Value(); n == 0 {
		t.Fatal("no read failed over during the suspicion window")
	}
	if n := d.Env.Metrics.Counter(metrics.CtrDFSLostBlocks).Value(); n != 0 {
		t.Fatalf("%d blocks lost during a flap that dropped no node", n)
	}
	if u := d.Env.FS.UnderReplicated(); u != 0 {
		t.Fatalf("flap left %d blocks under-replicated; suspicion must keep replicas", u)
	}
}
