package refexec

import (
	"hivempi/internal/types"
)

func q12(db *DB) []types.Row {
	lo, hi := day("1994-01-01"), day("1995-01-01")
	high := map[string]int64{}
	low := map[string]int64{}
	seen := map[string]bool{}
	for _, l := range db.Lineitem {
		m := l[lShipmode].S
		if m != "MAIL" && m != "SHIP" {
			continue
		}
		if !(l[lCommitdate].I < l[lReceiptdate].I && l[lShipdate].I < l[lCommitdate].I) {
			continue
		}
		if l[lReceiptdate].I < lo || l[lReceiptdate].I >= hi {
			continue
		}
		o := db.orderByKey[l[lOrderkey].Int()]
		seen[m] = true
		if p := o[oOrderpriority].S; p == "1-URGENT" || p == "2-HIGH" {
			high[m]++
		} else {
			low[m]++
		}
	}
	var out []types.Row
	for m := range seen {
		out = append(out, types.Row{types.String(m), types.Int(high[m]), types.Int(low[m])})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[0]} }, nil, 0)
}

func q13(db *DB) []types.Row {
	perCust := map[int64]int64{}
	for _, c := range db.Customer {
		perCust[c[cCustkey].Int()] = 0
	}
	for _, o := range db.Orders {
		if like(o[oComment].S, "%special%requests%") {
			continue
		}
		perCust[o[oCustkey].Int()]++
	}
	dist := map[int64]int64{}
	for _, n := range perCust {
		dist[n]++
	}
	var out []types.Row
	for cnt, custs := range dist {
		out = append(out, types.Row{types.Int(cnt), types.Int(custs)})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[1], r[0]} },
		[]bool{true, true}, 0)
}

func q14(db *DB) []types.Row {
	lo, hi := day("1995-09-01"), day("1995-10-01")
	var promo, total float64
	for _, l := range db.Lineitem {
		if l[lShipdate].I < lo || l[lShipdate].I >= hi {
			continue
		}
		p := db.partByKey[l[lPartkey].Int()]
		v := l[lExtendedprice].F * (1 - l[lDiscount].F)
		total += v
		if like(p[pType].S, "PROMO%") {
			promo += v
		}
	}
	if total == 0 {
		return []types.Row{{types.Null()}} // SQL: NULL/NULL over zero rows
	}
	return []types.Row{{types.Float(100.0 * promo / total)}}
}

func q15(db *DB) []types.Row {
	lo, hi := day("1996-01-01"), day("1996-04-01")
	rev := map[int64]float64{}
	for _, l := range db.Lineitem {
		if l[lShipdate].I < lo || l[lShipdate].I >= hi {
			continue
		}
		rev[l[lSuppkey].Int()] += l[lExtendedprice].F * (1 - l[lDiscount].F)
	}
	var max float64
	first := true
	for _, v := range rev {
		if first || v > max {
			max = v
			first = false
		}
	}
	var out []types.Row
	for sk, v := range rev {
		if v == max {
			s := db.suppByKey[sk]
			out = append(out, types.Row{
				s[sSuppkey], s[sName], s[sAddress], s[sPhone], types.Float(v)})
		}
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[0]} }, nil, 0)
}

func q16(db *DB) []types.Row {
	bad := map[int64]bool{}
	for _, s := range db.Supplier {
		if like(s[sComment].S, "%Customer%Complaints%") {
			bad[s[sSuppkey].Int()] = true
		}
	}
	sizes := map[int64]bool{49: true, 14: true, 23: true, 45: true,
		19: true, 3: true, 36: true, 9: true}
	type k3 struct {
		brand, ptype string
		size         int64
	}
	supps := map[k3]map[int64]bool{}
	for _, ps := range db.PartSupp {
		if bad[ps[psSuppkey].Int()] {
			continue
		}
		p := db.partByKey[ps[psPartkey].Int()]
		if p[pBrand].S == "Brand#45" || like(p[pType].S, "MEDIUM POLISHED%") ||
			!sizes[p[pSize].Int()] {
			continue
		}
		k := k3{p[pBrand].S, p[pType].S, p[pSize].Int()}
		if supps[k] == nil {
			supps[k] = map[int64]bool{}
		}
		supps[k][ps[psSuppkey].Int()] = true
	}
	var out []types.Row
	for k, set := range supps {
		out = append(out, types.Row{
			types.String(k.brand), types.String(k.ptype),
			types.Int(k.size), types.Int(int64(len(set)))})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[3], r[0], r[1], r[2]} },
		[]bool{true, false, false, false}, 0)
}

func q17(db *DB) []types.Row {
	avgQty := map[int64]float64{}
	cnt := map[int64]int64{}
	for _, l := range db.Lineitem {
		avgQty[l[lPartkey].Int()] += l[lQuantity].F
		cnt[l[lPartkey].Int()]++
	}
	var total float64
	matched := false
	for _, l := range db.Lineitem {
		p := db.partByKey[l[lPartkey].Int()]
		if p[pBrand].S != "Brand#23" || p[pContainer].S != "MED BOX" {
			continue
		}
		pk := l[lPartkey].Int()
		threshold := 0.2 * (avgQty[pk] / float64(cnt[pk]))
		if l[lQuantity].F < threshold {
			total += l[lExtendedprice].F
			matched = true
		}
	}
	if !matched {
		return []types.Row{{types.Null()}}
	}
	return []types.Row{{types.Float(total / 7.0)}}
}

func q18(db *DB) []types.Row {
	qty := map[int64]float64{}
	for _, l := range db.Lineitem {
		qty[l[lOrderkey].Int()] += l[lQuantity].F
	}
	var out []types.Row
	for ok, q := range qty {
		if q <= 300 {
			continue
		}
		o := db.orderByKey[ok]
		c := db.custByKey[o[oCustkey].Int()]
		out = append(out, types.Row{
			c[cName], c[cCustkey], o[oOrderkey], o[oOrderdate],
			o[oTotalprice], types.Float(q)})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[4], r[3]} },
		[]bool{true, false}, 100)
}

func q19(db *DB) []types.Row {
	in := func(s string, list ...string) bool {
		for _, x := range list {
			if s == x {
				return true
			}
		}
		return false
	}
	var rev float64
	matched := false
	for _, l := range db.Lineitem {
		if !in(l[lShipmode].S, "AIR", "REG AIR") ||
			l[lShipinstruct].S != "DELIVER IN PERSON" {
			continue
		}
		p := db.partByKey[l[lPartkey].Int()]
		q := l[lQuantity].F
		sz := p[pSize].Int()
		match := (p[pBrand].S == "Brand#12" &&
			in(p[pContainer].S, "SM CASE", "SM BOX", "SM PACK", "SM PKG") &&
			q >= 1 && q <= 11 && sz >= 1 && sz <= 5) ||
			(p[pBrand].S == "Brand#23" &&
				in(p[pContainer].S, "MED BAG", "MED BOX", "MED PKG", "MED PACK") &&
				q >= 10 && q <= 20 && sz >= 1 && sz <= 10) ||
			(p[pBrand].S == "Brand#34" &&
				in(p[pContainer].S, "LG CASE", "LG BOX", "LG PACK", "LG PKG") &&
				q >= 20 && q <= 30 && sz >= 1 && sz <= 15)
		if match {
			rev += l[lExtendedprice].F * (1 - l[lDiscount].F)
			matched = true
		}
	}
	if !matched {
		return []types.Row{{types.Null()}}
	}
	return []types.Row{{types.Float(rev)}}
}

func q20(db *DB) []types.Row {
	forest := map[int64]bool{}
	for _, p := range db.Part {
		if like(p[pName].S, "forest%") {
			forest[p[pPartkey].Int()] = true
		}
	}
	lo, hi := day("1994-01-01"), day("1995-01-01")
	half := map[[2]int64]float64{}
	for _, l := range db.Lineitem {
		if l[lShipdate].I < lo || l[lShipdate].I >= hi {
			continue
		}
		half[[2]int64{l[lPartkey].Int(), l[lSuppkey].Int()}] += l[lQuantity].F
	}
	goodSupp := map[int64]bool{}
	for _, ps := range db.PartSupp {
		if !forest[ps[psPartkey].Int()] {
			continue
		}
		h, ok := half[[2]int64{ps[psPartkey].Int(), ps[psSuppkey].Int()}]
		if !ok {
			continue // inner join with the qty table
		}
		if float64(ps[psAvailqty].Int()) > 0.5*h {
			goodSupp[ps[psSuppkey].Int()] = true
		}
	}
	var out []types.Row
	for sk := range goodSupp {
		s := db.suppByKey[sk]
		if db.nationByKey[s[sNationkey].Int()][nName].S != "CANADA" {
			continue
		}
		out = append(out, types.Row{s[sName], s[sAddress]})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[0]} }, nil, 0)
}

func q21(db *DB) []types.Row {
	allSupp := map[int64]map[int64]bool{}
	lateSupp := map[int64]map[int64]bool{}
	for _, l := range db.Lineitem {
		ok := l[lOrderkey].Int()
		sk := l[lSuppkey].Int()
		if allSupp[ok] == nil {
			allSupp[ok] = map[int64]bool{}
		}
		allSupp[ok][sk] = true
		if l[lReceiptdate].I > l[lCommitdate].I {
			if lateSupp[ok] == nil {
				lateSupp[ok] = map[int64]bool{}
			}
			lateSupp[ok][sk] = true
		}
	}
	numwait := map[string]int64{}
	for _, l := range db.Lineitem {
		if l[lReceiptdate].I <= l[lCommitdate].I {
			continue
		}
		ok := l[lOrderkey].Int()
		o := db.orderByKey[ok]
		if o[oOrderstatus].S != "F" {
			continue
		}
		s := db.suppByKey[l[lSuppkey].Int()]
		if db.nationByKey[s[sNationkey].Int()][nName].S != "SAUDI ARABIA" {
			continue
		}
		if len(allSupp[ok]) <= 1 || len(lateSupp[ok]) != 1 {
			continue
		}
		numwait[s[sName].S]++
	}
	var out []types.Row
	for name, n := range numwait {
		out = append(out, types.Row{types.String(name), types.Int(n)})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[1], r[0]} },
		[]bool{true, false}, 100)
}

func q22(db *DB) []types.Row {
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true,
		"30": true, "18": true, "17": true}
	hasOrder := map[int64]bool{}
	for _, o := range db.Orders {
		hasOrder[o[oCustkey].Int()] = true
	}
	var avgBal float64
	var avgN int64
	for _, c := range db.Customer {
		code := c[cPhone].S[:2]
		if !codes[code] || c[cAcctbal].F <= 0 {
			continue
		}
		avgBal += c[cAcctbal].F
		avgN++
	}
	if avgN > 0 {
		avgBal /= float64(avgN)
	}
	cnt := map[string]int64{}
	tot := map[string]float64{}
	for _, c := range db.Customer {
		code := c[cPhone].S[:2]
		if !codes[code] || hasOrder[c[cCustkey].Int()] || c[cAcctbal].F <= avgBal {
			continue
		}
		cnt[code]++
		tot[code] += c[cAcctbal].F
	}
	var out []types.Row
	for code, n := range cnt {
		out = append(out, types.Row{types.String(code), types.Int(n), types.Float(tot[code])})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[0]} }, nil, 0)
}
