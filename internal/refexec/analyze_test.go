package refexec

import (
	"fmt"
	"strings"
	"testing"

	"hivempi/internal/obs"
	"hivempi/internal/tpch"
	"hivempi/internal/trace"
)

// TestExplainAnalyzeQ9: EXPLAIN ANALYZE really executes the statement
// (rows still match the reference evaluator) and the rendered plan
// reports every stage's rows, bytes, virtual seconds and engine.
func TestExplainAnalyzeQ9(t *testing.T) {
	db := Load(testSF, testSeed)
	want, err := Query(db, 9)
	if err != nil {
		t.Fatal(err)
	}
	d := newDriver(t)
	script, err := tpch.Query(9)
	if err != nil {
		t.Fatal(err)
	}
	results, err := d.Run("EXPLAIN ANALYZE " + script)
	if err != nil {
		t.Fatal(err)
	}
	res := results[len(results)-1]
	if !res.Analyzed {
		t.Fatal("EXPLAIN ANALYZE result not marked Analyzed")
	}
	rowsMatch(t, 9, res.Rows, want)
	if len(res.Stages) == 0 {
		t.Fatal("EXPLAIN ANALYZE carried no stage traces")
	}
	if len(res.Metrics) == 0 {
		t.Error("EXPLAIN ANALYZE carried no metrics snapshot")
	}

	plan := obs.RenderAnalyzedPlan(&trace.Query{
		Statement:  res.Statement,
		Stages:     res.Stages,
		Overlapped: res.Overlapped,
	}, res.Degraded, res.Metrics, nil)

	for _, frag := range []string{
		"EXPLAIN ANALYZE", "STAGE ", "[datampi]", "rows out",
		"start ", "dur ", "input ", "shuffle ", "counters:",
	} {
		if !strings.Contains(plan, frag) {
			t.Errorf("rendered plan missing %q:\n%s", frag, plan)
		}
	}
	for _, st := range res.Stages {
		if !strings.Contains(plan, fmt.Sprintf("STAGE %s [", st.Name)) {
			t.Errorf("plan missing stage %s", st.Name)
		}
	}
	// Q9 is a multi-join: the DAG scheduler must have overlapped it and
	// the plan must expose at least one dependency edge.
	if len(res.Stages) > 1 {
		if !res.Overlapped {
			t.Error("multi-stage Q9 did not run DAG-overlapped")
		}
		if !strings.Contains(plan, "depends on:") {
			t.Error("plan shows no stage dependencies")
		}
	}
}
