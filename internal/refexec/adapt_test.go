package refexec

import (
	"fmt"
	"testing"

	"hivempi/internal/core"
	"hivempi/internal/dfs"
	"hivempi/internal/exec"
	"hivempi/internal/hive"
	"hivempi/internal/tpch"
	"hivempi/internal/types"
)

// Skew-adaptive runtime reference tests: adaptive repartitioning,
// placement and combiner re-sizing must never change a single result
// byte, in row mode and vectorized alike.

// newAdaptDriver builds the standard refexec driver with the
// skew-adaptive runtime switched as requested. BytesPerReducer is
// lowered so the tiny test tables still plan multi-reducer shuffles —
// with the default 1 MB sizing every stage gets one reducer and the
// adapt gates never see an adaptable stage.
func newAdaptDriver(t *testing.T, adaptive, vectorized bool) *hive.Driver {
	t.Helper()
	env := &exec.Env{FS: dfs.New(dfs.Config{
		BlockSize: 64 << 10,
		Nodes:     []string{"s1", "s2", "s3", "s4"},
	})}
	conf := exec.DefaultEngineConf()
	conf.SpillDir = t.TempDir()
	conf.Slaves = []string{"s1", "s2", "s3", "s4"}
	conf.SlotsPerNode = 2
	conf.Vectorized = vectorized
	conf.BytesPerReducer = 8 << 10
	d := hive.NewDriver(env, core.New(), conf)
	d.AdaptiveSkew = adaptive
	if err := tpch.Load(d, testSF, testSeed, "textfile", 2); err != nil {
		t.Fatal(err)
	}
	return d
}

// adaptedStages counts the stages across the driver's recorded queries
// that the adapt runtime actually rewrote.
func adaptedStages(d *hive.Driver) (split, fused int) {
	for _, q := range d.Collector.Queries() {
		for _, st := range q.Stages {
			split += st.AdaptSplit
			fused += st.AdaptFused
		}
	}
	return split, fused
}

// TestAdaptiveSkewByteIdenticalAll22: the full TPC-H suite with the
// adaptive runtime on must be byte-identical to the run with it off,
// in both execution modes, and reference-correct.
func TestAdaptiveSkewByteIdenticalAll22(t *testing.T) {
	db := Load(testSF, testSeed)
	for _, vec := range []bool{false, true} {
		mode := "row"
		if vec {
			mode = "vectorized"
		}
		t.Run(mode, func(t *testing.T) {
			don := newAdaptDriver(t, true, vec)
			doff := newAdaptDriver(t, false, vec)
			for q := 1; q <= tpch.NumQueries; q++ {
				script, err := tpch.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				onRows := lastRows(t, don, script)
				offRows := lastRows(t, doff, script)
				rowsByteIdentical(t, q, onRows, offRows)
				want, err := Query(db, q)
				if err != nil {
					t.Fatal(err)
				}
				rowsMatch(t, q, onRows, want)
			}
			if split, fused := adaptedStages(doff); split != 0 || fused != 0 {
				t.Fatalf("adaptation-off driver rewrote stages: split=%d fused=%d", split, fused)
			}
		})
	}
}

// seedSkewTables creates a join workload with a heavily skewed fact
// table: rowsTotal rows whose keys concentrate hotShare of the volume
// on a handful of distinct keys (the remainder spreads uniformly), and
// a small dimension table mapping every key to one of three groups.
// Deterministic (LCG) so identically-seeded drivers hold identical
// tables.
func seedSkewTables(t *testing.T, d *hive.Driver, rowsTotal int) {
	t.Helper()
	const keySpace = 64
	if _, err := d.Run(`CREATE TABLE big (k bigint, v bigint);
		CREATE TABLE dim (k bigint, g string);`); err != nil {
		t.Fatal(err)
	}
	lcg := uint64(88172645463325252)
	next := func(n int) int {
		lcg ^= lcg << 13
		lcg ^= lcg >> 7
		lcg ^= lcg << 17
		return int(lcg % uint64(n))
	}
	rows := make([]types.Row, 0, rowsTotal)
	for i := 0; i < rowsTotal; i++ {
		// ~80% of the volume lands on one hot key, so whatever reducer
		// count the join stage auto-sizes to, the hot key's partition
		// dominates and the sink's partition-bytes CV crosses the
		// adaptation threshold.
		k := 0
		if next(10) >= 8 {
			k = 1 + next(keySpace-1)
		}
		rows = append(rows, types.Row{types.Int(int64(k)), types.Int(int64(i))})
	}
	// Two part files so the fact scan fans out over several map tasks.
	half := len(rows) / 2
	if err := d.LoadTableData("big", 0, rows[:half]); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadTableData("big", 1, rows[half:]); err != nil {
		t.Fatal(err)
	}
	dim := make([]types.Row, keySpace)
	for k := 0; k < keySpace; k++ {
		dim[k] = types.Row{types.Int(int64(k)), types.String(fmt.Sprintf("g%d", k%3))}
	}
	if err := d.LoadTableData("dim", 0, dim); err != nil {
		t.Fatal(err)
	}
}

// skewQuery shuffle-joins the skewed fact table with the dimension and
// aggregates per group: stage 1 shuffles raw rows by the skewed key k
// (sink observed by the adapt runtime), stage 2 reads that sink and
// shuffles by g — the stage the runtime repartitions.
const skewQuery = `SELECT d.g, count(*) AS c, min(b.v) AS lo, max(b.v) AS hi
 FROM big b JOIN dim d ON b.k = d.k
 GROUP BY d.g
 ORDER BY d.g;`

// TestSeededSkewAdaptationFires: on the seeded-skew workload the
// adaptive driver must actually rewrite at least one stage (split or
// fuse) and still return byte-identical rows to the non-adaptive run.
func TestSeededSkewAdaptationFires(t *testing.T) {
	var rows [2][]types.Row
	for i, adaptive := range []bool{true, false} {
		d := newAdaptDriver(t, adaptive, false)
		d.MapJoinThresholdBytes = 1 // force the shuffle join
		seedSkewTables(t, d, 4000)
		// Twice: the second run also exercises Decide with the first
		// run's observations of the same cached plan.
		lastRows(t, d, skewQuery)
		rows[i] = lastRows(t, d, skewQuery)
		split, fused := adaptedStages(d)
		if adaptive && split+fused == 0 {
			t.Fatal("seeded skew did not trigger any repartitioning")
		}
		if !adaptive && split+fused != 0 {
			t.Fatalf("adaptation off yet stages rewritten: split=%d fused=%d", split, fused)
		}
	}
	if len(rows[0]) == 0 {
		t.Fatal("skew query returned no rows")
	}
	rowsByteIdentical(t, 0, rows[0], rows[1])
}
