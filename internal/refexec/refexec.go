// Package refexec is an independent reference evaluator for the TPC-H
// queries: each query is implemented directly in Go over the generated
// in-memory rows, with no SQL machinery shared with the engines. The
// test suite compares engine results against these to validate the
// whole compiler/executor stack end to end.
package refexec

import (
	"fmt"
	"sort"

	"hivempi/internal/tpch"
	"hivempi/internal/types"
)

// Column ordinals for the eight tables.
const (
	lOrderkey = iota
	lPartkey
	lSuppkey
	lLinenumber
	lQuantity
	lExtendedprice
	lDiscount
	lTax
	lReturnflag
	lLinestatus
	lShipdate
	lCommitdate
	lReceiptdate
	lShipinstruct
	lShipmode
	lComment
)

const (
	oOrderkey = iota
	oCustkey
	oOrderstatus
	oTotalprice
	oOrderdate
	oOrderpriority
	oClerk
	oShippriority
	oComment
)

const (
	cCustkey = iota
	cName
	cAddress
	cNationkey
	cPhone
	cAcctbal
	cMktsegment
	cComment
)

const (
	sSuppkey = iota
	sName
	sAddress
	sNationkey
	sPhone
	sAcctbal
	sComment
)

const (
	pPartkey = iota
	pName
	pMfgr
	pBrand
	pType
	pSize
	pContainer
	pRetailprice
	pComment
)

const (
	psPartkey = iota
	psSuppkey
	psAvailqty
	psSupplycost
	psComment
)

const (
	nNationkey = iota
	nName
	nRegionkey
	nComment
)

const (
	rRegionkey = iota
	rName
	rComment
)

// DB holds the dataset in memory with lookup indexes.
type DB struct {
	Region, Nation, Supplier, Customer []types.Row
	Part, PartSupp, Orders, Lineitem   []types.Row

	nationByKey  map[int64]types.Row
	regionByKey  map[int64]types.Row
	partByKey    map[int64]types.Row
	suppByKey    map[int64]types.Row
	custByKey    map[int64]types.Row
	orderByKey   map[int64]types.Row
	linesByOrder map[int64][]types.Row
	psByPartSupp map[[2]int64]types.Row
	linesByPart  map[int64][]types.Row
}

// Load generates the dataset and builds indexes.
func Load(sf tpch.ScaleFactor, seed int64) *DB {
	g := tpch.NewGenerator(sf, seed)
	orders, lines := g.OrderAndLines()
	db := &DB{
		Region:   g.Region(),
		Nation:   g.Nation(),
		Supplier: g.Supplier(),
		Customer: g.Customer(),
		Part:     g.Part(),
		PartSupp: g.PartSupp(),
		Orders:   orders,
		Lineitem: lines,
	}
	db.index()
	return db
}

func (db *DB) index() {
	db.nationByKey = keyIndex(db.Nation, nNationkey)
	db.regionByKey = keyIndex(db.Region, rRegionkey)
	db.partByKey = keyIndex(db.Part, pPartkey)
	db.suppByKey = keyIndex(db.Supplier, sSuppkey)
	db.custByKey = keyIndex(db.Customer, cCustkey)
	db.orderByKey = keyIndex(db.Orders, oOrderkey)
	db.linesByOrder = groupIndex(db.Lineitem, lOrderkey)
	db.linesByPart = groupIndex(db.Lineitem, lPartkey)
	db.psByPartSupp = make(map[[2]int64]types.Row, len(db.PartSupp))
	for _, ps := range db.PartSupp {
		db.psByPartSupp[[2]int64{ps[psPartkey].Int(), ps[psSuppkey].Int()}] = ps
	}
}

func keyIndex(rows []types.Row, col int) map[int64]types.Row {
	m := make(map[int64]types.Row, len(rows))
	for _, r := range rows {
		m[r[col].Int()] = r
	}
	return m
}

func groupIndex(rows []types.Row, col int) map[int64][]types.Row {
	m := map[int64][]types.Row{}
	for _, r := range rows {
		m[r[col].Int()] = append(m[r[col].Int()], r)
	}
	return m
}

func day(s string) int64 { return types.MustDate(s).I }

// like is an independent LIKE implementation (recursive, not shared
// with the engine's matcher).
func like(s, pat string) bool {
	if pat == "" {
		return s == ""
	}
	switch pat[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if like(s[i:], pat[1:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && like(s[1:], pat[1:])
	default:
		return s != "" && s[0] == pat[0] && like(s[1:], pat[1:])
	}
}

// key builds a composite sort key (mirrors multi-column ORDER BY).
type key []types.Datum

func lessKeys(a, b key, descs []bool) bool {
	for i := range a {
		c := types.Compare(a[i], b[i])
		if descs != nil && i < len(descs) && descs[i] {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}

// orderAndLimit sorts rows by the given key columns and truncates.
func orderAndLimit(rows []types.Row, keyFn func(types.Row) key, descs []bool, limit int) []types.Row {
	sort.SliceStable(rows, func(i, j int) bool {
		return lessKeys(keyFn(rows[i]), keyFn(rows[j]), descs)
	})
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}

// Query evaluates TPC-H query q against the database.
func Query(db *DB, q int) ([]types.Row, error) {
	fns := []func(*DB) []types.Row{
		q1, q2, q3, q4, q5, q6, q7, q8, q9, q10, q11,
		q12, q13, q14, q15, q16, q17, q18, q19, q20, q21, q22,
	}
	if q < 1 || q > len(fns) {
		return nil, fmt.Errorf("refexec: query %d out of range", q)
	}
	return fns[q-1](db), nil
}

func q1(db *DB) []types.Row {
	type acc struct {
		qty, base, disc, charge, discount float64
		n                                 int64
	}
	groups := map[[2]string]*acc{}
	cut := day("1998-09-02")
	for _, l := range db.Lineitem {
		if l[lShipdate].I > cut {
			continue
		}
		k := [2]string{l[lReturnflag].S, l[lLinestatus].S}
		a := groups[k]
		if a == nil {
			a = &acc{}
			groups[k] = a
		}
		ext, dc, tax := l[lExtendedprice].F, l[lDiscount].F, l[lTax].F
		a.qty += l[lQuantity].F
		a.base += ext
		a.disc += ext * (1 - dc)
		a.charge += ext * (1 - dc) * (1 + tax)
		a.discount += dc
		a.n++
	}
	var out []types.Row
	for k, a := range groups {
		out = append(out, types.Row{
			types.String(k[0]), types.String(k[1]),
			types.Float(a.qty), types.Float(a.base), types.Float(a.disc),
			types.Float(a.charge),
			types.Float(a.qty / float64(a.n)),
			types.Float(a.base / float64(a.n)),
			types.Float(a.discount / float64(a.n)),
			types.Int(a.n),
		})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[0], r[1]} }, nil, 0)
}

func q2(db *DB) []types.Row {
	type cand struct {
		row  types.Row
		cost float64
		part int64
	}
	var cands []cand
	minCost := map[int64]float64{}
	for _, ps := range db.PartSupp {
		p := db.partByKey[ps[psPartkey].Int()]
		if p[pSize].Int() != 15 || !like(p[pType].S, "%BRASS") {
			continue
		}
		s := db.suppByKey[ps[psSuppkey].Int()]
		n := db.nationByKey[s[sNationkey].Int()]
		r := db.regionByKey[n[nRegionkey].Int()]
		if r[rName].S != "EUROPE" {
			continue
		}
		cost := ps[psSupplycost].F
		part := ps[psPartkey].Int()
		if cur, ok := minCost[part]; !ok || cost < cur {
			minCost[part] = cost
		}
		cands = append(cands, cand{
			row: types.Row{
				s[sAcctbal], s[sName], n[nName], p[pPartkey], p[pMfgr],
				s[sAddress], s[sPhone], s[sComment],
			},
			cost: cost,
			part: part,
		})
	}
	var out []types.Row
	for _, c := range cands {
		if c.cost == minCost[c.part] {
			out = append(out, c.row)
		}
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[0], r[2], r[1], r[3]} },
		[]bool{true, false, false, false}, 100)
}

func q3(db *DB) []types.Row {
	cut := day("1995-03-15")
	type acc struct {
		rev   float64
		odate types.Datum
		prio  types.Datum
	}
	groups := map[int64]*acc{}
	for _, l := range db.Lineitem {
		if l[lShipdate].I <= cut {
			continue
		}
		o, ok := db.orderByKey[l[lOrderkey].Int()]
		if !ok || o[oOrderdate].I >= cut {
			continue
		}
		c := db.custByKey[o[oCustkey].Int()]
		if c[cMktsegment].S != "BUILDING" {
			continue
		}
		a := groups[l[lOrderkey].Int()]
		if a == nil {
			a = &acc{odate: o[oOrderdate], prio: o[oShippriority]}
			groups[l[lOrderkey].Int()] = a
		}
		a.rev += l[lExtendedprice].F * (1 - l[lDiscount].F)
	}
	var out []types.Row
	for k, a := range groups {
		out = append(out, types.Row{types.Int(k), types.Float(a.rev), a.odate, a.prio})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[1], r[2]} },
		[]bool{true, false}, 10)
}

func q4(db *DB) []types.Row {
	late := map[int64]bool{}
	for _, l := range db.Lineitem {
		if l[lCommitdate].I < l[lReceiptdate].I {
			late[l[lOrderkey].Int()] = true
		}
	}
	lo, hi := day("1993-07-01"), day("1993-10-01")
	counts := map[string]int64{}
	for _, o := range db.Orders {
		if o[oOrderdate].I < lo || o[oOrderdate].I >= hi || !late[o[oOrderkey].Int()] {
			continue
		}
		counts[o[oOrderpriority].S]++
	}
	var out []types.Row
	for k, c := range counts {
		out = append(out, types.Row{types.String(k), types.Int(c)})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[0]} }, nil, 0)
}

func q5(db *DB) []types.Row {
	lo, hi := day("1994-01-01"), day("1995-01-01")
	rev := map[string]float64{}
	for _, l := range db.Lineitem {
		o := db.orderByKey[l[lOrderkey].Int()]
		if o[oOrderdate].I < lo || o[oOrderdate].I >= hi {
			continue
		}
		s := db.suppByKey[l[lSuppkey].Int()]
		c := db.custByKey[o[oCustkey].Int()]
		if c[cNationkey].I != s[sNationkey].I {
			continue
		}
		n := db.nationByKey[s[sNationkey].Int()]
		r := db.regionByKey[n[nRegionkey].Int()]
		if r[rName].S != "ASIA" {
			continue
		}
		rev[n[nName].S] += l[lExtendedprice].F * (1 - l[lDiscount].F)
	}
	var out []types.Row
	for k, v := range rev {
		out = append(out, types.Row{types.String(k), types.Float(v)})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[1]} }, []bool{true}, 0)
}

func q6(db *DB) []types.Row {
	lo, hi := day("1994-01-01"), day("1995-01-01")
	var rev float64
	matched := false
	for _, l := range db.Lineitem {
		if l[lShipdate].I < lo || l[lShipdate].I >= hi {
			continue
		}
		if l[lDiscount].F < 0.05 || l[lDiscount].F > 0.07 || l[lQuantity].F >= 24 {
			continue
		}
		rev += l[lExtendedprice].F * l[lDiscount].F
		matched = true
	}
	if !matched {
		return []types.Row{{types.Null()}} // SQL: sum over zero rows is NULL
	}
	return []types.Row{{types.Float(rev)}}
}

func q7(db *DB) []types.Row {
	lo, hi := day("1995-01-01"), day("1996-12-31")
	type k3 struct {
		sn, cn string
		y      int64
	}
	rev := map[k3]float64{}
	for _, l := range db.Lineitem {
		if l[lShipdate].I < lo || l[lShipdate].I > hi {
			continue
		}
		s := db.suppByKey[l[lSuppkey].Int()]
		o := db.orderByKey[l[lOrderkey].Int()]
		c := db.custByKey[o[oCustkey].Int()]
		n1 := db.nationByKey[s[sNationkey].Int()][nName].S
		n2 := db.nationByKey[c[cNationkey].Int()][nName].S
		if !((n1 == "FRANCE" && n2 == "GERMANY") || (n1 == "GERMANY" && n2 == "FRANCE")) {
			continue
		}
		y := yearOf(l[lShipdate])
		rev[k3{n1, n2, y}] += l[lExtendedprice].F * (1 - l[lDiscount].F)
	}
	var out []types.Row
	for k, v := range rev {
		out = append(out, types.Row{
			types.String(k.sn), types.String(k.cn), types.Int(k.y), types.Float(v)})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[0], r[1], r[2]} }, nil, 0)
}

func yearOf(d types.Datum) int64 {
	return int64(mustYear(d))
}

func mustYear(d types.Datum) int {
	s := d.DateString()
	y := 0
	for i := 0; i < 4; i++ {
		y = y*10 + int(s[i]-'0')
	}
	return y
}

func q8(db *DB) []types.Row {
	lo, hi := day("1995-01-01"), day("1996-12-31")
	num := map[int64]float64{}
	den := map[int64]float64{}
	for _, l := range db.Lineitem {
		p := db.partByKey[l[lPartkey].Int()]
		if p[pType].S != "ECONOMY ANODIZED STEEL" {
			continue
		}
		o := db.orderByKey[l[lOrderkey].Int()]
		if o[oOrderdate].I < lo || o[oOrderdate].I > hi {
			continue
		}
		c := db.custByKey[o[oCustkey].Int()]
		n1 := db.nationByKey[c[cNationkey].Int()]
		r := db.regionByKey[n1[nRegionkey].Int()]
		if r[rName].S != "AMERICA" {
			continue
		}
		s := db.suppByKey[l[lSuppkey].Int()]
		n2 := db.nationByKey[s[sNationkey].Int()][nName].S
		y := yearOf(o[oOrderdate])
		vol := l[lExtendedprice].F * (1 - l[lDiscount].F)
		den[y] += vol
		if n2 == "BRAZIL" {
			num[y] += vol
		}
	}
	var out []types.Row
	for y, d := range den {
		out = append(out, types.Row{types.Int(y), types.Float(num[y] / d)})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[0]} }, nil, 0)
}

func q9(db *DB) []types.Row {
	type k2 struct {
		nation string
		y      int64
	}
	profit := map[k2]float64{}
	for _, l := range db.Lineitem {
		p := db.partByKey[l[lPartkey].Int()]
		if !like(p[pName].S, "%green%") {
			continue
		}
		s := db.suppByKey[l[lSuppkey].Int()]
		ps := db.psByPartSupp[[2]int64{l[lPartkey].Int(), l[lSuppkey].Int()}]
		o := db.orderByKey[l[lOrderkey].Int()]
		n := db.nationByKey[s[sNationkey].Int()][nName].S
		amount := l[lExtendedprice].F*(1-l[lDiscount].F) - ps[psSupplycost].F*l[lQuantity].F
		profit[k2{n, yearOf(o[oOrderdate])}] += amount
	}
	var out []types.Row
	for k, v := range profit {
		out = append(out, types.Row{types.String(k.nation), types.Int(k.y), types.Float(v)})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[0], r[1]} },
		[]bool{false, true}, 0)
}

func q10(db *DB) []types.Row {
	lo, hi := day("1993-10-01"), day("1994-01-01")
	type acc struct {
		rev  float64
		cust types.Row
	}
	groups := map[int64]*acc{}
	for _, l := range db.Lineitem {
		if l[lReturnflag].S != "R" {
			continue
		}
		o := db.orderByKey[l[lOrderkey].Int()]
		if o[oOrderdate].I < lo || o[oOrderdate].I >= hi {
			continue
		}
		ck := o[oCustkey].Int()
		a := groups[ck]
		if a == nil {
			a = &acc{cust: db.custByKey[ck]}
			groups[ck] = a
		}
		a.rev += l[lExtendedprice].F * (1 - l[lDiscount].F)
	}
	var out []types.Row
	for _, a := range groups {
		c := a.cust
		n := db.nationByKey[c[cNationkey].Int()]
		out = append(out, types.Row{
			c[cCustkey], c[cName], types.Float(a.rev), c[cAcctbal],
			n[nName], c[cAddress], c[cPhone], c[cComment],
		})
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[2]} }, []bool{true}, 20)
}

func q11(db *DB) []types.Row {
	value := map[int64]float64{}
	var total float64
	for _, ps := range db.PartSupp {
		s := db.suppByKey[ps[psSuppkey].Int()]
		if db.nationByKey[s[sNationkey].Int()][nName].S != "GERMANY" {
			continue
		}
		v := ps[psSupplycost].F * float64(ps[psAvailqty].Int())
		value[ps[psPartkey].Int()] += v
		total += v
	}
	var out []types.Row
	for k, v := range value {
		if v > total*0.0001 {
			out = append(out, types.Row{types.Int(k), types.Float(v)})
		}
	}
	return orderAndLimit(out, func(r types.Row) key { return key{r[1]} }, []bool{true}, 0)
}
