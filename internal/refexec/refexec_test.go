package refexec

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"hivempi/internal/core"
	"hivempi/internal/dfs"
	"hivempi/internal/exec"
	"hivempi/internal/hive"
	"hivempi/internal/tpch"
	"hivempi/internal/types"
)

const (
	testSF   = tpch.ScaleFactor(0.001)
	testSeed = 42
)

func newDriverSeeded(t *testing.T, sf tpch.ScaleFactor, seed int64) *hive.Driver {
	t.Helper()
	env := &exec.Env{FS: dfs.New(dfs.Config{
		BlockSize: 64 << 10,
		Nodes:     []string{"s1", "s2", "s3", "s4"},
	})}
	conf := exec.DefaultEngineConf()
	conf.SpillDir = t.TempDir()
	conf.Slaves = []string{"s1", "s2", "s3", "s4"}
	conf.SlotsPerNode = 2
	d := hive.NewDriver(env, core.New(), conf)
	if err := tpch.Load(d, sf, seed, "textfile", 2); err != nil {
		t.Fatal(err)
	}
	return d
}

func newDriver(t *testing.T) *hive.Driver {
	t.Helper()
	env := &exec.Env{FS: dfs.New(dfs.Config{
		BlockSize: 64 << 10,
		Nodes:     []string{"s1", "s2", "s3", "s4"},
	})}
	conf := exec.DefaultEngineConf()
	conf.SpillDir = t.TempDir()
	conf.Slaves = []string{"s1", "s2", "s3", "s4"}
	conf.SlotsPerNode = 2
	d := hive.NewDriver(env, core.New(), conf)
	if err := tpch.Load(d, testSF, testSeed, "textfile", 2); err != nil {
		t.Fatal(err)
	}
	return d
}

// canon renders a row for order-insensitive matching; floats rounded.
func canon(r types.Row) string {
	parts := make([]string, len(r))
	for i, d := range r {
		if d.K == types.KindFloat {
			parts[i] = fmt.Sprintf("%.3f", d.F)
		} else {
			parts[i] = d.Text()
		}
	}
	return strings.Join(parts, "|")
}

// rowsMatch compares result sets allowing float tolerance: both sides
// are sorted canonically, then columns compared numerically.
func rowsMatch(t *testing.T, q int, got, want []types.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("Q%d: engine %d rows, reference %d rows", q, len(got), len(want))
	}
	sortCanon := func(rows []types.Row) {
		sort.Slice(rows, func(i, j int) bool { return canon(rows[i]) < canon(rows[j]) })
	}
	sortCanon(got)
	sortCanon(want)
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("Q%d row %d: width %d vs %d", q, i, len(got[i]), len(want[i]))
		}
		for c := range got[i] {
			g, w := got[i][c], want[i][c]
			if g.K == types.KindFloat || w.K == types.KindFloat {
				gv, wv := g.Float(), w.Float()
				tol := 1e-6 * math.Max(1, math.Max(math.Abs(gv), math.Abs(wv)))
				if math.Abs(gv-wv) > tol {
					t.Fatalf("Q%d row %d col %d: %v vs %v", q, i, c, gv, wv)
				}
				continue
			}
			if g.IsNull() != w.IsNull() || (!g.IsNull() && types.Compare(g, w) != 0) {
				t.Fatalf("Q%d row %d col %d: %v vs %v\nengine: %s\nref:    %s",
					q, i, c, g, w, canon(got[i]), canon(want[i]))
			}
		}
	}
}

func lastRows(t *testing.T, d *hive.Driver, script string) []types.Row {
	t.Helper()
	results, err := d.Run(script)
	if err != nil {
		t.Fatal(err)
	}
	return results[len(results)-1].Rows
}

func TestEngineMatchesReferenceOnAll22Queries(t *testing.T) {
	db := Load(testSF, testSeed)
	d := newDriver(t)
	nonEmpty := 0
	for q := 1; q <= tpch.NumQueries; q++ {
		q := q
		t.Run(tpch.QueryName(q), func(t *testing.T) {
			script, err := tpch.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got := lastRows(t, d, script)
			want, err := Query(db, q)
			if err != nil {
				t.Fatal(err)
			}
			rowsMatch(t, q, got, want)
			if len(want) > 0 {
				nonEmpty++
			}
		})
	}
	if nonEmpty < 12 {
		t.Errorf("only %d of 22 queries returned rows at this scale; "+
			"validation coverage too thin", nonEmpty)
	}
}

func TestReferenceOrderingSpecs(t *testing.T) {
	db := Load(testSF, testSeed)
	// Q1 ordered by (returnflag, linestatus) ascending.
	rows, err := Query(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		a := rows[i-1][0].Str() + rows[i-1][1].Str()
		b := rows[i][0].Str() + rows[i][1].Str()
		if a > b {
			t.Errorf("Q1 reference not ordered at %d", i)
		}
	}
	// Q10 limited to 20 rows, revenue descending.
	rows10, err := Query(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows10) > 20 {
		t.Errorf("Q10 reference returned %d rows", len(rows10))
	}
	for i := 1; i < len(rows10); i++ {
		if rows10[i-1][2].Float() < rows10[i][2].Float() {
			t.Errorf("Q10 reference revenue not descending at %d", i)
		}
	}
}

func TestLikeIndependentImplementation(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"PROMO BRUSHED TIN", "PROMO%", true},
		{"ECONOMY BRUSHED TIN", "PROMO%", false},
		{"forest green peru", "forest%", true},
		{"abc Customer xyz Complaints", "%Customer%Complaints%", true},
		{"abc Customer xyz", "%Customer%Complaints%", false},
		{"MEDIUM POLISHED COPPER", "MEDIUM POLISHED%", true},
		{"", "%", true},
	}
	for _, c := range cases {
		if got := like(c.s, c.pat); got != c.want {
			t.Errorf("like(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

// TestEngineMatchesReferenceAcrossSeeds re-validates a representative
// query subset under different generator seeds, guarding against
// coincidental agreement on one dataset.
func TestEngineMatchesReferenceAcrossSeeds(t *testing.T) {
	queries := []int{1, 3, 5, 9, 13, 16, 18, 21, 22}
	for _, seed := range []int64{7, 1234} {
		seed := seed
		db := Load(testSF, seed)
		d := newDriverSeeded(t, testSF, seed)
		for _, q := range queries {
			script, err := tpch.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got := lastRows(t, d, script)
			want, err := Query(db, q)
			if err != nil {
				t.Fatal(err)
			}
			rowsMatch(t, q, got, want)
		}
	}
}

// TestEnhancedParallelismPreservesResults re-validates a query subset
// under the enhanced strategy on ORC tables (the Fig. 11/12 execution
// configuration must not change answers).
func TestEnhancedParallelismPreservesResults(t *testing.T) {
	env := &exec.Env{FS: dfs.New(dfs.Config{
		BlockSize: 64 << 10,
		Nodes:     []string{"s1", "s2", "s3", "s4"},
	})}
	conf := exec.DefaultEngineConf()
	conf.SpillDir = t.TempDir()
	conf.Slaves = []string{"s1", "s2", "s3", "s4"}
	conf.SlotsPerNode = 2
	conf.Parallelism = exec.ParallelismEnhanced
	d := hive.NewDriver(env, core.New(), conf)
	if err := tpch.Load(d, testSF, testSeed, "orc", 2); err != nil {
		t.Fatal(err)
	}
	db := Load(testSF, testSeed)
	for _, q := range []int{1, 3, 9, 13, 16, 21} {
		script, err := tpch.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got := lastRows(t, d, script)
		want, err := Query(db, q)
		if err != nil {
			t.Fatal(err)
		}
		rowsMatch(t, q, got, want)
	}
}
