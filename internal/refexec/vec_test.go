package refexec

import (
	"bytes"
	"testing"

	"hivempi/internal/chaos"
	"hivempi/internal/core"
	"hivempi/internal/dfs"
	"hivempi/internal/exec"
	"hivempi/internal/hive"
	"hivempi/internal/tpch"
	"hivempi/internal/types"
)

// newFormatDriver builds the standard refexec driver over the given
// table format with the vectorized flag set as requested.
func newFormatDriver(t *testing.T, format string, vectorized bool) *hive.Driver {
	t.Helper()
	env := &exec.Env{FS: dfs.New(dfs.Config{
		BlockSize: 64 << 10,
		Nodes:     []string{"s1", "s2", "s3", "s4"},
	})}
	conf := exec.DefaultEngineConf()
	conf.SpillDir = t.TempDir()
	conf.Slaves = []string{"s1", "s2", "s3", "s4"}
	conf.SlotsPerNode = 2
	conf.Vectorized = vectorized
	d := hive.NewDriver(env, core.New(), conf)
	if err := tpch.Load(d, testSF, testSeed, format, 2); err != nil {
		t.Fatal(err)
	}
	return d
}

// encodeRows serializes a result set order-sensitively for byte
// comparison between execution modes.
func encodeRows(rows []types.Row) [][]byte {
	out := make([][]byte, len(rows))
	for i, r := range rows {
		out[i] = types.EncodeRow(nil, r)
	}
	return out
}

// rowsByteIdentical asserts the two result sets are exactly equal —
// same rows, same order, same encoded bytes (no float tolerance).
func rowsByteIdentical(t *testing.T, q int, vecRows, rowRows []types.Row) {
	t.Helper()
	ve, re := encodeRows(vecRows), encodeRows(rowRows)
	if len(ve) != len(re) {
		t.Fatalf("Q%d: vectorized %d rows, row mode %d rows", q, len(ve), len(re))
	}
	for i := range ve {
		if !bytes.Equal(ve[i], re[i]) {
			t.Fatalf("Q%d row %d differs between modes:\nvec: %s\nrow: %s",
				q, i, canon(vecRows[i]), canon(rowRows[i]))
		}
	}
}

// runBothModes executes the full 22-query suite on a vectorized and a
// row-mode driver over the same dataset/format and requires the
// results byte-identical pairwise and reference-correct.
func runBothModes(t *testing.T, format string) {
	db := Load(testSF, testSeed)
	dv := newFormatDriver(t, format, true)
	dr := newFormatDriver(t, format, false)
	for q := 1; q <= tpch.NumQueries; q++ {
		script, err := tpch.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		vecRows := lastRows(t, dv, script)
		rowRows := lastRows(t, dr, script)
		rowsByteIdentical(t, q, vecRows, rowRows)
		want, err := Query(db, q)
		if err != nil {
			t.Fatal(err)
		}
		rowsMatch(t, q, vecRows, want)
	}

	// The vectorized driver really ran the batch pipeline: its stage
	// traces carry the flag and per-task batch counts.
	var vecStages, batches int64
	for _, qt := range dv.Collector.Queries() {
		for _, st := range qt.Stages {
			if !st.Vectorized {
				continue
			}
			vecStages++
			for _, p := range st.Producers {
				batches += p.Batches
			}
		}
	}
	if vecStages == 0 || batches == 0 {
		t.Fatalf("vectorized driver recorded %d vectorized stages, %d batches; path did not run",
			vecStages, batches)
	}
}

// TestVectorizedMatchesRowModeORC: the native columnar scan path (ORC
// stripes decoded straight into batches).
func TestVectorizedMatchesRowModeORC(t *testing.T) {
	runBothModes(t, "orc")
}

// TestVectorizedMatchesRowModeText: the row-format adapter path (text
// rows packed into datum-mode batches).
func TestVectorizedMatchesRowModeText(t *testing.T) {
	runBothModes(t, "textfile")
}

// TestVectorizedChaosSoak reruns the seeded fault-plan soak with the
// vectorized pipeline: retries, checkpoint replays and stragglers must
// leave results reference-identical exactly as in row mode.
func TestVectorizedChaosSoak(t *testing.T) {
	db := Load(testSF, testSeed)
	d := newDriver(t)
	d.Conf.Vectorized = true
	d.Conf.MaxTaskAttempts = 5
	plane := chaos.NewPlane(soakPlan())
	d.Env.Chaos = plane
	d.Env.FS.SetChaos(plane)

	for _, q := range soakQueries {
		script, err := tpch.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got := lastRows(t, d, script)
		want, err := Query(db, q)
		if err != nil {
			t.Fatal(err)
		}
		rowsMatch(t, q, got, want)
	}
	if plane.TotalFired() == 0 {
		t.Fatal("soak plan fired no faults; the run proved nothing")
	}
}

// TestVectorizedNodeLossSoak reruns the crash-mid-stage node-loss
// schedule with the vectorized pipeline: read failover, stage
// relaunch on survivors and re-replication must preserve results.
func TestVectorizedNodeLossSoak(t *testing.T) {
	db := Load(testSF, testSeed)
	d, _, plane := newClusterDriver(t, chaos.Plan{Seed: 9, Specs: []chaos.Spec{
		{Kind: chaos.NodeCrash, Node: "s2", After: 8},
	}})
	d.Conf.Vectorized = true

	runAll22(t, d, db, nil)

	if plane.Fired(chaos.NodeCrash) != 1 {
		t.Fatal("the crash never fired; the soak proved nothing")
	}
}
