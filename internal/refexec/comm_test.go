package refexec

import (
	"testing"

	"hivempi/internal/obs/comm"
	"hivempi/internal/tpch"
	"hivempi/internal/trace"
)

// checkCommReconciles asserts the wire-level communication matrix of
// every shuffle stage reconciles exactly with the task counters: row
// sums equal each producer's ShuffleOutBytes, column sums equal each
// consumer's ShuffleInBytes, and the grand total equals the stage's
// shuffle byte total. This is the invariant the comm report's skew
// statistics stand on.
func checkCommReconciles(t *testing.T, q int, stages []*trace.Stage) {
	t.Helper()
	shuffles := 0
	for _, st := range stages {
		m := st.Comm
		if m == nil || m.TotalBytes() == 0 {
			continue
		}
		shuffles++
		sc := comm.AnalyzeStage(st, nil)
		if sc == nil || sc.Derived {
			t.Fatalf("Q%d stage %s: recorded matrix not analyzed as wire-level", q, st.Name)
		}
		if len(st.Producers) != m.NumO || len(st.Consumers) != m.NumA {
			t.Fatalf("Q%d stage %s: matrix %dx%d vs %d producers / %d consumers",
				q, st.Name, m.NumO, m.NumA, len(st.Producers), len(st.Consumers))
		}
		rows, cols := m.RowBytes(), m.ColBytes()
		for o, task := range st.Producers {
			if rows[o] != task.ShuffleOutBytes {
				t.Errorf("Q%d stage %s: row %d sums to %d, producer ShuffleOutBytes = %d",
					q, st.Name, o, rows[o], task.ShuffleOutBytes)
			}
		}
		for a, task := range st.Consumers {
			if cols[a] != task.ShuffleInBytes {
				t.Errorf("Q%d stage %s: col %d sums to %d, consumer ShuffleInBytes = %d",
					q, st.Name, a, cols[a], task.ShuffleInBytes)
			}
		}
		if m.TotalBytes() != st.TotalShuffleBytes() {
			t.Errorf("Q%d stage %s: matrix total %d != stage shuffle bytes %d",
				q, st.Name, m.TotalBytes(), st.TotalShuffleBytes())
		}
	}
	if shuffles == 0 {
		t.Fatalf("Q%d recorded no communication matrix on any stage", q)
	}
}

// TestCommMatrixReconcilesWithShuffleCounters runs one AGGREGATE-shaped
// (Q1) and one JOIN-shaped (Q3) TPC-H query and checks the recorded
// matrices against the shuffle counters — and that the rows still match
// the reference evaluator, so the accounting isn't perturbing results.
func TestCommMatrixReconcilesWithShuffleCounters(t *testing.T) {
	db := Load(testSF, testSeed)
	d := newDriver(t)
	for _, q := range []int{1, 3} {
		want, err := Query(db, q)
		if err != nil {
			t.Fatal(err)
		}
		script, err := tpch.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		results, err := d.Run(script)
		if err != nil {
			t.Fatalf("Q%d: %v", q, err)
		}
		res := results[len(results)-1]
		rowsMatch(t, q, res.Rows, want)
		checkCommReconciles(t, q, res.Stages)
	}
}
