package refexec

import (
	"errors"
	"testing"

	"hivempi/internal/chaos"
	"hivempi/internal/tpch"
)

// soakQueries is the TPC-H subset the soak runs under faults; together
// they cover scan/filter, group-by, multi-way join and limit shapes.
var soakQueries = []int{1, 3, 5, 6, 12}

// soakPlan is the seeded fault plan: three read faults against
// warehouse data, one O-task crash, and one slow node. The plan never
// targets the engine's work dir, so checkpoints stay recoverable.
func soakPlan() chaos.Plan {
	return chaos.Plan{Seed: 1234, Specs: []chaos.Spec{
		{Kind: chaos.DFSRead, Path: "/warehouse/*", Count: 3},
		{Kind: chaos.TaskCrash, Task: "o", Rank: 0, Count: 1},
		{Kind: chaos.SlowTask, Task: "o", Rank: chaos.AnyRank, Count: 1, DelaySec: 10},
	}}
}

// TestChaosSoakMatchesReference runs the soak queries on DataMPI under
// the seeded plan with a retry budget: every fault is absorbed by the
// checkpoint/retry machinery and each result still matches the
// reference executor row for row.
func TestChaosSoakMatchesReference(t *testing.T) {
	db := Load(testSF, testSeed)
	d := newDriver(t)
	// Worst case the four failure faults land one per attempt, so the
	// budget needs a fifth, clean attempt.
	d.Conf.MaxTaskAttempts = 5
	plane := chaos.NewPlane(soakPlan())
	d.Env.Chaos = plane
	d.Env.FS.SetChaos(plane)

	for i, q := range soakQueries {
		if i == len(soakQueries)-1 {
			// Arm one more straggler for the last query: by now the
			// failure budgets are exhausted, so the delayed task is part
			// of a successful attempt and survives into the trace.
			plane.Add(chaos.Spec{Kind: chaos.SlowTask, Task: "o",
				Rank: chaos.AnyRank, Count: 1, DelaySec: 10})
		}
		script, err := tpch.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got := lastRows(t, d, script)
		want, err := Query(db, q)
		if err != nil {
			t.Fatal(err)
		}
		rowsMatch(t, q, got, want)
	}

	if plane.TotalFired() == 0 {
		t.Fatal("soak plan fired no faults; the run proved nothing")
	}
	for _, k := range []chaos.Kind{chaos.DFSRead, chaos.TaskCrash, chaos.SlowTask} {
		if plane.Fired(k) == 0 {
			t.Errorf("no %s fault fired during the soak", k)
		}
	}

	// The recovery left evidence in the traces: a retried stage and a
	// straggler-delayed task.
	retried, slowed := false, false
	for _, qt := range d.Collector.Queries() {
		for _, st := range qt.Stages {
			if st.Attempts > 1 {
				retried = true
			}
			for _, p := range st.Producers {
				if p.StragglerDelaySec > 0 {
					slowed = true
				}
			}
		}
	}
	if !retried {
		t.Error("no stage recorded a retry despite injected failures")
	}
	if !slowed {
		t.Error("no task recorded the straggler delay")
	}
}

// TestChaosSoakFailsWithoutRetries: the same plan with the retry budget
// disabled kills the run, and the injected sentinel survives every
// wrapping layer.
func TestChaosSoakFailsWithoutRetries(t *testing.T) {
	d := newDriver(t)
	d.Conf.MaxTaskAttempts = 1
	plane := chaos.NewPlane(soakPlan())
	d.Env.Chaos = plane
	d.Env.FS.SetChaos(plane)

	var failed bool
	for _, q := range soakQueries {
		script, err := tpch.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(script); err != nil {
			if !errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("Q%d failed with a non-injected error: %v", q, err)
			}
			failed = true
			break
		}
	}
	if !failed {
		t.Error("no query failed with retries disabled under the soak plan")
	}
}
