package refexec

import (
	"testing"

	"hivempi/internal/hive"
	"hivempi/internal/tpch"
	"hivempi/internal/types"
)

// TestDAGSchedulingMatchesSerialOnAll22Queries runs every TPC-H query
// four ways — serial stages vs DAG-parallel stages, each with and
// without the in-memory intermediate tier — and requires identical row
// sets. This is the end-to-end guard that concurrent stage execution
// and memory-tier placement change only timing, never results.
func TestDAGSchedulingMatchesSerialOnAll22Queries(t *testing.T) {
	modes := []struct {
		name string
		mut  func(*hive.Driver)
	}{
		{"serial", func(d *hive.Driver) { d.SerialStages = true }},
		{"dag", func(d *hive.Driver) {}},
		{"serial+imstore", func(d *hive.Driver) {
			d.SerialStages = true
			d.InMemBytes = 64 << 20
		}},
		{"dag+imstore", func(d *hive.Driver) { d.InMemBytes = 64 << 20 }},
	}

	// One driver per mode; each loads its own cluster so memory-tier
	// state never leaks across modes.
	drivers := make([]*hive.Driver, len(modes))
	for i, m := range modes {
		drivers[i] = newDriver(t)
		m.mut(drivers[i])
	}

	for q := 1; q <= tpch.NumQueries; q++ {
		q := q
		t.Run(tpch.QueryName(q), func(t *testing.T) {
			script, err := tpch.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			var base []types.Row
			for i, m := range modes {
				rows := lastRows(t, drivers[i], script)
				if i == 0 {
					base = rows
					continue
				}
				if len(rows) != len(base) {
					t.Fatalf("Q%d: %s returned %d rows, serial %d",
						q, m.name, len(rows), len(base))
				}
				rowsMatch(t, q, rows, base)
			}
		})
	}
}

// TestDAGTinyMemoryBudgetSpills reruns a multi-stage query with a
// budget too small for any intermediate: every write must spill to the
// disk tier and results must still match.
func TestDAGTinyMemoryBudgetSpills(t *testing.T) {
	script, err := tpch.Query(8)
	if err != nil {
		t.Fatal(err)
	}
	ref := newDriver(t)
	ref.SerialStages = true
	want := lastRows(t, ref, script)

	d := newDriver(t)
	d.InMemBytes = 1 // nothing fits: transparent spill everywhere
	got := lastRows(t, d, script)
	rowsMatch(t, 8, got, want)
}
