package tpch

import (
	"fmt"
	"strings"
	"testing"

	"hivempi/internal/core"
	"hivempi/internal/dfs"
	"hivempi/internal/exec"
	"hivempi/internal/hive"
	"hivempi/internal/mrengine"
	"hivempi/internal/types"
)

const testSF = ScaleFactor(0.001)

func newDriver(t *testing.T, engine exec.Engine, format string) *hive.Driver {
	t.Helper()
	env := &exec.Env{FS: dfs.New(dfs.Config{
		BlockSize: 64 << 10,
		Nodes:     []string{"s1", "s2", "s3", "s4"},
	})}
	conf := exec.DefaultEngineConf()
	conf.SpillDir = t.TempDir()
	conf.Slaves = []string{"s1", "s2", "s3", "s4"}
	conf.SlotsPerNode = 2
	d := hive.NewDriver(env, engine, conf)
	if err := Load(d, testSF, 42, format, 2); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(testSF, 7)
	g2 := NewGenerator(testSF, 7)
	a, al := g1.OrderAndLines()
	b, bl := g2.OrderAndLines()
	if len(a) != len(b) || len(al) != len(bl) {
		t.Fatal("row counts differ between identical generators")
	}
	for i := range a {
		if a[i].Text('|') != b[i].Text('|') {
			t.Fatalf("order %d differs", i)
		}
	}
	g3 := NewGenerator(testSF, 8)
	c, _ := g3.OrderAndLines()
	same := 0
	for i := range a {
		if i < len(c) && a[i].Text('|') == c[i].Text('|') {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical data")
	}
}

func TestGeneratorReferentialIntegrity(t *testing.T) {
	g := NewGenerator(testSF, 42)
	orders, lines := g.OrderAndLines()
	okeys := map[int64]bool{}
	for _, o := range orders {
		okeys[o[0].Int()] = true
	}
	psPairs := map[[2]int64]bool{}
	for _, ps := range g.PartSupp() {
		psPairs[[2]int64{ps[0].Int(), ps[1].Int()}] = true
	}
	for i, l := range lines {
		if !okeys[l[0].Int()] {
			t.Fatalf("line %d references missing order %d", i, l[0].Int())
		}
		if !psPairs[[2]int64{l[1].Int(), l[2].Int()}] {
			t.Fatalf("line %d references missing partsupp (%d,%d)", i, l[1].Int(), l[2].Int())
		}
		ship, commit, receipt := l[10].Int(), l[11].Int(), l[12].Int()
		if receipt <= ship {
			t.Fatalf("line %d receipt %d <= ship %d", i, receipt, ship)
		}
		_ = commit
	}
	// Order totalprice must equal the sum over its lines.
	totals := map[int64]float64{}
	for _, l := range lines {
		totals[l[0].Int()] += l[5].Float() * (1 + l[7].Float()) * (1 - l[6].Float())
	}
	for i, o := range orders {
		want := totals[o[0].Int()]
		got := o[3].Float()
		if diff := got - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("order %d totalprice %f != %f", i, got, want)
		}
	}
}

func TestGeneratorMarkers(t *testing.T) {
	g := NewGenerator(ScaleFactor(0.01), 42)
	complaints := 0
	for _, s := range g.Supplier() {
		if strings.Contains(s[6].Str(), "Customer") && strings.Contains(s[6].Str(), "Complaints") {
			complaints++
		}
	}
	if complaints == 0 {
		t.Error("no supplier complaint markers generated (Q16 would be vacuous)")
	}
	forest := 0
	for _, p := range g.Part() {
		if strings.HasPrefix(p[1].Str(), "forest") {
			forest++
		}
	}
	if forest == 0 {
		t.Error("no forest-prefixed parts generated (Q20 would be vacuous)")
	}
}

func rowsFingerprint(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, d := range r {
			if d.K == types.KindFloat {
				parts[j] = fmt.Sprintf("%.4f", d.F)
			} else {
				parts[j] = d.Text()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// lastSelectRows runs a query script and returns the final SELECT rows.
func lastSelectRows(t *testing.T, d *hive.Driver, script string) []types.Row {
	t.Helper()
	results, err := d.Run(script)
	if err != nil {
		t.Fatalf("%v", err)
	}
	for i := len(results) - 1; i >= 0; i-- {
		if results[i].Rows != nil || strings.HasPrefix(strings.ToLower(
			strings.TrimSpace(results[i].Statement)), "select") {
			return results[i].Rows
		}
	}
	return nil
}

func TestAll22QueriesAgreeAcrossEngines(t *testing.T) {
	dm := newDriver(t, core.New(), "textfile")
	hd := newDriver(t, mrengine.New(), "textfile")
	for q := 1; q <= NumQueries; q++ {
		q := q
		t.Run(QueryName(q), func(t *testing.T) {
			script, err := Query(q)
			if err != nil {
				t.Fatal(err)
			}
			a := rowsFingerprint(lastSelectRows(t, dm, script))
			b := rowsFingerprint(lastSelectRows(t, hd, script))
			if len(a) != len(b) {
				t.Fatalf("datampi %d rows, hadoop %d rows", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("row %d differs:\n  datampi: %s\n  hadoop:  %s", i, a[i], b[i])
				}
			}
		})
	}
}

func TestQueriesAgreeAcrossFormats(t *testing.T) {
	// Text vs ORC must produce identical answers (Table II's comparison
	// is about performance only).
	text := newDriver(t, core.New(), "textfile")
	orc := newDriver(t, core.New(), "orc")
	for _, q := range []int{1, 3, 6, 12, 14} {
		script, err := Query(q)
		if err != nil {
			t.Fatal(err)
		}
		a := rowsFingerprint(lastSelectRows(t, text, script))
		b := rowsFingerprint(lastSelectRows(t, orc, script))
		if len(a) != len(b) {
			t.Fatalf("%s: text %d rows, orc %d rows", QueryName(q), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s row %d differs:\n  text: %s\n  orc:  %s", QueryName(q), i, a[i], b[i])
			}
		}
	}
}

func TestQueryRangeValidation(t *testing.T) {
	if _, err := Query(0); err == nil {
		t.Error("Query(0) should fail")
	}
	if _, err := Query(23); err == nil {
		t.Error("Query(23) should fail")
	}
	for q := 1; q <= NumQueries; q++ {
		s, err := Query(q)
		if err != nil || !strings.Contains(strings.ToLower(s), "select") {
			t.Errorf("Query(%d) malformed: %v", q, err)
		}
	}
}

// TestPlanShapesForKeyQueries guards the planner's stage decomposition
// for representative queries (job counts drive every timing figure).
func TestPlanShapesForKeyQueries(t *testing.T) {
	d := newDriver(t, core.New(), "textfile")
	// Force common (shuffle) joins so stage counts are scale-independent
	// (at tiny test scale even orders fits the broadcast threshold).
	d.MapJoinThresholdBytes = 1
	cases := []struct {
		q          int
		stages     int // stages of the FINAL statement
		statements int // statements in the script
	}{
		{1, 2, 1},  // groupby + order
		{3, 4, 1},  // 2 joins + groupby + order
		{6, 1, 1},  // global aggregate
		{12, 3, 1}, // join + groupby + order
		{13, 4, 1}, // outer join + inner groupby + outer groupby + order
	}
	for _, c := range cases {
		script, err := Query(c.q)
		if err != nil {
			t.Fatal(err)
		}
		stmts := hive.SplitStatements(script)
		if len(stmts) != c.statements {
			t.Errorf("Q%d has %d statements, want %d", c.q, len(stmts), c.statements)
		}
		res, err := d.Execute("EXPLAIN " + stmts[len(stmts)-1])
		if err != nil {
			t.Fatalf("Q%d explain: %v", c.q, err)
		}
		got := strings.Count(res.Plan, "STAGE ")
		if got != c.stages {
			t.Errorf("Q%d plans %d stages, want %d:\n%s", c.q, got, c.stages, res.Plan)
		}
	}
	// With the default threshold, Q5's dimension chain (nation, region,
	// supplier) becomes map joins.
	d2 := newDriver(t, core.New(), "textfile")
	q5, _ := Query(5)
	res, err := d2.Execute("EXPLAIN " + hive.SplitStatements(q5)[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "MapJoin") {
		t.Errorf("Q5 plan has no map joins:\n%s", res.Plan)
	}
	// Predicate pushdown must reach the lineitem scan of Q6.
	q6, _ := Query(6)
	res, err = d2.Execute("EXPLAIN " + hive.SplitStatements(q6)[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "pushdown") {
		t.Errorf("Q6 plan lacks scan pushdown:\n%s", res.Plan)
	}
}
