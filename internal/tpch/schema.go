package tpch

import (
	"fmt"
	"strings"

	"hivempi/internal/hive"
	"hivempi/internal/types"
)

// TableNames lists the eight TPC-H tables in load order.
func TableNames() []string {
	return []string{"region", "nation", "supplier", "customer",
		"part", "partsupp", "orders", "lineitem"}
}

// DDL returns the CREATE TABLE script for all tables in the format.
func DDL(format string) string {
	ddl := []string{
		`CREATE TABLE region (r_regionkey bigint, r_name string, r_comment string)`,
		`CREATE TABLE nation (n_nationkey bigint, n_name string, n_regionkey bigint, n_comment string)`,
		`CREATE TABLE supplier (s_suppkey bigint, s_name string, s_address string,
			s_nationkey bigint, s_phone string, s_acctbal double, s_comment string)`,
		`CREATE TABLE customer (c_custkey bigint, c_name string, c_address string,
			c_nationkey bigint, c_phone string, c_acctbal double, c_mktsegment string,
			c_comment string)`,
		`CREATE TABLE part (p_partkey bigint, p_name string, p_mfgr string, p_brand string,
			p_type string, p_size bigint, p_container string, p_retailprice double,
			p_comment string)`,
		`CREATE TABLE partsupp (ps_partkey bigint, ps_suppkey bigint, ps_availqty bigint,
			ps_supplycost double, ps_comment string)`,
		`CREATE TABLE orders (o_orderkey bigint, o_custkey bigint, o_orderstatus string,
			o_totalprice double, o_orderdate date, o_orderpriority string, o_clerk string,
			o_shippriority bigint, o_comment string)`,
		`CREATE TABLE lineitem (l_orderkey bigint, l_partkey bigint, l_suppkey bigint,
			l_linenumber bigint, l_quantity double, l_extendedprice double,
			l_discount double, l_tax double, l_returnflag string, l_linestatus string,
			l_shipdate date, l_commitdate date, l_receiptdate date,
			l_shipinstruct string, l_shipmode string, l_comment string)`,
	}
	var sb strings.Builder
	for _, d := range ddl {
		sb.WriteString(d)
		if format != "" {
			sb.WriteString(" STORED AS " + format)
		}
		sb.WriteString(";\n")
	}
	return sb.String()
}

// Load creates the schema and generates/loads every table through the
// driver. partsPer splits each table into that many part files so the
// DFS produces multiple splits (1 when <= 0).
func Load(d *hive.Driver, sf ScaleFactor, seed int64, format string, partsPer int) error {
	if partsPer <= 0 {
		partsPer = 1
	}
	if _, err := d.Run(DDL(format)); err != nil {
		return fmt.Errorf("tpch ddl: %w", err)
	}
	g := NewGenerator(sf, seed)
	orders, lines := g.OrderAndLines()
	data := map[string][]types.Row{
		"region":   g.Region(),
		"nation":   g.Nation(),
		"supplier": g.Supplier(),
		"customer": g.Customer(),
		"part":     g.Part(),
		"partsupp": g.PartSupp(),
		"orders":   orders,
		"lineitem": lines,
	}
	for _, name := range TableNames() {
		rows := data[name]
		parts := partsPer
		if len(rows) < parts {
			parts = 1
		}
		per := (len(rows) + parts - 1) / parts
		for pi := 0; pi < parts; pi++ {
			lo, hi := pi*per, (pi+1)*per
			if hi > len(rows) {
				hi = len(rows)
			}
			if lo >= hi {
				break
			}
			if err := d.LoadTableData(name, pi, rows[lo:hi]); err != nil {
				return fmt.Errorf("tpch load %s: %w", name, err)
			}
		}
	}
	return nil
}
