// Package tpch implements the TPC-H substrate used by the paper's main
// evaluation: a deterministic dbgen-style data generator for all eight
// tables and the 22 benchmark queries rewritten for the HiveQL subset
// (joins plus staged temp tables, as the paper's reference [19] does
// for correlated subqueries).
package tpch

import (
	"fmt"
	"math/rand"
	"time"

	"hivempi/internal/types"
)

// ScaleFactor sizes the dataset. SF 1.0 approximates 1 GB of raw text;
// the paper's 10/20/40 GB runs scale 1:1000 to SF 0.01/0.02/0.04.
type ScaleFactor float64

// Row counts per SF=1, from the TPC-H specification.
const (
	baseSupplier = 10000
	baseCustomer = 150000
	basePart     = 200000
	baseOrders   = 1500000
)

// Counts reports the generated table cardinalities.
func (sf ScaleFactor) Counts() map[string]int {
	n := func(base int) int {
		v := int(float64(base) * float64(sf))
		if v < 8 {
			v = 8
		}
		return v
	}
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": n(baseSupplier),
		"customer": n(baseCustomer),
		"part":     n(basePart),
		"partsupp": n(basePart) * 4,
		"orders":   n(baseOrders),
		// lineitem averages ~4 rows per order.
	}
}

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationDefs  = []struct {
		name   string
		region int
	}{
		{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
		{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
		{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
		{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
		{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
		{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
		{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
	}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	containers = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX",
		"MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG",
		"JUMBO BOX", "JUMBO CASE", "JUMBO PKG", "JUMBO PACK", "WRAP BOX", "WRAP CASE"}
	typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	colors   = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "burnished",
		"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
		"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
		"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green",
		"grey", "honeydew", "hot", "hotpink", "indian", "ivory", "khaki",
		"lace", "lavender", "lawn", "lemon", "light", "lime", "linen",
		"magenta", "maroon", "medium", "metallic", "midnight", "mint", "misty",
		"moccasin", "navajo", "navy", "olive", "orange", "orchid", "pale",
		"papaya", "peach", "peru", "pink", "plum", "powder", "puff",
		"purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
		"sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow",
		"spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet",
		"wheat", "white", "yellow"}
	commentWords = []string{"carefully", "quickly", "furiously", "slyly", "blithely",
		"ironic", "final", "bold", "express", "regular", "pending", "even",
		"silent", "unusual", "accounts", "packages", "deposits", "requests",
		"instructions", "theodolites", "platelets", "pinto", "beans", "foxes",
		"ideas", "dependencies", "excuses", "asymptotes", "courts", "dolphins",
		"multipliers", "sauternes", "warthogs", "frets", "dinos"}
)

// Epoch date range: orders span 1992-01-01 .. 1998-08-02.
var (
	startDate = mustDays("1992-01-01")
	endDate   = mustDays("1998-08-02")
	cutoff    = mustDays("1995-06-17") // shipped/open boundary
)

func mustDays(s string) int64 {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(err)
	}
	return t.Unix() / 86400
}

// Generator produces the dataset deterministically for a seed.
type Generator struct {
	SF   ScaleFactor
	Seed int64

	nSupp, nCust, nPart, nOrders int
}

// NewGenerator builds a generator.
func NewGenerator(sf ScaleFactor, seed int64) *Generator {
	c := sf.Counts()
	return &Generator{
		SF: sf, Seed: seed,
		nSupp:   c["supplier"],
		nCust:   c["customer"],
		nPart:   c["part"],
		nOrders: c["orders"],
	}
}

func (g *Generator) rng(table string) *rand.Rand {
	var h int64
	for _, b := range []byte(table) {
		h = h*131 + int64(b)
	}
	return rand.New(rand.NewSource(g.Seed*1000003 + h))
}

func comment(r *rand.Rand, words int) string {
	out := make([]byte, 0, words*8)
	for i := 0; i < words; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, commentWords[r.Intn(len(commentWords))]...)
	}
	return string(out)
}

func phone(r *rand.Rand, nation int) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", 10+nation,
		100+r.Intn(900), 100+r.Intn(900), 1000+r.Intn(9000))
}

func money(r *rand.Rand, lo, hi float64) float64 {
	cents := int64(lo*100) + r.Int63n(int64((hi-lo)*100)+1)
	return float64(cents) / 100
}

// Region generates the region table.
func (g *Generator) Region() []types.Row {
	r := g.rng("region")
	rows := make([]types.Row, 5)
	for i := 0; i < 5; i++ {
		rows[i] = types.Row{
			types.Int(int64(i)),
			types.String(regionNames[i]),
			types.String(comment(r, 8)),
		}
	}
	return rows
}

// Nation generates the nation table.
func (g *Generator) Nation() []types.Row {
	r := g.rng("nation")
	rows := make([]types.Row, 25)
	for i, n := range nationDefs {
		rows[i] = types.Row{
			types.Int(int64(i)),
			types.String(n.name),
			types.Int(int64(n.region)),
			types.String(comment(r, 10)),
		}
	}
	return rows
}

// Supplier generates the supplier table. Roughly 1 in 20 suppliers gets
// the "Customer ... Complaints" marker Q16 filters on.
func (g *Generator) Supplier() []types.Row {
	r := g.rng("supplier")
	rows := make([]types.Row, g.nSupp)
	for i := range rows {
		key := int64(i + 1)
		nation := r.Intn(25)
		cmt := comment(r, 12)
		if i%20 == 7 { // deterministic 5% carry the Q16 marker
			cmt = "Customer " + cmt + " Complaints"
		}
		rows[i] = types.Row{
			types.Int(key),
			types.String(fmt.Sprintf("Supplier#%09d", key)),
			types.String(comment(r, 3)),
			types.Int(int64(nation)),
			types.String(phone(r, nation)),
			types.Float(money(r, -999.99, 9999.99)),
			types.String(cmt),
		}
	}
	return rows
}

// Customer generates the customer table.
func (g *Generator) Customer() []types.Row {
	r := g.rng("customer")
	rows := make([]types.Row, g.nCust)
	for i := range rows {
		key := int64(i + 1)
		nation := r.Intn(25)
		rows[i] = types.Row{
			types.Int(key),
			types.String(fmt.Sprintf("Customer#%09d", key)),
			types.String(comment(r, 3)),
			types.Int(int64(nation)),
			types.String(phone(r, nation)),
			types.Float(money(r, -999.99, 9999.99)),
			types.String(segments[r.Intn(len(segments))]),
			types.String(comment(r, 12)),
		}
	}
	return rows
}

// Part generates the part table.
func (g *Generator) Part() []types.Row {
	r := g.rng("part")
	rows := make([]types.Row, g.nPart)
	for i := range rows {
		key := int64(i + 1)
		m := 1 + r.Intn(5)
		brand := fmt.Sprintf("Brand#%d%d", m, 1+r.Intn(5))
		name := colors[r.Intn(len(colors))] + " " + colors[r.Intn(len(colors))] + " " +
			colors[r.Intn(len(colors))]
		ptype := typeSyl1[r.Intn(len(typeSyl1))] + " " +
			typeSyl2[r.Intn(len(typeSyl2))] + " " + typeSyl3[r.Intn(len(typeSyl3))]
		rows[i] = types.Row{
			types.Int(key),
			types.String(name),
			types.String(fmt.Sprintf("Manufacturer#%d", m)),
			types.String(brand),
			types.String(ptype),
			types.Int(int64(1 + r.Intn(50))),
			types.String(containers[r.Intn(len(containers))]),
			types.Float(retailPrice(key)),
			types.String(comment(r, 5)),
		}
	}
	return rows
}

// retailPrice follows the spec's deterministic price formula.
func retailPrice(key int64) float64 {
	return float64(90000+((key/10)%20001)+100*(key%1000)) / 100
}

// suppStride spaces the four suppliers of each part.
func (g *Generator) suppStride() int64 {
	s := int64(g.nSupp) / 4
	if s < 1 {
		s = 1
	}
	return s
}

// suppForPart returns the i-th (0..3) supplier of a part, following
// dbgen's scheme so lineitem's (partkey, suppkey) pairs always exist in
// partsupp.
func (g *Generator) suppForPart(part int64, i int) int64 {
	return (part+int64(i)*g.suppStride())%int64(g.nSupp) + 1
}

// PartSupp generates the partsupp table (4 suppliers per part).
func (g *Generator) PartSupp() []types.Row {
	r := g.rng("partsupp")
	rows := make([]types.Row, 0, g.nPart*4)
	for p := int64(1); p <= int64(g.nPart); p++ {
		for i := 0; i < 4; i++ {
			rows = append(rows, types.Row{
				types.Int(p),
				types.Int(g.suppForPart(p, i)),
				types.Int(int64(1 + r.Intn(9999))),
				types.Float(money(r, 1.00, 1000.00)),
				types.String(comment(r, 15)),
			})
		}
	}
	return rows
}

// OrderAndLines generates orders together with their lineitems so the
// derived columns stay consistent (o_totalprice, o_orderstatus).
// Roughly 1 in 100 order comments carries the "special ... requests"
// marker Q13 excludes.
func (g *Generator) OrderAndLines() (orders, lines []types.Row) {
	r := g.rng("orders")
	orders = make([]types.Row, 0, g.nOrders)
	lines = make([]types.Row, 0, g.nOrders*4)
	for o := 0; o < g.nOrders; o++ {
		okey := orderKey(int64(o))
		cust := int64(1 + r.Intn(g.nCust))
		odate := startDate + r.Int63n(endDate-startDate-121)
		nLines := 1 + r.Intn(7)
		var total float64
		allF, allO := true, true
		for ln := 0; ln < nLines; ln++ {
			part := int64(1 + r.Intn(g.nPart))
			supp := g.suppForPart(part, r.Intn(4))
			qty := float64(1 + r.Intn(50))
			ext := qty * retailPrice(part)
			disc := float64(r.Intn(11)) / 100
			tax := float64(r.Intn(9)) / 100
			ship := odate + 1 + r.Int63n(121)
			commit := odate + 30 + r.Int63n(60)
			receipt := ship + 1 + r.Int63n(30)
			var status string
			if ship <= cutoff {
				status = "F"
				allO = false
			} else {
				status = "O"
				allF = false
			}
			flag := "N"
			if receipt <= cutoff {
				if r.Intn(2) == 0 {
					flag = "R"
				} else {
					flag = "A"
				}
			}
			total += ext * (1 + tax) * (1 - disc)
			lines = append(lines, types.Row{
				types.Int(okey),
				types.Int(part),
				types.Int(supp),
				types.Int(int64(ln + 1)),
				types.Float(qty),
				types.Float(ext),
				types.Float(disc),
				types.Float(tax),
				types.String(flag),
				types.String(status),
				types.Date(ship),
				types.Date(commit),
				types.Date(receipt),
				types.String(instructs[r.Intn(len(instructs))]),
				types.String(shipmodes[r.Intn(len(shipmodes))]),
				types.String(comment(r, 4)),
			})
		}
		ostatus := "P"
		if allF {
			ostatus = "F"
		} else if allO {
			ostatus = "O"
		}
		ocomment := comment(r, 8)
		if o%100 == 13 { // deterministic 1% carry the Q13 marker
			ocomment = "special " + comment(r, 3) + " requests " + ocomment
		}
		orders = append(orders, types.Row{
			types.Int(okey),
			types.Int(cust),
			types.String(ostatus),
			types.Float(total),
			types.Date(odate),
			types.String(priorities[r.Intn(len(priorities))]),
			types.String(fmt.Sprintf("Clerk#%09d", 1+r.Intn(1000))),
			types.Int(0),
			types.String(ocomment),
		})
	}
	return orders, lines
}

// orderKey spreads keys sparsely like dbgen (8 of every 32 values).
func orderKey(ordinal int64) int64 {
	return (ordinal/8)*32 + ordinal%8 + 1
}
