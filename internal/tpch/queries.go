package tpch

import "fmt"

// Query returns the HiveQL script for TPC-H query q (1..22). Each
// script is self-contained: temp tables are dropped and recreated, and
// the final statement is the SELECT whose rows are the query's result.
// Correlated subqueries and IN/EXISTS predicates are rewritten into
// joins over staged temp tables — the same technique the paper's TPC-H
// port for Hive ([19]) uses. Validation-parameter substitutions follow
// the TPC-H specification defaults.
func Query(q int) (string, error) {
	if q < 1 || q > len(queries) {
		return "", fmt.Errorf("tpch: query %d out of range 1..%d", q, len(queries))
	}
	return queries[q-1], nil
}

// NumQueries is the TPC-H query count.
const NumQueries = 22

var queries = [NumQueries]string{
	// Q1: pricing summary report.
	`SELECT l_returnflag, l_linestatus,
	        sum(l_quantity) AS sum_qty,
	        sum(l_extendedprice) AS sum_base_price,
	        sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
	        sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
	        avg(l_quantity) AS avg_qty,
	        avg(l_extendedprice) AS avg_price,
	        avg(l_discount) AS avg_disc,
	        count(*) AS count_order
	 FROM lineitem
	 WHERE l_shipdate <= DATE '1998-09-02'
	 GROUP BY l_returnflag, l_linestatus
	 ORDER BY l_returnflag, l_linestatus;`,

	// Q2: minimum cost supplier.
	`DROP TABLE IF EXISTS q2_tmp1;
	 CREATE TABLE q2_tmp1 STORED AS sequencefile AS
	 SELECT p.p_partkey, ps.ps_supplycost, s.s_acctbal, s.s_name, n.n_name,
	        p.p_mfgr, s.s_address, s.s_phone, s.s_comment
	 FROM part p JOIN partsupp ps ON p.p_partkey = ps.ps_partkey
	  JOIN supplier s ON s.s_suppkey = ps.ps_suppkey
	  JOIN nation n ON s.s_nationkey = n.n_nationkey
	  JOIN region r ON n.n_regionkey = r.r_regionkey
	 WHERE p.p_size = 15 AND p.p_type LIKE '%BRASS' AND r.r_name = 'EUROPE';
	 DROP TABLE IF EXISTS q2_tmp2;
	 CREATE TABLE q2_tmp2 STORED AS sequencefile AS
	 SELECT p_partkey AS m_partkey, min(ps_supplycost) AS m_min_cost
	 FROM q2_tmp1 GROUP BY p_partkey;
	 SELECT t.s_acctbal, t.s_name, t.n_name, t.p_partkey, t.p_mfgr,
	        t.s_address, t.s_phone, t.s_comment
	 FROM q2_tmp1 t JOIN q2_tmp2 m
	   ON t.p_partkey = m.m_partkey AND t.ps_supplycost = m.m_min_cost
	 ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
	 LIMIT 100;`,

	// Q3: shipping priority.
	`SELECT l_orderkey,
	        sum(l_extendedprice * (1 - l_discount)) AS revenue,
	        o_orderdate, o_shippriority
	 FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey
	  JOIN lineitem l ON l.l_orderkey = o.o_orderkey
	 WHERE c.c_mktsegment = 'BUILDING'
	  AND o.o_orderdate < DATE '1995-03-15'
	  AND l.l_shipdate > DATE '1995-03-15'
	 GROUP BY l_orderkey, o_orderdate, o_shippriority
	 ORDER BY revenue DESC, o_orderdate
	 LIMIT 10;`,

	// Q4: order priority checking (EXISTS -> semi join via DISTINCT).
	`DROP TABLE IF EXISTS q4_late;
	 CREATE TABLE q4_late STORED AS sequencefile AS
	 SELECT DISTINCT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate;
	 SELECT o_orderpriority, count(*) AS order_count
	 FROM orders o JOIN q4_late t ON o.o_orderkey = t.l_orderkey
	 WHERE o.o_orderdate >= DATE '1993-07-01' AND o.o_orderdate < DATE '1993-10-01'
	 GROUP BY o_orderpriority
	 ORDER BY o_orderpriority;`,

	// Q5: local supplier volume.
	`SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
	 FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey
	  JOIN lineitem l ON l.l_orderkey = o.o_orderkey
	  JOIN supplier s ON l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey
	  JOIN nation n ON s.s_nationkey = n.n_nationkey
	  JOIN region r ON n.n_regionkey = r.r_regionkey
	 WHERE r.r_name = 'ASIA'
	  AND o.o_orderdate >= DATE '1994-01-01' AND o.o_orderdate < DATE '1995-01-01'
	 GROUP BY n_name
	 ORDER BY revenue DESC;`,

	// Q6: forecasting revenue change.
	`SELECT sum(l_extendedprice * l_discount) AS revenue
	 FROM lineitem
	 WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
	  AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24;`,

	// Q7: volume shipping.
	`SELECT supp_nation, cust_nation, l_year, sum(volume) AS revenue
	 FROM (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
	              year(l.l_shipdate) AS l_year,
	              l.l_extendedprice * (1 - l.l_discount) AS volume
	       FROM supplier s JOIN lineitem l ON s.s_suppkey = l.l_suppkey
	        JOIN orders o ON o.o_orderkey = l.l_orderkey
	        JOIN customer c ON c.c_custkey = o.o_custkey
	        JOIN nation n1 ON s.s_nationkey = n1.n_nationkey
	        JOIN nation n2 ON c.c_nationkey = n2.n_nationkey
	       WHERE ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
	           OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
	        AND l.l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31') shipping
	 GROUP BY supp_nation, cust_nation, l_year
	 ORDER BY supp_nation, cust_nation, l_year;`,

	// Q8: national market share.
	`SELECT o_year,
	        sum(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0 END) / sum(volume) AS mkt_share
	 FROM (SELECT year(o.o_orderdate) AS o_year,
	              l.l_extendedprice * (1 - l.l_discount) AS volume,
	              n2.n_name AS nation
	       FROM part p JOIN lineitem l ON p.p_partkey = l.l_partkey
	        JOIN supplier s ON s.s_suppkey = l.l_suppkey
	        JOIN orders o ON l.l_orderkey = o.o_orderkey
	        JOIN customer c ON o.o_custkey = c.c_custkey
	        JOIN nation n1 ON c.c_nationkey = n1.n_nationkey
	        JOIN region r ON n1.n_regionkey = r.r_regionkey
	        JOIN nation n2 ON s.s_nationkey = n2.n_nationkey
	       WHERE r.r_name = 'AMERICA'
	        AND o.o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
	        AND p.p_type = 'ECONOMY ANODIZED STEEL') all_nations
	 GROUP BY o_year
	 ORDER BY o_year;`,

	// Q9: product type profit measure.
	`SELECT nation, o_year, sum(amount) AS sum_profit
	 FROM (SELECT n.n_name AS nation, year(o.o_orderdate) AS o_year,
	              l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity AS amount
	       FROM part p JOIN lineitem l ON p.p_partkey = l.l_partkey
	        JOIN supplier s ON s.s_suppkey = l.l_suppkey
	        JOIN partsupp ps ON ps.ps_suppkey = l.l_suppkey AND ps.ps_partkey = l.l_partkey
	        JOIN orders o ON o.o_orderkey = l.l_orderkey
	        JOIN nation n ON s.s_nationkey = n.n_nationkey
	       WHERE p.p_name LIKE '%green%') profit
	 GROUP BY nation, o_year
	 ORDER BY nation, o_year DESC;`,

	// Q10: returned item reporting.
	`SELECT c_custkey, c_name,
	        sum(l_extendedprice * (1 - l_discount)) AS revenue,
	        c_acctbal, n_name, c_address, c_phone, c_comment
	 FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey
	  JOIN lineitem l ON l.l_orderkey = o.o_orderkey
	  JOIN nation n ON c.c_nationkey = n.n_nationkey
	 WHERE o.o_orderdate >= DATE '1993-10-01' AND o.o_orderdate < DATE '1994-01-01'
	  AND l.l_returnflag = 'R'
	 GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
	 ORDER BY revenue DESC
	 LIMIT 20;`,

	// Q11: important stock identification.
	`DROP TABLE IF EXISTS q11_part_value;
	 CREATE TABLE q11_part_value STORED AS sequencefile AS
	 SELECT ps.ps_partkey AS v_partkey,
	        sum(ps.ps_supplycost * ps.ps_availqty) AS part_value
	 FROM partsupp ps JOIN supplier s ON ps.ps_suppkey = s.s_suppkey
	  JOIN nation n ON s.s_nationkey = n.n_nationkey
	 WHERE n.n_name = 'GERMANY'
	 GROUP BY ps.ps_partkey;
	 DROP TABLE IF EXISTS q11_total;
	 CREATE TABLE q11_total STORED AS sequencefile AS
	 SELECT sum(part_value) AS total_value FROM q11_part_value;
	 SELECT t.v_partkey, t.part_value
	 FROM q11_part_value t, q11_total g
	 WHERE t.part_value > g.total_value * 0.0001
	 ORDER BY part_value DESC;`,

	// Q12: shipping modes and order priority.
	`SELECT l_shipmode,
	        sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
	                 THEN 1 ELSE 0 END) AS high_line_count,
	        sum(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH'
	                 THEN 1 ELSE 0 END) AS low_line_count
	 FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey
	 WHERE l.l_shipmode IN ('MAIL', 'SHIP')
	  AND l.l_commitdate < l.l_receiptdate
	  AND l.l_shipdate < l.l_commitdate
	  AND l.l_receiptdate >= DATE '1994-01-01' AND l.l_receiptdate < DATE '1995-01-01'
	 GROUP BY l_shipmode
	 ORDER BY l_shipmode;`,

	// Q13: customer distribution (left outer + anti-pattern comment).
	`SELECT c_count, count(*) AS custdist
	 FROM (SELECT c.c_custkey AS c_custkey, count(o.o_orderkey) AS c_count
	       FROM customer c LEFT OUTER JOIN orders o
	         ON c.c_custkey = o.o_custkey AND o.o_comment NOT LIKE '%special%requests%'
	       GROUP BY c.c_custkey) c_orders
	 GROUP BY c_count
	 ORDER BY custdist DESC, c_count DESC;`,

	// Q14: promotion effect.
	`SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%'
	                          THEN l_extendedprice * (1 - l_discount) ELSE 0 END)
	        / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
	 FROM part p JOIN lineitem l ON l.l_partkey = p.p_partkey
	 WHERE l.l_shipdate >= DATE '1995-09-01' AND l.l_shipdate < DATE '1995-10-01';`,

	// Q15: top supplier (view -> staged table).
	`DROP TABLE IF EXISTS q15_revenue;
	 CREATE TABLE q15_revenue STORED AS sequencefile AS
	 SELECT l_suppkey AS supplier_no,
	        sum(l_extendedprice * (1 - l_discount)) AS total_revenue
	 FROM lineitem
	 WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01'
	 GROUP BY l_suppkey;
	 DROP TABLE IF EXISTS q15_max;
	 CREATE TABLE q15_max STORED AS sequencefile AS
	 SELECT max(total_revenue) AS max_revenue FROM q15_revenue;
	 SELECT s.s_suppkey, s.s_name, s.s_address, s.s_phone, r.total_revenue
	 FROM supplier s JOIN q15_revenue r ON s.s_suppkey = r.supplier_no, q15_max m
	 WHERE r.total_revenue = m.max_revenue
	 ORDER BY s_suppkey;`,

	// Q16: parts/supplier relationship (NOT IN -> anti join).
	`DROP TABLE IF EXISTS q16_complaints;
	 CREATE TABLE q16_complaints STORED AS sequencefile AS
	 SELECT s_suppkey AS bad_suppkey FROM supplier
	 WHERE s_comment LIKE '%Customer%Complaints%';
	 SELECT p_brand, p_type, p_size, count(DISTINCT ps_suppkey) AS supplier_cnt
	 FROM partsupp ps JOIN part p ON p.p_partkey = ps.ps_partkey
	  LEFT OUTER JOIN q16_complaints b ON ps.ps_suppkey = b.bad_suppkey
	 WHERE b.bad_suppkey IS NULL
	  AND p.p_brand <> 'Brand#45'
	  AND p.p_type NOT LIKE 'MEDIUM POLISHED%'
	  AND p.p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
	 GROUP BY p_brand, p_type, p_size
	 ORDER BY supplier_cnt DESC, p_brand, p_type, p_size;`,

	// Q17: small-quantity-order revenue (correlated avg -> staged).
	`DROP TABLE IF EXISTS q17_avg;
	 CREATE TABLE q17_avg STORED AS sequencefile AS
	 SELECT l_partkey AS a_partkey, 0.2 * avg(l_quantity) AS a_avg_qty
	 FROM lineitem GROUP BY l_partkey;
	 SELECT sum(l.l_extendedprice) / 7.0 AS avg_yearly
	 FROM lineitem l JOIN part p ON p.p_partkey = l.l_partkey
	  JOIN q17_avg a ON a.a_partkey = l.l_partkey
	 WHERE p.p_brand = 'Brand#23' AND p.p_container = 'MED BOX'
	  AND l.l_quantity < a.a_avg_qty;`,

	// Q18: large volume customer (IN group-by-having -> staged).
	`DROP TABLE IF EXISTS q18_big_orders;
	 CREATE TABLE q18_big_orders STORED AS sequencefile AS
	 SELECT l_orderkey AS b_orderkey, sum(l_quantity) AS b_sum_qty
	 FROM lineitem GROUP BY l_orderkey HAVING sum(l_quantity) > 300;
	 SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity)
	 FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey
	  JOIN q18_big_orders b ON o.o_orderkey = b.b_orderkey
	  JOIN lineitem l ON o.o_orderkey = l.l_orderkey
	 GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
	 ORDER BY o_totalprice DESC, o_orderdate
	 LIMIT 100;`,

	// Q19: discounted revenue (disjunctive composite predicate).
	`SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
	 FROM lineitem l JOIN part p ON p.p_partkey = l.l_partkey
	 WHERE (p.p_brand = 'Brand#12'
	        AND p.p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
	        AND l.l_quantity >= 1 AND l.l_quantity <= 11
	        AND p.p_size BETWEEN 1 AND 5
	        AND l.l_shipmode IN ('AIR', 'REG AIR')
	        AND l.l_shipinstruct = 'DELIVER IN PERSON')
	    OR (p.p_brand = 'Brand#23'
	        AND p.p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
	        AND l.l_quantity >= 10 AND l.l_quantity <= 20
	        AND p.p_size BETWEEN 1 AND 10
	        AND l.l_shipmode IN ('AIR', 'REG AIR')
	        AND l.l_shipinstruct = 'DELIVER IN PERSON')
	    OR (p.p_brand = 'Brand#34'
	        AND p.p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
	        AND l.l_quantity >= 20 AND l.l_quantity <= 30
	        AND p.p_size BETWEEN 1 AND 15
	        AND l.l_shipmode IN ('AIR', 'REG AIR')
	        AND l.l_shipinstruct = 'DELIVER IN PERSON');`,

	// Q20: potential part promotion (nested IN chain -> staged).
	`DROP TABLE IF EXISTS q20_forest_parts;
	 CREATE TABLE q20_forest_parts STORED AS sequencefile AS
	 SELECT DISTINCT p_partkey AS f_partkey FROM part WHERE p_name LIKE 'forest%';
	 DROP TABLE IF EXISTS q20_half_qty;
	 CREATE TABLE q20_half_qty STORED AS sequencefile AS
	 SELECT l_partkey AS h_partkey, l_suppkey AS h_suppkey,
	        0.5 * sum(l_quantity) AS h_half_qty
	 FROM lineitem
	 WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
	 GROUP BY l_partkey, l_suppkey;
	 DROP TABLE IF EXISTS q20_supp_keys;
	 CREATE TABLE q20_supp_keys STORED AS sequencefile AS
	 SELECT DISTINCT ps.ps_suppkey AS k_suppkey
	 FROM partsupp ps JOIN q20_forest_parts f ON ps.ps_partkey = f.f_partkey
	  JOIN q20_half_qty h ON h.h_partkey = ps.ps_partkey AND h.h_suppkey = ps.ps_suppkey
	 WHERE ps.ps_availqty > h.h_half_qty;
	 SELECT s_name, s_address
	 FROM supplier s JOIN q20_supp_keys k ON s.s_suppkey = k.k_suppkey
	  JOIN nation n ON s.s_nationkey = n.n_nationkey
	 WHERE n.n_name = 'CANADA'
	 ORDER BY s_name;`,

	// Q21: suppliers who kept orders waiting (EXISTS/NOT EXISTS -> counts).
	`DROP TABLE IF EXISTS q21_all_supp;
	 CREATE TABLE q21_all_supp STORED AS sequencefile AS
	 SELECT l_orderkey AS a_orderkey, count(DISTINCT l_suppkey) AS cnt_supp
	 FROM lineitem GROUP BY l_orderkey;
	 DROP TABLE IF EXISTS q21_late_supp;
	 CREATE TABLE q21_late_supp STORED AS sequencefile AS
	 SELECT l_orderkey AS t_orderkey, count(DISTINCT l_suppkey) AS cnt_late
	 FROM lineitem WHERE l_receiptdate > l_commitdate GROUP BY l_orderkey;
	 SELECT s_name, count(*) AS numwait
	 FROM supplier s JOIN lineitem l1 ON s.s_suppkey = l1.l_suppkey
	  JOIN orders o ON o.o_orderkey = l1.l_orderkey
	  JOIN nation n ON s.s_nationkey = n.n_nationkey
	  JOIN q21_all_supp a ON a.a_orderkey = l1.l_orderkey
	  JOIN q21_late_supp t ON t.t_orderkey = l1.l_orderkey
	 WHERE o.o_orderstatus = 'F' AND n.n_name = 'SAUDI ARABIA'
	  AND l1.l_receiptdate > l1.l_commitdate
	  AND a.cnt_supp > 1 AND t.cnt_late = 1
	 GROUP BY s_name
	 ORDER BY numwait DESC, s_name
	 LIMIT 100;`,

	// Q22: global sales opportunity (NOT EXISTS -> anti join; scalar avg -> staged).
	`DROP TABLE IF EXISTS q22_cust;
	 CREATE TABLE q22_cust STORED AS sequencefile AS
	 SELECT c_custkey, c_acctbal, substr(c_phone, 1, 2) AS cntrycode
	 FROM customer
	 WHERE substr(c_phone, 1, 2) IN ('13', '31', '23', '29', '30', '18', '17');
	 DROP TABLE IF EXISTS q22_avg;
	 CREATE TABLE q22_avg STORED AS sequencefile AS
	 SELECT avg(c_acctbal) AS avg_acctbal FROM q22_cust WHERE c_acctbal > 0.00;
	 DROP TABLE IF EXISTS q22_ordcust;
	 CREATE TABLE q22_ordcust STORED AS sequencefile AS
	 SELECT DISTINCT o_custkey FROM orders;
	 SELECT cntrycode, count(*) AS numcust, sum(c_acctbal) AS totacctbal
	 FROM q22_cust c LEFT OUTER JOIN q22_ordcust o ON c.c_custkey = o.o_custkey, q22_avg a
	 WHERE o.o_custkey IS NULL AND c.c_acctbal > a.avg_acctbal
	 GROUP BY cntrycode
	 ORDER BY cntrycode;`,
}

// QueryName gives a short label ("Q1".."Q22").
func QueryName(q int) string { return fmt.Sprintf("Q%d", q) }
