// Package mrengine is the Hive-on-Hadoop execution engine: it lowers a
// compiled plan stage onto the internal/hadoop MapReduce substrate,
// matching the baseline system of the paper's evaluation.
package mrengine

import (
	"fmt"
	"io"
	"sync"

	"hivempi/internal/exec"
	"hivempi/internal/hadoop"
	"hivempi/internal/metrics"
	"hivempi/internal/trace"
	"hivempi/internal/types"
)

// Engine executes stages on Hadoop MapReduce.
type Engine struct{}

var _ exec.Engine = (*Engine)(nil)

// New returns the engine.
func New() *Engine { return &Engine{} }

// Name implements exec.Engine.
func (e *Engine) Name() string { return "hadoop" }

// Run implements exec.Engine.
func (e *Engine) Run(env *exec.Env, stage *exec.Stage, conf exec.EngineConf) (*exec.StageResult, error) {
	if err := stage.Validate(); err != nil {
		return nil, err
	}
	tasks, err := exec.PlanMapTasks(env, stage, conf)
	if err != nil {
		return nil, err
	}
	inputBytes := exec.SizingBytes(stage, tasks)
	hosts := make([]string, len(tasks))
	for i, t := range tasks {
		hosts[i] = t.Host
	}
	numReduces := exec.ReducerCount(stage, conf, len(tasks), inputBytes)
	ad := conf.Adaptation
	if ad.Repartitions() {
		numReduces = ad.NumTargets
	}

	var mu sync.Mutex
	var rows []types.Row
	collect := func(r types.Row) error {
		mu.Lock()
		defer mu.Unlock()
		rows = append(rows, r.Clone())
		return nil
	}

	numKeys := 0
	partKeys := 0
	if stage.Shuffle != nil {
		numKeys = len(stage.Maps[0].Keys)
		partKeys = stage.Shuffle.PartitionKeys
	}
	job, err := hadoop.NewJob(hadoop.Config{
		NumMaps:    len(tasks),
		NumReduces: numReduces,
		Partitioner: func(key []byte, n int) int {
			if ad.Repartitions() {
				return ad.Partition(key, partKeys, numKeys)
			}
			return exec.PartitionForKey(key, partKeys, numKeys, n)
		},
		SortBufferBytes: conf.SortBufferBytes,
		MapSlots:        conf.MaxSlots(),
		ReduceSlots:     conf.MaxSlots(),
		SpillDir:        conf.SpillDir,
		Hosts:           hosts,
		MaxAttempts:     conf.MaxTaskAttempts,
	})
	if err != nil {
		return nil, err
	}

	mapBody := func(m *hadoop.MapContext) error {
		t := tasks[m.TaskID()]
		if err := env.Chaos.TaskCrash(stage.ID, "map", m.TaskID()); err != nil {
			return err
		}
		exec.ApplyStraggler(m.Metrics(), env.Chaos.StragglerDelay(stage.ID, "map", m.TaskID()), conf)
		if stage.Shuffle == nil {
			out, closer, err := exec.BuildTaskOutput(env, stage, m.TaskID(), collect)
			if err != nil {
				return err
			}
			if err := exec.RunMapTask(env, conf, stage, t.MapIdx, t.Split, nil, out, m.Metrics()); err != nil {
				return err
			}
			return closer()
		}
		return exec.RunMapTask(env, conf, stage, t.MapIdx, t.Split, m.Emit, nil, m.Metrics())
	}

	var reduceBody hadoop.ReduceBody
	if stage.Reduce != nil {
		reduceBody = func(r *hadoop.ReduceContext) error {
			if err := env.Chaos.TaskCrash(stage.ID, "reduce", r.TaskID()); err != nil {
				return err
			}
			if ad.MarkPredictive(r.TaskID()) {
				r.Metrics().PredictiveSpec = true
			}
			exec.ApplyStraggler(r.Metrics(), env.Chaos.StragglerDelay(stage.ID, "reduce", r.TaskID()), conf)
			out, closer, err := exec.BuildTaskOutput(env, stage, r.TaskID(), collect)
			if err != nil {
				return err
			}
			driver, err := exec.NewReduceDriver(env, stage.Reduce, out, r.Metrics())
			if err != nil {
				return err
			}
			for {
				key, vals, err := r.NextGroup()
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
				if err := driver.Feed(key, vals); err != nil {
					return err
				}
				if driver.LimitReached() {
					break
				}
			}
			if err := driver.Close(); err != nil {
				return err
			}
			return closer()
		}
	}

	if err := job.Run(mapBody, reduceBody); err != nil {
		return nil, fmt.Errorf("hadoop stage %s: %w", stage.ID, err)
	}

	st := &trace.Stage{
		Name:       stage.ID,
		Engine:     e.Name(),
		NumMaps:    len(tasks),
		NumReds:    numReduces,
		Producers:  job.MapMetrics(),
		Consumers:  job.ReduceMetrics(),
		Comm:       job.Comm(),
		Vectorized: conf.Vectorized,
	}
	for i, m := range st.Producers {
		m.LocalRead = tasks[i].Local
	}
	for i, r := range st.Consumers {
		if h := ad.HostFor(i); h != "" && env.NodeUp(h) {
			r.Host = h
		} else if len(conf.Slaves) > 0 {
			r.Host = conf.Slaves[i%len(conf.Slaves)]
		}
	}
	if ad != nil {
		st.AdaptSplit = ad.SplitParts
		st.AdaptFused = ad.FusedParts
		st.AdaptSec = ad.PlanCostSec
	}
	// Surface per-task re-executions at the stage level (the attempt
	// counts themselves stay on each task for the perfmodel).
	for _, t := range st.Producers {
		if t.Attempts > 1 {
			st.TaskRetries += t.Attempts - 1
		}
	}
	st.ChaosDelaySec = env.Chaos.DrainVirtualDelay()
	exec.FillSinkWriteBytes(env, stage, st)
	metrics.FoldStage(env.Metrics, st)
	return &exec.StageResult{Trace: st, Rows: rows}, nil
}
