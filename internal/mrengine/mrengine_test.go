package mrengine

import (
	"fmt"
	"strings"
	"testing"

	"hivempi/internal/dfs"
	"hivempi/internal/exec"
	"hivempi/internal/storage"
	"hivempi/internal/types"
)

func testEnv() *exec.Env {
	return &exec.Env{FS: dfs.New(dfs.Config{
		BlockSize: 2 << 10,
		Nodes:     []string{"n1", "n2", "n3"},
	})}
}

func testConf(t *testing.T) exec.EngineConf {
	conf := exec.DefaultEngineConf()
	conf.SpillDir = t.TempDir()
	conf.Slaves = []string{"n1", "n2", "n3"}
	conf.SlotsPerNode = 2
	return conf
}

func writeTable(t *testing.T, env *exec.Env, path string, schema *types.Schema,
	rows []types.Row) exec.TableInput {
	t.Helper()
	w, err := storage.CreateTableFile(env.FS, path, storage.FormatText, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return exec.TableInput{Table: path, Paths: []string{path},
		Format: storage.FormatText, Schema: schema}
}

func TestEngineName(t *testing.T) {
	if New().Name() != "hadoop" {
		t.Errorf("Name() = %q", New().Name())
	}
}

func TestSplitGeometryDrivesTaskCount(t *testing.T) {
	env := testEnv()
	conf := testConf(t)
	schema := types.NewSchema(types.Col("v", types.KindInt))
	var rows []types.Row
	for i := 0; i < 4000; i++ {
		rows = append(rows, types.Row{types.Int(int64(i))})
	}
	in := writeTable(t, env, "/geom/src", schema, rows)
	stage := &exec.Stage{
		ID:      "geom",
		Maps:    []exec.MapWork{{Input: in, Keys: []exec.Expr{&exec.ColRef{Idx: 0}}, Values: []exec.Expr{&exec.ColRef{Idx: 0}}}},
		Shuffle: &exec.ShuffleSpec{NumReducers: 2},
		Reduce: &exec.ReduceWork{
			KeyKinds: []types.Kind{types.KindInt},
			Op:       &exec.ExtractReduce{ValueWidth: 1},
		},
		Collect: true,
	}
	res, err := New().Run(env, stage, conf)
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := env.FS.Size("/geom/src")
	wantMaps := int((sz + 2<<10 - 1) / (2 << 10))
	if res.Trace.NumMaps != wantMaps {
		t.Errorf("maps = %d, want %d (one per 2 KB block)", res.Trace.NumMaps, wantMaps)
	}
	if len(res.Rows) != 4000 {
		t.Errorf("collected %d rows", len(res.Rows))
	}
	// Map hosts assigned from split locality.
	for _, m := range res.Trace.Producers {
		if m.Host == "" || !strings.HasPrefix(m.Host, "n") {
			t.Errorf("map host %q not assigned from replicas", m.Host)
		}
		if !m.LocalRead {
			t.Error("map should read its local replica")
		}
	}
}

func TestReducerSizingByInputBytes(t *testing.T) {
	env := testEnv()
	conf := testConf(t)
	conf.BytesPerReducer = 4 << 10
	schema := types.NewSchema(types.Col("v", types.KindInt))
	var rows []types.Row
	for i := 0; i < 5000; i++ {
		rows = append(rows, types.Row{types.Int(int64(i))})
	}
	in := writeTable(t, env, "/rsz/src", schema, rows)
	stage := &exec.Stage{
		ID:      "rsz",
		Maps:    []exec.MapWork{{Input: in, Keys: []exec.Expr{&exec.ColRef{Idx: 0}}, Values: []exec.Expr{&exec.ColRef{Idx: 0}}}},
		Shuffle: &exec.ShuffleSpec{}, // auto-sized
		Reduce: &exec.ReduceWork{
			KeyKinds: []types.Kind{types.KindInt},
			Op:       &exec.ExtractReduce{ValueWidth: 1},
		},
		Collect: true,
	}
	res, err := New().Run(env, stage, conf)
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := env.FS.Size("/rsz/src")
	want := int(sz / (4 << 10))
	if want > conf.MaxSlots() {
		want = conf.MaxSlots()
	}
	if want < 1 {
		want = 1
	}
	if res.Trace.NumReds != want {
		t.Errorf("reducers = %d, want %d", res.Trace.NumReds, want)
	}
}

func TestSinkPartFilePerReducer(t *testing.T) {
	env := testEnv()
	conf := testConf(t)
	schema := types.NewSchema(types.Col("k", types.KindString), types.Col("v", types.KindInt))
	var rows []types.Row
	for i := 0; i < 600; i++ {
		rows = append(rows, types.Row{types.String(fmt.Sprintf("k%d", i%7)), types.Int(1)})
	}
	in := writeTable(t, env, "/sink/src", schema, rows)
	outSchema := types.NewSchema(types.Col("k", types.KindString), types.Col("n", types.KindInt))
	stage := &exec.Stage{
		ID: "sink",
		Maps: []exec.MapWork{{
			Input: in,
			Ops: []exec.MapOp{&exec.GroupByPartialOp{
				Keys: []exec.Expr{&exec.ColRef{Idx: 0}},
				Aggs: []exec.AggSpec{{Kind: exec.AggCountStar}},
			}},
			Keys:   []exec.Expr{&exec.ColRef{Idx: 0}},
			Values: []exec.Expr{&exec.ColRef{Idx: 1}},
		}},
		Shuffle: &exec.ShuffleSpec{NumReducers: 3},
		Reduce: &exec.ReduceWork{
			KeyKinds: []types.Kind{types.KindString},
			Op:       &exec.GroupByReduce{Aggs: []exec.AggSpec{{Kind: exec.AggCountStar}}},
		},
		Sink: &exec.FileSinkSpec{Dir: "/out", Format: storage.FormatText, Schema: outSchema},
	}
	res, err := New().Run(env, stage, conf)
	if err != nil {
		t.Fatal(err)
	}
	parts := env.FS.List("/out")
	if len(parts) != 3 {
		t.Fatalf("sink has %d part files, want 3 (one per reducer): %v", len(parts), parts)
	}
	total := 0
	for _, p := range parts {
		rs, err := storage.ReadAll(env.FS, p, storage.FormatText, outSchema)
		if err != nil {
			t.Fatal(err)
		}
		total += len(rs)
	}
	if total != 7 {
		t.Errorf("sink holds %d groups, want 7", total)
	}
	var wb int64
	for _, c := range res.Trace.Consumers {
		wb += c.WriteBytes
	}
	if wb == 0 {
		t.Error("consumer WriteBytes not recorded")
	}
}

func TestInvalidStageRejected(t *testing.T) {
	env := testEnv()
	conf := testConf(t)
	if _, err := New().Run(env, &exec.Stage{ID: "bad"}, conf); err == nil {
		t.Error("empty stage should fail validation")
	}
}
