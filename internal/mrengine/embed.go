package mrengine

import "embed"

// Source embeds this package's implementation for the productivity
// analysis (paper Table III compares engine adapter code sizes).
//
//go:embed *.go
var Source embed.FS
