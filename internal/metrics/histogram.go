package metrics

import (
	"math/bits"
	"sync/atomic"
)

// numBuckets covers every non-negative int64: bucket 0 holds zero (and
// clamped negatives), bucket b>0 holds values whose bit length is b,
// i.e. the range [2^(b-1), 2^b).
const numBuckets = 65

// Histogram is a lock-free log2-bucketed distribution. Observe is one
// atomic add per bucket plus count/sum/max maintenance, cheap enough
// for shuffle hot paths when the handle is cached at setup (the same
// contract as Counter/Gauge, enforced by the metricshot analyzer). A
// nil *Histogram absorbs every operation, like the other primitives.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketOf maps a value to its log2 bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow returns the inclusive lower bound of bucket b.
func BucketLow(b int) int64 {
	if b <= 0 {
		return 0
	}
	return int64(1) << (b - 1)
}

// BucketHigh returns the inclusive upper bound of bucket b.
func BucketHigh(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return int64(1)<<62 + (int64(1)<<62 - 1) // max int64
	}
	return int64(1)<<b - 1
}

// Observe records one value. Negative values clamp to the zero bucket
// (the domains recorded here — bytes, records, microseconds — are
// non-negative).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time view of a histogram: totals,
// the exact maximum, bucket-resolution quantiles and the non-empty
// buckets themselves.
type HistogramSnapshot struct {
	Count int64
	Sum   int64
	Max   int64
	P50   int64
	P95   int64
	P99   int64
	// Buckets holds the non-empty buckets in ascending value order.
	Buckets []Bucket
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	Low   int64 // inclusive
	High  int64 // inclusive
	Count int64
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot captures the histogram. Concurrent Observe calls may land
// between the bucket loads, so the snapshot is consistent only to the
// bucket level — exactly what a live metrics read needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	var counts [numBuckets]int64
	var total int64
	for b := 0; b < numBuckets; b++ {
		c := h.buckets[b].Load()
		counts[b] = c
		total += c
		if c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Low: BucketLow(b), High: BucketHigh(b), Count: c})
		}
	}
	// Derive quantiles from the bucket totals (not h.count, which may
	// run ahead of the bucket adds under concurrency).
	s.Count = total
	s.P50 = quantile(counts[:], total, 0.50, s.Max)
	s.P95 = quantile(counts[:], total, 0.95, s.Max)
	s.P99 = quantile(counts[:], total, 0.99, s.Max)
	return s
}

// quantile returns the upper bound of the bucket containing the q-th
// ranked observation, clamped to the observed maximum.
func quantile(counts []int64, total int64, q float64, max int64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for b, c := range counts {
		cum += c
		if cum >= rank {
			hi := BucketHigh(b)
			if hi > max {
				hi = max
			}
			return hi
		}
	}
	return max
}

// Timer is a Histogram over durations, recorded in microseconds. The
// virtual-time packages may not read wall clocks (the wallclock
// analyzer enforces this), so callers pass durations they computed —
// typically virtual seconds from the perfmodel.
type Timer struct {
	h Histogram
}

// ObserveSeconds records one duration given in (virtual) seconds.
func (t *Timer) ObserveSeconds(sec float64) {
	if t == nil {
		return
	}
	t.h.Observe(int64(sec * 1e6))
}

// ObserveMicros records one duration given in microseconds.
func (t *Timer) ObserveMicros(us int64) {
	if t == nil {
		return
	}
	t.h.Observe(us)
}

// Count returns the number of recorded durations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.h.Count()
}

// Snapshot captures the timer's distribution (values in microseconds).
func (t *Timer) Snapshot() HistogramSnapshot {
	if t == nil {
		return HistogramSnapshot{}
	}
	return t.h.Snapshot()
}

// IsDistributionKey reports whether a snapshot key is a non-additive
// distribution statistic (quantile or max). Per-statement deltas keep
// additive keys as after-minus-before; distribution keys are reported
// as their absolute value instead, because quantiles don't subtract.
func IsDistributionKey(name string) bool {
	for _, suf := range []string{".p50", ".p95", ".p99", ".max"} {
		if len(name) > len(suf) && name[len(name)-len(suf):] == suf {
			return true
		}
	}
	return false
}

// snapshotInto writes one distribution's snapshot entries under name.
func snapshotInto(out map[string]int64, name string, s HistogramSnapshot) {
	if s.Count == 0 {
		return
	}
	out[name+".count"] = s.Count
	out[name+".sum"] = s.Sum
	out[name+".p50"] = s.P50
	out[name+".p95"] = s.P95
	out[name+".p99"] = s.P99
	out[name+".max"] = s.Max
}
