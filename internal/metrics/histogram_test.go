package metrics

import (
	"sync"
	"testing"

	"hivempi/internal/testutil/leakcheck"
)

func TestHistogramNilSafe(t *testing.T) {
	defer leakcheck.Check(t)()
	var h *Histogram
	h.Observe(10) // must not panic
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Errorf("nil histogram snapshot = %+v, want zeros", s)
	}
	var tm *Timer
	tm.ObserveSeconds(0.5)
	tm.ObserveMicros(100)
	if tm.Count() != 0 {
		t.Error("nil timer reported observations")
	}
}

func TestHistogramBasics(t *testing.T) {
	defer leakcheck.Check(t)()
	h := &Histogram{}
	for _, v := range []int64{1, 2, 4, 8, 1024, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if s.Sum != 1+2+4+8+1024 { // negatives clamp to 0
		t.Errorf("sum = %d, want %d", s.Sum, 1+2+4+8+1024)
	}
	if s.Max != 1024 {
		t.Errorf("max = %d, want 1024", s.Max)
	}
	if s.P50 <= 0 || s.P50 > s.P99 || s.P99 > s.Max {
		t.Errorf("quantiles out of order: p50=%d p99=%d max=%d", s.P50, s.P99, s.Max)
	}
	if m := s.Mean(); m < 170 || m > 175 {
		t.Errorf("mean = %f, want ~173", m)
	}
}

func TestHistogramQuantilesClampToMax(t *testing.T) {
	defer leakcheck.Check(t)()
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(1000) // all in one bucket [512,1024)
	}
	s := h.Snapshot()
	// The bucket upper bound (1023) exceeds the true max; quantiles must
	// clamp so p99 never reports a value no observation reached.
	if s.P50 > 1000 || s.P95 > 1000 || s.P99 > 1000 {
		t.Errorf("quantiles exceed observed max: %+v", s)
	}
}

// TestHistogramConcurrent hammers Observe and Snapshot concurrently;
// run under -race (make check does) this proves the lock-free claim,
// and the final snapshot must account for every observation.
func TestHistogramConcurrent(t *testing.T) {
	defer leakcheck.Check(t)()
	h := &Histogram{}
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*1000 + i))
				if i%1000 == 0 {
					s := h.Snapshot()
					if s.Count < 0 || s.Max < 0 {
						t.Error("mid-flight snapshot corrupt")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", s.Count, goroutines*perG)
	}
	if s.Max != 7*1000+perG-1 {
		t.Errorf("max = %d, want %d", s.Max, 7*1000+perG-1)
	}
}

func TestTimerObserve(t *testing.T) {
	defer leakcheck.Check(t)()
	tm := &Timer{}
	tm.ObserveSeconds(0.001) // 1000 µs
	tm.ObserveMicros(3000)
	tm.ObserveSeconds(-1) // clamps to 0
	if tm.Count() != 3 {
		t.Errorf("count = %d, want 3", tm.Count())
	}
	s := tm.Snapshot()
	if s.Sum != 4000 {
		t.Errorf("sum = %d µs, want 4000", s.Sum)
	}
	if s.Max != 3000 {
		t.Errorf("max = %d µs, want 3000", s.Max)
	}
}

func TestRegistryHistogramTimer(t *testing.T) {
	defer leakcheck.Check(t)()
	r := NewRegistry()
	h := r.Histogram("x.bytes")
	if h == nil || r.Histogram("x.bytes") != h {
		t.Fatal("histogram lookup not stable")
	}
	tm := r.Timer("y.wait")
	if tm == nil || r.Timer("y.wait") != tm {
		t.Fatal("timer lookup not stable")
	}
	h.Observe(100)
	h.Observe(300)
	tm.ObserveMicros(50)
	snap := r.Snapshot()
	if snap["x.bytes.count"] != 2 || snap["x.bytes.sum"] != 400 {
		t.Errorf("histogram snapshot entries wrong: %v", snap)
	}
	if snap["y.wait.count"] != 1 || snap["y.wait.max"] != 50 {
		t.Errorf("timer snapshot entries wrong: %v", snap)
	}
	names := r.Names()
	found := 0
	for _, n := range names {
		if n == "x.bytes" || n == "y.wait" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("Names() missing hist/timer: %v", names)
	}

	// Empty distributions stay out of the snapshot.
	r2 := NewRegistry()
	r2.Histogram("empty")
	if snap := r2.Snapshot(); len(snap) != 0 {
		t.Errorf("empty histogram leaked into snapshot: %v", snap)
	}

	// Nil registry lookups are no-op safe.
	var nilr *Registry
	nilr.Histogram("h").Observe(1)
	nilr.Timer("t").ObserveSeconds(1)
}

func TestIsDistributionKey(t *testing.T) {
	defer leakcheck.Check(t)()
	for _, k := range []string{"a.p50", "a.p95", "a.p99", "a.max"} {
		if !IsDistributionKey(k) {
			t.Errorf("IsDistributionKey(%q) = false", k)
		}
	}
	for _, k := range []string{"a.count", "a.sum", "a", "shuffle.out.bytes"} {
		if IsDistributionKey(k) {
			t.Errorf("IsDistributionKey(%q) = true", k)
		}
	}
}
