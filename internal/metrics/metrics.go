// Package metrics is the counters/gauges half of the observability
// plane: a lock-cheap registry threaded through the scheduler, engines,
// datampi shuffle library and the dfs/imstore storage substrate. It is
// a leaf package (it imports only the trace schema) so every execution
// layer can link it without cycles; internal/obs re-exports its API
// under the obs façade next to the span model and trace exporters.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"

	"hivempi/internal/trace"
)

// Canonical metric names. Each name is owned by exactly one layer so
// concurrent producers never double-count: engines fold completed stage
// traces (FoldStage), the datampi library counts live shuffle events,
// core counts checkpoint traffic, dfs counts tier I/O, and the driver
// samples imstore occupancy into gauges.
const (
	// FoldStage (per completed stage, both engines).
	CtrShuffleOutBytes  = "shuffle.out.bytes"
	CtrShuffleOutPairs  = "shuffle.out.pairs"
	CtrSpillCount       = "spill.count"
	CtrSpillBytes       = "spill.bytes"
	CtrCombineInPairs   = "combiner.in.pairs"
	CtrCombineOutPairs  = "combiner.out.pairs"
	CtrTaskRetries      = "tasks.retries"
	CtrTasksRecovered   = "tasks.recovered"
	CtrTasksSpeculative = "tasks.speculative"
	CtrStageRetries     = "stages.retries"
	CtrTasksPrefix      = "tasks." // + engine name ("tasks.datampi", "tasks.hadoop")

	// internal/core (DataMPI engine checkpoint path).
	CtrCheckpointBytes   = "checkpoint.bytes"
	CtrCheckpointCommits = "checkpoint.commits"
	CtrCheckpointReplays = "checkpoint.replays"

	// internal/datampi (live shuffle engine counters).
	CtrMPISendFlushes    = "datampi.send.flushes"
	CtrMPIBlockingRounds = "datampi.blocking.rounds"
	CtrMPISpillPairs     = "datampi.spill.pairs"
	CtrMPIForcedFlushes  = "datampi.forced.flushes"
	CtrMPICtrlMessages   = "datampi.ctrl.messages"

	// Communication-plane distributions. The first is recorded live by
	// the datampi A-side receive loop (cached handle, one atomic per
	// data message); the rest are folded from completed stage traces
	// (FoldStage) or by the obs/comm skew analyzer.
	HistRecvRoundBytes   = "datampi.recv.round.bytes" // per-message A-side payloads
	HistFlushBytes       = "datampi.flush.bytes"      // per-flush buffer-manager payloads
	HistTaskShuffleBytes = "shuffle.task.bytes"       // per-producer shuffle totals
	HistRunWriteBytes    = "kvio.run.write.bytes"     // per-pair spill-run write sizes
	TimerAWait           = "datampi.await"            // virtual per-round A-side wait (µs)

	// internal/dfs (tier-attributed I/O).
	CtrDFSReadBytes     = "dfs.read.bytes"
	CtrDFSWriteBytes    = "dfs.write.bytes"
	CtrDFSMemReadBytes  = "dfs.mem.read.bytes"
	CtrDFSMemWriteBytes = "dfs.mem.write.bytes"

	// internal/cluster (membership/failure-detector plane).
	GaugeClusterUp      = "cluster.nodes.up"
	GaugeClusterSuspect = "cluster.nodes.suspect"
	GaugeClusterDead    = "cluster.nodes.dead"
	CtrClusterFlaps     = "cluster.transitions"

	// internal/dfs (node-loss recovery plane).
	CtrDFSRereplBlocks   = "dfs.rereplicated.blocks"
	CtrDFSRereplBytes    = "dfs.rereplicated.bytes"
	CtrDFSReadFailovers  = "dfs.read.failover"
	CtrDFSLostBlocks     = "dfs.lost.blocks"
	GaugeDFSUnderRepl    = "dfs.underreplicated.blocks"
	GaugeDFSDegradedRepl = "dfs.degraded.replication"

	// hive scheduler (lost-node recovery).
	CtrTasksRelaunched = "sched.tasks.relaunched"

	// hive driver compiled-plan cache.
	CtrPlanCacheHits      = "hive.plancache.hits"
	CtrPlanCacheMisses    = "hive.plancache.misses"
	CtrPlanCacheEvictions = "hive.plancache.evictions"

	// Driver-sampled imstore occupancy (gauges).
	GaugeIMUsedBytes = "imstore.used.bytes"
	GaugeIMHWMBytes  = "imstore.used.hwm.bytes"
	GaugeIMAdmitted  = "imstore.admitted"
	GaugeIMRejected  = "imstore.rejected"
	GaugeIMFiles     = "imstore.resident.files"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil *Counter is a no-op, so layers can hold counters
// unconditionally and stay silent when no registry is attached.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a sampled value that additionally tracks its high-water
// mark. Nil gauges are no-ops, like counters.
type Gauge struct {
	v  atomic.Int64
	hi atomic.Int64
}

// Set records the current value and raises the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		hi := g.hi.Load()
		if v <= hi || g.hi.CompareAndSwap(hi, v) {
			return
		}
	}
}

// Value returns the last set value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High returns the high-water mark.
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.hi.Load()
}

// Registry is a names-to-metrics table. Lookup takes a read lock only
// (metrics are created once and then shared), and every update is a
// single atomic op, so instrumented hot paths stay cheap. All methods
// are safe on a nil *Registry — they return nil metrics, whose own
// methods are no-ops — so instrumentation needs no nil checks.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Add increments the named counter (convenience for one-shot call sites).
func (r *Registry) Add(name string, n int64) { r.Counter(name).Add(n) }

// Snapshot returns every metric's current value: counters under their
// name, gauges under their name plus a ".hwm" entry for the high-water
// mark when it differs from the current value, and each non-empty
// histogram/timer as ".count"/".sum"/".p50"/".p95"/".p99"/".max"
// entries (timer values in microseconds). Nil registries snapshot to
// nil.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+6*(len(r.hists)+len(r.timers)))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
		if hi := g.High(); hi != g.Value() {
			out[name+".hwm"] = hi
		}
	}
	for name, h := range r.hists {
		snapshotInto(out, name, h.Snapshot())
	}
	for name, t := range r.timers {
		snapshotInto(out, name, t.Snapshot())
	}
	return out
}

// Names returns the sorted metric names currently registered.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.timers))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.timers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FoldStage accumulates one completed stage trace into the registry:
// per-engine task counts, shuffle volume, spills, combiner traffic and
// the fault-path accounting. Engines call it exactly once per
// successful stage, so the registry never double-counts retried
// attempts (their traces are discarded with the failed attempt).
func FoldStage(r *Registry, st *trace.Stage) {
	if r == nil || st == nil {
		return
	}
	r.Counter(CtrTasksPrefix + st.Engine).Add(int64(len(st.Producers) + len(st.Consumers)))
	if st.Attempts > 1 {
		r.Counter(CtrStageRetries).Add(int64(st.Attempts - 1))
	}
	r.Counter(CtrTaskRetries).Add(int64(st.TaskRetries))
	histFlush := r.Histogram(HistFlushBytes)
	histTask := r.Histogram(HistTaskShuffleBytes)
	fold := func(tasks []*trace.Task) {
		for _, t := range tasks {
			r.Counter(CtrShuffleOutBytes).Add(t.ShuffleOutBytes)
			r.Counter(CtrShuffleOutPairs).Add(t.ShuffleOutPairs)
			r.Counter(CtrSpillCount).Add(t.SpillCount)
			r.Counter(CtrSpillBytes).Add(t.SpillBytes)
			r.Counter(CtrCombineInPairs).Add(t.CombineInPairs)
			r.Counter(CtrCombineOutPairs).Add(t.CombineOutPairs)
			if t.ShuffleOutBytes > 0 {
				histTask.Observe(t.ShuffleOutBytes)
			}
			for _, se := range t.SendEvents {
				histFlush.Observe(se.Bytes)
			}
			if t.Recovered {
				r.Counter(CtrTasksRecovered).Inc()
			}
			if t.Speculative {
				r.Counter(CtrTasksSpeculative).Inc()
			}
		}
	}
	fold(st.Producers)
	fold(st.Consumers)
}
