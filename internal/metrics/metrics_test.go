package metrics

import (
	"sync"
	"testing"

	"hivempi/internal/trace"
)

// TestNilSafety: a nil registry and the nil metrics it hands out must
// absorb every operation — instrumented code holds them unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Error("nil counter reported a value")
	}
	g := r.Gauge("y")
	g.Set(42)
	if g.Value() != 0 || g.High() != 0 {
		t.Error("nil gauge reported a value")
	}
	r.Add("z", 1)
	if r.Snapshot() != nil || r.Names() != nil {
		t.Error("nil registry snapshot/names not nil")
	}
	FoldStage(r, &trace.Stage{Engine: "datampi"})
}

// TestRegistryConcurrent hammers lookup+update from many goroutines;
// run under -race (obscheck does) this proves the lock-cheap claim.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter(CtrShuffleOutBytes).Inc()
				r.Gauge(GaugeIMUsedBytes).Set(id*1000 + int64(j))
			}
		}(int64(i))
	}
	wg.Wait()
	if got := r.Counter(CtrShuffleOutBytes).Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if hi := r.Gauge(GaugeIMUsedBytes).High(); hi != 7999 {
		t.Errorf("gauge high-water = %d, want 7999", hi)
	}
}

// TestSnapshotGaugeHWM: snapshot exposes a ".hwm" entry only when the
// high-water mark differs from the current value.
func TestSnapshotGaugeHWM(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge(GaugeIMUsedBytes)
	g.Set(100)
	g.Set(40)
	snap := r.Snapshot()
	if snap[GaugeIMUsedBytes] != 40 {
		t.Errorf("gauge value = %d, want 40", snap[GaugeIMUsedBytes])
	}
	if snap[GaugeIMUsedBytes+".hwm"] != 100 {
		t.Errorf("gauge hwm = %d, want 100", snap[GaugeIMUsedBytes+".hwm"])
	}
	g.Set(100)
	if snap = r.Snapshot(); snap[GaugeIMUsedBytes+".hwm"] != 0 {
		t.Error("hwm entry emitted when equal to current value")
	}
}

// TestFoldStage: one call accumulates task counts, shuffle/spill
// volume and fault accounting with the documented names.
func TestFoldStage(t *testing.T) {
	r := NewRegistry()
	st := &trace.Stage{
		Engine:      "datampi",
		Attempts:    3,
		TaskRetries: 2,
		Producers: []*trace.Task{
			{ShuffleOutBytes: 100, ShuffleOutPairs: 10, SpillCount: 1, SpillBytes: 50,
				CombineInPairs: 10, CombineOutPairs: 4},
			{ShuffleOutBytes: 200, ShuffleOutPairs: 20, Recovered: true},
		},
		Consumers: []*trace.Task{{Speculative: true}},
	}
	FoldStage(r, st)
	want := map[string]int64{
		CtrTasksPrefix + "datampi": 3,
		CtrStageRetries:            2,
		CtrTaskRetries:             2,
		CtrShuffleOutBytes:         300,
		CtrShuffleOutPairs:         30,
		CtrSpillCount:              1,
		CtrSpillBytes:              50,
		CtrCombineInPairs:          10,
		CtrCombineOutPairs:         4,
		CtrTasksRecovered:          1,
		CtrTasksSpeculative:        1,
	}
	snap := r.Snapshot()
	for name, v := range want {
		if snap[name] != v {
			t.Errorf("%s = %d, want %d", name, snap[name], v)
		}
	}
}
