package vec

import (
	"math/rand"
	"testing"

	"hivempi/internal/types"
)

func TestVectorDatumRoundTrip(t *testing.T) {
	cases := []types.Datum{
		types.Int(42),
		types.Bool(true),
		types.Bool(false),
		types.Float(3.5),
		types.String("abc"),
		types.Date(19000),
		types.Null(),
	}
	for _, d := range cases {
		kind := d.K
		if d.IsNull() {
			kind = KindAny
		}
		v := NewVector(kind, 4)
		v.SetDatum(2, d)
		got := v.Datum(2)
		if got != d {
			t.Errorf("round trip %v: got %v", d, got)
		}
	}
}

func TestNullBitmap(t *testing.T) {
	v := NewVector(types.KindInt, 200)
	if v.AnyNulls(200) {
		t.Fatal("fresh vector reports nulls")
	}
	v.SetNull(0)
	v.SetNull(63)
	v.SetNull(64)
	v.SetNull(199)
	for i := 0; i < 200; i++ {
		want := i == 0 || i == 63 || i == 64 || i == 199
		if v.Null(i) != want {
			t.Fatalf("Null(%d) = %v, want %v", i, v.Null(i), want)
		}
	}
	if !v.AnyNulls(200) {
		t.Error("AnyNulls missed set bits")
	}
	edge := NewVector(types.KindInt, 200)
	edge.SetNull(63)
	if edge.AnyNulls(63) {
		t.Error("AnyNulls(63) sees bit 63")
	}
	if !edge.AnyNulls(64) {
		t.Error("AnyNulls(64) misses bit 63")
	}
	v.ClearNull(63)
	if v.Null(63) {
		t.Error("ClearNull(63) had no effect")
	}
}

func TestAnyNullsTailWordMasking(t *testing.T) {
	v := NewVector(types.KindInt, 128)
	v.SetNull(100)
	if v.AnyNulls(100) {
		t.Error("bit 100 visible at n=100")
	}
	if !v.AnyNulls(101) {
		t.Error("bit 100 invisible at n=101")
	}
}

func TestOrNullsFrom(t *testing.T) {
	a := NewVector(types.KindInt, 130)
	b := NewVector(types.KindInt, 130)
	a.SetNull(5)
	b.SetNull(77)
	out := NewVector(types.KindInt, 130)
	out.CopyNullsFrom(a, 130)
	out.OrNullsFrom(b, 130)
	for i := 0; i < 130; i++ {
		want := i == 5 || i == 77
		if out.Null(i) != want {
			t.Fatalf("merged Null(%d) = %v, want %v", i, out.Null(i), want)
		}
	}
}

func TestResetClearsNullsAndRetypes(t *testing.T) {
	v := NewVector(types.KindString, 64)
	v.SetDatum(0, types.String("x"))
	v.SetNull(10)
	v.Reset(types.KindInt, 64)
	if v.AnyNulls(64) {
		t.Error("Reset kept null bits")
	}
	v.SetDatum(0, types.Int(7))
	if got := v.Datum(0); got != types.Int(7) {
		t.Errorf("after retype: %v", got)
	}
}

func TestKindNullVectorIsAllNull(t *testing.T) {
	v := NewVector(types.KindNull, 10)
	for i := 0; i < 10; i++ {
		if !v.Datum(i).IsNull() {
			t.Fatalf("row %d not null", i)
		}
	}
}

func TestBatchCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		b := NewBatch(3, n)
		b.Cols[0].Reset(types.KindInt, n)
		b.Cols[1].Reset(types.KindString, n)
		b.Cols[2].Reset(KindAny, n)
		b.N = n
		type rowVal struct{ a, b, c types.Datum }
		var want []rowVal
		mask := make([]bool, n)
		for i := 0; i < n; i++ {
			ra, rb, rc := types.Int(int64(i)), types.String(string(rune('a'+i%26))), types.Float(float64(i)/2)
			if i%7 == 0 {
				ra = types.Null()
			}
			b.Cols[0].SetDatum(i, ra)
			b.Cols[1].SetDatum(i, rb)
			b.Cols[2].SetDatum(i, rc)
			mask[i] = rng.Intn(2) == 0
			if mask[i] {
				want = append(want, rowVal{ra, rb, rc})
			}
		}
		b.Compact(mask)
		if b.N != len(want) {
			t.Fatalf("trial %d: N=%d, want %d", trial, b.N, len(want))
		}
		for i, w := range want {
			got := rowVal{b.Cols[0].Datum(i), b.Cols[1].Datum(i), b.Cols[2].Datum(i)}
			if got != w {
				t.Fatalf("trial %d row %d: got %+v want %+v", trial, i, got, w)
			}
		}
	}
}

func TestBatchRowMaterialize(t *testing.T) {
	b := NewBatch(2, 4)
	b.Cols[0].Reset(types.KindInt, 4)
	b.Cols[1].Reset(types.KindString, 4)
	b.N = 2
	b.Cols[0].SetDatum(0, types.Int(1))
	b.Cols[1].SetDatum(0, types.Null())
	row := b.Row(0, nil)
	if row[0] != types.Int(1) || !row[1].IsNull() {
		t.Errorf("row = %v", row)
	}
	// Reuse: same backing array when capacity suffices.
	row2 := b.Row(1, row)
	if &row2[0] != &row[0] {
		t.Error("Row reallocated despite capacity")
	}
}

func TestPoolReuse(t *testing.T) {
	b := Get(3)
	if len(b.Cols) != 3 || b.N != 0 {
		t.Fatalf("Get: cols=%d n=%d", len(b.Cols), b.N)
	}
	b.Cols[0].Reset(types.KindString, 8)
	b.Cols[0].SetDatum(0, types.String("retained?"))
	b.N = 1
	Put(b)
	g := Get(2)
	if len(g.Cols) != 2 {
		t.Fatalf("Get(2): cols=%d", len(g.Cols))
	}
	for _, v := range g.Cols {
		for _, s := range v.Str {
			if s != "" {
				t.Error("pooled batch retained string payload")
			}
		}
	}
}
