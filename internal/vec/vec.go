// Package vec is the columnar batch layer under the vectorized
// execution path: fixed-capacity column vectors with null bitmaps, the
// Batch container operators hand each other, and a pool that recycles
// batch memory across stages. The layout follows the classic
// vectorized-engine shape (one typed payload array per column plus a
// validity bitmap) so expression kernels in internal/exec run tight
// per-kind loops instead of per-row Datum dispatch.
//
// Conventions:
//   - Null bitmap: bit i SET means row i is NULL (the inverse of the
//     ORC presence stream, which storage converts at decode time).
//     Typed payload slots under a set bit hold garbage and must not be
//     read.
//   - Typed payloads: KindInt/KindBool/KindDate share I64 (bool as
//     0/1, date as epoch days, matching Datum.I), KindFloat uses F64,
//     KindString uses Str. KindAny keeps whole Datums in Any for
//     mixed-kind results (e.g. CASE arms of different types).
//   - Filters compact batches in place (no selection vectors), so a
//     vector never aliases another vector's payload.
package vec

import (
	"sync"

	"hivempi/internal/types"
)

// DefaultSize is the row capacity operators use for batches: big
// enough to amortize per-batch overhead, small enough that a projected
// stripe's working set stays cache-resident.
const DefaultSize = 1024

// KindAny marks a vector in datum mode: values live in Any as whole
// Datums. It is outside the types.Kind enum on purpose — storage never
// produces it; only expression kernels with mixed-kind outputs do.
const KindAny = types.Kind(0xFF)

// Vector is one column of a batch: a typed payload array selected by
// Kind plus a null bitmap. Length is owned by the enclosing Batch (its
// N); a vector only guarantees capacity.
type Vector struct {
	Kind types.Kind
	I64  []int64       // KindInt, KindBool (0/1), KindDate (epoch days)
	F64  []float64     // KindFloat
	Str  []string      // KindString
	Any  []types.Datum // KindAny mixed-kind values

	nulls []uint64 // bit set = NULL
}

// NewVector returns a vector typed kind with capacity for n rows.
func NewVector(kind types.Kind, n int) *Vector {
	v := &Vector{}
	v.Reset(kind, n)
	return v
}

// Reset re-types the vector and guarantees capacity for n rows with
// all-valid (zeroed) nulls. Payload memory is reused when the previous
// use was at least as large.
func (v *Vector) Reset(kind types.Kind, n int) {
	v.Kind = kind
	switch kind {
	case types.KindInt, types.KindBool, types.KindDate:
		if cap(v.I64) < n {
			v.I64 = make([]int64, n)
		}
		v.I64 = v.I64[:cap(v.I64)]
	case types.KindFloat:
		if cap(v.F64) < n {
			v.F64 = make([]float64, n)
		}
		v.F64 = v.F64[:cap(v.F64)]
	case types.KindString:
		if cap(v.Str) < n {
			v.Str = make([]string, n)
		}
		v.Str = v.Str[:cap(v.Str)]
	case KindAny:
		if cap(v.Any) < n {
			v.Any = make([]types.Datum, n)
		}
		v.Any = v.Any[:cap(v.Any)]
	case types.KindNull:
		// No payload; every row is null via the bitmap below.
	}
	words := (n + 63) / 64
	if cap(v.nulls) < words {
		v.nulls = make([]uint64, words)
	}
	v.nulls = v.nulls[:cap(v.nulls)]
	for i := range v.nulls {
		v.nulls[i] = 0
	}
	if kind == types.KindNull {
		v.SetNullRange(0, n)
	}
}

// Null reports whether row i is NULL.
func (v *Vector) Null(i int) bool {
	return v.nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

// SetNull marks row i NULL.
func (v *Vector) SetNull(i int) {
	v.nulls[i>>6] |= 1 << (uint(i) & 63)
}

// ClearNull marks row i valid.
func (v *Vector) ClearNull(i int) {
	v.nulls[i>>6] &^= 1 << (uint(i) & 63)
}

// SetNullRange marks rows [lo,hi) NULL.
func (v *Vector) SetNullRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		v.SetNull(i)
	}
}

// AnyNulls reports whether any of the first n rows is NULL — the
// kernel fast-path check that skips per-row null tests entirely.
func (v *Vector) AnyNulls(n int) bool {
	full, rem := n>>6, uint(n)&63
	for i := 0; i < full; i++ {
		if v.nulls[i] != 0 {
			return true
		}
	}
	return rem != 0 && v.nulls[full]&((uint64(1)<<rem)-1) != 0
}

// NullWords exposes the bitmap words covering n rows for word-wise
// merges. The final word may carry bits past n; callers mask.
func (v *Vector) NullWords(n int) []uint64 {
	return v.nulls[:(n+63)/64]
}

// CopyNullsFrom overwrites v's bitmap for n rows with src's.
func (v *Vector) CopyNullsFrom(src *Vector, n int) {
	copy(v.nulls[:(n+63)/64], src.nulls)
}

// OrNullsFrom ORs src's bitmap for n rows into v's (binary-operator
// null propagation: result null where either input is).
func (v *Vector) OrNullsFrom(src *Vector, n int) {
	words := (n + 63) / 64
	for i := 0; i < words; i++ {
		v.nulls[i] |= src.nulls[i]
	}
}

// Datum materializes row i as a types.Datum (types.Null() under a set
// null bit). It is the slow-path bridge to row-mode code; kernels use
// the typed payloads directly.
func (v *Vector) Datum(i int) types.Datum {
	if v.Null(i) {
		return types.Null()
	}
	switch v.Kind {
	case types.KindInt:
		return types.Int(v.I64[i])
	case types.KindBool:
		return types.Bool(v.I64[i] != 0)
	case types.KindDate:
		return types.Date(v.I64[i])
	case types.KindFloat:
		return types.Float(v.F64[i])
	case types.KindString:
		return types.String(v.Str[i])
	case KindAny:
		return v.Any[i]
	}
	return types.Null()
}

// SetDatum stores d at row i. The vector's Kind must already accept
// d's kind (same kind, or KindAny); a null datum sets the null bit.
func (v *Vector) SetDatum(i int, d types.Datum) {
	if d.IsNull() {
		v.SetNull(i)
		return
	}
	v.ClearNull(i)
	switch v.Kind {
	case types.KindInt, types.KindBool, types.KindDate:
		v.I64[i] = d.I
	case types.KindFloat:
		v.F64[i] = d.F
	case types.KindString:
		v.Str[i] = d.S
	case KindAny:
		v.Any[i] = d
	}
}

// CopyFrom makes v an independent copy of src's first n rows (payload
// and null bitmap). Kernels use it for column references: the filter
// compacts batches in place, so outputs never alias batch columns.
func (v *Vector) CopyFrom(src *Vector, n int) {
	v.Reset(src.Kind, n)
	switch src.Kind {
	case types.KindInt, types.KindBool, types.KindDate:
		copy(v.I64, src.I64[:n])
	case types.KindFloat:
		copy(v.F64, src.F64[:n])
	case types.KindString:
		copy(v.Str, src.Str[:n])
	case KindAny:
		copy(v.Any, src.Any[:n])
	}
	v.CopyNullsFrom(src, n)
}

// move copies row src to row dst within the vector (batch compaction).
func (v *Vector) move(dst, src int) {
	switch v.Kind {
	case types.KindInt, types.KindBool, types.KindDate:
		v.I64[dst] = v.I64[src]
	case types.KindFloat:
		v.F64[dst] = v.F64[src]
	case types.KindString:
		v.Str[dst] = v.Str[src]
	case KindAny:
		v.Any[dst] = v.Any[src]
	}
	if v.Null(src) {
		v.SetNull(dst)
	} else {
		v.ClearNull(dst)
	}
}

// Batch is a set of equal-length column vectors. N is the live row
// count; vectors guarantee capacity ≥ N.
type Batch struct {
	Cols []*Vector
	N    int
}

// NewBatch returns a batch of ncols untyped vectors with capacity for
// n rows each. Callers Reset each column to its kind before writing.
func NewBatch(ncols, n int) *Batch {
	b := &Batch{Cols: make([]*Vector, ncols)}
	for i := range b.Cols {
		b.Cols[i] = NewVector(types.KindNull, n)
	}
	return b
}

// Row materializes batch row i into dst (grown as needed) for row-mode
// bridges: kernels falling back to Eval, and operators not yet
// vectorized.
func (b *Batch) Row(i int, dst types.Row) types.Row {
	if cap(dst) < len(b.Cols) {
		dst = make(types.Row, len(b.Cols))
	}
	dst = dst[:len(b.Cols)]
	for c, v := range b.Cols {
		dst[c] = v.Datum(i)
	}
	return dst
}

// Compact keeps exactly the rows whose mask bit is true, preserving
// order, moving survivors to the front of every column in place, and
// updates N. mask must cover b.N rows.
func (b *Batch) Compact(mask []bool) {
	out := 0
	for i := 0; i < b.N; i++ {
		if !mask[i] {
			continue
		}
		if out != i {
			for _, v := range b.Cols {
				v.move(out, i)
			}
		}
		out++
	}
	b.N = out
}

// Pool recycles batches across operator invocations so steady-state
// batch flow allocates nothing. Get returns a batch with at least
// ncols column headers; callers Reset columns per use (Reset reuses
// payload memory), set N, and Put the batch back when its rows are
// dead.
var pool = sync.Pool{New: func() any { return &Batch{} }}

// Get returns a pooled batch resized to ncols columns. Column vectors
// keep whatever payload capacity their previous use grew.
func Get(ncols int) *Batch {
	b := pool.Get().(*Batch)
	for len(b.Cols) < ncols {
		b.Cols = append(b.Cols, &Vector{})
	}
	b.Cols = b.Cols[:ncols]
	b.N = 0
	return b
}

// Put returns a batch to the pool. String/datum payloads are cleared
// so pooled batches do not pin row data.
func Put(b *Batch) {
	for _, v := range b.Cols {
		for i := range v.Str {
			v.Str[i] = ""
		}
		for i := range v.Any {
			v.Any[i] = types.Datum{}
		}
	}
	pool.Put(b)
}
