package vec

import (
	"testing"

	"hivempi/internal/types"
)

// benchBatch builds a DefaultSize batch with an int, a float and a
// string column, every 16th lane NULL.
func benchBatch() *Batch {
	b := &Batch{N: DefaultSize}
	b.Cols = []*Vector{
		NewVector(types.KindInt, DefaultSize),
		NewVector(types.KindFloat, DefaultSize),
		NewVector(types.KindString, DefaultSize),
	}
	for i := 0; i < DefaultSize; i++ {
		b.Cols[0].I64[i] = int64(i % 97)
		b.Cols[1].F64[i] = float64(i) * 0.25
		b.Cols[2].Str[i] = "lane"
		if i%16 == 0 {
			b.Cols[1].SetNull(i)
		}
	}
	return b
}

func BenchmarkBatchCompact(b *testing.B) {
	src := benchBatch()
	mask := make([]bool, DefaultSize)
	for i := range mask {
		mask[i] = i%3 != 0
	}
	scratch := &Batch{Cols: []*Vector{{}, {}, {}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c, v := range scratch.Cols {
			v.CopyFrom(src.Cols[c], src.N)
		}
		scratch.N = src.N
		scratch.Compact(mask)
	}
}

func BenchmarkBatchRowMaterialize(b *testing.B) {
	src := benchBatch()
	var row types.Row
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row = src.Row(i%src.N, row)
	}
}

func BenchmarkVectorSetDatum(b *testing.B) {
	v := NewVector(KindAny, DefaultSize)
	d := types.Float(3.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.SetDatum(i%DefaultSize, d)
	}
}

// BenchmarkPoolCycle measures the steady-state Get/Reset/Put loop every
// operator runs per batch.
func BenchmarkPoolCycle(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Get(4)
		for _, v := range out.Cols {
			v.Reset(KindAny, DefaultSize)
		}
		out.N = DefaultSize
		Put(out)
	}
}
