// Package hadoop implements the baseline MapReduce execution engine the
// paper compares against: a slot-scheduled job runner where map tasks
// partition, sort and spill their output to local disk, and reduce
// tasks pull completed map outputs (the copy phase can only start once
// at least one map task has finished), merge the sorted segments and
// run the reducer over key groups.
//
// The structural differences from the DataMPI engine are deliberate and
// are exactly what the paper measures: pull-based coarse-grained
// shuffle versus push-based fine-grained overlap, and mandatory local
// disk materialization of map output versus in-memory caching.
package hadoop

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"hivempi/internal/trace"
)

// Defaults mirroring the paper's Hadoop 1.2.1 configuration.
const (
	DefaultSortBufferBytes = 1 << 20 // io.sort.mb analogue (scaled)
	DefaultMapSlots        = 4
	DefaultReduceSlots     = 4
)

// Partitioner routes a key to one of n reduce tasks.
type Partitioner func(key []byte, n int) int

// Combiner optionally folds same-key values during the map-side sort.
type Combiner func(key []byte, values [][]byte) [][]byte

// Config describes one MapReduce job.
type Config struct {
	NumMaps    int
	NumReduces int

	Partitioner     Partitioner
	Combiner        Combiner
	SortBufferBytes int // map-side buffer before a sort+spill
	MapSlots        int // concurrent map tasks (cluster-wide)
	ReduceSlots     int // concurrent reduce tasks
	SpillDir        string

	// Hosts optionally assigns map task i to Hosts[i] for locality
	// accounting (length NumMaps when set).
	Hosts []string

	// MaxAttempts re-runs a failed map task (mapred.map.max.attempts;
	// MapReduce's fault tolerance — the DataMPI engine deliberately has
	// none, like MPI). Default 1 (no retry).
	MaxAttempts int
}

func (c *Config) fill() error {
	if c.NumMaps <= 0 {
		return fmt.Errorf("hadoop: NumMaps=%d must be positive", c.NumMaps)
	}
	if c.NumReduces < 0 {
		return fmt.Errorf("hadoop: NumReduces=%d must be non-negative", c.NumReduces)
	}
	if c.Partitioner == nil {
		c.Partitioner = defaultPartitioner
	}
	if c.SortBufferBytes <= 0 {
		c.SortBufferBytes = DefaultSortBufferBytes
	}
	if c.MapSlots <= 0 {
		c.MapSlots = DefaultMapSlots
	}
	if c.ReduceSlots <= 0 {
		c.ReduceSlots = DefaultReduceSlots
	}
	if c.SpillDir == "" {
		c.SpillDir = os.TempDir()
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.Hosts != nil && len(c.Hosts) != c.NumMaps {
		return fmt.Errorf("hadoop: Hosts has %d entries, want %d", len(c.Hosts), c.NumMaps)
	}
	return nil
}

func defaultPartitioner(key []byte, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(n))
}

// MapBody is the map task body: read the task's input and emit pairs.
type MapBody func(*MapContext) error

// ReduceBody is the reduce task body: consume key groups.
type ReduceBody func(*ReduceContext) error

// Job is one MapReduce execution.
type Job struct {
	cfg Config

	mapMetrics    []*trace.Task
	reduceMetrics []*trace.Task

	// comm is the stage's communication matrix, recorded by the reduce
	// copy phase (one segment pull per completed (map, reduce) pair).
	comm *trace.CommMatrix

	// mapOutputs[m] is set when map m completes; reducers pull from it.
	mapOutputs []*mapOutput
	completed  chan int // map IDs in completion order
}

// mapOutput is the materialized, partition-indexed output of one map
// task (the file.out + index of real Hadoop). Data lives in a local
// temp file; offsets[p]..offsets[p+1] delimit partition p.
type mapOutput struct {
	file    *os.File
	offsets []int64
}

func (mo *mapOutput) partition(p int) ([]byte, error) {
	lo, hi := mo.offsets[p], mo.offsets[p+1]
	buf := make([]byte, hi-lo)
	if _, err := mo.file.ReadAt(buf, lo); err != nil && !(err == io.EOF && int64(len(buf)) == hi-lo) {
		return nil, err
	}
	return buf, nil
}

// NewJob validates the configuration.
func NewJob(cfg Config) (*Job, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	j := &Job{cfg: cfg}
	j.mapMetrics = make([]*trace.Task, cfg.NumMaps)
	for i := range j.mapMetrics {
		host := ""
		if cfg.Hosts != nil {
			host = cfg.Hosts[i]
		}
		j.mapMetrics[i] = &trace.Task{ID: i, Kind: trace.KindMap,
			Host: host, CollectSizes: trace.NewSizeHistogram(),
			PartitionBytes: make([]int64, cfg.NumReduces)}
	}
	j.reduceMetrics = make([]*trace.Task, cfg.NumReduces)
	for i := range j.reduceMetrics {
		j.reduceMetrics[i] = &trace.Task{ID: i, Kind: trace.KindReduce}
	}
	j.mapOutputs = make([]*mapOutput, cfg.NumMaps)
	j.completed = make(chan int, cfg.NumMaps)
	j.comm = trace.NewCommMatrix(cfg.NumMaps, cfg.NumReduces)
	return j, nil
}

// Comm returns the job's communication matrix (valid after Run; nil for
// map-only jobs). Cell (m, r) holds the post-combiner segment bytes
// reduce r pulled from map m, so row sums reconcile with the maps'
// ShuffleOutBytes and column sums with the reduces' ShuffleInBytes.
func (j *Job) Comm() *trace.CommMatrix { return j.comm }

// MapMetrics returns the per-map-task trace records (valid after Run).
func (j *Job) MapMetrics() []*trace.Task { return j.mapMetrics }

// ReduceMetrics returns the per-reduce-task trace records.
func (j *Job) ReduceMetrics() []*trace.Task { return j.reduceMetrics }

// Run executes the job: map tasks run under the map-slot pool; reduce
// tasks run under the reduce-slot pool, each pulling its partition from
// every completed map output, merging and reducing.
func (j *Job) Run(mapBody MapBody, reduceBody ReduceBody) error {
	defer j.cleanup()

	mapErrs := make([]error, j.cfg.NumMaps)
	redErrs := make([]error, max(j.cfg.NumReduces, 1))

	var wg sync.WaitGroup

	// Reduce tasks start immediately: their copy loops block on the
	// completion channel, so copying overlaps the tail of the map phase
	// but no segment moves before its producing map finished.
	redSem := make(chan struct{}, j.cfg.ReduceSlots)
	if j.cfg.NumReduces > 0 {
		fanout := newCompletionFanout(j.completed, j.cfg.NumMaps, j.cfg.NumReduces)
		for r := 0; r < j.cfg.NumReduces; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				redSem <- struct{}{}
				defer func() { <-redSem }()
				redErrs[r] = j.runReduce(r, fanout.subscribe(r), reduceBody)
			}(r)
		}
	}

	mapSem := make(chan struct{}, j.cfg.MapSlots)
	for m := 0; m < j.cfg.NumMaps; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			mapSem <- struct{}{}
			defer func() { <-mapSem }()
			mapErrs[m] = j.runMap(m, mapBody)
			j.completed <- m
		}(m)
	}

	wg.Wait()
	return errors.Join(errors.Join(mapErrs...), errors.Join(redErrs...))
}

// completionFanout replicates the map-completion stream to every reducer.
type completionFanout struct {
	subs []chan int
}

func newCompletionFanout(src chan int, numMaps, numReduces int) *completionFanout {
	f := &completionFanout{subs: make([]chan int, numReduces)}
	for i := range f.subs {
		f.subs[i] = make(chan int, numMaps)
	}
	go func() {
		for i := 0; i < numMaps; i++ {
			m := <-src
			for _, s := range f.subs {
				s <- m
			}
		}
		for _, s := range f.subs {
			close(s)
		}
	}()
	return f
}

func (f *completionFanout) subscribe(r int) <-chan int { return f.subs[r] }

func (j *Job) cleanup() {
	for _, mo := range j.mapOutputs {
		if mo != nil && mo.file != nil {
			name := mo.file.Name()
			mo.file.Close()
			os.Remove(name)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
