package hadoop

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMapRetryRecoversFromTransientFailure injects a one-shot failure
// into a map task and verifies the job still produces complete,
// correct output.
func TestMapRetryRecoversFromTransientFailure(t *testing.T) {
	words, want := wordCorpus(3000)
	job, err := NewJob(Config{
		NumMaps: 4, NumReduces: 2, MaxAttempts: 3, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var failed atomic.Bool
	var mu sync.Mutex
	counts := map[string]int{}
	per := (len(words) + 3) / 4
	err = job.Run(
		func(m *MapContext) error {
			lo, hi := m.TaskID()*per, (m.TaskID()+1)*per
			if hi > len(words) {
				hi = len(words)
			}
			for i, w := range words[lo:hi] {
				// Fail task 2 halfway through its first attempt, after
				// it already emitted (and possibly spilled) pairs.
				if m.TaskID() == 2 && i == 100 && failed.CompareAndSwap(false, true) {
					return fmt.Errorf("injected transient failure")
				}
				if err := m.Emit([]byte(w), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		},
		func(r *ReduceContext) error {
			for {
				key, vals, err := r.NextGroup()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				mu.Lock()
				counts[string(key)] += len(vals)
				mu.Unlock()
			}
		})
	if err != nil {
		t.Fatalf("job failed despite retry budget: %v", err)
	}
	if !failed.Load() {
		t.Fatal("failure was never injected")
	}
	checkCounts(t, counts, want)
}

// TestMapRetryExhaustionFailsJob verifies a persistently failing task
// surfaces its error after MaxAttempts.
func TestMapRetryExhaustionFailsJob(t *testing.T) {
	var attempts atomic.Int32
	job, err := NewJob(Config{NumMaps: 1, NumReduces: 1, MaxAttempts: 3, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	err = job.Run(
		func(m *MapContext) error {
			attempts.Add(1)
			return fmt.Errorf("permanent failure")
		},
		func(r *ReduceContext) error {
			for {
				if _, _, err := r.NextGroup(); err == io.EOF {
					return nil
				} else if err != nil {
					return err
				}
			}
		})
	if err == nil || !strings.Contains(err.Error(), "permanent failure") {
		t.Fatalf("expected surfaced failure, got %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("task attempted %d times, want 3", got)
	}
	if !strings.Contains(err.Error(), "attempt 3") {
		t.Errorf("error should name the final attempt: %v", err)
	}
}

// TestRetryDoesNotDoubleCount ensures a retried task's metrics reflect
// only the successful attempt.
func TestRetryDoesNotDoubleCount(t *testing.T) {
	job, err := NewJob(Config{NumMaps: 1, NumReduces: 1, MaxAttempts: 2, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var failed atomic.Bool
	err = job.Run(
		func(m *MapContext) error {
			for i := 0; i < 50; i++ {
				if err := m.Emit([]byte{byte(i)}, []byte("v")); err != nil {
					return err
				}
			}
			if failed.CompareAndSwap(false, true) {
				return fmt.Errorf("fail after emitting")
			}
			return nil
		},
		func(r *ReduceContext) error {
			n := 0
			for {
				_, vals, err := r.NextGroup()
				if err == io.EOF {
					if n != 50 {
						return fmt.Errorf("reduce saw %d pairs, want 50", n)
					}
					return nil
				}
				if err != nil {
					return err
				}
				n += len(vals)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := job.MapMetrics()[0].ShuffleOutPairs; got != 50 {
		t.Errorf("metrics count %d pairs, want 50 (no double counting)", got)
	}
}
