package hadoop

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"

	"hivempi/internal/kvio"
	"hivempi/internal/trace"
)

// MapContext is the handle given to a map task body. Emit is the
// OutputCollector.collect analogue: pairs accumulate in the map-side
// sort buffer and are sorted and spilled to local disk when the buffer
// fills, exactly like Hadoop's MapOutputBuffer.
type MapContext struct {
	job     *Job
	taskID  int
	metrics *trace.Task

	pairs      []mapPair
	pairBytes  int
	spills     []*spillFile
	emitCount  int64
	flushMarks []int64
}

type mapPair struct {
	part int
	kv   kvio.KV
}

// spillFile is one sorted run on local disk with per-partition offsets.
type spillFile struct {
	file    *os.File
	offsets []int64 // len NumReduces+1
}

func (j *Job) newMapContext(taskID int) *MapContext {
	return &MapContext{job: j, taskID: taskID, metrics: j.mapMetrics[taskID]}
}

// TaskID returns the map task's index.
func (m *MapContext) TaskID() int { return m.taskID }

// NumReduces returns the job's reduce count.
func (m *MapContext) NumReduces() int { return m.job.cfg.NumReduces }

// Metrics exposes the task's trace record for engine-side counters.
func (m *MapContext) Metrics() *trace.Task { return m.metrics }

// Emit collects one intermediate pair.
func (m *MapContext) Emit(key, value []byte) error {
	if m.job.cfg.NumReduces == 0 {
		return errors.New("hadoop: Emit on a map-only job")
	}
	part := m.job.cfg.Partitioner(key, m.job.cfg.NumReduces)
	if part < 0 || part >= m.job.cfg.NumReduces {
		return fmt.Errorf("hadoop: partitioner returned %d for %d reduces", part, m.job.cfg.NumReduces)
	}
	kv := kvio.KV{
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
	}
	m.pairs = append(m.pairs, mapPair{part: part, kv: kv})
	sz := kv.WireSize()
	m.pairBytes += sz
	m.metrics.CollectSizes.Observe(len(key) + len(value))
	m.metrics.ShuffleOutPairs++
	m.metrics.PartitionBytes[part] += int64(sz)
	m.emitCount++
	if m.pairBytes >= m.job.cfg.SortBufferBytes {
		return m.sortAndSpill()
	}
	return nil
}

// sortAndSpill sorts the buffer by (partition, key) and writes one spill
// run with a partition index, applying the combiner when configured.
func (m *MapContext) sortAndSpill() error {
	if len(m.pairs) == 0 {
		return nil
	}
	sort.SliceStable(m.pairs, func(i, j int) bool {
		if m.pairs[i].part != m.pairs[j].part {
			return m.pairs[i].part < m.pairs[j].part
		}
		return bytes.Compare(m.pairs[i].kv.Key, m.pairs[j].kv.Key) < 0
	})
	f, err := os.CreateTemp(m.job.cfg.SpillDir, "hadoop-spill-*.run")
	if err != nil {
		return fmt.Errorf("hadoop: create spill: %w", err)
	}
	kw := kvio.NewWriter(f)
	offsets := make([]int64, m.job.cfg.NumReduces+1)
	i := 0
	for p := 0; p < m.job.cfg.NumReduces; p++ {
		offsets[p] = kw.BytesWritten()
		j := i
		for j < len(m.pairs) && m.pairs[j].part == p {
			j++
		}
		if err := m.writePartition(kw, m.pairs[i:j]); err != nil {
			f.Close()
			return err
		}
		i = j
	}
	offsets[m.job.cfg.NumReduces] = kw.BytesWritten()
	if err := kw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("hadoop: flush spill: %w", err)
	}
	m.metrics.SpillCount++
	m.metrics.SpillBytes += kw.BytesWritten()
	m.flushMarks = append(m.flushMarks, m.emitCount)
	m.spills = append(m.spills, &spillFile{file: f, offsets: offsets})
	m.pairs = nil
	m.pairBytes = 0
	return nil
}

// writePartition writes one partition's sorted pairs, combining first
// when a combiner is configured.
func (m *MapContext) writePartition(kw *kvio.Writer, pairs []mapPair) error {
	if m.job.cfg.Combiner == nil {
		for _, p := range pairs {
			if err := kw.Write(p.kv); err != nil {
				return fmt.Errorf("hadoop: write spill: %w", err)
			}
		}
		return nil
	}
	i := 0
	for i < len(pairs) {
		j := i + 1
		for j < len(pairs) && bytes.Equal(pairs[j].kv.Key, pairs[i].kv.Key) {
			j++
		}
		vals := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			vals = append(vals, pairs[k].kv.Value)
		}
		m.metrics.CombineInPairs += int64(j - i)
		for _, v := range m.job.cfg.Combiner(pairs[i].kv.Key, vals) {
			if err := kw.Write(kvio.KV{Key: pairs[i].kv.Key, Value: v}); err != nil {
				return fmt.Errorf("hadoop: write combined spill: %w", err)
			}
			m.metrics.CombineOutPairs++
		}
		i = j
	}
	return nil
}

// close runs the final spill and merges all spill runs into the task's
// partition-indexed output file (Hadoop's final merge to file.out).
func (m *MapContext) close() (*mapOutput, error) {
	if m.job.cfg.NumReduces == 0 {
		return nil, nil
	}
	if err := m.sortAndSpill(); err != nil {
		return nil, err
	}
	out, err := os.CreateTemp(m.job.cfg.SpillDir, "hadoop-mapout-*.out")
	if err != nil {
		return nil, fmt.Errorf("hadoop: create map output: %w", err)
	}
	kw := kvio.NewWriter(out)
	offsets := make([]int64, m.job.cfg.NumReduces+1)
	for p := 0; p < m.job.cfg.NumReduces; p++ {
		offsets[p] = kw.BytesWritten()
		sources := make([]kvio.Source, 0, len(m.spills))
		for _, sp := range m.spills {
			lo, hi := sp.offsets[p], sp.offsets[p+1]
			if hi == lo {
				continue
			}
			buf := make([]byte, hi-lo)
			if _, err := sp.file.ReadAt(buf, lo); err != nil {
				out.Close()
				return nil, fmt.Errorf("hadoop: read spill segment: %w", err)
			}
			kvs, err := kvio.DecodeAll(buf)
			if err != nil {
				out.Close()
				return nil, err
			}
			sources = append(sources, &kvio.SliceSource{KVs: kvs})
		}
		merge, err := kvio.NewMerge(sources)
		if err != nil {
			out.Close()
			return nil, err
		}
		for {
			kv, err := merge.Next()
			if err != nil {
				break
			}
			if werr := kw.Write(kv); werr != nil {
				out.Close()
				return nil, fmt.Errorf("hadoop: write map output: %w", werr)
			}
		}
	}
	offsets[m.job.cfg.NumReduces] = kw.BytesWritten()
	if err := kw.Flush(); err != nil {
		out.Close()
		return nil, fmt.Errorf("hadoop: flush map output: %w", err)
	}
	m.metrics.ShuffleOutBytes = kw.BytesWritten()
	m.metrics.MergeRuns = int64(len(m.spills))
	// Timeline reconstruction mirrors datampi: progress fraction at
	// each spill.
	for _, mark := range m.flushMarks {
		prog := 1.0
		if m.emitCount > 0 {
			prog = float64(mark) / float64(m.emitCount)
		}
		m.metrics.SendEvents = append(m.metrics.SendEvents, trace.SendEvent{
			Progress: prog,
			Bytes:    m.metrics.SpillBytes / int64(max(len(m.flushMarks), 1)),
		})
	}
	// Spill runs are merged; release them.
	for _, sp := range m.spills {
		name := sp.file.Name()
		sp.file.Close()
		os.Remove(name)
	}
	m.spills = nil
	return &mapOutput{file: out, offsets: offsets}, nil
}

// abandon discards a failed attempt's spill files.
func (m *MapContext) abandon() {
	for _, sp := range m.spills {
		name := sp.file.Name()
		sp.file.Close()
		os.Remove(name)
	}
	m.spills = nil
}

// runMap executes one map task under the slot pool, retrying failed
// attempts up to MaxAttempts (Hadoop's speculative-free re-execution;
// the reduce side never observes a partial attempt because outputs
// publish atomically on success).
func (j *Job) runMap(taskID int, body MapBody) error {
	var lastErr error
	for attempt := 1; attempt <= j.cfg.MaxAttempts; attempt++ {
		ctx := j.newMapContext(taskID)
		if attempt > 1 {
			// Fresh metrics for the re-run so counters aren't doubled.
			host := j.mapMetrics[taskID].Host
			j.mapMetrics[taskID] = &trace.Task{ID: taskID, Kind: trace.KindMap,
				Host: host, CollectSizes: trace.NewSizeHistogram(),
				PartitionBytes: make([]int64, j.cfg.NumReduces)}
			ctx.metrics = j.mapMetrics[taskID]
		}
		// Attempt count survives into the stage trace so the perfmodel
		// can charge re-execution plus per-attempt retry backoff.
		ctx.metrics.Attempts = attempt
		if err := body(ctx); err != nil {
			ctx.abandon()
			lastErr = fmt.Errorf("map %d attempt %d: %w", taskID, attempt, err)
			continue
		}
		mo, err := ctx.close()
		if err != nil {
			ctx.abandon()
			lastErr = fmt.Errorf("map %d attempt %d close: %w", taskID, attempt, err)
			continue
		}
		j.mapOutputs[taskID] = mo
		return nil
	}
	return lastErr
}
