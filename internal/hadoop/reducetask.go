package hadoop

import (
	"fmt"

	"hivempi/internal/kvio"
	"hivempi/internal/trace"
)

// ReduceContext is the handle given to a reduce task body after the
// copy and merge phases completed: NextGroup iterates key groups in
// global key order, mirroring Hive's ExecReducer input.
type ReduceContext struct {
	job     *Job
	taskID  int
	metrics *trace.Task
	grouper *kvio.Grouper
}

// TaskID returns the reduce task's index.
func (r *ReduceContext) TaskID() int { return r.taskID }

// NumReduces returns the job's reduce count.
func (r *ReduceContext) NumReduces() int { return r.job.cfg.NumReduces }

// Metrics exposes the task's trace record for engine-side counters.
func (r *ReduceContext) Metrics() *trace.Task { return r.metrics }

// NextGroup returns the next key and its values, or io.EOF.
func (r *ReduceContext) NextGroup() ([]byte, [][]byte, error) {
	k, vs, err := r.grouper.NextGroup()
	if err == nil {
		r.metrics.ReduceGroups++
	}
	return k, vs, err
}

// runReduce executes one reduce task: the copy phase pulls this task's
// partition from each map output as the map completes (never earlier —
// Hadoop's coarse-grained shuffle), then a k-way merge feeds the body.
func (j *Job) runReduce(taskID int, completions <-chan int, body ReduceBody) error {
	metrics := j.reduceMetrics[taskID]

	// Copy phase.
	type segment struct {
		mapID int
		data  []byte
	}
	segments := make([]segment, 0, j.cfg.NumMaps)
	for m := range completions {
		mo := j.mapOutputs[m]
		if mo == nil {
			// The producing map failed; the job error surfaces from it.
			continue
		}
		seg, err := mo.partition(taskID)
		if err != nil {
			return fmt.Errorf("reduce %d copy from map %d: %w", taskID, m, err)
		}
		if len(seg) > 0 {
			segments = append(segments, segment{mapID: m, data: seg})
			metrics.ShuffleInBytes += int64(len(seg))
			j.comm.AddMessage(m, taskID, int64(len(seg)))
		}
	}

	// Merge phase: each segment is key-sorted by the map-side merge.
	sources := make([]kvio.Source, 0, len(segments))
	for _, seg := range segments {
		kvs, err := kvio.DecodeAll(seg.data)
		if err != nil {
			return fmt.Errorf("reduce %d decode segment: %w", taskID, err)
		}
		metrics.ShuffleInPairs += int64(len(kvs))
		j.comm.AddRecords(seg.mapID, taskID, int64(len(kvs)))
		sources = append(sources, &kvio.SliceSource{KVs: kvs})
	}
	metrics.MergeRuns = int64(len(sources))
	merge, err := kvio.NewMerge(sources)
	if err != nil {
		return err
	}

	if body == nil {
		return nil
	}
	ctx := &ReduceContext{job: j, taskID: taskID, metrics: metrics, grouper: kvio.NewGrouper(merge)}
	if err := body(ctx); err != nil {
		return fmt.Errorf("reduce %d: %w", taskID, err)
	}
	return nil
}
