package hadoop

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// runWordCount executes a word-count job over the corpus.
func runWordCount(t *testing.T, cfg Config, words []string) (map[string]int, *Job) {
	t.Helper()
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	counts := map[string]int{}
	per := (len(words) + cfg.NumMaps - 1) / cfg.NumMaps
	err = job.Run(
		func(m *MapContext) error {
			lo, hi := m.TaskID()*per, (m.TaskID()+1)*per
			if hi > len(words) {
				hi = len(words)
			}
			if lo > len(words) {
				lo = len(words)
			}
			for _, w := range words[lo:hi] {
				if err := m.Emit([]byte(w), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		},
		func(r *ReduceContext) error {
			for {
				key, vals, err := r.NextGroup()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				total := 0
				for _, v := range vals {
					n, _ := strconv.Atoi(string(v))
					total += n
				}
				mu.Lock()
				counts[string(key)] += total
				mu.Unlock()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	return counts, job
}

func wordCorpus(n int) ([]string, map[string]int) {
	words := make([]string, 0, n)
	want := map[string]int{}
	vocab := []string{"apple", "banana", "cherry", "damson", "elder", "fig", "grape"}
	for i := 0; i < n; i++ {
		w := vocab[(i*i+5*i)%len(vocab)]
		words = append(words, w)
		want[w]++
	}
	return words, want
}

func checkCounts(t *testing.T, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d distinct words, want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count[%s] = %d, want %d", w, got[w], c)
		}
	}
}

func TestWordCount(t *testing.T) {
	words, want := wordCorpus(5000)
	got, _ := runWordCount(t, Config{NumMaps: 4, NumReduces: 3, SpillDir: t.TempDir()}, words)
	checkCounts(t, got, want)
}

func TestWordCountTinySortBufferForcesSpills(t *testing.T) {
	words, want := wordCorpus(3000)
	cfg := Config{NumMaps: 3, NumReduces: 2, SortBufferBytes: 256, SpillDir: t.TempDir()}
	got, job := runWordCount(t, cfg, words)
	checkCounts(t, got, want)
	var spills int64
	for _, m := range job.MapMetrics() {
		spills += m.SpillCount
	}
	if spills <= int64(cfg.NumMaps) {
		t.Errorf("expected multiple spills per map, got %d total", spills)
	}
}

func TestCombinerReducesShuffleBytes(t *testing.T) {
	words, want := wordCorpus(4000)
	sum := func(key []byte, values [][]byte) [][]byte {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		return [][]byte{[]byte(strconv.Itoa(total))}
	}
	shuffleBytes := func(comb Combiner) (map[string]int, int64) {
		cfg := Config{NumMaps: 2, NumReduces: 2, Combiner: comb, SpillDir: t.TempDir()}
		got, job := runWordCount(t, cfg, words)
		var b int64
		for _, m := range job.MapMetrics() {
			b += m.ShuffleOutBytes
		}
		return got, b
	}
	plain, plainBytes := shuffleBytes(nil)
	combined, combinedBytes := shuffleBytes(sum)
	checkCounts(t, plain, want)
	checkCounts(t, combined, want)
	if combinedBytes >= plainBytes {
		t.Errorf("combiner did not reduce shuffle: %d >= %d", combinedBytes, plainBytes)
	}
}

func TestReduceGroupsSortedAndDistinct(t *testing.T) {
	job, err := NewJob(Config{NumMaps: 3, NumReduces: 1, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var keys []string
	err = job.Run(
		func(m *MapContext) error {
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("key%03d", (i*11+m.TaskID()*29)%150)
				if err := m.Emit([]byte(k), []byte("x")); err != nil {
					return err
				}
			}
			return nil
		},
		func(r *ReduceContext) error {
			for {
				key, _, err := r.NextGroup()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				mu.Lock()
				keys = append(keys, string(key))
				mu.Unlock()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(keys) {
		t.Error("reduce keys not sorted")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			t.Errorf("duplicate group %q", keys[i])
		}
	}
}

func TestMapOnlyJob(t *testing.T) {
	job, err := NewJob(Config{NumMaps: 2, NumReduces: 0, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var ran sync.WaitGroup
	ran.Add(2)
	err = job.Run(
		func(m *MapContext) error {
			defer ran.Done()
			if err := m.Emit([]byte("k"), []byte("v")); err == nil {
				return fmt.Errorf("Emit should fail on map-only job")
			}
			return nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ran.Wait()
}

func TestMapErrorPropagates(t *testing.T) {
	job, err := NewJob(Config{NumMaps: 2, NumReduces: 1, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	err = job.Run(
		func(m *MapContext) error {
			if m.TaskID() == 1 {
				return fmt.Errorf("mapper exploded")
			}
			return m.Emit([]byte("a"), []byte("b"))
		},
		func(r *ReduceContext) error {
			for {
				if _, _, err := r.NextGroup(); err == io.EOF {
					return nil
				} else if err != nil {
					return err
				}
			}
		})
	if err == nil || !strings.Contains(err.Error(), "mapper exploded") {
		t.Errorf("map error not propagated: %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	job, err := NewJob(Config{NumMaps: 1, NumReduces: 2, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	err = job.Run(
		func(m *MapContext) error {
			for i := 0; i < 10; i++ {
				if err := m.Emit([]byte{byte(i)}, []byte("v")); err != nil {
					return err
				}
			}
			return nil
		},
		func(r *ReduceContext) error {
			return fmt.Errorf("reducer exploded")
		})
	if err == nil || !strings.Contains(err.Error(), "reducer exploded") {
		t.Errorf("reduce error not propagated: %v", err)
	}
}

func TestMetricsBalanceAcrossShuffe(t *testing.T) {
	words, _ := wordCorpus(2000)
	_, job := runWordCount(t, Config{NumMaps: 3, NumReduces: 4, SpillDir: t.TempDir()}, words)
	var out, in int64
	for _, m := range job.MapMetrics() {
		out += m.ShuffleOutBytes
		if m.SpillCount == 0 {
			t.Error("map recorded zero spills (final spill expected)")
		}
	}
	for _, r := range job.ReduceMetrics() {
		in += r.ShuffleInBytes
	}
	if out != in {
		t.Errorf("shuffle bytes out %d != in %d", out, in)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewJob(Config{NumMaps: 0, NumReduces: 1}); err == nil {
		t.Error("NumMaps=0 should fail")
	}
	if _, err := NewJob(Config{NumMaps: 1, NumReduces: -1}); err == nil {
		t.Error("negative reduces should fail")
	}
	if _, err := NewJob(Config{NumMaps: 2, NumReduces: 1, Hosts: []string{"x"}}); err == nil {
		t.Error("wrong Hosts length should fail")
	}
}

func TestSlotLimitedExecution(t *testing.T) {
	// 8 maps with 2 slots: concurrency must never exceed 2.
	var mu sync.Mutex
	cur, peak := 0, 0
	job, err := NewJob(Config{NumMaps: 8, NumReduces: 1, MapSlots: 2, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	err = job.Run(
		func(m *MapContext) error {
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			for i := 0; i < 100; i++ {
				if err := m.Emit([]byte{byte(i)}, []byte("v")); err != nil {
					return err
				}
			}
			mu.Lock()
			cur--
			mu.Unlock()
			return nil
		},
		func(r *ReduceContext) error {
			for {
				if _, _, err := r.NextGroup(); err == io.EOF {
					return nil
				} else if err != nil {
					return err
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 2 {
		t.Errorf("map concurrency peaked at %d with 2 slots", peak)
	}
}
