package datampi

import (
	"fmt"
	"io"
	"testing"
)

// benchSend pushes b.N pairs through MPI_D_Send with the given shuffle
// configuration and drains them at the A side. allocs/op is the
// interesting number: the pooled send-partition buffers keep the
// steady-state hot path allocation-free.
func benchSend(b *testing.B, cfg Config) {
	b.Helper()
	cfg.NumO = 1
	cfg.NumA = 4
	keys := make([][]byte, 256)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%03d", i))
	}
	val := []byte("12345678")
	job, err := NewJob(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	err = job.Run(
		func(o *OContext) error {
			for i := 0; i < b.N; i++ {
				if err := o.Send(keys[i%len(keys)], val); err != nil {
					return err
				}
			}
			return nil
		},
		func(a *AContext) error {
			for {
				if _, _, err := a.NextGroup(); err == io.EOF {
					return nil
				} else if err != nil {
					return err
				}
			}
		})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSendBlocking(b *testing.B) {
	benchSend(b, Config{NonBlocking: false, SpillDir: b.TempDir()})
}

func BenchmarkSendNonBlocking(b *testing.B) {
	benchSend(b, Config{NonBlocking: true, SpillDir: b.TempDir()})
}

func BenchmarkSendNonBlockingCombiner(b *testing.B) {
	benchSend(b, Config{
		NonBlocking: true,
		SpillDir:    b.TempDir(),
		Combiner: func(key []byte, vals [][]byte) [][]byte {
			return vals[:1]
		},
	})
}
