package datampi

import (
	"errors"
	"fmt"

	"hivempi/internal/kvio"
	"hivempi/internal/mpi"
	"hivempi/internal/trace"
)

// OContext is the handle given to an operator (O) task body. Send is
// the MPI_D_Send analogue: pairs are routed by the partitioner into the
// Send Partition List and flushed through the configured shuffle engine
// when a partition fills.
type OContext struct {
	job  *Job
	rank int

	// Send Partition List: one buffer per A task (paper Fig. 7).
	partitions []partitionBuffer

	// Non-blocking engine state.
	sendQueue chan flushItem
	senderErr chan error
	pending   []*mpi.Request

	metrics   *trace.Task
	pairIndex int64
	flushMark []int64 // pairIndex at each flush, for timeline reconstruction
	finalized bool
	err       error
}

type partitionBuffer struct {
	data  []byte
	pairs int
	kvs   []kvio.KV // retained uncombined pairs when a combiner is set
}

type flushItem struct {
	dest int // A communicator rank
	data []byte
}

func newOContext(j *Job, rank int) *OContext {
	ctx := &OContext{
		job:        j,
		rank:       rank,
		partitions: make([]partitionBuffer, j.cfg.NumA),
		metrics:    j.oTasks[rank],
	}
	if j.cfg.NonBlocking {
		// The bounded queue is the hive.datampi.sendqueue knob: the
		// compute thread blocks when the communication goroutine falls
		// behind by more than SendQueueSize partitions.
		ctx.sendQueue = make(chan flushItem, j.cfg.SendQueueSize)
		ctx.senderErr = make(chan error, 1)
		go ctx.senderLoop()
	}
	if ctx.metrics.PartitionBytes == nil {
		ctx.metrics.PartitionBytes = make([]int64, j.cfg.NumA)
	}
	return ctx
}

// Rank returns this task's rank within COMM_BIPARTITE_O.
func (o *OContext) Rank() int { return o.rank }

// Size returns the size of COMM_BIPARTITE_O (MPI_D_Comm_size).
func (o *OContext) Size() int { return o.job.cfg.NumO }

// NumA returns the size of COMM_BIPARTITE_A.
func (o *OContext) NumA() int { return o.job.cfg.NumA }

// Metrics exposes the task's trace record so the engine layer can add
// input-side counters.
func (o *OContext) Metrics() *trace.Task { return o.metrics }

// Send routes one key-value pair toward its aggregator (MPI_D_Send).
func (o *OContext) Send(key, value []byte) error {
	if o.finalized {
		return errors.New("datampi: Send after finalize")
	}
	if o.err != nil {
		return o.err
	}
	part := o.job.cfg.Partitioner(key, o.job.cfg.NumA)
	if part < 0 || part >= o.job.cfg.NumA {
		return fmt.Errorf("datampi: partitioner returned %d for %d A tasks", part, o.job.cfg.NumA)
	}
	pb := &o.partitions[part]
	sz := kvio.KV{Key: key, Value: value}.WireSize()
	o.metrics.CollectSizes.Observe(len(key) + len(value))
	o.metrics.ShuffleOutPairs++
	o.metrics.PartitionBytes[part] += int64(sz)
	o.pairIndex++

	if o.job.cfg.Combiner != nil {
		pb.kvs = append(pb.kvs, kvio.KV{
			Key:   append([]byte(nil), key...),
			Value: append([]byte(nil), value...),
		})
		pb.pairs++
		pb.data = nil // size accounting via kvs below
		if approxKVBytes(pb.kvs) >= o.job.cfg.SendBufferBytes {
			return o.flushPartition(part)
		}
		return nil
	}

	pb.data = kvio.AppendKV(pb.data, key, value)
	pb.pairs++
	if len(pb.data) >= o.job.cfg.SendBufferBytes {
		return o.flushPartition(part)
	}
	return nil
}

func approxKVBytes(kvs []kvio.KV) int {
	n := 0
	for _, p := range kvs {
		n += p.WireSize()
	}
	return n
}

// flushPartition pushes one full partition into the shuffle engine.
func (o *OContext) flushPartition(part int) error {
	pb := &o.partitions[part]
	data := pb.data
	if o.job.cfg.Combiner != nil {
		data = o.runCombiner(pb.kvs)
		pb.kvs = nil
	}
	pb.data = nil
	pb.pairs = 0
	if len(data) == 0 {
		return nil
	}
	o.metrics.ShuffleOutBytes += int64(len(data))
	o.flushMark = append(o.flushMark, o.pairIndex)
	o.metrics.SendEvents = append(o.metrics.SendEvents, trace.SendEvent{
		Bytes: int64(len(data)),
		Dest:  part,
	})

	if o.job.cfg.NonBlocking {
		select {
		case err := <-o.senderErr:
			o.err = err
			return err
		case o.sendQueue <- flushItem{dest: part, data: data}:
			return nil
		}
	}
	return o.blockingFlush(part, data)
}

// blockingFlush implements the blocking shuffle style: the compute
// thread itself performs the transfer inside a serialized all-to-all
// round and waits for the receiver's acknowledgement, so skewed tasks
// stall each other (paper Fig. 6).
func (o *OContext) blockingFlush(part int, data []byte) error {
	o.job.roundMu.Lock()
	defer o.job.roundMu.Unlock()
	o.metrics.WaitRounds++
	dst := o.job.commA.WorldRank(part)
	if err := o.job.world.Send(o.rank, dst, tagData, data); err != nil {
		return fmt.Errorf("datampi: blocking send to A%d: %w", part, err)
	}
	// MPI_Waitall analogue: wait until the receiver absorbed the round.
	if _, _, err := o.job.world.Recv(o.rank, dst, tagAck); err != nil {
		return fmt.Errorf("datampi: ack from A%d: %w", part, err)
	}
	return nil
}

// senderLoop is the non-blocking shuffle engine thread: it drains the
// send queue, posts MPI_Isend for each partition and tests cached
// request handles for completion.
func (o *OContext) senderLoop() {
	for item := range o.sendQueue {
		dst := o.job.commA.WorldRank(item.dest)
		req, err := o.job.world.Isend(o.rank, dst, tagData, item.data)
		if err != nil {
			select {
			case o.senderErr <- fmt.Errorf("datampi: isend to A%d: %w", item.dest, err):
			default:
			}
			continue
		}
		o.pending = append(o.pending, req)
		// Opportunistically retire completed handles.
		live := o.pending[:0]
		for _, r := range o.pending {
			if done, _ := r.Test(); !done {
				live = append(live, r)
			}
		}
		o.pending = live
	}
	if err := mpi.Waitall(o.pending); err != nil {
		select {
		case o.senderErr <- err:
		default:
		}
	}
	select {
	case o.senderErr <- nil:
	default:
	}
}

// runCombiner groups the partition's pairs by key and applies the
// user combiner, returning the encoded output.
func (o *OContext) runCombiner(kvs []kvio.KV) []byte {
	kvio.Sort(kvs)
	o.metrics.CombineInPairs += int64(len(kvs))
	var out []byte
	i := 0
	for i < len(kvs) {
		j := i + 1
		for j < len(kvs) && string(kvs[j].Key) == string(kvs[i].Key) {
			j++
		}
		vals := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			vals = append(vals, kvs[k].Value)
		}
		vals = o.job.cfg.Combiner(kvs[i].Key, vals)
		for _, v := range vals {
			out = kvio.AppendKV(out, kvs[i].Key, v)
			o.metrics.CombineOutPairs++
		}
		i = j
	}
	return out
}

// finalize flushes residual partitions, drains the shuffle engine and
// broadcasts the done control message to every A task (MPI_D_Finalize).
func (o *OContext) finalize() error {
	if o.finalized {
		return nil
	}
	o.finalized = true
	var errs []error
	for part := range o.partitions {
		pb := &o.partitions[part]
		if pb.pairs > 0 || len(pb.data) > 0 || len(pb.kvs) > 0 {
			if err := o.flushPartitionFinal(part); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if o.job.cfg.NonBlocking {
		close(o.sendQueue)
		if err := <-o.senderErr; err != nil {
			errs = append(errs, err)
		}
	}
	// Timeline reconstruction: convert flush marks to progress fractions.
	total := o.pairIndex
	for i := range o.metrics.SendEvents {
		if total > 0 && i < len(o.flushMark) {
			o.metrics.SendEvents[i].Progress = float64(o.flushMark[i]) / float64(total)
		} else {
			o.metrics.SendEvents[i].Progress = 1
		}
	}
	for a := 0; a < o.job.cfg.NumA; a++ {
		dst := o.job.commA.WorldRank(a)
		if err := o.job.world.Send(o.rank, dst, tagDone, nil); err != nil {
			errs = append(errs, fmt.Errorf("datampi: done to A%d: %w", a, err))
		}
	}
	return errors.Join(errs...)
}

// flushPartitionFinal is flushPartition but bypasses the Send guard.
func (o *OContext) flushPartitionFinal(part int) error {
	wasFinalized := o.finalized
	o.finalized = false
	err := o.flushPartition(part)
	o.finalized = wasFinalized
	return err
}
