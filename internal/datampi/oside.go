package datampi

import (
	"errors"
	"fmt"
	"sync"

	"hivempi/internal/kvio"
	"hivempi/internal/mpi"
	"hivempi/internal/trace"
)

// OContext is the handle given to an operator (O) task body. Send is
// the MPI_D_Send analogue: pairs are routed by the partitioner into the
// Send Partition List and flushed through the configured shuffle engine
// when a partition fills.
type OContext struct {
	job  *Job
	rank int

	// Send Partition List: one buffer per A task (paper Fig. 7). Pairs
	// are kept wire-encoded (kvio framing) so Send never clones keys or
	// values — one append per pair into a pooled buffer.
	partitions []partitionBuffer

	// Send-buffer pool: flushed partition buffers return here once the
	// transport has copied them (mpi.Send/Isend copy their payload), so
	// steady-state Send allocates nothing. The pool is shared between
	// the compute thread and the non-blocking sender goroutine.
	bufMu   sync.Mutex
	freeBuf [][]byte

	// Non-blocking engine state.
	sendQueue chan flushItem
	senderErr chan error
	pending   []*mpi.Request

	metrics   *trace.Task
	kvScratch []kvio.KV // flushPartition combiner decode scratch
	pairIndex int64
	flushMark []int64 // pairIndex at each flush, for timeline reconstruction
	finalized bool
	err       error

	// bufOccupancy tracks the live Send Partition List footprint (bytes
	// buffered across all partitions); its peak lands in the task trace
	// as BufPeakBytes.
	bufOccupancy int64
}

type partitionBuffer struct {
	data  []byte
	pairs int
}

type flushItem struct {
	dest  int // A communicator rank
	data  []byte
	pairs int64 // post-combiner records, for comm-matrix attribution
}

func newOContext(j *Job, rank int) *OContext {
	ctx := &OContext{
		job:        j,
		rank:       rank,
		partitions: make([]partitionBuffer, j.cfg.NumA),
		metrics:    j.oTasks[rank],
	}
	if j.cfg.NonBlocking {
		// The bounded queue is the hive.datampi.sendqueue knob: the
		// compute thread blocks when the communication goroutine falls
		// behind by more than SendQueueSize partitions.
		ctx.sendQueue = make(chan flushItem, j.cfg.SendQueueSize)
		ctx.senderErr = make(chan error, 1)
		go ctx.senderLoop()
	}
	if ctx.metrics.PartitionBytes == nil {
		ctx.metrics.PartitionBytes = make([]int64, j.cfg.NumA)
	}
	return ctx
}

// Rank returns this task's rank within COMM_BIPARTITE_O.
func (o *OContext) Rank() int { return o.rank }

// Size returns the size of COMM_BIPARTITE_O (MPI_D_Comm_size).
func (o *OContext) Size() int { return o.job.cfg.NumO }

// NumA returns the size of COMM_BIPARTITE_A.
func (o *OContext) NumA() int { return o.job.cfg.NumA }

// Metrics exposes the task's trace record so the engine layer can add
// input-side counters.
func (o *OContext) Metrics() *trace.Task { return o.metrics }

// maxFreeBuffers bounds the per-task pool; beyond it buffers are left
// to the garbage collector (SendQueueSize buffers can be in flight).
const maxFreeBuffers = 8

// getBuf returns an empty partition buffer with full send-buffer
// capacity, reusing a previously flushed one when available.
func (o *OContext) getBuf() []byte {
	o.bufMu.Lock()
	if n := len(o.freeBuf); n > 0 {
		b := o.freeBuf[n-1]
		o.freeBuf = o.freeBuf[:n-1]
		o.bufMu.Unlock()
		return b[:0]
	}
	o.bufMu.Unlock()
	// Slack beyond the flush threshold so the pair that trips the
	// threshold rarely forces a reallocation.
	return make([]byte, 0, o.job.cfg.SendBufferBytes+512)
}

// putBuf recycles a buffer whose contents the transport has copied.
func (o *OContext) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	o.bufMu.Lock()
	if len(o.freeBuf) < maxFreeBuffers {
		o.freeBuf = append(o.freeBuf, b)
	}
	o.bufMu.Unlock()
}

// Send routes one key-value pair toward its aggregator (MPI_D_Send).
func (o *OContext) Send(key, value []byte) error {
	if o.finalized {
		return errors.New("datampi: Send after finalize")
	}
	if o.err != nil {
		return o.err
	}
	part := o.job.cfg.Partitioner(key, o.job.cfg.NumA)
	if part < 0 || part >= o.job.cfg.NumA {
		return fmt.Errorf("datampi: partitioner returned %d for %d A tasks", part, o.job.cfg.NumA)
	}
	pb := &o.partitions[part]
	sz := kvio.KV{Key: key, Value: value}.WireSize()
	o.metrics.CollectSizes.Observe(len(key) + len(value))
	o.metrics.ShuffleOutPairs++
	o.metrics.PartitionBytes[part] += int64(sz)
	o.pairIndex++

	if pb.data == nil {
		pb.data = o.getBuf()
	}
	pb.data = kvio.AppendKV(pb.data, key, value)
	pb.pairs++
	o.bufOccupancy += int64(sz)
	if o.bufOccupancy > o.metrics.BufPeakBytes {
		o.metrics.BufPeakBytes = o.bufOccupancy
	}
	if len(pb.data) >= o.job.cfg.SendBufferBytes {
		return o.flushPartition(part, false)
	}
	return nil
}

// flushPartition pushes one full partition into the shuffle engine.
// force permits the residual flushes finalize issues after the Send
// path has been closed.
func (o *OContext) flushPartition(part int, force bool) error {
	if o.finalized && !force {
		return errors.New("datampi: flush after finalize")
	}
	pb := &o.partitions[part]
	data := pb.data
	pairs := int64(pb.pairs)
	pb.data = nil
	pb.pairs = 0
	o.bufOccupancy -= int64(len(data))
	if len(data) == 0 {
		o.putBuf(data)
		return nil
	}
	if o.job.cfg.Combiner != nil {
		// runCombiner consumes kvs within the call (grouping copies key
		// references only as long as data is alive), so the []KV backing
		// array is reusable across flushes.
		kvs, err := kvio.DecodeAllInto(o.kvScratch[:0], data)
		if err != nil {
			return fmt.Errorf("datampi: partition %d buffer corrupt: %w", part, err)
		}
		o.kvScratch = kvs[:0]
		combineBase := o.metrics.CombineOutPairs
		combined := o.runCombiner(kvs)
		pairs = o.metrics.CombineOutPairs - combineBase
		o.putBuf(data)
		data = combined
		if len(data) == 0 {
			o.putBuf(data)
			return nil
		}
	}
	o.metrics.ShuffleOutBytes += int64(len(data))
	o.job.ctrFlushes.Inc()
	if force {
		// Residual flush finalize forced out (the buffer never reached
		// the SendBufferBytes threshold).
		o.metrics.ForcedFlushes++
		o.job.ctrForced.Inc()
	}
	o.flushMark = append(o.flushMark, o.pairIndex)
	o.metrics.SendEvents = append(o.metrics.SendEvents, trace.SendEvent{
		Bytes: int64(len(data)),
		Dest:  part,
	})

	if o.job.cfg.NonBlocking {
		select {
		case err := <-o.senderErr:
			o.err = err
			o.putBuf(data)
			return err
		case o.sendQueue <- flushItem{dest: part, data: data, pairs: pairs}:
			// The sender goroutine recycles the buffer after Isend.
			return nil
		}
	}
	err := o.blockingFlush(part, data)
	o.putBuf(data)
	if err == nil {
		o.job.comm.AddRecords(o.rank, part, pairs)
	}
	return err
}

// blockingFlush implements the blocking shuffle style: the compute
// thread itself performs the transfer inside a serialized all-to-all
// round and waits for the receiver's acknowledgement, so skewed tasks
// stall each other (paper Fig. 6).
func (o *OContext) blockingFlush(part int, data []byte) error {
	o.job.roundMu.Lock()
	defer o.job.roundMu.Unlock()
	o.metrics.WaitRounds++
	o.job.ctrRounds.Inc()
	dst := o.job.commA.WorldRank(part)
	if err := o.job.world.Send(o.rank, dst, tagData, data); err != nil {
		return fmt.Errorf("datampi: blocking send to A%d: %w", part, err)
	}
	// MPI_Waitall analogue: wait until the receiver absorbed the round.
	if _, _, err := o.job.world.Recv(o.rank, dst, tagAck); err != nil {
		return fmt.Errorf("datampi: ack from A%d: %w", part, err)
	}
	return nil
}

// senderLoop is the non-blocking shuffle engine thread: it drains the
// send queue, posts MPI_Isend for each partition and tests cached
// request handles for completion.
func (o *OContext) senderLoop() {
	for item := range o.sendQueue {
		dst := o.job.commA.WorldRank(item.dest)
		req, err := o.job.world.Isend(o.rank, dst, tagData, item.data)
		// Isend copies the payload, so the buffer recycles immediately.
		o.putBuf(item.data)
		if err != nil {
			select {
			case o.senderErr <- fmt.Errorf("datampi: isend to A%d: %w", item.dest, err):
			default:
			}
			continue
		}
		o.job.comm.AddRecords(o.rank, item.dest, item.pairs)
		o.pending = append(o.pending, req)
		// Opportunistically retire completed handles.
		live := o.pending[:0]
		for _, r := range o.pending {
			if done, _ := r.Test(); !done {
				live = append(live, r)
			}
		}
		o.pending = live
	}
	if err := mpi.Waitall(o.pending); err != nil {
		select {
		case o.senderErr <- err:
		default:
		}
	}
	select {
	case o.senderErr <- nil:
	default:
	}
}

// runCombiner groups the partition's pairs by key with a hash map in
// first-seen key order and applies the user combiner, returning the
// encoded output in a pooled buffer. Wire order is correctness-neutral
// (the A side sorts before grouping), and first-seen order is
// deterministic for a given input stream, unlike map iteration.
func (o *OContext) runCombiner(kvs []kvio.KV) []byte {
	o.metrics.CombineInPairs += int64(len(kvs))
	groups := make(map[string]int, len(kvs))
	keys := make([][]byte, 0, len(kvs))
	vals := make([][][]byte, 0, len(kvs))
	for _, p := range kvs {
		idx, ok := groups[string(p.Key)]
		if !ok {
			idx = len(keys)
			groups[string(p.Key)] = idx
			keys = append(keys, p.Key)
			vals = append(vals, nil)
		}
		vals[idx] = append(vals[idx], p.Value)
	}
	out := o.getBuf()
	for i, key := range keys {
		for _, v := range o.job.cfg.Combiner(key, vals[i]) {
			out = kvio.AppendKV(out, key, v)
			o.metrics.CombineOutPairs++
		}
	}
	return out
}

// finalize flushes residual partitions, drains the shuffle engine and
// broadcasts the done control message to every A task (MPI_D_Finalize).
func (o *OContext) finalize() error {
	if o.finalized {
		return nil
	}
	o.finalized = true
	var errs []error
	for part := range o.partitions {
		pb := &o.partitions[part]
		if pb.pairs > 0 || len(pb.data) > 0 {
			if err := o.flushPartition(part, true); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if o.job.cfg.NonBlocking {
		close(o.sendQueue)
		if err := <-o.senderErr; err != nil {
			errs = append(errs, err)
		}
	}
	// Timeline reconstruction: convert flush marks to progress fractions.
	total := o.pairIndex
	for i := range o.metrics.SendEvents {
		if total > 0 && i < len(o.flushMark) {
			o.metrics.SendEvents[i].Progress = float64(o.flushMark[i]) / float64(total)
		} else {
			o.metrics.SendEvents[i].Progress = 1
		}
	}
	for a := 0; a < o.job.cfg.NumA; a++ {
		dst := o.job.commA.WorldRank(a)
		if err := o.job.world.Send(o.rank, dst, tagDone, nil); err != nil {
			errs = append(errs, fmt.Errorf("datampi: done to A%d: %w", a, err))
		}
	}
	return errors.Join(errs...)
}
