package datampi

import (
	"fmt"
)

// Iteration mode (paper §II): DataMPI "provides kinds of modes for Big
// Data applications (e.g. common, iteration and streaming)". The
// iteration mode runs the bipartite exchange repeatedly with persistent
// task state — the A side's output of round i feeds the O side of round
// i+1 through user state, avoiding the per-job startup and HDFS
// round-trip a chain of MapReduce jobs would pay.

// IterBody runs one side of one iteration. Both callbacks observe the
// iteration number; termination is signalled by the driver function.
type (
	// OIterBody produces round i's pairs.
	OIterBody func(iter int, o *OContext) error
	// AIterBody consumes round i's groups; returning done=true from the
	// convergence check stops after this round.
	AIterBody func(iter int, a *AContext) error
)

// IterativeJob drives repeated bipartite exchanges.
type IterativeJob struct {
	cfg Config

	// Converged optionally stops the loop early: it runs after each
	// round with the round index (0-based) and returns true to stop.
	Converged func(iter int) bool

	rounds int
}

// NewIterativeJob validates the configuration.
func NewIterativeJob(cfg Config) (*IterativeJob, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &IterativeJob{cfg: cfg}, nil
}

// Rounds reports how many rounds ran (valid after Run).
func (j *IterativeJob) Rounds() int { return j.rounds }

// Run executes up to maxIter rounds. Each round is one bipartite
// exchange over a fresh communicator epoch; task-local state persists
// in the closures, mirroring DataMPI's long-lived CommonProcess
// instances that re-enter MPI_D contexts per iteration.
func (j *IterativeJob) Run(maxIter int, oBody OIterBody, aBody AIterBody) error {
	if maxIter <= 0 {
		return fmt.Errorf("datampi: maxIter %d must be positive", maxIter)
	}
	// The wrappers are hoisted out of the loop (allocated once, not per
	// round); `it` is written before each sequential round starts, so
	// the closures always observe the current iteration.
	var it int
	oFn := func(o *OContext) error { return oBody(it, o) }
	aFn := func(a *AContext) error { return aBody(it, a) }
	for iter := 0; iter < maxIter; iter++ {
		inner, err := NewJob(j.cfg)
		if err != nil {
			return err
		}
		it = iter
		err = inner.Run(oFn, aFn)
		if err != nil {
			return fmt.Errorf("datampi: iteration %d: %w", iter, err)
		}
		j.rounds = iter + 1
		if j.Converged != nil && j.Converged(iter) {
			return nil
		}
	}
	return nil
}
