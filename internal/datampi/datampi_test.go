package datampi

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hivempi/internal/testutil/leakcheck"
)

// runWordCount runs a word-count shaped job and returns the aggregated
// counts observed at the A side.
func runWordCount(t *testing.T, cfg Config, words []string) map[string]int {
	t.Helper()
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	counts := map[string]int{}

	per := (len(words) + cfg.NumO - 1) / cfg.NumO
	err = job.Run(
		func(o *OContext) error {
			lo := o.Rank() * per
			hi := lo + per
			if hi > len(words) {
				hi = len(words)
			}
			if lo > len(words) {
				lo = len(words)
			}
			for _, w := range words[lo:hi] {
				if err := o.Send([]byte(w), []byte{1}); err != nil {
					return err
				}
			}
			return nil
		},
		func(a *AContext) error {
			for {
				key, vals, err := a.NextGroup()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				total := 0
				for _, v := range vals {
					total += int(v[0])
				}
				mu.Lock()
				counts[string(key)] += total
				mu.Unlock()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

func wordCorpus(n int) ([]string, map[string]int) {
	words := make([]string, 0, n)
	want := map[string]int{}
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := 0; i < n; i++ {
		w := vocab[(i*i+3*i)%len(vocab)]
		words = append(words, w)
		want[w]++
	}
	return words, want
}

func checkCounts(t *testing.T, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d distinct words, want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count[%s] = %d, want %d", w, got[w], c)
		}
	}
}

func TestWordCountNonBlocking(t *testing.T) {
	defer leakcheck.Check(t)()
	words, want := wordCorpus(5000)
	got := runWordCount(t, Config{NumO: 4, NumA: 3, NonBlocking: true}, words)
	checkCounts(t, got, want)
}

func TestWordCountBlocking(t *testing.T) {
	defer leakcheck.Check(t)()
	words, want := wordCorpus(5000)
	got := runWordCount(t, Config{NumO: 4, NumA: 3, NonBlocking: false}, words)
	checkCounts(t, got, want)
}

func TestWordCountTinyBuffersForceManyFlushes(t *testing.T) {
	defer leakcheck.Check(t)()
	words, want := wordCorpus(2000)
	cfg := Config{NumO: 3, NumA: 2, NonBlocking: true, SendBufferBytes: 16, SendQueueSize: 2}
	got := runWordCount(t, cfg, words)
	checkCounts(t, got, want)
}

func TestSpillPathProducesSameResult(t *testing.T) {
	defer leakcheck.Check(t)()
	words, want := wordCorpus(4000)
	cfg := Config{
		NumO: 2, NumA: 2, NonBlocking: true,
		// A 1 KB task memory at 40% forces many spills.
		TaskMemoryBytes: 1 << 10,
		MemUsedPercent:  0.4,
		SpillDir:        t.TempDir(),
	}
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	counts := map[string]int{}
	per := (len(words) + cfg.NumO - 1) / cfg.NumO
	err = job.Run(
		func(o *OContext) error {
			lo, hi := o.Rank()*per, (o.Rank()+1)*per
			if hi > len(words) {
				hi = len(words)
			}
			for _, w := range words[lo:hi] {
				if err := o.Send([]byte(w), []byte{1}); err != nil {
					return err
				}
			}
			return nil
		},
		func(a *AContext) error {
			for {
				key, vals, err := a.NextGroup()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				mu.Lock()
				counts[string(key)] += len(vals)
				mu.Unlock()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, counts, want)
	var spills int64
	for _, m := range job.AMetrics() {
		spills += m.SpillCount
	}
	if spills == 0 {
		t.Error("expected spills with a 1 KB task memory")
	}
}

func TestGroupsArriveInKeyOrder(t *testing.T) {
	defer leakcheck.Check(t)()
	cfg := Config{NumO: 3, NumA: 1, NonBlocking: true}
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen []string
	err = job.Run(
		func(o *OContext) error {
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("k%03d", (i*7+o.Rank()*13)%100)
				if err := o.Send([]byte(k), []byte("v")); err != nil {
					return err
				}
			}
			return nil
		},
		func(a *AContext) error {
			for {
				key, _, err := a.NextGroup()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				mu.Lock()
				seen = append(seen, string(key))
				mu.Unlock()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(seen) {
		t.Error("groups not in key order")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] == seen[i-1] {
			t.Errorf("duplicate group %q", seen[i])
		}
	}
}

func TestCombinerReducesTraffic(t *testing.T) {
	defer leakcheck.Check(t)()
	words, want := wordCorpus(3000)
	sum := func(key []byte, values [][]byte) [][]byte {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		return [][]byte{[]byte(strconv.Itoa(total))}
	}
	run := func(comb Combiner) (map[string]int, int64) {
		cfg := Config{NumO: 2, NumA: 2, NonBlocking: true, Combiner: comb}
		job, err := NewJob(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		counts := map[string]int{}
		per := (len(words) + 1) / 2
		err = job.Run(
			func(o *OContext) error {
				lo, hi := o.Rank()*per, (o.Rank()+1)*per
				if hi > len(words) {
					hi = len(words)
				}
				for _, w := range words[lo:hi] {
					if err := o.Send([]byte(w), []byte("1")); err != nil {
						return err
					}
				}
				return nil
			},
			func(a *AContext) error {
				for {
					key, vals, err := a.NextGroup()
					if err == io.EOF {
						return nil
					}
					if err != nil {
						return err
					}
					total := 0
					for _, v := range vals {
						n, _ := strconv.Atoi(string(v))
						total += n
					}
					mu.Lock()
					counts[string(key)] += total
					mu.Unlock()
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		var bytesOut int64
		for _, m := range job.OMetrics() {
			bytesOut += m.ShuffleOutBytes
		}
		return counts, bytesOut
	}
	plain, plainBytes := run(nil)
	combined, combinedBytes := run(sum)
	checkCounts(t, plain, want)
	checkCounts(t, combined, want)
	if combinedBytes >= plainBytes {
		t.Errorf("combiner did not reduce traffic: %d >= %d", combinedBytes, plainBytes)
	}
}

func TestMetricsPopulated(t *testing.T) {
	defer leakcheck.Check(t)()
	words, _ := wordCorpus(1000)
	cfg := Config{NumO: 2, NumA: 2, NonBlocking: true, SendBufferBytes: 64}
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	per := (len(words) + 1) / 2
	err = job.Run(
		func(o *OContext) error {
			lo, hi := o.Rank()*per, (o.Rank()+1)*per
			if hi > len(words) {
				hi = len(words)
			}
			for _, w := range words[lo:hi] {
				if err := o.Send([]byte(w), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		},
		func(a *AContext) error {
			for {
				_, _, err := a.NextGroup()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	var outBytes, inBytes, outPairs, inPairs int64
	for _, m := range job.OMetrics() {
		outBytes += m.ShuffleOutBytes
		outPairs += m.ShuffleOutPairs
		if len(m.SendEvents) == 0 {
			t.Error("O task has no send events")
		}
		for _, e := range m.SendEvents {
			if e.Progress < 0 || e.Progress > 1 {
				t.Errorf("send event progress %f out of range", e.Progress)
			}
		}
		if m.CollectSizes.Total() == 0 {
			t.Error("collect size histogram empty")
		}
	}
	for _, m := range job.AMetrics() {
		inBytes += m.ShuffleInBytes
		inPairs += m.ShuffleInPairs
	}
	if outBytes != inBytes {
		t.Errorf("shuffle bytes out %d != in %d", outBytes, inBytes)
	}
	if outPairs != int64(len(words)) || inPairs != outPairs {
		t.Errorf("pairs out %d in %d want %d", outPairs, inPairs, len(words))
	}
}

func TestBlockingStyleCountsWaitRounds(t *testing.T) {
	defer leakcheck.Check(t)()
	words, _ := wordCorpus(2000)
	cfg := Config{NumO: 2, NumA: 2, NonBlocking: false, SendBufferBytes: 64}
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	per := (len(words) + 1) / 2
	err = job.Run(
		func(o *OContext) error {
			lo, hi := o.Rank()*per, (o.Rank()+1)*per
			if hi > len(words) {
				hi = len(words)
			}
			for _, w := range words[lo:hi] {
				if err := o.Send([]byte(w), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		},
		func(a *AContext) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	var rounds int64
	for _, m := range job.OMetrics() {
		rounds += m.WaitRounds
	}
	if rounds == 0 {
		t.Error("blocking style recorded no wait rounds")
	}
}

func TestConfigValidation(t *testing.T) {
	defer leakcheck.Check(t)()
	if _, err := NewJob(Config{NumO: 0, NumA: 1}); err == nil {
		t.Error("NumO=0 should fail")
	}
	if _, err := NewJob(Config{NumO: 1, NumA: 0}); err == nil {
		t.Error("NumA=0 should fail")
	}
	if _, err := NewJob(Config{NumO: 1, NumA: 1, Hosts: []string{"only-one"}}); err == nil {
		t.Error("wrong Hosts length should fail")
	}
}

func TestOBodyErrorPropagates(t *testing.T) {
	defer leakcheck.Check(t)()
	job, err := NewJob(Config{NumO: 2, NumA: 1, NonBlocking: true})
	if err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("operator exploded")
	err = job.Run(
		func(o *OContext) error {
			if o.Rank() == 1 {
				return wantErr
			}
			return o.Send([]byte("k"), []byte("v"))
		},
		func(a *AContext) error {
			for {
				if _, _, err := a.NextGroup(); err == io.EOF {
					return nil
				} else if err != nil {
					return err
				}
			}
		})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("operator exploded")) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestEmptyJob(t *testing.T) {
	defer leakcheck.Check(t)()
	job, err := NewJob(Config{NumO: 2, NumA: 2, NonBlocking: true})
	if err != nil {
		t.Fatal(err)
	}
	groups := 0
	var mu sync.Mutex
	err = job.Run(
		func(o *OContext) error { return nil },
		func(a *AContext) error {
			for {
				_, _, err := a.NextGroup()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				mu.Lock()
				groups++
				mu.Unlock()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if groups != 0 {
		t.Errorf("empty job produced %d groups", groups)
	}
}

func TestHashPartitionerRangeAndBalance(t *testing.T) {
	defer leakcheck.Check(t)()
	const numA = 7
	counts := make([]int, numA)
	for i := 0; i < 10000; i++ {
		p := HashPartitioner([]byte(strconv.Itoa(i)), numA)
		if p < 0 || p >= numA {
			t.Fatalf("partition %d out of range", p)
		}
		counts[p]++
	}
	for i, c := range counts {
		if c < 1000 || c > 2000 {
			t.Errorf("partition %d has %d of 10000 keys (poor balance)", i, c)
		}
	}
}

func TestSendAfterFinalizeRejected(t *testing.T) {
	defer leakcheck.Check(t)()
	job, err := NewJob(Config{NumO: 1, NumA: 1, NonBlocking: true})
	if err != nil {
		t.Fatal(err)
	}
	var leaked *OContext
	err = job.Run(
		func(o *OContext) error {
			leaked = o
			return nil
		},
		func(a *AContext) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := leaked.Send([]byte("k"), []byte("v")); err == nil {
		t.Error("Send after finalize should fail")
	}
}

func TestBadPartitionerSurfacesError(t *testing.T) {
	defer leakcheck.Check(t)()
	job, err := NewJob(Config{
		NumO: 1, NumA: 2, NonBlocking: true,
		Partitioner: func(key []byte, numA int) int { return numA + 5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	err = job.Run(
		func(o *OContext) error { return o.Send([]byte("k"), []byte("v")) },
		func(a *AContext) error {
			for {
				if _, _, err := a.NextGroup(); err != nil {
					return nil
				}
			}
		})
	if err == nil || !strings.Contains(err.Error(), "partitioner") {
		t.Errorf("bad partitioner not surfaced: %v", err)
	}
}

func TestContextAccessors(t *testing.T) {
	defer leakcheck.Check(t)()
	job, err := NewJob(Config{NumO: 3, NumA: 2, NonBlocking: true,
		Hosts: []string{"h0", "h1", "h2", "h3", "h4"}})
	if err != nil {
		t.Fatal(err)
	}
	err = job.Run(
		func(o *OContext) error {
			if o.Size() != 3 || o.NumA() != 2 {
				t.Errorf("O accessors wrong: size=%d numA=%d", o.Size(), o.NumA())
			}
			if o.Metrics() == nil {
				t.Error("O metrics nil")
			}
			return nil
		},
		func(a *AContext) error {
			if a.Size() != 2 || a.NumO() != 3 {
				t.Errorf("A accessors wrong: size=%d numO=%d", a.Size(), a.NumO())
			}
			if a.Metrics() == nil {
				t.Error("A metrics nil")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range job.OMetrics() {
		if m.Host != fmt.Sprintf("h%d", i) {
			t.Errorf("O%d host %q", i, m.Host)
		}
	}
	for i, m := range job.AMetrics() {
		if m.Host != fmt.Sprintf("h%d", 3+i) {
			t.Errorf("A%d host %q", i, m.Host)
		}
	}
}
