package datampi

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"testing"

	"hivempi/internal/testutil/leakcheck"
)

// TestIterativePageRank runs power iteration over a small directed
// graph with the iteration mode and checks convergence against a
// single-threaded reference computation.
func TestIterativePageRank(t *testing.T) {
	defer leakcheck.Check(t)()
	// A ring with one hub: 0 <- everyone, i -> i+1.
	const n = 20
	const damping = 0.85
	edges := make(map[int][]int)
	for i := 0; i < n; i++ {
		edges[i] = append(edges[i], (i+1)%n, 0)
	}

	// Reference power iteration.
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = 1.0 / n
	}
	const rounds = 15
	for r := 0; r < rounds; r++ {
		next := make([]float64, n)
		for u, outs := range edges {
			share := ref[u] / float64(len(outs))
			for _, v := range outs {
				next[v] += share
			}
		}
		for i := range next {
			next[i] = (1-damping)/n + damping*next[i]
		}
		ref = next
	}

	// DataMPI iterative job: ranks live in shared state guarded by a
	// mutex (the A side of round r writes what the O side of r+1 reads).
	var mu sync.Mutex
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1.0 / n
	}
	cfg := Config{NumO: 4, NumA: 2, NonBlocking: true}
	job, err := NewIterativeJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	encode := func(f float64) []byte {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
		return b[:]
	}
	decode := func(b []byte) float64 {
		return math.Float64frombits(binary.BigEndian.Uint64(b))
	}
	nodeKey := func(v int) []byte {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(v))
		return b[:]
	}
	var pending map[int]float64
	err = job.Run(rounds,
		func(iter int, o *OContext) error {
			if o.Rank() == 0 {
				mu.Lock()
				pending = make(map[int]float64, n)
				mu.Unlock()
			}
			for u := o.Rank(); u < n; u += o.Size() {
				mu.Lock()
				share := ranks[u] / float64(len(edges[u]))
				mu.Unlock()
				for _, v := range edges[u] {
					if err := o.Send(nodeKey(v), encode(share)); err != nil {
						return err
					}
				}
			}
			return nil
		},
		func(iter int, a *AContext) error {
			for {
				key, vals, err := a.NextGroup()
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
				v := int(binary.BigEndian.Uint32(key))
				sum := 0.0
				for _, val := range vals {
					sum += decode(val)
				}
				mu.Lock()
				pending[v] = (1-damping)/n + damping*sum
				mu.Unlock()
			}
			// Last A task of the round publishes the new ranks.
			mu.Lock()
			if len(pending) == n {
				for v, r := range pending {
					ranks[v] = r
				}
			}
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if job.Rounds() != rounds {
		t.Errorf("ran %d rounds, want %d", job.Rounds(), rounds)
	}
	for i := 0; i < n; i++ {
		if diff := math.Abs(ranks[i] - ref[i]); diff > 1e-9 {
			t.Errorf("rank[%d] = %g, want %g", i, ranks[i], ref[i])
		}
	}
	// The hub must dominate.
	for i := 1; i < n; i++ {
		if ranks[0] <= ranks[i] {
			t.Errorf("hub rank %g not above node %d's %g", ranks[0], i, ranks[i])
		}
	}
}

func TestIterativeConvergenceStopsEarly(t *testing.T) {
	defer leakcheck.Check(t)()
	job, err := NewIterativeJob(Config{NumO: 2, NumA: 1, NonBlocking: true})
	if err != nil {
		t.Fatal(err)
	}
	job.Converged = func(iter int) bool { return iter >= 2 }
	ran := 0
	var mu sync.Mutex
	err = job.Run(100,
		func(iter int, o *OContext) error {
			if o.Rank() == 0 {
				mu.Lock()
				ran++
				mu.Unlock()
			}
			return o.Send([]byte("k"), []byte("v"))
		},
		func(iter int, a *AContext) error {
			for {
				if _, _, err := a.NextGroup(); err == io.EOF {
					return nil
				} else if err != nil {
					return err
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 3 || job.Rounds() != 3 {
		t.Errorf("ran %d rounds (job says %d), want 3", ran, job.Rounds())
	}
	if err := job.Run(0, nil, nil); err == nil {
		t.Error("maxIter=0 should fail")
	}
}

// TestStreamingWindowedCounts streams records into 1-unit windows and
// checks per-window aggregates arrive complete and in window order.
func TestStreamingWindowedCounts(t *testing.T) {
	defer leakcheck.Check(t)()
	const windows = 5
	const perWindow = 200
	type rec struct {
		w   uint32
		key string
	}
	streams := make([][]rec, 3)
	want := map[string]int{}
	for w := uint32(0); w < windows; w++ {
		for i := 0; i < perWindow; i++ {
			k := fmt.Sprintf("sensor%d", i%7)
			streams[i%3] = append(streams[i%3], rec{w, k})
			want[fmt.Sprintf("%d/%s", w, k)]++
		}
	}
	pos := make([]int, 3)
	var mu sync.Mutex
	got := map[string]int{}
	var orderOK = true
	lastWindow := make(map[int]uint32)
	err := RunStreaming(
		Config{NumO: 3, NumA: 2, NonBlocking: true},
		func(o *OContext) (uint32, []byte, []byte, bool, error) {
			mu.Lock()
			defer mu.Unlock()
			i := pos[o.Rank()]
			if i >= len(streams[o.Rank()]) {
				return 0, nil, nil, true, nil
			}
			pos[o.Rank()]++
			r := streams[o.Rank()][i]
			return r.w, []byte(r.key), []byte{1}, false, nil
		},
		func(window uint32, key []byte, values [][]byte) error {
			mu.Lock()
			defer mu.Unlock()
			got[fmt.Sprintf("%d/%s", window, key)] += len(values)
			// Per-A-task windows must be non-decreasing.
			part := int(key[len(key)-1]) % 2
			if window < lastWindow[part] {
				orderOK = false
			}
			lastWindow[part] = window
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d window/key groups, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("count[%s] = %d, want %d", k, got[k], n)
		}
	}
	if !orderOK {
		t.Error("windows regressed within an A task")
	}
}

func TestStreamingSameKeySamePartition(t *testing.T) {
	defer leakcheck.Check(t)()
	// All windows of one key must land on the same A task.
	var mu sync.Mutex
	owner := map[string]map[int]bool{}
	done := make([]bool, 2)
	err := RunStreaming(
		Config{NumO: 2, NumA: 3, NonBlocking: true},
		func(o *OContext) (uint32, []byte, []byte, bool, error) {
			mu.Lock()
			defer mu.Unlock()
			if done[o.Rank()] {
				return 0, nil, nil, true, nil
			}
			done[o.Rank()] = true
			return uint32(o.Rank()), []byte("shared-key"), []byte("v"), false, nil
		},
		func(window uint32, key []byte, values [][]byte) error {
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	_ = owner
}
