package datampi

import (
	"encoding/binary"
	"fmt"
)

// Streaming mode (paper §II): records arrive continuously; the O side
// assigns each pair to a window and the A side emits one grouped result
// set per closed window. Windows close in order — when every O task has
// advanced past window w, the A tasks fire their per-window callbacks.
//
// The implementation layers windows onto the common mode by prefixing
// keys with a big-endian window ordinal: the existing sorted grouping
// then yields windows in order, and the per-window boundary falls out
// of the key prefix changing.

// StreamSource feeds one O task: it returns the next (window, key,
// value) triple, or done=true when the stream ends.
type StreamSource func(o *OContext) (window uint32, key, value []byte, done bool, err error)

// WindowResult delivers one key group of one closed window to the
// application.
type WindowResult func(window uint32, key []byte, values [][]byte) error

// RunStreaming consumes the sources until exhaustion and delivers every
// window's groups in (window, key) order.
func RunStreaming(cfg Config, source StreamSource, result WindowResult) error {
	if err := cfg.fill(); err != nil {
		return err
	}
	// Partition on the user key only (strip the window prefix) so one
	// key's windows always land on the same A task.
	user := cfg.Partitioner
	cfg.Partitioner = func(key []byte, numA int) int {
		if len(key) >= 4 {
			return user(key[4:], numA)
		}
		return user(key, numA)
	}
	job, err := NewJob(cfg)
	if err != nil {
		return err
	}
	return job.Run(
		func(o *OContext) error {
			for {
				w, key, value, done, err := source(o)
				if err != nil {
					return err
				}
				if done {
					return nil
				}
				wk := make([]byte, 4, 4+len(key))
				binary.BigEndian.PutUint32(wk, w)
				wk = append(wk, key...)
				if err := o.Send(wk, value); err != nil {
					return err
				}
			}
		},
		func(a *AContext) error {
			for {
				key, vals, err := a.NextGroup()
				if err != nil {
					return nil // io.EOF
				}
				if len(key) < 4 {
					return fmt.Errorf("datampi: streaming key shorter than window prefix")
				}
				w := binary.BigEndian.Uint32(key[:4])
				if err := result(w, key[4:], vals); err != nil {
					return err
				}
			}
		})
}
