package datampi

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"

	"hivempi/internal/kvio"
	"hivempi/internal/mpi"
	"hivempi/internal/trace"
)

// AContext is the handle given to an aggregator (A) task body. Before
// the body runs, the receive loop has already drained every O task
// (caching in memory, spilling sorted runs past the memory budget) and
// the merged, key-grouped iterator is ready (MPI_D_Recv analogue).
type AContext struct {
	job  *Job
	rank int

	cache      []kvio.KV
	kvScratch  []kvio.KV // receiveAll decode scratch, reused across rounds
	cacheBytes int64
	peakCache  int64
	spills     []*os.File

	merged  *kvio.Merge
	nextKV  *kvio.KV // one-pair lookahead for grouping
	metrics *trace.Task
}

func newAContext(j *Job, rank int) (*AContext, error) {
	return &AContext{job: j, rank: rank, metrics: j.aTasks[rank]}, nil
}

// Rank returns this task's rank within COMM_BIPARTITE_A.
func (a *AContext) Rank() int { return a.rank }

// Size returns the size of COMM_BIPARTITE_A (MPI_D_Comm_size).
func (a *AContext) Size() int { return a.job.cfg.NumA }

// NumO returns the size of COMM_BIPARTITE_O.
func (a *AContext) NumO() int { return a.job.cfg.NumO }

// Metrics exposes the task's trace record for engine-side counters.
func (a *AContext) Metrics() *trace.Task { return a.metrics }

// memBudget is the cache ceiling from hive.datampi.memusedpercent.
func (a *AContext) memBudget() int64 {
	return int64(a.job.cfg.MemUsedPercent * float64(a.job.cfg.TaskMemoryBytes))
}

// receiveAll runs this task's receive loop until every O task has sent
// its done control message. Data messages are decoded into the memory
// cache; when the cache exceeds the budget a sorted run is spilled to
// local disk, mirroring DataMPI's threshold-triggered merging threads.
func (a *AContext) receiveAll() error {
	me := a.job.commA.WorldRank(a.rank)
	doneCount := 0
	for doneCount < a.job.cfg.NumO {
		data, st, err := a.job.world.Recv(me, mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return err
		}
		switch st.Tag {
		case tagDone:
			doneCount++
		case tagData:
			// Pairs are copied into a.cache below, so one scratch []KV
			// backing array serves every receive round.
			kvs, err := kvio.DecodeAllInto(a.kvScratch[:0], data)
			if err != nil {
				return err
			}
			a.kvScratch = kvs[:0]
			a.metrics.ShuffleInBytes += int64(len(data))
			a.metrics.ShuffleInPairs += int64(len(kvs))
			a.metrics.RecvRounds++
			a.job.histRecvRound.Observe(int64(len(data)))
			a.cache = append(a.cache, kvs...)
			a.cacheBytes += int64(len(data))
			if a.cacheBytes > a.peakCache {
				a.peakCache = a.cacheBytes
			}
			if a.cacheBytes > a.memBudget() {
				if err := a.spill(); err != nil {
					return err
				}
			}
			if !a.job.cfg.NonBlocking {
				// Blocking style: acknowledge so the sender's Waitall
				// round completes.
				if err := a.job.world.Send(me, st.Source, tagAck, nil); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("datampi: A%d received unknown tag %d", a.rank, st.Tag)
		}
	}
	a.metrics.MemoryCacheBytes = a.peakCache
	return nil
}

// spill sorts the cache and writes it to a local-disk run file.
func (a *AContext) spill() error {
	if len(a.cache) == 0 {
		return nil
	}
	kvio.Sort(a.cache)
	f, err := os.CreateTemp(a.job.cfg.SpillDir, "datampi-spill-*.run")
	if err != nil {
		return fmt.Errorf("datampi: create spill: %w", err)
	}
	kw := kvio.NewWriter(f)
	kw.SetSizeHistogram(a.job.histRunWrite)
	for _, p := range a.cache {
		if err := kw.Write(p); err != nil {
			f.Close()
			return fmt.Errorf("datampi: write spill: %w", err)
		}
	}
	if err := kw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("datampi: flush spill: %w", err)
	}
	a.metrics.SpillCount++
	a.metrics.SpillBytes += kw.BytesWritten()
	a.job.ctrSpillPairs.Add(kw.Pairs())
	a.spills = append(a.spills, f)
	a.cache = nil
	a.cacheBytes = 0
	return nil
}

// prepareIterator sorts the residual cache and builds the k-way merge
// over the in-memory run plus every spill run.
func (a *AContext) prepareIterator() error {
	kvio.Sort(a.cache)
	a.metrics.SortedBytes = a.cacheBytes + a.metrics.SpillBytes
	sources := make([]kvio.Source, 0, len(a.spills)+1)
	if len(a.cache) > 0 {
		sources = append(sources, &kvio.SliceSource{KVs: a.cache})
	}
	for _, f := range a.spills {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("datampi: rewind spill: %w", err)
		}
		sources = append(sources, kvio.NewReader(f))
	}
	a.metrics.MergeRuns = int64(len(sources))
	m, err := kvio.NewMerge(sources)
	if err != nil {
		return err
	}
	a.merged = m
	return nil
}

// NextKV returns the next pair in global key order, or io.EOF.
func (a *AContext) NextKV() (kvio.KV, error) {
	if a.nextKV != nil {
		p := *a.nextKV
		a.nextKV = nil
		return p, nil
	}
	return a.merged.Next()
}

// NextGroup returns the next key and every value for it, in key order.
// It returns io.EOF after the last group.
func (a *AContext) NextGroup() ([]byte, [][]byte, error) {
	first, err := a.NextKV()
	if err != nil {
		return nil, nil, err
	}
	values := [][]byte{first.Value}
	for {
		p, err := a.NextKV()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if !bytes.Equal(p.Key, first.Key) {
			a.nextKV = &p
			break
		}
		values = append(values, p.Value)
	}
	a.metrics.ReduceGroups++
	return first.Key, values, nil
}

// cleanup removes spill runs.
func (a *AContext) cleanup() {
	var errs []error
	for _, f := range a.spills {
		name := f.Name()
		if err := f.Close(); err != nil {
			errs = append(errs, err)
		}
		if err := os.Remove(name); err != nil {
			errs = append(errs, err)
		}
	}
	a.spills = nil
	// Cleanup failures only leak temp files; don't fail the job.
	_ = errors.Join(errs...)
}
