// Package datampi reimplements the DataMPI communication library the
// paper layers under Hive: a bipartite communication model where tasks
// in communicator O (operators, the map side) move key-value pairs to
// tasks in communicator A (aggregators, the reduce side) through
// MPI-style point-to-point messages.
//
// The library provides:
//   - MPI_D-style job lifecycle (Init/Finalize implied by Run),
//     COMM_BIPARTITE_O and COMM_BIPARTITE_A communicators;
//   - key-value Send on the O side with a buffer manager organised as
//     Send Partition Lists (one partition buffer per A task);
//   - blocking and non-blocking shuffle engines (paper §IV-C): the
//     blocking style synchronises every flush in serialized
//     relaxed-all-to-all rounds with receiver acknowledgements, the
//     non-blocking style streams partitions through a bounded send
//     queue drained by a dedicated communication goroutine;
//   - A-side receiver threads that cache intermediate data in memory up
//     to a configurable fraction of the task heap and spill sorted runs
//     to local disk beyond it, then merge-sort all runs into the grouped
//     iterator handed to the aggregator body.
package datampi

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"hivempi/internal/chaos"
	"hivempi/internal/metrics"
	"hivempi/internal/mpi"
	"hivempi/internal/trace"
)

// Message tags used on the wire.
const (
	tagData = 1 // partition buffer payload
	tagDone = 2 // O task finished
	tagAck  = 3 // A -> O acknowledgement (blocking style)
)

// Defaults mirroring the paper's tuned configuration (§IV-D, §V-A).
const (
	DefaultSendBufferBytes = 32 << 10
	DefaultSendQueueSize   = 6
	DefaultMemUsedPercent  = 0.4
	DefaultTaskMemoryBytes = 64 << 20
)

// Partitioner routes a key to one of numA aggregator tasks.
type Partitioner func(key []byte, numA int) int

// HashPartitioner is the default FNV-based partitioner.
func HashPartitioner(key []byte, numA int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(numA))
}

// Combiner optionally folds the values of one key before transmission.
type Combiner func(key []byte, values [][]byte) [][]byte

// Config describes one DataMPI job.
type Config struct {
	NumO int
	NumA int

	Partitioner     Partitioner
	Combiner        Combiner
	SendBufferBytes int     // per-partition buffer before a flush
	SendQueueSize   int     // hive.datampi.sendqueue
	MemUsedPercent  float64 // hive.datampi.memusedpercent
	TaskMemoryBytes int64
	NonBlocking     bool   // shuffle engine style (paper Fig. 6/7)
	SpillDir        string // local disk for A-side spill runs

	// Hosts optionally assigns each world rank to a simulated node for
	// locality accounting; len must be NumO+NumA when set.
	Hosts []string

	// Chaos optionally attaches a fault-injection plane to the job's
	// MPI world (message drop/delay/corruption faults).
	Chaos *chaos.Plane

	// Metrics optionally attaches the observability registry; the job
	// counts send-queue flushes, blocking all-to-all rounds and spilled
	// pairs live (nil = no counting).
	Metrics *metrics.Registry
}

func (c *Config) fill() error {
	if c.NumO <= 0 || c.NumA <= 0 {
		return fmt.Errorf("datampi: NumO=%d NumA=%d must be positive", c.NumO, c.NumA)
	}
	if c.Partitioner == nil {
		c.Partitioner = HashPartitioner
	}
	if c.SendBufferBytes <= 0 {
		c.SendBufferBytes = DefaultSendBufferBytes
	}
	if c.SendQueueSize <= 0 {
		c.SendQueueSize = DefaultSendQueueSize
	}
	if c.MemUsedPercent <= 0 {
		c.MemUsedPercent = DefaultMemUsedPercent
	}
	if c.MemUsedPercent > 1 {
		c.MemUsedPercent = 1
	}
	if c.TaskMemoryBytes <= 0 {
		c.TaskMemoryBytes = DefaultTaskMemoryBytes
	}
	if c.SpillDir == "" {
		c.SpillDir = os.TempDir()
	}
	if c.Hosts != nil && len(c.Hosts) != c.NumO+c.NumA {
		return fmt.Errorf("datampi: Hosts has %d entries, want %d", len(c.Hosts), c.NumO+c.NumA)
	}
	return nil
}

// OBody is the operator task body (the map side).
type OBody func(*OContext) error

// ABody is the aggregator task body (the reduce side).
type ABody func(*AContext) error

// Job is one bipartite DataMPI execution.
type Job struct {
	cfg   Config
	world *mpi.World
	commO *mpi.Comm
	commA *mpi.Comm

	roundMu sync.Mutex // serialized all-to-all rounds (blocking style)

	oTasks []*trace.Task
	aTasks []*trace.Task

	// comm is the stage's communication matrix, fed by the MPI send
	// observer (bytes/messages per delivered data message) and the
	// flush sites (record counts).
	comm *trace.CommMatrix

	// Live observability counters, resolved once at job construction so
	// the Send/flush hot paths pay one atomic add each (nil registry
	// yields nil counters, whose methods are no-ops).
	ctrFlushes    *metrics.Counter
	ctrRounds     *metrics.Counter
	ctrSpillPairs *metrics.Counter
	ctrForced     *metrics.Counter
	ctrCtrlMsgs   *metrics.Counter
	histRecvRound *metrics.Histogram
	histRunWrite  *metrics.Histogram
}

// NewJob validates the configuration and builds the bipartite world:
// world ranks [0,NumO) form COMM_BIPARTITE_O, [NumO,NumO+NumA) form
// COMM_BIPARTITE_A.
func NewJob(cfg Config) (*Job, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(cfg.NumO + cfg.NumA)
	if err != nil {
		return nil, err
	}
	world.SetChaos(cfg.Chaos)
	oranks := make([]int, cfg.NumO)
	for i := range oranks {
		oranks[i] = i
	}
	aranks := make([]int, cfg.NumA)
	for i := range aranks {
		aranks[i] = cfg.NumO + i
	}
	commO, err := world.NewComm(oranks)
	if err != nil {
		return nil, err
	}
	commA, err := world.NewComm(aranks)
	if err != nil {
		return nil, err
	}
	j := &Job{cfg: cfg, world: world, commO: commO, commA: commA}
	j.ctrFlushes = cfg.Metrics.Counter(metrics.CtrMPISendFlushes)
	j.ctrRounds = cfg.Metrics.Counter(metrics.CtrMPIBlockingRounds)
	j.ctrSpillPairs = cfg.Metrics.Counter(metrics.CtrMPISpillPairs)
	j.ctrForced = cfg.Metrics.Counter(metrics.CtrMPIForcedFlushes)
	j.ctrCtrlMsgs = cfg.Metrics.Counter(metrics.CtrMPICtrlMessages)
	j.histRecvRound = cfg.Metrics.Histogram(metrics.HistRecvRoundBytes)
	j.histRunWrite = cfg.Metrics.Histogram(metrics.HistRunWriteBytes)
	j.comm = trace.NewCommMatrix(cfg.NumO, cfg.NumA)
	world.SetSendObserver(func(src, dst, tag int, bytes int) {
		if tag == tagData && src < cfg.NumO && dst >= cfg.NumO {
			j.comm.AddMessage(src, dst-cfg.NumO, int64(bytes))
			return
		}
		j.ctrCtrlMsgs.Inc()
	})
	j.oTasks = make([]*trace.Task, cfg.NumO)
	j.aTasks = make([]*trace.Task, cfg.NumA)
	for i := range j.oTasks {
		j.oTasks[i] = &trace.Task{ID: i, Kind: trace.KindOTask,
			Host: j.host(i), CollectSizes: trace.NewSizeHistogram()}
	}
	for i := range j.aTasks {
		j.aTasks[i] = &trace.Task{ID: i, Kind: trace.KindATask, Host: j.host(cfg.NumO + i)}
	}
	return j, nil
}

func (j *Job) host(worldRank int) string {
	if j.cfg.Hosts == nil {
		return ""
	}
	return j.cfg.Hosts[worldRank]
}

// OMetrics returns the trace records of the O tasks (valid after Run).
func (j *Job) OMetrics() []*trace.Task { return j.oTasks }

// AMetrics returns the trace records of the A tasks (valid after Run).
func (j *Job) AMetrics() []*trace.Task { return j.aTasks }

// Comm returns the job's communication matrix (valid after Run): bytes
// on the wire per (O-rank, A-rank) pair, post-combiner, so row sums
// reconcile with the O tasks' ShuffleOutBytes and column sums with the
// A tasks' ShuffleInBytes.
func (j *Job) Comm() *trace.CommMatrix { return j.comm }

// Run executes the bipartite job: NumO operator goroutines and NumA
// aggregator goroutines are spawned (the mpidrun-spawned CommonProcess
// instances of the paper). A-side receive loops run concurrently with
// the O phase so intermediate data is cached/merged while operators are
// still producing; aggregator bodies start once every O task finalized.
func (j *Job) Run(oBody OBody, aBody ABody) error {
	defer j.world.Finalize()

	errs := make([]error, j.cfg.NumO+j.cfg.NumA)
	var wg sync.WaitGroup

	// A tasks first so their receive loops are live before O sends.
	for i := 0; i < j.cfg.NumA; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[j.cfg.NumO+i] = j.runATask(i, aBody)
		}(i)
	}
	for i := 0; i < j.cfg.NumO; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = j.runOTask(i, oBody)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (j *Job) runOTask(rank int, body OBody) error {
	ctx := newOContext(j, rank)
	if err := body(ctx); err != nil {
		// Still finalize so A tasks terminate, then surface the error.
		ferr := ctx.finalize()
		if ferr != nil {
			return errors.Join(err, ferr)
		}
		return err
	}
	return ctx.finalize()
}

func (j *Job) runATask(rank int, body ABody) error {
	ctx, err := newAContext(j, rank)
	if err != nil {
		return err
	}
	defer ctx.cleanup()
	if err := ctx.receiveAll(); err != nil {
		return fmt.Errorf("a task %d receive: %w", rank, err)
	}
	if err := ctx.prepareIterator(); err != nil {
		return fmt.Errorf("a task %d merge: %w", rank, err)
	}
	if body == nil {
		return nil
	}
	return body(ctx)
}
