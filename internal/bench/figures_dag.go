package bench

import (
	"fmt"
	"strings"

	"hivempi/internal/hibench"
	"hivempi/internal/hive"
	"hivempi/internal/tpch"
)

// DAGMode is one scheduling/storage configuration of a query run.
type DAGMode struct {
	Name     string
	Seconds  float64
	Stages   int
	MemRead  int64 // bytes served from the in-memory tier
	MemWrite int64 // bytes admitted into the in-memory tier
}

// DAGQueryResult compares one multi-stage query across serial stage
// execution, DAG-overlapped execution, and DAG with the in-memory
// intermediate store.
type DAGQueryResult struct {
	Query  string
	SizeGB int
	Modes  []DAGMode
}

// DAGOverlapResult is the -exp dag figure: the multi-stage TPC-H
// queries (Q2/Q8/Q9) and HiBench JOIN, each serial vs DAG-parallel vs
// DAG + memory tier.
type DAGOverlapResult struct {
	SizeGB  int
	Queries []*DAGQueryResult
}

// dagModes configures the three compared modes. The memory-tier budget
// is generous relative to the intermediate volume so the mode isolates
// the tier's best case (spill behaviour is exercised by unit tests).
func dagModes(r *Runner, sizeGB int) []struct {
	name string
	mut  func(*hive.Driver)
} {
	budget := 4 * int64(sizeGB) * r.cfg.BytesPerGB
	return []struct {
		name string
		mut  func(*hive.Driver)
	}{
		{"serial", func(d *hive.Driver) { d.SerialStages = true }},
		{"dag", func(d *hive.Driver) {}},
		{"dag+imstore", func(d *hive.Driver) { d.InMemBytes = budget }},
	}
}

// runDAGQuery runs one script through the three modes on DataMPI over a
// freshly loaded cluster and simulates each trace.
func (r *Runner) runDAGQuery(cl *cluster, name, script string, sizeGB int) (*DAGQueryResult, error) {
	out := &DAGQueryResult{Query: name, SizeGB: sizeGB}
	for _, mode := range dagModes(r, sizeGB) {
		// Detach any previous mode's memory tier: the cluster FS is
		// shared, and the serial/dag baselines must price every
		// intermediate at disk rates.
		cl.env.FS.SetMemTier(nil)
		d := r.driver(cl, "datampi", nil)
		mode.mut(d)
		memRead0 := cl.env.FS.MemBytesRead()
		memWrite0 := cl.env.FS.MemBytesWritten()
		res, err := r.runScript(d, name, "datampi", sizeGB, script)
		if err != nil {
			return nil, fmt.Errorf("dag mode %q: %w", mode.name, err)
		}
		out.Modes = append(out.Modes, DAGMode{
			Name:     mode.name,
			Seconds:  res.Total,
			Stages:   len(res.Jobs),
			MemRead:  cl.env.FS.MemBytesRead() - memRead0,
			MemWrite: cl.env.FS.MemBytesWritten() - memWrite0,
		})
	}
	cl.env.FS.SetMemTier(nil)
	return out, nil
}

// DAGOverlap runs the DAG-scheduling comparison over the multi-stage
// workloads: TPC-H Q2, Q8, Q9 and HiBench JOIN at sizeGB.
func (r *Runner) DAGOverlap(sizeGB int) (*DAGOverlapResult, error) {
	out := &DAGOverlapResult{SizeGB: sizeGB}
	for _, q := range []int{2, 8, 9} {
		cl, err := r.loadTPCH(sizeGB, "textfile")
		if err != nil {
			return nil, err
		}
		script, err := tpch.Query(q)
		if err != nil {
			return nil, err
		}
		qr, err := r.runDAGQuery(cl, tpch.QueryName(q), script, sizeGB)
		if err != nil {
			return nil, err
		}
		out.Queries = append(out.Queries, qr)
	}
	{
		cl, err := r.loadHiBench(sizeGB, "sequencefile")
		if err != nil {
			return nil, err
		}
		qr, err := r.runDAGQuery(cl, "JOIN", hibench.JoinQuery, sizeGB)
		if err != nil {
			return nil, err
		}
		out.Queries = append(out.Queries, qr)
	}
	return out, nil
}

func (d *DAGOverlapResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DAG stage overlap + memory tier: multi-stage queries, %d GB, DataMPI (simulated seconds)\n", d.SizeGB)
	for _, q := range d.Queries {
		var serial float64
		for _, m := range q.Modes {
			if m.Name == "serial" {
				serial = m.Seconds
			}
		}
		fmt.Fprintf(&sb, "  %-8s (%d stages)\n", q.Query, q.Modes[0].Stages)
		for _, m := range q.Modes {
			fmt.Fprintf(&sb, "    %-12s %8.1fs", m.Name, m.Seconds)
			if serial > 0 && m.Name != "serial" {
				fmt.Fprintf(&sb, "  %5.2fx vs serial", serial/m.Seconds)
			}
			if m.MemWrite > 0 {
				fmt.Fprintf(&sb, "  mem-tier %s written / %s read",
					fmtBytes(m.MemWrite), fmtBytes(m.MemRead))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
