package bench

import (
	"bufio"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"hivempi/internal/core"
	"hivempi/internal/exec"
	"hivempi/internal/mrengine"
	"hivempi/internal/perfmodel"
	"hivempi/internal/tpch"
)

// TPCHCell is one (query, engine, format) measurement.
type TPCHCell struct {
	Query   int
	Engine  string
	Format  string
	SizeGB  int
	Seconds float64
	Jobs    []JobResult
}

// TableIIResult is the 40 GB Text-vs-ORC × engine comparison.
type TableIIResult struct {
	Cells []TPCHCell
}

// TableII runs every TPC-H query at 40 GB in both formats on both
// engines (HAD-TEXT / HAD-ORC / DM-TEXT / DM-ORC rows).
func (r *Runner) TableII(queries []int) (*TableIIResult, error) {
	if queries == nil {
		queries = allQueries()
	}
	out := &TableIIResult{}
	for _, format := range []string{"textfile", "orc"} {
		cl, err := r.loadTPCH(40, format)
		if err != nil {
			return nil, err
		}
		for _, eng := range []string{"hadoop", "datampi"} {
			for _, q := range queries {
				res, err := r.runTPCHQuery(cl, eng, q, 40, nil)
				if err != nil {
					return nil, fmt.Errorf("Q%d %s %s: %w", q, eng, format, err)
				}
				out.Cells = append(out.Cells, TPCHCell{
					Query: q, Engine: eng, Format: format, SizeGB: 40,
					Seconds: res.Total, Jobs: res.Jobs,
				})
			}
		}
	}
	return out, nil
}

func allQueries() []int {
	qs := make([]int, tpch.NumQueries)
	for i := range qs {
		qs[i] = i + 1
	}
	return qs
}

// cellMap indexes cells by (query, engine, format).
func cellMap(cells []TPCHCell) map[string]float64 {
	m := map[string]float64{}
	for _, c := range cells {
		m[fmt.Sprintf("%d/%s/%s/%d", c.Query, c.Engine, c.Format, c.SizeGB)] = c.Seconds
	}
	return m
}

// avgGain computes mean (a-b)/a over queries present in both series.
func avgGain(m map[string]float64, aEng, bEng, format string, size int, queries []int) float64 {
	var sum float64
	var n int
	for _, q := range queries {
		a := m[fmt.Sprintf("%d/%s/%s/%d", q, aEng, format, size)]
		b := m[fmt.Sprintf("%d/%s/%s/%d", q, bEng, format, size)]
		if a > 0 && b > 0 {
			sum += (a - b) / a
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (t *TableIIResult) String() string {
	var sb strings.Builder
	sb.WriteString("Table II: TPC-H 40 GB, Text vs ORC (seconds)\n")
	m := cellMap(t.Cells)
	queries := map[int]bool{}
	for _, c := range t.Cells {
		queries[c.Query] = true
	}
	var qs []int
	for q := range queries {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	rows := []struct{ label, eng, format string }{
		{"HAD-TEXT", "hadoop", "textfile"},
		{"HAD-ORC", "hadoop", "orc"},
		{"DM-TEXT", "datampi", "textfile"},
		{"DM-ORC", "datampi", "orc"},
	}
	sb.WriteString("            ")
	for _, q := range qs {
		fmt.Fprintf(&sb, "%8s", tpch.QueryName(q))
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(&sb, "  %-9s ", row.label)
		for _, q := range qs {
			fmt.Fprintf(&sb, "%8.1f", m[fmt.Sprintf("%d/%s/%s/40", q, row.eng, row.format)])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "  ORC gain over Text (hadoop):  %.0f%% (paper: ~22%%)\n",
		100*formatGain(m, "hadoop", qs))
	fmt.Fprintf(&sb, "  ORC gain over Text (datampi): %.0f%%\n",
		100*formatGain(m, "datampi", qs))
	fmt.Fprintf(&sb, "  DataMPI gain (text): %.0f%% (paper: ~20%%), (orc): %.0f%% (paper: ~32%%)\n",
		100*avgGain(m, "hadoop", "datampi", "textfile", 40, qs),
		100*avgGain(m, "hadoop", "datampi", "orc", 40, qs))
	return sb.String()
}

func formatGain(m map[string]float64, eng string, qs []int) float64 {
	var sum float64
	var n int
	for _, q := range qs {
		text := m[fmt.Sprintf("%d/%s/textfile/40", q, eng)]
		orc := m[fmt.Sprintf("%d/%s/orc/40", q, eng)]
		if text > 0 && orc > 0 {
			sum += (text - orc) / text
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Figure11Result compares parallelism strategies per query (h/H/d/D).
type Figure11Result struct {
	Cells map[string]*WorkloadResult // "<query>/<engine>/<mode>"
}

// Figure11 runs queries at 40 GB ORC under both parallelism strategies.
func (r *Runner) Figure11(queries []int) (*Figure11Result, error) {
	if queries == nil {
		queries = allQueries()
	}
	cl, err := r.loadTPCH(40, "orc")
	if err != nil {
		return nil, err
	}
	out := &Figure11Result{Cells: map[string]*WorkloadResult{}}
	for _, eng := range []string{"hadoop", "datampi"} {
		for _, mode := range []exec.ParallelismMode{exec.ParallelismDefault, exec.ParallelismEnhanced} {
			for _, q := range queries {
				mode := mode
				res, err := r.runTPCHQuery(cl, eng, q, 40, func(c *exec.EngineConf) {
					c.Parallelism = mode
				})
				if err != nil {
					return nil, err
				}
				out.Cells[fmt.Sprintf("%d/%s/%s", q, eng, mode)] = res
			}
		}
	}
	return out, nil
}

// StrategyGain reports the enhanced strategy's mean improvement.
func (f *Figure11Result) StrategyGain(engine string) float64 {
	var sum float64
	var n int
	for key, res := range f.Cells {
		if !strings.Contains(key, "/"+engine+"/"+string(exec.ParallelismDefault)) {
			continue
		}
		enhKey := strings.Replace(key, string(exec.ParallelismDefault),
			string(exec.ParallelismEnhanced), 1)
		enh, ok := f.Cells[enhKey]
		if !ok || res.Total <= 0 {
			continue
		}
		sum += (res.Total - enh.Total) / res.Total
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// EnhancedGainOverHadoop is DataMPI-vs-Hadoop under enhanced strategy.
func (f *Figure11Result) EnhancedGainOverHadoop() float64 {
	var sum float64
	var n int
	for key, res := range f.Cells {
		if !strings.Contains(key, "/hadoop/"+string(exec.ParallelismEnhanced)) {
			continue
		}
		dmKey := strings.Replace(key, "hadoop", "datampi", 1)
		dm, ok := f.Cells[dmKey]
		if !ok || res.Total <= 0 {
			continue
		}
		sum += (res.Total - dm.Total) / res.Total
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (f *Figure11Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 11: parallelism strategies, TPC-H 40 GB ORC (seconds)\n")
	sb.WriteString("  query   h(had/def)  H(had/enh)  d(dm/def)  D(dm/enh)\n")
	queries := map[int]bool{}
	for key := range f.Cells {
		var q int
		fmt.Sscanf(key, "%d/", &q)
		queries[q] = true
	}
	var qs []int
	for q := range queries {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	get := func(q int, eng string, mode exec.ParallelismMode) float64 {
		if res, ok := f.Cells[fmt.Sprintf("%d/%s/%s", q, eng, mode)]; ok {
			return res.Total
		}
		return 0
	}
	for _, q := range qs {
		fmt.Fprintf(&sb, "  %-6s %10.1f %11.1f %10.1f %10.1f\n", tpch.QueryName(q),
			get(q, "hadoop", exec.ParallelismDefault),
			get(q, "hadoop", exec.ParallelismEnhanced),
			get(q, "datampi", exec.ParallelismDefault),
			get(q, "datampi", exec.ParallelismEnhanced))
	}
	fmt.Fprintf(&sb, "  enhanced-vs-default gain: hadoop %.0f%% (paper: 14%%), datampi %.0f%% (paper: 23%%)\n",
		100*f.StrategyGain("hadoop"), 100*f.StrategyGain("datampi"))
	fmt.Fprintf(&sb, "  datampi-vs-hadoop (enhanced): %.0f%% (paper: 29%%)\n",
		100*f.EnhancedGainOverHadoop())
	return sb.String()
}

// Figure12Result is the TPC-H scalability sweep.
type Figure12Result struct {
	Cells []TPCHCell
}

// Figure12 runs queries across sizes and formats on both engines with
// the enhanced strategy (as the paper does).
func (r *Runner) Figure12(sizes []int, queries []int) (*Figure12Result, error) {
	if queries == nil {
		queries = allQueries()
	}
	out := &Figure12Result{}
	for _, gb := range sizes {
		for _, format := range []string{"textfile", "orc"} {
			cl, err := r.loadTPCH(gb, format)
			if err != nil {
				return nil, err
			}
			for _, eng := range []string{"hadoop", "datampi"} {
				for _, q := range queries {
					res, err := r.runTPCHQuery(cl, eng, q, gb, func(c *exec.EngineConf) {
						c.Parallelism = exec.ParallelismEnhanced
					})
					if err != nil {
						return nil, err
					}
					out.Cells = append(out.Cells, TPCHCell{
						Query: q, Engine: eng, Format: format, SizeGB: gb,
						Seconds: res.Total,
					})
				}
			}
		}
	}
	return out, nil
}

// BestCase finds the largest DataMPI gain (paper: Q12, 20 GB ORC, 53%).
func (f *Figure12Result) BestCase() (query, sizeGB int, format string, gain float64) {
	m := cellMap(f.Cells)
	for _, c := range f.Cells {
		if c.Engine != "hadoop" {
			continue
		}
		dm := m[fmt.Sprintf("%d/datampi/%s/%d", c.Query, c.Format, c.SizeGB)]
		if c.Seconds <= 0 || dm <= 0 {
			continue
		}
		g := (c.Seconds - dm) / c.Seconds
		if g > gain {
			gain = g
			query, sizeGB, format = c.Query, c.SizeGB, c.Format
		}
	}
	return query, sizeGB, format, gain
}

func (f *Figure12Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 12: TPC-H scalability (total seconds per size/format/engine)\n")
	m := cellMap(f.Cells)
	sizes := map[int]bool{}
	queries := map[int]bool{}
	for _, c := range f.Cells {
		sizes[c.SizeGB] = true
		queries[c.Query] = true
	}
	var szs, qs []int
	for s := range sizes {
		szs = append(szs, s)
	}
	for q := range queries {
		qs = append(qs, q)
	}
	sort.Ints(szs)
	sort.Ints(qs)
	for _, format := range []string{"textfile", "orc"} {
		for _, gb := range szs {
			var h, d float64
			for _, q := range qs {
				h += m[fmt.Sprintf("%d/hadoop/%s/%d", q, format, gb)]
				d += m[fmt.Sprintf("%d/datampi/%s/%d", q, format, gb)]
			}
			fmt.Fprintf(&sb, "  %-8s %2dGB: hadoop=%8.1f datampi=%8.1f gain=%4.0f%%\n",
				format, gb, h, d, 100*(h-d)/h)
		}
	}
	for _, format := range []string{"textfile", "orc"} {
		var sum float64
		var n int
		for _, gb := range szs {
			g := avgGain(m, "hadoop", "datampi", format, gb, qs)
			if g != 0 {
				sum += g
				n++
			}
		}
		if n > 0 {
			fmt.Fprintf(&sb, "  average DataMPI gain (%s): %.0f%%\n", format, 100*sum/float64(n))
		}
	}
	q, gb, format, gain := f.BestCase()
	fmt.Fprintf(&sb, "  best case: %s at %dGB %s, %.0f%% (paper: Q12 20GB ORC, 53%%)\n",
		tpch.QueryName(q), gb, format, 100*gain)
	sb.WriteString("  (paper: avg 20%% Text, 32%% ORC)\n")
	return sb.String()
}

// Figure13Result is the Q9 resource-utilization comparison.
type Figure13Result struct {
	HadoopSeconds  float64
	DataMPISeconds float64
	Hadoop         []perfmodel.Utilization
	DataMPI        []perfmodel.Utilization
}

// Figure13 runs Q9 at 40 GB ORC (enhanced) and samples utilization.
func (r *Runner) Figure13() (*Figure13Result, error) {
	cl, err := r.loadTPCH(40, "orc")
	if err != nil {
		return nil, err
	}
	out := &Figure13Result{}
	for _, eng := range []string{"hadoop", "datampi"} {
		d := r.driver(cl, eng, func(c *exec.EngineConf) {
			c.Parallelism = exec.ParallelismEnhanced
		})
		d.Collector.Reset()
		q9, _ := tpch.Query(9)
		if _, err := d.Run(q9); err != nil {
			return nil, err
		}
		var sims []*perfmodel.StageTiming
		var total float64
		for _, q := range d.Collector.Queries() {
			sim := r.cfg.Params.SimulateQuery(q)
			// Successive statements run back to back: shift this query's
			// critical-path offsets by the script time already elapsed, so
			// the concatenated series stays serial across queries while
			// preserving intra-query stage overlap.
			for _, st := range sim.Stages {
				st.StartAt += total
			}
			total += sim.Total
			sims = append(sims, sim.Stages...)
		}
		series := perfmodel.UtilizationSeries(sims, r.cfg.Params.Cluster)
		if eng == "hadoop" {
			out.HadoopSeconds, out.Hadoop = total, series
		} else {
			out.DataMPISeconds, out.DataMPI = total, series
		}
	}
	return out, nil
}

func seriesStats(s []perfmodel.Utilization) (avgCPU, avgNet, peakNet, avgRead, avgWrite, peakMem float64) {
	if len(s) == 0 {
		return
	}
	for _, u := range s {
		avgCPU += u.CPUPct
		avgNet += u.Net
		avgRead += u.DiskRead
		avgWrite += u.DiskWrite
		if u.Net > peakNet {
			peakNet = u.Net
		}
		if u.MemBytes > peakMem {
			peakMem = u.MemBytes
		}
	}
	n := float64(len(s))
	return avgCPU / n, avgNet / n, peakNet, avgRead / n, avgWrite / n, peakMem
}

func (f *Figure13Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 13: TPC-H Q9 40 GB resource utilization\n")
	fmt.Fprintf(&sb, "  execution: hadoop=%.0fs datampi=%.0fs (paper: 802s vs 598s, -25%%)\n",
		f.HadoopSeconds, f.DataMPISeconds)
	for _, row := range []struct {
		name   string
		series []perfmodel.Utilization
	}{{"hadoop", f.Hadoop}, {"datampi", f.DataMPI}} {
		cpu, net, peakNet, rd, wr, mem := seriesStats(row.series)
		fmt.Fprintf(&sb, "  %-8s avgCPU=%4.0f%% avgNet=%5.1fMB/s peakNet=%5.1fMB/s avgRead=%4.1fMB/s avgWrite=%4.1fMB/s peakMem=%.1fGB\n",
			row.name, cpu, net/1e6, peakNet/1e6, rd/1e6, wr/1e6, mem/1e9)
	}
	sb.WriteString("  (paper: DataMPI higher avg net ~30 vs ~20 MB/s, slightly higher CPU, same peaks)\n")
	return sb.String()
}

// TableIIIResult is the productivity (code size) analysis.
type TableIIIResult struct {
	CoreLines     int // DataMPI engine plug-in (internal/core)
	MREngineLines int // Hadoop engine adapter (internal/mrengine)
	Files         map[string]int
}

// TableIII counts the plug-in's code lines from the embedded sources,
// mirroring the paper's "main changed code lines" productivity claim:
// the DataMPI engine is a small adapter because the compiler, operator
// and storage layers are shared.
func (r *Runner) TableIII() (*TableIIIResult, error) {
	out := &TableIIIResult{Files: map[string]int{}}
	coreLines, coreFiles, err := countFS(core.Source)
	if err != nil {
		return nil, err
	}
	mrLines, mrFiles, err := countFS(mrengine.Source)
	if err != nil {
		return nil, err
	}
	out.CoreLines = coreLines
	out.MREngineLines = mrLines
	for k, v := range coreFiles {
		out.Files["core/"+k] = v
	}
	for k, v := range mrFiles {
		out.Files["mrengine/"+k] = v
	}
	return out, nil
}

// countFS counts non-blank, non-comment code lines of the embedded
// package sources (test files excluded).
func countFS(fsys fs.FS) (int, map[string]int, error) {
	entries, err := fs.ReadDir(fsys, ".")
	if err != nil {
		return 0, nil, err
	}
	total := 0
	perFile := map[string]int{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || name == "embed.go" {
			continue
		}
		data, err := fs.ReadFile(fsys, name)
		if err != nil {
			return 0, nil, err
		}
		n := 0
		sc := bufio.NewScanner(strings.NewReader(string(data)))
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "//") {
				continue
			}
			n++
		}
		perFile[name] = n
		total += n
	}
	return total, perFile, nil
}

func (t *TableIIIResult) String() string {
	var sb strings.Builder
	sb.WriteString("Table III: productivity (engine adapter code lines)\n")
	var names []string
	for n := range t.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "  %-24s %5d lines\n", n, t.Files[n])
	}
	fmt.Fprintf(&sb, "  DataMPI plug-in total: %d lines vs Hadoop adapter %d lines\n",
		t.CoreLines, t.MREngineLines)
	sb.WriteString("  (paper: ~0.3K changed lines; the compiler/operators/storage are shared)\n")
	return sb.String()
}
