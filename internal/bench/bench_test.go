package bench

import (
	"strings"
	"testing"
)

func quickRunner(t *testing.T) *Runner {
	t.Helper()
	cfg := QuickConfig()
	cfg.SpillDir = t.TempDir()
	return NewRunner(cfg)
}

func TestTableI(t *testing.T) {
	r := quickRunner(t)
	res, err := r.TableI([]int{5}, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if res.HiBench[5]["uservisits"] <= res.HiBench[5]["rankings"] {
		t.Error("uservisits should dominate rankings (Table I)")
	}
	if res.TPCH[10]["lineitem"] <= res.TPCH[10]["orders"] {
		t.Error("lineitem should dominate orders")
	}
	if !strings.Contains(res.String(), "lineitem") {
		t.Error("rendering incomplete")
	}
}

func TestFigure1MotivationShape(t *testing.T) {
	r := quickRunner(t)
	res, err := r.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	var su, ms, tot float64
	var aggMS, aggTot float64
	for _, w := range res.Workloads {
		for _, j := range w.Jobs {
			su += j.Startup
			ms += j.MapShuffle
			tot += j.Total()
			if w.Workload == "AGGREGATE" {
				aggMS += j.MapShuffle
				aggTot += j.Total()
			}
		}
	}
	// The paper's >50% average holds cleanly for AGGREGATE; our JOIN's
	// first job is reduce-skew-bound (the Zipfian hot key), which drags
	// the combined share down — EXPERIMENTS.md discusses the deviation.
	if aggMS/aggTot < 0.5 {
		t.Errorf("AGGREGATE Map-Shuffle share %.0f%% too low (paper: >50%%)", 100*aggMS/aggTot)
	}
	if ms/tot < 0.3 {
		t.Errorf("overall Map-Shuffle share %.0f%% too low", 100*ms/tot)
	}
	if su/tot > 0.25 {
		t.Errorf("startup share %.0f%% too high (paper: ~5%%)", 100*su/tot)
	}
	// JOIN has 3 jobs, AGGREGATE 1 (paper Fig. 1).
	for _, w := range res.Workloads {
		want := 1
		if w.Workload == "JOIN" {
			want = 3
		}
		if len(w.Jobs) != want {
			t.Errorf("%s has %d jobs, want %d", w.Workload, len(w.Jobs), want)
		}
	}
	t.Log("\n" + res.String())
}

func TestFigure2Characteristics(t *testing.T) {
	r := quickRunner(t)
	res, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if res.AggSpread <= res.TeraSpread {
		t.Errorf("Hive end-time spread %.3f should exceed TeraSort %.3f (Fig. 2a/2b)",
			res.AggSpread, res.TeraSpread)
	}
	if len(res.AggTopSizes) == 0 || len(res.Q3TopSizes) == 0 {
		t.Error("KV size modes missing")
	}
	t.Log("\n" + res.String())
}

func TestFigure6BlockingShape(t *testing.T) {
	r := quickRunner(t)
	res, err := r.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.BlockingOPhase / res.NonBlockingOPhase
	if ratio < 1.3 || ratio > 4.0 {
		t.Errorf("blocking/non-blocking ratio %.2f outside [1.3, 4.0] (paper ~2.0)", ratio)
	}
	t.Log("\n" + res.String())
}

func TestFigure8TuningShape(t *testing.T) {
	r := quickRunner(t)
	res, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if res.MemPercent[0.4] >= res.MemPercent[1.0] {
		t.Errorf("memusedpercent=0.4 (%.1f) should beat 1.0 (%.1f, GC side)",
			res.MemPercent[0.4], res.MemPercent[1.0])
	}
	if res.SendQueue[2] < res.SendQueue[6] {
		t.Errorf("queue=2 (%.1f) should be slower than queue=6 (%.1f)",
			res.SendQueue[2], res.SendQueue[6])
	}
	if diff := res.SendQueue[6] - res.SendQueue[10]; diff > res.SendQueue[6]*0.05 {
		t.Errorf("queue 6 vs 10 should be stable, got %.1f vs %.1f",
			res.SendQueue[6], res.SendQueue[10])
	}
	t.Log("\n" + res.String())
}

func TestFigure9GainBand(t *testing.T) {
	r := quickRunner(t)
	res, err := r.Figure9([]int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	gain := res.AverageGain()
	if gain < 0.10 || gain > 0.60 {
		t.Errorf("HiBench average gain %.0f%% outside [10%%, 60%%] (paper ~30%%)", 100*gain)
	}
	t.Log("\n" + res.String())
}

func TestFigure10MSGains(t *testing.T) {
	r := quickRunner(t)
	res, err := r.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	gains := res.MSGains()
	if len(gains) < 3 {
		t.Fatalf("too few per-job comparisons: %v", gains)
	}
	positive := 0
	for _, g := range gains {
		if g > 0 {
			positive++
		}
	}
	if positive*2 < len(gains) {
		t.Errorf("most MS gains should be positive (paper 20-70%%): %v", gains)
	}
	t.Log("\n" + res.String())
}

func TestTableIIShape(t *testing.T) {
	r := quickRunner(t)
	qs := []int{1, 3, 6, 12}
	res, err := r.TableII(qs)
	if err != nil {
		t.Fatal(err)
	}
	m := cellMap(res.Cells)
	orcGain := formatGain(m, "hadoop", qs)
	if orcGain <= 0 {
		t.Errorf("ORC should beat Text on Hadoop, gain %.0f%%", 100*orcGain)
	}
	dmORC := avgGain(m, "hadoop", "datampi", "orc", 40, qs)
	if dmORC <= 0.05 {
		t.Errorf("DataMPI ORC gain %.0f%% too small (paper ~32%%)", 100*dmORC)
	}
	t.Log("\n" + res.String())
}

func TestFigure11ParallelismShape(t *testing.T) {
	r := quickRunner(t)
	// Q9 is the paper's skew example; include a flat query too.
	res, err := r.Figure11([]int{1, 9})
	if err != nil {
		t.Fatal(err)
	}
	dmGain := res.StrategyGain("datampi")
	if dmGain < -0.05 {
		t.Errorf("enhanced strategy should not hurt datampi: %.0f%%", 100*dmGain)
	}
	if g := res.EnhancedGainOverHadoop(); g <= 0 {
		t.Errorf("datampi should beat hadoop under enhanced: %.0f%%", 100*g)
	}
	t.Log("\n" + res.String())
}

func TestFigure12BestCase(t *testing.T) {
	r := quickRunner(t)
	res, err := r.Figure12([]int{10, 20}, []int{3, 12})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, gain := res.BestCase()
	if gain < 0.15 {
		t.Errorf("best-case gain %.0f%% too small (paper: 53%%)", 100*gain)
	}
	t.Log("\n" + res.String())
}

func TestFigure13Utilization(t *testing.T) {
	r := quickRunner(t)
	res, err := r.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	if res.DataMPISeconds >= res.HadoopSeconds {
		t.Errorf("Q9: datampi %.0fs should beat hadoop %.0fs (paper 598 vs 802)",
			res.DataMPISeconds, res.HadoopSeconds)
	}
	_, hNet, _, _, _, _ := seriesStats(res.Hadoop)
	_, dNet, _, _, _, _ := seriesStats(res.DataMPI)
	if dNet <= hNet {
		t.Errorf("datampi avg net %.1f should exceed hadoop %.1f (paper 30 vs 20 MB/s)",
			dNet/1e6, hNet/1e6)
	}
	t.Log("\n" + res.String())
}

func TestTableIIIProductivity(t *testing.T) {
	r := quickRunner(t)
	res, err := r.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if res.CoreLines == 0 || res.MREngineLines == 0 {
		t.Fatal("embedded source counting failed")
	}
	// The plug-in should stay small (paper: ~0.3K changed lines).
	if res.CoreLines > 800 {
		t.Errorf("DataMPI plug-in is %d lines; the productivity claim wants a small adapter",
			res.CoreLines)
	}
	t.Log("\n" + res.String())
}

func TestAblationsEveryOptimizationHelps(t *testing.T) {
	r := quickRunner(t)
	res, err := r.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range res.Rows {
		with, without := v[0], v[1]
		if without < with*0.98 {
			t.Errorf("%s: disabling it helped (%.1f -> %.1f); the design choice is unjustified",
				name, with, without)
		}
	}
	// The headline optimizations must show a clear penalty when removed.
	for _, name := range []string{"map-side aggregation", "non-blocking shuffle",
		"orc column projection"} {
		v, ok := res.Rows[name]
		if !ok {
			t.Errorf("missing ablation %s", name)
			continue
		}
		if v[1] < v[0]*1.03 {
			t.Errorf("%s: penalty only %.1f%% (want >= 3%%)", name, 100*(v[1]-v[0])/v[0])
		}
	}
	t.Log("\n" + res.String())
}

func TestFaultRecoveryFigure(t *testing.T) {
	r := quickRunner(t)
	res, err := r.FaultRecovery(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FaultScenario{}
	for _, sc := range res.Scenarios {
		byName[sc.Name] = sc
	}
	clean := byName["clean"]
	if clean.Seconds <= 0 || clean.Fired != 0 {
		t.Fatalf("clean baseline malformed: %+v", clean)
	}
	rec := byName["retry+checkpoint"]
	if rec.Fired == 0 {
		t.Error("recovery scenario injected no faults")
	}
	if rec.Seconds <= clean.Seconds {
		t.Errorf("recovery (%.1fs) should cost more than clean (%.1fs)",
			rec.Seconds, clean.Seconds)
	}
	spec := byName["straggler+speculation"]
	noSpec := byName["straggler, no speculation"]
	if noSpec.Seconds <= spec.Seconds {
		t.Errorf("speculation off (%.1fs) should be slower than on (%.1fs)",
			noSpec.Seconds, spec.Seconds)
	}
	fb := byName["fallback to hadoop"]
	if !fb.Degraded || fb.Engine != "hadoop" {
		t.Errorf("fallback scenario should degrade to hadoop: %+v", fb)
	}
	out := res.String()
	if !strings.Contains(out, "Fault recovery") || !strings.Contains(out, "overhead") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}

func TestNodeLossRecoveryFigure(t *testing.T) {
	r := quickRunner(t)
	res, err := r.NodeLossRecovery(5)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]NodeLossScenario{}
	for _, sc := range res.Scenarios {
		byName[sc.Name] = sc
	}
	clean := byName["fault-free"]
	if clean.Seconds <= 0 || clean.Fired != 0 || clean.Rerepl != 0 {
		t.Fatalf("fault-free baseline malformed: %+v", clean)
	}
	one := byName["one node lost"]
	if one.Fired != 1 || one.DeadNodes != 1 {
		t.Fatalf("single-crash scenario malformed: %+v", one)
	}
	if one.Rerepl == 0 || one.RecoverySec <= 0 {
		t.Errorf("node death billed no re-replication: %+v", one)
	}
	if one.Seconds <= clean.Seconds {
		t.Errorf("node loss (%.1fs) should cost more than fault-free (%.1fs)",
			one.Seconds, clean.Seconds)
	}
	double := byName["loss during repair"]
	if double.DeadNodes != 2 || double.Rerepl <= one.Rerepl {
		t.Errorf("double death should copy more than one (%+v vs %+v)", double, one)
	}
	flap := byName["slow-node flap"]
	if flap.DeadNodes != 0 || flap.Rerepl != 0 {
		t.Errorf("a flap must not kill nodes or move replicas: %+v", flap)
	}
	if flap.Fired == 0 {
		t.Error("slow-node schedule injected nothing")
	}
	out := res.String()
	if !strings.Contains(out, "Node-loss recovery") || !strings.Contains(out, "overhead") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}
