package bench

import (
	"fmt"
	"io"

	"hivempi/internal/obs"
	"hivempi/internal/obs/comm"
	"hivempi/internal/tpch"
)

// TraceDAG runs one multi-stage TPC-H query DAG-parallel on DataMPI and
// writes the Chrome trace-event JSON of its simulated timeline to w
// (open the file in Perfetto / chrome://tracing). Returns the number of
// events written.
func (r *Runner) TraceDAG(q, sizeGB int, w io.Writer) (int, error) {
	cl, err := r.loadTPCH(sizeGB, "textfile")
	if err != nil {
		return 0, err
	}
	script, err := tpch.Query(q)
	if err != nil {
		return 0, err
	}
	d := r.driver(cl, "datampi", nil)
	d.Collector.Reset()
	if _, err := d.Run(script); err != nil {
		return 0, fmt.Errorf("trace %s: %w", tpch.QueryName(q), err)
	}
	return obs.WriteChromeTrace(w, d.Collector.Queries(), &r.cfg.Params)
}

// CommReport runs one AGGREGATE-shaped and one JOIN-shaped TPC-H query
// (Q1 and Q9) on DataMPI and writes the validated communication report
// — per-stage shuffle matrices with skew statistics — as JSON to w.
// Returns the number of queries and analyzed shuffle stages.
func (r *Runner) CommReport(sizeGB int, w io.Writer) (queries, stages int, err error) {
	cl, err := r.loadTPCH(sizeGB, "textfile")
	if err != nil {
		return 0, 0, err
	}
	d := r.driver(cl, "datampi", nil)
	d.Collector.Reset()
	for _, q := range []int{1, 9} {
		script, err := tpch.Query(q)
		if err != nil {
			return 0, 0, err
		}
		if _, err := d.Run(script); err != nil {
			return 0, 0, fmt.Errorf("comm report %s: %w", tpch.QueryName(q), err)
		}
	}
	rep := comm.BuildReport(d.Collector.Queries(), &r.cfg.Params)
	if err := rep.Validate(); err != nil {
		return 0, 0, err
	}
	if err := comm.WriteJSON(w, rep); err != nil {
		return 0, 0, err
	}
	for _, q := range rep.Queries {
		stages += len(q.Stages)
	}
	return len(rep.Queries), stages, nil
}
