package bench

import (
	"fmt"
	"io"

	"hivempi/internal/obs"
	"hivempi/internal/tpch"
)

// TraceDAG runs one multi-stage TPC-H query DAG-parallel on DataMPI and
// writes the Chrome trace-event JSON of its simulated timeline to w
// (open the file in Perfetto / chrome://tracing). Returns the number of
// events written.
func (r *Runner) TraceDAG(q, sizeGB int, w io.Writer) (int, error) {
	cl, err := r.loadTPCH(sizeGB, "textfile")
	if err != nil {
		return 0, err
	}
	script, err := tpch.Query(q)
	if err != nil {
		return 0, err
	}
	d := r.driver(cl, "datampi", nil)
	d.Collector.Reset()
	if _, err := d.Run(script); err != nil {
		return 0, fmt.Errorf("trace %s: %w", tpch.QueryName(q), err)
	}
	return obs.WriteChromeTrace(w, d.Collector.Queries(), &r.cfg.Params)
}
