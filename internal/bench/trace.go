package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hivempi/internal/hive"
	"hivempi/internal/obs"
	"hivempi/internal/obs/bundle"
	"hivempi/internal/obs/comm"
	"hivempi/internal/tpch"
	"hivempi/internal/trace"
)

// Capture is one instrumented run: the collected stage traces plus the
// per-statement results, ready to export as a Chrome trace, a comm
// report, or a run bundle. One capture feeds all three sinks, so
// `benchsuite -trace/-comm/-bundle` share a single execution instead
// of each hardcoding its own query set.
type Capture struct {
	QueryNums  []int
	Queries    []*trace.Query
	Statements []bundle.StatementInfo
}

// CaptureQueries runs the given TPC-H queries DAG-parallel on DataMPI
// over a fresh sizeGB cluster and returns the capture.
func (r *Runner) CaptureQueries(qs []int, sizeGB int) (*Capture, error) {
	cl, err := r.loadTPCH(sizeGB, "textfile")
	if err != nil {
		return nil, err
	}
	d := r.driver(cl, "datampi", nil)
	d.Collector.Reset()
	c := &Capture{QueryNums: qs}
	for _, q := range qs {
		script, err := tpch.Query(q)
		if err != nil {
			return nil, err
		}
		results, err := d.Run(script)
		if err != nil {
			return nil, fmt.Errorf("capture %s: %w", tpch.QueryName(q), err)
		}
		c.Statements = append(c.Statements, statementInfos(results)...)
	}
	c.Queries = d.Collector.Queries()
	return c, nil
}

// statementInfos converts driver results to bundle statement records.
func statementInfos(results []*hive.Result) []bundle.StatementInfo {
	infos := make([]bundle.StatementInfo, 0, len(results))
	for _, res := range results {
		infos = append(infos, bundle.StatementInfo{
			Statement: res.Statement,
			Metrics:   res.Metrics,
			Degraded:  res.Degraded,
		})
	}
	return infos
}

// WriteTrace exports the capture's Chrome trace-event timeline (open
// in Perfetto / chrome://tracing). Returns the number of events.
func (r *Runner) WriteTrace(c *Capture, w io.Writer) (int, error) {
	return obs.WriteChromeTrace(w, c.Queries, &r.cfg.Params)
}

// WriteComm exports the capture's validated communication report —
// per-stage shuffle matrices with skew statistics. Returns the number
// of queries and analyzed shuffle stages.
func (r *Runner) WriteComm(c *Capture, w io.Writer) (queries, stages int, err error) {
	rep := comm.BuildReport(c.Queries, &r.cfg.Params)
	if err := rep.Validate(); err != nil {
		return 0, 0, err
	}
	if err := comm.WriteJSON(w, rep); err != nil {
		return 0, 0, err
	}
	for _, q := range rep.Queries {
		stages += len(q.Stages)
	}
	return len(rep.Queries), stages, nil
}

// WriteBundle exports the capture as a validated hivempi.bundle/v1 run
// bundle under the given label.
func (r *Runner) WriteBundle(c *Capture, label string, w io.Writer) error {
	b := bundle.Build(bundle.BuildInput{
		Label:      label,
		Queries:    c.Queries,
		Statements: c.Statements,
	}, &r.cfg.Params)
	if err := b.Validate(); err != nil {
		return err
	}
	return bundle.WriteJSON(w, b)
}

// writeRunBundle snapshots a driver's collected queries plus statement
// results into <BundleDir>/<name>.bundle.json. No-op when BundleDir is
// unset, so capture stays zero-cost for ordinary runs.
func (r *Runner) writeRunBundle(name, label string, d *hive.Driver, results []*hive.Result) error {
	if r.BundleDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.BundleDir, 0o755); err != nil {
		return err
	}
	b := bundle.Build(bundle.BuildInput{
		Label:      label,
		Queries:    d.Collector.Queries(),
		Statements: statementInfos(results),
	}, &r.cfg.Params)
	return bundle.WriteFile(filepath.Join(r.BundleDir, name+".bundle.json"), b)
}

// TraceDAG runs one multi-stage TPC-H query DAG-parallel on DataMPI and
// writes the Chrome trace-event JSON of its simulated timeline to w
// (open the file in Perfetto / chrome://tracing). Returns the number of
// events written.
func (r *Runner) TraceDAG(q, sizeGB int, w io.Writer) (int, error) {
	c, err := r.CaptureQueries([]int{q}, sizeGB)
	if err != nil {
		return 0, err
	}
	return r.WriteTrace(c, w)
}

// CommReport runs one AGGREGATE-shaped and one JOIN-shaped TPC-H query
// (Q1 and Q9) on DataMPI and writes the validated communication report
// — per-stage shuffle matrices with skew statistics — as JSON to w.
// Returns the number of queries and analyzed shuffle stages.
func (r *Runner) CommReport(sizeGB int, w io.Writer) (queries, stages int, err error) {
	c, err := r.CaptureQueries([]int{1, 9}, sizeGB)
	if err != nil {
		return 0, 0, err
	}
	return r.WriteComm(c, w)
}
