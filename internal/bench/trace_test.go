package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"hivempi/internal/obs"
)

// TestTraceDAGEndToEnd drives the full export path the benchsuite
// -trace flag uses: run TPC-H Q9 DAG-parallel, export the Chrome trace
// and check it is schema-valid with real span content.
func TestTraceDAGEndToEnd(t *testing.T) {
	r := quickRunner(t)
	var buf bytes.Buffer
	events, err := r.TraceDAG(9, 5, &buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	if n != events {
		t.Errorf("validator saw %d events, exporter reported %d", n, events)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var spans, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur < 0 {
				t.Errorf("span %q has negative duration", ev.Name)
			}
		case "M":
			meta++
		}
	}
	if spans == 0 {
		t.Error("trace has no complete (X) span events")
	}
	if meta == 0 {
		t.Error("trace has no metadata (process/thread name) events")
	}
}
