package bench

import (
	"math"
	"testing"

	"hivempi/internal/obs/bundle"
)

// TestSkewBundleAttribution is the seeded regression-attribution test
// of the acceptance criteria: run the `-exp skew` A/B pair (adaptation
// off vs. on) with bundle capture, then diff the two bundles the way
// `tracediff skew.off skew.on` would — with the off arm as the
// "current" (slower) side, i.e. the known injected slowdown of
// disabling adapt on a skewed join. tracediff must blame the
// shuffle/A-wait category for at least half the makespan delta, and
// its category sums must reconcile with the critical-path totals to
// within 1%.
func TestSkewBundleAttribution(t *testing.T) {
	r := quickRunner(t)
	r.BundleDir = t.TempDir()
	res, err := r.SkewAdaptive()
	if err != nil {
		t.Fatal(err)
	}

	pairs, err := bundle.FindPairs(r.BundleDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].Name != "skew" {
		t.Fatalf("expected the skew bundle pair, got %+v", pairs)
	}
	// Pair order is lexicographic (off before on); the injected
	// regression is adapt OFF, so diff with "on" as base.
	p := pairs[0]
	base, err := bundle.ReadFile(p.CurPath) // skew.on — the fast arm
	if err != nil {
		t.Fatal(err)
	}
	cur, err := bundle.ReadFile(p.BasePath) // skew.off — the regression
	if err != nil {
		t.Fatal(err)
	}
	d := bundle.Diff(base, cur)

	// The bundles' totals are the experiment's own measured arms.
	if math.Abs(d.BaseSec-res.OnSec) > 1e-6*(1+res.OnSec) {
		t.Errorf("bundle base total %.3f != OnSec %.3f", d.BaseSec, res.OnSec)
	}
	if math.Abs(d.CurSec-res.OffSec) > 1e-6*(1+res.OffSec) {
		t.Errorf("bundle cur total %.3f != OffSec %.3f", d.CurSec, res.OffSec)
	}
	if d.DeltaSec <= 0 {
		t.Fatalf("disabling adapt should regress: delta=%.3f", d.DeltaSec)
	}

	// Category sums reconcile with the critical-path makespan delta
	// (acceptance bound is 1%; the construction is exact to float eps).
	var sum float64
	for _, v := range d.Categories {
		sum += v
	}
	if math.Abs(sum-d.DeltaSec) > 0.01*math.Abs(d.DeltaSec) {
		t.Errorf("category sums %.6f drift >1%% from makespan delta %.6f", sum, d.DeltaSec)
	}

	// ≥50% of the delta lands on the skewed shuffle's wait category.
	skew := d.Categories[bundle.CatAwaitSkew]
	if skew < 0.5*d.DeltaSec {
		t.Errorf("await_skew attributed %.3fs of %.3fs delta (<50%%): %v",
			skew, d.DeltaSec, d.Categories)
	}

	// The adaptive arm's bundle records the adapt decisions that the
	// off arm lacks — the evidence trail for the attribution.
	var splits int
	for _, q := range base.Queries {
		for _, st := range q.Stages {
			if st.Adapt != nil {
				splits += st.Adapt.Split
			}
		}
	}
	if splits == 0 {
		t.Error("adaptive arm's bundle carries no adapt split decisions")
	}
}
