package bench

import (
	"fmt"
	"sort"
	"strings"

	"hivempi/internal/exec"
	"hivempi/internal/hive"
	"hivempi/internal/types"
)

// SkewAdaptiveResult is the `-exp skew` report: the same skewed join
// workload with the skew-adaptive runtime off and on. The workload
// first materializes a CTAS whose final shuffle-join stage sinks into
// the table's warehouse directory — on the adaptive arm that stage's
// partition histogram is observed, and the measured query reading the
// table gets its heavy partition split / light partitions fused.
type SkewAdaptiveResult struct {
	BaseReducers     int // reducer count of the observed CTAS join stage
	MeasuredReducers int // natural reducer count of the measured join
	HotKeys          int // distinct hot keys colliding in one base bucket

	OffSec float64 // simulated seconds, adaptation off
	OnSec  float64 // simulated seconds, adaptation on

	SplitParts int // extra ranks the heavy partitions were split onto
	FusedParts int // light partitions folded into shared ranks
}

// Factor is the virtual-makespan win of the adaptive arm.
func (s *SkewAdaptiveResult) Factor() float64 {
	if s.OnSec <= 0 {
		return 0
	}
	return s.OffSec / s.OnSec
}

// Skew workload sizing. BytesPerReducer is pinned (independent of the
// data scale) so both the probe and the measured arms plan the same
// multi-reducer shuffles, and the hot keys — chosen to collide in one
// FNV bucket of that reducer count — stay hot at any -scale.
const (
	skewRows        = 48_000
	skewHotKeys     = 48
	skewBgKeys      = 600
	skewBPR         = 32 << 10
	skewCTAS        = `DROP TABLE IF EXISTS joined; CREATE TABLE joined AS SELECT b.k AS k, b.v AS v FROM big b JOIN dim d ON b.k = d.k;`
	skewMeasured    = `SELECT d.g, count(*) AS c, min(j.v) AS lo, max(j.v) AS hi FROM joined j JOIN dim d ON j.k = d.k GROUP BY d.g ORDER BY d.g;`
	skewSeedTablesQ = `CREATE TABLE big (k bigint, v bigint); CREATE TABLE dim (k bigint, g string);`
)

// SkewAdaptive runs the skew-adaptation experiment.
//
// A probe arm first learns the reducer geometry the planner gives this
// workload. Hot keys are then chosen so their shuffle-key hashes all
// land in bucket 0 of that geometry: ~70% of the fact volume collapses
// onto one reducer of the non-adaptive arm, while the adaptive arm —
// having observed the CTAS sink's partition histogram — splits the
// heavy bucket across many ranks (the hot keys are distinct, so their
// groups redistribute) and fuses the starved light buckets.
func (r *Runner) SkewAdaptive() (*SkewAdaptiveResult, error) {
	out := &SkewAdaptiveResult{}
	mut := func(c *exec.EngineConf) { c.BytesPerReducer = skewBPR }

	// Probe: identical table sizes (keys and values are all 4-digit, so
	// any key choice yields byte-identical file sizes), placeholder hot
	// set, adaptation off. Records the base and measured reducer counts.
	probe, err := r.skewDriver(mut, false)
	if err != nil {
		return nil, err
	}
	if err := seedSkewData(probe, placeholderHot()); err != nil {
		return nil, err
	}
	if out.BaseReducers, err = skewMaxReds(probe, skewCTAS); err != nil {
		return nil, err
	}
	if out.MeasuredReducers, err = skewMaxReds(probe, skewMeasured); err != nil {
		return nil, err
	}

	hot := chooseHotKeys(out.BaseReducers, out.MeasuredReducers, skewHotKeys)
	out.HotKeys = len(hot)

	// Measured arms: fresh identically-seeded clusters, adaptation off
	// then on. Only the SELECT is measured; the CTAS run beforehand is
	// what feeds the adaptive arm its observations. With BundleDir set,
	// each arm's measured run lands as skew.{off,on}.bundle.json — the
	// seeded A/B pair tracediff and `benchdiff -attr` attribute.
	for _, adaptive := range []bool{false, true} {
		d, err := r.skewDriver(mut, adaptive)
		if err != nil {
			return nil, err
		}
		if err := seedSkewData(d, hot); err != nil {
			return nil, err
		}
		if _, err := d.Run(skewCTAS); err != nil {
			return nil, err
		}
		d.Collector.Reset()
		results, err := d.Run(skewMeasured)
		if err != nil {
			return nil, err
		}
		sec := r.cfg.Params.SimulateQueries(d.Collector.Queries())
		arm := "skew.off"
		if adaptive {
			arm = "skew.on"
			out.OnSec = sec
			for _, q := range d.Collector.Queries() {
				for _, st := range q.Stages {
					out.SplitParts += st.AdaptSplit
					out.FusedParts += st.AdaptFused
				}
			}
		} else {
			out.OffSec = sec
		}
		if err := r.writeRunBundle(arm, arm, d, results); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// skewDriver builds a driver on its own fresh cluster with the skew
// workload's shuffle geometry (shuffle joins forced, pinned reducer
// sizing) and the adapt runtime switched as requested.
func (r *Runner) skewDriver(mut func(*exec.EngineConf), adaptive bool) (*hive.Driver, error) {
	cl := r.newCluster()
	d := r.driver(cl, "datampi", mut)
	d.MapJoinThresholdBytes = 1
	d.AdaptiveSkew = adaptive
	return d, nil
}

// placeholderHot is the probe arm's stand-in hot set: the first keys of
// the candidate range. Which keys are hot does not change table sizes,
// so the probe's reducer geometry matches the measured arms'.
func placeholderHot() []int {
	hot := make([]int, skewHotKeys)
	for i := range hot {
		hot[i] = 1000 + i
	}
	return hot
}

// chooseHotKeys picks up to n distinct 4-digit keys whose shuffle-key
// encodings all hash into bucket 0 under both reducer counts — the
// exact partition function the engine applies (FNV-1a over the
// order-preserving key encoding). If the joint residue class is too
// thin (only possible when the two counts differ), collision under the
// base count alone is kept, since that is the space the adapt runtime
// redistributes.
func chooseHotKeys(baseReds, measuredReds, n int) []int {
	pick := func(both bool) []int {
		var hot []int
		for k := 1000; k <= 9999 && len(hot) < n; k++ {
			key := types.EncodeKey(nil, []types.Datum{types.Int(int64(k))}, nil)
			if exec.PartitionForKey(key, 0, 1, baseReds) != 0 {
				continue
			}
			if both && measuredReds != baseReds &&
				exec.PartitionForKey(key, 0, 1, measuredReds) != 0 {
				continue
			}
			hot = append(hot, k)
		}
		return hot
	}
	hot := pick(true)
	if len(hot) < n/4 {
		hot = pick(false)
	}
	return hot
}

// seedSkewData creates and loads the skewed fact table and its
// dimension: ~70% of the fact rows carry one of the hot keys, the rest
// spread uniformly over a background key set; every key maps to one of
// three dimension groups. Deterministic, so every arm holds
// byte-identical tables.
func seedSkewData(d *hive.Driver, hot []int) error {
	if _, err := d.Run(skewSeedTablesQ); err != nil {
		return err
	}
	bg := make([]int, skewBgKeys)
	for j := range bg {
		bg[j] = 1000 + j*15
	}
	lcg := uint64(88172645463325252)
	next := func(n int) int {
		lcg ^= lcg << 13
		lcg ^= lcg >> 7
		lcg ^= lcg << 17
		return int(lcg % uint64(n))
	}
	rows := make([]types.Row, skewRows)
	for i := range rows {
		var k int
		if next(10) < 7 {
			k = hot[next(len(hot))]
		} else {
			k = bg[next(len(bg))]
		}
		rows[i] = types.Row{types.Int(int64(k)), types.Int(int64(1000 + next(9000)))}
	}
	// Four part files so the fact scan fans out over the map slots.
	part := len(rows) / 4
	for p := 0; p < 4; p++ {
		hi := (p + 1) * part
		if p == 3 {
			hi = len(rows)
		}
		if err := d.LoadTableData("big", p, rows[p*part:hi]); err != nil {
			return err
		}
	}
	keys := map[int]bool{}
	for _, k := range hot {
		keys[k] = true
	}
	for _, k := range bg {
		keys[k] = true
	}
	distinct := make([]int, 0, len(keys))
	for k := range keys {
		distinct = append(distinct, k)
	}
	sort.Ints(distinct)
	dim := make([]types.Row, len(distinct))
	for i, k := range distinct {
		dim[i] = types.Row{types.Int(int64(k)), types.String(fmt.Sprintf("g%d", k%3))}
	}
	return d.LoadTableData("dim", 0, dim)
}

// skewMaxReds runs a script on a fresh collector and returns the
// largest reducer count among its stages — the workload's join stage,
// which every other stage undercuts.
func skewMaxReds(d *hive.Driver, script string) (int, error) {
	d.Collector.Reset()
	if _, err := d.Run(script); err != nil {
		return 0, err
	}
	reds := 0
	for _, q := range d.Collector.Queries() {
		for _, st := range q.Stages {
			if st.NumReds > reds {
				reds = st.NumReds
			}
		}
	}
	return reds, nil
}

func (s *SkewAdaptiveResult) String() string {
	var sb strings.Builder
	sb.WriteString("Skew-adaptive repartitioning (hot-bucket join, simulated seconds):\n")
	sb.WriteString(fmt.Sprintf("  geometry: %d base reducers, %d measured, %d hot keys in bucket 0\n",
		s.BaseReducers, s.MeasuredReducers, s.HotKeys))
	sb.WriteString(fmt.Sprintf("  adaptation off %8.1fs\n", s.OffSec))
	sb.WriteString(fmt.Sprintf("  adaptation on  %8.1fs   (split=%d fused=%d)\n",
		s.OnSec, s.SplitParts, s.FusedParts))
	sb.WriteString(fmt.Sprintf("  makespan win   %8.2fx\n", s.Factor()))
	return sb.String()
}
