package bench

import (
	"fmt"
	"strings"

	"hivempi/internal/chaos"
	"hivempi/internal/exec"
	"hivempi/internal/mrengine"
	"hivempi/internal/tpch"
)

// FaultScenario is one run of a query under a fault plan.
type FaultScenario struct {
	Name     string
	Engine   string // engine the stages actually ran on
	Seconds  float64
	Fired    int  // faults the plane injected
	Degraded bool // the driver fell back to Hadoop
}

// FaultRecoveryResult is the fault-tolerance cost comparison: the same
// query clean, recovered via checkpoint/retry, slowed by a straggler
// (with and without speculation), and degraded to the Hadoop engine.
type FaultRecoveryResult struct {
	Query     int
	SizeGB    int
	Scenarios []FaultScenario
}

// faultPlan is the seeded plan the recovery scenarios share: two read
// faults on warehouse data, one O-task crash mid-stage, and one slow
// node. Write faults stay off the work-dir paths the retry loop needs.
func faultPlan() chaos.Plan {
	return chaos.Plan{Seed: 7, Specs: []chaos.Spec{
		{Kind: chaos.DFSRead, Path: "/warehouse/*", Count: 2},
		{Kind: chaos.TaskCrash, Task: "o", Rank: 0, Count: 1},
		{Kind: chaos.SlowTask, Task: "o", Rank: chaos.AnyRank, Count: 1, DelaySec: 30},
	}}
}

// FaultRecovery runs one TPC-H query on DataMPI under the seeded fault
// plan and prices the recovery paths against the clean baseline.
func (r *Runner) FaultRecovery(q, sizeGB int) (*FaultRecoveryResult, error) {
	out := &FaultRecoveryResult{Query: q, SizeGB: sizeGB}
	type scenario struct {
		name string
		plan *chaos.Plan
		mut  func(*exec.EngineConf)
		fall bool
	}
	plan := faultPlan()
	scenarios := []scenario{
		{name: "clean"},
		{name: "retry+checkpoint", plan: &plan,
			mut: func(c *exec.EngineConf) { c.MaxTaskAttempts = 3 }},
		{name: "straggler+speculation", plan: &chaos.Plan{Specs: []chaos.Spec{
			{Kind: chaos.SlowTask, Task: "o", Rank: chaos.AnyRank, Count: 1, DelaySec: 30},
		}}},
		{name: "straggler, no speculation", plan: &chaos.Plan{Specs: []chaos.Spec{
			{Kind: chaos.SlowTask, Task: "o", Rank: chaos.AnyRank, Count: 1, DelaySec: 30},
		}}, mut: func(c *exec.EngineConf) { c.DisableSpeculation = true }},
		{name: "fallback to hadoop", plan: &chaos.Plan{Specs: []chaos.Spec{
			{Kind: chaos.DFSRead, Path: "/warehouse/*", Count: 1},
		}}, fall: true},
	}
	for _, sc := range scenarios {
		// Each scenario loads its own cluster: fault budgets are
		// stateful, and a plan must not see another scenario's I/O.
		cl, err := r.loadTPCH(sizeGB, "textfile")
		if err != nil {
			return nil, err
		}
		d := r.driver(cl, "datampi", sc.mut)
		if sc.fall {
			d.Fallback = mrengine.New()
		}
		var plane *chaos.Plane
		if sc.plan != nil {
			plane = chaos.NewPlane(*sc.plan)
			d.Env.Chaos = plane
			d.Env.FS.SetChaos(plane)
		}
		script, err := tpch.Query(q)
		if err != nil {
			return nil, err
		}
		d.Collector.Reset()
		results, err := d.Run(script)
		if err != nil {
			return nil, fmt.Errorf("fault scenario %q: %w", sc.name, err)
		}
		engine, degraded := "datampi", false
		for _, res := range results {
			if res.Degraded != "" {
				engine, degraded = res.Degraded, true
			}
		}
		sim := r.simulate(tpch.QueryName(q), engine, sizeGB, d.Collector.Queries())
		out.Scenarios = append(out.Scenarios, FaultScenario{
			Name: sc.name, Engine: engine, Seconds: sim.Total,
			Fired: plane.TotalFired(), Degraded: degraded,
		})
	}
	return out, nil
}

func (f *FaultRecoveryResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fault recovery: TPC-H %s %d GB on DataMPI (simulated seconds)\n",
		tpch.QueryName(f.Query), f.SizeGB)
	var clean float64
	for _, sc := range f.Scenarios {
		if sc.Name == "clean" {
			clean = sc.Seconds
		}
	}
	for _, sc := range f.Scenarios {
		fmt.Fprintf(&sb, "  %-26s %8.1fs  engine=%-8s faults=%d",
			sc.Name, sc.Seconds, sc.Engine, sc.Fired)
		if clean > 0 && sc.Name != "clean" {
			fmt.Fprintf(&sb, "  overhead=%+.0f%%", 100*(sc.Seconds-clean)/clean)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("  (checkpoint/retry and speculation bound the recovery cost; the\n" +
		"   engine fallback trades DataMPI's speed for Hadoop's resilience)\n")
	return sb.String()
}
