package bench

import (
	"fmt"
	"sort"
	"strings"

	"hivempi/internal/exec"
	"hivempi/internal/hibench"
	"hivempi/internal/perfmodel"
	"hivempi/internal/tpch"
	"hivempi/internal/trace"
)

// TableIResult reports generated dataset sizes (paper Table I).
type TableIResult struct {
	HiBench map[int]map[string]int64 // sizeGB -> table -> bytes
	TPCH    map[int]map[string]int64
}

// TableI generates each dataset and measures the per-table bytes.
func (r *Runner) TableI(hibenchSizes, tpchSizes []int) (*TableIResult, error) {
	out := &TableIResult{
		HiBench: map[int]map[string]int64{},
		TPCH:    map[int]map[string]int64{},
	}
	measure := func(cl *cluster, tables []string) map[string]int64 {
		m := map[string]int64{}
		for _, t := range tables {
			tab, err := cl.ms.Get(t)
			if err != nil {
				continue
			}
			m[t] = tab.TotalBytes(cl.env.FS) * int64(r.cfg.Params.ScaleUp) / 1000 * 1000
		}
		return m
	}
	for _, gb := range hibenchSizes {
		cl, err := r.loadHiBench(gb, "sequencefile")
		if err != nil {
			return nil, err
		}
		out.HiBench[gb] = measure(cl, []string{"rankings", "uservisits"})
	}
	for _, gb := range tpchSizes {
		cl, err := r.loadTPCH(gb, "textfile")
		if err != nil {
			return nil, err
		}
		out.TPCH[gb] = measure(cl, tpch.TableNames())
	}
	return out, nil
}

func (t *TableIResult) String() string {
	var sb strings.Builder
	sb.WriteString("Table I: generated data sizes (simulated bytes)\n")
	render := func(name string, m map[int]map[string]int64) {
		var sizes []int
		for gb := range m {
			sizes = append(sizes, gb)
		}
		sort.Ints(sizes)
		tables := map[string]bool{}
		for _, byTable := range m {
			for t := range byTable {
				tables[t] = true
			}
		}
		var tnames []string
		for t := range tables {
			tnames = append(tnames, t)
		}
		sort.Strings(tnames)
		fmt.Fprintf(&sb, "%s:\n", name)
		for _, t := range tnames {
			fmt.Fprintf(&sb, "  %-12s", t)
			for _, gb := range sizes {
				fmt.Fprintf(&sb, " %4dGB:%-10s", gb, humanBytes(m[gb][t]))
			}
			sb.WriteByte('\n')
		}
	}
	render("HiBench", t.HiBench)
	render("TPC-H", t.TPCH)
	return sb.String()
}

func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Figure1Result is the Hive-on-Hadoop execution-time breakdown that
// motivates the paper (startup ~5%, Map-Shuffle >50%).
type Figure1Result struct {
	Workloads []*WorkloadResult // AGGREGATE + JOIN on Hadoop, 20 GB
}

// Figure1 runs the motivation breakdown.
func (r *Runner) Figure1() (*Figure1Result, error) {
	cl, err := r.loadHiBench(20, "sequencefile")
	if err != nil {
		return nil, err
	}
	out := &Figure1Result{}
	for _, w := range []string{"AGGREGATE", "JOIN"} {
		res, err := r.runHiBenchWorkload(cl, "hadoop", w, 20, nil)
		if err != nil {
			return nil, err
		}
		out.Workloads = append(out.Workloads, res)
	}
	return out, nil
}

func (f *Figure1Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 1: Hive-on-Hadoop job breakdown, 20 GB (seconds)\n")
	sb.WriteString(renderBreakdowns(f.Workloads))
	var su, ms, tot float64
	for _, w := range f.Workloads {
		for _, j := range w.Jobs {
			su += j.Startup
			ms += j.MapShuffle
			tot += j.Total()
		}
	}
	fmt.Fprintf(&sb, "  Map-Shuffle share: %.0f%% (paper: >50%%), startup share: %.0f%% (paper: ~5%%)\n",
		100*ms/tot, 100*su/tot)
	return sb.String()
}

func renderBreakdowns(ws []*WorkloadResult) string {
	var sb strings.Builder
	for _, w := range ws {
		fmt.Fprintf(&sb, "  %-10s %-8s %2dGB total=%7.1fs\n", w.Workload, w.Engine, w.SizeGB, w.Total)
		for _, j := range w.Jobs {
			fmt.Fprintf(&sb, "    %-14s startup=%5.1f ms=%7.1f others=%7.1f (maps=%d reds=%d)\n",
				j.Name, j.Startup, j.MapShuffle, j.Others, j.NumMaps, j.NumReds)
		}
	}
	return sb.String()
}

// Figure2Result contrasts communication characteristics: per-task
// runtimes (Hive AGGREGATE vs TeraSort) and KV size distributions
// (Hive AGGREGATE vs TPC-H Q3).
type Figure2Result struct {
	AggEndTimes  []float64 // per-task end times (a)
	TeraEndTimes []float64 // (b)
	AggTopSizes  []int     // dominant collect sizes (c)
	Q3TopSizes   []int     // (d)
	AggSpread    float64   // (max-min)/mean of task DURATIONS
	TeraSpread   float64
}

// Figure2 reproduces the communication-characteristics study.
func (r *Runner) Figure2() (*Figure2Result, error) {
	out := &Figure2Result{}

	// (a)+(c): HiBench AGGREGATE map tasks.
	cl, err := r.loadHiBench(20, "sequencefile")
	if err != nil {
		return nil, err
	}
	d := r.driver(cl, "hadoop", nil)
	d.Collector.Reset()
	if _, err := d.Run(hibench.AggregateQuery); err != nil {
		return nil, err
	}
	aggStage := d.Collector.AllStages()[0]
	sim := r.cfg.Params.SimulateStage(aggStage)
	out.AggEndTimes = perfmodel.TaskEndTimes(sim)
	hist := trace.NewSizeHistogram()
	for _, m := range aggStage.Producers {
		hist.Merge(m.CollectSizes)
	}
	out.AggTopSizes = hist.TopSizes(3)

	// (b): TeraSort with a comparable record volume.
	conf := exec.DefaultEngineConf()
	conf.Slaves = slaves
	conf.SpillDir = r.cfg.SpillDir
	nRecords := int(20 * r.cfg.BytesPerGB / hibench.TeraRecordSize)
	numMaps := len(sim.Producers)
	if numMaps < 1 {
		numMaps = 8
	}
	teraStage, _, err := hibench.RunTeraSort(hibench.TeraGen(nRecords, r.cfg.Seed),
		numMaps, conf.MaxSlots(), conf)
	if err != nil {
		return nil, err
	}
	teraSim := r.cfg.Params.SimulateStage(teraStage)
	out.TeraEndTimes = perfmodel.TaskEndTimes(teraSim)

	// (d): TPC-H Q3 collect sizes.
	tcl, err := r.loadTPCH(20, "textfile")
	if err != nil {
		return nil, err
	}
	td := r.driver(tcl, "hadoop", nil)
	td.Collector.Reset()
	q3, _ := tpch.Query(3)
	if _, err := td.Run(q3); err != nil {
		return nil, err
	}
	q3hist := trace.NewSizeHistogram()
	for _, st := range td.Collector.AllStages() {
		for _, m := range st.Producers {
			q3hist.Merge(m.CollectSizes)
		}
	}
	out.Q3TopSizes = q3hist.TopSizes(4)

	out.AggSpread = spread(perfmodel.TaskDurations(sim))
	out.TeraSpread = spread(perfmodel.TaskDurations(teraSim))
	return out, nil
}

func spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, max, sum := xs[0], xs[0], 0.0
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
	}
	return (max - min) / (sum / float64(len(xs)))
}

func (f *Figure2Result) String() string {
	return fmt.Sprintf(`Figure 2: communication characteristics
  (a) Hive AGGREGATE task-duration spread: %.2f (irregular)
  (b) TeraSort task-duration spread:       %.2f (centralized; paper: Hive >> TeraSort)
  (c) AGGREGATE dominant KV sizes (bytes): %v (paper: centred at ~32B)
  (d) TPC-H Q3 dominant KV sizes (bytes):  %v (paper: multiple modes, ~14B and ~32B)
`, f.AggSpread, f.TeraSpread, f.AggTopSizes, f.Q3TopSizes)
}

// Figure6Result compares blocking and non-blocking shuffle styles.
type Figure6Result struct {
	BlockingOPhase    float64
	NonBlockingOPhase float64
	BlockingEvents    []perfmodel.CollectEvent
	NonBlockingEvents []perfmodel.CollectEvent
}

// Figure6 runs HiBench AGGREGATE at 20 GB under both styles.
func (r *Runner) Figure6() (*Figure6Result, error) {
	out := &Figure6Result{}
	for _, nb := range []bool{true, false} {
		cl, err := r.loadHiBench(20, "sequencefile")
		if err != nil {
			return nil, err
		}
		d := r.driver(cl, "datampi", func(c *exec.EngineConf) { c.NonBlocking = nb })
		d.Collector.Reset()
		if _, err := d.Run(hibench.AggregateQuery); err != nil {
			return nil, err
		}
		st := d.Collector.AllStages()[0]
		sim := r.cfg.Params.SimulateStage(st)
		events := perfmodel.CollectTimeline(st, sim)
		if nb {
			out.NonBlockingOPhase = sim.MapEnd - sim.MapStart
			out.NonBlockingEvents = events
		} else {
			out.BlockingOPhase = sim.MapEnd - sim.MapStart
			out.BlockingEvents = events
		}
	}
	return out, nil
}

func (f *Figure6Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `Figure 6: shuffle styles, HiBench AGGREGATE 20 GB
  blocking     O-phase: %6.1fs (%d send events)
  non-blocking O-phase: %6.1fs (%d send events)
  ratio: %.2fx (paper: 120s vs 61s ~= 2.0x)
`, f.BlockingOPhase, len(f.BlockingEvents),
		f.NonBlockingOPhase, len(f.NonBlockingEvents),
		f.BlockingOPhase/f.NonBlockingOPhase)
	sb.WriteString("  per-task send windows (first..last event, seconds):" + "\n")
	sb.WriteString(renderSendWindows("blocking", f.BlockingEvents))
	sb.WriteString(renderSendWindows("non-block", f.NonBlockingEvents))
	return sb.String()
}

// renderSendWindows summarizes the first tasks' send activity windows,
// the per-task lines the paper's Fig. 6 plots.
func renderSendWindows(label string, events []perfmodel.CollectEvent) string {
	type window struct {
		first, last float64
		n           int
	}
	byTask := map[int]*window{}
	for _, ev := range events {
		w := byTask[ev.TaskID]
		if w == nil {
			w = &window{first: ev.Time, last: ev.Time}
			byTask[ev.TaskID] = w
		}
		if ev.Time < w.first {
			w.first = ev.Time
		}
		if ev.Time > w.last {
			w.last = ev.Time
		}
		w.n++
	}
	var ids []int
	for id := range byTask {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if len(ids) > 6 {
		ids = ids[:6]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "    %-9s", label)
	for _, id := range ids {
		w := byTask[id]
		fmt.Fprintf(&sb, "  T%d:%.0f..%.0f(%d)", id, w.first, w.last, w.n)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Figure8Result sweeps the cache-memory and send-queue knobs.
type Figure8Result struct {
	MemPercent map[float64]float64 // mem fraction -> total seconds (AGG+JOIN)
	SendQueue  map[int]float64
}

// Figure8 reproduces the tuning study at 20 GB.
func (r *Runner) Figure8() (*Figure8Result, error) {
	out := &Figure8Result{MemPercent: map[float64]float64{}, SendQueue: map[int]float64{}}
	run := func(mut func(*exec.EngineConf)) (float64, error) {
		cl, err := r.loadHiBench(20, "sequencefile")
		if err != nil {
			return 0, err
		}
		var total float64
		for _, w := range []string{"AGGREGATE", "JOIN"} {
			res, err := r.runHiBenchWorkload(cl, "datampi", w, 20, mut)
			if err != nil {
				return 0, err
			}
			total += res.Total
		}
		return total, nil
	}
	for _, m := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		m := m
		t, err := run(func(c *exec.EngineConf) { c.MemUsedPercent = m })
		if err != nil {
			return nil, err
		}
		out.MemPercent[m] = t
	}
	for _, q := range []int{2, 4, 6, 8, 10} {
		q := q
		t, err := run(func(c *exec.EngineConf) { c.SendQueueSize = q })
		if err != nil {
			return nil, err
		}
		out.SendQueue[q] = t
	}
	return out, nil
}

func (f *Figure8Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 8: DataMPI tuning, HiBench AGGREGATE+JOIN 20 GB (seconds)\n  memusedpercent:")
	var ms []float64
	for m := range f.MemPercent {
		ms = append(ms, m)
	}
	sort.Float64s(ms)
	for _, m := range ms {
		fmt.Fprintf(&sb, "  %.1f=%.0fs", m, f.MemPercent[m])
	}
	sb.WriteString("\n  sendqueue:     ")
	var qs []int
	for q := range f.SendQueue {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	for _, q := range qs {
		fmt.Fprintf(&sb, "  %d=%.0fs", q, f.SendQueue[q])
	}
	sb.WriteString("\n  (paper: best at memusedpercent=0.4; stable for queue >= 6)\n")
	return sb.String()
}

// Figure9Result is the HiBench scalability comparison.
type Figure9Result struct {
	Runs []*WorkloadResult // workload x size x engine
}

// Figure9 runs AGGREGATE and JOIN at each size on both engines.
func (r *Runner) Figure9(sizes []int) (*Figure9Result, error) {
	out := &Figure9Result{}
	for _, gb := range sizes {
		cl, err := r.loadHiBench(gb, "sequencefile")
		if err != nil {
			return nil, err
		}
		for _, w := range []string{"AGGREGATE", "JOIN"} {
			for _, eng := range []string{"hadoop", "datampi"} {
				res, err := r.runHiBenchWorkload(cl, eng, w, gb, nil)
				if err != nil {
					return nil, err
				}
				out.Runs = append(out.Runs, res)
			}
		}
	}
	return out, nil
}

// AverageGain reports DataMPI's mean improvement over Hadoop.
func (f *Figure9Result) AverageGain() float64 {
	type k struct {
		w  string
		gb int
	}
	had := map[k]float64{}
	dm := map[k]float64{}
	for _, run := range f.Runs {
		kk := k{run.Workload, run.SizeGB}
		if run.Engine == "hadoop" {
			had[kk] = run.Total
		} else {
			dm[kk] = run.Total
		}
	}
	var sum float64
	var n int
	for kk, h := range had {
		if d, ok := dm[kk]; ok && h > 0 {
			sum += (h - d) / h
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (f *Figure9Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 9: Intel HiBench performance (seconds)\n")
	sb.WriteString("  workload    size   hadoop   datampi   gain\n")
	type k struct {
		w  string
		gb int
	}
	had := map[k]float64{}
	dm := map[k]float64{}
	var keys []k
	for _, run := range f.Runs {
		kk := k{run.Workload, run.SizeGB}
		if run.Engine == "hadoop" {
			if _, seen := had[kk]; !seen {
				keys = append(keys, kk)
			}
			had[kk] = run.Total
		} else {
			dm[kk] = run.Total
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].w != keys[j].w {
			return keys[i].w < keys[j].w
		}
		return keys[i].gb < keys[j].gb
	})
	for _, kk := range keys {
		h, d := had[kk], dm[kk]
		fmt.Fprintf(&sb, "  %-10s %3dGB  %7.1f  %8.1f  %5.1f%%\n",
			kk.w, kk.gb, h, d, 100*(h-d)/h)
	}
	fmt.Fprintf(&sb, "  average gain: %.0f%% (paper: ~30%%; AGGREGATE 29%%, JOIN 31%%)\n",
		100*f.AverageGain())
	return sb.String()
}

// Figure10Result is the per-job breakdown at 20 GB on both engines.
type Figure10Result struct {
	Runs []*WorkloadResult
}

// Figure10 breaks down AGGREGATE and JOIN jobs on both engines.
func (r *Runner) Figure10() (*Figure10Result, error) {
	cl, err := r.loadHiBench(20, "sequencefile")
	if err != nil {
		return nil, err
	}
	out := &Figure10Result{}
	for _, w := range []string{"AGGREGATE", "JOIN"} {
		for _, eng := range []string{"hadoop", "datampi"} {
			res, err := r.runHiBenchWorkload(cl, eng, w, 20, nil)
			if err != nil {
				return nil, err
			}
			out.Runs = append(out.Runs, res)
		}
	}
	return out, nil
}

// MSGains returns per-job Map-Shuffle improvements of DataMPI.
func (f *Figure10Result) MSGains() map[string]float64 {
	had := map[string][]JobResult{}
	dm := map[string][]JobResult{}
	for _, run := range f.Runs {
		if run.Engine == "hadoop" {
			had[run.Workload] = run.Jobs
		} else {
			dm[run.Workload] = run.Jobs
		}
	}
	out := map[string]float64{}
	for w, hj := range had {
		dj := dm[w]
		for i := range hj {
			if i < len(dj) && hj[i].MapShuffle > 0 {
				out[fmt.Sprintf("%s/job%d", w, i+1)] =
					(hj[i].MapShuffle - dj[i].MapShuffle) / hj[i].MapShuffle
			}
		}
	}
	return out
}

func (f *Figure10Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 10: per-job breakdown, HiBench 20 GB (seconds)\n")
	sb.WriteString(renderBreakdowns(f.Runs))
	gains := f.MSGains()
	var names []string
	for n := range gains {
		names = append(names, n)
	}
	sort.Strings(names)
	sb.WriteString("  MS-phase gains (paper: 20%-70%):")
	for _, n := range names {
		fmt.Fprintf(&sb, "  %s=%.0f%%", n, 100*gains[n])
	}
	sb.WriteByte('\n')
	return sb.String()
}
