package bench

import (
	"fmt"
	"sort"
	"strings"

	"hivempi/internal/exec"
	"hivempi/internal/hive"
	"hivempi/internal/metrics"
	"hivempi/internal/tpch"
)

// VectorizedResult is the `-exp vec` report: per-query simulated
// runtimes row vs vectorized (hive.exec.vectorized) on ORC, plus the
// compiled-plan cache's effect on a repeated statement.
type VectorizedResult struct {
	// Rows maps "Q<n>" -> (row-mode seconds, vectorized seconds).
	Rows map[string][2]float64

	// Plan cache: compile seconds charged to the first and the repeat
	// execution of the same statement, and the cache counters after.
	CompileFirst  float64
	CompileCached float64
	CacheHits     int64
	CacheMisses   int64
}

// vecQueries are the scan/filter/aggregate-heavy TPC-H queries where
// columnar execution pays: Q1 (wide aggregate), Q3 (join + agg), Q6
// (selective scan), Q12 (join + case aggregation).
var vecQueries = []int{1, 3, 6, 12}

// Vectorized runs the vectorized-execution experiment at 20 GB ORC.
func (r *Runner) Vectorized() (*VectorizedResult, error) {
	out := &VectorizedResult{Rows: map[string][2]float64{}}
	cl, err := r.loadTPCH(20, "orc")
	if err != nil {
		return nil, err
	}
	for _, q := range vecQueries {
		script, err := tpch.Query(q)
		if err != nil {
			return nil, err
		}
		row := r.driver(cl, "datampi", nil)
		rowT, err := r.simOne(row, script)
		if err != nil {
			return nil, err
		}
		vec := r.driver(cl, "datampi", func(c *exec.EngineConf) { c.Vectorized = true })
		vecT, err := r.simOne(vec, script)
		if err != nil {
			return nil, err
		}
		out.Rows[fmt.Sprintf("Q%d", q)] = [2]float64{rowT, vecT}
	}

	// Plan cache: the same statement twice on one driver. The repeat
	// must hit the cache — no parse/plan, zero compile in the model.
	d := r.driver(cl, "datampi", func(c *exec.EngineConf) { c.Vectorized = true })
	q1, err := tpch.Query(1)
	if err != nil {
		return nil, err
	}
	d.Collector.Reset()
	if _, err := d.Run(q1); err != nil {
		return nil, err
	}
	if _, err := d.Run(q1); err != nil {
		return nil, err
	}
	qs := d.Collector.Queries()
	if len(qs) >= 2 {
		out.CompileFirst = r.cfg.Params.SimulateQuery(qs[0]).Compile
		out.CompileCached = r.cfg.Params.SimulateQuery(qs[len(qs)-1]).Compile
	}
	if cl.env.Metrics != nil {
		out.CacheHits = cl.env.Metrics.Counter(metrics.CtrPlanCacheHits).Value()
		out.CacheMisses = cl.env.Metrics.Counter(metrics.CtrPlanCacheMisses).Value()
	}
	return out, nil
}

// simOne runs one statement on a fresh collector and returns its
// simulated wall time.
func (r *Runner) simOne(d *hive.Driver, script string) (float64, error) {
	d.Collector.Reset()
	if _, err := d.Run(script); err != nil {
		return 0, err
	}
	return r.cfg.Params.SimulateQueries(d.Collector.Queries()), nil
}

func (v *VectorizedResult) String() string {
	var sb strings.Builder
	sb.WriteString("Vectorized execution (ORC, 20 GB, simulated seconds):\n")
	names := make([]string, 0, len(v.Rows))
	for k := range v.Rows {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, n := range names {
		p := v.Rows[n]
		speedup := 0.0
		if p[1] > 0 {
			speedup = p[0] / p[1]
		}
		sb.WriteString(fmt.Sprintf("  %-4s row %8.1fs   vectorized %8.1fs   %0.2fx\n",
			n, p[0], p[1], speedup))
	}
	sb.WriteString(fmt.Sprintf("  plan cache: compile %0.2fs first, %0.2fs cached (hits=%d misses=%d)\n",
		v.CompileFirst, v.CompileCached, v.CacheHits, v.CacheMisses))
	return sb.String()
}
