package bench

import (
	"fmt"
	"strings"

	"hivempi/internal/chaos"
	membership "hivempi/internal/cluster" // bench's own `cluster` is the loaded dataset
	"hivempi/internal/exec"
	"hivempi/internal/metrics"
	"hivempi/internal/tpch"
)

// NodeLossScenario is one run of the mini-workload under a node-fault
// schedule, with the recovery bill broken out of the makespan.
type NodeLossScenario struct {
	Name        string
	Seconds     float64 // simulated makespan, recovery charge included
	RecoverySec float64 // virtual seconds of re-replication traffic
	Rerepl      int64   // block copies the repair pipeline made
	DeadNodes   int     // membership's DEAD population at end
	DrainTicks  int     // detector ticks past the workload to finish repair
	Fired       int     // node faults the plane injected
}

// NodeLossResult compares the node-loss schedules against the
// fault-free baseline on the same workload and dataset.
type NodeLossResult struct {
	Queries   []int
	SizeGB    int
	Scenarios []NodeLossScenario
}

// nodeLossQueries is the mini-workload the scenarios share: enough
// stages that the detector (one heartbeat per completed stage) walks a
// crashed node to DEAD and re-replicates its blocks mid-run.
var nodeLossQueries = []int{1, 3, 5, 6}

// nodeLossDetector compresses the detector thresholds so detection
// latency, not the workload length, stays small relative to the
// mini-workload's tick budget; the recovery cost is what the
// experiment prices.
func nodeLossDetector() membership.Config {
	return membership.Config{
		Nodes:             slaves,
		HeartbeatInterval: 1,
		SuspectAfterSec:   1.5,
		DeadAfterSec:      2.5,
	}
}

// NodeLossRecovery runs the TPC-H mini-workload on DataMPI under three
// seeded node-fault schedules — one crash, a staggered double crash
// landing during the first death's repair, and a slow-node flap — and
// prices each against the fault-free baseline: makespan overhead plus
// the re-replication bill (bytes copied / min(disk,net) bandwidth).
func (r *Runner) NodeLossRecovery(sizeGB int) (*NodeLossResult, error) {
	out := &NodeLossResult{Queries: nodeLossQueries, SizeGB: sizeGB}
	type scenario struct {
		name string
		plan *chaos.Plan
	}
	scenarios := []scenario{
		{name: "fault-free"},
		{name: "one node lost", plan: &chaos.Plan{Seed: 9, Specs: []chaos.Spec{
			{Kind: chaos.NodeCrash, Node: "slave3", After: 2},
		}}},
		{name: "loss during repair", plan: &chaos.Plan{Seed: 17, Specs: []chaos.Spec{
			{Kind: chaos.NodeCrash, Node: "slave3", After: 2},
			{Kind: chaos.NodeCrash, Node: "slave5", After: 5},
		}}},
		{name: "slow-node flap", plan: &chaos.Plan{Seed: 23, Specs: []chaos.Spec{
			{Kind: chaos.NodeSlow, Node: "slave6", After: 2, DelaySec: 2, Count: 4},
		}}},
	}
	for _, sc := range scenarios {
		// Each scenario loads its own cluster: node faults tear down
		// replicas, and a schedule must not inherit another's damage.
		cl, err := r.loadTPCH(sizeGB, "textfile")
		if err != nil {
			return nil, err
		}
		d := r.driver(cl, "datampi", func(c *exec.EngineConf) {
			c.MaxTaskAttempts = 5 // stale-hostfile ranks retry onto survivors
		})
		m := membership.New(nodeLossDetector())
		var plane *chaos.Plane
		if sc.plan != nil {
			plane = chaos.NewPlane(*sc.plan)
			m.SetChaos(plane)
		}
		d.AttachCluster(m, &r.cfg.Params)

		d.Collector.Reset()
		for _, q := range nodeLossQueries {
			script, err := tpch.Query(q)
			if err != nil {
				return nil, err
			}
			if _, err := d.Run(script); err != nil {
				return nil, fmt.Errorf("node-loss scenario %q, Q%d: %w", sc.name, q, err)
			}
		}

		// Drain: the in-band repair budget is one bandwidth-interval per
		// completed stage, so a late death can leave copies pending when
		// the workload ends. Keep ticking the detector until the factor
		// is restored and bill the extra intervals separately.
		c := r.cfg.Params.Cluster
		bw := c.DiskReadBW
		if c.NetBW < bw {
			bw = c.NetBW
		}
		if c.DiskWriteBW < bw {
			bw = c.DiskWriteBW
		}
		drain := 0
		for drain < 256 && d.Env.FS.UnderReplicated() > 0 {
			m.Advance(m.Interval())
			d.Env.FS.Repair(int64(bw * m.Interval()))
			drain++
		}

		sim := r.simulate("nodeloss", "datampi", sizeGB, d.Collector.Queries())
		_, _, dead := m.Counts()
		out.Scenarios = append(out.Scenarios, NodeLossScenario{
			Name:        sc.name,
			Seconds:     sim.Total,
			RecoverySec: d.Env.FS.RecoverySeconds(),
			Rerepl:      d.Env.Metrics.Counter(metrics.CtrDFSRereplBlocks).Value(),
			DeadNodes:   dead,
			DrainTicks:  drain,
			Fired:       plane.TotalFired(),
		})
	}
	return out, nil
}

func (n *NodeLossResult) String() string {
	var sb strings.Builder
	qs := make([]string, len(n.Queries))
	for i, q := range n.Queries {
		qs[i] = tpch.QueryName(q)
	}
	fmt.Fprintf(&sb, "Node-loss recovery: TPC-H {%s} %d GB on DataMPI (simulated seconds)\n",
		strings.Join(qs, ","), n.SizeGB)
	var clean float64
	for _, sc := range n.Scenarios {
		if sc.Name == "fault-free" {
			clean = sc.Seconds
		}
	}
	for _, sc := range n.Scenarios {
		fmt.Fprintf(&sb, "  %-20s %8.1fs  recovery=%6.2fs  copies=%-4d dead=%d faults=%d",
			sc.Name, sc.Seconds, sc.RecoverySec, sc.Rerepl, sc.DeadNodes, sc.Fired)
		if clean > 0 && sc.Name != "fault-free" {
			fmt.Fprintf(&sb, "  overhead=%+.0f%%", 100*(sc.Seconds-clean)/clean)
		}
		if sc.DrainTicks > 0 {
			fmt.Fprintf(&sb, "  drain=%d ticks", sc.DrainTicks)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("  (re-replication shares the fabric with the query: the makespan\n" +
		"   overhead is the detection wait plus the repair traffic's bandwidth bill)\n")
	return sb.String()
}
