package bench

import (
	"strings"
	"testing"
)

// The ISSUE's acceptance bar: adaptive repartitioning must show at
// least a 1.15x virtual-makespan win on the seeded hot-bucket join.
func TestSkewAdaptiveGain(t *testing.T) {
	r := quickRunner(t)
	res, err := r.SkewAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitParts == 0 {
		t.Error("adaptive arm split no partition; the heavy bucket was not redistributed")
	}
	if f := res.Factor(); f < 1.15 {
		t.Errorf("makespan win %.2fx below the 1.15x bar", f)
	}
	if res.BaseReducers < 2 || res.MeasuredReducers < 2 {
		t.Errorf("degenerate reducer geometry: base=%d measured=%d (skew needs a multi-reducer shuffle)",
			res.BaseReducers, res.MeasuredReducers)
	}
	if res.HotKeys < skewHotKeys/4 {
		t.Errorf("only %d hot keys collide in bucket 0; the heavy bucket cannot split usefully", res.HotKeys)
	}
	out := res.String()
	if !strings.Contains(out, "makespan win") || !strings.Contains(out, "split=") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
	t.Log("\n" + out)
}
