package bench

import (
	"fmt"
	"sort"
	"strings"

	"hivempi/internal/exec"
	"hivempi/internal/hibench"
	"hivempi/internal/hive"
	"hivempi/internal/tpch"
)

// AblationResult quantifies each planner/engine design choice by
// disabling it and re-running the affected workload (DESIGN.md's
// "ablation benches for the design choices").
type AblationResult struct {
	// Rows maps "<ablation>" -> (baseline seconds, ablated seconds).
	Rows map[string][2]float64
}

// Ablations runs the sweep at 20 GB.
func (r *Runner) Ablations() (*AblationResult, error) {
	out := &AblationResult{Rows: map[string][2]float64{}}

	simScript := func(d *hive.Driver, script string) (float64, error) {
		d.Collector.Reset()
		if _, err := d.Run(script); err != nil {
			return 0, err
		}
		return r.cfg.Params.SimulateQueries(d.Collector.Queries()), nil
	}

	// 1. Map-side partial aggregation (HiBench AGGREGATE).
	{
		cl, err := r.loadHiBench(20, "sequencefile")
		if err != nil {
			return nil, err
		}
		base := r.driver(cl, "datampi", nil)
		baseT, err := simScript(base, hibench.AggregateQuery)
		if err != nil {
			return nil, err
		}
		abl := r.driver(cl, "datampi", nil)
		abl.DisableMapAggregation = true
		ablT, err := simScript(abl, hibench.AggregateQuery)
		if err != nil {
			return nil, err
		}
		out.Rows["map-side aggregation"] = [2]float64{baseT, ablT}
	}

	// 2. ORC column projection and 3. predicate pushdown (TPC-H Q6).
	{
		cl, err := r.loadTPCH(20, "orc")
		if err != nil {
			return nil, err
		}
		q6, err := tpch.Query(6)
		if err != nil {
			return nil, err
		}
		base := r.driver(cl, "datampi", nil)
		baseT, err := simScript(base, q6)
		if err != nil {
			return nil, err
		}
		noProj := r.driver(cl, "datampi", nil)
		noProj.DisableProjection = true
		noProjT, err := simScript(noProj, q6)
		if err != nil {
			return nil, err
		}
		out.Rows["orc column projection"] = [2]float64{baseT, noProjT}

		noPush := r.driver(cl, "datampi", nil)
		noPush.DisablePushdown = true
		noPushT, err := simScript(noPush, q6)
		if err != nil {
			return nil, err
		}
		out.Rows["orc predicate pushdown"] = [2]float64{baseT, noPushT}
	}

	// 4. Broadcast map join (TPC-H Q5's dimension chain).
	{
		cl, err := r.loadTPCH(20, "textfile")
		if err != nil {
			return nil, err
		}
		q5, err := tpch.Query(5)
		if err != nil {
			return nil, err
		}
		base := r.driver(cl, "datampi", nil)
		baseT, err := simScript(base, q5)
		if err != nil {
			return nil, err
		}
		abl := r.driver(cl, "datampi", nil)
		abl.MapJoinThresholdBytes = 1
		ablT, err := simScript(abl, q5)
		if err != nil {
			return nil, err
		}
		out.Rows["broadcast map join"] = [2]float64{baseT, ablT}
	}

	// 5. Non-blocking shuffle (HiBench AGGREGATE) — the paper's Fig. 6.
	{
		cl, err := r.loadHiBench(20, "sequencefile")
		if err != nil {
			return nil, err
		}
		base := r.driver(cl, "datampi", nil)
		baseT, err := simScript(base, hibench.AggregateQuery)
		if err != nil {
			return nil, err
		}
		abl := r.driver(cl, "datampi", func(c *exec.EngineConf) { c.NonBlocking = false })
		ablT, err := simScript(abl, hibench.AggregateQuery)
		if err != nil {
			return nil, err
		}
		out.Rows["non-blocking shuffle"] = [2]float64{baseT, ablT}
	}
	return out, nil
}

func (a *AblationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Ablations: design-choice contributions at 20 GB (simulated seconds)\n")
	sb.WriteString("  optimization             with      without   penalty\n")
	var names []string
	for n := range a.Rows {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := a.Rows[n]
		fmt.Fprintf(&sb, "  %-24s %7.1f   %8.1f   %+5.0f%%\n",
			n, v[0], v[1], 100*(v[1]-v[0])/v[0])
	}
	sb.WriteString("  (pushdown shows ~0% here because dbgen dates are unsorted, so no\n" +
		"   stripe is prunable; the mechanism itself is covered by storage tests)\n")
	return sb.String()
}
