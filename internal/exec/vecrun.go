package exec

// Vectorized map-task execution: the same operator chain as runmap.go,
// but pushing column batches instead of rows. Each operator compiles
// its expressions once (compileKernel) and then processes whole batches
// per call. Operators that rearrange rows (filter, join, aggregate)
// work in place or emit pooled output batches; the terminal sink
// serializes shuffle pairs or hands materialized rows to the caller,
// so everything downstream of the map task is unchanged — the two
// modes are byte-identical on the wire.

import (
	"fmt"
	"io"
	"sort"

	"hivempi/internal/dfs"
	"hivempi/internal/storage"
	"hivempi/internal/trace"
	"hivempi/internal/types"
	"hivempi/internal/vec"
)

// batchSink consumes one batch. The batch is only valid for the
// duration of the call — operators reuse and pool batches aggressively.
type batchSink func(b *vec.Batch) error

// vchain is a built vectorized pipeline: push batches into process,
// then close (flushing blocking operators front-to-back).
type vchain struct {
	process batchSink
	closers []func() error
}

func (c *vchain) close() error {
	for _, f := range c.closers {
		if err := f(); err != nil {
			return err
		}
	}
	return nil
}

// buildVecChain compiles the op list into a push pipeline ending at
// sink, mirroring buildChain's structure back-to-front.
func buildVecChain(env *Env, ops []MapOp, sink batchSink) (*vchain, error) {
	c := &vchain{process: sink}
	for i := len(ops) - 1; i >= 0; i-- {
		next := c.process
		switch op := ops[i].(type) {
		case *FilterOp:
			k := compileKernel(op.Cond)
			var cond vec.Vector
			var mask []bool
			c.process = func(b *vec.Batch) error {
				if err := k(b, &cond); err != nil {
					return err
				}
				if cap(mask) < b.N {
					mask = make([]bool, b.N)
				}
				mask = mask[:b.N]
				for i := 0; i < b.N; i++ {
					mask[i] = laneBool(&cond, i)
				}
				b.Compact(mask)
				if b.N == 0 {
					return nil
				}
				return next(b)
			}
		case *SelectOp:
			ks := make([]vkernel, len(op.Exprs))
			for j, e := range op.Exprs {
				ks[j] = compileKernel(e)
			}
			c.process = func(b *vec.Batch) error {
				out := vec.Get(len(ks))
				defer vec.Put(out)
				for j, k := range ks {
					if err := k(b, out.Cols[j]); err != nil {
						return err
					}
				}
				out.N = b.N
				return next(out)
			}
		case *LimitOp:
			left := op.N
			c.process = func(b *vec.Batch) error {
				if left <= 0 {
					return nil
				}
				if b.N > left {
					b.N = left
				}
				left -= b.N
				return next(b)
			}
		case *MapJoinOp:
			p, err := buildVecMapJoin(env, op, next)
			if err != nil {
				return nil, err
			}
			c.process = p
		case *GroupByPartialOp:
			p, closer := buildVecGroupByPartial(op, next)
			c.process = p
			c.closers = append([]func() error{closer}, c.closers...)
		default:
			return nil, fmt.Errorf("exec: unknown map op %T", ops[i])
		}
	}
	return c, nil
}

// buildVecMapJoin shares the row-mode build phase (loadMapJoinTable)
// and probes it with kernel-computed keys, packing join results into
// datum-mode output batches.
func buildVecMapJoin(env *Env, op *MapJoinOp, next batchSink) (batchSink, error) {
	table, smallWidth, err := loadMapJoinTable(env, op)
	if err != nil {
		return nil, err
	}
	keyKs := make([]vkernel, len(op.ProbeKeys))
	for i, k := range op.ProbeKeys {
		keyKs[i] = compileKernel(k)
	}
	outer := op.Outer
	keyVs := make([]vec.Vector, len(keyKs))
	return func(b *vec.Batch) error {
		for i, k := range keyKs {
			if err := k(b, &keyVs[i]); err != nil {
				return err
			}
		}
		width := len(b.Cols) + smallWidth
		out := vec.Get(width)
		defer vec.Put(out)
		for _, v := range out.Cols {
			v.Reset(vec.KindAny, vec.DefaultSize)
		}
		n := 0
		flush := func() error {
			if n == 0 {
				return nil
			}
			out.N = n
			if err := next(out); err != nil {
				return err
			}
			for _, v := range out.Cols {
				v.Reset(vec.KindAny, vec.DefaultSize)
			}
			n = 0
			return nil
		}
		var keyBuf []byte
		emit := func(lane int, small types.Row) error {
			for c := range b.Cols {
				out.Cols[c].SetDatum(n, b.Cols[c].Datum(lane))
			}
			for c := 0; c < smallWidth; c++ {
				if small == nil || c >= len(small) {
					out.Cols[len(b.Cols)+c].SetDatum(n, types.Null())
				} else {
					out.Cols[len(b.Cols)+c].SetDatum(n, small[c])
				}
			}
			n++
			if n == vec.DefaultSize {
				return flush()
			}
			return nil
		}
		for lane := 0; lane < b.N; lane++ {
			keyBuf = keyBuf[:0]
			anyNull := false
			for i := range keyVs {
				d := keyVs[i].Datum(lane)
				if d.IsNull() {
					anyNull = true
				}
				keyBuf = types.AppendKeyDatum(keyBuf, d, false)
			}
			matches := table[string(keyBuf)]
			if anyNull {
				matches = nil // NULL keys never join
			}
			if len(matches) == 0 {
				if outer {
					if err := emit(lane, nil); err != nil {
						return err
					}
				}
				continue
			}
			for _, m := range matches {
				if err := emit(lane, m); err != nil {
					return err
				}
			}
		}
		return flush()
	}, nil
}

// buildVecGroupByPartial is the batch form of map-side hash
// aggregation: key and argument expressions evaluate per batch, then
// each lane updates its group's AggStates via UpdateDatum (the same
// accumulation Update performs after its own Arg eval).
func buildVecGroupByPartial(op *GroupByPartialOp, next batchSink) (batchSink, func() error) {
	maxEntries := op.MaxEntries
	if maxEntries <= 0 {
		maxEntries = DefaultHashAggEntries
	}
	keyKs := make([]vkernel, len(op.Keys))
	for i, k := range op.Keys {
		keyKs[i] = compileKernel(k)
	}
	// CountStar has no argument expression; a nil kernel marks it and
	// the update passes a null datum (UpdateDatum counts regardless).
	argKs := make([]vkernel, len(op.Aggs))
	for i, spec := range op.Aggs {
		if spec.Arg != nil {
			argKs[i] = compileKernel(spec.Arg)
		}
	}
	type entry struct {
		keys   []types.Datum
		states []*AggState
	}
	groups := make(map[string]*entry)

	flush := func() error {
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var out *vec.Batch
		defer func() {
			if out != nil {
				vec.Put(out)
			}
		}()
		n := 0
		emitBatch := func() error {
			if n == 0 {
				return nil
			}
			out.N = n
			if err := next(out); err != nil {
				return err
			}
			for _, v := range out.Cols {
				v.Reset(vec.KindAny, vec.DefaultSize)
			}
			n = 0
			return nil
		}
		for _, k := range keys {
			e := groups[k]
			row := make(types.Row, 0, len(e.keys)+len(e.states)*2)
			row = append(row, e.keys...)
			for _, st := range e.states {
				row = append(row, st.EmitPartial()...)
			}
			if out == nil {
				out = vec.Get(len(row))
				for _, v := range out.Cols {
					v.Reset(vec.KindAny, vec.DefaultSize)
				}
			}
			for c, d := range row {
				out.Cols[c].SetDatum(n, d)
			}
			n++
			if n == vec.DefaultSize {
				if err := emitBatch(); err != nil {
					return err
				}
			}
		}
		groups = make(map[string]*entry)
		return emitBatch()
	}

	keyVs := make([]vec.Vector, len(keyKs))
	argVs := make([]vec.Vector, len(argKs))
	process := func(b *vec.Batch) error {
		for i, k := range keyKs {
			if err := k(b, &keyVs[i]); err != nil {
				return err
			}
		}
		for i, k := range argKs {
			if k == nil {
				continue
			}
			if err := k(b, &argVs[i]); err != nil {
				return err
			}
		}
		var kb []byte
		for lane := 0; lane < b.N; lane++ {
			kb = kb[:0]
			keyVals := make([]types.Datum, len(keyKs))
			for i := range keyVs {
				d := keyVs[i].Datum(lane)
				keyVals[i] = d
				kb = types.AppendKeyDatum(kb, d, false)
			}
			e, ok := groups[string(kb)]
			if !ok {
				e = &entry{keys: keyVals, states: make([]*AggState, len(op.Aggs))}
				for i, spec := range op.Aggs {
					e.states[i] = NewAggState(spec)
				}
				groups[string(kb)] = e
			}
			for i, st := range e.states {
				var d types.Datum
				if argKs[i] != nil {
					d = argVs[i].Datum(lane)
				}
				st.UpdateDatum(d)
			}
			if len(groups) >= maxEntries {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return process, flush
}

// runMapTaskVec is RunMapTask's columnar twin: batch scan, vectorized
// chain, and a terminal that serializes the same shuffle pairs (or
// materializes the same rows) row mode produces.
func runMapTaskVec(env *Env, conf EngineConf, stage *Stage, mapIdx int, split dfs.Split,
	emit KVEmit, out RowSink, metrics *trace.Task) error {
	mw := &stage.Maps[mapIdx]

	var descs []bool
	if stage.Shuffle != nil {
		descs = stage.Shuffle.SortDescs
	}

	var terminal batchSink
	switch {
	case mw.Keys != nil:
		tagByte := byte(mw.Tag)
		keyKs := make([]vkernel, len(mw.Keys))
		for i, k := range mw.Keys {
			keyKs[i] = compileKernel(k)
		}
		valKs := make([]vkernel, len(mw.Values))
		for i, v := range mw.Values {
			valKs[i] = compileKernel(v)
		}
		keyVs := make([]vec.Vector, len(keyKs))
		valVs := make([]vec.Vector, len(valKs))
		valRow := make(types.Row, len(valKs))
		terminal = func(b *vec.Batch) error {
			for i, k := range keyKs {
				if err := k(b, &keyVs[i]); err != nil {
					return err
				}
			}
			for i, k := range valKs {
				if err := k(b, &valVs[i]); err != nil {
					return err
				}
			}
			for lane := 0; lane < b.N; lane++ {
				// Fresh key/value buffers per pair: emit implementations
				// (collectors, send buffers) may retain them.
				var key []byte
				for i := range keyVs {
					desc := false
					if descs != nil && i < len(descs) {
						desc = descs[i]
					}
					key = types.AppendKeyDatum(key, keyVs[i].Datum(lane), desc)
				}
				for i := range valVs {
					valRow[i] = valVs[i].Datum(lane)
				}
				val := types.EncodeRow([]byte{tagByte}, valRow)
				if metrics != nil {
					metrics.OutputRecords++
					metrics.OutputBytes += int64(len(key) + len(val))
				}
				if err := emit(key, val); err != nil {
					return err
				}
			}
			return nil
		}
	case out != nil:
		terminal = func(b *vec.Batch) error {
			for lane := 0; lane < b.N; lane++ {
				row := b.Row(lane, nil)
				if metrics != nil {
					metrics.OutputRecords++
				}
				if err := out(row); err != nil {
					return err
				}
			}
			return nil
		}
	default:
		return fmt.Errorf("exec: map task %s/%d has neither shuffle nor sink", stage.ID, mapIdx)
	}

	c, err := buildVecChain(env, adaptOps(mw.Ops, conf), terminal)
	if err != nil {
		return err
	}
	if split.Path == "" {
		return c.close()
	}
	rd, err := storage.OpenSplitBatch(env.FS, split, mw.Input.Format, mw.Input.Schema,
		mw.Input.Projection, mw.Input.Predicate)
	if err != nil {
		return err
	}
	b := vec.Get(mw.Input.Schema.Len())
	defer vec.Put(b)
	for {
		err := rd.NextBatch(b)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if metrics != nil {
			metrics.InputRecords += int64(b.N)
			metrics.Batches++
		}
		if err := c.process(b); err != nil {
			return err
		}
	}
	if metrics != nil {
		var in int64
		if pr, ok := rd.(storage.PhysicalReader); ok {
			in = pr.PhysicalBytes()
		} else {
			in = split.Length
		}
		metrics.InputBytes += in
		if env.FS.MemResident(split.Path) {
			metrics.MemReadBytes += in
		}
	}
	return c.close()
}
