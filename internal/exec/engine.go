package exec

import (
	"fmt"

	"hivempi/internal/dfs"
	"hivempi/internal/storage"
	"hivempi/internal/trace"
	"hivempi/internal/types"
)

// Engine executes one plan stage. The two implementations are Hive on
// Hadoop MapReduce (internal/mrengine) and Hive on DataMPI
// (internal/core, the paper's contribution).
type Engine interface {
	Name() string
	Run(env *Env, stage *Stage, conf EngineConf) (*StageResult, error)
}

// ParallelismMode selects the task-count strategy (paper §IV-D).
type ParallelismMode string

// Parallelism modes.
const (
	// ParallelismDefault sizes reducers from the planner hint / input
	// size, bounded by the cluster's execution slots.
	ParallelismDefault ParallelismMode = "default"
	// ParallelismEnhanced sets the reducer count equal to the map/O
	// task count (1 for the query's last stage), alleviating data skew.
	ParallelismEnhanced ParallelismMode = "enhanced"
)

// EngineConf carries the deployment and tuning knobs shared by both
// engines, mirroring the paper's hive.datampi.* parameters plus the
// cluster geometry of §V-A (1 master + 7 slaves, 4 slots each).
type EngineConf struct {
	Slaves       []string // worker hostnames
	SlotsPerNode int

	Parallelism     ParallelismMode
	SplitSize       int64 // bytes per map/O input split (0 = DFS block size)
	BytesPerReducer int64 // default-mode reducer sizing
	SortBufferBytes int   // Hadoop io.sort.mb analogue
	SendBufferBytes int   // DataMPI partition buffer
	SendQueueSize   int   // hive.datampi.sendqueue
	MemUsedPercent  float64
	TaskMemoryBytes int64
	NonBlocking     bool // DataMPI shuffle style
	SpillDir        string
	// MaxTaskAttempts re-runs failed work: Hadoop map tasks re-execute
	// individually; the DataMPI engine retries the whole stage from
	// O-task checkpoints. Default 1 (no retries).
	MaxTaskAttempts int
	// DisableSpeculation turns off speculative re-launch of straggler
	// tasks (the zero value keeps speculation on).
	DisableSpeculation bool
	// Vectorized routes map tasks through the columnar batch pipeline
	// (hive.exec.vectorized). Output is byte-identical to row mode.
	Vectorized bool
	// Adaptation, when non-nil, is the skew-adaptive rewrite of this
	// stage's shuffle geometry computed by internal/adapt from the
	// producer's observed partition statistics (nil = planned geometry).
	// Per-stage: the scheduler sets it on a copy of the shared conf.
	Adaptation *ShuffleAdaptation
}

// DefaultEngineConf mirrors the paper's testbed at 1:1000 scale.
func DefaultEngineConf() EngineConf {
	return EngineConf{
		Slaves: []string{"slave1", "slave2", "slave3", "slave4",
			"slave5", "slave6", "slave7"},
		SlotsPerNode:    4,
		Parallelism:     ParallelismDefault,
		BytesPerReducer: 1 << 20,
		MemUsedPercent:  0.4,
		SendQueueSize:   6,
		NonBlocking:     true,
	}
}

// MaxSlots is the cluster-wide concurrent task bound.
func (c *EngineConf) MaxSlots() int {
	n := len(c.Slaves) * c.SlotsPerNode
	if n <= 0 {
		return 4
	}
	return n
}

// StageResult is one executed stage: its trace and collected rows.
type StageResult struct {
	Trace *trace.Stage
	Rows  []types.Row
}

// MapTaskSpec assigns one input split to one map/O task.
type MapTaskSpec struct {
	MapIdx int // index into stage.Maps
	Split  dfs.Split
	Host   string
	Local  bool
}

// PlanMapTasks computes the task list for a stage: every input path of
// every map work is chopped into splits; each split becomes a task
// hosted on its first UP replica (data locality). DEAD and SUSPECT
// nodes are blacklisted: when no live replica host remains the task
// runs remote (Host empty, non-local), and the read either fails over
// or surfaces BlockLostError for the scheduler's relaunch path.
func PlanMapTasks(env *Env, stage *Stage, conf EngineConf) ([]MapTaskSpec, error) {
	var tasks []MapTaskSpec
	for mi := range stage.Maps {
		for _, path := range stage.Maps[mi].Input.ResolvePaths(env.FS) {
			splits, err := env.FS.Splits(path, conf.SplitSize)
			if err != nil {
				return nil, fmt.Errorf("exec: splits for %s: %w", path, err)
			}
			for _, sp := range splits {
				host, local := "", false
				for _, h := range sp.Hosts {
					if env.NodeUp(h) {
						host, local = h, true
						break
					}
				}
				tasks = append(tasks, MapTaskSpec{MapIdx: mi, Split: sp, Host: host, Local: local})
			}
		}
	}
	if len(tasks) == 0 {
		// Empty inputs still need one task per map work so joins see
		// their empty side and sinks create output files.
		for mi := range stage.Maps {
			tasks = append(tasks, MapTaskSpec{MapIdx: mi})
		}
	}
	return tasks, nil
}

// ReducerCount applies the parallelism strategy (paper §IV-D).
func ReducerCount(stage *Stage, conf EngineConf, numMaps int, inputBytes int64) int {
	if stage.Shuffle == nil {
		return 0
	}
	// A global aggregate has one group by construction; every strategy
	// uses a single reducer (and the empty-input row stays unique).
	if len(stage.Maps) > 0 && stage.Maps[0].Keys != nil && len(stage.Maps[0].Keys) == 0 {
		return 1
	}
	// A planner hint of exactly 1 is semantic (total ORDER BY, global
	// LIMIT), not a sizing suggestion; it binds under every strategy.
	if stage.Shuffle.NumReducers == 1 {
		return 1
	}
	if conf.Parallelism == ParallelismEnhanced {
		if stage.LastStage {
			return 1
		}
		if numMaps < 1 {
			return 1
		}
		// |A| = |O|, bounded by the cluster's executing slots (the
		// paper's Q9 example raises 16 A tasks to 28, "the maximum
		// number of executing slots").
		if max := conf.MaxSlots(); numMaps > max {
			return max
		}
		return numMaps
	}
	n := stage.Shuffle.NumReducers
	if n <= 0 {
		per := conf.BytesPerReducer
		if per <= 0 {
			per = 1 << 20
		}
		n = int(inputBytes / per)
	}
	if n < 1 {
		n = 1
	}
	if max := conf.MaxSlots(); n > max {
		n = max
	}
	return n
}

// BuildTaskOutput wires one task's output: when the stage has a sink, a
// part file is created under the sink directory; when the stage
// collects, rows are also delivered to collect (which must be
// concurrency-safe). The returned closer finalizes the part file.
func BuildTaskOutput(env *Env, stage *Stage, taskID int,
	collect RowSink) (RowSink, func() error, error) {
	var writer storage.RowWriter
	if stage.Sink != nil {
		path := fmt.Sprintf("%s/part-%05d", stage.Sink.Dir, taskID)
		w, err := storage.CreateTableFile(env.FS, path, stage.Sink.Format, stage.Sink.Schema)
		if err != nil {
			return nil, nil, fmt.Errorf("exec: create sink %s: %w", path, err)
		}
		writer = w
	}
	sink := func(row types.Row) error {
		if writer != nil {
			if err := writer.Write(row); err != nil {
				return err
			}
		}
		if stage.Collect && collect != nil {
			return collect(row)
		}
		return nil
	}
	closer := func() error {
		if writer != nil {
			return writer.Close()
		}
		return nil
	}
	return sink, closer, nil
}

// FillSinkWriteBytes attributes sink part-file sizes to the tasks that
// wrote them (consumers, or producers for map-only stages). Part files
// admitted to the memory tier are additionally counted as memory-tier
// writes and credited as cached intermediate bytes, so the perfmodel
// prices them at memory bandwidth.
func FillSinkWriteBytes(env *Env, stage *Stage, st *trace.Stage) {
	if stage.Sink == nil {
		return
	}
	owner := st.Consumers
	if len(owner) == 0 {
		owner = st.Producers
	}
	for i, t := range owner {
		path := fmt.Sprintf("%s/part-%05d", stage.Sink.Dir, i)
		sz, err := env.FS.Size(path)
		if err != nil {
			continue
		}
		t.WriteBytes = sz
		if env.FS.MemResident(path) {
			t.MemWriteBytes = sz
			t.MemoryCacheBytes += sz
		}
	}
}

// SizingBytes estimates a stage's logical input size for reducer
// sizing: per map work, the larger of the measured split bytes and the
// planner's raw-size estimate (compressed columnar inputs understate
// the work they fan out; Hive solves this with metastore statistics).
func SizingBytes(stage *Stage, tasks []MapTaskSpec) int64 {
	measured := make([]int64, len(stage.Maps))
	for _, t := range tasks {
		measured[t.MapIdx] += t.Split.Length
	}
	var total int64
	for mi := range stage.Maps {
		b := measured[mi]
		if raw := stage.Maps[mi].RawInputBytes; raw > b {
			b = raw
		}
		total += b
	}
	return total
}
