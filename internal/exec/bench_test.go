package exec

import (
	"math/rand"
	"testing"

	"hivempi/internal/types"
	"hivempi/internal/vec"
)

// benchExecBatch builds a lineitem-shaped batch: qty int, price float,
// disc float, flag string.
func benchExecBatch(n int) *vec.Batch {
	rng := rand.New(rand.NewSource(3))
	b := &vec.Batch{N: n}
	b.Cols = []*vec.Vector{
		vec.NewVector(types.KindInt, n),
		vec.NewVector(types.KindFloat, n),
		vec.NewVector(types.KindFloat, n),
		vec.NewVector(types.KindString, n),
	}
	flags := []string{"A", "N", "R"}
	for i := 0; i < n; i++ {
		b.Cols[0].I64[i] = int64(rng.Intn(50))
		b.Cols[1].F64[i] = rng.Float64() * 1000
		b.Cols[2].F64[i] = rng.Float64() * 0.1
		b.Cols[3].Str[i] = flags[rng.Intn(len(flags))]
	}
	return b
}

// benchFilterExpr is Q6-shaped: disc between bounds AND qty < 24.
func benchFilterExpr() Expr {
	return &Logic{Op: LogicAnd,
		L: &Between{E: col(2), Lo: fLit(0.02), Hi: fLit(0.08)},
		R: &Cmp{Op: CmpLT, L: col(0), R: iLit(24)},
	}
}

func BenchmarkFilterRowEval(b *testing.B) {
	e := benchFilterExpr()
	batch := benchExecBatch(vec.DefaultSize)
	var scratch types.Row
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kept := 0
		for lane := 0; lane < batch.N; lane++ {
			scratch = batch.Row(lane, scratch)
			d, err := e.Eval(scratch)
			if err != nil {
				b.Fatal(err)
			}
			if !d.IsNull() && d.Bool() {
				kept++
			}
		}
	}
}

func BenchmarkFilterKernel(b *testing.B) {
	k := compileKernel(benchFilterExpr())
	batch := benchExecBatch(vec.DefaultSize)
	var out vec.Vector
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k(batch, &out); err != nil {
			b.Fatal(err)
		}
		kept := 0
		for lane := 0; lane < batch.N; lane++ {
			if laneBool(&out, lane) {
				kept++
			}
		}
	}
}

// benchProjectExpr is Q1's revenue expression: price * (1 - disc).
func benchProjectExpr() Expr {
	return &BinOp{Op: OpMul, L: col(1),
		R: &BinOp{Op: OpSub, L: fLit(1), R: col(2)}}
}

func BenchmarkProjectRowEval(b *testing.B) {
	e := benchProjectExpr()
	batch := benchExecBatch(vec.DefaultSize)
	var scratch types.Row
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lane := 0; lane < batch.N; lane++ {
			scratch = batch.Row(lane, scratch)
			if _, err := e.Eval(scratch); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkProjectKernel(b *testing.B) {
	k := compileKernel(benchProjectExpr())
	batch := benchExecBatch(vec.DefaultSize)
	var out vec.Vector
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k(batch, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAggOps is a Q1-shaped map-side aggregation: group by flag,
// sum(qty), sum(price*(1-disc)), count(*).
func benchAggOps() []MapOp {
	return []MapOp{&GroupByPartialOp{
		Keys: []Expr{col(3)},
		Aggs: []AggSpec{
			{Kind: AggSum, Arg: col(0)},
			{Kind: AggSum, Arg: benchProjectExpr()},
			{Kind: AggCountStar},
		},
	}}
}

func BenchmarkGroupByPartialRow(b *testing.B) {
	batch := benchExecBatch(vec.DefaultSize)
	rows := make([]types.Row, batch.N)
	for i := range rows {
		rows[i] = batch.Row(i, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := buildChain(nil, benchAggOps(), func(types.Row) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if err := c.process(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByPartialVec(b *testing.B) {
	batch := benchExecBatch(vec.DefaultSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := buildVecChain(nil, benchAggOps(), func(*vec.Batch) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		if err := c.process(batch); err != nil {
			b.Fatal(err)
		}
		if err := c.close(); err != nil {
			b.Fatal(err)
		}
	}
}
