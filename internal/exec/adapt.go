package exec

// Skew-adaptive shuffle geometry. A ShuffleAdaptation is computed by
// the adapt runtime (internal/adapt) from a completed producer stage's
// partition-byte statistics and handed to the engines through
// EngineConf.Adaptation: it rewrites the consumer count, the
// partition map (splitting heavy base buckets across several ranks by
// a secondary key hash and fusing light ones onto shared ranks),
// pins predicted-heavy ranks to lightly loaded hosts, and marks ranks
// for predictive speculation.
//
// Correctness: Partition is a pure function of the key's partition
// prefix, so a group never straddles two consumer ranks — splitting a
// heavy BUCKET spreads its distinct keys, never the rows of one key.
// Downstream results stay byte-identical because the kvio merge order
// is content-determined (key bytes, then value bytes).

// PredictiveDetectSec is the virtual detection latency of the
// predictive speculation path: a task the adapt runtime already
// flagged (heavy partition on a SUSPECT/slow node) has its backup
// launched at stage start, so an injected straggler delay is capped
// well below the observation-based SpeculativeDetectSec.
const PredictiveDetectSec = 0.3

// ShuffleAdaptation rewrites one shuffle stage's consumer geometry.
// The zero value (nil pointer) means "no adaptation"; engines must
// treat every field independently so a combiner-only adaptation
// (NumTargets == 0) leaves the partition map untouched.
type ShuffleAdaptation struct {
	// BaseParts is the partition count the producer statistics were
	// observed at. Keys hash into this base space first, exactly like
	// the producer's PartitionForKey did, so the observed per-bucket
	// byte weights line up with the buckets being split or fused.
	BaseParts int
	// Targets[b] lists the consumer ranks serving base bucket b: one
	// rank for pass-through and fused buckets, several for split ones.
	Targets [][]int
	// NumTargets is the rewritten consumer count (1 + max target rank).
	NumTargets int
	// Hosts[i] places target rank i (skew-aware A placement); an empty
	// string or missing entry falls back to the engine's round-robin.
	Hosts []string
	// Speculate[i] predictively speculates target rank i.
	Speculate []bool
	// SplitParts / FusedParts count the rewritten base buckets, for the
	// stage trace and the EXPLAIN ANALYZE "skew-adapted" line.
	SplitParts int
	FusedParts int
	// PlanCostSec is the virtual cost of computing this adaptation,
	// charged on the stage trace (perfmodel.AdaptPlanSeconds).
	PlanCostSec float64
	// HashAggEntries overrides the map-side combiner hash capacity for
	// the stage's own GroupByPartialOps (0 = keep the planned value).
	// Only set when every affected aggregate merges exactly.
	HashAggEntries int
}

// Repartitions reports whether the adaptation rewrites the partition
// map (as opposed to combiner-strength only).
func (ad *ShuffleAdaptation) Repartitions() bool {
	return ad != nil && ad.NumTargets > 0 && len(ad.Targets) == ad.BaseParts
}

// splitSeed decorrelates the secondary hash from the base FNV pass so
// the distinct keys of one heavy bucket — which by construction
// collide in the base space — spread across the bucket's target ranks.
const splitSeed = fnvOffset64 ^ 0x9E3779B97F4A7C15

// Partition maps a shuffle key to its consumer rank under the
// adaptation. partitionKeys/totalKeys mirror PartitionForKey.
func (ad *ShuffleAdaptation) Partition(key []byte, partitionKeys, totalKeys int) int {
	prefix := key
	if partitionKeys > 0 && partitionKeys < totalKeys {
		prefix = keyPrefix(key, partitionKeys)
	}
	base := int(fnvHash(prefix, fnvOffset64) % uint64(ad.BaseParts))
	t := ad.Targets[base]
	if len(t) == 1 {
		return t[0]
	}
	return t[fnvHash(prefix, splitSeed)%uint64(len(t))]
}

// MarkPredictive flags the consumer rank's task for predictive
// speculation when the adaptation asked for it. Nil-safe.
func (ad *ShuffleAdaptation) MarkPredictive(rank int) bool {
	return ad != nil && rank < len(ad.Speculate) && ad.Speculate[rank]
}

// HostFor returns the adapted placement of consumer rank i, or "" when
// the engine should keep its default.
func (ad *ShuffleAdaptation) HostFor(i int) string {
	if ad == nil || i >= len(ad.Hosts) {
		return ""
	}
	return ad.Hosts[i]
}

// adaptOps applies the adaptation's combiner-strength override to the
// stage's own (top-level) GroupByPartialOps, copying the op so shared
// cached plans are never mutated. Returns ops unchanged when there is
// nothing to override.
func adaptOps(ops []MapOp, conf EngineConf) []MapOp {
	ad := conf.Adaptation
	if ad == nil || ad.HashAggEntries <= 0 {
		return ops
	}
	out := ops
	copied := false
	for i, op := range ops {
		gb, ok := op.(*GroupByPartialOp)
		if !ok {
			continue
		}
		if !copied {
			out = append([]MapOp(nil), ops...)
			copied = true
		}
		dup := *gb
		dup.MaxEntries = ad.HashAggEntries
		out[i] = &dup
	}
	return out
}
