package exec

import (
	"fmt"

	"hivempi/internal/trace"
	"hivempi/internal/types"
)

// ReduceDriver executes the reduce-side program: both engines feed it
// key groups in global key order (Hadoop after merge, DataMPI from the
// A-side iterator) and it pushes result rows through the post chain
// into the output sink — the ExecReducer of the paper.
type ReduceDriver struct {
	env     *Env
	work    *ReduceWork
	chain   *chain
	metrics *trace.Task

	limitLeft int
	groupsFed int
	closed    bool
}

// NewReduceDriver builds the post chain ending at out.
func NewReduceDriver(env *Env, work *ReduceWork, out RowSink, metrics *trace.Task) (*ReduceDriver, error) {
	d := &ReduceDriver{env: env, work: work, metrics: metrics, limitLeft: work.Limit}
	terminal := out
	if work.Limit > 0 {
		inner := out
		terminal = func(row types.Row) error {
			if d.limitLeft <= 0 {
				return nil
			}
			d.limitLeft--
			return inner(row)
		}
	}
	counted := func(row types.Row) error {
		if metrics != nil {
			metrics.OutputRecords++
		}
		return terminal(row)
	}
	c, err := buildChain(env, work.Post, counted)
	if err != nil {
		return nil, err
	}
	d.chain = c
	return d, nil
}

// decodeKey reverses the order-preserving key encoding.
func (d *ReduceDriver) decodeKey(key []byte) (types.Row, error) {
	out := make(types.Row, 0, len(d.work.KeyKinds))
	pos := 0
	for i, k := range d.work.KeyKinds {
		desc := false
		if d.work.KeyDescs != nil && i < len(d.work.KeyDescs) {
			desc = d.work.KeyDescs[i]
		}
		dat, n, err := types.DecodeKeyDatum(key[pos:], k, desc)
		if err != nil {
			return nil, fmt.Errorf("exec: decode key column %d: %w", i, err)
		}
		out = append(out, dat)
		pos += n
	}
	return out, nil
}

// decodeValue strips the tag byte and decodes the row payload.
func decodeValue(val []byte) (int, types.Row, error) {
	if len(val) == 0 {
		return 0, nil, fmt.Errorf("exec: empty shuffle value")
	}
	tag := int(val[0])
	row, _, err := types.DecodeRow(val[1:])
	if err != nil {
		return 0, nil, fmt.Errorf("exec: decode shuffle value: %w", err)
	}
	return tag, row, nil
}

// Feed processes one key group.
func (d *ReduceDriver) Feed(key []byte, values [][]byte) error {
	d.groupsFed++
	if d.metrics != nil {
		d.metrics.InputRecords += int64(len(values))
	}
	keyRow, err := d.decodeKey(key)
	if err != nil {
		return err
	}
	switch op := d.work.Op.(type) {
	case *GroupByReduce:
		return d.feedGroupBy(op, keyRow, values)
	case *JoinReduce:
		return d.feedJoin(op, values)
	case *ExtractReduce:
		for _, v := range values {
			_, row, err := decodeValue(v)
			if err != nil {
				return err
			}
			if err := d.chain.process(row); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("exec: unknown reduce op %T", d.work.Op)
	}
}

// feedGroupBy merges partial states (or raw values in complete mode)
// and emits key ++ finals.
func (d *ReduceDriver) feedGroupBy(op *GroupByReduce, keyRow types.Row, values [][]byte) error {
	states := make([]*AggState, len(op.Aggs))
	for i, spec := range op.Aggs {
		states[i] = NewAggState(spec)
	}
	for _, v := range values {
		_, row, err := decodeValue(v)
		if err != nil {
			return err
		}
		if op.Complete {
			// Raw mode: row carries one evaluated argument per agg.
			if len(row) != len(op.Aggs) {
				return fmt.Errorf("exec: raw agg row width %d, want %d", len(row), len(op.Aggs))
			}
			for i, st := range states {
				if op.Aggs[i].Kind == AggCountStar {
					st.count++
					continue
				}
				st.UpdateDatum(row[i])
			}
			continue
		}
		pos := 0
		for i, st := range states {
			w := op.Aggs[i].PartialWidth()
			if pos+w > len(row) {
				return fmt.Errorf("exec: partial agg row too narrow (%d < %d)", len(row), pos+w)
			}
			if err := st.MergePartial(row[pos : pos+w]); err != nil {
				return err
			}
			pos += w
		}
	}
	out := make(types.Row, 0, len(keyRow)+len(states))
	out = append(out, keyRow...)
	for _, st := range states {
		out = append(out, st.Final())
	}
	if d.metrics != nil {
		d.metrics.ReduceGroups++
	}
	return d.chain.process(out)
}

// feedJoin buckets the group's rows by tag and emits the join of the
// buckets, left-folding with the configured join types.
func (d *ReduceDriver) feedJoin(op *JoinReduce, values [][]byte) error {
	buckets := make([][]types.Row, op.TagCount)
	for _, v := range values {
		tag, row, err := decodeValue(v)
		if err != nil {
			return err
		}
		if tag < 0 || tag >= op.TagCount {
			return fmt.Errorf("exec: join tag %d out of range %d", tag, op.TagCount)
		}
		if len(row) != op.ValueWidths[tag] {
			return fmt.Errorf("exec: join tag %d row width %d, want %d",
				tag, len(row), op.ValueWidths[tag])
		}
		buckets[tag] = append(buckets[tag], row)
	}

	// Left-fold: acc starts as tag 0's rows.
	acc := buckets[0]
	accWidth := op.ValueWidths[0]
	for t := 1; t < op.TagCount; t++ {
		jt := JoinInner
		if t-1 < len(op.JoinTypes) {
			jt = op.JoinTypes[t-1]
		}
		right := buckets[t]
		rightWidth := op.ValueWidths[t]
		var next []types.Row
		switch {
		case len(right) == 0 && jt == JoinLeftOuter:
			nulls := make(types.Row, rightWidth)
			for _, l := range acc {
				out := make(types.Row, 0, accWidth+rightWidth)
				out = append(out, l...)
				out = append(out, nulls...)
				next = append(next, out)
			}
		case len(right) == 0 || len(acc) == 0:
			next = nil
		default:
			for _, l := range acc {
				for _, r := range right {
					out := make(types.Row, 0, accWidth+rightWidth)
					out = append(out, l...)
					out = append(out, r...)
					next = append(next, out)
				}
			}
		}
		acc = next
		accWidth += rightWidth
		if len(acc) == 0 {
			return nil // no left rows survive; later folds stay empty
		}
	}
	if d.metrics != nil {
		d.metrics.ReduceGroups++
	}
	for _, row := range acc {
		if err := d.chain.process(row); err != nil {
			return err
		}
	}
	return nil
}

// LimitReached reports whether a configured LIMIT has been satisfied
// (engines may stop feeding early).
func (d *ReduceDriver) LimitReached() bool {
	return d.work.Limit > 0 && d.limitLeft <= 0
}

// Close flushes blocking post operators. A global aggregate (no group
// keys) that received no input still emits its single empty-group row
// (SQL: SELECT sum(x) over zero rows yields one NULL row). The planner
// forces such stages onto a single reducer, so exactly one row appears.
func (d *ReduceDriver) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	if gb, ok := d.work.Op.(*GroupByReduce); ok &&
		len(d.work.KeyKinds) == 0 && d.groupsFed == 0 {
		if err := d.feedGroupBy(gb, nil, nil); err != nil {
			return err
		}
	}
	return d.chain.close()
}
