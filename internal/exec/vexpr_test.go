package exec

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"hivempi/internal/types"
	"hivempi/internal/vec"
)

// randBatch builds a batch of typed columns seeded with random values
// and random NULLs: col 0 int, col 1 float, col 2 string, col 3 bool,
// col 4 date, col 5 mixed-kind (KindAny). The mixed column forces the
// kernels off their typed fast paths onto the scalar helpers.
func randBatch(rng *rand.Rand, n int) *vec.Batch {
	b := &vec.Batch{N: n}
	kinds := []types.Kind{
		types.KindInt, types.KindFloat, types.KindString,
		types.KindBool, types.KindDate, vec.KindAny,
	}
	for _, k := range kinds {
		b.Cols = append(b.Cols, vec.NewVector(k, n))
	}
	words := []string{"apple", "applet", "banana", "", "a%b", "SMALL BOX", "PROMO", "promo box"}
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			b.Cols[0].SetNull(i)
		} else {
			b.Cols[0].I64[i] = int64(rng.Intn(21) - 10)
		}
		if rng.Intn(4) == 0 {
			b.Cols[1].SetNull(i)
		} else {
			b.Cols[1].F64[i] = rng.Float64()*20 - 10
		}
		if rng.Intn(4) == 0 {
			b.Cols[2].SetNull(i)
		} else {
			b.Cols[2].Str[i] = words[rng.Intn(len(words))]
		}
		if rng.Intn(4) == 0 {
			b.Cols[3].SetNull(i)
		} else {
			b.Cols[3].I64[i] = int64(rng.Intn(2))
		}
		if rng.Intn(4) == 0 {
			b.Cols[4].SetNull(i)
		} else {
			b.Cols[4].I64[i] = int64(rng.Intn(1000))
		}
		switch rng.Intn(4) {
		case 0:
			b.Cols[5].SetDatum(i, types.Null())
		case 1:
			b.Cols[5].SetDatum(i, types.Int(int64(rng.Intn(10))))
		case 2:
			b.Cols[5].SetDatum(i, types.Float(rng.Float64()*5))
		case 3:
			b.Cols[5].SetDatum(i, types.String(words[rng.Intn(len(words))]))
		}
	}
	return b
}

// assertKernelMatchesEval runs e both ways over randomized batches and
// requires every lane's datum bit-identical (EncodeRow bytes) to the
// row-mode Eval of the same lane.
func assertKernelMatchesEval(t *testing.T, name string, e Expr, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	k := compileKernel(e)
	var out vec.Vector
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(2*vec.DefaultSize)
		b := randBatch(rng, n)
		if err := k(b, &out); err != nil {
			t.Fatalf("%s: kernel: %v", name, err)
		}
		var scratch types.Row
		for i := 0; i < n; i++ {
			scratch = b.Row(i, scratch)
			want, err := e.Eval(scratch)
			if err != nil {
				t.Fatalf("%s: eval lane %d: %v", name, i, err)
			}
			got := out.Datum(i)
			gb := types.EncodeRow(nil, types.Row{got})
			wb := types.EncodeRow(nil, types.Row{want})
			if !bytes.Equal(gb, wb) {
				t.Fatalf("%s trial %d lane %d: kernel %v, Eval %v (row %v)",
					name, trial, i, got, want, scratch)
			}
		}
	}
}

// TestVecCmpNullSemantics: every comparison op, over typed, mixed and
// NULL-const operands, must yield exactly what cmpDatums yields per
// lane — NULL operands compare to NULL, never true/false.
func TestVecCmpNullSemantics(t *testing.T) {
	ops := []CmpOpKind{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE}
	operands := [][2]Expr{
		{col(0), col(1)},                       // int vs float
		{col(0), &Const{D: types.Int(3)}},      // int vs const
		{col(1), &Const{D: types.Float(0.5)}},  // float vs const
		{col(2), &Const{D: types.String("b")}}, // string vs const
		{col(4), col(0)},                       // date vs int
		{col(5), col(0)},                       // mixed vs int
		{col(0), &Const{D: types.Null()}},      // vs NULL const
	}
	for _, op := range ops {
		for oi, o := range operands {
			e := &Cmp{Op: op, L: o[0], R: o[1]}
			assertKernelMatchesEval(t, fmt.Sprintf("cmp/%v/%d", op, oi), e, int64(100+oi))
		}
	}
}

// TestVecLogicNullSemantics: AND/OR/NOT must keep Kleene three-valued
// truth tables (NULL AND false = false, NULL OR true = true, ...).
func TestVecLogicNullSemantics(t *testing.T) {
	boolish := []Expr{
		col(3),
		&Cmp{Op: CmpGT, L: col(0), R: &Const{D: types.Int(0)}},
		&Const{D: types.Null()},
		&Const{D: types.Bool(true)},
		&Const{D: types.Bool(false)},
	}
	for li, l := range boolish {
		for ri, r := range boolish {
			and := &Logic{Op: LogicAnd, L: l, R: r}
			or := &Logic{Op: LogicOr, L: l, R: r}
			assertKernelMatchesEval(t, fmt.Sprintf("and/%d-%d", li, ri), and, int64(200+li*8+ri))
			assertKernelMatchesEval(t, fmt.Sprintf("or/%d-%d", li, ri), or, int64(300+li*8+ri))
		}
		not := &Logic{Op: LogicNot, L: l}
		assertKernelMatchesEval(t, fmt.Sprintf("not/%d", li), not, int64(400+li))
	}
}

// TestVecLikeNullSemantics: NULL input stays NULL; patterns exercise
// %, _ and literal-only matching over the string column.
func TestVecLikeNullSemantics(t *testing.T) {
	for pi, pat := range []string{"%app%", "a_b", "banana", "%BOX", "", "%"} {
		for _, neg := range []bool{false, true} {
			e := &Like{E: col(2), Pattern: pat, Negate: neg}
			assertKernelMatchesEval(t, fmt.Sprintf("like/%d/neg=%t", pi, neg), e, int64(500+pi))
		}
	}
	// LIKE over a non-string column routes through the fallback cast.
	assertKernelMatchesEval(t, "like/mixed", &Like{E: col(5), Pattern: "%a%"}, 540)
}

// TestVecCaseNullSemantics: NULL conditions are not-taken (not errors),
// a missing ELSE yields NULL, and arm values keep their lane kinds.
func TestVecCaseNullSemantics(t *testing.T) {
	cases := []*Case{
		{Whens: []CaseWhen{
			{Cond: &Cmp{Op: CmpGT, L: col(0), R: &Const{D: types.Int(0)}}, Value: col(1)},
			{Cond: col(3), Value: &Const{D: types.String("arm2")}},
		}, Else: col(5)},
		{Whens: []CaseWhen{
			{Cond: &Const{D: types.Null()}, Value: &Const{D: types.Int(1)}},
			{Cond: &Cmp{Op: CmpLT, L: col(1), R: col(0)}, Value: col(2)},
		}}, // no ELSE: NULL
		{Whens: []CaseWhen{
			{Cond: &Const{D: types.Bool(true)}, Value: col(0)},
		}, Else: &Const{D: types.Int(-1)}},
	}
	for ci, c := range cases {
		assertKernelMatchesEval(t, fmt.Sprintf("case/%d", ci), c, int64(600+ci))
	}
}

// TestVecInNullSemantics: NULL probe yields NULL; a NULL list element
// turns a non-match into NULL (x IN (..., NULL) is never false).
func TestVecInNullSemantics(t *testing.T) {
	lists := [][]Expr{
		{&Const{D: types.Int(1)}, &Const{D: types.Int(2)}, &Const{D: types.Int(3)}},
		{&Const{D: types.Int(1)}, &Const{D: types.Null()}},
		{&Const{D: types.String("apple")}, &Const{D: types.String("banana")}},
		{col(0), &Const{D: types.Int(0)}}, // non-const member
	}
	for li, list := range lists {
		for _, neg := range []bool{false, true} {
			for _, probe := range []Expr{col(0), col(5)} {
				e := &In{E: probe, List: list, Negate: neg}
				assertKernelMatchesEval(t, fmt.Sprintf("in/%d/neg=%t", li, neg), e, int64(700+li))
			}
		}
	}
}

// TestVecBetweenNullSemantics: NULL in any of the three operands
// propagates exactly as the scalar path decides.
func TestVecBetweenNullSemantics(t *testing.T) {
	bounds := [][2]Expr{
		{&Const{D: types.Int(-3)}, &Const{D: types.Int(3)}},
		{&Const{D: types.Float(-1.5)}, &Const{D: types.Float(4.5)}},
		{&Const{D: types.Null()}, &Const{D: types.Int(5)}},
		{col(0), col(1)}, // column bounds
	}
	for bi, bd := range bounds {
		for _, neg := range []bool{false, true} {
			for _, probe := range []Expr{col(0), col(1), col(5)} {
				e := &Between{E: probe, Lo: bd[0], Hi: bd[1], Negate: neg}
				assertKernelMatchesEval(t, fmt.Sprintf("between/%d/neg=%t", bi, neg), e, int64(800+bi))
			}
		}
	}
}

// TestVecBinOpNullSemantics rides along: arithmetic over NULLs and
// mixed kinds (including div/mod by zero lanes) must match binOpDatums.
func TestVecBinOpNullSemantics(t *testing.T) {
	ops := []BinOpKind{OpAdd, OpSub, OpMul, OpDiv, OpMod}
	operands := [][2]Expr{
		{col(0), col(0)},
		{col(0), col(1)},
		{col(1), &Const{D: types.Float(2.5)}},
		{col(5), col(0)},
		{col(0), &Const{D: types.Null()}},
	}
	for _, op := range ops {
		for oi, o := range operands {
			e := &BinOp{Op: op, L: o[0], R: o[1]}
			assertKernelMatchesEval(t, fmt.Sprintf("binop/%v/%d", op, oi), e, int64(900+oi))
		}
	}
}

// TestVecIsNullSemantics: IS NULL / IS NOT NULL over every column kind.
func TestVecIsNullSemantics(t *testing.T) {
	for ci := 0; ci < 6; ci++ {
		for _, neg := range []bool{false, true} {
			e := &IsNull{E: col(ci), Negate: neg}
			assertKernelMatchesEval(t, fmt.Sprintf("isnull/%d/neg=%t", ci, neg), e, int64(1000+ci))
		}
	}
}
