package exec

import (
	"testing"

	"hivempi/internal/types"
)

func TestAggSumCountAvgMinMax(t *testing.T) {
	specs := []AggSpec{
		{Kind: AggSum, Arg: col(0)},
		{Kind: AggCount, Arg: col(0)},
		{Kind: AggCountStar},
		{Kind: AggAvg, Arg: col(0)},
		{Kind: AggMin, Arg: col(0)},
		{Kind: AggMax, Arg: col(0)},
	}
	states := make([]*AggState, len(specs))
	for i, s := range specs {
		states[i] = NewAggState(s)
	}
	inputs := []types.Datum{types.Int(4), types.Int(2), types.Null(), types.Int(6)}
	for _, d := range inputs {
		row := types.Row{d}
		for _, st := range states {
			if err := st.Update(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	wants := []string{"12", "3", "4", "4", "2", "6"}
	for i, st := range states {
		if got := st.Final().Text(); got != wants[i] {
			t.Errorf("agg %d (%v) = %s, want %s", i, specs[i].Kind, got, wants[i])
		}
	}
}

func TestAggPartialMergeEqualsDirect(t *testing.T) {
	specs := []AggSpec{
		{Kind: AggSum, Arg: col(0)},
		{Kind: AggCountStar},
		{Kind: AggAvg, Arg: col(0)},
		{Kind: AggMin, Arg: col(0)},
		{Kind: AggMax, Arg: col(0)},
	}
	vals := []int64{5, 3, 9, 1, 7, 7, 2}
	for _, spec := range specs {
		direct := NewAggState(spec)
		for _, v := range vals {
			if err := direct.Update(types.Row{types.Int(v)}); err != nil {
				t.Fatal(err)
			}
		}
		// Split into two partials and merge.
		p1, p2 := NewAggState(spec), NewAggState(spec)
		for i, v := range vals {
			st := p1
			if i%2 == 1 {
				st = p2
			}
			if err := st.Update(types.Row{types.Int(v)}); err != nil {
				t.Fatal(err)
			}
		}
		merged := NewAggState(spec)
		if err := merged.MergePartial(p1.EmitPartial()); err != nil {
			t.Fatal(err)
		}
		if err := merged.MergePartial(p2.EmitPartial()); err != nil {
			t.Fatal(err)
		}
		if types.Compare(direct.Final(), merged.Final()) != 0 {
			t.Errorf("%v: direct %v != merged %v", spec.Kind, direct.Final(), merged.Final())
		}
	}
}

func TestAggDistinct(t *testing.T) {
	st := NewAggState(AggSpec{Kind: AggCount, Arg: col(0), Distinct: true})
	for _, v := range []int64{1, 2, 2, 3, 3, 3} {
		if err := st.Update(types.Row{types.Int(v)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Final().Int(); got != 3 {
		t.Errorf("count(distinct) = %d, want 3", got)
	}
	sum := NewAggState(AggSpec{Kind: AggSum, Arg: col(0), Distinct: true})
	for _, v := range []int64{5, 5, 7} {
		if err := sum.Update(types.Row{types.Int(v)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sum.Final().Int(); got != 12 {
		t.Errorf("sum(distinct) = %d, want 12", got)
	}
}

func TestAggEmptyGroup(t *testing.T) {
	if got := NewAggState(AggSpec{Kind: AggSum, Arg: col(0)}).Final(); !got.IsNull() {
		t.Errorf("sum of empty = %v, want NULL", got)
	}
	if got := NewAggState(AggSpec{Kind: AggCountStar}).Final(); got.Int() != 0 {
		t.Errorf("count(*) of empty = %v, want 0", got)
	}
	if got := NewAggState(AggSpec{Kind: AggAvg, Arg: col(0)}).Final(); !got.IsNull() {
		t.Errorf("avg of empty = %v, want NULL", got)
	}
}

func TestAggFloatPromotion(t *testing.T) {
	st := NewAggState(AggSpec{Kind: AggSum, Arg: col(0)})
	st.UpdateDatum(types.Int(1))
	st.UpdateDatum(types.Float(2.5))
	if got := st.Final().Float(); got != 3.5 {
		t.Errorf("mixed sum = %v, want 3.5", got)
	}
}

func TestAggMergeWidthValidation(t *testing.T) {
	st := NewAggState(AggSpec{Kind: AggAvg, Arg: col(0)})
	if err := st.MergePartial([]types.Datum{types.Int(1)}); err == nil {
		t.Error("avg merge with width 1 should fail")
	}
}
