package exec

import (
	"testing"

	"hivempi/internal/dfs"
	"hivempi/internal/storage"
	"hivempi/internal/types"
)

func TestReducerCountStrategies(t *testing.T) {
	mkStage := func(nKeys int, last bool, hint int) *Stage {
		keys := make([]Expr, nKeys)
		for i := range keys {
			keys[i] = &ColRef{Idx: i}
		}
		return &Stage{
			ID:        "s",
			Maps:      []MapWork{{Keys: keys}},
			Shuffle:   &ShuffleSpec{NumReducers: hint},
			LastStage: last,
		}
	}
	conf := DefaultEngineConf() // 7 slaves x 4 slots = 28
	conf.BytesPerReducer = 1 << 20

	cases := []struct {
		name  string
		stage *Stage
		conf  func(EngineConf) EngineConf
		maps  int
		bytes int64
		want  int
	}{
		{"map-only", &Stage{Maps: []MapWork{{}}}, nil, 4, 1 << 30, 0},
		{"hint respected", mkStage(1, false, 5), nil, 4, 1 << 30, 5},
		{"auto by bytes", mkStage(1, false, 0), nil, 4, 10 << 20, 10},
		{"auto min 1", mkStage(1, false, 0), nil, 4, 10, 1},
		{"auto capped at slots", mkStage(1, false, 0), nil, 4, 1 << 30, 28},
		{"enhanced = maps", mkStage(1, false, 5), func(c EngineConf) EngineConf {
			c.Parallelism = ParallelismEnhanced
			return c
		}, 17, 1 << 30, 17},
		{"enhanced last stage = 1", mkStage(1, true, 5), func(c EngineConf) EngineConf {
			c.Parallelism = ParallelismEnhanced
			return c
		}, 17, 1 << 30, 1},
		{"global agg always 1", mkStage(0, false, 0), func(c EngineConf) EngineConf {
			c.Parallelism = ParallelismEnhanced
			return c
		}, 17, 1 << 30, 1},
	}
	for _, c := range cases {
		cf := conf
		if c.conf != nil {
			cf = c.conf(conf)
		}
		if got := ReducerCount(c.stage, cf, c.maps, c.bytes); got != c.want {
			t.Errorf("%s: ReducerCount = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestSizingBytesPrefersRawEstimate(t *testing.T) {
	stage := &Stage{Maps: []MapWork{
		{RawInputBytes: 1000},
		{}, // no estimate: measured wins
	}}
	tasks := []MapTaskSpec{
		{MapIdx: 0, Split: dfs.Split{Length: 100}},
		{MapIdx: 0, Split: dfs.Split{Length: 100}},
		{MapIdx: 1, Split: dfs.Split{Length: 300}},
	}
	// Map 0: max(200 measured, 1000 raw) = 1000; map 1: 300.
	if got := SizingBytes(stage, tasks); got != 1300 {
		t.Errorf("SizingBytes = %d, want 1300", got)
	}
	// Measured above raw: measured wins.
	stage.Maps[0].RawInputBytes = 50
	if got := SizingBytes(stage, tasks); got != 500 {
		t.Errorf("SizingBytes = %d, want 500", got)
	}
}

func TestBuildTaskOutputSinkAndCollect(t *testing.T) {
	env := &Env{FS: dfs.New(dfs.Config{BlockSize: 1 << 10, Nodes: []string{"n"}})}
	schema := types.NewSchema(types.Col("v", types.KindInt))
	stage := &Stage{
		ID:      "o",
		Maps:    []MapWork{{}},
		Sink:    &FileSinkSpec{Dir: "/sinkdir", Format: storage.FormatText, Schema: schema},
		Collect: true,
	}
	var collected []types.Row
	sink, closer, err := BuildTaskOutput(env, stage, 3, func(r types.Row) error {
		collected = append(collected, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := sink(types.Row{types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}
	if len(collected) != 5 {
		t.Errorf("collected %d rows", len(collected))
	}
	rows, err := storage.ReadAll(env.FS, "/sinkdir/part-00003", storage.FormatText, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Errorf("part file holds %d rows", len(rows))
	}
}

func TestEvalKeyAndValueRoundTrip(t *testing.T) {
	row := types.Row{types.Int(7), types.String("x"), types.Float(1.5)}
	keys := []Expr{&ColRef{Idx: 0}, &ColRef{Idx: 1}}
	key, err := evalKey(keys, []bool{false, true}, row)
	if err != nil {
		t.Fatal(err)
	}
	// Decode back through the key codec.
	d0, n, err := types.DecodeKeyDatum(key, types.KindInt, false)
	if err != nil || d0.Int() != 7 {
		t.Fatalf("key col0 = %v, %v", d0, err)
	}
	d1, _, err := types.DecodeKeyDatum(key[n:], types.KindString, true)
	if err != nil || d1.Str() != "x" {
		t.Fatalf("key col1 = %v, %v", d1, err)
	}

	val, err := evalValue(3, []Expr{&ColRef{Idx: 2}}, row)
	if err != nil {
		t.Fatal(err)
	}
	tag, vrow, err := decodeValue(val)
	if err != nil || tag != 3 || vrow[0].Float() != 1.5 {
		t.Fatalf("value round trip: tag=%d row=%v err=%v", tag, vrow, err)
	}
}

func TestPlanMapTasksEmptyInputPlaceholder(t *testing.T) {
	env := &Env{FS: dfs.New(dfs.Config{BlockSize: 1 << 10, Nodes: []string{"n"}})}
	stage := &Stage{
		ID:   "empty",
		Maps: []MapWork{{Input: TableInput{Dir: "/does/not/exist"}}},
	}
	tasks, err := PlanMapTasks(env, stage, DefaultEngineConf())
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].Split.Path != "" {
		t.Errorf("placeholder task wrong: %+v", tasks)
	}
}
