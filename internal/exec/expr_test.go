package exec

import (
	"strings"
	"testing"

	"hivempi/internal/types"
)

func col(i int) Expr         { return &ColRef{Idx: i} }
func lit(d types.Datum) Expr { return &Const{D: d} }
func iLit(v int64) Expr      { return lit(types.Int(v)) }
func fLit(v float64) Expr    { return lit(types.Float(v)) }
func sLit(s string) Expr     { return lit(types.String(s)) }
func mustEval(t *testing.T, e Expr, row types.Row) types.Datum {
	t.Helper()
	d, err := e.Eval(row)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return d
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want types.Datum
	}{
		{&BinOp{OpAdd, iLit(2), iLit(3)}, types.Int(5)},
		{&BinOp{OpSub, iLit(2), iLit(3)}, types.Int(-1)},
		{&BinOp{OpMul, iLit(4), iLit(3)}, types.Int(12)},
		{&BinOp{OpDiv, iLit(7), iLit(2)}, types.Float(3.5)},
		{&BinOp{OpDiv, iLit(7), iLit(0)}, types.Null()},
		{&BinOp{OpMod, iLit(7), iLit(3)}, types.Int(1)},
		{&BinOp{OpMod, iLit(7), iLit(0)}, types.Null()},
		{&BinOp{OpAdd, fLit(1.5), iLit(2)}, types.Float(3.5)},
		{&BinOp{OpAdd, lit(types.Null()), iLit(2)}, types.Null()},
	}
	for _, c := range cases {
		got := mustEval(t, c.e, nil)
		if got.IsNull() != c.want.IsNull() || (!got.IsNull() && types.Compare(got, c.want) != 0) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
		if got.K != c.want.K {
			t.Errorf("%s kind %v, want %v", c.e, got.K, c.want.K)
		}
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		op   CmpOpKind
		l, r Expr
		want bool
	}{
		{CmpEQ, iLit(3), iLit(3), true},
		{CmpNE, iLit(3), iLit(3), false},
		{CmpLT, iLit(2), iLit(3), true},
		{CmpLE, iLit(3), iLit(3), true},
		{CmpGT, sLit("b"), sLit("a"), true},
		{CmpGE, fLit(2.5), iLit(3), false},
	}
	for _, c := range cases {
		e := &Cmp{Op: c.op, L: c.l, R: c.r}
		if got := mustEval(t, e, nil); got.Bool() != c.want {
			t.Errorf("%s = %v, want %v", e, got.Bool(), c.want)
		}
	}
	null := &Cmp{Op: CmpEQ, L: lit(types.Null()), R: iLit(1)}
	if !mustEval(t, null, nil).IsNull() {
		t.Error("NULL = 1 should be NULL")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tru, fls, nul := lit(types.Bool(true)), lit(types.Bool(false)), lit(types.Null())
	cases := []struct {
		e    Expr
		want types.Datum
	}{
		{&Logic{LogicAnd, tru, tru}, types.Bool(true)},
		{&Logic{LogicAnd, tru, fls}, types.Bool(false)},
		{&Logic{LogicAnd, fls, nul}, types.Bool(false)},
		{&Logic{LogicAnd, tru, nul}, types.Null()},
		{&Logic{LogicOr, fls, tru}, types.Bool(true)},
		{&Logic{LogicOr, nul, tru}, types.Bool(true)},
		{&Logic{LogicOr, nul, fls}, types.Null()},
		{&Logic{LogicNot, tru, nil}, types.Bool(false)},
		{&Logic{LogicNot, nul, nil}, types.Null()},
	}
	for _, c := range cases {
		got := mustEval(t, c.e, nil)
		if got.IsNull() != c.want.IsNull() || got.Bool() != c.want.Bool() {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "hel_", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"special requests", "%special%requests%", true},
		{"PROMO BRUSHED", "PROMO%", true},
		{"ECONOMY BRUSHED", "PROMO%", false},
		{"abcabc", "%abc", true},
		{"ab", "a%b%c", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestInBetweenIsNullCase(t *testing.T) {
	row := types.Row{types.Int(5), types.String("BRASS"), types.Null()}
	in := &In{E: col(1), List: []Expr{sLit("COPPER"), sLit("BRASS")}}
	if !mustEval(t, in, row).Bool() {
		t.Error("IN should match BRASS")
	}
	notIn := &In{E: col(1), List: []Expr{sLit("TIN")}, Negate: true}
	if !mustEval(t, notIn, row).Bool() {
		t.Error("NOT IN should hold")
	}
	btw := &Between{E: col(0), Lo: iLit(1), Hi: iLit(10)}
	if !mustEval(t, btw, row).Bool() {
		t.Error("BETWEEN should hold")
	}
	isn := &IsNull{E: col(2)}
	if !mustEval(t, isn, row).Bool() {
		t.Error("IS NULL should hold")
	}
	isnn := &IsNull{E: col(0), Negate: true}
	if !mustEval(t, isnn, row).Bool() {
		t.Error("IS NOT NULL should hold")
	}
	cs := &Case{
		Whens: []CaseWhen{
			{Cond: &Cmp{Op: CmpGT, L: col(0), R: iLit(3)}, Value: sLit("big")},
		},
		Else: sLit("small"),
	}
	if mustEval(t, cs, row).Str() != "big" {
		t.Error("CASE should pick first arm")
	}
	cs2 := &Case{Whens: []CaseWhen{{Cond: lit(types.Bool(false)), Value: sLit("x")}}}
	if !mustEval(t, cs2, nil).IsNull() {
		t.Error("CASE without ELSE should yield NULL")
	}
}

func TestBuiltins(t *testing.T) {
	d := types.MustDate("1995-03-17")
	cases := []struct {
		e    Expr
		want string
	}{
		{&Func{Name: "year", Args: []Expr{lit(d)}}, "1995"},
		{&Func{Name: "month", Args: []Expr{lit(d)}}, "3"},
		{&Func{Name: "day", Args: []Expr{lit(d)}}, "17"},
		{&Func{Name: "substr", Args: []Expr{sLit("hello"), iLit(2), iLit(3)}}, "ell"},
		{&Func{Name: "substr", Args: []Expr{sLit("hello"), iLit(1)}}, "hello"},
		{&Func{Name: "upper", Args: []Expr{sLit("ab")}}, "AB"},
		{&Func{Name: "lower", Args: []Expr{sLit("AB")}}, "ab"},
		{&Func{Name: "length", Args: []Expr{sLit("abcd")}}, "4"},
		{&Func{Name: "concat", Args: []Expr{sLit("a"), sLit("b"), sLit("c")}}, "abc"},
		{&Func{Name: "abs", Args: []Expr{iLit(-7)}}, "7"},
		{&Func{Name: "floor", Args: []Expr{fLit(2.7)}}, "2"},
		{&Func{Name: "ceil", Args: []Expr{fLit(2.1)}}, "3"},
		{&Func{Name: "round", Args: []Expr{fLit(2.456), iLit(2)}}, "2.46"},
		{&Func{Name: "coalesce", Args: []Expr{lit(types.Null()), iLit(9)}}, "9"},
	}
	for _, c := range cases {
		if got := mustEval(t, c.e, nil).Text(); got != c.want {
			t.Errorf("%s = %q, want %q", c.e, got, c.want)
		}
	}
	if _, err := (&Func{Name: "nosuchfn"}).Eval(nil); err == nil {
		t.Error("unknown function should fail")
	}
}

func TestCast(t *testing.T) {
	if got := mustEval(t, &Cast{E: fLit(3.9), To: types.KindInt}, nil); got.Int() != 3 {
		t.Errorf("cast(3.9 as int) = %v", got)
	}
	if got := mustEval(t, &Cast{E: iLit(3), To: types.KindString}, nil); got.Str() != "3" {
		t.Errorf("cast(3 as string) = %v", got)
	}
	if got := mustEval(t, &Cast{E: sLit("1996-01-02"), To: types.KindDate}, nil); got.DateString() != "1996-01-02" {
		t.Errorf("cast to date = %v", got)
	}
	if !mustEval(t, &Cast{E: lit(types.Null()), To: types.KindInt}, nil).IsNull() {
		t.Error("cast NULL should stay NULL")
	}
}

func TestColRefOutOfRange(t *testing.T) {
	if _, err := col(5).Eval(types.Row{types.Int(1)}); err == nil {
		t.Error("out-of-range column should fail")
	}
}

func TestExprStrings(t *testing.T) {
	e := &Logic{LogicAnd,
		&Cmp{Op: CmpGE, L: &ColRef{Idx: 0, Name: "l_quantity"}, R: iLit(1)},
		&Like{E: &ColRef{Idx: 1, Name: "p_type"}, Pattern: "PROMO%"}}
	s := e.String()
	for _, want := range []string{"l_quantity", ">=", "like", "PROMO%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
