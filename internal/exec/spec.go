package exec

import (
	"fmt"

	"hivempi/internal/dfs"
	"hivempi/internal/storage"
	"hivempi/internal/types"
)

// Physical plan model. The compiler lowers a HiveQL statement into a
// DAG of Stages; each Stage is one MapReduce/DataMPI job: map works
// (one per input alias) feeding an optional shuffle into a reduce work.
// The specs are pure data plus expression trees, so both engines
// execute the identical plan — the paper's plug-in property.

// TableInput describes one scanned input. Either Paths lists the data
// files directly or Dir names a DFS directory whose files are resolved
// at run time (intermediate stage outputs do not exist at plan time).
type TableInput struct {
	Table      string // metastore name, for diagnostics
	Paths      []string
	Dir        string
	Format     Format
	Schema     *types.Schema
	Projection []int              // columns to materialize (ORC pruning); nil = all
	Predicate  *storage.Predicate // stripe-skip predicate (ORC)
}

// Format aliases storage.Format for plan construction convenience.
type Format = storage.Format

// ResolvePaths returns the concrete data files at run time. Explicit
// Paths win: a base-table scan pins the files enumerated at plan time
// and keeps Dir only as the table's identity (observation keying);
// intermediate inputs list their producer's directory at run time.
func (in *TableInput) ResolvePaths(fs *dfs.FileSystem) []string {
	if len(in.Paths) > 0 {
		return in.Paths
	}
	if in.Dir != "" {
		return fs.List(in.Dir)
	}
	return nil
}

// MapOp is one operator in the map-side chain.
type MapOp interface {
	isMapOp()
	String() string
}

// FilterOp drops rows whose condition is not true.
type FilterOp struct {
	Cond Expr
}

func (*FilterOp) isMapOp() {}

func (f *FilterOp) String() string { return fmt.Sprintf("Filter[%s]", f.Cond) }

// SelectOp projects/computes a new row.
type SelectOp struct {
	Exprs []Expr
}

func (*SelectOp) isMapOp() {}

func (s *SelectOp) String() string { return fmt.Sprintf("Select[%d exprs]", len(s.Exprs)) }

// MapJoinOp hash-joins the stream against a small broadcast table
// (Hive's map join for dimension tables like nation/region).
type MapJoinOp struct {
	Small     TableInput
	SmallOps  []MapOp // filter/project applied while loading the small side
	ProbeKeys []Expr  // evaluated on the streaming (post-SmallOps) row
	BuildKeys []Expr  // evaluated on the small-table row
	Outer     bool    // left outer: emit probe row with nulls on miss
	// SmallWidth is the built row width (post-SmallOps); when 0 the
	// small schema's width is used.
	SmallWidth int
}

func (*MapJoinOp) isMapOp() {}

func (m *MapJoinOp) String() string { return fmt.Sprintf("MapJoin[%s]", m.Small.Table) }

// GroupByPartialOp is Hive's map-side hash aggregation: it accumulates
// partial aggregate states per group and flushes (group keys ++ partial
// state datums) rows downstream when the hash fills and at close.
type GroupByPartialOp struct {
	Keys       []Expr
	Aggs       []AggSpec
	MaxEntries int // flush threshold; DefaultHashAggEntries if 0
}

func (*GroupByPartialOp) isMapOp() {}

func (g *GroupByPartialOp) String() string {
	return fmt.Sprintf("GroupByPartial[%d keys, %d aggs]", len(g.Keys), len(g.Aggs))
}

// DefaultHashAggEntries bounds the map-side aggregation hash.
const DefaultHashAggEntries = 64 << 10

// LimitOp truncates the stream (map-side limit optimization).
type LimitOp struct {
	N int
}

func (*LimitOp) isMapOp() {}

func (l *LimitOp) String() string { return fmt.Sprintf("Limit[%d]", l.N) }

// MapWork is the map-side program for one input alias.
type MapWork struct {
	Input TableInput
	Ops   []MapOp

	// RawInputBytes is the planner's estimate of the input's
	// uncompressed logical size (from metastore statistics); engines
	// prefer it over compressed file bytes when sizing reducers.
	RawInputBytes int64

	// Shuffle emission (nil Keys means map-only: rows go to the sink).
	Tag    int // join input tag; 0 for single-input stages
	Keys   []Expr
	Values []Expr
}

// ShuffleSpec configures the stage's shuffle.
type ShuffleSpec struct {
	NumReducers int    // planner hint; engine config may override
	SortDescs   []bool // per key column; nil = all ascending
	// PartitionKeys is how many leading key columns select the reducer
	// (the rest only sort). 0 means all keys partition.
	PartitionKeys int
}

// JoinType is the join semantics between adjacent tags.
type JoinType int

// Join types.
const (
	JoinInner JoinType = iota + 1
	JoinLeftOuter
)

// ReduceOp consumes key groups.
type ReduceOp interface {
	isReduceOp()
	String() string
}

// GroupByReduce finalizes aggregation.
type GroupByReduce struct {
	Aggs []AggSpec
	// Complete mode means value rows carry raw argument values (used
	// when a DISTINCT aggregate disables map-side partials); otherwise
	// value rows carry serialized partial states.
	Complete bool
	// Output row: key datums ++ one final per agg.
}

func (*GroupByReduce) isReduceOp() {}

func (g *GroupByReduce) String() string { return fmt.Sprintf("GroupBy[%d aggs]", len(g.Aggs)) }

// JoinReduce joins the tagged value rows of each key group.
type JoinReduce struct {
	TagCount    int
	ValueWidths []int      // columns per tag
	JoinTypes   []JoinType // len TagCount-1: between accumulated result and tag i+1
	// Output row: tag0 cols ++ tag1 cols ++ ... (null-padded on outer miss).
}

func (*JoinReduce) isReduceOp() {}

func (j *JoinReduce) String() string { return fmt.Sprintf("Join[%d tags]", j.TagCount) }

// ExtractReduce passes value rows through in key order (ORDER BY).
type ExtractReduce struct {
	ValueWidth int
}

func (*ExtractReduce) isReduceOp() {}

func (e *ExtractReduce) String() string { return "Extract" }

// ReduceWork is the reduce-side program.
type ReduceWork struct {
	KeyKinds []types.Kind // for key decoding
	KeyDescs []bool       // matching the shuffle's SortDescs
	Op       ReduceOp
	Post     []MapOp // having / projection / limit after the reduce op
	Limit    int     // 0 = unlimited
}

// FileSinkSpec materializes output rows to a DFS directory.
type FileSinkSpec struct {
	Dir    string // each task writes Dir + "/part-<NNNNN>"
	Format storage.Format
	Schema *types.Schema
}

// Stage is one job of the query plan.
type Stage struct {
	ID      string
	Maps    []MapWork
	Shuffle *ShuffleSpec // nil = map-only stage
	Reduce  *ReduceWork  // nil = map-only stage
	Sink    *FileSinkSpec
	// Collect, when true, routes final rows back to the driver instead
	// of (or in addition to) the sink.
	Collect bool
	// LastStage marks the query's final job (the enhanced parallelism
	// strategy forces one reducer here, paper §IV-D).
	LastStage bool
}

// Validate sanity-checks the stage wiring.
func (s *Stage) Validate() error {
	if len(s.Maps) == 0 {
		return fmt.Errorf("exec: stage %s has no map works", s.ID)
	}
	mapOnly := s.Shuffle == nil
	if mapOnly != (s.Reduce == nil) {
		return fmt.Errorf("exec: stage %s shuffle/reduce mismatch", s.ID)
	}
	for i, mw := range s.Maps {
		if mapOnly && mw.Keys != nil {
			return fmt.Errorf("exec: stage %s map %d emits keys without shuffle", s.ID, i)
		}
		if !mapOnly && mw.Keys == nil {
			// A non-nil empty key list is a valid global aggregate
			// (every row shuffles to one group); nil means map-only.
			return fmt.Errorf("exec: stage %s map %d missing shuffle keys", s.ID, i)
		}
		if len(mw.Input.Paths) == 0 && mw.Input.Dir == "" {
			return fmt.Errorf("exec: stage %s map %d has no input paths", s.ID, i)
		}
	}
	if !mapOnly {
		if jr, ok := s.Reduce.Op.(*JoinReduce); ok {
			if jr.TagCount != len(s.Maps) {
				return fmt.Errorf("exec: stage %s join tags %d != map works %d",
					s.ID, jr.TagCount, len(s.Maps))
			}
		}
	}
	if s.Sink == nil && !s.Collect {
		return fmt.Errorf("exec: stage %s has neither sink nor collect", s.ID)
	}
	return nil
}
