// Package exec contains the engine-independent execution layer of the
// warehouse: scalar expressions, aggregate functions, the physical plan
// specs produced by the compiler, and the runtime operators that both
// execution engines (Hadoop MapReduce and DataMPI) drive. This mirrors
// the paper's design principle of keeping Hive's operator definitions
// framework-independent so only the task runner differs (§IV-A).
package exec

import (
	"fmt"
	"strings"
	"time"

	"hivempi/internal/types"
)

// Expr is a scalar expression evaluated over one input row.
type Expr interface {
	Eval(row types.Row) (types.Datum, error)
	String() string
}

// ColRef reads column Idx of the input row.
type ColRef struct {
	Idx  int
	Name string
}

var _ Expr = (*ColRef)(nil)

// Eval implements Expr.
func (c *ColRef) Eval(row types.Row) (types.Datum, error) {
	if c.Idx < 0 || c.Idx >= len(row) {
		return types.Datum{}, fmt.Errorf("exec: column %d (%s) out of range for %d-column row",
			c.Idx, c.Name, len(row))
	}
	return row[c.Idx], nil
}

func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("_col%d", c.Idx)
}

// Const is a literal.
type Const struct {
	D types.Datum
}

var _ Expr = (*Const)(nil)

// Eval implements Expr.
func (c *Const) Eval(types.Row) (types.Datum, error) { return c.D, nil }

func (c *Const) String() string { return c.D.Text() }

// BinOpKind enumerates arithmetic operators.
type BinOpKind int

// Arithmetic operators.
const (
	OpAdd BinOpKind = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (o BinOpKind) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return "?"
	}
}

// BinOp is an arithmetic expression. Integer operands stay integral
// except for division, which is always floating (Hive's double result).
type BinOp struct {
	Op   BinOpKind
	L, R Expr
}

var _ Expr = (*BinOp)(nil)

// Eval implements Expr.
func (b *BinOp) Eval(row types.Row) (types.Datum, error) {
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	return binOpDatums(b.Op, l, r)
}

// binOpDatums applies op to two evaluated operands. It is the single
// scalar implementation shared by row-mode Eval and the vectorized
// kernels' mixed-kind lanes, so both paths are bit-identical by
// construction.
func binOpDatums(op BinOpKind, l, r types.Datum) (types.Datum, error) {
	if l.IsNull() || r.IsNull() {
		return types.Null(), nil
	}
	intish := func(d types.Datum) bool {
		return d.K == types.KindInt || d.K == types.KindBool || d.K == types.KindDate
	}
	if op == OpDiv {
		if r.Float() == 0 {
			return types.Null(), nil // SQL x/0 -> NULL in Hive
		}
		return types.Float(l.Float() / r.Float()), nil
	}
	if op == OpMod {
		if r.Int() == 0 {
			return types.Null(), nil
		}
		return types.Int(l.Int() % r.Int()), nil
	}
	if intish(l) && intish(r) {
		switch op {
		case OpAdd:
			return types.Int(l.I + r.I), nil
		case OpSub:
			return types.Int(l.I - r.I), nil
		case OpMul:
			return types.Int(l.I * r.I), nil
		}
	}
	switch op {
	case OpAdd:
		return types.Float(l.Float() + r.Float()), nil
	case OpSub:
		return types.Float(l.Float() - r.Float()), nil
	case OpMul:
		return types.Float(l.Float() * r.Float()), nil
	}
	return types.Datum{}, fmt.Errorf("exec: unknown binop %v", op)
}

func (b *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// CmpOpKind enumerates comparison operators.
type CmpOpKind int

// Comparison operators.
const (
	CmpEQ CmpOpKind = iota + 1
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (o CmpOpKind) String() string {
	switch o {
	case CmpEQ:
		return "="
	case CmpNE:
		return "<>"
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	default:
		return "?"
	}
}

// Cmp compares two expressions with SQL NULL semantics (NULL operand
// yields NULL, which filters treat as false).
type Cmp struct {
	Op   CmpOpKind
	L, R Expr
}

var _ Expr = (*Cmp)(nil)

// Eval implements Expr.
func (c *Cmp) Eval(row types.Row) (types.Datum, error) {
	l, err := c.L.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	r, err := c.R.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	return cmpDatums(c.Op, l, r)
}

// cmpDatums compares two evaluated operands with SQL NULL semantics —
// the shared scalar core of Cmp.Eval and the vectorized comparison
// kernels' mixed-kind lanes.
func cmpDatums(op CmpOpKind, l, r types.Datum) (types.Datum, error) {
	if l.IsNull() || r.IsNull() {
		return types.Null(), nil
	}
	v := types.Compare(l, r)
	out, err := cmpVerdict(op, v)
	if err != nil {
		return types.Datum{}, err
	}
	return types.Bool(out), nil
}

// cmpVerdict maps a three-way comparison result through op.
func cmpVerdict(op CmpOpKind, v int) (bool, error) {
	switch op {
	case CmpEQ:
		return v == 0, nil
	case CmpNE:
		return v != 0, nil
	case CmpLT:
		return v < 0, nil
	case CmpLE:
		return v <= 0, nil
	case CmpGT:
		return v > 0, nil
	case CmpGE:
		return v >= 0, nil
	default:
		return false, fmt.Errorf("exec: unknown cmp %v", op)
	}
}

func (c *Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }

// LogicKind enumerates boolean connectives.
type LogicKind int

// Boolean connectives.
const (
	LogicAnd LogicKind = iota + 1
	LogicOr
	LogicNot
)

// Logic is AND/OR/NOT with three-valued SQL semantics.
type Logic struct {
	Op   LogicKind
	L, R Expr // R nil for NOT
}

var _ Expr = (*Logic)(nil)

// Eval implements Expr.
func (l *Logic) Eval(row types.Row) (types.Datum, error) {
	a, err := l.L.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	if l.Op == LogicNot {
		if a.IsNull() {
			return types.Null(), nil
		}
		return types.Bool(!a.Bool()), nil
	}
	b, err := l.R.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	switch l.Op {
	case LogicAnd:
		if (!a.IsNull() && !a.Bool()) || (!b.IsNull() && !b.Bool()) {
			return types.Bool(false), nil
		}
		if a.IsNull() || b.IsNull() {
			return types.Null(), nil
		}
		return types.Bool(true), nil
	case LogicOr:
		if (!a.IsNull() && a.Bool()) || (!b.IsNull() && b.Bool()) {
			return types.Bool(true), nil
		}
		if a.IsNull() || b.IsNull() {
			return types.Null(), nil
		}
		return types.Bool(false), nil
	default:
		return types.Datum{}, fmt.Errorf("exec: unknown logic %v", l.Op)
	}
}

func (l *Logic) String() string {
	if l.Op == LogicNot {
		return fmt.Sprintf("(not %s)", l.L)
	}
	op := "and"
	if l.Op == LogicOr {
		op = "or"
	}
	return fmt.Sprintf("(%s %s %s)", l.L, op, l.R)
}

// IsNull tests for SQL NULL (or NOT NULL when Negate).
type IsNull struct {
	E      Expr
	Negate bool
}

var _ Expr = (*IsNull)(nil)

// Eval implements Expr.
func (i *IsNull) Eval(row types.Row) (types.Datum, error) {
	d, err := i.E.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	return types.Bool(d.IsNull() != i.Negate), nil
}

func (i *IsNull) String() string {
	if i.Negate {
		return fmt.Sprintf("(%s is not null)", i.E)
	}
	return fmt.Sprintf("(%s is null)", i.E)
}

// In tests membership in a literal list.
type In struct {
	E      Expr
	List   []Expr
	Negate bool
}

var _ Expr = (*In)(nil)

// Eval implements Expr.
func (in *In) Eval(row types.Row) (types.Datum, error) {
	d, err := in.E.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	if d.IsNull() {
		return types.Null(), nil
	}
	for _, le := range in.List {
		v, err := le.Eval(row)
		if err != nil {
			return types.Datum{}, err
		}
		if types.Equal(d, v) {
			return types.Bool(!in.Negate), nil
		}
	}
	return types.Bool(in.Negate), nil
}

func (in *In) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	op := "in"
	if in.Negate {
		op = "not in"
	}
	return fmt.Sprintf("(%s %s (%s))", in.E, op, strings.Join(parts, ", "))
}

// Between is lo <= e <= hi.
type Between struct {
	E, Lo, Hi Expr
	Negate    bool
}

var _ Expr = (*Between)(nil)

// Eval implements Expr.
func (b *Between) Eval(row types.Row) (types.Datum, error) {
	d, err := b.E.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	lo, err := b.Lo.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	hi, err := b.Hi.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	if d.IsNull() || lo.IsNull() || hi.IsNull() {
		return types.Null(), nil
	}
	in := types.Compare(d, lo) >= 0 && types.Compare(d, hi) <= 0
	return types.Bool(in != b.Negate), nil
}

func (b *Between) String() string {
	return fmt.Sprintf("(%s between %s and %s)", b.E, b.Lo, b.Hi)
}

// Like matches SQL LIKE patterns (% and _ wildcards).
type Like struct {
	E       Expr
	Pattern string
	Negate  bool
}

var _ Expr = (*Like)(nil)

// Eval implements Expr.
func (l *Like) Eval(row types.Row) (types.Datum, error) {
	d, err := l.E.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	if d.IsNull() {
		return types.Null(), nil
	}
	return types.Bool(likeMatch(d.Str(), l.Pattern) != l.Negate), nil
}

func (l *Like) String() string {
	op := "like"
	if l.Negate {
		op = "not like"
	}
	return fmt.Sprintf("(%s %s '%s')", l.E, op, l.Pattern)
}

// likeMatch implements LIKE with memoized recursion over positions.
func likeMatch(s, pat string) bool {
	// Iterative two-pointer algorithm with backtracking on '%'.
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			ss++
			si = ss
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// Case is a searched CASE expression.
type Case struct {
	Whens []CaseWhen
	Else  Expr // nil means NULL
}

// CaseWhen is one WHEN cond THEN value arm.
type CaseWhen struct {
	Cond  Expr
	Value Expr
}

var _ Expr = (*Case)(nil)

// Eval implements Expr.
func (c *Case) Eval(row types.Row) (types.Datum, error) {
	for _, w := range c.Whens {
		cond, err := w.Cond.Eval(row)
		if err != nil {
			return types.Datum{}, err
		}
		if !cond.IsNull() && cond.Bool() {
			return w.Value.Eval(row)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(row)
	}
	return types.Null(), nil
}

func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("case")
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " when %s then %s", w.Cond, w.Value)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " else %s", c.Else)
	}
	sb.WriteString(" end")
	return sb.String()
}

// Func is a scalar builtin call.
type Func struct {
	Name string
	Args []Expr
}

var _ Expr = (*Func)(nil)

// Eval implements Expr.
func (f *Func) Eval(row types.Row) (types.Datum, error) {
	args := make([]types.Datum, len(f.Args))
	for i, a := range f.Args {
		d, err := a.Eval(row)
		if err != nil {
			return types.Datum{}, err
		}
		args[i] = d
	}
	return evalBuiltin(f.Name, args)
}

func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}

// BuiltinNames lists the supported scalar functions.
func BuiltinNames() []string {
	return []string{"year", "month", "day", "substr", "substring", "upper",
		"lower", "length", "concat", "abs", "round", "floor", "ceil",
		"to_date", "date_add", "if", "coalesce"}
}

func evalBuiltin(name string, args []types.Datum) (types.Datum, error) {
	anyNull := false
	for _, a := range args {
		if a.IsNull() {
			anyNull = true
		}
	}
	switch name {
	case "year", "month", "day":
		if anyNull {
			return types.Null(), nil
		}
		t := time.Unix(args[0].I*86400, 0).UTC()
		switch name {
		case "year":
			return types.Int(int64(t.Year())), nil
		case "month":
			return types.Int(int64(t.Month())), nil
		default:
			return types.Int(int64(t.Day())), nil
		}
	case "substr", "substring":
		if anyNull {
			return types.Null(), nil
		}
		s := args[0].Str()
		start := int(args[1].Int())
		if start > 0 {
			start--
		} else if start < 0 {
			start = len(s) + start
		}
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return types.String(""), nil
		}
		end := len(s)
		if len(args) == 3 {
			l := int(args[2].Int())
			if l < 0 {
				l = 0
			}
			if start+l < end {
				end = start + l
			}
		}
		return types.String(s[start:end]), nil
	case "upper":
		if anyNull {
			return types.Null(), nil
		}
		return types.String(strings.ToUpper(args[0].Str())), nil
	case "lower":
		if anyNull {
			return types.Null(), nil
		}
		return types.String(strings.ToLower(args[0].Str())), nil
	case "length":
		if anyNull {
			return types.Null(), nil
		}
		return types.Int(int64(len(args[0].Str()))), nil
	case "concat":
		if anyNull {
			return types.Null(), nil
		}
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(a.Str())
		}
		return types.String(sb.String()), nil
	case "abs":
		if anyNull {
			return types.Null(), nil
		}
		if args[0].K == types.KindFloat {
			v := args[0].F
			if v < 0 {
				v = -v
			}
			return types.Float(v), nil
		}
		v := args[0].Int()
		if v < 0 {
			v = -v
		}
		return types.Int(v), nil
	case "round":
		if anyNull {
			return types.Null(), nil
		}
		scale := 0
		if len(args) == 2 {
			scale = int(args[1].Int())
		}
		mult := 1.0
		for i := 0; i < scale; i++ {
			mult *= 10
		}
		v := args[0].Float() * mult
		if v >= 0 {
			v = float64(int64(v + 0.5))
		} else {
			v = float64(int64(v - 0.5))
		}
		return types.Float(v / mult), nil
	case "floor":
		if anyNull {
			return types.Null(), nil
		}
		v := args[0].Float()
		i := int64(v)
		if v < 0 && float64(i) != v {
			i--
		}
		return types.Int(i), nil
	case "ceil":
		if anyNull {
			return types.Null(), nil
		}
		v := args[0].Float()
		i := int64(v)
		if v > 0 && float64(i) != v {
			i++
		}
		return types.Int(i), nil
	case "to_date":
		if anyNull {
			return types.Null(), nil
		}
		if args[0].K == types.KindDate {
			return args[0], nil
		}
		return types.DateFromString(args[0].Str())
	case "date_add":
		if anyNull {
			return types.Null(), nil
		}
		return types.Date(args[0].I + args[1].Int()), nil
	case "if":
		if len(args) != 3 {
			return types.Datum{}, fmt.Errorf("exec: if() wants 3 arguments")
		}
		if !args[0].IsNull() && args[0].Bool() {
			return args[1], nil
		}
		return args[2], nil
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return types.Null(), nil
	default:
		return types.Datum{}, fmt.Errorf("exec: unknown function %q", name)
	}
}

// Cast coerces a value to a target kind.
type Cast struct {
	E  Expr
	To types.Kind
}

var _ Expr = (*Cast)(nil)

// Eval implements Expr.
func (c *Cast) Eval(row types.Row) (types.Datum, error) {
	d, err := c.E.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	return castDatum(c.To, d)
}

// castDatum coerces one evaluated value — the shared scalar core of
// Cast.Eval and the vectorized cast kernel's non-numeric lanes.
func castDatum(to types.Kind, d types.Datum) (types.Datum, error) {
	if d.IsNull() {
		return types.Null(), nil
	}
	switch to {
	case types.KindInt:
		return types.Int(d.Int()), nil
	case types.KindFloat:
		return types.Float(d.Float()), nil
	case types.KindString:
		return types.String(d.Text()), nil
	case types.KindDate:
		if d.K == types.KindString {
			return types.DateFromString(d.S)
		}
		return types.Date(d.Int()), nil
	case types.KindBool:
		return types.Bool(d.Bool()), nil
	default:
		return types.Datum{}, fmt.Errorf("exec: cannot cast to %v", to)
	}
}

func (c *Cast) String() string { return fmt.Sprintf("cast(%s as %s)", c.E, c.To) }
