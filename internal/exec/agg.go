package exec

import (
	"fmt"

	"hivempi/internal/types"
)

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregate functions.
const (
	AggSum AggKind = iota + 1
	AggCount
	AggCountStar
	AggAvg
	AggMin
	AggMax
)

// String returns the HiveQL spelling.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "sum"
	case AggCount, AggCountStar:
		return "count"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", int(k))
	}
}

// AggSpec describes one aggregate call in a GROUP BY.
type AggSpec struct {
	Kind     AggKind
	Arg      Expr // nil for COUNT(*)
	Distinct bool
}

// PartialWidth is the number of datums the partial state serializes to.
func (s AggSpec) PartialWidth() int {
	if s.Distinct {
		return 1 // the raw argument value; dedup happens at the reducer
	}
	if s.Kind == AggAvg {
		return 2 // (sum, count)
	}
	return 1
}

// AggState accumulates one aggregate for one group.
type AggState struct {
	spec  AggSpec
	sum   types.Datum
	count int64
	minv  types.Datum
	maxv  types.Datum
	set   map[string]struct{} // distinct values, keyed by encoded datum
}

// NewAggState returns an empty accumulator for the spec.
func NewAggState(spec AggSpec) *AggState {
	st := &AggState{spec: spec}
	if spec.Distinct {
		st.set = make(map[string]struct{})
	}
	return st
}

func addNumeric(acc, d types.Datum) types.Datum {
	if acc.IsNull() {
		if d.K == types.KindFloat {
			return types.Float(d.F)
		}
		return types.Int(d.Int())
	}
	if acc.K == types.KindInt && d.K != types.KindFloat {
		return types.Int(acc.I + d.Int())
	}
	return types.Float(acc.Float() + d.Float())
}

// Update folds one raw input row into the state.
func (st *AggState) Update(row types.Row) error {
	if st.spec.Kind == AggCountStar {
		st.count++
		return nil
	}
	d, err := st.spec.Arg.Eval(row)
	if err != nil {
		return err
	}
	st.UpdateDatum(d)
	return nil
}

// UpdateDatum folds one already-evaluated argument value.
func (st *AggState) UpdateDatum(d types.Datum) {
	if st.spec.Kind == AggCountStar {
		st.count++
		return
	}
	if d.IsNull() {
		return // SQL aggregates ignore NULL inputs
	}
	if st.spec.Distinct {
		key := string(types.AppendDatum(nil, d))
		if _, ok := st.set[key]; ok {
			return
		}
		st.set[key] = struct{}{}
	}
	switch st.spec.Kind {
	case AggSum:
		st.sum = addNumeric(st.sum, d)
	case AggCount:
		st.count++
	case AggAvg:
		st.sum = addNumeric(st.sum, d)
		st.count++
	case AggMin:
		if st.minv.IsNull() || types.Compare(d, st.minv) < 0 {
			st.minv = d
		}
	case AggMax:
		if st.maxv.IsNull() || types.Compare(d, st.maxv) > 0 {
			st.maxv = d
		}
	}
}

// EmitPartial serializes the state for the shuffle (map-side partial
// aggregation). Distinct aggregates are not partialized: the planner
// ships raw values instead and the reducer runs in complete mode.
func (st *AggState) EmitPartial() []types.Datum {
	switch st.spec.Kind {
	case AggSum:
		return []types.Datum{st.sum}
	case AggCount, AggCountStar:
		return []types.Datum{types.Int(st.count)}
	case AggAvg:
		return []types.Datum{st.sum, types.Int(st.count)}
	case AggMin:
		return []types.Datum{st.minv}
	case AggMax:
		return []types.Datum{st.maxv}
	default:
		return []types.Datum{types.Null()}
	}
}

// MergePartial folds a serialized partial state (width PartialWidth).
func (st *AggState) MergePartial(part []types.Datum) error {
	if len(part) != st.spec.PartialWidth() {
		return fmt.Errorf("exec: partial width %d, want %d", len(part), st.spec.PartialWidth())
	}
	switch st.spec.Kind {
	case AggSum:
		if !part[0].IsNull() {
			st.sum = addNumeric(st.sum, part[0])
		}
	case AggCount, AggCountStar:
		st.count += part[0].Int()
	case AggAvg:
		if !part[0].IsNull() {
			st.sum = addNumeric(st.sum, part[0])
		}
		st.count += part[1].Int()
	case AggMin:
		if !part[0].IsNull() && (st.minv.IsNull() || types.Compare(part[0], st.minv) < 0) {
			st.minv = part[0]
		}
	case AggMax:
		if !part[0].IsNull() && (st.maxv.IsNull() || types.Compare(part[0], st.maxv) > 0) {
			st.maxv = part[0]
		}
	default:
		return fmt.Errorf("exec: merge of %v", st.spec.Kind)
	}
	return nil
}

// Final produces the aggregate's result value.
func (st *AggState) Final() types.Datum {
	switch st.spec.Kind {
	case AggSum:
		return st.sum
	case AggCount, AggCountStar:
		return types.Int(st.count)
	case AggAvg:
		if st.count == 0 {
			return types.Null()
		}
		return types.Float(st.sum.Float() / float64(st.count))
	case AggMin:
		return st.minv
	case AggMax:
		return st.maxv
	default:
		return types.Null()
	}
}
