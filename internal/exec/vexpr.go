package exec

// Vectorized expression kernels. compileKernel walks an Expr tree once
// per task and produces a closure tree evaluating whole column batches,
// replacing per-row Eval interface dispatch with typed per-kind loops.
// Every node has a universal fallback (materialize the row, call Eval),
// so compilation never fails and any node the fast paths don't cover is
// still bit-identical to row mode. Mixed-kind lanes inside fast-path
// nodes route through the same scalar helpers Eval uses (binOpDatums,
// cmpDatums, castDatum), keeping the two modes identical by
// construction rather than by parallel implementations.

import (
	"fmt"

	"hivempi/internal/types"
	"hivempi/internal/vec"
)

// vkernel evaluates one expression over a batch, filling out with one
// value per batch row. The out vector is owned by the caller and Reset
// by the kernel each call.
type vkernel func(b *vec.Batch, out *vec.Vector) error

// isI64Kind reports kinds stored in the I64 payload — the same set
// BinOp treats as "intish".
func isI64Kind(k types.Kind) bool {
	return k == types.KindInt || k == types.KindBool || k == types.KindDate
}

func isNumKind(k types.Kind) bool { return isI64Kind(k) || k == types.KindFloat }

// f64At reads a numeric lane with Datum.Float semantics.
func f64At(v *vec.Vector, i int) float64 {
	if v.Kind == types.KindFloat {
		return v.F64[i]
	}
	return float64(v.I64[i])
}

// i64At reads a numeric lane with Datum.Int semantics (floats truncate).
func i64At(v *vec.Vector, i int) int64 {
	if v.Kind == types.KindFloat {
		return int64(v.F64[i])
	}
	return v.I64[i]
}

// b01 stores a bool lane.
func b01(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// laneBool applies Datum.Bool to a non-null lane: true only for a bool
// kind holding a non-zero value.
func laneBool(v *vec.Vector, i int) bool {
	if v.Null(i) {
		return false
	}
	if v.Kind == types.KindBool {
		return v.I64[i] != 0
	}
	return v.Datum(i).Bool()
}

// compileKernel compiles e into a batch kernel. It always succeeds:
// nodes without a vectorized form fall back to per-row Eval over a
// materialized scratch row.
func compileKernel(e Expr) vkernel {
	switch n := e.(type) {
	case *ColRef:
		return compileColRef(n)
	case *Const:
		return compileConst(n)
	case *BinOp:
		return compileBinOp(n)
	case *Cmp:
		return compileCmp(n)
	case *Logic:
		return compileLogic(n)
	case *IsNull:
		return compileIsNull(n)
	case *In:
		return compileIn(n)
	case *Between:
		return compileBetween(n)
	case *Like:
		return compileLike(n)
	case *Case:
		return compileCase(n)
	case *Func:
		return compileFunc(n)
	case *Cast:
		return compileCast(n)
	default:
		return rowFallbackKernel(e)
	}
}

// rowFallbackKernel is the universal kernel: materialize each batch row
// into a scratch types.Row and delegate to the node's own Eval. Slow,
// but guarantees coverage and bit-identity for anything not fast-pathed.
func rowFallbackKernel(e Expr) vkernel {
	var scratch types.Row
	return func(b *vec.Batch, out *vec.Vector) error {
		out.Reset(vec.KindAny, b.N)
		for i := 0; i < b.N; i++ {
			scratch = b.Row(i, scratch)
			d, err := e.Eval(scratch)
			if err != nil {
				return err
			}
			out.SetDatum(i, d)
		}
		return nil
	}
}

func compileColRef(n *ColRef) vkernel {
	idx, name := n.Idx, n.Name
	return func(b *vec.Batch, out *vec.Vector) error {
		if idx < 0 || idx >= len(b.Cols) {
			return fmt.Errorf("exec: column %d (%s) out of range for %d-column row",
				idx, name, len(b.Cols))
		}
		out.CopyFrom(b.Cols[idx], b.N)
		return nil
	}
}

func compileConst(n *Const) vkernel {
	d := n.D
	return func(b *vec.Batch, out *vec.Vector) error {
		if d.IsNull() {
			out.Reset(types.KindNull, b.N)
			return nil
		}
		out.Reset(d.K, b.N)
		switch d.K {
		case types.KindInt, types.KindBool, types.KindDate:
			for i := 0; i < b.N; i++ {
				out.I64[i] = d.I
			}
		case types.KindFloat:
			for i := 0; i < b.N; i++ {
				out.F64[i] = d.F
			}
		case types.KindString:
			for i := 0; i < b.N; i++ {
				out.Str[i] = d.S
			}
		}
		return nil
	}
}

func compileBinOp(n *BinOp) vkernel {
	lk, rk := compileKernel(n.L), compileKernel(n.R)
	op := n.Op
	var lv, rv vec.Vector
	knownOp := op == OpAdd || op == OpSub || op == OpMul || op == OpDiv || op == OpMod
	return func(b *vec.Batch, out *vec.Vector) error {
		if err := lk(b, &lv); err != nil {
			return err
		}
		if err := rk(b, &rv); err != nil {
			return err
		}
		rows := b.N
		if knownOp && isNumKind(lv.Kind) && isNumKind(rv.Kind) {
			switch {
			case op == OpDiv:
				out.Reset(types.KindFloat, rows)
				out.CopyNullsFrom(&lv, rows)
				out.OrNullsFrom(&rv, rows)
				for i := 0; i < rows; i++ {
					den := f64At(&rv, i)
					if den == 0 {
						out.SetNull(i)
						continue
					}
					out.F64[i] = f64At(&lv, i) / den
				}
			case op == OpMod:
				out.Reset(types.KindInt, rows)
				out.CopyNullsFrom(&lv, rows)
				out.OrNullsFrom(&rv, rows)
				for i := 0; i < rows; i++ {
					den := i64At(&rv, i)
					if den == 0 {
						out.SetNull(i)
						continue
					}
					out.I64[i] = i64At(&lv, i) % den
				}
			case isI64Kind(lv.Kind) && isI64Kind(rv.Kind):
				out.Reset(types.KindInt, rows)
				out.CopyNullsFrom(&lv, rows)
				out.OrNullsFrom(&rv, rows)
				switch op {
				case OpAdd:
					for i := 0; i < rows; i++ {
						out.I64[i] = lv.I64[i] + rv.I64[i]
					}
				case OpSub:
					for i := 0; i < rows; i++ {
						out.I64[i] = lv.I64[i] - rv.I64[i]
					}
				case OpMul:
					for i := 0; i < rows; i++ {
						out.I64[i] = lv.I64[i] * rv.I64[i]
					}
				}
			default:
				out.Reset(types.KindFloat, rows)
				out.CopyNullsFrom(&lv, rows)
				out.OrNullsFrom(&rv, rows)
				switch op {
				case OpAdd:
					for i := 0; i < rows; i++ {
						out.F64[i] = f64At(&lv, i) + f64At(&rv, i)
					}
				case OpSub:
					for i := 0; i < rows; i++ {
						out.F64[i] = f64At(&lv, i) - f64At(&rv, i)
					}
				case OpMul:
					for i := 0; i < rows; i++ {
						out.F64[i] = f64At(&lv, i) * f64At(&rv, i)
					}
				}
			}
			return nil
		}
		out.Reset(vec.KindAny, rows)
		for i := 0; i < rows; i++ {
			d, err := binOpDatums(op, lv.Datum(i), rv.Datum(i))
			if err != nil {
				return err
			}
			out.SetDatum(i, d)
		}
		return nil
	}
}

func compileCmp(n *Cmp) vkernel {
	lk, rk := compileKernel(n.L), compileKernel(n.R)
	op := n.Op
	knownOp := op >= CmpEQ && op <= CmpGE
	var lv, rv vec.Vector
	return func(b *vec.Batch, out *vec.Vector) error {
		if err := lk(b, &lv); err != nil {
			return err
		}
		if err := rk(b, &rv); err != nil {
			return err
		}
		rows := b.N
		out.Reset(types.KindBool, rows)
		switch {
		case knownOp && isI64Kind(lv.Kind) && isI64Kind(rv.Kind):
			out.CopyNullsFrom(&lv, rows)
			out.OrNullsFrom(&rv, rows)
			for i := 0; i < rows; i++ {
				c := 0
				switch {
				case lv.I64[i] < rv.I64[i]:
					c = -1
				case lv.I64[i] > rv.I64[i]:
					c = 1
				}
				ok, _ := cmpVerdict(op, c)
				out.I64[i] = b01(ok)
			}
		case knownOp && isNumKind(lv.Kind) && isNumKind(rv.Kind):
			out.CopyNullsFrom(&lv, rows)
			out.OrNullsFrom(&rv, rows)
			for i := 0; i < rows; i++ {
				lf, rf := f64At(&lv, i), f64At(&rv, i)
				c := 0
				switch {
				case lf < rf:
					c = -1
				case lf > rf:
					c = 1
				}
				ok, _ := cmpVerdict(op, c)
				out.I64[i] = b01(ok)
			}
		case knownOp && lv.Kind == types.KindString && rv.Kind == types.KindString:
			out.CopyNullsFrom(&lv, rows)
			out.OrNullsFrom(&rv, rows)
			for i := 0; i < rows; i++ {
				c := 0
				switch {
				case lv.Str[i] < rv.Str[i]:
					c = -1
				case lv.Str[i] > rv.Str[i]:
					c = 1
				}
				ok, _ := cmpVerdict(op, c)
				out.I64[i] = b01(ok)
			}
		default:
			for i := 0; i < rows; i++ {
				d, err := cmpDatums(op, lv.Datum(i), rv.Datum(i))
				if err != nil {
					return err
				}
				out.SetDatum(i, d)
			}
		}
		return nil
	}
}

func compileLogic(n *Logic) vkernel {
	if n.Op == LogicNot {
		ck := compileKernel(n.L)
		var cv vec.Vector
		return func(b *vec.Batch, out *vec.Vector) error {
			if err := ck(b, &cv); err != nil {
				return err
			}
			rows := b.N
			out.Reset(types.KindBool, rows)
			out.CopyNullsFrom(&cv, rows)
			if cv.Kind == types.KindBool {
				for i := 0; i < rows; i++ {
					out.I64[i] = 1 - b01(cv.I64[i] != 0)
				}
			} else {
				for i := 0; i < rows; i++ {
					if !cv.Null(i) {
						out.I64[i] = 1 - b01(cv.Datum(i).Bool())
					}
				}
			}
			return nil
		}
	}
	if n.Op != LogicAnd && n.Op != LogicOr {
		return rowFallbackKernel(n)
	}
	lk, rk := compileKernel(n.L), compileKernel(n.R)
	isAnd := n.Op == LogicAnd
	var lv, rv vec.Vector
	return func(b *vec.Batch, out *vec.Vector) error {
		// Row mode evaluates both operands before combining (no error
		// short-circuit), so whole-batch evaluation matches exactly.
		if err := lk(b, &lv); err != nil {
			return err
		}
		if err := rk(b, &rv); err != nil {
			return err
		}
		rows := b.N
		out.Reset(types.KindBool, rows)
		for i := 0; i < rows; i++ {
			aN, bN := lv.Null(i), rv.Null(i)
			var aV, bV bool
			if !aN {
				aV = laneBool(&lv, i)
			}
			if !bN {
				bV = laneBool(&rv, i)
			}
			if isAnd {
				switch {
				case (!aN && !aV) || (!bN && !bV):
					out.I64[i] = 0
				case aN || bN:
					out.SetNull(i)
				default:
					out.I64[i] = 1
				}
			} else {
				switch {
				case (!aN && aV) || (!bN && bV):
					out.I64[i] = 1
				case aN || bN:
					out.SetNull(i)
				default:
					out.I64[i] = 0
				}
			}
		}
		return nil
	}
}

func compileIsNull(n *IsNull) vkernel {
	ck := compileKernel(n.E)
	negate := n.Negate
	var cv vec.Vector
	return func(b *vec.Batch, out *vec.Vector) error {
		if err := ck(b, &cv); err != nil {
			return err
		}
		rows := b.N
		out.Reset(types.KindBool, rows)
		for i := 0; i < rows; i++ {
			out.I64[i] = b01(cv.Null(i) != negate)
		}
		return nil
	}
}

func compileIn(n *In) vkernel {
	// Fast path only when every list element is a literal (the common
	// shape); arbitrary list expressions keep row mode's lazy per-row
	// evaluation order via the fallback.
	consts := make([]types.Datum, 0, len(n.List))
	for _, le := range n.List {
		c, ok := le.(*Const)
		if !ok {
			return rowFallbackKernel(n)
		}
		consts = append(consts, c.D)
	}
	ek := compileKernel(n.E)
	negate := n.Negate
	var ev vec.Vector
	return func(b *vec.Batch, out *vec.Vector) error {
		if err := ek(b, &ev); err != nil {
			return err
		}
		rows := b.N
		out.Reset(types.KindBool, rows)
		for i := 0; i < rows; i++ {
			if ev.Null(i) {
				out.SetNull(i)
				continue
			}
			d := ev.Datum(i)
			hit := false
			for _, c := range consts {
				if types.Equal(d, c) {
					hit = true
					break
				}
			}
			out.I64[i] = b01(hit != negate)
		}
		return nil
	}
}

func compileBetween(n *Between) vkernel {
	ek, lok, hik := compileKernel(n.E), compileKernel(n.Lo), compileKernel(n.Hi)
	negate := n.Negate
	var ev, lov, hiv vec.Vector
	return func(b *vec.Batch, out *vec.Vector) error {
		// Row mode evaluates all three operands before the null check.
		if err := ek(b, &ev); err != nil {
			return err
		}
		if err := lok(b, &lov); err != nil {
			return err
		}
		if err := hik(b, &hiv); err != nil {
			return err
		}
		rows := b.N
		out.Reset(types.KindBool, rows)
		out.CopyNullsFrom(&ev, rows)
		out.OrNullsFrom(&lov, rows)
		out.OrNullsFrom(&hiv, rows)
		switch {
		case isI64Kind(ev.Kind) && isI64Kind(lov.Kind) && isI64Kind(hiv.Kind):
			for i := 0; i < rows; i++ {
				in := ev.I64[i] >= lov.I64[i] && ev.I64[i] <= hiv.I64[i]
				out.I64[i] = b01(in != negate)
			}
		case isNumKind(ev.Kind) && isNumKind(lov.Kind) && isNumKind(hiv.Kind):
			for i := 0; i < rows; i++ {
				d := f64At(&ev, i)
				in := d >= f64At(&lov, i) && d <= f64At(&hiv, i)
				out.I64[i] = b01(in != negate)
			}
		case ev.Kind == types.KindString && lov.Kind == types.KindString && hiv.Kind == types.KindString:
			for i := 0; i < rows; i++ {
				in := ev.Str[i] >= lov.Str[i] && ev.Str[i] <= hiv.Str[i]
				out.I64[i] = b01(in != negate)
			}
		default:
			for i := 0; i < rows; i++ {
				if out.Null(i) {
					continue
				}
				d := ev.Datum(i)
				in := types.Compare(d, lov.Datum(i)) >= 0 && types.Compare(d, hiv.Datum(i)) <= 0
				out.I64[i] = b01(in != negate)
			}
		}
		return nil
	}
}

func compileLike(n *Like) vkernel {
	ek := compileKernel(n.E)
	pat, negate := n.Pattern, n.Negate
	var ev vec.Vector
	return func(b *vec.Batch, out *vec.Vector) error {
		if err := ek(b, &ev); err != nil {
			return err
		}
		rows := b.N
		out.Reset(types.KindBool, rows)
		out.CopyNullsFrom(&ev, rows)
		if ev.Kind == types.KindString {
			for i := 0; i < rows; i++ {
				out.I64[i] = b01(likeMatch(ev.Str[i], pat) != negate)
			}
			return nil
		}
		for i := 0; i < rows; i++ {
			if !ev.Null(i) {
				out.I64[i] = b01(likeMatch(ev.Datum(i).Str(), pat) != negate)
			}
		}
		return nil
	}
}

// compileCase evaluates each arm's condition only over the rows still
// unmatched (gathered into a sub-batch) and each arm's value only over
// the rows that matched it, preserving row mode's lazy-arm error
// semantics; results scatter back into the output by original row
// index.
func compileCase(n *Case) vkernel {
	condKs := make([]vkernel, len(n.Whens))
	valKs := make([]vkernel, len(n.Whens))
	for i, w := range n.Whens {
		condKs[i] = compileKernel(w.Cond)
		valKs[i] = compileKernel(w.Value)
	}
	var elseK vkernel
	if n.Else != nil {
		elseK = compileKernel(n.Else)
	}
	var condV, valV vec.Vector
	return func(b *vec.Batch, out *vec.Vector) error {
		rows := b.N
		out.Reset(vec.KindAny, rows)
		remaining := make([]int, rows)
		for i := range remaining {
			remaining[i] = i
		}
		runArm := func(sel []int, k vkernel, into *vec.Vector) error {
			sub := gatherBatch(b, sel)
			err := k(sub, into)
			vec.Put(sub)
			return err
		}
		for arm := range condKs {
			if len(remaining) == 0 {
				break
			}
			if err := runArm(remaining, condKs[arm], &condV); err != nil {
				return err
			}
			matched := remaining[:0:0]
			rest := remaining[:0]
			for j, rowIdx := range remaining {
				if laneBool(&condV, j) {
					matched = append(matched, rowIdx)
				} else {
					rest = append(rest, rowIdx)
				}
			}
			if len(matched) > 0 {
				if err := runArm(matched, valKs[arm], &valV); err != nil {
					return err
				}
				for j, rowIdx := range matched {
					out.SetDatum(rowIdx, valV.Datum(j))
				}
			}
			remaining = rest
		}
		if len(remaining) > 0 {
			if elseK == nil {
				for _, rowIdx := range remaining {
					out.SetNull(rowIdx)
				}
			} else {
				if err := runArm(remaining, elseK, &valV); err != nil {
					return err
				}
				for j, rowIdx := range remaining {
					out.SetDatum(rowIdx, valV.Datum(j))
				}
			}
		}
		return nil
	}
}

// gatherBatch builds a pooled datum-mode sub-batch holding the selected
// rows of b. Callers vec.Put it when done.
func gatherBatch(b *vec.Batch, sel []int) *vec.Batch {
	sub := vec.Get(len(b.Cols))
	for c, v := range b.Cols {
		sc := sub.Cols[c]
		sc.Reset(vec.KindAny, len(sel))
		for j, rowIdx := range sel {
			sc.SetDatum(j, v.Datum(rowIdx))
		}
	}
	sub.N = len(sel)
	return sub
}

func compileFunc(n *Func) vkernel {
	argKs := make([]vkernel, len(n.Args))
	for i, a := range n.Args {
		argKs[i] = compileKernel(a)
	}
	name := n.Name
	argVs := make([]vec.Vector, len(n.Args))
	args := make([]types.Datum, len(n.Args))
	return func(b *vec.Batch, out *vec.Vector) error {
		// Row mode evaluates every argument, then the builtin.
		for i, k := range argKs {
			if err := k(b, &argVs[i]); err != nil {
				return err
			}
		}
		rows := b.N
		out.Reset(vec.KindAny, rows)
		for i := 0; i < rows; i++ {
			for j := range argVs {
				args[j] = argVs[j].Datum(i)
			}
			d, err := evalBuiltin(name, args)
			if err != nil {
				return err
			}
			out.SetDatum(i, d)
		}
		return nil
	}
}

func compileCast(n *Cast) vkernel {
	ck := compileKernel(n.E)
	to := n.To
	var cv vec.Vector
	return func(b *vec.Batch, out *vec.Vector) error {
		if err := ck(b, &cv); err != nil {
			return err
		}
		rows := b.N
		switch {
		case to == types.KindInt && isNumKind(cv.Kind):
			out.Reset(types.KindInt, rows)
			out.CopyNullsFrom(&cv, rows)
			for i := 0; i < rows; i++ {
				out.I64[i] = i64At(&cv, i)
			}
		case to == types.KindFloat && isNumKind(cv.Kind):
			out.Reset(types.KindFloat, rows)
			out.CopyNullsFrom(&cv, rows)
			for i := 0; i < rows; i++ {
				out.F64[i] = f64At(&cv, i)
			}
		default:
			out.Reset(vec.KindAny, rows)
			for i := 0; i < rows; i++ {
				d, err := castDatum(to, cv.Datum(i))
				if err != nil {
					return err
				}
				out.SetDatum(i, d)
			}
		}
		return nil
	}
}
