package exec

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"hivempi/internal/chaos"
	"hivempi/internal/dfs"
	"hivempi/internal/metrics"
	"hivempi/internal/storage"
	"hivempi/internal/trace"
	"hivempi/internal/types"
)

// NodeView is the engines' read-only window onto cluster membership:
// schedulers consult it to blacklist non-UP hosts for task placement.
// The cluster.Membership implements it.
type NodeView interface {
	IsUp(node string) bool
}

// ErrNodeLost reports a task that could not run because its host died
// between planning and launch. The scheduler maps it (like lost-block
// reads) to a stage retry on surviving nodes rather than an engine
// fallback.
var ErrNodeLost = errors.New("exec: task host lost")

// Env gives the runtime access to the cluster substrate.
type Env struct {
	FS *dfs.FileSystem
	// Chaos is the fault-injection plane engines consult for task
	// crashes and stragglers (nil = no faults). Layers below (dfs, mpi)
	// carry their own reference.
	Chaos *chaos.Plane
	// Metrics is the observability registry engines fold completed
	// stage traces into and thread down to the shuffle/storage layers
	// (nil = no metrics; every consumer is nil-safe).
	Metrics *metrics.Registry
	// Nodes is the cluster-membership view used to skip dead hosts
	// (nil = every host is considered UP).
	Nodes NodeView
}

// NodeUp reports whether a host is schedulable: true with no membership
// view attached or for the empty host (no locality constraint).
func (e *Env) NodeUp(host string) bool {
	if e == nil || e.Nodes == nil || host == "" {
		return true
	}
	return e.Nodes.IsUp(host)
}

// SpeculativeDetectSec is the virtual time a speculative scheduler
// takes to notice a straggler and launch a duplicate; with speculation
// on, a straggling task costs at most this much extra (plus the
// duplicate's launch overhead, charged by the perfmodel).
const SpeculativeDetectSec = 1.5

// ApplyStraggler charges an injected slow-task delay to the metrics.
// With speculation enabled (the default) the delay is capped at the
// detection threshold and the task is marked speculative; with it
// disabled the full delay lands on the task.
func ApplyStraggler(m *trace.Task, delaySec float64, conf EngineConf) {
	if m == nil || delaySec <= 0 {
		return
	}
	if conf.DisableSpeculation {
		m.StragglerDelaySec += delaySec
		return
	}
	detect := SpeculativeDetectSec
	if m.PredictiveSpec {
		// The adapt runtime already launched a backup for this task at
		// stage start, so the slow copy is abandoned almost immediately.
		detect = PredictiveDetectSec
	}
	if delaySec > detect {
		delaySec = detect
	}
	m.Speculative = true
	m.StragglerDelaySec += delaySec
}

// RowSink consumes one produced row.
type RowSink func(types.Row) error

// KVEmit sends one shuffle pair (the engine wires this to Hadoop's
// collector or DataMPI's MPI_D_Send).
type KVEmit func(key, value []byte) error

// chain is a built operator pipeline: feed rows into process, then
// close (flushing blocking operators front-to-back).
type chain struct {
	process RowSink
	closers []func() error
}

func (c *chain) close() error {
	for _, f := range c.closers {
		if err := f(); err != nil {
			return err
		}
	}
	return nil
}

// buildChain compiles the op list into a push pipeline ending at sink.
func buildChain(env *Env, ops []MapOp, sink RowSink) (*chain, error) {
	c := &chain{process: sink}
	// Build back-to-front so each op wraps its downstream.
	for i := len(ops) - 1; i >= 0; i-- {
		next := c.process
		switch op := ops[i].(type) {
		case *FilterOp:
			cond := op.Cond
			c.process = func(row types.Row) error {
				d, err := cond.Eval(row)
				if err != nil {
					return err
				}
				if !d.IsNull() && d.Bool() {
					return next(row)
				}
				return nil
			}
		case *SelectOp:
			exprs := op.Exprs
			c.process = func(row types.Row) error {
				out := make(types.Row, len(exprs))
				for j, e := range exprs {
					d, err := e.Eval(row)
					if err != nil {
						return err
					}
					out[j] = d
				}
				return next(out)
			}
		case *LimitOp:
			left := op.N
			c.process = func(row types.Row) error {
				if left <= 0 {
					return nil
				}
				left--
				return next(row)
			}
		case *MapJoinOp:
			p, err := buildMapJoin(env, op, next)
			if err != nil {
				return nil, err
			}
			c.process = p
		case *GroupByPartialOp:
			p, closer := buildGroupByPartial(op, next)
			c.process = p
			c.closers = append([]func() error{closer}, c.closers...)
		default:
			return nil, fmt.Errorf("exec: unknown map op %T", ops[i])
		}
	}
	return c, nil
}

// loadMapJoinTable runs the small-table side of a map join: it streams
// the build input through its op chain into a hash map keyed by the
// encoded build keys, returning the table and the small-side row
// width. Shared by the row-mode and vectorized probe paths.
func loadMapJoinTable(env *Env, op *MapJoinOp) (map[string][]types.Row, int, error) {
	table := make(map[string][]types.Row)
	smallWidth := op.SmallWidth
	if smallWidth == 0 {
		smallWidth = op.Small.Schema.Len()
	}
	build := func(row types.Row) error {
		key, null, err := encodeJoinKey(op.BuildKeys, row)
		if err != nil {
			return err
		}
		if null {
			return nil // NULL keys never join
		}
		table[key] = append(table[key], row.Clone())
		return nil
	}
	loader, err := buildChain(env, op.SmallOps, build)
	if err != nil {
		return nil, 0, err
	}
	for _, path := range op.Small.ResolvePaths(env.FS) {
		sz, err := env.FS.Size(path)
		if err != nil {
			return nil, 0, fmt.Errorf("exec: map join small table: %w", err)
		}
		rd, err := openInput(env, op.Small, dfs.Split{Path: path, Offset: 0, Length: sz})
		if err != nil {
			return nil, 0, err
		}
		for {
			row, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, 0, err
			}
			if err := loader.process(row); err != nil {
				return nil, 0, err
			}
		}
	}
	if err := loader.close(); err != nil {
		return nil, 0, err
	}
	return table, smallWidth, nil
}

// buildMapJoin loads the small table into a hash map keyed by the
// encoded build keys, then streams probe rows through it.
func buildMapJoin(env *Env, op *MapJoinOp, next RowSink) (RowSink, error) {
	table, smallWidth, err := loadMapJoinTable(env, op)
	if err != nil {
		return nil, err
	}
	nulls := make(types.Row, smallWidth)
	return func(row types.Row) error {
		key, null, err := encodeJoinKey(op.ProbeKeys, row)
		if err != nil {
			return err
		}
		matches := table[key]
		if null {
			matches = nil
		}
		if len(matches) == 0 {
			if op.Outer {
				out := make(types.Row, 0, len(row)+smallWidth)
				out = append(out, row...)
				out = append(out, nulls...)
				return next(out)
			}
			return nil
		}
		for _, m := range matches {
			out := make(types.Row, 0, len(row)+smallWidth)
			out = append(out, row...)
			out = append(out, m...)
			if err := next(out); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func encodeJoinKey(keys []Expr, row types.Row) (string, bool, error) {
	var buf []byte
	anyNull := false
	for _, k := range keys {
		d, err := k.Eval(row)
		if err != nil {
			return "", false, err
		}
		if d.IsNull() {
			anyNull = true
		}
		buf = types.AppendKeyDatum(buf, d, false)
	}
	return string(buf), anyNull, nil
}

// buildGroupByPartial implements map-side hash aggregation.
func buildGroupByPartial(op *GroupByPartialOp, next RowSink) (RowSink, func() error) {
	maxEntries := op.MaxEntries
	if maxEntries <= 0 {
		maxEntries = DefaultHashAggEntries
	}
	type entry struct {
		keys   []types.Datum
		states []*AggState
	}
	groups := make(map[string]*entry)

	flush := func() error {
		// Deterministic flush order for reproducibility.
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := groups[k]
			out := make(types.Row, 0, len(e.keys)+len(e.states)*2)
			out = append(out, e.keys...)
			for _, st := range e.states {
				out = append(out, st.EmitPartial()...)
			}
			if err := next(out); err != nil {
				return err
			}
		}
		groups = make(map[string]*entry)
		return nil
	}

	process := func(row types.Row) error {
		var kb []byte
		keyVals := make([]types.Datum, len(op.Keys))
		for i, ke := range op.Keys {
			d, err := ke.Eval(row)
			if err != nil {
				return err
			}
			keyVals[i] = d
			kb = types.AppendKeyDatum(kb, d, false)
		}
		e, ok := groups[string(kb)]
		if !ok {
			e = &entry{keys: keyVals, states: make([]*AggState, len(op.Aggs))}
			for i, spec := range op.Aggs {
				e.states[i] = NewAggState(spec)
			}
			groups[string(kb)] = e
		}
		for _, st := range e.states {
			if err := st.Update(row); err != nil {
				return err
			}
		}
		if len(groups) >= maxEntries {
			return flush()
		}
		return nil
	}
	return process, flush
}

// openInput opens a reader over one split of a table input.
func openInput(env *Env, in TableInput, split dfs.Split) (storage.RowReader, error) {
	return storage.OpenSplit(env.FS, split, in.Format, in.Schema, in.Projection, in.Predicate)
}

// RunMapTask executes one map-side task: read the split, run the op
// chain and either emit shuffle pairs (Keys set) or hand rows to out.
// It fills the task's trace record with input/output counters. With
// conf.Vectorized set, the task runs the columnar batch pipeline
// instead (same pairs and rows, batch-at-a-time execution).
func RunMapTask(env *Env, conf EngineConf, stage *Stage, mapIdx int, split dfs.Split,
	emit KVEmit, out RowSink, metrics *trace.Task) error {
	if conf.Vectorized {
		return runMapTaskVec(env, conf, stage, mapIdx, split, emit, out, metrics)
	}
	mw := &stage.Maps[mapIdx]

	var descs []bool
	if stage.Shuffle != nil {
		descs = stage.Shuffle.SortDescs
	}

	var terminal RowSink
	switch {
	case mw.Keys != nil:
		tagByte := byte(mw.Tag)
		terminal = func(row types.Row) error {
			key, err := evalKey(mw.Keys, descs, row)
			if err != nil {
				return err
			}
			val, err := evalValue(tagByte, mw.Values, row)
			if err != nil {
				return err
			}
			if metrics != nil {
				metrics.OutputRecords++
				metrics.OutputBytes += int64(len(key) + len(val))
			}
			return emit(key, val)
		}
	case out != nil:
		terminal = func(row types.Row) error {
			if metrics != nil {
				metrics.OutputRecords++
			}
			return out(row)
		}
	default:
		return fmt.Errorf("exec: map task %s/%d has neither shuffle nor sink", stage.ID, mapIdx)
	}

	c, err := buildChain(env, adaptOps(mw.Ops, conf), terminal)
	if err != nil {
		return err
	}
	if split.Path == "" {
		// Placeholder task for an empty input: nothing to read, but the
		// chain still closes so blocking operators flush.
		return c.close()
	}
	rd, err := openInput(env, mw.Input, split)
	if err != nil {
		return err
	}
	for {
		row, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if metrics != nil {
			metrics.InputRecords++
		}
		if err := c.process(row); err != nil {
			return err
		}
	}
	if metrics != nil {
		var in int64
		if pr, ok := rd.(storage.PhysicalReader); ok {
			in = pr.PhysicalBytes()
		} else {
			in = split.Length
		}
		metrics.InputBytes += in
		if env.FS.MemResident(split.Path) {
			metrics.MemReadBytes += in
		}
	}
	return c.close()
}

// evalKey builds the order-preserving shuffle key.
func evalKey(keys []Expr, descs []bool, row types.Row) ([]byte, error) {
	var buf []byte
	for i, ke := range keys {
		d, err := ke.Eval(row)
		if err != nil {
			return nil, err
		}
		desc := false
		if descs != nil && i < len(descs) {
			desc = descs[i]
		}
		buf = types.AppendKeyDatum(buf, d, desc)
	}
	return buf, nil
}

// evalValue builds the tagged shuffle value.
func evalValue(tag byte, values []Expr, row types.Row) ([]byte, error) {
	out := make(types.Row, len(values))
	for i, ve := range values {
		d, err := ve.Eval(row)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	buf := []byte{tag}
	return types.EncodeRow(buf, out), nil
}

// PartitionForKey selects the reducer for a shuffle key: hash of the
// leading partitionKeys columns' bytes (0 = whole key). Because keys
// are order-preserving encodings, hashing the prefix is equivalent to
// hashing the column values.
func PartitionForKey(key []byte, partitionKeys, totalKeys, numReducers int) int {
	prefix := key
	if partitionKeys > 0 && partitionKeys < totalKeys {
		prefix = keyPrefix(key, partitionKeys)
	}
	return int(fnvHash(prefix, fnvOffset64) % uint64(numReducers))
}

// FNV-1a parameters; fnvOffset64 doubles as the base seed, and the
// adaptation's split pass reseeds to decorrelate.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvHash(b []byte, seed uint64) uint64 {
	h := seed
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// keyPrefix returns the encoded bytes of the first n key columns.
func keyPrefix(key []byte, n int) []byte {
	pos := 0
	for i := 0; i < n && pos < len(key); i++ {
		switch key[pos] {
		case 0x00: // null (ascending)
			pos++
		case 0x01: // number
			pos += 9
		case 0x02: // string: scan for 0x00 0x00 terminator honouring escapes
			pos++
			for pos < len(key) {
				if key[pos] == 0x00 {
					if pos+1 < len(key) && key[pos+1] == 0xFF {
						pos += 2
						continue
					}
					pos += 2
					break
				}
				pos++
			}
		default:
			// Descending-encoded column: complement of the above tags.
			switch key[pos] {
			case 0xFF: // ^0x00 null
				pos++
			case 0xFE: // ^0x01 number
				pos += 9
			case 0xFD: // ^0x02 string
				pos++
				for pos < len(key) {
					if key[pos] == 0xFF {
						if pos+1 < len(key) && key[pos+1] == 0x00 {
							pos += 2
							continue
						}
						pos += 2
						break
					}
					pos++
				}
			default:
				return key // unknown tag; hash the whole key
			}
		}
	}
	return key[:pos]
}
