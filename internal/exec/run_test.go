package exec

import (
	"testing"

	"hivempi/internal/dfs"
	"hivempi/internal/storage"
	"hivempi/internal/types"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	return &Env{FS: dfs.New(dfs.Config{BlockSize: 8 << 10, Nodes: []string{"n1", "n2"}})}
}

func writeTable(t *testing.T, env *Env, path string, schema *types.Schema, rows []types.Row) TableInput {
	t.Helper()
	w, err := storage.CreateTableFile(env.FS, path, storage.FormatText, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return TableInput{Table: path, Paths: []string{path}, Format: storage.FormatText, Schema: schema}
}

func wholeSplit(t *testing.T, env *Env, path string) dfs.Split {
	t.Helper()
	sz, err := env.FS.Size(path)
	if err != nil {
		t.Fatal(err)
	}
	return dfs.Split{Path: path, Offset: 0, Length: sz}
}

func TestChainFilterSelect(t *testing.T) {
	env := testEnv(t)
	var got []types.Row
	c, err := buildChain(env, []MapOp{
		&FilterOp{Cond: &Cmp{Op: CmpGT, L: col(0), R: iLit(2)}},
		&SelectOp{Exprs: []Expr{&BinOp{OpMul, col(0), iLit(10)}, col(1)}},
	}, func(r types.Row) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := c.process(types.Row{types.Int(i), types.String("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0][0].Int() != 30 || got[2][0].Int() != 50 {
		t.Errorf("chain produced %v", got)
	}
}

func TestChainLimit(t *testing.T) {
	env := testEnv(t)
	n := 0
	c, err := buildChain(env, []MapOp{&LimitOp{N: 2}},
		func(types.Row) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.process(types.Row{types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if n != 2 {
		t.Errorf("limit let %d rows through", n)
	}
}

func TestGroupByPartialFlushAndMerge(t *testing.T) {
	env := testEnv(t)
	var got []types.Row
	op := &GroupByPartialOp{
		Keys:       []Expr{col(0)},
		Aggs:       []AggSpec{{Kind: AggSum, Arg: col(1)}, {Kind: AggCountStar}},
		MaxEntries: 2, // force intermediate flushes
	}
	c, err := buildChain(env, []MapOp{op}, func(r types.Row) error {
		got = append(got, r.Clone())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	data := []struct {
		k string
		v int64
	}{{"a", 1}, {"b", 2}, {"c", 3}, {"a", 4}, {"b", 5}, {"a", 6}}
	for _, d := range data {
		if err := c.process(types.Row{types.String(d.k), types.Int(d.v)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.close(); err != nil {
		t.Fatal(err)
	}
	// Flushes produce partials; merging them per key must give totals.
	totals := map[string]int64{}
	counts := map[string]int64{}
	for _, r := range got {
		totals[r[0].Str()] += r[1].Int()
		counts[r[0].Str()] += r[2].Int()
	}
	if totals["a"] != 11 || totals["b"] != 7 || totals["c"] != 3 {
		t.Errorf("partial sums %v", totals)
	}
	if counts["a"] != 3 || counts["b"] != 2 || counts["c"] != 1 {
		t.Errorf("partial counts %v", counts)
	}
	if len(got) <= 3 {
		t.Errorf("expected multiple flush batches, got %d rows", len(got))
	}
}

func TestMapJoinInnerAndOuter(t *testing.T) {
	env := testEnv(t)
	small := writeTable(t, env, "/dim", types.NewSchema(
		types.Col("id", types.KindInt), types.Col("name", types.KindString)),
		[]types.Row{
			{types.Int(1), types.String("one")},
			{types.Int(2), types.String("two")},
			{types.Int(2), types.String("deux")},
		})
	run := func(outer bool) []types.Row {
		var got []types.Row
		op := &MapJoinOp{Small: small, ProbeKeys: []Expr{col(0)}, BuildKeys: []Expr{col(0)}, Outer: outer}
		c, err := buildChain(env, []MapOp{op}, func(r types.Row) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int64{1, 2, 3} {
			if err := c.process(types.Row{types.Int(k), types.String("probe")}); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.close(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	inner := run(false)
	if len(inner) != 3 { // 1 match + 2 matches + 0
		t.Errorf("inner join produced %d rows, want 3", len(inner))
	}
	outer := run(true)
	if len(outer) != 4 {
		t.Errorf("outer join produced %d rows, want 4", len(outer))
	}
	last := outer[3]
	if last[0].Int() != 3 || !last[2].IsNull() || !last[3].IsNull() {
		t.Errorf("outer miss row %v", last)
	}
}

func TestRunMapTaskShuffleEmission(t *testing.T) {
	env := testEnv(t)
	schema := types.NewSchema(types.Col("k", types.KindString), types.Col("v", types.KindInt))
	in := writeTable(t, env, "/src", schema, []types.Row{
		{types.String("x"), types.Int(1)},
		{types.String("y"), types.Int(2)},
		{types.String("x"), types.Int(3)},
	})
	stage := &Stage{
		ID: "s1",
		Maps: []MapWork{{
			Input:  in,
			Ops:    []MapOp{&FilterOp{Cond: &Cmp{Op: CmpGE, L: col(1), R: iLit(2)}}},
			Keys:   []Expr{col(0)},
			Values: []Expr{col(1)},
		}},
		Shuffle: &ShuffleSpec{NumReducers: 2},
		Reduce: &ReduceWork{
			KeyKinds: []types.Kind{types.KindString},
			Op:       &ExtractReduce{ValueWidth: 1},
		},
		Collect: true,
	}
	if err := stage.Validate(); err != nil {
		t.Fatal(err)
	}
	var pairs [][2][]byte
	err := RunMapTask(env, EngineConf{}, stage, 0, wholeSplit(t, env, "/src"),
		func(k, v []byte) error {
			pairs = append(pairs, [2][]byte{append([]byte(nil), k...), append([]byte(nil), v...)})
			return nil
		}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("emitted %d pairs, want 2 (filter drops v=1)", len(pairs))
	}
	// Feed the pairs into a reduce driver and check round trip.
	var out []types.Row
	rd, err := NewReduceDriver(env, stage.Reduce, func(r types.Row) error {
		out = append(out, r)
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := rd.Feed(p[0], [][]byte{p[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("reduce emitted %d rows", len(out))
	}
}

func TestReduceDriverGroupBy(t *testing.T) {
	env := testEnv(t)
	work := &ReduceWork{
		KeyKinds: []types.Kind{types.KindString},
		Op:       &GroupByReduce{Aggs: []AggSpec{{Kind: AggSum, Arg: col(0)}, {Kind: AggCountStar}}},
	}
	var out []types.Row
	rd, err := NewReduceDriver(env, work, func(r types.Row) error {
		out = append(out, r)
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := types.AppendKeyDatum(nil, types.String("g"), false)
	// Two partial rows: (sum=5,count=2) and (sum=3,count=1).
	v1 := append([]byte{0}, types.EncodeRow(nil, types.Row{types.Int(5), types.Int(2)})...)
	v2 := append([]byte{0}, types.EncodeRow(nil, types.Row{types.Int(3), types.Int(1)})...)
	if err := rd.Feed(key, [][]byte{v1, v2}); err != nil {
		t.Fatal(err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("groupby emitted %d rows", len(out))
	}
	if out[0][0].Str() != "g" || out[0][1].Int() != 8 || out[0][2].Int() != 3 {
		t.Errorf("groupby row %v", out[0])
	}
}

func TestReduceDriverJoin(t *testing.T) {
	env := testEnv(t)
	work := &ReduceWork{
		KeyKinds: []types.Kind{types.KindInt},
		Op: &JoinReduce{
			TagCount:    2,
			ValueWidths: []int{2, 1},
			JoinTypes:   []JoinType{JoinLeftOuter},
		},
	}
	var out []types.Row
	rd, err := NewReduceDriver(env, work, func(r types.Row) error {
		out = append(out, r)
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := types.AppendKeyDatum(nil, types.Int(7), false)
	left1 := append([]byte{0}, types.EncodeRow(nil, types.Row{types.String("l1"), types.Int(10)})...)
	left2 := append([]byte{0}, types.EncodeRow(nil, types.Row{types.String("l2"), types.Int(20)})...)
	right := append([]byte{1}, types.EncodeRow(nil, types.Row{types.String("r")})...)
	if err := rd.Feed(key, [][]byte{left1, right, left2}); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("join emitted %d rows, want 2", len(out))
	}
	// Left outer with missing right bucket.
	out = nil
	key2 := types.AppendKeyDatum(nil, types.Int(8), false)
	if err := rd.Feed(key2, [][]byte{left1}); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !out[0][2].IsNull() {
		t.Errorf("left outer miss produced %v", out)
	}
	// Inner with missing left bucket produces nothing.
	out = nil
	key3 := types.AppendKeyDatum(nil, types.Int(9), false)
	if err := rd.Feed(key3, [][]byte{right}); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("join with empty left emitted %v", out)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceDriverLimit(t *testing.T) {
	env := testEnv(t)
	work := &ReduceWork{
		KeyKinds: []types.Kind{types.KindInt},
		Op:       &ExtractReduce{ValueWidth: 1},
		Limit:    2,
	}
	n := 0
	rd, err := NewReduceDriver(env, work, func(types.Row) error { n++; return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		key := types.AppendKeyDatum(nil, types.Int(int64(i)), false)
		val := append([]byte{0}, types.EncodeRow(nil, types.Row{types.Int(int64(i))})...)
		if err := rd.Feed(key, [][]byte{val}); err != nil {
			t.Fatal(err)
		}
		if rd.LimitReached() {
			break
		}
	}
	if n != 2 {
		t.Errorf("limit emitted %d rows", n)
	}
	if !rd.LimitReached() {
		t.Error("LimitReached should be true")
	}
}

func TestPartitionForKeyPrefix(t *testing.T) {
	// Rows with the same first column but different second column must
	// land on the same reducer when PartitionKeys=1.
	k1 := types.EncodeKey(nil, []types.Datum{types.String("grp"), types.Int(1)}, nil)
	k2 := types.EncodeKey(nil, []types.Datum{types.String("grp"), types.Int(999)}, nil)
	p1 := PartitionForKey(k1, 1, 2, 16)
	p2 := PartitionForKey(k2, 1, 2, 16)
	if p1 != p2 {
		t.Errorf("prefix partitioning split a group: %d vs %d", p1, p2)
	}
	// Different first columns should usually differ (spot check).
	k3 := types.EncodeKey(nil, []types.Datum{types.String("other"), types.Int(1)}, nil)
	if PartitionForKey(k1, 1, 2, 1024) == PartitionForKey(k3, 1, 2, 1024) {
		t.Log("hash collision on 1024 buckets (acceptable but unusual)")
	}
	// Full-key partitioning may differ.
	if PartitionForKey(k1, 0, 2, 64) < 0 {
		t.Error("partition must be non-negative")
	}
	// Descending string keys keep prefix parsing working.
	kd := types.EncodeKey(nil, []types.Datum{types.String("grp"), types.Int(5)}, []bool{true, false})
	kd2 := types.EncodeKey(nil, []types.Datum{types.String("grp"), types.Int(6)}, []bool{true, false})
	if PartitionForKey(kd, 1, 2, 32) != PartitionForKey(kd2, 1, 2, 32) {
		t.Error("descending prefix partitioning split a group")
	}
}

func TestStageValidate(t *testing.T) {
	if err := (&Stage{ID: "x"}).Validate(); err == nil {
		t.Error("empty stage should fail validation")
	}
	st := &Stage{
		ID:   "y",
		Maps: []MapWork{{Input: TableInput{Paths: []string{"/p"}}, Keys: []Expr{col(0)}}},
	}
	if err := st.Validate(); err == nil {
		t.Error("keys without shuffle should fail")
	}
}

func TestReduceDriverErrorPaths(t *testing.T) {
	env := testEnv(t)
	// Join with an out-of-range tag.
	work := &ReduceWork{
		KeyKinds: []types.Kind{types.KindInt},
		Op:       &JoinReduce{TagCount: 2, ValueWidths: []int{1, 1}},
	}
	rd, err := NewReduceDriver(env, work, func(types.Row) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := types.AppendKeyDatum(nil, types.Int(1), false)
	badTag := append([]byte{9}, types.EncodeRow(nil, types.Row{types.Int(1)})...)
	if err := rd.Feed(key, [][]byte{badTag}); err == nil {
		t.Error("out-of-range join tag should fail")
	}
	// Wrong row width for the tag.
	wide := append([]byte{0}, types.EncodeRow(nil, types.Row{types.Int(1), types.Int(2)})...)
	if err := rd.Feed(key, [][]byte{wide}); err == nil {
		t.Error("wrong join row width should fail")
	}
	// Empty shuffle value.
	if err := rd.Feed(key, [][]byte{{}}); err == nil {
		t.Error("empty shuffle value should fail")
	}
	// Partial-agg row too narrow.
	gw := &ReduceWork{
		KeyKinds: []types.Kind{types.KindInt},
		Op: &GroupByReduce{Aggs: []AggSpec{
			{Kind: AggAvg, Arg: col(0)}, // width 2
		}},
	}
	gd, err := NewReduceDriver(env, gw, func(types.Row) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	narrow := append([]byte{0}, types.EncodeRow(nil, types.Row{types.Int(1)})...)
	if err := gd.Feed(key, [][]byte{narrow}); err == nil {
		t.Error("narrow partial row should fail")
	}
	// Complete-mode width mismatch.
	cw := &ReduceWork{
		KeyKinds: []types.Kind{types.KindInt},
		Op:       &GroupByReduce{Aggs: []AggSpec{{Kind: AggSum, Arg: col(0)}}, Complete: true},
	}
	cd, err := NewReduceDriver(env, cw, func(types.Row) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cd.Feed(key, [][]byte{wide}); err == nil {
		t.Error("complete-mode width mismatch should fail")
	}
	// Corrupt key bytes.
	if err := rd.Feed([]byte{0x77}, [][]byte{}); err == nil {
		t.Error("corrupt key should fail")
	}
}

func TestBuildChainUnknownOp(t *testing.T) {
	env := testEnv(t)
	type fakeOp struct{ MapOp }
	if _, err := buildChain(env, []MapOp{fakeOp{}}, func(types.Row) error { return nil }); err == nil {
		t.Error("unknown op should fail chain building")
	}
}

func TestMapJoinMissingSmallTable(t *testing.T) {
	env := testEnv(t)
	op := &MapJoinOp{
		Small:     TableInput{Paths: []string{"/missing"}, Format: storage.FormatText, Schema: types.NewSchema(types.Col("a", types.KindInt))},
		ProbeKeys: []Expr{col(0)},
		BuildKeys: []Expr{col(0)},
	}
	if _, err := buildChain(env, []MapOp{op}, func(types.Row) error { return nil }); err == nil {
		t.Error("missing small table should fail")
	}
}
