// Package dfs implements an HDFS-like distributed file system substrate:
// files are sequences of fixed-size blocks, each block is replicated on a
// subset of the cluster's data nodes, and jobs read files through input
// splits that carry block locality information.
//
// The store is in-memory (the simulated cluster is a single process) but
// preserves the architectural properties the paper depends on: block
// granularity, replica placement, split computation and data locality.
package dfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hivempi/internal/chaos"
	"hivempi/internal/imstore"
	"hivempi/internal/metrics"
)

// DefaultBlockSize matches the paper's HDFS configuration (64 MB),
// although tests and scaled benchmarks typically configure it smaller.
const DefaultBlockSize = 64 << 20

// ErrNotFound is returned when a path does not exist.
var ErrNotFound = errors.New("dfs: file not found")

// ErrExists is returned when creating a path that already exists.
var ErrExists = errors.New("dfs: file exists")

// ErrBlockUnavailable reports a block with no live replica; every
// BlockLostError unwraps to it.
var ErrBlockUnavailable = errors.New("dfs: no live replica for block")

// ErrNoLiveNodes reports a write with zero UP nodes to place on.
var ErrNoLiveNodes = errors.New("dfs: no live nodes to place block")

// BlockLostError is the typed read failure for a block whose replicas
// all lived on lost nodes. The scheduler uses the path to find and
// relaunch the stage that produced the file.
type BlockLostError struct {
	Path  string
	Block int
}

func (e *BlockLostError) Error() string {
	return fmt.Sprintf("dfs: block %d of %s lost with its nodes", e.Block, e.Path)
}

// Unwrap makes errors.Is(err, ErrBlockUnavailable) hold.
func (e *BlockLostError) Unwrap() error { return ErrBlockUnavailable }

// Config describes the simulated DFS deployment.
type Config struct {
	BlockSize   int64    // bytes per block; DefaultBlockSize if 0
	Replication int      // replicas per block; min(3, len(Nodes)) if 0
	Nodes       []string // data node host names; ["localhost"] if empty

	// Racks optionally names the rack of each node (parallel to Nodes;
	// missing entries default to "default"). Only the rack-aware
	// placement policy reads it.
	Racks []string

	// Seed seeds the placement RNG used for tie-breaking; the same
	// (config, workload) pair always places identically.
	Seed int64

	// Policy picks replica nodes for new and re-replicated blocks;
	// nil uses SpreadPolicy (least-loaded with balanced primaries).
	Policy PlacementPolicy
}

// FileSystem is the namespace plus block store.
type FileSystem struct {
	cfg Config

	mu    sync.RWMutex
	files map[string]*file

	// Node liveness and placement state, guarded by mu. Node indices
	// are stable for the filesystem's lifetime: dead nodes keep their
	// slot (marked down) and joins append.
	nodeIdx   map[string]int
	down      []bool
	load      []int // total replicas per node
	primaries []int // blocks whose first replica is the node
	rng       *rand.Rand

	// recoverySec accumulates the virtual seconds Repair charged
	// through the pricing hook (guarded by mu).
	recoverySec  float64
	repairCharge func(int64) float64 // guarded by faultMu; nil = no charge

	bytesRead  atomic.Int64
	bytesWrite atomic.Int64

	// Memory-tier byte counters: the subset of bytesRead/bytesWrite
	// served by files resident in the attached imstore.
	memBytesRead  atomic.Int64
	memBytesWrite atomic.Int64

	tierMu  sync.Mutex
	memTier *imstore.Store // in-memory intermediate tier; nil = disk only

	faultMu sync.Mutex
	plane   *chaos.Plane // fault-injection plane; nil = no faults

	// Observability counters, cached as atomic pointers so the hot
	// read/write paths skip the registry map. A nil counter is a no-op,
	// so unattached filesystems pay one atomic load per I/O.
	ctrRead     atomic.Pointer[metrics.Counter]
	ctrWrite    atomic.Pointer[metrics.Counter]
	ctrMemRead  atomic.Pointer[metrics.Counter]
	ctrMemWrite atomic.Pointer[metrics.Counter]

	// Node-loss recovery metrics (cached for the same reason; the
	// failover/lost counters sit on the read hot path).
	ctrFailover    atomic.Pointer[metrics.Counter]
	ctrLostBlocks  atomic.Pointer[metrics.Counter]
	ctrRereplBlk   atomic.Pointer[metrics.Counter]
	ctrRereplBytes atomic.Pointer[metrics.Counter]
	gUnderRepl     atomic.Pointer[metrics.Gauge]
	gDegraded      atomic.Pointer[metrics.Gauge]
}

// ErrInjectedFault is the error injected reads and writes wrap. It is
// the chaos sentinel itself, so errors.Is works uniformly with either
// chaos.ErrInjected or this compatibility alias.
var ErrInjectedFault = chaos.ErrInjected

// SetMemTier attaches the in-memory intermediate store; nil detaches
// it. Tier placement is decided when a writer closes: eligible files
// that fit the store's budget become memory-resident, the rest stay on
// the disk tier. The DFS keeps all blocks in process memory either way
// (the cluster is simulated); the tier only changes cost accounting.
func (fs *FileSystem) SetMemTier(s *imstore.Store) {
	fs.tierMu.Lock()
	defer fs.tierMu.Unlock()
	fs.memTier = s
}

// memStore returns the attached memory tier (possibly nil).
func (fs *FileSystem) memStore() *imstore.Store {
	fs.tierMu.Lock()
	defer fs.tierMu.Unlock()
	return fs.memTier
}

// MemResident reports whether the file is held in the memory tier.
func (fs *FileSystem) MemResident(p string) bool {
	s := fs.memStore()
	return s != nil && s.Resident(clean(p))
}

// SetMetrics attaches an observability registry: cumulative disk- and
// memory-tier I/O bytes are published under the metrics.CtrDFS* names.
// A nil registry detaches (the counters become no-ops again).
func (fs *FileSystem) SetMetrics(r *metrics.Registry) {
	fs.ctrRead.Store(r.Counter(metrics.CtrDFSReadBytes))
	fs.ctrWrite.Store(r.Counter(metrics.CtrDFSWriteBytes))
	fs.ctrMemRead.Store(r.Counter(metrics.CtrDFSMemReadBytes))
	fs.ctrMemWrite.Store(r.Counter(metrics.CtrDFSMemWriteBytes))
	fs.ctrFailover.Store(r.Counter(metrics.CtrDFSReadFailovers))
	fs.ctrLostBlocks.Store(r.Counter(metrics.CtrDFSLostBlocks))
	fs.ctrRereplBlk.Store(r.Counter(metrics.CtrDFSRereplBlocks))
	fs.ctrRereplBytes.Store(r.Counter(metrics.CtrDFSRereplBytes))
	fs.gUnderRepl.Store(r.Gauge(metrics.GaugeDFSUnderRepl))
	fs.gDegraded.Store(r.Gauge(metrics.GaugeDFSDegradedRepl))
	fs.mu.Lock()
	fs.publishHealthLocked()
	fs.mu.Unlock()
}

// SetRepairCharge installs the pricing hook Repair uses to convert
// re-replicated bytes into virtual seconds (typically the perfmodel's
// RereplicationSeconds). Nil disables charging.
func (fs *FileSystem) SetRepairCharge(fn func(int64) float64) {
	fs.faultMu.Lock()
	defer fs.faultMu.Unlock()
	fs.repairCharge = fn
}

func (fs *FileSystem) repairChargeFn() func(int64) float64 {
	fs.faultMu.Lock()
	defer fs.faultMu.Unlock()
	return fs.repairCharge
}

// SetChaos attaches a fault-injection plane; nil detaches it.
func (fs *FileSystem) SetChaos(p *chaos.Plane) {
	fs.faultMu.Lock()
	defer fs.faultMu.Unlock()
	fs.plane = p
}

// chaosPlane returns the attached plane (possibly nil; chaos methods
// are nil-safe).
func (fs *FileSystem) chaosPlane() *chaos.Plane {
	fs.faultMu.Lock()
	defer fs.faultMu.Unlock()
	return fs.plane
}

// ensurePlane returns the attached plane, lazily arming an empty one so
// the Inject*Fault hooks work without an explicit SetChaos.
func (fs *FileSystem) ensurePlane() *chaos.Plane {
	fs.faultMu.Lock()
	defer fs.faultMu.Unlock()
	if fs.plane == nil {
		fs.plane = chaos.NewPlane(chaos.Plan{})
	}
	return fs.plane
}

// InjectReadFault makes the next n reads of path fail with
// ErrInjectedFault (testing hook for fault-tolerance paths).
func (fs *FileSystem) InjectReadFault(p string, n int) {
	fs.ensurePlane().Add(chaos.Spec{Kind: chaos.DFSRead, Path: clean(p), Count: n})
}

// InjectWriteFault makes the next n writes to path fail with
// ErrInjectedFault, symmetric to InjectReadFault.
func (fs *FileSystem) InjectWriteFault(p string, n int) {
	fs.ensurePlane().Add(chaos.Spec{Kind: chaos.DFSWrite, Path: clean(p), Count: n})
}

type block struct {
	data     []byte
	replicas []int // indices into cfg.Nodes
}

type file struct {
	blocks []*block
	size   int64
}

// New creates an empty file system. A Replication target above the
// node count is kept (not clamped): blocks are placed on every node
// there is, the shortfall is recorded as a degraded-replication gauge,
// and Repair lazily restores the factor when nodes join.
func New(cfg Config) *FileSystem {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = []string{"localhost"}
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
		if cfg.Replication > len(cfg.Nodes) {
			cfg.Replication = len(cfg.Nodes)
		}
	}
	cfg.Nodes = append([]string{}, cfg.Nodes...)
	for len(cfg.Racks) < len(cfg.Nodes) {
		cfg.Racks = append(cfg.Racks, "default")
	}
	if cfg.Policy == nil {
		cfg.Policy = SpreadPolicy{}
	}
	fs := &FileSystem{
		cfg:       cfg,
		files:     make(map[string]*file),
		nodeIdx:   make(map[string]int, len(cfg.Nodes)),
		down:      make([]bool, len(cfg.Nodes)),
		load:      make([]int, len(cfg.Nodes)),
		primaries: make([]int, len(cfg.Nodes)),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	for i, n := range cfg.Nodes {
		fs.nodeIdx[n] = i
	}
	return fs
}

// Config returns the deployment configuration (Nodes is a copy; the
// live slice grows when nodes join).
func (fs *FileSystem) Config() Config {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	cfg := fs.cfg
	cfg.Nodes = append([]string{}, fs.cfg.Nodes...)
	cfg.Racks = append([]string{}, fs.cfg.Racks...)
	return cfg
}

// BytesRead returns the cumulative bytes served to readers.
func (fs *FileSystem) BytesRead() int64 { return fs.bytesRead.Load() }

// BytesWritten returns the cumulative bytes accepted from writers.
func (fs *FileSystem) BytesWritten() int64 { return fs.bytesWrite.Load() }

// MemBytesRead returns the cumulative bytes served from memory-tier files.
func (fs *FileSystem) MemBytesRead() int64 { return fs.memBytesRead.Load() }

// MemBytesWritten returns the cumulative bytes written into memory-tier files.
func (fs *FileSystem) MemBytesWritten() int64 { return fs.memBytesWrite.Load() }

func clean(p string) string {
	p = path.Clean("/" + p)
	return p
}

// Exists reports whether the path holds a file.
func (fs *FileSystem) Exists(p string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[clean(p)]
	return ok
}

// Size returns the byte length of the file.
func (fs *FileSystem) Size(p string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[clean(p)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	return f.size, nil
}

// List returns the paths under the given directory prefix, sorted.
func (fs *FileSystem) List(dir string) []string {
	dir = clean(dir)
	if !strings.HasSuffix(dir, "/") {
		dir += "/"
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, dir) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes a file; deleting a missing file is not an error.
// Memory-tier residency is released inside the namespace critical
// section: with a split release, a concurrent Writer.Close could
// re-admit the path between the delete and the release, leaving a
// deleted file resident and its tier budget leaked. Lock order is
// fs.mu -> tierMu -> store.mu; the store never calls back into dfs.
func (fs *FileSystem) Delete(p string) {
	p = clean(p)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, p)
	if s := fs.memStore(); s != nil {
		s.Release(p)
	}
}

// DeleteDir removes every file under the directory prefix, releasing
// memory-tier residency atomically with the namespace removal (see
// Delete for why the split version races with Close/Rename admission).
func (fs *FileSystem) DeleteDir(dir string) {
	dir = clean(dir)
	if !strings.HasSuffix(dir, "/") {
		dir += "/"
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s := fs.memStore()
	for p := range fs.files {
		if strings.HasPrefix(p, dir) {
			delete(fs.files, p)
			if s != nil {
				s.Release(p)
			}
		}
	}
}

// Rename moves src to dst atomically, replacing dst. Memory-tier
// residency follows the file to its new name (re-admitted under the
// destination path, which may fall outside the tier's roots). The
// residency move shares the namespace critical section: done outside
// it, a concurrent DeleteDir covering dst could release the old dst
// reservation and then lose against this re-admission, leaving a
// deleted path resident — or see src already renamed away and leak its
// budget.
func (fs *FileSystem) Rename(src, dst string) error {
	src, dst = clean(src), clean(dst)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[src]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, src)
	}
	delete(fs.files, src)
	fs.files[dst] = f
	if s := fs.memStore(); s != nil {
		wasResident := s.Resident(src)
		s.Release(src)
		s.Release(dst)
		if wasResident {
			s.TryAdmit(dst, f.size)
		}
	}
	return nil
}

// placeReplicasLocked picks up to Replication distinct UP nodes for a
// new block through the placement policy, updating the load/primary
// accounting. Fewer than the target is a degraded (under-replicated)
// placement that Repair later fixes; zero UP nodes is an error.
// Callers hold fs.mu.
func (fs *FileSystem) placeReplicasLocked() ([]int, error) {
	reps := fs.cfg.Policy.Place(fs.placementViewLocked(), fs.cfg.Replication, nil, fs.rng)
	if len(reps) == 0 {
		return nil, ErrNoLiveNodes
	}
	fs.primaries[reps[0]]++
	for _, r := range reps {
		fs.load[r]++
	}
	return reps, nil
}

// placementViewLocked snapshots the state policies read. The slices
// alias fs state; policies must treat the view as read-only.
func (fs *FileSystem) placementViewLocked() *PlacementView {
	up := make([]bool, len(fs.cfg.Nodes))
	for i := range up {
		up[i] = !fs.down[i]
	}
	return &PlacementView{
		Nodes:     fs.cfg.Nodes,
		Racks:     fs.cfg.Racks,
		Up:        up,
		Load:      fs.load,
		Primaries: fs.primaries,
	}
}

// Create opens a new file for writing. The returned writer buffers into
// blocks; Close must be called to publish the file.
func (fs *FileSystem) Create(p string) (*Writer, error) {
	p = clean(p)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[p]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, p)
	}
	// Reserve the name so concurrent creators collide deterministically.
	fs.files[p] = &file{}
	return &Writer{fs: fs, path: p, f: fs.files[p]}, nil
}

// CreateOverwrite creates p, replacing any existing file.
func (fs *FileSystem) CreateOverwrite(p string) (*Writer, error) {
	fs.Delete(p)
	return fs.Create(p)
}

// Writer appends data to a file, cutting blocks at the block size.
type Writer struct {
	fs     *FileSystem
	path   string
	f      *file
	cur    []byte
	closed bool
}

var _ io.WriteCloser = (*Writer)(nil)

// Write buffers p into the current block, cutting new blocks as needed.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("dfs: write to closed writer for %s", w.path)
	}
	if err := w.fs.chaosPlane().DFSWrite(w.path); err != nil {
		return 0, err
	}
	total := len(p)
	bs := int(w.fs.cfg.BlockSize)
	for len(p) > 0 {
		room := bs - len(w.cur)
		if room == 0 {
			if err := w.flushBlock(); err != nil {
				return total - len(p), err
			}
			room = bs
		}
		n := len(p)
		if n > room {
			n = room
		}
		w.cur = append(w.cur, p[:n]...)
		p = p[n:]
	}
	w.fs.bytesWrite.Add(int64(total))
	w.fs.ctrWrite.Load().Add(int64(total))
	return total, nil
}

func (w *Writer) flushBlock() error {
	w.fs.mu.Lock()
	reps, err := w.fs.placeReplicasLocked()
	if err != nil {
		w.fs.mu.Unlock()
		return fmt.Errorf("%w (writing %s)", err, w.path)
	}
	b := &block{data: w.cur, replicas: reps}
	w.f.blocks = append(w.f.blocks, b)
	w.f.size += int64(len(w.cur))
	w.fs.mu.Unlock()
	w.cur = nil
	return nil
}

// Close publishes the final partial block and decides the file's tier:
// eligible files that fit the memory store's budget become resident,
// the rest stay on the disk tier (the "transparent spill").
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.cur) > 0 {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	s := w.fs.memStore()
	if s == nil {
		return nil
	}
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	// Admit only while the file is still published under this writer's
	// path: a Delete/DeleteDir/Rename sneaking between the final flush
	// and an unlocked admission would leave an unreachable file holding
	// tier budget forever.
	if w.fs.files[w.path] != w.f {
		return nil
	}
	if s.TryAdmit(w.path, w.f.size) {
		w.fs.memBytesWrite.Add(w.f.size)
		w.fs.ctrMemWrite.Load().Add(w.f.size)
	}
	return nil
}

// Open returns a random-access reader over the file.
func (fs *FileSystem) Open(p string) (*Reader, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[clean(p)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	// Tier is fixed at Writer.Close and files are immutable once
	// published, so it is safe to latch residency per reader.
	return &Reader{fs: fs, f: f, size: f.size, path: clean(p), mem: fs.MemResident(p)}, nil
}

// Reader reads a file sequentially or at random offsets.
type Reader struct {
	fs   *FileSystem
	f    *file
	size int64
	off  int64
	path string
	mem  bool // file was memory-tier resident when opened
}

var (
	_ io.ReadSeeker = (*Reader)(nil)
	_ io.ReaderAt   = (*Reader)(nil)
)

// Size returns the total file length.
func (r *Reader) Size() int64 { return r.size }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	n, err := r.ReadAt(p, r.off)
	r.off += int64(n)
	return n, err
}

// ReadAt implements io.ReaderAt.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if err := r.fs.chaosPlane().DFSRead(r.path); err != nil {
		return 0, err
	}
	if off >= r.size {
		return 0, io.EOF
	}
	bs := r.fs.cfg.BlockSize
	n := 0
	for n < len(p) && off < r.size {
		bi := int(off / bs)
		bo := off % bs
		r.fs.mu.RLock()
		blk := r.f.blocks[bi]
		// Serve the read from a live replica: when the primary's node is
		// down the read fails over to a surviving copy; when every
		// replica lived on lost nodes the block is gone for good.
		live := -1
		for _, rep := range blk.replicas {
			if !r.fs.down[rep] {
				live = rep
				break
			}
		}
		if live < 0 {
			r.fs.mu.RUnlock()
			return n, &BlockLostError{Path: r.path, Block: bi}
		}
		if len(blk.replicas) > 0 && live != blk.replicas[0] {
			r.fs.ctrFailover.Load().Inc()
		}
		c := copy(p[n:], blk.data[bo:])
		r.fs.mu.RUnlock()
		n += c
		off += int64(c)
	}
	r.fs.bytesRead.Add(int64(n))
	r.fs.ctrRead.Load().Add(int64(n))
	if r.mem {
		r.fs.memBytesRead.Add(int64(n))
		r.fs.ctrMemRead.Load().Add(int64(n))
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.off + offset
	case io.SeekEnd:
		abs = r.size + offset
	default:
		return 0, fmt.Errorf("dfs: invalid seek whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("dfs: negative seek offset %d", abs)
	}
	r.off = abs
	return abs, nil
}

// ReadFile reads the whole file into memory.
func (fs *FileSystem) ReadFile(p string) ([]byte, error) {
	r, err := fs.Open(p)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, r.Size())
	if _, err := io.ReadFull(r, buf); err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return buf, nil
}

// WriteFile writes data to p, replacing any existing file.
func (fs *FileSystem) WriteFile(p string, data []byte) error {
	w, err := fs.CreateOverwrite(p)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// Split is a contiguous byte range of a file handed to one map/O task,
// with the hosts holding replicas of the range's first block.
type Split struct {
	Path   string
	Offset int64
	Length int64
	Hosts  []string
}

// Splits chops the file into splits of at most splitSize bytes, aligned
// to block boundaries as HDFS does (splitSize <= 0 uses the block size).
func (fs *FileSystem) Splits(p string, splitSize int64) ([]Split, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[clean(p)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	if splitSize <= 0 {
		splitSize = fs.cfg.BlockSize
	}
	var splits []Split
	var off int64
	for off < f.size {
		l := splitSize
		if off+l > f.size {
			l = f.size - off
		}
		bi := int(off / fs.cfg.BlockSize)
		blk := f.blocks[bi]
		hosts := make([]string, len(blk.replicas))
		for i, r := range blk.replicas {
			hosts[i] = fs.cfg.Nodes[r]
		}
		splits = append(splits, Split{Path: clean(p), Offset: off, Length: l, Hosts: hosts})
		off += l
	}
	return splits, nil
}

// SectionReader returns a reader restricted to a split's byte range.
func (fs *FileSystem) SectionReader(s Split) (*io.SectionReader, error) {
	r, err := fs.Open(s.Path)
	if err != nil {
		return nil, err
	}
	return io.NewSectionReader(r, s.Offset, s.Length), nil
}
