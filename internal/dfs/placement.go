package dfs

import "math/rand"

// PlacementView is the read-only cluster state a placement policy
// consults: node names, rack labels, liveness, and the current replica
// load. Slices alias live filesystem state — policies must not mutate
// them or retain them past the call.
type PlacementView struct {
	Nodes     []string
	Racks     []string
	Up        []bool
	Load      []int // total replicas per node
	Primaries []int // blocks whose first replica is the node
}

// PlacementPolicy picks replica nodes for a block. Place returns up to
// want distinct UP node indices, excluding the exclude set (a block's
// surviving holders during re-replication). When exclude is empty the
// first returned index is the block's primary. Fewer than want results
// means degraded placement (not enough eligible nodes); policies never
// return a down or excluded node. The RNG is the filesystem's seeded
// generator, so ties break deterministically per (seed, workload).
type PlacementPolicy interface {
	Name() string
	Place(v *PlacementView, want int, exclude []int, rng *rand.Rand) []int
}

// eligible lists the UP nodes outside the exclude set.
func eligible(v *PlacementView, exclude []int) []int {
	ex := make(map[int]bool, len(exclude))
	for _, e := range exclude {
		ex[e] = true
	}
	var out []int
	for i := range v.Nodes {
		if v.Up[i] && !ex[i] {
			out = append(out, i)
		}
	}
	return out
}

// pickMin removes and returns the candidate minimizing score, breaking
// ties with a seeded draw so no node is systematically favored.
func pickMin(cands *[]int, score func(int) int, rng *rand.Rand) int {
	best, ties := 0, 1
	for i := 1; i < len(*cands); i++ {
		a, b := score((*cands)[i]), score((*cands)[best])
		switch {
		case a < b:
			best, ties = i, 1
		case a == b:
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	n := (*cands)[best]
	*cands = append((*cands)[:best], (*cands)[best+1:]...)
	return n
}

// SpreadPolicy is the default placement: the primary goes to the node
// with the fewest primaries (keeping map-task input locality balanced),
// the remaining replicas to the least-loaded nodes. Ties break on total
// load, then on a seeded draw, so balance survives node loss and joins.
type SpreadPolicy struct{}

// Name implements PlacementPolicy.
func (SpreadPolicy) Name() string { return "spread" }

// Place implements PlacementPolicy.
func (SpreadPolicy) Place(v *PlacementView, want int, exclude []int, rng *rand.Rand) []int {
	cands := eligible(v, exclude)
	var out []int
	for len(out) < want && len(cands) > 0 {
		var score func(int) int
		if len(out) == 0 && len(exclude) == 0 {
			// Primary slot: balance primaries first, then load.
			score = func(n int) int { return v.Primaries[n]*1024 + v.Load[n] }
		} else {
			score = func(n int) int { return v.Load[n] }
		}
		out = append(out, pickMin(&cands, score, rng))
	}
	return out
}

// RackAwarePolicy is the HDFS-style placement: first replica on the
// least-loaded node (primaries balanced as in SpreadPolicy), second on
// a different rack, third on the second's rack but a different node,
// any further replicas least-loaded anywhere. With a single rack it
// degenerates to SpreadPolicy.
type RackAwarePolicy struct{}

// Name implements PlacementPolicy.
func (RackAwarePolicy) Name() string { return "rack-aware" }

// Place implements PlacementPolicy.
func (RackAwarePolicy) Place(v *PlacementView, want int, exclude []int, rng *rand.Rand) []int {
	cands := eligible(v, exclude)
	var out []int
	rack := func(n int) string {
		if n < len(v.Racks) {
			return v.Racks[n]
		}
		return "default"
	}
	// Prefer removes and returns the least-loaded candidate satisfying
	// ok, falling back to any candidate when none does (degraded rack
	// diversity beats degraded replication).
	prefer := func(ok func(int) bool, score func(int) int) int {
		var pool []int
		for _, c := range cands {
			if ok(c) {
				pool = append(pool, c)
			}
		}
		if len(pool) == 0 {
			pool = cands
		}
		n := pickMin(&pool, score, rng)
		for i, c := range cands {
			if c == n {
				cands = append(cands[:i], cands[i+1:]...)
				break
			}
		}
		return n
	}
	loadScore := func(n int) int { return v.Load[n] }
	for len(out) < want && len(cands) > 0 {
		switch len(out) {
		case 0:
			if len(exclude) == 0 {
				out = append(out, prefer(func(int) bool { return true },
					func(n int) int { return v.Primaries[n]*1024 + v.Load[n] }))
			} else {
				out = append(out, prefer(func(int) bool { return true }, loadScore))
			}
		case 1:
			r0 := rack(out[0])
			out = append(out, prefer(func(n int) bool { return rack(n) != r0 }, loadScore))
		case 2:
			r1 := rack(out[1])
			out = append(out, prefer(func(n int) bool { return rack(n) == r1 }, loadScore))
		default:
			out = append(out, prefer(func(int) bool { return true }, loadScore))
		}
	}
	return out
}
