package dfs

import (
	"bytes"
	"errors"
	"testing"

	"hivempi/internal/metrics"
	"hivempi/internal/testutil/leakcheck"
)

// The node-loss suite exercises the failure-domain half of the DFS:
// read failover, replica drops on death, the re-replication pipeline
// and the degraded-replication bookkeeping.

func newLossFS() *FileSystem {
	return New(Config{
		BlockSize:   64,
		Replication: 3,
		Nodes:       []string{"n1", "n2", "n3", "n4"},
		Seed:        7,
	})
}

func TestReadFailoverOnSuspect(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newLossFS()
	r := metrics.NewRegistry()
	fs.SetMetrics(r)
	data := bytes.Repeat([]byte("xyz"), 100)
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	// Suspecting the primary of block 0 must leave the file readable
	// through the surviving replicas.
	splits, _ := fs.Splits("/f", 0)
	primary := splits[0].Hosts[0]
	fs.NodeSuspect(primary)
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatalf("read with suspect primary: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read returned wrong bytes")
	}
	if n := r.Counter(metrics.CtrDFSReadFailovers).Value(); n == 0 {
		t.Fatal("failover counter did not move")
	}
	// Recovery clears the detour: no replicas were dropped.
	fs.NodeUp(primary)
	if fs.UnderReplicated() != 0 {
		t.Fatal("suspect/recover dropped replicas")
	}
}

func TestBlockLostWhenAllReplicasDie(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newLossFS()
	r := metrics.NewRegistry()
	fs.SetMetrics(r)
	if err := fs.WriteFile("/g", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	splits, _ := fs.Splits("/g", 0)
	for _, h := range splits[0].Hosts {
		fs.NodeDead(h)
	}
	_, err := fs.ReadFile("/g")
	var lost *BlockLostError
	if !errors.As(err, &lost) {
		t.Fatalf("read of lost block: %v, want BlockLostError", err)
	}
	if lost.Path != "/g" || lost.Block != 0 {
		t.Fatalf("lost = %+v", lost)
	}
	if !errors.Is(err, ErrBlockUnavailable) {
		t.Fatal("BlockLostError does not unwrap to ErrBlockUnavailable")
	}
	if n := r.Counter(metrics.CtrDFSLostBlocks).Value(); n != 1 {
		t.Fatalf("lost-blocks counter = %d, want 1", n)
	}
	// Repair cannot resurrect a block with zero replicas.
	if st := fs.Repair(0); st.Blocks != 0 {
		t.Fatalf("repair copied %d blocks out of nothing", st.Blocks)
	}
}

func TestNodeDeathRepairRestoresFactor(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newLossFS()
	r := metrics.NewRegistry()
	fs.SetMetrics(r)
	fs.SetRepairCharge(func(n int64) float64 { return float64(n) / 1e6 })
	data := make([]byte, 64*40)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile("/big", data); err != nil {
		t.Fatal(err)
	}
	fs.NodeDead("n2")
	under := fs.UnderReplicated()
	if under == 0 {
		t.Fatal("node death left nothing under-replicated")
	}
	if g := r.Gauge(metrics.GaugeDFSUnderRepl).Value(); g != int64(under) {
		t.Fatalf("under-replication gauge = %d, want %d", g, under)
	}

	st := fs.Repair(0)
	if st.Blocks == 0 || st.Bytes == 0 {
		t.Fatalf("repair did nothing: %+v", st)
	}
	if st.Seconds <= 0 {
		t.Fatal("repair charged no virtual time through the hook")
	}
	if fs.UnderReplicated() != 0 {
		t.Fatalf("factor not restored: %d blocks still under-replicated", fs.UnderReplicated())
	}
	if fs.RecoverySeconds() != st.Seconds {
		t.Fatalf("RecoverySeconds = %v, want %v", fs.RecoverySeconds(), st.Seconds)
	}
	if n := r.Counter(metrics.CtrDFSRereplBlocks).Value(); n != st.Blocks {
		t.Fatalf("rereplicated-blocks counter = %d, want %d", n, st.Blocks)
	}

	// No replica may sit on the dead node, and the data is intact.
	fs.mu.RLock()
	deadIdx := fs.nodeIdx["n2"]
	for _, f := range fs.files {
		for _, b := range f.blocks {
			for _, rep := range b.replicas {
				if rep == deadIdx {
					t.Fatal("replica still placed on the dead node")
				}
			}
			if len(b.replicas) != 3 {
				t.Fatalf("block has %d replicas after repair, want 3", len(b.replicas))
			}
		}
	}
	fs.mu.RUnlock()
	got, err := fs.ReadFile("/big")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-repair read mismatch (err=%v)", err)
	}
}

func TestRepairBudgetAndPriority(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newLossFS()
	if err := fs.WriteFile("/b", make([]byte, 64*12)); err != nil {
		t.Fatal(err)
	}
	fs.NodeDead("n1")
	// A budget of ~3 blocks per pass leaves work pending; repeated
	// passes drain it, mimicking the per-heartbeat bandwidth budget.
	passes := 0
	for fs.UnderReplicated() > 0 {
		st := fs.Repair(3 * 64)
		passes++
		if st.Blocks == 0 && st.Pending > 0 {
			t.Fatal("repair stalled with work pending")
		}
		if passes > 20 {
			t.Fatal("repair did not converge")
		}
	}
	if passes < 2 {
		t.Fatalf("budget was not enforced: finished in %d pass(es)", passes)
	}

	// Priority: a block down to one replica repairs before a block
	// missing only one copy.
	fs2 := newLossFS()
	if err := fs2.WriteFile("/p", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := fs2.WriteFile("/q", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	fs2.mu.Lock()
	pb := fs2.files["/p"].blocks[0]
	qb := fs2.files["/q"].blocks[0]
	// Strip /p to a single replica, /q to two, adjusting load so the
	// accounting stays consistent.
	for _, rep := range pb.replicas[1:] {
		fs2.load[rep]--
	}
	pb.replicas = pb.replicas[:1]
	fs2.load[qb.replicas[2]]--
	qb.replicas = qb.replicas[:2]
	items := fs2.underReplicatedLocked()
	fs2.mu.Unlock()
	if len(items) != 2 || items[0].path != "/p" || items[0].live != 1 {
		t.Fatalf("repair order = %+v, want /p (1 live) first", items)
	}
}

// TestPostNodeLossBalance is the satellite companion to
// TestReplicaPlacementBalance: after a death and a full repair the
// survivors carry the replica load evenly.
func TestPostNodeLossBalance(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newLossFS()
	if err := fs.WriteFile("/balance", make([]byte, 64*40)); err != nil {
		t.Fatal(err)
	}
	fs.NodeDead("n3")
	fs.Repair(0)
	// 40 blocks x 3 replicas over 3 survivors -> exactly 40 each with
	// least-loaded placement.
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	for i, name := range fs.cfg.Nodes {
		want := 40
		if name == "n3" {
			want = 0
		}
		if fs.load[i] != want {
			t.Errorf("node %s carries %d replicas after repair, want %d", name, fs.load[i], want)
		}
	}
}

// TestDegradedReplicationTarget pins satellite 2: a replication target
// above the node count is kept, recorded as a degraded gauge, and
// lazily healed when nodes join.
func TestDegradedReplicationTarget(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := New(Config{
		BlockSize:   64,
		Replication: 5,
		Nodes:       []string{"n1", "n2", "n3"},
	})
	r := metrics.NewRegistry()
	fs.SetMetrics(r)
	if g := r.Gauge(metrics.GaugeDFSDegradedRepl).Value(); g != 2 {
		t.Fatalf("degraded gauge = %d, want 2 (target 5, 3 nodes)", g)
	}
	if err := fs.WriteFile("/d", make([]byte, 64*4)); err != nil {
		t.Fatal(err)
	}
	if fs.UnderReplicated() != 4 {
		t.Fatalf("UnderReplicated = %d, want every block short of 5", fs.UnderReplicated())
	}
	// Repair without new nodes cannot help (Pending reported)...
	if st := fs.Repair(0); st.Blocks != 0 || st.Pending != 4 {
		t.Fatalf("degraded repair = %+v, want 0 copies, 4 pending", st)
	}
	// ...but joining nodes heals lazily.
	fs.AddNode("n4", "")
	fs.AddNode("n5", "")
	if g := r.Gauge(metrics.GaugeDFSDegradedRepl).Value(); g != 0 {
		t.Fatalf("degraded gauge = %d after joins, want 0", g)
	}
	if st := fs.Repair(0); st.Blocks != 8 {
		t.Fatalf("post-join repair copied %d replicas, want 8 (2 x 4 blocks)", st.Blocks)
	}
	if fs.UnderReplicated() != 0 {
		t.Fatal("factor not restored after joins")
	}
}

func TestWritesSkipDownNodes(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newLossFS()
	fs.NodeSuspect("n4")
	if err := fs.WriteFile("/w", make([]byte, 64*8)); err != nil {
		t.Fatal(err)
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	i4 := fs.nodeIdx["n4"]
	for _, b := range fs.files["/w"].blocks {
		for _, rep := range b.replicas {
			if rep == i4 {
				t.Fatal("block placed on a down node")
			}
		}
	}
}

func TestWriteFailsWithNoLiveNodes(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newLossFS()
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		fs.NodeDead(n)
	}
	err := fs.WriteFile("/dead", make([]byte, 64))
	if !errors.Is(err, ErrNoLiveNodes) {
		t.Fatalf("write with zero up nodes: %v, want ErrNoLiveNodes", err)
	}
}

func TestSeededPlacementDeterminism(t *testing.T) {
	defer leakcheck.Check(t)()
	place := func(seed int64) [][]string {
		fs := New(Config{BlockSize: 64, Replication: 2, Nodes: []string{"a", "b", "c", "d"}, Seed: seed})
		if err := fs.WriteFile("/f", make([]byte, 64*16)); err != nil {
			t.Fatal(err)
		}
		splits, _ := fs.Splits("/f", 0)
		out := make([][]string, len(splits))
		for i, s := range splits {
			out[i] = s.Hosts
		}
		return out
	}
	a, b := place(3), place(3)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("same seed placed differently at block %d", i)
			}
		}
	}
}

func TestRackAwarePolicy(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := New(Config{
		BlockSize:   64,
		Replication: 3,
		Nodes:       []string{"r1n1", "r1n2", "r2n1", "r2n2"},
		Racks:       []string{"r1", "r1", "r2", "r2"},
		Policy:      RackAwarePolicy{},
	})
	if err := fs.WriteFile("/rack", make([]byte, 64*12)); err != nil {
		t.Fatal(err)
	}
	rackOf := map[string]string{"r1n1": "r1", "r1n2": "r1", "r2n1": "r2", "r2n2": "r2"}
	splits, _ := fs.Splits("/rack", 0)
	for i, s := range splits {
		racks := map[string]bool{}
		for _, h := range s.Hosts {
			racks[rackOf[h]] = true
		}
		if len(racks) < 2 {
			t.Fatalf("block %d replicas %v sit in a single rack", i, s.Hosts)
		}
		// HDFS-style: second and third replica share the remote rack.
		if rackOf[s.Hosts[1]] != rackOf[s.Hosts[2]] {
			t.Errorf("block %d: second/third replica on different racks %v", i, s.Hosts)
		}
		if rackOf[s.Hosts[0]] == rackOf[s.Hosts[1]] {
			t.Errorf("block %d: first/second replica share rack %v", i, s.Hosts)
		}
	}
	// Rack-aware repair: kill one node, factor restored while still
	// spanning racks when possible.
	fs.NodeDead("r2n1")
	fs.Repair(0)
	if fs.UnderReplicated() != 0 {
		t.Fatal("rack-aware repair did not restore the factor")
	}
}
