package dfs

import "sort"

// This file is the node-loss half of the DFS: liveness transitions fed
// by the cluster membership watcher (NodeSuspect / NodeDead / NodeUp /
// AddNode) and the re-replication pipeline (Repair) that restores the
// replication factor after a node dies. All state lives under fs.mu;
// nothing here calls out while holding it, preserving the documented
// fs.mu -> tierMu -> store.mu lock order.

// RepairStats summarizes one Repair pass.
type RepairStats struct {
	Blocks  int64   // replicas copied
	Bytes   int64   // bytes streamed for those copies
	Seconds float64 // virtual seconds charged through SetRepairCharge
	Pending int     // under-replicated blocks still waiting (budget ran out)
}

// NodeSuspect marks the node temporarily unavailable: reads fail over
// to other replicas and writes skip it, but its replicas are kept — a
// suspect node usually comes back.
func (fs *FileSystem) NodeSuspect(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if i, ok := fs.nodeIdx[name]; ok {
		fs.down[i] = true
		fs.publishHealthLocked()
	}
}

// NodeUp marks the node available again (suspicion cleared, or a fresh
// node joining — unknown names are added to the cluster).
func (fs *FileSystem) NodeUp(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	i, ok := fs.nodeIdx[name]
	if !ok {
		i = fs.addNodeLocked(name, "default")
	}
	fs.down[i] = false
	fs.publishHealthLocked()
}

// NodeDead declares the node permanently lost: every replica it held
// is dropped from the block map. Blocks that lose their last replica
// are gone (reads return BlockLostError); the rest become
// under-replicated until Repair restores the factor.
func (fs *FileSystem) NodeDead(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	i, ok := fs.nodeIdx[name]
	if !ok {
		return
	}
	fs.down[i] = true
	var lost int64
	for _, f := range fs.files {
		for _, b := range f.blocks {
			for k := 0; k < len(b.replicas); k++ {
				if b.replicas[k] != i {
					continue
				}
				if k == 0 {
					fs.primaries[i]--
					if len(b.replicas) > 1 {
						// A surviving replica inherits the primary role.
						fs.primaries[b.replicas[1]]++
					}
				}
				b.replicas = append(b.replicas[:k], b.replicas[k+1:]...)
				fs.load[i]--
				k--
			}
			if len(b.replicas) == 0 {
				lost++
			}
		}
	}
	if lost > 0 {
		fs.ctrLostBlocks.Load().Add(lost)
	}
	fs.publishHealthLocked()
}

// AddNode grows the cluster with a fresh, empty UP node (rack optional,
// "" = default). Existing under-replicated blocks can then be repaired
// onto it — the lazy re-replication path for a Replication target that
// exceeded the original node count.
func (fs *FileSystem) AddNode(name, rack string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if rack == "" {
		rack = "default"
	}
	if i, ok := fs.nodeIdx[name]; ok {
		fs.down[i] = false
	} else {
		fs.addNodeLocked(name, rack)
	}
	fs.publishHealthLocked()
}

func (fs *FileSystem) addNodeLocked(name, rack string) int {
	i := len(fs.cfg.Nodes)
	fs.cfg.Nodes = append(fs.cfg.Nodes, name)
	fs.cfg.Racks = append(fs.cfg.Racks, rack)
	fs.nodeIdx[name] = i
	fs.down = append(fs.down, false)
	fs.load = append(fs.load, 0)
	fs.primaries = append(fs.primaries, 0)
	return i
}

// NodeNames returns the node names in index order (dead nodes included;
// indices are stable for the filesystem's lifetime).
func (fs *FileSystem) NodeNames() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return append([]string{}, fs.cfg.Nodes...)
}

// UnderReplicated counts blocks whose live replica count is below the
// replication target (lost blocks — zero replicas — excluded; they are
// unrecoverable and counted by dfs.lost.blocks instead).
func (fs *FileSystem) UnderReplicated() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.underReplicatedLocked())
}

// RecoverySeconds returns the cumulative virtual seconds Repair has
// charged through the SetRepairCharge hook.
func (fs *FileSystem) RecoverySeconds() float64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.recoverySec
}

type repairItem struct {
	b    *block
	live int
	path string
	idx  int
}

// underReplicatedLocked scans the block map for blocks needing copies,
// ordered most-endangered first (fewest live replicas), then by path
// and block index so the repair order is deterministic.
func (fs *FileSystem) underReplicatedLocked() []repairItem {
	var items []repairItem
	for p, f := range fs.files {
		for bi, b := range f.blocks {
			if len(b.replicas) == 0 || len(b.replicas) >= fs.cfg.Replication {
				continue
			}
			items = append(items, repairItem{b: b, live: len(b.replicas), path: p, idx: bi})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].live != items[j].live {
			return items[i].live < items[j].live
		}
		if items[i].path != items[j].path {
			return items[i].path < items[j].path
		}
		return items[i].idx < items[j].idx
	})
	return items
}

func (fs *FileSystem) upCountLocked() int {
	n := 0
	for _, d := range fs.down {
		if !d {
			n++
		}
	}
	return n
}

// publishHealthLocked refreshes the degraded-replication and
// under-replication gauges after a liveness or topology change.
func (fs *FileSystem) publishHealthLocked() {
	short := fs.cfg.Replication - fs.upCountLocked()
	if short < 0 {
		short = 0
	}
	fs.gDegraded.Load().Set(int64(short))
	fs.gUnderRepl.Load().Set(int64(len(fs.underReplicatedLocked())))
}

// Repair runs one re-replication pass: under-replicated blocks are
// copied onto fresh UP nodes (most-endangered first) until the factor
// is restored or budgetBytes is spent (<= 0 = unlimited). Each copy
// streams one replica's bytes, priced into virtual seconds through the
// SetRepairCharge hook; counters and the under-replication gauge are
// updated. The pass is idempotent — with no failed nodes it is a no-op.
func (fs *FileSystem) Repair(budgetBytes int64) RepairStats {
	charge := fs.repairChargeFn()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var st RepairStats
	items := fs.underReplicatedLocked()
	for n, it := range items {
		if budgetBytes > 0 && st.Bytes >= budgetBytes {
			st.Pending = len(items) - n
			break
		}
		want := fs.cfg.Replication - len(it.b.replicas)
		got := fs.cfg.Policy.Place(fs.placementViewLocked(), want, it.b.replicas, fs.rng)
		for _, g := range got {
			it.b.replicas = append(it.b.replicas, g)
			fs.load[g]++
			st.Blocks++
			st.Bytes += int64(len(it.b.data))
		}
		if len(it.b.replicas) < fs.cfg.Replication {
			st.Pending++ // not enough eligible nodes yet (degraded target)
		}
	}
	if st.Bytes > 0 {
		fs.ctrRereplBlk.Load().Add(st.Blocks)
		fs.ctrRereplBytes.Load().Add(st.Bytes)
		if charge != nil {
			st.Seconds = charge(st.Bytes)
			fs.recoverySec += st.Seconds
		}
	}
	fs.gUnderRepl.Load().Set(int64(len(fs.underReplicatedLocked())))
	return st
}
