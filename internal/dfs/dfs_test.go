package dfs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"hivempi/internal/chaos"
	"hivempi/internal/testutil/leakcheck"
)

func newTestFS() *FileSystem {
	return New(Config{
		BlockSize:   64,
		Replication: 3,
		Nodes:       []string{"n1", "n2", "n3", "n4"},
	})
}

func TestWriteReadRoundTrip(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	data := bytes.Repeat([]byte("hello dfs "), 50) // 500 bytes > several blocks
	if err := fs.WriteFile("/a/b.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/a/b.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: got %d bytes want %d", len(got), len(data))
	}
	sz, err := fs.Size("/a/b.txt")
	if err != nil || sz != int64(len(data)) {
		t.Errorf("Size = %d, %v; want %d", sz, err, len(data))
	}
}

func TestCreateExistsAndOverwrite(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	if err := fs.WriteFile("/f", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/f"); !errors.Is(err, ErrExists) {
		t.Errorf("Create over existing file: err = %v, want ErrExists", err)
	}
	if err := fs.WriteFile("/f", []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/f")
	if string(got) != "two" {
		t.Errorf("overwrite produced %q", got)
	}
}

func TestOpenMissing(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	if _, err := fs.Open("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if _, err := fs.Size("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size err = %v, want ErrNotFound", err)
	}
}

func TestListAndDeleteDir(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	for _, p := range []string{"/w/x/1", "/w/x/2", "/w/y/3", "/z"} {
		if err := fs.WriteFile(p, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List("/w/x")
	if len(got) != 2 || got[0] != "/w/x/1" || got[1] != "/w/x/2" {
		t.Errorf("List(/w/x) = %v", got)
	}
	fs.DeleteDir("/w")
	if len(fs.List("/w")) != 0 {
		t.Error("DeleteDir left files behind")
	}
	if !fs.Exists("/z") {
		t.Error("DeleteDir removed unrelated file")
	}
}

func TestRename(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	if err := fs.WriteFile("/src", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/src") {
		t.Error("src still exists after rename")
	}
	got, _ := fs.ReadFile("/dst")
	if string(got) != "payload" {
		t.Errorf("dst content %q", got)
	}
	if err := fs.Rename("/missing", "/x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("rename missing: %v", err)
	}
}

func TestSplitsAlignAndCover(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	data := make([]byte, 300) // block size 64 -> 5 blocks
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile("/big", data); err != nil {
		t.Fatal(err)
	}
	splits, err := fs.Splits("/big", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 5 {
		t.Fatalf("got %d splits, want 5", len(splits))
	}
	var covered int64
	for i, s := range splits {
		if s.Offset != covered {
			t.Errorf("split %d offset %d, want %d", i, s.Offset, covered)
		}
		covered += s.Length
		if len(s.Hosts) != 3 {
			t.Errorf("split %d has %d hosts, want 3 (replication)", i, len(s.Hosts))
		}
	}
	if covered != 300 {
		t.Errorf("splits cover %d bytes, want 300", covered)
	}
	// Reading each split via SectionReader reconstructs the file.
	var rebuilt []byte
	for _, s := range splits {
		sr, err := fs.SectionReader(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(sr)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt = append(rebuilt, b...)
	}
	if !bytes.Equal(rebuilt, data) {
		t.Error("section readers do not reconstruct the file")
	}
}

func TestReplicaPlacementBalance(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	data := make([]byte, 64*40)
	if err := fs.WriteFile("/balance", data); err != nil {
		t.Fatal(err)
	}
	splits, _ := fs.Splits("/balance", 0)
	counts := map[string]int{}
	for _, s := range splits {
		counts[s.Hosts[0]]++
	}
	// 40 blocks round-robin over 4 nodes -> 10 primaries each.
	for node, c := range counts {
		if c != 10 {
			t.Errorf("node %s has %d primary replicas, want 10", node, c)
		}
	}
}

func TestReaderSeek(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	if err := fs.WriteFile("/s", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("/s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Seek(4, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 3)
	if _, err := io.ReadFull(r, b); err != nil || string(b) != "456" {
		t.Errorf("seek-read got %q, %v", b, err)
	}
	if _, err := r.Seek(-2, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(r)
	if string(b2) != "89" {
		t.Errorf("SeekEnd read %q", b2)
	}
	if _, err := r.Seek(-100, io.SeekStart); err == nil {
		t.Error("negative seek should fail")
	}
}

func TestCounters(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	if err := fs.WriteFile("/c", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if fs.BytesWritten() != 100 {
		t.Errorf("BytesWritten = %d", fs.BytesWritten())
	}
	if _, err := fs.ReadFile("/c"); err != nil {
		t.Fatal(err)
	}
	if fs.BytesRead() != 100 {
		t.Errorf("BytesRead = %d", fs.BytesRead())
	}
}

func TestWriteAfterClose(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	w, err := fs.Create("/wc")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after close should fail")
	}
	if err := w.Close(); err != nil {
		t.Error("double close should be a no-op")
	}
}

func TestPropertyRoundTripArbitrary(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := New(Config{BlockSize: 17, Nodes: []string{"a", "b"}})
	i := 0
	f := func(data []byte) bool {
		i++
		p := "/p/" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + "-" + itoa(i)
		if err := fs.WriteFile(p, data); err != nil {
			return false
		}
		got, err := fs.ReadFile(p)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestInjectReadFault(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	if err := fs.WriteFile("/flaky", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	fs.InjectReadFault("/flaky", 2)
	for i := 0; i < 2; i++ {
		if _, err := fs.ReadFile("/flaky"); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("read %d: err = %v, want injected fault", i, err)
		}
	}
	got, err := fs.ReadFile("/flaky")
	if err != nil || string(got) != "payload" {
		t.Errorf("read after faults exhausted: %q, %v", got, err)
	}
	// Other files are unaffected.
	if err := fs.WriteFile("/solid", []byte("x")); err != nil {
		t.Fatal(err)
	}
	fs.InjectReadFault("/flaky", 1)
	if _, err := fs.ReadFile("/solid"); err != nil {
		t.Errorf("unrelated file affected: %v", err)
	}
}

func TestInjectWriteFault(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	fs.InjectWriteFault("/out", 2)
	for i := 0; i < 2; i++ {
		if err := fs.WriteFile("/out", []byte("payload")); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("write %d: err = %v, want injected fault", i, err)
		}
		// Injected writes must also surface the uniform chaos sentinel.
		if err := fs.WriteFile("/other", []byte("x")); err != nil {
			t.Fatalf("unrelated write failed: %v", err)
		}
		fs.InjectWriteFault("/other", 0) // Count<=0 arms one firing
		if err := fs.WriteFile("/other", []byte("x")); !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("chaos.ErrInjected not matched: %v", err)
		}
	}
	if err := fs.WriteFile("/out", []byte("payload")); err != nil {
		t.Fatalf("write after faults exhausted: %v", err)
	}
	got, err := fs.ReadFile("/out")
	if err != nil || string(got) != "payload" {
		t.Errorf("content after recovery: %q, %v", got, err)
	}
}

// TestSetChaosPlane drives faults through an externally armed plan and
// verifies reads and writes consult it.
func TestSetChaosPlane(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := newTestFS()
	if err := fs.WriteFile("/warehouse/t/part-0", []byte("rows")); err != nil {
		t.Fatal(err)
	}
	plane := chaos.NewPlane(chaos.Plan{Seed: 1, Specs: []chaos.Spec{
		{Kind: chaos.DFSRead, Path: "/warehouse/*", Count: 1},
		{Kind: chaos.DFSWrite, Path: "/tmp/*", Count: 1},
	}})
	fs.SetChaos(plane)
	if _, err := fs.ReadFile("/warehouse/t/part-0"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("read fault did not fire: %v", err)
	}
	if err := fs.WriteFile("/tmp/spill-0", []byte("x")); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("write fault did not fire: %v", err)
	}
	if plane.Fired(chaos.DFSRead) != 1 || plane.Fired(chaos.DFSWrite) != 1 {
		t.Errorf("fired counters: read=%d write=%d",
			plane.Fired(chaos.DFSRead), plane.Fired(chaos.DFSWrite))
	}
	// Detach: no further faults fire.
	fs.SetChaos(nil)
	fs.SetChaos(chaos.NewPlane(chaos.Plan{Specs: []chaos.Spec{{Kind: chaos.DFSRead}}}))
	fs.SetChaos(nil)
	if _, err := fs.ReadFile("/warehouse/t/part-0"); err != nil {
		t.Errorf("read after detach: %v", err)
	}
}
