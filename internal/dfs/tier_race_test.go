package dfs

import (
	"fmt"
	"sync"
	"testing"

	"hivempi/internal/imstore"
	"hivempi/internal/testutil/leakcheck"
)

// TestCloseVsDeleteNoBudgetLeak is the regression test for the
// Writer.Close / Delete lock split: admission used to happen outside
// the namespace lock, so a Delete racing a Close could remove the file
// and release its (not yet existing) reservation, then lose to the
// admission — leaving a deleted, unreachable path resident and its
// budget leaked. Run under -race.
func TestCloseVsDeleteNoBudgetLeak(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := New(Config{BlockSize: 1 << 10, Nodes: []string{"a", "b"}})
	store := imstore.New(1 << 30)
	store.AddRoot("/tmp/x")
	fs.SetMemTier(store)

	for i := 0; i < 500; i++ {
		p := fmt.Sprintf("/tmp/x/f%d", i)
		w, err := fs.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = w.Close()
		}()
		go func() {
			defer wg.Done()
			fs.Delete(p)
		}()
		wg.Wait()
		if !fs.Exists(p) && store.Resident(p) {
			t.Fatalf("iteration %d: deleted path %s still memory-resident", i, p)
		}
		fs.Delete(p)
	}
	if st := store.Stats(); st.Used != 0 || st.Files != 0 {
		t.Fatalf("tier budget leaked after deleting every file: %+v", st)
	}
}

// TestRenameVsDeleteDirNoBudgetLeak is the regression test for the
// Rename lock split: the namespace move and the residency move used to
// run in two critical sections, so a DeleteDir covering the rename
// destination could interleave — releasing paths it found in the
// namespace, then losing to Rename's re-admission of the destination —
// leaving a deleted path resident forever. Run under -race.
func TestRenameVsDeleteDirNoBudgetLeak(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := New(Config{BlockSize: 1 << 10, Nodes: []string{"a", "b"}})
	store := imstore.New(1 << 30)
	store.AddRoot("/tmp/x")
	fs.SetMemTier(store)

	for i := 0; i < 100; i++ {
		src := fmt.Sprintf("/tmp/x/a/f%d", i)
		dst := fmt.Sprintf("/tmp/x/b/f%d", i)
		if err := fs.WriteFile(src, make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
		if !store.Resident(src) {
			t.Fatalf("iteration %d: %s not admitted", i, src)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			// Ping-pong across the directory the deleter is wiping;
			// ErrNotFound is fine once the delete wins.
			for k := 0; k < 200; k++ {
				_ = fs.Rename(src, dst)
				_ = fs.Rename(dst, src)
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			for k := 0; k < 200; k++ {
				fs.DeleteDir("/tmp/x/b")
			}
		}()
		close(start)
		wg.Wait()
		fs.DeleteDir("/tmp/x")
		if st := store.Stats(); st.Used != 0 || st.Files != 0 {
			t.Fatalf("iteration %d: tier budget leaked: %+v", i, st)
		}
	}
}

// TestConcurrentAdmitReleaseStress drives every tier-mutating DFS
// operation from concurrent goroutines over a shared store and checks
// that the budget balances once the namespace is emptied. This is the
// -race exerciser for the fs.mu -> tierMu -> store.mu lock ordering.
func TestConcurrentAdmitReleaseStress(t *testing.T) {
	defer leakcheck.Check(t)()
	fs := New(Config{BlockSize: 1 << 10, Nodes: []string{"a", "b", "c"}})
	store := imstore.New(64 << 10) // small budget: admissions and rejections mix
	store.AddRoot("/tmp/x")
	fs.SetMemTier(store)

	const workers = 8
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := fmt.Sprintf("/tmp/x/w%d/f%d", wkr, i)
				if err := fs.WriteFile(p, make([]byte, 700)); err != nil {
					t.Error(err)
					return
				}
				switch i % 3 {
				case 0:
					fs.Delete(p)
				case 1:
					_ = fs.Rename(p, fmt.Sprintf("/tmp/x/w%d/r%d", wkr, i))
				case 2:
					fs.DeleteDir(fmt.Sprintf("/tmp/x/w%d", wkr))
				}
			}
		}(wkr)
	}
	wg.Wait()
	fs.DeleteDir("/tmp/x")
	if st := store.Stats(); st.Used != 0 || st.Files != 0 {
		t.Fatalf("tier budget leaked under stress: %+v", st)
	}
}
