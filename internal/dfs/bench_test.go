package dfs

import (
	"testing"

	"hivempi/internal/imstore"
)

func benchFS() *FileSystem {
	return New(Config{
		BlockSize:   64 << 10,
		Replication: 3,
		Nodes:       []string{"s1", "s2", "s3"},
	})
}

// benchReadWrite writes one intermediate-sized file and reads it back,
// the per-stage pattern of the shuffle sink / next-stage scan path.
func benchReadWrite(b *testing.B, fs *FileSystem) {
	b.Helper()
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	buf := make([]byte, len(payload))
	b.SetBytes(int64(2 * len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := fs.CreateOverwrite("/tmp/hive/q1/part-00000")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Write(payload); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		r, err := fs.Open("/tmp/hive/q1/part-00000")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteReadDiskTier(b *testing.B) {
	benchReadWrite(b, benchFS())
}

func BenchmarkWriteReadMemTier(b *testing.B) {
	fs := benchFS()
	s := imstore.New(64 << 20)
	s.AddRoot("/tmp/hive")
	fs.SetMemTier(s)
	benchReadWrite(b, fs)
	if fs.MemBytesWritten() == 0 {
		b.Fatal("memory tier never admitted the file")
	}
}
