package core

import "embed"

// Source embeds this package's implementation for the productivity
// analysis (paper Table III counts the code the DataMPI plug-in adds).
//
//go:embed *.go
var Source embed.FS
