package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"hivempi/internal/dfs"
	"hivempi/internal/exec"
	"hivempi/internal/mrengine"
	"hivempi/internal/storage"
	"hivempi/internal/types"
)

func testEnv() *exec.Env {
	return &exec.Env{FS: dfs.New(dfs.Config{
		BlockSize: 4 << 10,
		Nodes:     []string{"slave1", "slave2", "slave3"},
	})}
}

func testConf(t *testing.T) exec.EngineConf {
	conf := exec.DefaultEngineConf()
	conf.SpillDir = t.TempDir()
	conf.Slaves = []string{"slave1", "slave2", "slave3"}
	conf.SlotsPerNode = 2
	return conf
}

func writeTable(t *testing.T, env *exec.Env, path string, schema *types.Schema,
	rows []types.Row) exec.TableInput {
	t.Helper()
	w, err := storage.CreateTableFile(env.FS, path, storage.FormatText, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return exec.TableInput{Table: path, Paths: []string{path},
		Format: storage.FormatText, Schema: schema}
}

func sortRows(rows []types.Row) {
	sort.Slice(rows, func(i, j int) bool {
		a := types.EncodeKey(nil, rows[i], nil)
		b := types.EncodeKey(nil, rows[j], nil)
		return string(a) < string(b)
	})
}

func rowsText(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Text('|')
	}
	return out
}

// runBoth executes the stage on both engines and requires identical
// result sets (the plug-in property: same plan, same answer).
func runBoth(t *testing.T, mkStage func() *exec.Stage, env *exec.Env, conf exec.EngineConf) []types.Row {
	t.Helper()
	engines := []exec.Engine{New(), mrengine.New()}
	var results [][]types.Row
	for _, eng := range engines {
		res, err := eng.Run(env, mkStage(), conf)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		rows := res.Rows
		sortRows(rows)
		results = append(results, rows)
		if res.Trace == nil || res.Trace.Engine != eng.Name() {
			t.Errorf("%s: trace missing or mislabeled", eng.Name())
		}
	}
	a, b := rowsText(results[0]), rowsText(results[1])
	if len(a) != len(b) {
		t.Fatalf("datampi %d rows, hadoop %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs:\n  datampi: %s\n  hadoop:  %s", i, a[i], b[i])
		}
	}
	return results[0]
}

func groupByStage(in exec.TableInput) *exec.Stage {
	return &exec.Stage{
		ID: "gb",
		Maps: []exec.MapWork{{
			Input: in,
			Ops: []exec.MapOp{&exec.GroupByPartialOp{
				Keys: []exec.Expr{&exec.ColRef{Idx: 0}},
				Aggs: []exec.AggSpec{
					{Kind: exec.AggSum, Arg: &exec.ColRef{Idx: 1}},
					{Kind: exec.AggCountStar},
				},
			}},
			Keys:   []exec.Expr{&exec.ColRef{Idx: 0}},
			Values: []exec.Expr{&exec.ColRef{Idx: 1}, &exec.ColRef{Idx: 2}},
		}},
		Shuffle: &exec.ShuffleSpec{NumReducers: 3},
		Reduce: &exec.ReduceWork{
			KeyKinds: []types.Kind{types.KindString},
			Op: &exec.GroupByReduce{Aggs: []exec.AggSpec{
				{Kind: exec.AggSum, Arg: &exec.ColRef{Idx: 1}},
				{Kind: exec.AggCountStar},
			}},
		},
		Collect: true,
	}
}

func TestEnginesAgreeOnGroupBy(t *testing.T) {
	env := testEnv()
	conf := testConf(t)
	var rows []types.Row
	want := map[string]int64{}
	counts := map[string]int64{}
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("ip-%d", i%37)
		v := int64(i % 101)
		rows = append(rows, types.Row{types.String(k), types.Int(v)})
		want[k] += v
		counts[k]++
	}
	schema := types.NewSchema(types.Col("k", types.KindString), types.Col("v", types.KindInt))
	in := writeTable(t, env, "/gb/src", schema, rows)
	got := runBoth(t, func() *exec.Stage { return groupByStage(in) }, env, conf)
	if len(got) != 37 {
		t.Fatalf("got %d groups, want 37", len(got))
	}
	for _, r := range got {
		k := r[0].Str()
		if r[1].Int() != want[k] || r[2].Int() != counts[k] {
			t.Errorf("group %s = (%d,%d), want (%d,%d)",
				k, r[1].Int(), r[2].Int(), want[k], counts[k])
		}
	}
}

func TestEnginesAgreeOnJoin(t *testing.T) {
	env := testEnv()
	conf := testConf(t)
	left := make([]types.Row, 0, 500)
	right := make([]types.Row, 0, 200)
	for i := 0; i < 500; i++ {
		left = append(left, types.Row{types.Int(int64(i % 50)), types.String(fmt.Sprintf("L%d", i))})
	}
	for i := 0; i < 200; i++ {
		right = append(right, types.Row{types.Int(int64(i % 80)), types.Float(float64(i))})
	}
	ls := types.NewSchema(types.Col("k", types.KindInt), types.Col("lv", types.KindString))
	rs := types.NewSchema(types.Col("k", types.KindInt), types.Col("rv", types.KindFloat))
	lin := writeTable(t, env, "/j/left", ls, left)
	rin := writeTable(t, env, "/j/right", rs, right)
	mk := func() *exec.Stage {
		return &exec.Stage{
			ID: "join",
			Maps: []exec.MapWork{
				{
					Input:  lin,
					Tag:    0,
					Keys:   []exec.Expr{&exec.ColRef{Idx: 0}},
					Values: []exec.Expr{&exec.ColRef{Idx: 0}, &exec.ColRef{Idx: 1}},
				},
				{
					Input:  rin,
					Tag:    1,
					Keys:   []exec.Expr{&exec.ColRef{Idx: 0}},
					Values: []exec.Expr{&exec.ColRef{Idx: 1}},
				},
			},
			Shuffle: &exec.ShuffleSpec{NumReducers: 2},
			Reduce: &exec.ReduceWork{
				KeyKinds: []types.Kind{types.KindInt},
				Op: &exec.JoinReduce{
					TagCount:    2,
					ValueWidths: []int{2, 1},
					JoinTypes:   []exec.JoinType{exec.JoinInner},
				},
			},
			Collect: true,
		}
	}
	got := runBoth(t, mk, env, conf)
	// Expected inner join size: keys 0..49 on the left; right has keys
	// 0..79. Left key k appears 10 times, right key k appears 200/80
	// times (2 or 3: keys < 40 appear 3 times... compute directly).
	rightCount := map[int64]int{}
	for _, r := range right {
		rightCount[r[0].Int()]++
	}
	wantRows := 0
	for _, l := range left {
		wantRows += rightCount[l[0].Int()]
	}
	if len(got) != wantRows {
		t.Errorf("join produced %d rows, want %d", len(got), wantRows)
	}
}

func TestEnginesAgreeOnOrderByLimit(t *testing.T) {
	env := testEnv()
	conf := testConf(t)
	var rows []types.Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, types.Row{types.Int(int64((i * 7919) % 1000)), types.String(fmt.Sprintf("r%d", i))})
	}
	schema := types.NewSchema(types.Col("v", types.KindInt), types.Col("s", types.KindString))
	in := writeTable(t, env, "/ob/src", schema, rows)
	mk := func() *exec.Stage {
		return &exec.Stage{
			ID: "orderby",
			Maps: []exec.MapWork{{
				Input:  in,
				Keys:   []exec.Expr{&exec.ColRef{Idx: 0}},
				Values: []exec.Expr{&exec.ColRef{Idx: 0}, &exec.ColRef{Idx: 1}},
			}},
			Shuffle: &exec.ShuffleSpec{NumReducers: 1, SortDescs: []bool{true}},
			Reduce: &exec.ReduceWork{
				KeyKinds: []types.Kind{types.KindInt},
				KeyDescs: []bool{true},
				Op:       &exec.ExtractReduce{ValueWidth: 2},
				Limit:    5,
			},
			Collect:   true,
			LastStage: true,
		}
	}
	// Run each engine separately to check ordering (runBoth sorts).
	for _, eng := range []exec.Engine{New(), mrengine.New()} {
		res, err := eng.Run(env, mk(), conf)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("%s: limit produced %d rows", eng.Name(), len(res.Rows))
		}
		for i := 0; i < len(res.Rows)-1; i++ {
			if res.Rows[i][0].Int() < res.Rows[i+1][0].Int() {
				t.Errorf("%s: rows not descending at %d: %v then %v",
					eng.Name(), i, res.Rows[i], res.Rows[i+1])
			}
		}
		if res.Rows[0][0].Int() != 999 {
			t.Errorf("%s: top row %v, want key 999", eng.Name(), res.Rows[0])
		}
	}
}

func TestMapOnlyStageWithSink(t *testing.T) {
	env := testEnv()
	conf := testConf(t)
	var rows []types.Row
	for i := 0; i < 300; i++ {
		rows = append(rows, types.Row{types.Int(int64(i)), types.String("x")})
	}
	schema := types.NewSchema(types.Col("v", types.KindInt), types.Col("s", types.KindString))
	in := writeTable(t, env, "/mo/src", schema, rows)
	outSchema := types.NewSchema(types.Col("v", types.KindInt))
	mk := func(dir string) *exec.Stage {
		return &exec.Stage{
			ID: "maponly",
			Maps: []exec.MapWork{{
				Input: in,
				Ops: []exec.MapOp{
					&exec.FilterOp{Cond: &exec.Cmp{Op: exec.CmpLT,
						L: &exec.ColRef{Idx: 0}, R: &exec.Const{D: types.Int(100)}}},
					&exec.SelectOp{Exprs: []exec.Expr{&exec.ColRef{Idx: 0}}},
				},
			}},
			Sink: &exec.FileSinkSpec{Dir: dir, Format: storage.FormatText, Schema: outSchema},
		}
	}
	for _, eng := range []exec.Engine{New(), mrengine.New()} {
		dir := "/out/" + eng.Name()
		res, err := eng.Run(env, mk(dir), conf)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		total := 0
		for _, p := range env.FS.List(dir) {
			rows, err := storage.ReadAll(env.FS, p, storage.FormatText, outSchema)
			if err != nil {
				t.Fatal(err)
			}
			total += len(rows)
		}
		if total != 100 {
			t.Errorf("%s: sink holds %d rows, want 100", eng.Name(), total)
		}
		if res.Trace.NumReds != 0 {
			t.Errorf("%s: map-only stage has %d reducers", eng.Name(), res.Trace.NumReds)
		}
	}
}

func TestEnhancedParallelismGeometry(t *testing.T) {
	env := testEnv()
	conf := testConf(t)
	conf.Parallelism = exec.ParallelismEnhanced
	var rows []types.Row
	for i := 0; i < 2000; i++ {
		rows = append(rows, types.Row{types.String(fmt.Sprintf("k%d", i%11)), types.Int(1)})
	}
	schema := types.NewSchema(types.Col("k", types.KindString), types.Col("v", types.KindInt))
	in := writeTable(t, env, "/ep/src", schema, rows)
	res, err := New().Run(env, groupByStage(in), conf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumReds != res.Trace.NumMaps {
		t.Errorf("enhanced: A=%d O=%d, want equal", res.Trace.NumReds, res.Trace.NumMaps)
	}
	// Last stage forces a single reducer.
	st := groupByStage(in)
	st.LastStage = true
	res2, err := New().Run(env, st, conf)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace.NumReds != 1 {
		t.Errorf("enhanced last stage: A=%d, want 1", res2.Trace.NumReds)
	}
}

func TestBlockingStyleProducesSameResults(t *testing.T) {
	env := testEnv()
	conf := testConf(t)
	conf.NonBlocking = false
	var rows []types.Row
	want := map[string]int64{}
	for i := 0; i < 1500; i++ {
		k := fmt.Sprintf("k%d", i%13)
		rows = append(rows, types.Row{types.String(k), types.Int(int64(i))})
		want[k] += int64(i)
	}
	schema := types.NewSchema(types.Col("k", types.KindString), types.Col("v", types.KindInt))
	in := writeTable(t, env, "/bl/src", schema, rows)
	res, err := New().Run(env, groupByStage(in), conf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 {
		t.Fatalf("blocking run got %d groups", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].Int() != want[r[0].Str()] {
			t.Errorf("group %s sum %d want %d", r[0].Str(), r[1].Int(), want[r[0].Str()])
		}
	}
	if res.Trace.NonBlocking {
		t.Error("trace should record blocking style")
	}
}

// TestDataMPIWorkDescriptor verifies the serialized work flow of §IV-B:
// the engine uploads plan/conf/splits to the DFS, tasks deserialize
// their split assignment from it, and the launch command is recorded.
func TestDataMPIWorkDescriptor(t *testing.T) {
	env := testEnv()
	conf := testConf(t)
	var rows []types.Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, types.Row{types.String(fmt.Sprintf("k%d", i%5)), types.Int(1)})
	}
	schema := types.NewSchema(types.Col("k", types.KindString), types.Col("v", types.KindInt))
	in := writeTable(t, env, "/wk/src", schema, rows)
	res, err := New().Run(env, groupByStage(in), conf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d groups via deserialized splits, want 5", len(res.Rows))
	}
	cmd := res.Trace.LaunchCommand
	for _, want := range []string{"mpidrun", "-O ", "-A ", "DataMPIHiveApplication",
		"-plan", "-jobconf", "-split"} {
		if !strings.Contains(cmd, want) {
			t.Errorf("launch command missing %q: %s", want, cmd)
		}
	}
	// Descriptor is cleaned up after the job.
	if left := env.FS.List("/tmp/datampi"); len(left) != 0 {
		t.Errorf("work descriptors leaked: %v", left)
	}
}
