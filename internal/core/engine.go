// Package core is the paper's primary contribution: Hive on DataMPI.
// It plugs the DataMPI bipartite communication library underneath the
// Hive compiler as a drop-in execution engine — the DataMPITask /
// DataMPICollector design of §IV-B:
//
//   - each plan stage becomes one DataMPI job; map-side operator trees
//     run inside O tasks, with the DataMPICollector forwarding every
//     produced pair through MPI_D_Send;
//   - A tasks receive, cache and merge intermediate data concurrently
//     with the O phase, then drive ExecReducer-style reduce trees over
//     the grouped iterator;
//   - the engine exposes the paper's tuning surface:
//     hive.datampi.parallelism (default/enhanced),
//     hive.datampi.memusedpercent, hive.datampi.sendqueue, and the
//     blocking/non-blocking shuffle styles.
package core

import (
	"fmt"
	"io"
	"sync"

	"hivempi/internal/datampi"
	"hivempi/internal/exec"
	"hivempi/internal/metrics"
	"hivempi/internal/trace"
	"hivempi/internal/types"
)

// engine wiring for the serialized DataMPIWork flow lives in work.go.

// Engine executes stages on DataMPI.
type Engine struct{}

var _ exec.Engine = (*Engine)(nil)

// New returns the engine.
func New() *Engine { return &Engine{} }

// Name implements exec.Engine.
func (e *Engine) Name() string { return "datampi" }

// Run implements exec.Engine. It is the DataMPITask.execute() analogue:
// it derives the O/A geometry from the splits and the parallelism
// strategy, spawns the bipartite job (the mpidrun launch of the paper)
// and wires the operator trees into both sides.
func (e *Engine) Run(env *exec.Env, stage *exec.Stage, conf exec.EngineConf) (*exec.StageResult, error) {
	if err := stage.Validate(); err != nil {
		return nil, err
	}
	tasks, err := exec.PlanMapTasks(env, stage, conf)
	if err != nil {
		return nil, err
	}
	inputBytes := exec.SizingBytes(stage, tasks)
	numA := exec.ReducerCount(stage, conf, len(tasks), inputBytes)
	ad := conf.Adaptation
	if ad.Repartitions() {
		// The adapt runtime re-sized the consumer side from the
		// producer's observed partition bytes; the planned count is
		// superseded wholesale.
		numA = ad.NumTargets
	}

	if stage.Shuffle == nil {
		return e.runWithRetries(env, stage, conf, func(attempt int) (*trace.Stage, []types.Row, error) {
			return e.runMapOnly(env, stage, conf, tasks, attempt)
		})
	}

	// Serialize the DataMPIWork (plan + jobconf + splits) to the DFS;
	// every CommonProcess deserializes it before entering its MPI_D
	// context (paper §IV-B). The descriptor is written once: retries
	// reuse the same rank->split assignment, which is what makes the
	// per-rank O-task checkpoints replayable.
	workPath, cmdline, err := writeWork(env, stage, conf, tasks, numA)
	if err != nil {
		return nil, err
	}
	defer cleanupWork(env, stage.ID)
	var (
		workOnce sync.Once
		work     *DataMPIWork
		workErr  error
	)
	loadWork := func() (*DataMPIWork, error) {
		workOnce.Do(func() { work, workErr = readWork(env, workPath) })
		return work, workErr
	}

	numKeys := len(stage.Maps[0].Keys)
	partKeys := stage.Shuffle.PartitionKeys

	// Host assignment per attempt. O tasks keep their planned locality
	// and A ranks round-robin over conf.Slaves (or take the adapt
	// runtime's skew-aware placement), but every attempt — including
	// the first — fails placement over to a surviving node when the
	// membership already knows the planned host is not UP. liveHost is
	// a no-op on a healthy cluster; skipping it on attempt 1 used to
	// make a cached plan re-executed after a node death (with the
	// default single-attempt budget) land ranks on the dead host and
	// fail outright instead of rescheduling.
	attemptHosts := func() []string {
		hosts := make([]string, 0, len(tasks)+numA)
		for _, t := range tasks {
			hosts = append(hosts, liveHost(env, t.Host, t.Split.Hosts))
		}
		for i := 0; i < numA; i++ {
			h := ad.HostFor(i)
			if h == "" && len(conf.Slaves) > 0 {
				h = conf.Slaves[i%len(conf.Slaves)]
			}
			hosts = append(hosts, liveHost(env, h, conf.Slaves))
		}
		return hosts
	}

	return e.runWithRetries(env, stage, conf, func(attempt int) (*trace.Stage, []types.Row, error) {
		// Each attempt is a fresh bipartite world: an MPI transport
		// failure is fatal to its communicator, so recovery means
		// relaunching the job, not patching the old one.
		hosts := attemptHosts()
		sinks := newShardedRows(numA)
		job, err := datampi.NewJob(datampi.Config{
			NumO: len(tasks),
			NumA: numA,
			Partitioner: func(key []byte, n int) int {
				if ad.Repartitions() {
					return ad.Partition(key, partKeys, numKeys)
				}
				return exec.PartitionForKey(key, partKeys, numKeys, n)
			},
			SendBufferBytes: conf.SendBufferBytes,
			SendQueueSize:   conf.SendQueueSize,
			MemUsedPercent:  conf.MemUsedPercent,
			TaskMemoryBytes: conf.TaskMemoryBytes,
			NonBlocking:     conf.NonBlocking,
			SpillDir:        conf.SpillDir,
			Hosts:           hosts,
			Chaos:           env.Chaos,
			Metrics:         env.Metrics,
		})
		if err != nil {
			return nil, nil, err
		}

		// The O body is the DataMPIHiveApplication map path: deserialize
		// the work, look up this rank's split, then run the ExecMapper
		// with the DataMPICollector as terminal operator. On retries a
		// committed checkpoint replaces the map work entirely.
		oBody := func(o *datampi.OContext) error {
			m := o.Metrics()
			m.Attempts = attempt
			if err := env.Chaos.TaskCrash(stage.ID, "o", o.Rank()); err != nil {
				return err
			}
			if h := hosts[o.Rank()]; !env.NodeUp(h) {
				return fmt.Errorf("%w: O rank %d on %s (stage %s)", exec.ErrNodeLost, o.Rank(), h, stage.ID)
			}
			if attempt > 1 {
				if meta, pairs, ok := readCheckpoint(env, stage.ID, o.Rank()); ok {
					m.Recovered = true
					env.Metrics.Counter(metrics.CtrCheckpointReplays).Inc()
					// Restore the salvaged attempt's input counters so
					// the perfmodel prices that work once, not zero times.
					m.InputBytes = meta.InputBytes
					m.InputRecords = meta.InputRecords
					for _, p := range pairs {
						m.OutputRecords++
						m.OutputBytes += int64(len(p.Key) + len(p.Value))
						if err := o.Send(p.Key, p.Value); err != nil {
							return err
						}
					}
					return nil
				}
			}
			exec.ApplyStraggler(m, env.Chaos.StragglerDelay(stage.ID, "o", o.Rank()), conf)
			w, err := loadWork()
			if err != nil {
				return err
			}
			split, mapIdx, err := w.splitFor(o.Rank())
			if err != nil {
				return err
			}
			var rec checkpointRecorder
			send := func(k, v []byte) error {
				rec.record(k, v)
				return o.Send(k, v)
			}
			if err := exec.RunMapTask(env, conf, stage, mapIdx, split, send, nil, m); err != nil {
				return err
			}
			// Commit even when the task emitted nothing, so a retry
			// knows this split completed and skips it.
			rec.commit(env, stage.ID, o.Rank(), m)
			return nil
		}
		// The A body feeds the grouped iterator into the ExecReducer tree.
		aBody := func(a *datampi.AContext) error {
			m := a.Metrics()
			m.Attempts = attempt
			if err := env.Chaos.TaskCrash(stage.ID, "a", a.Rank()); err != nil {
				return err
			}
			if h := hosts[len(tasks)+a.Rank()]; !env.NodeUp(h) {
				return fmt.Errorf("%w: A rank %d on %s (stage %s)", exec.ErrNodeLost, a.Rank(), h, stage.ID)
			}
			if ad.MarkPredictive(a.Rank()) {
				// Predicted-heavy partition on a suspect/slow node: the
				// backup copy is already racing this one, so a straggler
				// here is cut at the predictive detection latency.
				m.PredictiveSpec = true
			}
			exec.ApplyStraggler(m, env.Chaos.StragglerDelay(stage.ID, "a", a.Rank()), conf)
			out, closer, err := exec.BuildTaskOutput(env, stage, a.Rank(), sinks.sink(a.Rank()))
			if err != nil {
				return err
			}
			driver, err := exec.NewReduceDriver(env, stage.Reduce, out, m)
			if err != nil {
				return err
			}
			for {
				key, vals, err := a.NextGroup()
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
				if err := driver.Feed(key, vals); err != nil {
					return err
				}
				if driver.LimitReached() {
					break
				}
			}
			if err := driver.Close(); err != nil {
				return err
			}
			return closer()
		}

		if err := job.Run(oBody, aBody); err != nil {
			return nil, nil, fmt.Errorf("datampi stage %s: %w", stage.ID, err)
		}

		st := &trace.Stage{
			Name:           stage.ID,
			Engine:         e.Name(),
			NumMaps:        len(tasks),
			NumReds:        numA,
			Producers:      job.OMetrics(),
			Consumers:      job.AMetrics(),
			Comm:           job.Comm(),
			NonBlocking:    conf.NonBlocking,
			MemUsedPercent: conf.MemUsedPercent,
			SendQueueSize:  conf.SendQueueSize,
			LaunchCommand:  cmdline,
			Vectorized:     conf.Vectorized,
		}
		if ad != nil {
			st.AdaptSplit = ad.SplitParts
			st.AdaptFused = ad.FusedParts
			st.AdaptSec = ad.PlanCostSec
		}
		for i, m := range st.Producers {
			m.LocalRead = tasks[i].Local
		}
		exec.FillSinkWriteBytes(env, stage, st)
		return st, sinks.rows(), nil
	})
}

// shardedRows collects rows from concurrently running tasks without a
// shared lock: each task appends to its own shard, and the shards are
// merged in task order when the attempt completes. The collected rows
// are exclusively owned by their producer (readers return fresh rows
// per record and every operator emits newly built rows), so no
// defensive Clone is taken.
type shardedRows struct {
	shards [][]types.Row
}

func newShardedRows(n int) *shardedRows {
	return &shardedRows{shards: make([][]types.Row, n)}
}

// sink returns task i's private collector.
func (s *shardedRows) sink(i int) exec.RowSink {
	return func(r types.Row) error {
		s.shards[i] = append(s.shards[i], r)
		return nil
	}
}

// rows merges the shards in task order.
func (s *shardedRows) rows() []types.Row {
	total := 0
	for _, sh := range s.shards {
		total += len(sh)
	}
	if total == 0 {
		return nil
	}
	out := make([]types.Row, 0, total)
	for _, sh := range s.shards {
		out = append(out, sh...)
	}
	return out
}

// retryBackoffBase is the first virtual-time retry delay; subsequent
// attempts back off exponentially (2s, 4s, 8s, ...).
const retryBackoffBase = 2.0

// liveHost returns h when the membership considers it schedulable,
// otherwise the first UP fallback, otherwise "" (run hostless — the
// relaunched world places the rank wherever capacity remains).
func liveHost(env *exec.Env, h string, fallbacks []string) string {
	if env.NodeUp(h) {
		return h
	}
	for _, f := range fallbacks {
		if f != "" && env.NodeUp(f) {
			return f
		}
	}
	return ""
}

// runWithRetries executes attempts of one stage until success or the
// conf.MaxTaskAttempts budget is spent. Every attempt builds a fresh
// sharded row collector (partial rows from failed attempts are
// discarded) and the stage sink is wiped between attempts; recovery
// costs — exponential backoff and injected message delay — are recorded
// on the stage trace for the perfmodel to charge.
func (e *Engine) runWithRetries(env *exec.Env, stage *exec.Stage, conf exec.EngineConf,
	run func(attempt int) (*trace.Stage, []types.Row, error)) (*exec.StageResult, error) {
	attempts := conf.MaxTaskAttempts
	if attempts < 1 {
		attempts = 1
	}
	var backoff, chaosDelay float64
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		st, rows, err := run(attempt)
		chaosDelay += env.Chaos.DrainVirtualDelay()
		if err == nil {
			st.Attempts = attempt
			st.RetryBackoffSec = backoff
			st.ChaosDelaySec = chaosDelay
			// Fold exactly once per successful stage — failed attempts'
			// partial traces are discarded with their rows.
			metrics.FoldStage(env.Metrics, st)
			return &exec.StageResult{Trace: st, Rows: rows}, nil
		}
		lastErr = err
		// Wipe partial sink output so the retry (or a driver-level
		// engine fallback) starts from a clean slate.
		resetStageSink(env, stage)
		if attempt < attempts {
			backoff += retryBackoffBase * float64(int(1)<<(attempt-1))
		}
	}
	return nil, lastErr
}

// resetStageSink removes the stage's partial output files; only this
// stage writes under its sink directory.
func resetStageSink(env *exec.Env, stage *exec.Stage) {
	if stage.Sink != nil && stage.Sink.Dir != "" {
		env.FS.DeleteDir(stage.Sink.Dir)
	}
}

// runMapOnly executes one attempt of a map-only stage: O tasks run
// under a slot semaphore with no A side (DataMPI spawns only the O
// communicator).
func (e *Engine) runMapOnly(env *exec.Env, stage *exec.Stage, conf exec.EngineConf,
	tasks []exec.MapTaskSpec, attempt int) (*trace.Stage, []types.Row, error) {
	taskMetrics := make([]*trace.Task, len(tasks))
	errs := make([]error, len(tasks))
	sinks := newShardedRows(len(tasks))
	sem := make(chan struct{}, conf.MaxSlots())
	var wg sync.WaitGroup
	for i := range tasks {
		// Fail dead planned hosts over on every attempt (no-op while the
		// planned host is UP), mirroring attemptHosts above.
		host := liveHost(env, tasks[i].Host, tasks[i].Split.Hosts)
		taskMetrics[i] = &trace.Task{ID: i, Kind: trace.KindOTask, Attempts: attempt,
			Host: host, CollectSizes: trace.NewSizeHistogram()}
		wg.Add(1)
		go func(i int, host string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := env.Chaos.TaskCrash(stage.ID, "o", i); err != nil {
				errs[i] = err
				return
			}
			if !env.NodeUp(host) {
				errs[i] = fmt.Errorf("%w: O rank %d on %s (stage %s)", exec.ErrNodeLost, i, host, stage.ID)
				return
			}
			exec.ApplyStraggler(taskMetrics[i], env.Chaos.StragglerDelay(stage.ID, "o", i), conf)
			out, closer, err := exec.BuildTaskOutput(env, stage, i, sinks.sink(i))
			if err != nil {
				errs[i] = err
				return
			}
			if err := exec.RunMapTask(env, conf, stage, tasks[i].MapIdx, tasks[i].Split,
				nil, out, taskMetrics[i]); err != nil {
				errs[i] = err
				return
			}
			errs[i] = closer()
		}(i, host)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("datampi map-only stage %s: %w", stage.ID, err)
		}
	}
	st := &trace.Stage{
		Name:       stage.ID,
		Engine:     e.Name(),
		NumMaps:    len(tasks),
		Producers:  taskMetrics,
		Vectorized: conf.Vectorized,
	}
	for i, m := range st.Producers {
		m.LocalRead = tasks[i].Local
	}
	exec.FillSinkWriteBytes(env, stage, st)
	return st, sinks.rows(), nil
}
