// Package core is the paper's primary contribution: Hive on DataMPI.
// It plugs the DataMPI bipartite communication library underneath the
// Hive compiler as a drop-in execution engine — the DataMPITask /
// DataMPICollector design of §IV-B:
//
//   - each plan stage becomes one DataMPI job; map-side operator trees
//     run inside O tasks, with the DataMPICollector forwarding every
//     produced pair through MPI_D_Send;
//   - A tasks receive, cache and merge intermediate data concurrently
//     with the O phase, then drive ExecReducer-style reduce trees over
//     the grouped iterator;
//   - the engine exposes the paper's tuning surface:
//     hive.datampi.parallelism (default/enhanced),
//     hive.datampi.memusedpercent, hive.datampi.sendqueue, and the
//     blocking/non-blocking shuffle styles.
package core

import (
	"fmt"
	"io"
	"sync"

	"hivempi/internal/datampi"
	"hivempi/internal/exec"
	"hivempi/internal/trace"
	"hivempi/internal/types"
)

// engine wiring for the serialized DataMPIWork flow lives in work.go.

// Engine executes stages on DataMPI.
type Engine struct{}

var _ exec.Engine = (*Engine)(nil)

// New returns the engine.
func New() *Engine { return &Engine{} }

// Name implements exec.Engine.
func (e *Engine) Name() string { return "datampi" }

// Run implements exec.Engine. It is the DataMPITask.execute() analogue:
// it derives the O/A geometry from the splits and the parallelism
// strategy, spawns the bipartite job (the mpidrun launch of the paper)
// and wires the operator trees into both sides.
func (e *Engine) Run(env *exec.Env, stage *exec.Stage, conf exec.EngineConf) (*exec.StageResult, error) {
	if err := stage.Validate(); err != nil {
		return nil, err
	}
	tasks, err := exec.PlanMapTasks(env, stage, conf)
	if err != nil {
		return nil, err
	}
	inputBytes := exec.SizingBytes(stage, tasks)
	numA := exec.ReducerCount(stage, conf, len(tasks), inputBytes)

	var mu sync.Mutex
	var rows []types.Row
	collect := func(r types.Row) error {
		mu.Lock()
		defer mu.Unlock()
		rows = append(rows, r.Clone())
		return nil
	}

	if stage.Shuffle == nil {
		return e.runMapOnly(env, stage, conf, tasks, collect, &rows)
	}

	// Serialize the DataMPIWork (plan + jobconf + splits) to the DFS;
	// every CommonProcess deserializes it before entering its MPI_D
	// context (paper §IV-B).
	workPath, cmdline, err := writeWork(env, stage, conf, tasks, numA)
	if err != nil {
		return nil, err
	}
	defer cleanupWork(env, stage.ID)
	var (
		workOnce sync.Once
		work     *DataMPIWork
		workErr  error
	)
	loadWork := func() (*DataMPIWork, error) {
		workOnce.Do(func() { work, workErr = readWork(env, workPath) })
		return work, workErr
	}

	numKeys := len(stage.Maps[0].Keys)
	partKeys := stage.Shuffle.PartitionKeys

	hosts := make([]string, 0, len(tasks)+numA)
	for _, t := range tasks {
		hosts = append(hosts, t.Host)
	}
	for i := 0; i < numA; i++ {
		if len(conf.Slaves) > 0 {
			hosts = append(hosts, conf.Slaves[i%len(conf.Slaves)])
		} else {
			hosts = append(hosts, "")
		}
	}

	job, err := datampi.NewJob(datampi.Config{
		NumO: len(tasks),
		NumA: numA,
		Partitioner: func(key []byte, n int) int {
			return exec.PartitionForKey(key, partKeys, numKeys, n)
		},
		SendBufferBytes: conf.SendBufferBytes,
		SendQueueSize:   conf.SendQueueSize,
		MemUsedPercent:  conf.MemUsedPercent,
		TaskMemoryBytes: conf.TaskMemoryBytes,
		NonBlocking:     conf.NonBlocking,
		SpillDir:        conf.SpillDir,
		Hosts:           hosts,
	})
	if err != nil {
		return nil, err
	}

	// The O body is the DataMPIHiveApplication map path: deserialize
	// the work, look up this rank's split, then run the ExecMapper with
	// the DataMPICollector as terminal operator.
	oBody := func(o *datampi.OContext) error {
		w, err := loadWork()
		if err != nil {
			return err
		}
		split, mapIdx, err := w.splitFor(o.Rank())
		if err != nil {
			return err
		}
		return exec.RunMapTask(env, stage, mapIdx, split, o.Send, nil, o.Metrics())
	}
	// The A body feeds the grouped iterator into the ExecReducer tree.
	aBody := func(a *datampi.AContext) error {
		out, closer, err := exec.BuildTaskOutput(env, stage, a.Rank(), collect)
		if err != nil {
			return err
		}
		driver, err := exec.NewReduceDriver(env, stage.Reduce, out, a.Metrics())
		if err != nil {
			return err
		}
		for {
			key, vals, err := a.NextGroup()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := driver.Feed(key, vals); err != nil {
				return err
			}
			if driver.LimitReached() {
				break
			}
		}
		if err := driver.Close(); err != nil {
			return err
		}
		return closer()
	}

	if err := job.Run(oBody, aBody); err != nil {
		return nil, fmt.Errorf("datampi stage %s: %w", stage.ID, err)
	}

	st := &trace.Stage{
		Name:           stage.ID,
		Engine:         e.Name(),
		NumMaps:        len(tasks),
		NumReds:        numA,
		Producers:      job.OMetrics(),
		Consumers:      job.AMetrics(),
		NonBlocking:    conf.NonBlocking,
		MemUsedPercent: conf.MemUsedPercent,
		SendQueueSize:  conf.SendQueueSize,
		LaunchCommand:  cmdline,
	}
	for i, m := range st.Producers {
		m.LocalRead = tasks[i].Local
	}
	fillWriteBytes(env, stage, st)
	return &exec.StageResult{Trace: st, Rows: rows}, nil
}

// runMapOnly executes a map-only stage: O tasks run under a slot
// semaphore with no A side (DataMPI spawns only the O communicator).
func (e *Engine) runMapOnly(env *exec.Env, stage *exec.Stage, conf exec.EngineConf,
	tasks []exec.MapTaskSpec, collect exec.RowSink, rows *[]types.Row) (*exec.StageResult, error) {
	metrics := make([]*trace.Task, len(tasks))
	errs := make([]error, len(tasks))
	sem := make(chan struct{}, conf.MaxSlots())
	var wg sync.WaitGroup
	for i := range tasks {
		metrics[i] = &trace.Task{ID: i, Kind: trace.KindOTask,
			Host: tasks[i].Host, CollectSizes: trace.NewSizeHistogram()}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out, closer, err := exec.BuildTaskOutput(env, stage, i, collect)
			if err != nil {
				errs[i] = err
				return
			}
			if err := exec.RunMapTask(env, stage, tasks[i].MapIdx, tasks[i].Split,
				nil, out, metrics[i]); err != nil {
				errs[i] = err
				return
			}
			errs[i] = closer()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("datampi map-only stage %s: %w", stage.ID, err)
		}
	}
	st := &trace.Stage{
		Name:      stage.ID,
		Engine:    e.Name(),
		NumMaps:   len(tasks),
		Producers: metrics,
	}
	for i, m := range st.Producers {
		m.LocalRead = tasks[i].Local
	}
	fillWriteBytes(env, stage, st)
	return &exec.StageResult{Trace: st, Rows: *rows}, nil
}

// fillWriteBytes attributes sink part-file sizes to their tasks.
func fillWriteBytes(env *exec.Env, stage *exec.Stage, st *trace.Stage) {
	if stage.Sink == nil {
		return
	}
	owner := st.Consumers
	if len(owner) == 0 {
		owner = st.Producers
	}
	for i, t := range owner {
		path := fmt.Sprintf("%s/part-%05d", stage.Sink.Dir, i)
		if sz, err := env.FS.Size(path); err == nil {
			t.WriteBytes = sz
		}
	}
}
