package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"hivempi/internal/dfs"
	"hivempi/internal/exec"
)

// DataMPIWork is the serialized job description of the paper's §IV-B:
// before launching, DataMPITask.execute() writes the plan, the job
// configuration and the split assignments to the DFS, and passes their
// location to the spawned CommonProcess instances on the mpidrun
// command line. Each task deserializes the work before entering its
// MPI_D context.
type DataMPIWork struct {
	StageID string          `json:"stageId"`
	NumO    int             `json:"numO"`
	NumA    int             `json:"numA"`
	Conf    WorkConf        `json:"conf"`
	Splits  []WorkSplit     `json:"splits"`
	MapWork []WorkOperators `json:"mapWork"`
	Reduce  string          `json:"reduce,omitempty"`
}

// WorkConf is the hive.datampi.* configuration snapshot.
type WorkConf struct {
	Parallelism    string  `json:"hive.datampi.parallelism"`
	MemUsedPercent float64 `json:"hive.datampi.memusedpercent"`
	SendQueueSize  int     `json:"hive.datampi.sendqueue"`
	NonBlocking    bool    `json:"hive.datampi.nonblocking"`
}

// WorkSplit is one O task's input assignment.
type WorkSplit struct {
	Rank   int    `json:"rank"`
	MapIdx int    `json:"mapIdx"`
	Path   string `json:"path"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
	Host   string `json:"host"`
}

// WorkOperators summarizes one map work's operator chain.
type WorkOperators struct {
	Table     string   `json:"table"`
	Format    string   `json:"format"`
	Operators []string `json:"operators"`
}

// workDir is where serialized work descriptors live on the DFS.
const workDir = "/tmp/datampi"

// writeWork serializes the stage onto the DFS (the DataMPIWork /
// jobconf / split upload of the paper) and returns its path plus the
// equivalent mpidrun launch line recorded for diagnostics.
func writeWork(env *exec.Env, stage *exec.Stage, conf exec.EngineConf,
	tasks []exec.MapTaskSpec, numA int) (string, string, error) {
	work := DataMPIWork{
		StageID: stage.ID,
		NumO:    len(tasks),
		NumA:    numA,
		Conf: WorkConf{
			Parallelism:    string(conf.Parallelism),
			MemUsedPercent: conf.MemUsedPercent,
			SendQueueSize:  conf.SendQueueSize,
			NonBlocking:    conf.NonBlocking,
		},
	}
	for rank, t := range tasks {
		work.Splits = append(work.Splits, WorkSplit{
			Rank: rank, MapIdx: t.MapIdx,
			Path: t.Split.Path, Offset: t.Split.Offset, Length: t.Split.Length,
			Host: t.Host,
		})
	}
	for _, mw := range stage.Maps {
		ops := make([]string, 0, len(mw.Ops)+1)
		for _, op := range mw.Ops {
			ops = append(ops, op.String())
		}
		if mw.Keys != nil {
			ops = append(ops, fmt.Sprintf("ReduceSink[tag=%d]", mw.Tag))
		}
		work.MapWork = append(work.MapWork, WorkOperators{
			Table:     mw.Input.Table,
			Format:    mw.Input.Format.String(),
			Operators: ops,
		})
	}
	if stage.Reduce != nil {
		work.Reduce = stage.Reduce.Op.String()
	}
	data, err := json.MarshalIndent(&work, "", "  ")
	if err != nil {
		return "", "", err
	}
	path := fmt.Sprintf("%s/%s/work.json", workDir, stage.ID)
	if err := env.FS.WriteFile(path, data); err != nil {
		return "", "", fmt.Errorf("core: serialize DataMPIWork: %w", err)
	}
	cmdline := fmt.Sprintf(
		"mpidrun -f hostfile -O %d -A %d -jar hive-datampi.jar DataMPIHiveApplication "+
			"-plan %s -jobconf %s -split %s",
		len(tasks), numA, path, path, path)
	return path, cmdline, nil
}

// readWork deserializes a work descriptor (each CommonProcess does this
// before executing its O/A task).
func readWork(env *exec.Env, path string) (*DataMPIWork, error) {
	data, err := env.FS.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read DataMPIWork: %w", err)
	}
	var work DataMPIWork
	if err := json.Unmarshal(data, &work); err != nil {
		return nil, fmt.Errorf("core: decode DataMPIWork: %w", err)
	}
	return &work, nil
}

// splitFor reconstructs rank's assigned split from the descriptor.
func (w *DataMPIWork) splitFor(rank int) (dfs.Split, int, error) {
	if rank < 0 || rank >= len(w.Splits) {
		return dfs.Split{}, 0, fmt.Errorf("core: rank %d has no split in %s", rank, w.StageID)
	}
	s := w.Splits[rank]
	if s.Rank != rank {
		return dfs.Split{}, 0, fmt.Errorf("core: split table corrupt at rank %d", rank)
	}
	return dfs.Split{Path: s.Path, Offset: s.Offset, Length: s.Length,
		Hosts: []string{s.Host}}, s.MapIdx, nil
}

// cleanupWork removes the stage's descriptor after the job.
func cleanupWork(env *exec.Env, stageID string) {
	env.FS.DeleteDir(workDir + "/" + strings.TrimSpace(stageID))
}
