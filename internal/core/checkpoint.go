package core

import (
	"encoding/binary"
	"fmt"

	"hivempi/internal/exec"
	"hivempi/internal/kvio"
	"hivempi/internal/metrics"
	"hivempi/internal/trace"
)

// O-task checkpoints make stage retry cheap: a completed O task persists
// the exact key-value stream it sent to the A side under the stage's
// work directory, and a retry replays that stream instead of re-reading
// the split and re-running the operator tree. Commit is atomic
// (tmp-write + rename), so a torn checkpoint from a crashed attempt is
// never replayed. Checkpoints live next to the DataMPIWork descriptor
// and are removed with it by cleanupWork.

// maxCheckpointBytes bounds one task's checkpoint; tasks emitting more
// simply skip checkpointing and re-run on retry.
const maxCheckpointBytes = 64 << 20

// checkpointMeta preserves the original attempt's input-side counters.
// A replay re-sends pairs without re-reading the split, so without
// these the salvaged read/compute work would vanish from the trace and
// the perfmodel would price a recovered run below a clean one.
type checkpointMeta struct {
	InputBytes   int64
	InputRecords int64
}

// checkpointPath is where rank's O-task checkpoint lives on the DFS.
func checkpointPath(stageID string, rank int) string {
	return fmt.Sprintf("%s/%s/ckpt-o-%05d", workDir, stageID, rank)
}

// checkpointRecorder accumulates one O task's emitted pairs as a single
// flat kvio-encoded buffer: one append per pair on the shuffle hot
// path, instead of two per-pair clone allocations.
type checkpointRecorder struct {
	buf       []byte
	bytes     int64
	oversized bool
}

// record appends one emitted pair (copying, since the engine may reuse
// the key/value buffers).
func (r *checkpointRecorder) record(k, v []byte) {
	if r.oversized {
		return
	}
	r.bytes += int64(len(k) + len(v))
	if r.bytes > maxCheckpointBytes {
		r.oversized = true
		r.buf = nil
		return
	}
	r.buf = kvio.AppendKV(r.buf, k, v)
}

// commit publishes the checkpoint atomically; failures are swallowed
// (checkpointing is best-effort — without one the task just re-runs).
// The task's metrics supply the input counters preserved for replay.
func (r *checkpointRecorder) commit(env *exec.Env, stageID string, rank int, m *trace.Task) {
	if r.oversized {
		return
	}
	meta := checkpointMeta{InputBytes: m.InputBytes, InputRecords: m.InputRecords}
	path := checkpointPath(stageID, rank)
	tmp := path + ".tmp"
	data := make([]byte, 0, 2*binary.MaxVarintLen64+len(r.buf))
	data = binary.AppendUvarint(data, uint64(meta.InputBytes))
	data = binary.AppendUvarint(data, uint64(meta.InputRecords))
	data = append(data, r.buf...)
	if err := env.FS.WriteFile(tmp, data); err != nil {
		env.FS.Delete(tmp)
		return
	}
	if err := env.FS.Rename(tmp, path); err == nil {
		env.Metrics.Counter(metrics.CtrCheckpointCommits).Inc()
		env.Metrics.Counter(metrics.CtrCheckpointBytes).Add(int64(len(data)))
	}
}

// readCheckpoint loads rank's committed checkpoint, if one exists and
// decodes cleanly. The returned pairs alias the loaded buffer.
func readCheckpoint(env *exec.Env, stageID string, rank int) (checkpointMeta, []kvio.KV, bool) {
	data, err := env.FS.ReadFile(checkpointPath(stageID, rank))
	if err != nil {
		return checkpointMeta{}, nil, false
	}
	var meta checkpointMeta
	ib, n := binary.Uvarint(data)
	if n <= 0 {
		return checkpointMeta{}, nil, false
	}
	data = data[n:]
	ir, n := binary.Uvarint(data)
	if n <= 0 {
		return checkpointMeta{}, nil, false
	}
	data = data[n:]
	meta.InputBytes, meta.InputRecords = int64(ib), int64(ir)
	pairs, err := kvio.DecodeAll(data)
	if err != nil {
		return checkpointMeta{}, nil, false
	}
	return meta, pairs, true
}
