package core

import (
	"encoding/binary"
	"fmt"

	"hivempi/internal/exec"
	"hivempi/internal/trace"
)

// O-task checkpoints make stage retry cheap: a completed O task persists
// the exact key-value stream it sent to the A side under the stage's
// work directory, and a retry replays that stream instead of re-reading
// the split and re-running the operator tree. Commit is atomic
// (tmp-write + rename), so a torn checkpoint from a crashed attempt is
// never replayed. Checkpoints live next to the DataMPIWork descriptor
// and are removed with it by cleanupWork.

// maxCheckpointBytes bounds one task's checkpoint; tasks emitting more
// simply skip checkpointing and re-run on retry.
const maxCheckpointBytes = 64 << 20

type kvPair struct{ K, V []byte }

// checkpointMeta preserves the original attempt's input-side counters.
// A replay re-sends pairs without re-reading the split, so without
// these the salvaged read/compute work would vanish from the trace and
// the perfmodel would price a recovered run below a clean one.
type checkpointMeta struct {
	InputBytes   int64
	InputRecords int64
}

// checkpointPath is where rank's O-task checkpoint lives on the DFS.
func checkpointPath(stageID string, rank int) string {
	return fmt.Sprintf("%s/%s/ckpt-o-%05d", workDir, stageID, rank)
}

// checkpointRecorder accumulates one O task's emitted pairs.
type checkpointRecorder struct {
	pairs     []kvPair
	bytes     int64
	oversized bool
}

// record copies one emitted pair (the engine may reuse buffers).
func (r *checkpointRecorder) record(k, v []byte) {
	if r.oversized {
		return
	}
	r.bytes += int64(len(k) + len(v))
	if r.bytes > maxCheckpointBytes {
		r.oversized = true
		r.pairs = nil
		return
	}
	r.pairs = append(r.pairs, kvPair{
		K: append([]byte(nil), k...),
		V: append([]byte(nil), v...),
	})
}

// commit publishes the checkpoint atomically; failures are swallowed
// (checkpointing is best-effort — without one the task just re-runs).
// The task's metrics supply the input counters preserved for replay.
func (r *checkpointRecorder) commit(env *exec.Env, stageID string, rank int, m *trace.Task) {
	if r.oversized {
		return
	}
	meta := checkpointMeta{InputBytes: m.InputBytes, InputRecords: m.InputRecords}
	path := checkpointPath(stageID, rank)
	tmp := path + ".tmp"
	if err := env.FS.WriteFile(tmp, encodePairs(meta, r.pairs)); err != nil {
		env.FS.Delete(tmp)
		return
	}
	_ = env.FS.Rename(tmp, path)
}

// readCheckpoint loads rank's committed checkpoint, if one exists and
// decodes cleanly.
func readCheckpoint(env *exec.Env, stageID string, rank int) (checkpointMeta, []kvPair, bool) {
	data, err := env.FS.ReadFile(checkpointPath(stageID, rank))
	if err != nil {
		return checkpointMeta{}, nil, false
	}
	meta, pairs, err := decodePairs(data)
	if err != nil {
		return checkpointMeta{}, nil, false
	}
	return meta, pairs, true
}

// encodePairs serializes the meta header (input bytes, input records)
// then uvarint count and length-prefixed key/value bytes.
func encodePairs(meta checkpointMeta, pairs []kvPair) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(meta.InputBytes))
	buf = binary.AppendUvarint(buf, uint64(meta.InputRecords))
	buf = binary.AppendUvarint(buf, uint64(len(pairs)))
	for _, p := range pairs {
		buf = binary.AppendUvarint(buf, uint64(len(p.K)))
		buf = append(buf, p.K...)
		buf = binary.AppendUvarint(buf, uint64(len(p.V)))
		buf = append(buf, p.V...)
	}
	return buf
}

func decodePairs(data []byte) (checkpointMeta, []kvPair, error) {
	var meta checkpointMeta
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("core: checkpoint header corrupt")
		}
		data = data[n:]
		return v, nil
	}
	ib, err := readUvarint()
	if err != nil {
		return meta, nil, err
	}
	ir, err := readUvarint()
	if err != nil {
		return meta, nil, err
	}
	count, err := readUvarint()
	if err != nil {
		return meta, nil, err
	}
	meta.InputBytes, meta.InputRecords = int64(ib), int64(ir)
	pairs := make([]kvPair, 0, count)
	readBlob := func() ([]byte, error) {
		l, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < l {
			return nil, fmt.Errorf("core: checkpoint truncated")
		}
		b := data[n : n+int(l)]
		data = data[n+int(l):]
		return b, nil
	}
	for i := uint64(0); i < count; i++ {
		k, err := readBlob()
		if err != nil {
			return meta, nil, err
		}
		v, err := readBlob()
		if err != nil {
			return meta, nil, err
		}
		pairs = append(pairs, kvPair{K: k, V: v})
	}
	return meta, pairs, nil
}
