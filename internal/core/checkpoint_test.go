package core

import (
	"bytes"
	"testing"

	"hivempi/internal/dfs"
	"hivempi/internal/exec"
	"hivempi/internal/kvio"
	"hivempi/internal/trace"
)

func TestCheckpointRoundTrip(t *testing.T) {
	env := &exec.Env{FS: dfs.New(dfs.Config{BlockSize: 128, Nodes: []string{"n1"}})}
	var rec checkpointRecorder
	want := []kvio.KV{
		{Key: []byte("k1"), Value: []byte("v1")},
		{Key: []byte(""), Value: []byte("empty-key")},
		{Key: []byte("k3"), Value: nil},
	}
	for _, p := range want {
		rec.record(p.Key, p.Value)
	}
	rec.commit(env, "stage-1", 3, &trace.Task{InputBytes: 4096, InputRecords: 37})
	meta, got, ok := readCheckpoint(env, "stage-1", 3)
	if !ok {
		t.Fatal("committed checkpoint not readable")
	}
	if meta.InputBytes != 4096 || meta.InputRecords != 37 {
		t.Errorf("meta round trip: %+v", meta)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Errorf("pair %d: got %q=%q want %q=%q", i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
	// No tmp file left behind.
	if env.FS.Exists(checkpointPath("stage-1", 3) + ".tmp") {
		t.Error("tmp file survived commit")
	}
}

func TestCheckpointEmptyAndMissing(t *testing.T) {
	env := &exec.Env{FS: dfs.New(dfs.Config{BlockSize: 128, Nodes: []string{"n1"}})}
	if _, _, ok := readCheckpoint(env, "s", 0); ok {
		t.Fatal("missing checkpoint read as present")
	}
	// An empty checkpoint (task completed, emitted nothing) commits and
	// reads back as zero pairs — distinct from no checkpoint at all.
	var rec checkpointRecorder
	rec.commit(env, "s", 0, &trace.Task{})
	_, pairs, ok := readCheckpoint(env, "s", 0)
	if !ok || len(pairs) != 0 {
		t.Fatalf("empty checkpoint: ok=%v pairs=%d", ok, len(pairs))
	}
}

func TestCheckpointCorruptRejected(t *testing.T) {
	env := &exec.Env{FS: dfs.New(dfs.Config{BlockSize: 128, Nodes: []string{"n1"}})}
	if err := env.FS.WriteFile(checkpointPath("s", 1), []byte{0x05, 0x02, 'k'}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := readCheckpoint(env, "s", 1); ok {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestCheckpointOversizedSkipped(t *testing.T) {
	env := &exec.Env{FS: dfs.New(dfs.Config{BlockSize: 1 << 20, Nodes: []string{"n1"}})}
	rec := checkpointRecorder{bytes: maxCheckpointBytes} // pretend it's full
	rec.record([]byte("k"), []byte("v"))
	if !rec.oversized {
		t.Fatal("recorder did not trip the size cap")
	}
	rec.commit(env, "s", 2, &trace.Task{})
	if _, _, ok := readCheckpoint(env, "s", 2); ok {
		t.Fatal("oversized checkpoint was committed")
	}
}
