// Package types defines the value model shared by every layer of the
// warehouse: column kinds, datums, rows, schemas and the binary /
// textual codecs used for storage formats and shuffle traffic.
package types

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the primitive column types supported by the HiveQL
// subset. The zero value is KindNull so that a zero Datum is a SQL NULL.
type Kind uint8

// Supported column kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate // days since 1970-01-01, stored in I
)

// String returns the HiveQL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindInt:
		return "bigint"
	case KindFloat:
		return "double"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a HiveQL type name into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "boolean":
		return KindBool, nil
	case "int", "bigint", "smallint", "tinyint", "integer":
		return KindInt, nil
	case "double", "float", "decimal":
		return KindFloat, nil
	case "string", "varchar", "char":
		return KindString, nil
	case "date", "timestamp":
		return KindDate, nil
	default:
		return KindNull, fmt.Errorf("unknown type %q", s)
	}
}

// Datum is a single SQL value. Exactly one of the payload fields is
// meaningful, selected by Kind; a KindNull datum carries no payload.
type Datum struct {
	K Kind
	I int64
	F float64
	S string
}

// Convenience constructors.

// Null returns the SQL NULL datum.
func Null() Datum { return Datum{} }

// Bool builds a boolean datum.
func Bool(b bool) Datum {
	var i int64
	if b {
		i = 1
	}
	return Datum{K: KindBool, I: i}
}

// Int builds a bigint datum.
func Int(i int64) Datum { return Datum{K: KindInt, I: i} }

// Float builds a double datum.
func Float(f float64) Datum { return Datum{K: KindFloat, F: f} }

// String builds a string datum.
func String(s string) Datum { return Datum{K: KindString, S: s} }

// Date builds a date datum from days since the Unix epoch.
func Date(days int64) Datum { return Datum{K: KindDate, I: days} }

// DateFromString parses "YYYY-MM-DD" into a date datum.
func DateFromString(s string) (Datum, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Datum{}, fmt.Errorf("parse date %q: %w", s, err)
	}
	return Date(t.Unix() / 86400), nil
}

// MustDate parses "YYYY-MM-DD" and panics on malformed input; it is
// intended for compile-time constants in generators and tests.
func MustDate(s string) Datum {
	d, err := DateFromString(s)
	if err != nil {
		panic(err)
	}
	return d
}

// IsNull reports whether the datum is SQL NULL.
func (d Datum) IsNull() bool { return d.K == KindNull }

// Bool returns the boolean payload (false for NULL).
func (d Datum) Bool() bool { return d.K == KindBool && d.I != 0 }

// Int returns the integer payload, converting floats by truncation.
func (d Datum) Int() int64 {
	if d.K == KindFloat {
		return int64(d.F)
	}
	return d.I
}

// Float returns the floating payload, converting ints.
func (d Datum) Float() float64 {
	if d.K == KindFloat {
		return d.F
	}
	return float64(d.I)
}

// Str returns the string payload or the textual rendering of the value.
func (d Datum) Str() string {
	if d.K == KindString {
		return d.S
	}
	return d.Text()
}

// DateString renders a date datum as YYYY-MM-DD.
func (d Datum) DateString() string {
	return time.Unix(d.I*86400, 0).UTC().Format("2006-01-02")
}

// Text renders the datum the way Hive's text serde would.
func (d Datum) Text() string {
	switch d.K {
	case KindNull:
		return `\N`
	case KindBool:
		if d.I != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(d.I, 10)
	case KindFloat:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case KindString:
		return d.S
	case KindDate:
		return d.DateString()
	default:
		return fmt.Sprintf("?%d", d.K)
	}
}

// ParseText parses a text-serde field into a datum of the given kind.
func ParseText(s string, k Kind) (Datum, error) {
	if s == `\N` {
		return Null(), nil
	}
	switch k {
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Datum{}, fmt.Errorf("parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Datum{}, fmt.Errorf("parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Datum{}, fmt.Errorf("parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindString:
		return String(s), nil
	case KindDate:
		return DateFromString(s)
	default:
		return Datum{}, fmt.Errorf("parse %q: unsupported kind %v", s, k)
	}
}

// Compare orders two datums. NULL sorts before every non-NULL value
// (Hive's NULLS FIRST ascending default). Numeric kinds compare
// numerically across int/float/date; strings compare bytewise.
func Compare(a, b Datum) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if a.K == KindString || b.K == KindString {
		as, bs := a.Str(), b.Str()
		switch {
		case as < bs:
			return -1
		case as > bs:
			return 1
		default:
			return 0
		}
	}
	if a.K == KindFloat || b.K == KindFloat {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	switch {
	case a.I < b.I:
		return -1
	case a.I > b.I:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality (NULL != NULL here; use Compare for sorting).
func Equal(a, b Datum) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// Hash returns a stable hash of the datum, used by hash partitioners
// and hash aggregation. Equal datums (per Compare==0 among non-nulls of
// compatible kinds) hash identically.
func (d Datum) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	switch d.K {
	case KindNull:
		mix(0)
	case KindString:
		mix(1)
		for i := 0; i < len(d.S); i++ {
			mix(d.S[i])
		}
	case KindFloat:
		// Hash floats through their numeric value so Int(3) and
		// Float(3.0) agree when used as join keys.
		f := d.F
		if f == math.Trunc(f) && math.Abs(f) < 1e18 {
			return Int(int64(f)).Hash()
		}
		mix(2)
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	default: // bool, int, date share integer identity
		mix(3)
		v := uint64(d.I)
		for i := 0; i < 8; i++ {
			mix(byte(v >> (8 * i)))
		}
	}
	return h
}
