package types

import (
	"fmt"
	"strings"
)

// Row is an ordered tuple of datums matching some Schema.
type Row []Datum

// Clone returns a deep-enough copy of the row (datums are values).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Text renders the row with the classic Hive field delimiter.
func (r Row) Text(delim byte) string {
	var sb strings.Builder
	for i, d := range r {
		if i > 0 {
			sb.WriteByte(delim)
		}
		sb.WriteString(d.Text())
	}
	return sb.String()
}

// Column describes one column of a table or intermediate result.
type Column struct {
	Name string
	Type Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from name/type pairs.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Col is shorthand for constructing a Column.
func Col(name string, t Kind) Column { return Column{Name: name, Type: t} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Index returns the ordinal of the named column, or -1.
func (s *Schema) Index(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a bigint, b string)".
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = fmt.Sprintf("%s %s", c.Name, c.Type)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ParseRowText parses one text-serde line into a row for the schema.
func ParseRowText(line string, delim byte, s *Schema) (Row, error) {
	fields := strings.Split(line, string(delim))
	if len(fields) != len(s.Columns) {
		return nil, fmt.Errorf("row has %d fields, schema %s has %d",
			len(fields), s, len(s.Columns))
	}
	row := make(Row, len(fields))
	for i, f := range fields {
		d, err := ParseText(f, s.Columns[i].Type)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", s.Columns[i].Name, err)
		}
		row[i] = d
	}
	return row, nil
}
