package types

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestRowCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{},
		{Null()},
		{Int(1), String("abc"), Float(2.5), Bool(true), MustDate("1996-06-30"), Null()},
		{String(""), String(string([]byte{0, 1, 2, 0}))},
	}
	for _, r := range rows {
		buf := EncodeRow(nil, r)
		got, n, err := DecodeRow(buf)
		if err != nil {
			t.Fatalf("DecodeRow(%v): %v", r, err)
		}
		if n != len(buf) {
			t.Errorf("DecodeRow consumed %d of %d bytes", n, len(buf))
		}
		if len(got) != len(r) {
			t.Fatalf("row length %d != %d", len(got), len(r))
		}
		for i := range r {
			if got[i] != r[i] {
				t.Errorf("column %d: got %v, want %v", i, got[i], r[i])
			}
		}
	}
}

func TestRowCodecConcatenated(t *testing.T) {
	r1 := Row{Int(1), String("x")}
	r2 := Row{Int(2), String("y")}
	buf := EncodeRow(nil, r1)
	buf = EncodeRow(buf, r2)
	got1, n, err := DecodeRow(buf)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := DecodeRow(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if got1[0].Int() != 1 || got2[0].Int() != 2 {
		t.Errorf("concatenated decode wrong: %v %v", got1, got2)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeDatum(nil); err == nil {
		t.Error("DecodeDatum(nil) should fail")
	}
	if _, _, err := DecodeDatum([]byte{byte(KindString), 0xFF}); err == nil {
		t.Error("truncated string should fail")
	}
	if _, _, err := DecodeDatum([]byte{200}); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, _, err := DecodeRow([]byte{}); err == nil {
		t.Error("DecodeRow empty should fail")
	}
}

func TestKeyCodecPreservesOrder(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const n = 400
	ds := make([]Datum, 0, n)
	for i := 0; i < n; i++ {
		d := randomDatum(r)
		if d.K == KindFloat && math.IsInf(d.F, 0) {
			continue
		}
		ds = append(ds, d)
	}
	// Only compare datums of comparable families: group by family.
	families := map[string][]Datum{}
	for _, d := range ds {
		// Key columns are schema-typed, so order preservation is only
		// required within one encoding family: strings, floats, and the
		// integer-encoded kinds (bool/int/date share an encoding).
		var fam string
		switch d.K {
		case KindString:
			fam = "s"
		case KindFloat:
			fam = "f"
		case KindNull:
			continue
		default:
			fam = "n"
		}
		families[fam] = append(families[fam], d)
	}
	for fam, group := range families {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				ka := AppendKeyDatum(nil, a, false)
				kb := AppendKeyDatum(nil, b, false)
				cmpD := Compare(a, b)
				cmpK := bytes.Compare(ka, kb)
				if sign(cmpD) != sign(cmpK) {
					t.Fatalf("family %s: key order mismatch for %v vs %v: datum %d key %d",
						fam, a, b, cmpD, cmpK)
				}
				// Descending flips the order.
				da := AppendKeyDatum(nil, a, true)
				db := AppendKeyDatum(nil, b, true)
				if sign(bytes.Compare(da, db)) != -sign(cmpK) && cmpK != 0 {
					t.Fatalf("descending key order not flipped for %v vs %v", a, b)
				}
			}
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestKeyCodecNullSortsFirst(t *testing.T) {
	kn := AppendKeyDatum(nil, Null(), false)
	for _, d := range []Datum{Int(math.MinInt64), Float(math.Inf(-1)), String("")} {
		kd := AppendKeyDatum(nil, d, false)
		if bytes.Compare(kn, kd) >= 0 {
			t.Errorf("NULL key must sort before %v", d)
		}
	}
}

func TestKeyDatumRoundTrip(t *testing.T) {
	cases := []Datum{
		Null(), Int(-5), Int(0), Int(7),
		Float(-1.25), Float(0), Float(3.5),
		String(""), String("abc"), String(string([]byte{0, 'a', 0})),
		MustDate("1997-07-01"), Bool(true),
	}
	for _, d := range cases {
		for _, desc := range []bool{false, true} {
			buf := AppendKeyDatum(nil, d, desc)
			got, n, err := DecodeKeyDatum(buf, d.K, desc)
			if err != nil {
				t.Fatalf("DecodeKeyDatum(%v desc=%v): %v", d, desc, err)
			}
			if n != len(buf) {
				t.Errorf("consumed %d of %d bytes for %v", n, len(buf), d)
			}
			if d.K == KindFloat {
				if got.Float() != d.Float() {
					t.Errorf("float round trip %v -> %v", d, got)
				}
			} else if Compare(got, d) != 0 && !(d.IsNull() && got.IsNull()) {
				t.Errorf("round trip %v -> %v (desc=%v)", d, got, desc)
			}
		}
	}
}

func TestEncodeKeyMultiColumn(t *testing.T) {
	// (1, "b") < (1, "c") < (2, "a")
	rows := [][]Datum{
		{Int(1), String("b")},
		{Int(1), String("c")},
		{Int(2), String("a")},
	}
	keys := make([][]byte, len(rows))
	for i, r := range rows {
		keys[i] = EncodeKey(nil, r, nil)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 }) {
		t.Error("multi-column keys not in expected order")
	}
	// Mixed asc/desc: sort by col0 asc, col1 desc.
	k1 := EncodeKey(nil, rows[0], []bool{false, true})
	k2 := EncodeKey(nil, rows[1], []bool{false, true})
	if bytes.Compare(k1, k2) <= 0 {
		t.Error("descending second column should reverse order")
	}
}

func TestKeyStringPrefixOrdering(t *testing.T) {
	// "ab" < "ab\x00" < "ab\x01": terminator must not break prefix order.
	a := AppendKeyDatum(nil, String("ab"), false)
	b := AppendKeyDatum(nil, String("ab\x00"), false)
	c := AppendKeyDatum(nil, String("ab\x01"), false)
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0) {
		t.Error("NUL-containing string ordering broken")
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(Col("a", KindInt), Col("b", KindString))
	if s.Len() != 2 {
		t.Error("Len")
	}
	if s.Index("b") != 1 || s.Index("zz") != -1 {
		t.Error("Index")
	}
	if s.String() != "(a bigint, b string)" {
		t.Errorf("String() = %s", s.String())
	}
	if got := s.Names(); got[0] != "a" || got[1] != "b" {
		t.Error("Names")
	}
}

func TestParseRowText(t *testing.T) {
	s := NewSchema(Col("a", KindInt), Col("b", KindString), Col("c", KindFloat))
	row, err := ParseRowText("5|hello|1.5", '|', s)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int() != 5 || row[1].Str() != "hello" || row[2].Float() != 1.5 {
		t.Errorf("parsed %v", row)
	}
	if got := row.Text('|'); got != "5|hello|1.5" {
		t.Errorf("Text() = %q", got)
	}
	if _, err := ParseRowText("5|x", '|', s); err == nil {
		t.Error("field count mismatch should fail")
	}
	if _, err := ParseRowText("z|x|1", '|', s); err == nil {
		t.Error("bad int should fail")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), String("a")}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].Int() != 1 {
		t.Error("Clone must not alias")
	}
}
