package types

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "null",
		KindBool:   "boolean",
		KindInt:    "bigint",
		KindFloat:  "double",
		KindString: "string",
		KindDate:   "date",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, name := range []string{"boolean", "int", "bigint", "double", "float", "string", "date"} {
		if _, err := ParseKind(name); err != nil {
			t.Errorf("ParseKind(%q) unexpected error: %v", name, err)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func TestDatumAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() not null")
	}
	if Bool(true).Bool() != true || Bool(false).Bool() != false {
		t.Error("Bool roundtrip broken")
	}
	if Int(42).Int() != 42 {
		t.Error("Int roundtrip broken")
	}
	if Float(2.5).Float() != 2.5 {
		t.Error("Float roundtrip broken")
	}
	if Float(2.9).Int() != 2 {
		t.Error("Float->Int should truncate")
	}
	if Int(3).Float() != 3.0 {
		t.Error("Int->Float conversion broken")
	}
	if String("x").Str() != "x" {
		t.Error("String roundtrip broken")
	}
}

func TestDateRoundTrip(t *testing.T) {
	for _, s := range []string{"1970-01-01", "1992-02-29", "1998-12-01", "2026-07-04"} {
		d, err := DateFromString(s)
		if err != nil {
			t.Fatalf("DateFromString(%q): %v", s, err)
		}
		if got := d.DateString(); got != s {
			t.Errorf("date %q round-tripped to %q", s, got)
		}
	}
	if _, err := DateFromString("not-a-date"); err == nil {
		t.Error("DateFromString should reject garbage")
	}
}

func TestTextRendering(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{Null(), `\N`},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-7), "-7"},
		{Float(1.5), "1.5"},
		{String("hello"), "hello"},
		{MustDate("1995-03-15"), "1995-03-15"},
	}
	for _, c := range cases {
		if got := c.d.Text(); got != c.want {
			t.Errorf("Text(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	cases := []Datum{
		Bool(true), Int(123456789), Float(-2.25),
		String("abc def"), MustDate("1994-01-01"),
	}
	for _, d := range cases {
		got, err := ParseText(d.Text(), d.K)
		if err != nil {
			t.Fatalf("ParseText(%q, %v): %v", d.Text(), d.K, err)
		}
		if Compare(got, d) != 0 {
			t.Errorf("ParseText(%q) = %v, want %v", d.Text(), got, d)
		}
	}
	if got, err := ParseText(`\N`, KindInt); err != nil || !got.IsNull() {
		t.Errorf(`ParseText(\N) = %v, %v; want NULL`, got, err)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{Int(10), String("2"), -1}, // numeric renders "10" < "2" textually
		{MustDate("1994-01-01"), MustDate("1995-01-01"), -1},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL must be false in SQL equality")
	}
	if !Equal(Int(5), Int(5)) {
		t.Error("5 = 5 must hold")
	}
	if !Equal(Int(3), Float(3.0)) {
		t.Error("3 = 3.0 must hold across kinds")
	}
}

func TestHashConsistency(t *testing.T) {
	if Int(3).Hash() != Float(3.0).Hash() {
		t.Error("Int(3) and Float(3.0) must hash identically (join keys)")
	}
	if Int(3).Hash() == Int(4).Hash() {
		t.Error("distinct ints should (practically) hash differently")
	}
	if String("").Hash() == Null().Hash() {
		t.Error("empty string must not collide with NULL by construction")
	}
}

func TestHashPropertyEqualImpliesSameHash(t *testing.T) {
	f := func(v int64) bool {
		return Int(v).Hash() == Int(v).Hash() &&
			Datum{K: KindDate, I: v}.Hash() == Datum{K: KindDate, I: v}.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomDatum generates an arbitrary datum for property tests.
func randomDatum(r *rand.Rand) Datum {
	switch r.Intn(6) {
	case 0:
		return Null()
	case 1:
		return Bool(r.Intn(2) == 1)
	case 2:
		return Int(r.Int63() - r.Int63())
	case 3:
		for {
			f := math.Float64frombits(r.Uint64())
			if !math.IsNaN(f) {
				return Float(f)
			}
		}
	case 4:
		n := r.Intn(20)
		b := make([]byte, n)
		r.Read(b)
		return String(string(b))
	default:
		return Date(int64(r.Intn(40000) - 10000))
	}
}

func TestComparePropertyAntisymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randomDatum(r), randomDatum(r)
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("Compare not antisymmetric for %v, %v", a, b)
		}
		if Compare(a, a) != 0 {
			t.Fatalf("Compare(%v, itself) != 0", a)
		}
	}
}
