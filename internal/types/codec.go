package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary row codec
//
// The binary encoding is used for sequence files, spill files and all
// shuffle traffic. A row is encoded as a varint column count followed by
// one (kind byte, payload) pair per column. The encoding is
// self-describing so shuffle values can be decoded without the schema.

// AppendDatum appends the binary encoding of d to buf.
func AppendDatum(buf []byte, d Datum) []byte {
	buf = append(buf, byte(d.K))
	switch d.K {
	case KindNull:
	case KindBool:
		if d.I != 0 {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindInt, KindDate:
		buf = binary.AppendVarint(buf, d.I)
	case KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.F))
	case KindString:
		buf = binary.AppendUvarint(buf, uint64(len(d.S)))
		buf = append(buf, d.S...)
	}
	return buf
}

// DecodeDatum decodes one datum from buf, returning it and the number of
// bytes consumed.
func DecodeDatum(buf []byte) (Datum, int, error) {
	if len(buf) == 0 {
		return Datum{}, 0, fmt.Errorf("decode datum: empty buffer")
	}
	k := Kind(buf[0])
	pos := 1
	switch k {
	case KindNull:
		return Null(), pos, nil
	case KindBool:
		if len(buf) < 2 {
			return Datum{}, 0, fmt.Errorf("decode bool: short buffer")
		}
		return Bool(buf[1] != 0), 2, nil
	case KindInt, KindDate:
		v, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return Datum{}, 0, fmt.Errorf("decode int: bad varint")
		}
		return Datum{K: k, I: v}, pos + n, nil
	case KindFloat:
		if len(buf) < pos+8 {
			return Datum{}, 0, fmt.Errorf("decode float: short buffer")
		}
		bits := binary.LittleEndian.Uint64(buf[pos:])
		return Float(math.Float64frombits(bits)), pos + 8, nil
	case KindString:
		l, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return Datum{}, 0, fmt.Errorf("decode string: bad length")
		}
		pos += n
		if uint64(len(buf)-pos) < l {
			return Datum{}, 0, fmt.Errorf("decode string: short buffer")
		}
		return String(string(buf[pos : pos+int(l)])), pos + int(l), nil
	default:
		return Datum{}, 0, fmt.Errorf("decode datum: unknown kind %d", k)
	}
}

// EncodeRow appends the binary encoding of the row to buf.
func EncodeRow(buf []byte, r Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, d := range r {
		buf = AppendDatum(buf, d)
	}
	return buf
}

// DecodeRow decodes a row encoded by EncodeRow, returning the row and
// bytes consumed.
func DecodeRow(buf []byte) (Row, int, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 {
		return nil, 0, fmt.Errorf("decode row: bad column count")
	}
	pos := used
	row := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		d, c, err := DecodeDatum(buf[pos:])
		if err != nil {
			return nil, 0, fmt.Errorf("decode row column %d: %w", i, err)
		}
		row = append(row, d)
		pos += c
	}
	return row, pos, nil
}

// Order-preserving key codec
//
// Shuffle sort keys are encoded into bytes whose lexicographic order
// matches the Compare order of the datum sequence, so the shuffle can
// sort raw byte slices without decoding. A descending column is encoded
// by complementing the ascending encoding.

// AppendKeyDatum appends an order-preserving encoding of d.
func AppendKeyDatum(buf []byte, d Datum, desc bool) []byte {
	start := len(buf)
	switch d.K {
	case KindNull:
		buf = append(buf, 0x00)
	case KindBool, KindInt, KindDate:
		buf = append(buf, 0x01)
		// Bias to unsigned so byte order matches numeric order.
		u := uint64(d.I) ^ (1 << 63)
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], u)
		buf = append(buf, tmp[:]...)
	case KindFloat:
		buf = append(buf, 0x01)
		bits := math.Float64bits(d.F)
		if d.F >= 0 || bits == 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], bits)
		buf = append(buf, tmp[:]...)
	case KindString:
		buf = append(buf, 0x02)
		// Escape 0x00 -> 0x00 0xFF so the terminator 0x00 0x00 sorts
		// before any continuation.
		for i := 0; i < len(d.S); i++ {
			b := d.S[i]
			buf = append(buf, b)
			if b == 0x00 {
				buf = append(buf, 0xFF)
			}
		}
		buf = append(buf, 0x00, 0x00)
	}
	if desc {
		for i := start; i < len(buf); i++ {
			buf[i] = ^buf[i]
		}
	}
	return buf
}

// Key kind tags, used when decoding order-preserving keys.
const (
	keyTagNull   = 0x00
	keyTagNumber = 0x01
	keyTagString = 0x02
)

// DecodeKeyDatum decodes a datum written by AppendKeyDatum. The numeric
// encoding does not distinguish int from float, so the caller supplies
// the expected kind. Returns the datum and bytes consumed.
func DecodeKeyDatum(buf []byte, k Kind, desc bool) (Datum, int, error) {
	if len(buf) == 0 {
		return Datum{}, 0, fmt.Errorf("decode key: empty buffer")
	}
	get := func(i int) byte {
		if desc {
			return ^buf[i]
		}
		return buf[i]
	}
	switch get(0) {
	case keyTagNull:
		return Null(), 1, nil
	case keyTagNumber:
		if len(buf) < 9 {
			return Datum{}, 0, fmt.Errorf("decode key number: short buffer")
		}
		var tmp [8]byte
		for i := 0; i < 8; i++ {
			tmp[i] = get(1 + i)
		}
		u := binary.BigEndian.Uint64(tmp[:])
		if k == KindFloat {
			if u&(1<<63) != 0 {
				u ^= 1 << 63
			} else {
				u = ^u
			}
			return Float(math.Float64frombits(u)), 9, nil
		}
		d := Datum{K: k, I: int64(u ^ (1 << 63))}
		if k == KindBool || k == KindInt || k == KindDate {
			return d, 9, nil
		}
		return Datum{K: KindInt, I: d.I}, 9, nil
	case keyTagString:
		var out []byte
		i := 1
		for {
			if i >= len(buf) {
				return Datum{}, 0, fmt.Errorf("decode key string: unterminated")
			}
			b := get(i)
			if b == 0x00 {
				if i+1 >= len(buf) {
					return Datum{}, 0, fmt.Errorf("decode key string: truncated escape")
				}
				next := get(i + 1)
				if next == 0x00 { // terminator
					return String(string(out)), i + 2, nil
				}
				if next == 0xFF { // escaped NUL
					out = append(out, 0x00)
					i += 2
					continue
				}
				return Datum{}, 0, fmt.Errorf("decode key string: bad escape %x", next)
			}
			out = append(out, b)
			i++
		}
	default:
		return Datum{}, 0, fmt.Errorf("decode key: unknown tag %x", get(0))
	}
}

// EncodeKey builds an order-preserving key for the given datums and
// per-column descending flags (nil descs means all ascending).
func EncodeKey(buf []byte, ds []Datum, descs []bool) []byte {
	for i, d := range ds {
		desc := false
		if descs != nil {
			desc = descs[i]
		}
		buf = AppendKeyDatum(buf, d, desc)
	}
	return buf
}
