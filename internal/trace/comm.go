package trace

import "sync/atomic"

// CommMatrix is the per-stage communication matrix: bytes, records and
// messages moved from each producer (O-rank / map task) to each
// consumer (A-rank / reduce task). The engines record into it live —
// datampi from the MPI send path, hadoop from the reduce copy phase —
// so cells use atomic adds; producers touch disjoint rows but the
// recording goroutines are not otherwise synchronized.
type CommMatrix struct {
	NumO, NumA int
	bytes      []int64 // flattened rows, atomic access
	records    []int64
	msgs       []int64
}

// NewCommMatrix returns an empty numO x numA matrix (nil when either
// dimension is not positive).
func NewCommMatrix(numO, numA int) *CommMatrix {
	if numO <= 0 || numA <= 0 {
		return nil
	}
	n := numO * numA
	return &CommMatrix{
		NumO:    numO,
		NumA:    numA,
		bytes:   make([]int64, n),
		records: make([]int64, n),
		msgs:    make([]int64, n),
	}
}

func (m *CommMatrix) idx(o, a int) (int, bool) {
	if m == nil || o < 0 || o >= m.NumO || a < 0 || a >= m.NumA {
		return 0, false
	}
	return o*m.NumA + a, true
}

// AddMessage records one delivered message of the given payload size.
func (m *CommMatrix) AddMessage(o, a int, bytes int64) {
	i, ok := m.idx(o, a)
	if !ok {
		return
	}
	atomic.AddInt64(&m.bytes[i], bytes)
	atomic.AddInt64(&m.msgs[i], 1)
}

// AddRecords attributes record (key-value pair) counts to a cell;
// recorded separately from AddMessage because the record count is
// known at the flush site while bytes are observed on the wire.
func (m *CommMatrix) AddRecords(o, a int, records int64) {
	i, ok := m.idx(o, a)
	if !ok {
		return
	}
	atomic.AddInt64(&m.records[i], records)
}

// Bytes returns the bytes moved from producer o to consumer a.
func (m *CommMatrix) Bytes(o, a int) int64 {
	i, ok := m.idx(o, a)
	if !ok {
		return 0
	}
	return atomic.LoadInt64(&m.bytes[i])
}

// Records returns the records moved from producer o to consumer a.
func (m *CommMatrix) Records(o, a int) int64 {
	i, ok := m.idx(o, a)
	if !ok {
		return 0
	}
	return atomic.LoadInt64(&m.records[i])
}

// Messages returns the message count from producer o to consumer a.
func (m *CommMatrix) Messages(o, a int) int64 {
	i, ok := m.idx(o, a)
	if !ok {
		return 0
	}
	return atomic.LoadInt64(&m.msgs[i])
}

// RowBytes returns per-producer byte totals (the O-side view).
func (m *CommMatrix) RowBytes() []int64 {
	if m == nil {
		return nil
	}
	out := make([]int64, m.NumO)
	for o := 0; o < m.NumO; o++ {
		for a := 0; a < m.NumA; a++ {
			out[o] += m.Bytes(o, a)
		}
	}
	return out
}

// ColBytes returns per-consumer byte totals (the A-side view; the
// partition-skew dimension).
func (m *CommMatrix) ColBytes() []int64 {
	if m == nil {
		return nil
	}
	out := make([]int64, m.NumA)
	for o := 0; o < m.NumO; o++ {
		for a := 0; a < m.NumA; a++ {
			out[a] += m.Bytes(o, a)
		}
	}
	return out
}

// TotalBytes sums the whole matrix.
func (m *CommMatrix) TotalBytes() int64 {
	var t int64
	for _, row := range m.RowBytes() {
		t += row
	}
	return t
}

// TotalMessages sums the message counts.
func (m *CommMatrix) TotalMessages() int64 {
	if m == nil {
		return 0
	}
	var t int64
	for o := 0; o < m.NumO; o++ {
		for a := 0; a < m.NumA; a++ {
			t += m.Messages(o, a)
		}
	}
	return t
}

// BytesGrid materializes the byte cells as row-major [][]int64 (for
// reports and rendering).
func (m *CommMatrix) BytesGrid() [][]int64 {
	if m == nil {
		return nil
	}
	out := make([][]int64, m.NumO)
	for o := 0; o < m.NumO; o++ {
		out[o] = make([]int64, m.NumA)
		for a := 0; a < m.NumA; a++ {
			out[o][a] = m.Bytes(o, a)
		}
	}
	return out
}

// RecordsGrid materializes the record cells as row-major [][]int64.
func (m *CommMatrix) RecordsGrid() [][]int64 {
	if m == nil {
		return nil
	}
	out := make([][]int64, m.NumO)
	for o := 0; o < m.NumO; o++ {
		out[o] = make([]int64, m.NumA)
		for a := 0; a < m.NumA; a++ {
			out[o][a] = m.Records(o, a)
		}
	}
	return out
}
