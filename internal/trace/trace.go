// Package trace defines the structured execution metrics emitted by
// both execution engines (Hadoop MapReduce and DataMPI). The perfmodel
// package replays these traces onto a simulated cluster to obtain the
// paper's timing figures, and the bench harness aggregates them into
// tables.
package trace

import (
	"sort"
	"sync"
)

// TaskKind distinguishes producer and consumer tasks across engines.
type TaskKind int

// Task kinds. Map/OTask are producers; Reduce/ATask are consumers.
const (
	KindMap TaskKind = iota + 1
	KindReduce
	KindOTask
	KindATask
)

// String returns a short label for the kind.
func (k TaskKind) String() string {
	switch k {
	case KindMap:
		return "map"
	case KindReduce:
		return "reduce"
	case KindOTask:
		return "o"
	case KindATask:
		return "a"
	default:
		return "?"
	}
}

// SizeHistogram counts emitted key-value pair sizes. Sizes up to
// exactBuckets-1 are tracked per byte (the paper's Fig. 2 needs
// byte-resolution around 14 B and 32 B); larger sizes fall into
// power-of-two overflow buckets.
type SizeHistogram struct {
	Exact    []int64 // index = size in bytes
	Overflow map[int]int64
}

const exactBuckets = 512

// NewSizeHistogram returns an empty histogram.
func NewSizeHistogram() *SizeHistogram {
	return &SizeHistogram{Exact: make([]int64, exactBuckets), Overflow: make(map[int]int64)}
}

// Observe records one pair of the given size.
func (h *SizeHistogram) Observe(size int) {
	if size < 0 {
		return
	}
	if size < exactBuckets {
		h.Exact[size]++
		return
	}
	bucket := exactBuckets
	for bucket*2 <= size {
		bucket *= 2
	}
	h.Overflow[bucket]++
}

// Total returns the number of observations.
func (h *SizeHistogram) Total() int64 {
	var t int64
	for _, c := range h.Exact {
		t += c
	}
	for _, c := range h.Overflow {
		t += c
	}
	return t
}

// Merge folds other into h.
func (h *SizeHistogram) Merge(other *SizeHistogram) {
	if other == nil {
		return
	}
	for i, c := range other.Exact {
		h.Exact[i] += c
	}
	for b, c := range other.Overflow {
		h.Overflow[b] += c
	}
}

// Mode returns the most frequent exact size (paper: 14 B / 32 B peaks).
func (h *SizeHistogram) Mode() int {
	best, bestCount := 0, int64(-1)
	for i, c := range h.Exact {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return best
}

// TopSizes returns the n most frequent exact sizes in descending count order.
func (h *SizeHistogram) TopSizes(n int) []int {
	type sc struct {
		size  int
		count int64
	}
	all := make([]sc, 0, 16)
	for i, c := range h.Exact {
		if c > 0 {
			all = append(all, sc{i, c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].size < all[j].size
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].size
	}
	return out
}

// Task captures the work one task performed. Progress marks allow the
// perfmodel to reconstruct intra-task timelines (collect sequences,
// send timelines) without wall-clock timestamps.
type Task struct {
	ID   int
	Kind TaskKind
	Host string

	InputBytes    int64
	InputRecords  int64
	OutputBytes   int64
	OutputRecords int64

	// Producer-side shuffle: bytes destined to each consumer partition.
	ShuffleOutBytes  int64
	PartitionBytes   []int64
	ShuffleOutPairs  int64
	CollectSizes     *SizeHistogram
	SendEvents       []SendEvent // one per buffer-manager flush
	WaitRounds       int64       // blocking-style synchronization rounds
	SpillCount       int64
	SpillBytes       int64
	ShuffleInBytes   int64 // consumer-side received bytes
	ShuffleInPairs   int64
	MergeRuns        int64
	CombineInPairs   int64
	CombineOutPairs  int64
	LocalRead        bool // split was replica-local to the task's host
	SortedBytes      int64
	ReduceGroups     int64
	WriteBytes       int64
	GCPressureBytes  int64 // bytes of application memory displaced by caching
	MemoryCacheBytes int64 // intermediate bytes held in memory (not spilled)

	// Memory-tier I/O: the subset of InputBytes / WriteBytes served by
	// the in-memory intermediate store instead of disk. The perfmodel
	// charges these at memory bandwidth.
	MemReadBytes  int64
	MemWriteBytes int64

	// Fault-tolerance accounting.
	Attempts          int     // execution attempts (0 or 1 = ran once)
	StragglerDelaySec float64 // virtual slowdown charged to this task
	Speculative       bool    // a speculative duplicate was launched
	PredictiveSpec    bool    // backup pre-launched on predicted skew, not observed lag
	Recovered         bool    // output replayed from a checkpoint

	// Communication-plane accounting (datampi). Producers: peak Send
	// Partition List occupancy and how many residual flushes finalize
	// forced out (vs. threshold-triggered). Consumers: data messages
	// absorbed by the receive loop.
	BufPeakBytes  int64
	ForcedFlushes int64
	RecvRounds    int64

	// Batches counts the column batches the vectorized map path
	// processed (0 for row-mode tasks).
	Batches int64
}

// SendEvent records one flush from the buffer manager to the wire:
// which fraction of the task's input had been consumed when the flush
// happened (for timeline reconstruction) and how many bytes moved.
type SendEvent struct {
	Progress float64 // 0..1 of task input consumed at flush time
	Bytes    int64
	Dest     int
}

// Stage is the execution record of one MapReduce/DataMPI job stage.
type Stage struct {
	Name      string
	Engine    string // "hadoop" or "datampi"
	NumMaps   int
	NumReds   int
	Producers []*Task
	Consumers []*Task

	// Engine configuration relevant to the cost model.
	NonBlocking    bool
	MemUsedPercent float64
	SendQueueSize  int

	// LaunchCommand records the equivalent job launch line (the
	// DataMPI engine's mpidrun invocation), for diagnostics.
	LaunchCommand string

	// Fault-tolerance accounting.
	Attempts         int     // job-level attempts (0 or 1 = ran once)
	RetryBackoffSec  float64 // virtual backoff spent between attempts
	ChaosDelaySec    float64 // injected message delay charged to the stage
	TaskRetries      int     // per-task re-executions within the job
	RereplicationSec float64 // DFS re-replication bandwidth charged after the stage
	Relaunched       bool    // stage re-executed because its output died with a node

	// Skew-adaptive accounting: base buckets split/fused by the adapt
	// runtime before launch, and the virtual planning cost charged.
	AdaptSplit int
	AdaptFused int
	AdaptSec   float64

	// DependsOn names the stages whose output this stage reads (the
	// query's stage DAG). The perfmodel uses it for critical-path
	// virtual-time accounting when the query ran DAG-overlapped.
	DependsOn []string

	// Vectorized marks that the stage's map tasks ran the columnar
	// batch pipeline; the perfmodel discounts per-record CPU for it.
	Vectorized bool

	// Comm is the per-(producer, consumer) communication matrix the
	// engine recorded for this stage's shuffle (nil for map-only stages
	// or engines that did not record one; the obs/comm analyzer then
	// falls back to the producers' PartitionBytes).
	Comm *CommMatrix
}

// TotalShuffleBytes sums producer shuffle output.
func (s *Stage) TotalShuffleBytes() int64 {
	var t int64
	for _, p := range s.Producers {
		t += p.ShuffleOutBytes
	}
	return t
}

// TotalInputBytes sums producer input bytes.
func (s *Stage) TotalInputBytes() int64 {
	var t int64
	for _, p := range s.Producers {
		t += p.InputBytes
	}
	return t
}

// TotalOutputBytes sums consumer write bytes (or producer writes for
// map-only stages).
func (s *Stage) TotalOutputBytes() int64 {
	var t int64
	for _, c := range s.Consumers {
		t += c.WriteBytes
	}
	if t == 0 {
		for _, p := range s.Producers {
			t += p.WriteBytes
		}
	}
	return t
}

// Query is the trace of one HiveQL statement: compilation plus a DAG of
// stages executed in order.
type Query struct {
	Statement string
	Stages    []*Stage
	// Overlapped marks that independent stages ran concurrently (DAG
	// scheduling): virtual time is then the critical path through the
	// stage DAG instead of the serial sum.
	Overlapped bool
	// CachedPlan marks that the driver served this statement from the
	// compiled-plan cache, skipping parse/plan (the perfmodel then drops
	// the compile charge from the query's virtual time).
	CachedPlan bool
}

// Collector accumulates stages from concurrently running tasks.
type Collector struct {
	mu      sync.Mutex
	queries []*Query
	current *Query
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// BeginQuery starts a new query record.
func (c *Collector) BeginQuery(statement string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.current = &Query{Statement: statement}
	c.queries = append(c.queries, c.current)
}

// MarkOverlapped flags the current query as DAG-overlapped (creating an
// anonymous query if none was begun).
func (c *Collector) MarkOverlapped() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current == nil {
		c.current = &Query{Statement: "(anonymous)"}
		c.queries = append(c.queries, c.current)
	}
	c.current.Overlapped = true
}

// MarkCachedPlan flags the current query as served from the
// compiled-plan cache (creating an anonymous query if none was begun).
func (c *Collector) MarkCachedPlan() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current == nil {
		c.current = &Query{Statement: "(anonymous)"}
		c.queries = append(c.queries, c.current)
	}
	c.current.CachedPlan = true
}

// AddStage appends a completed stage to the current query (creating an
// anonymous query if none was begun).
func (c *Collector) AddStage(s *Stage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current == nil {
		c.current = &Query{Statement: "(anonymous)"}
		c.queries = append(c.queries, c.current)
	}
	c.current.Stages = append(c.current.Stages, s)
}

// Queries returns the recorded queries.
func (c *Collector) Queries() []*Query {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Query, len(c.queries))
	copy(out, c.queries)
	return out
}

// AllStages flattens every stage across queries.
func (c *Collector) AllStages() []*Stage {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Stage
	for _, q := range c.queries {
		out = append(out, q.Stages...)
	}
	return out
}

// Reset drops all recorded queries.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queries = nil
	c.current = nil
}
