package trace

import (
	"sync"
	"testing"
)

func TestSizeHistogramExactAndOverflow(t *testing.T) {
	h := NewSizeHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(32)
	}
	h.Observe(14)
	h.Observe(14)
	h.Observe(100000) // overflow bucket
	h.Observe(-1)     // ignored
	if h.Total() != 13 {
		t.Errorf("Total = %d, want 13", h.Total())
	}
	if h.Mode() != 32 {
		t.Errorf("Mode = %d, want 32", h.Mode())
	}
	top := h.TopSizes(2)
	if len(top) != 2 || top[0] != 32 || top[1] != 14 {
		t.Errorf("TopSizes = %v", top)
	}
	// Overflow lands in the enclosing power-of-two bucket.
	found := false
	for b, c := range h.Overflow {
		if c == 1 && b <= 100000 && b*2 > 100000 {
			found = true
		}
	}
	if !found {
		t.Errorf("overflow buckets wrong: %v", h.Overflow)
	}
}

func TestSizeHistogramMerge(t *testing.T) {
	a, b := NewSizeHistogram(), NewSizeHistogram()
	a.Observe(10)
	b.Observe(10)
	b.Observe(20)
	b.Observe(9999)
	a.Merge(b)
	if a.Total() != 4 {
		t.Errorf("merged total = %d, want 4", a.Total())
	}
	if a.Exact[10] != 2 || a.Exact[20] != 1 {
		t.Error("merge lost exact counts")
	}
	a.Merge(nil) // must not panic
	if a.Total() != 4 {
		t.Error("nil merge changed totals")
	}
}

func TestStageAggregates(t *testing.T) {
	st := &Stage{
		Name:   "s",
		Engine: "datampi",
		Producers: []*Task{
			{ID: 0, ShuffleOutBytes: 100, InputBytes: 1000},
			{ID: 1, ShuffleOutBytes: 50, InputBytes: 500},
		},
		Consumers: []*Task{
			{ID: 0, WriteBytes: 30},
		},
	}
	if st.TotalShuffleBytes() != 150 {
		t.Errorf("TotalShuffleBytes = %d", st.TotalShuffleBytes())
	}
	if st.TotalInputBytes() != 1500 {
		t.Errorf("TotalInputBytes = %d", st.TotalInputBytes())
	}
	if st.TotalOutputBytes() != 30 {
		t.Errorf("TotalOutputBytes = %d", st.TotalOutputBytes())
	}
	// Map-only stage falls back to producer writes.
	st2 := &Stage{Producers: []*Task{{WriteBytes: 77}}}
	if st2.TotalOutputBytes() != 77 {
		t.Errorf("map-only TotalOutputBytes = %d", st2.TotalOutputBytes())
	}
}

func TestCollectorConcurrentStages(t *testing.T) {
	c := NewCollector()
	c.BeginQuery("q1")
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.AddStage(&Stage{Name: "s"})
		}(i)
	}
	wg.Wait()
	qs := c.Queries()
	if len(qs) != 1 || len(qs[0].Stages) != 20 {
		t.Errorf("collector lost stages: %d queries, %d stages", len(qs), len(qs[0].Stages))
	}
	if len(c.AllStages()) != 20 {
		t.Errorf("AllStages = %d", len(c.AllStages()))
	}
	c.Reset()
	if len(c.Queries()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestCollectorAnonymousQuery(t *testing.T) {
	c := NewCollector()
	c.AddStage(&Stage{Name: "orphan"})
	qs := c.Queries()
	if len(qs) != 1 || qs[0].Statement != "(anonymous)" {
		t.Errorf("orphan stage handling wrong: %+v", qs)
	}
}

func TestTaskKindString(t *testing.T) {
	cases := map[TaskKind]string{
		KindMap: "map", KindReduce: "reduce", KindOTask: "o", KindATask: "a",
		TaskKind(99): "?",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
