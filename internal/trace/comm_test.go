package trace

import (
	"sync"
	"testing"
)

func TestCommMatrixNilAndBounds(t *testing.T) {
	if NewCommMatrix(0, 4) != nil || NewCommMatrix(4, -1) != nil {
		t.Error("non-positive dimensions must yield a nil matrix")
	}
	var m *CommMatrix
	// Every method must be a no-op on nil.
	m.AddMessage(0, 0, 10)
	m.AddRecords(0, 0, 10)
	if m.Bytes(0, 0) != 0 || m.Records(0, 0) != 0 || m.Messages(0, 0) != 0 {
		t.Error("nil matrix reported non-zero cells")
	}
	if m.RowBytes() != nil || m.ColBytes() != nil || m.BytesGrid() != nil || m.RecordsGrid() != nil {
		t.Error("nil matrix accessors must return nil slices")
	}
	if m.TotalBytes() != 0 || m.TotalMessages() != 0 {
		t.Error("nil matrix totals non-zero")
	}

	m = NewCommMatrix(2, 3)
	// Out-of-range cells are dropped, not panicked on.
	m.AddMessage(-1, 0, 5)
	m.AddMessage(2, 0, 5)
	m.AddMessage(0, 3, 5)
	m.AddRecords(5, 5, 5)
	if m.TotalBytes() != 0 || m.TotalMessages() != 0 {
		t.Errorf("out-of-range adds leaked into the matrix: bytes=%d msgs=%d",
			m.TotalBytes(), m.TotalMessages())
	}
}

func TestCommMatrixAccounting(t *testing.T) {
	m := NewCommMatrix(2, 3)
	m.AddMessage(0, 0, 100)
	m.AddMessage(0, 0, 50) // second message, same cell
	m.AddMessage(0, 2, 10)
	m.AddMessage(1, 1, 30)
	m.AddRecords(0, 0, 7)
	m.AddRecords(1, 1, 2)

	if got := m.Bytes(0, 0); got != 150 {
		t.Errorf("Bytes(0,0) = %d, want 150", got)
	}
	if got := m.Messages(0, 0); got != 2 {
		t.Errorf("Messages(0,0) = %d, want 2", got)
	}
	if got := m.Records(0, 0); got != 7 {
		t.Errorf("Records(0,0) = %d, want 7", got)
	}
	rows := m.RowBytes()
	if rows[0] != 160 || rows[1] != 30 {
		t.Errorf("RowBytes = %v, want [160 30]", rows)
	}
	cols := m.ColBytes()
	if cols[0] != 150 || cols[1] != 30 || cols[2] != 10 {
		t.Errorf("ColBytes = %v, want [150 30 10]", cols)
	}
	if m.TotalBytes() != 190 {
		t.Errorf("TotalBytes = %d, want 190", m.TotalBytes())
	}
	if m.TotalMessages() != 4 {
		t.Errorf("TotalMessages = %d, want 4", m.TotalMessages())
	}
	grid := m.BytesGrid()
	if grid[0][0] != 150 || grid[0][2] != 10 || grid[1][1] != 30 {
		t.Errorf("BytesGrid = %v", grid)
	}
	rec := m.RecordsGrid()
	if rec[0][0] != 7 || rec[1][1] != 2 {
		t.Errorf("RecordsGrid = %v", rec)
	}
}

// TestCommMatrixConcurrent mirrors the engines' recording pattern: each
// producer goroutine writes its own row while readers snapshot totals.
// Run under -race this proves the atomic-cell claim.
func TestCommMatrixConcurrent(t *testing.T) {
	const numO, numA, perCell = 4, 4, 500
	m := NewCommMatrix(numO, numA)
	var wg sync.WaitGroup
	for o := 0; o < numO; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			for i := 0; i < perCell; i++ {
				for a := 0; a < numA; a++ {
					m.AddMessage(o, a, 8)
					m.AddRecords(o, a, 1)
				}
				if i%100 == 0 {
					_ = m.TotalBytes()
					_ = m.ColBytes()
				}
			}
		}(o)
	}
	wg.Wait()
	want := int64(numO * numA * perCell * 8)
	if m.TotalBytes() != want {
		t.Errorf("TotalBytes = %d, want %d", m.TotalBytes(), want)
	}
	if m.TotalMessages() != numO*numA*perCell {
		t.Errorf("TotalMessages = %d, want %d", m.TotalMessages(), numO*numA*perCell)
	}
	for o := 0; o < numO; o++ {
		for a := 0; a < numA; a++ {
			if m.Records(o, a) != perCell {
				t.Fatalf("Records(%d,%d) = %d, want %d", o, a, m.Records(o, a), perCell)
			}
		}
	}
}
