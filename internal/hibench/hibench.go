// Package hibench reproduces the Intel HiBench 3.0 Hive workloads the
// paper uses as micro benchmarks (§V-B): a Zipfian web-log generator
// for the rankings and uservisits tables, the AGGREGATE and JOIN
// HiveQL workloads, and the TeraSort workload used as the "regular
// Hadoop job" contrast in the communication-characteristics study
// (Fig. 2).
package hibench

import (
	"fmt"
	"math/rand"

	"hivempi/internal/hive"
	"hivempi/internal/types"
)

// Approximate bytes per generated row, used to size datasets like the
// paper's Table I (uservisits dominates; rankings is ~5% of the total).
const (
	visitRowBytes   = 150
	rankingRowBytes = 60
)

// Sizes derives row counts from a target dataset size in bytes,
// following Table I's ratio (rankings ≈ 1/20 of uservisits).
func Sizes(totalBytes int64) (rankings, uservisits int) {
	uv := totalBytes * 19 / 20
	rk := totalBytes - uv
	uservisits = int(uv / visitRowBytes)
	rankings = int(rk / rankingRowBytes)
	if uservisits < 16 {
		uservisits = 16
	}
	if rankings < 8 {
		rankings = 8
	}
	return rankings, uservisits
}

// DDL creates the HiBench tables in the given format.
func DDL(format string) string {
	stored := ""
	if format != "" {
		stored = " STORED AS " + format
	}
	return fmt.Sprintf(`
		CREATE TABLE rankings (pageurl string, pagerank bigint, avgduration bigint)%s;
		CREATE TABLE uservisits (sourceip string, desturl string, visitdate date,
			adrevenue double, useragent string, countrycode string,
			languagecode string, searchword string, duration bigint)%s;
		CREATE TABLE uservisits_aggre (sourceip string, sumadrevenue double)%s;
		CREATE TABLE rankings_uservisits_join (sourceip string, avgpagerank double,
			totalrevenue double)%s;
	`, stored, stored, stored, stored)
}

// Generator produces the HiBench dataset. URLs follow a Zipfian
// distribution (the paper: "The data set of HiBench conforms to the
// Zipfian distribution"), which is the source of the AGGREGATE
// workload's skew.
type Generator struct {
	Seed       int64
	Rankings   int
	UserVisits int
	// ZipfS controls skew; the default 1.05 gives HiBench-like moderate
	// skew (the hottest key holds a few percent of the mass).
	ZipfS float64
}

var (
	agents    = []string{"Mozilla/5.0", "Opera/9.8", "Safari/5.1", "Chrome/12.0", "IE/9.0"}
	countries = []string{"USA", "CHN", "DEU", "FRA", "JPN", "GBR", "IND", "BRA"}
	languages = []string{"en", "zh", "de", "fr", "ja", "pt", "hi"}
	words     = []string{"car", "book", "movie", "music", "game", "hotel", "flight",
		"shoes", "laptop", "camera", "phone", "garden"}
)

func (g *Generator) zipf(r *rand.Rand, n int) *rand.Zipf {
	s := g.ZipfS
	if s <= 1 {
		s = 1.05
	}
	return rand.NewZipf(r, s, 1, uint64(n-1))
}

func pageURL(i uint64) string {
	return fmt.Sprintf("http://site%03d.example.com/page%d.html", i%997, i)
}

// GenRankings produces the rankings table rows.
func (g *Generator) GenRankings() []types.Row {
	r := rand.New(rand.NewSource(g.Seed*31 + 1))
	rows := make([]types.Row, g.Rankings)
	for i := range rows {
		rows[i] = types.Row{
			types.String(pageURL(uint64(i))),
			types.Int(int64(1 + r.Intn(1000))),
			types.Int(int64(1 + r.Intn(300))),
		}
	}
	return rows
}

// GenUserVisits produces the uservisits table rows. Destination URLs
// are Zipfian over the rankings URLs and source IPs are Zipfian over a
// smaller pool, producing the irregular aggregation skew of §III.
func (g *Generator) GenUserVisits() []types.Row {
	r := rand.New(rand.NewSource(g.Seed*31 + 2))
	urlZ := g.zipf(r, max(g.Rankings, 2))
	ipPool := max(g.UserVisits/20, 8)
	ipZ := g.zipf(r, ipPool)
	start := types.MustDate("1999-01-01").I
	span := types.MustDate("2000-12-31").I - start
	rows := make([]types.Row, g.UserVisits)
	for i := range rows {
		ip := ipZ.Uint64()
		rows[i] = types.Row{
			types.String(fmt.Sprintf("158.112.%d.%d", ip/256, ip%256)),
			types.String(pageURL(urlZ.Uint64())),
			types.Date(start + r.Int63n(span)),
			types.Float(float64(r.Intn(100000)) / 100),
			types.String(agents[r.Intn(len(agents))]),
			types.String(countries[r.Intn(len(countries))]),
			types.String(languages[r.Intn(len(languages))]),
			types.String(words[r.Intn(len(words))]),
			types.Int(int64(1 + r.Intn(10))),
		}
	}
	return rows
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Load creates the schema and loads generated data through the driver.
func Load(d *hive.Driver, totalBytes int64, seed int64, format string, partsPer int) error {
	if partsPer <= 0 {
		partsPer = 1
	}
	if _, err := d.Run(DDL(format)); err != nil {
		return fmt.Errorf("hibench ddl: %w", err)
	}
	nr, nu := Sizes(totalBytes)
	g := &Generator{Seed: seed, Rankings: nr, UserVisits: nu}
	for table, rows := range map[string][]types.Row{
		"rankings":   g.GenRankings(),
		"uservisits": g.GenUserVisits(),
	} {
		parts := partsPer
		if len(rows) < parts {
			parts = 1
		}
		per := (len(rows) + parts - 1) / parts
		for pi := 0; pi < parts; pi++ {
			lo, hi := pi*per, (pi+1)*per
			if hi > len(rows) {
				hi = len(rows)
			}
			if lo >= hi {
				break
			}
			if err := d.LoadTableData(table, pi, rows[lo:hi]); err != nil {
				return fmt.Errorf("hibench load %s: %w", table, err)
			}
		}
	}
	return nil
}

// AggregateQuery is HiBench's AGGREGATE workload (one MapReduce job).
const AggregateQuery = `
	INSERT OVERWRITE TABLE uservisits_aggre
	SELECT sourceip, sum(adrevenue) FROM uservisits GROUP BY sourceip;`

// JoinQuery is HiBench's JOIN workload (three jobs: join, aggregate,
// order — matching the paper's JOB1/JOB2/JOB3 breakdown in Fig. 10).
const JoinQuery = `
	INSERT OVERWRITE TABLE rankings_uservisits_join
	SELECT nuv.sourceip, avg(r.pagerank) AS avgpagerank,
	       sum(nuv.adrevenue) AS totalrevenue
	FROM rankings r JOIN
	  (SELECT sourceip, desturl, adrevenue FROM uservisits
	   WHERE visitdate >= DATE '1999-01-01' AND visitdate <= DATE '2000-01-01') nuv
	  ON r.pageurl = nuv.desturl
	GROUP BY nuv.sourceip
	ORDER BY totalrevenue DESC;`

// Workloads names the two Hive micro benchmarks.
func Workloads() map[string]string {
	return map[string]string{
		"AGGREGATE": AggregateQuery,
		"JOIN":      JoinQuery,
	}
}
