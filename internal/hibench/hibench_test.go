package hibench

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"hivempi/internal/core"
	"hivempi/internal/dfs"
	"hivempi/internal/exec"
	"hivempi/internal/hive"
	"hivempi/internal/mrengine"
	"hivempi/internal/types"
)

// fingerprint renders rows with rounded floats: partial-aggregation
// order differs across engines, so float sums differ in the last ulps
// exactly as they do between Hive deployments.
func fingerprint(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, d := range r {
			if d.K == types.KindFloat {
				parts[j] = fmt.Sprintf("%.4f", d.F)
			} else {
				parts[j] = d.Text()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func newDriver(t *testing.T, engine exec.Engine) *hive.Driver {
	t.Helper()
	env := &exec.Env{FS: dfs.New(dfs.Config{
		BlockSize: 64 << 10,
		Nodes:     []string{"s1", "s2", "s3"},
	})}
	conf := exec.DefaultEngineConf()
	conf.SpillDir = t.TempDir()
	conf.Slaves = []string{"s1", "s2", "s3"}
	conf.SlotsPerNode = 2
	d := hive.NewDriver(env, engine, conf)
	if err := Load(d, 256<<10, 7, "sequencefile", 2); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSizesRatio(t *testing.T) {
	rk, uv := Sizes(20 << 20)
	if rk <= 0 || uv <= 0 {
		t.Fatal("non-positive sizes")
	}
	rb, ub := int64(rk)*rankingRowBytes, int64(uv)*visitRowBytes
	if ub < rb*10 {
		t.Errorf("uservisits %d bytes should dwarf rankings %d bytes (Table I)", ub, rb)
	}
}

func TestGeneratorZipfSkew(t *testing.T) {
	g := &Generator{Seed: 3, Rankings: 500, UserVisits: 20000}
	counts := map[string]int{}
	for _, r := range g.GenUserVisits() {
		counts[r[1].Str()]++
	}
	var freqs []int
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	// Zipf: the hottest URL should take a large share.
	if freqs[0] < 20000/10 {
		t.Errorf("top URL has %d of 20000 visits; distribution not skewed", freqs[0])
	}
	if len(freqs) < 10 {
		t.Errorf("only %d distinct URLs", len(freqs))
	}
}

func TestAggregateWorkloadBothEngines(t *testing.T) {
	var results [][]string
	for _, eng := range []exec.Engine{core.New(), mrengine.New()} {
		d := newDriver(t, eng)
		if _, err := d.Run(AggregateQuery); err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		res, err := d.Execute("SELECT sourceip, sumadrevenue FROM uservisits_aggre ORDER BY sourceip")
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, fingerprint(res.Rows))
	}
	if len(results[0]) == 0 {
		t.Fatal("aggregate produced no groups")
	}
	if len(results[0]) != len(results[1]) {
		t.Fatalf("engines disagree on group count: %d vs %d", len(results[0]), len(results[1]))
	}
	for i := range results[0] {
		if results[0][i] != results[1][i] {
			t.Fatalf("row %d: %s vs %s", i, results[0][i], results[1][i])
		}
	}
}

func TestJoinWorkloadBothEngines(t *testing.T) {
	var results [][]string
	for _, eng := range []exec.Engine{core.New(), mrengine.New()} {
		d := newDriver(t, eng)
		if _, err := d.Run(JoinQuery); err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		res, err := d.Execute(
			"SELECT sourceip, totalrevenue FROM rankings_uservisits_join ORDER BY totalrevenue DESC, sourceip")
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, fingerprint(res.Rows))
	}
	if len(results[0]) == 0 {
		t.Fatal("join produced no rows")
	}
	for i := range results[0] {
		if results[0][i] != results[1][i] {
			t.Fatalf("row %d: %s vs %s", i, results[0][i], results[1][i])
		}
	}
}

func TestJoinWorkloadStageCount(t *testing.T) {
	// The paper's JOIN workload runs three jobs (Fig. 10: JOB1..JOB3).
	// At paper scale rankings exceeds the broadcast threshold, so force
	// the common (shuffle) join here.
	d := newDriver(t, core.New())
	d.MapJoinThresholdBytes = 1
	if _, err := d.Run(JoinQuery); err != nil {
		t.Fatal(err)
	}
	queries := d.Collector.Queries()
	last := queries[len(queries)-1]
	if len(last.Stages) != 3 {
		for _, s := range last.Stages {
			t.Logf("stage: %s", s.Name)
		}
		t.Errorf("JOIN compiled into %d stages, paper has 3 jobs", len(last.Stages))
	}
}

func TestAggregateVsDirectComputation(t *testing.T) {
	d := newDriver(t, core.New())
	if _, err := d.Run(AggregateQuery); err != nil {
		t.Fatal(err)
	}
	res, err := d.Execute("SELECT sourceip, sumadrevenue FROM uservisits_aggre ORDER BY sourceip")
	if err != nil {
		t.Fatal(err)
	}
	// Recompute directly from the generator.
	nr, nu := Sizes(256 << 10)
	g := &Generator{Seed: 7, Rankings: nr, UserVisits: nu}
	want := map[string]float64{}
	for _, r := range g.GenUserVisits() {
		want[r[0].Str()] += r[3].Float()
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d groups, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		w := want[r[0].Str()]
		if diff := r[1].Float() - w; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("sum[%s] = %f, want %f", r[0].Str(), r[1].Float(), w)
		}
	}
}

func TestTeraSort(t *testing.T) {
	conf := exec.DefaultEngineConf()
	conf.SpillDir = t.TempDir()
	records := TeraGen(5000, 11)
	st, keys, err := RunTeraSort(records, 4, 3, conf)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(records) {
		t.Fatalf("sorted %d keys, want %d", len(keys), len(records))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) > 0 {
			t.Fatalf("keys out of order at %d", i)
		}
	}
	if st.NumMaps != 4 || st.NumReds != 3 {
		t.Errorf("trace geometry %d/%d", st.NumMaps, st.NumReds)
	}
	var pairs int64
	for _, m := range st.Producers {
		pairs += m.ShuffleOutPairs
	}
	if pairs != 5000 {
		t.Errorf("traced %d shuffle pairs, want 5000", pairs)
	}
}

func TestTeraGenDeterministic(t *testing.T) {
	a := TeraGen(100, 5)
	b := TeraGen(100, 5)
	for i := range a {
		if !bytes.Equal(a[i][0], b[i][0]) {
			t.Fatal("teragen not deterministic")
		}
	}
}

func TestKVSizeContrast(t *testing.T) {
	// Fig. 2(c,d): Hive collect sizes vary with column content, while
	// TeraSort pairs are fixed-width. Verify the traces reflect that.
	d := newDriver(t, core.New())
	if _, err := d.Run(AggregateQuery); err != nil {
		t.Fatal(err)
	}
	stages := d.Collector.AllStages()
	hist := stages[len(stages)-1].Producers[0].CollectSizes
	if hist.Total() == 0 {
		t.Fatal("no collect sizes recorded")
	}
	if len(hist.TopSizes(3)) == 0 {
		t.Error("no dominant sizes")
	}
	_ = types.KindInt
}
