package hibench

import (
	"fmt"
	"math/rand"

	"hivempi/internal/exec"
	"hivempi/internal/hadoop"
	"hivempi/internal/trace"
)

// TeraSort is the "regular Hadoop job" the paper contrasts with Hive
// workloads in Fig. 2: uniformly distributed fixed-width records sorted
// by key. It runs directly on the Hadoop engine (no Hive layer), so its
// collect-time sequence shows the well-distributed pattern of a typical
// MapReduce job.

// TeraRecord sizes match teragen: 10-byte keys, 90-byte values.
const (
	teraKeyBytes   = 10
	teraValueBytes = 90
	TeraRecordSize = teraKeyBytes + teraValueBytes
)

// TeraGen produces n uniformly random records.
func TeraGen(n int, seed int64) [][2][]byte {
	r := rand.New(rand.NewSource(seed))
	out := make([][2][]byte, n)
	for i := range out {
		key := make([]byte, teraKeyBytes)
		val := make([]byte, teraValueBytes)
		for j := range key {
			key[j] = byte(' ' + r.Intn(95))
		}
		r.Read(val)
		out[i] = [2][]byte{key, val}
	}
	return out
}

// RunTeraSort sorts the records with a MapReduce job and returns the
// stage trace. Output correctness is asserted by the caller via the
// returned sorted keys.
func RunTeraSort(records [][2][]byte, numMaps, numReduces int,
	conf exec.EngineConf) (*trace.Stage, [][]byte, error) {
	job, err := hadoop.NewJob(hadoop.Config{
		NumMaps:         numMaps,
		NumReduces:      numReduces,
		SortBufferBytes: conf.SortBufferBytes,
		MapSlots:        conf.MaxSlots(),
		ReduceSlots:     conf.MaxSlots(),
		SpillDir:        conf.SpillDir,
		// Range partitioner on the first key byte keeps global order
		// across reducers, like TeraSort's sampled partitioner.
		Partitioner: func(key []byte, n int) int {
			if len(key) == 0 {
				return 0
			}
			return int(key[0]) * n / 256
		},
	})
	if err != nil {
		return nil, nil, err
	}
	per := (len(records) + numMaps - 1) / numMaps
	var mu chan struct{} // buffered-1 semaphore for sorted output append
	mu = make(chan struct{}, 1)
	sorted := make([][][]byte, numReduces)
	err = job.Run(
		func(m *hadoop.MapContext) error {
			lo, hi := m.TaskID()*per, (m.TaskID()+1)*per
			if hi > len(records) {
				hi = len(records)
			}
			if lo > len(records) {
				lo = len(records)
			}
			for _, rec := range records[lo:hi] {
				if err := m.Emit(rec[0], rec[1]); err != nil {
					return err
				}
			}
			m.Metrics().InputRecords = int64(hi - lo)
			m.Metrics().InputBytes = int64((hi - lo) * TeraRecordSize)
			return nil
		},
		func(r *hadoop.ReduceContext) error {
			var keys [][]byte
			for {
				key, vals, err := r.NextGroup()
				if err != nil {
					break
				}
				for range vals {
					keys = append(keys, key)
				}
			}
			mu <- struct{}{}
			sorted[r.TaskID()] = keys
			<-mu
			return nil
		})
	if err != nil {
		return nil, nil, fmt.Errorf("terasort: %w", err)
	}
	var all [][]byte
	for _, part := range sorted {
		all = append(all, part...)
	}
	st := &trace.Stage{
		Name:      "terasort",
		Engine:    "hadoop",
		NumMaps:   numMaps,
		NumReds:   numReduces,
		Producers: job.MapMetrics(),
		Consumers: job.ReduceMetrics(),
		Comm:      job.Comm(),
	}
	return st, all, nil
}
