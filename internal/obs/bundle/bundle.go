// Package bundle is the run-record plane of the observability stack: it
// serializes one complete run — the span tree with virtual-time phases,
// per-statement metric deltas (including histogram quantiles), per-stage
// communication matrices and skew statistics, adapt decisions, cluster
// membership events, plan-cache hit state and the perfmodel cost
// breakdown — into a single versioned JSON document
// (hivempi.bundle/v1). Bundles are written by `hiveql -bundle` and
// `benchsuite -bundle`, and diffed by cmd/tracediff (diff.go), which
// aligns two bundles stage-by-stage over structural plan keys and
// attributes the end-to-end virtual-time delta to named categories.
//
// Every stage's virtual time is decomposed into categories that sum —
// exactly, by construction — to the stage's simulated total, so a
// critical-path walk over the bundle reconciles with the query's
// makespan and attribution is never "roughly" right.
package bundle

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"hivempi/internal/obs"
	"hivempi/internal/obs/comm"
	"hivempi/internal/perfmodel"
	"hivempi/internal/trace"
)

// Schema identifies the bundle layout; bump on breaking changes so
// tracediff can reject bundles it cannot parse.
const Schema = "hivempi.bundle/v1"

// Attribution categories. Every stage's simulated total decomposes into
// these (compile is query-level); the order here is the canonical
// rendering order.
const (
	CatCompile   = "compile"    // parse + plan (absent on plan-cache hits)
	CatStartup   = "startup"    // job submit -> first task launch
	CatScan      = "scan"       // producer-side input read (launch+read)
	CatCompute   = "compute"    // operator CPU, map and reduce side
	CatCombiner  = "combiner"   // map-side combine share of the map CPU
	CatShuffle   = "shuffle"    // wire time: O/copy tail + consumer merge
	CatAwaitSkew = "await_skew" // reduce-phase excess over balanced work
	CatWrite     = "write"      // spill + sink materialization
	CatRecovery  = "recovery"   // retries, chaos delays, re-replication
	CatAdapt     = "adapt"      // skew-adaptive replanning charge
)

// Categories lists every category in canonical rendering order.
var Categories = []string{
	CatCompile, CatStartup, CatScan, CatCompute, CatCombiner,
	CatShuffle, CatAwaitSkew, CatWrite, CatRecovery, CatAdapt,
}

// Bundle is one serialized run record.
type Bundle struct {
	Schema  string         `json:"schema"`
	Label   string         `json:"label,omitempty"` // e.g. "skew.off"
	Queries []*QueryRecord `json:"queries"`
	// Events are cluster membership transitions observed during the run
	// (empty when no failure domain was attached).
	Events []ClusterEvent `json:"cluster_events,omitempty"`
}

// ClusterEvent mirrors cluster.Event without importing the package.
type ClusterEvent struct {
	Node string  `json:"node"`
	From string  `json:"from"`
	To   string  `json:"to"`
	At   float64 `json:"at_sec"`
}

// QueryRecord is one statement's complete run record.
type QueryRecord struct {
	Statement  string `json:"statement"`
	PlanKey    string `json:"plan_key"` // stage keys joined in plan order
	Overlapped bool   `json:"overlapped,omitempty"`
	CachedPlan bool   `json:"cached_plan,omitempty"`
	Degraded   string `json:"degraded,omitempty"`

	CompileSec float64 `json:"compile_sec"`
	TotalSec   float64 `json:"total_sec"`

	// Metrics is the statement's registry delta (counters, histogram
	// quantiles, imstore gauges), as reported by the driver.
	Metrics map[string]int64 `json:"metrics,omitempty"`

	Stages []*StageRecord `json:"stages"`
	// Spans is the reconstructed query->stage->task->phase tree.
	Spans *SpanRecord `json:"spans,omitempty"`
}

// StageRecord is one stage's virtual-time and communication record.
type StageRecord struct {
	Name      string   `json:"name"`
	Engine    string   `json:"engine"`
	PlanKey   string   `json:"plan_key"` // structural, rename-robust
	DependsOn []string `json:"depends_on,omitempty"`
	NumMaps   int      `json:"num_maps"`
	NumReds   int      `json:"num_reds"`

	StartSec float64 `json:"start_sec"` // launch offset within the query
	TotalSec float64 `json:"total_sec"`

	// The paper's startup / Map-Shuffle / others breakdown.
	StartupSec    float64 `json:"startup_sec"`
	MapShuffleSec float64 `json:"map_shuffle_sec"`
	OthersSec     float64 `json:"others_sec"`

	// Categories decomposes TotalSec exactly (see categorize).
	Categories map[string]float64 `json:"categories"`

	ShuffleBytes int64 `json:"shuffle_bytes,omitempty"` // scaled to paper size
	Vectorized   bool  `json:"vectorized,omitempty"`

	// Comm is the analyzed communication matrix with skew statistics
	// and per-rank waits (nil for stages without a shuffle).
	Comm *comm.StageComm `json:"comm,omitempty"`

	Adapt    *AdaptRecord    `json:"adapt,omitempty"`
	Recovery *RecoveryRecord `json:"recovery,omitempty"`
}

// AdaptRecord is the stage's skew-adaptive decision.
type AdaptRecord struct {
	Split   int     `json:"split"` // heavy buckets split onto extra ranks
	Fused   int     `json:"fused"` // light buckets folded together
	PlanSec float64 `json:"plan_sec"`
}

// RecoveryRecord is the stage's fault-tolerance accounting.
type RecoveryRecord struct {
	Attempts         int     `json:"attempts,omitempty"`
	TaskRetries      int     `json:"task_retries,omitempty"`
	RetryBackoffSec  float64 `json:"retry_backoff_sec,omitempty"`
	ChaosDelaySec    float64 `json:"chaos_delay_sec,omitempty"`
	RereplicationSec float64 `json:"rereplication_sec,omitempty"`
	Relaunched       bool    `json:"relaunched,omitempty"`
}

// SpanRecord serializes one node of the obs span tree.
type SpanRecord struct {
	Name     string            `json:"name"`
	Kind     string            `json:"kind"`
	Start    float64           `json:"start_sec"`
	End      float64           `json:"end_sec"`
	Engine   string            `json:"engine,omitempty"`
	Slot     int               `json:"slot,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanRecord     `json:"children,omitempty"`
}

// StatementInfo carries the driver-side facts about one executed
// statement (hive.Result fields, flattened so this package does not
// import the driver). Statements are matched to collector queries by
// exact statement string, in order.
type StatementInfo struct {
	Statement string
	Metrics   map[string]int64
	Degraded  string
}

// BuildInput is everything Build needs beyond the model params.
type BuildInput struct {
	Label      string
	Queries    []*trace.Query
	Statements []StatementInfo // optional; matched in order by statement
	Events     []ClusterEvent
}

// Build simulates every recorded query under p and assembles the run
// bundle. A nil params builds against perfmodel defaults. DDL and
// EXPLAIN statements produce no collector query, so Statements may be a
// superset of Queries; the match is a forward scan by statement string.
func Build(in BuildInput, p *perfmodel.Params) *Bundle {
	if p == nil {
		def := perfmodel.DefaultParams()
		p = &def
	}
	b := &Bundle{Schema: Schema, Label: in.Label, Events: in.Events}
	si := 0
	for _, q := range in.Queries {
		var info *StatementInfo
		for j := si; j < len(in.Statements); j++ {
			if in.Statements[j].Statement == q.Statement {
				info = &in.Statements[j]
				si = j + 1
				break
			}
		}
		b.Queries = append(b.Queries, buildQuery(q, info, p))
	}
	return b
}

func buildQuery(q *trace.Query, info *StatementInfo, p *perfmodel.Params) *QueryRecord {
	span, sim := obs.BuildQuerySpans(q, p)
	keys := planKeys(q.Stages)
	qr := &QueryRecord{
		Statement:  q.Statement,
		PlanKey:    strings.Join(keys, "+"),
		Overlapped: q.Overlapped,
		CachedPlan: q.CachedPlan,
		CompileSec: sim.Compile,
		TotalSec:   sim.Total,
		Spans:      spanRecord(span),
	}
	if info != nil {
		qr.Metrics = info.Metrics
		qr.Degraded = info.Degraded
	}
	for i, st := range q.Stages {
		if i >= len(sim.Stages) {
			break
		}
		qr.Stages = append(qr.Stages, buildStage(st, sim.Stages[i], keys[i], p))
	}
	return qr
}

func buildStage(st *trace.Stage, sim *perfmodel.StageTiming, key string, p *perfmodel.Params) *StageRecord {
	sr := &StageRecord{
		Name:          st.Name,
		Engine:        st.Engine,
		PlanKey:       key,
		DependsOn:     append([]string(nil), st.DependsOn...),
		NumMaps:       st.NumMaps,
		NumReds:       st.NumReds,
		StartSec:      sim.StartAt,
		TotalSec:      sim.Total,
		StartupSec:    sim.Startup,
		MapShuffleSec: sim.MapShuffle,
		OthersSec:     sim.Others,
		Categories:    categorize(st, sim, p),
		ShuffleBytes:  int64(float64(st.TotalShuffleBytes()) * p.ScaleUp),
		Vectorized:    st.Vectorized,
		Comm:          comm.AnalyzeStage(st, p),
	}
	if st.AdaptSplit != 0 || st.AdaptFused != 0 || st.AdaptSec > 0 {
		sr.Adapt = &AdaptRecord{Split: st.AdaptSplit, Fused: st.AdaptFused, PlanSec: st.AdaptSec}
	}
	if st.Attempts > 1 || st.TaskRetries > 0 || st.RetryBackoffSec > 0 ||
		st.ChaosDelaySec > 0 || st.RereplicationSec > 0 || st.Relaunched {
		sr.Recovery = &RecoveryRecord{
			Attempts:         st.Attempts,
			TaskRetries:      st.TaskRetries,
			RetryBackoffSec:  st.RetryBackoffSec,
			ChaosDelaySec:    st.ChaosDelaySec,
			RereplicationSec: st.RereplicationSec,
			Relaunched:       st.Relaunched,
		}
	}
	return sr
}

// categorize decomposes one stage's simulated total into the named
// attribution categories. The decomposition is exact: the parts are
// derived from the same boundaries SimulateStage placed (startup |
// map phase | shuffle tail | reduce phase | recovery+adapt extras), the
// map and reduce phases are split proportionally over the task spans'
// read/compute/write segments, the reduce phase's excess over its
// balanced work (total consumer seconds / distinct slots) lands in
// await_skew, and the float residual is folded into compute so the sum
// equals TotalSec bit-for-bit within epsilon. This is a hivelint hot
// root (HotRootMethods): it runs per stage on every bundle capture and
// must stay allocation-clean in its loops.
func categorize(st *trace.Stage, sim *perfmodel.StageTiming, p *perfmodel.Params) map[string]float64 {
	e := p.Hadoop
	if st.Engine == "datampi" {
		e = p.DataMPI
	}

	// Extras charged after the reduce phase by SimulateStage.
	recovery := st.RetryBackoffSec + st.ChaosDelaySec + st.RereplicationSec
	if st.Attempts > 1 {
		recovery += float64(st.Attempts-1) * e.JobStartup
	}
	adaptSec := st.AdaptSec

	// Map phase wall time, split over the producers' segment sums.
	mapPhase := sim.MapEnd - sim.MapStart
	if mapPhase < 0 {
		mapPhase = 0
	}
	var readSum, compSum, writeSum float64
	for i := range sim.Producers {
		sp := &sim.Producers[i]
		readSum += sp.ReadEnd - sp.Start
		compSum += sp.ComputeEnd - sp.ReadEnd
		writeSum += sp.End - sp.ComputeEnd
	}
	scan, mapComp, mapWrite := splitProportional(mapPhase, readSum, compSum, writeSum)

	// Combiner share carved out of the map compute: priced like the
	// model prices per-record CPU over the pairs the combiner consumed.
	var combPairs float64
	for _, t := range st.Producers {
		combPairs += float64(t.CombineInPairs)
	}
	combiner := combPairs * p.ScaleUp * p.Cluster.CPUPerRecord * e.CPUFactor
	if combiner > mapComp {
		combiner = mapComp
	}
	mapComp -= combiner

	// Shuffle tail beyond the last map.
	shuffle := sim.ShuffleEnd - sim.MapEnd
	if shuffle < 0 {
		shuffle = 0
	}

	// Reduce phase: the balanced share is the total consumer seconds
	// spread over the distinct slots actually used; anything beyond it
	// is serialization behind heavy ranks — the skew/A-wait excess.
	reduceEnd := sim.Total - recovery - adaptSec
	reducePhase := reduceEnd - sim.ShuffleEnd
	if reducePhase < 0 {
		reducePhase = 0
	}
	maxSlot := -1
	for i := range sim.Consumers {
		if sim.Consumers[i].Slot > maxSlot {
			maxSlot = sim.Consumers[i].Slot
		}
	}
	used := make([]bool, maxSlot+1)
	distinct := 0
	var rMerge, rComp, rWrite, rDur float64
	for i := range sim.Consumers {
		sp := &sim.Consumers[i]
		rMerge += sp.ReadEnd - sp.Start
		rComp += sp.ComputeEnd - sp.ReadEnd
		rWrite += sp.End - sp.ComputeEnd
		rDur += sp.End - sp.Start
		if !used[sp.Slot] {
			used[sp.Slot] = true
			distinct++
		}
	}
	balanced := 0.0
	if distinct > 0 {
		balanced = rDur / float64(distinct)
	}
	if balanced > reducePhase {
		balanced = reducePhase
	}
	skew := reducePhase - balanced
	redMerge, redComp, redWrite := splitProportional(balanced, rMerge, rComp, rWrite)

	cat := make(map[string]float64, len(Categories))
	cat[CatStartup] = sim.Startup
	cat[CatScan] = scan
	cat[CatCompute] = mapComp + redComp
	cat[CatCombiner] = combiner
	cat[CatShuffle] = shuffle + redMerge
	cat[CatAwaitSkew] = skew
	cat[CatWrite] = mapWrite + redWrite
	cat[CatRecovery] = recovery
	cat[CatAdapt] = adaptSec

	// Fold the float residual into compute so the category sum equals
	// the stage total exactly.
	sum := cat[CatStartup] + cat[CatScan] + cat[CatCompute] + cat[CatCombiner] +
		cat[CatShuffle] + cat[CatAwaitSkew] + cat[CatWrite] + cat[CatRecovery] + cat[CatAdapt]
	cat[CatCompute] += sim.Total - sum
	return cat
}

// splitProportional divides total over three weights, returning parts
// that sum to total (modulo float error; callers fold the residual).
func splitProportional(total, a, b, c float64) (pa, pb, pc float64) {
	w := a + b + c
	if w <= 0 {
		return 0, total, 0 // no segments recorded: attribute to compute
	}
	return total * a / w, total * b / w, total * c / w
}

// planKeys derives a structural key per stage: a short hash over the
// stage's shape (map-only vs reduce, engine) and its dependencies'
// keys — never the stage name — so two runs of the same plan align even
// when the planner numbered the stages differently. Identical siblings
// are disambiguated with an ordinal suffix in plan order (which the
// planner emits deterministically).
func planKeys(stages []*trace.Stage) []string {
	index := make(map[string]int, len(stages))
	for i, st := range stages {
		index[st.Name] = i
	}
	keys := make([]string, len(stages))
	for i, st := range stages {
		h := fnv.New64a()
		if st.NumReds > 0 || len(st.Consumers) > 0 {
			io.WriteString(h, "reduce|")
		} else {
			io.WriteString(h, "map|")
		}
		io.WriteString(h, st.Engine)
		deps := make([]string, 0, len(st.DependsOn))
		for _, dep := range st.DependsOn {
			if j, ok := index[dep]; ok && j < i {
				deps = append(deps, keys[j])
			}
		}
		sortStrings(deps)
		for _, dk := range deps {
			io.WriteString(h, "|")
			io.WriteString(h, dk)
		}
		keys[i] = strconv.FormatUint(h.Sum64()&0xffffffff, 16)
	}
	counts := make(map[string]int, len(keys))
	for i, k := range keys {
		n := counts[k]
		counts[k] = n + 1
		if n > 0 {
			keys[i] = k + "#" + strconv.Itoa(n)
		}
	}
	return keys
}

// sortStrings is an insertion sort over the (tiny) dependency key
// lists, keeping planKeys free of sort.Slice closures.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func spanRecord(s *obs.Span) *SpanRecord {
	if s == nil {
		return nil
	}
	r := &SpanRecord{
		Name:   s.Name,
		Kind:   string(s.Kind),
		Start:  s.Start,
		End:    s.End,
		Engine: s.Engine,
		Slot:   s.Slot,
	}
	if len(s.Attrs) > 0 {
		r.Attrs = make(map[string]string, len(s.Attrs))
		for k, v := range s.Attrs {
			r.Attrs[k] = v
		}
	}
	for _, c := range s.Children {
		r.Children = append(r.Children, spanRecord(c))
	}
	return r
}

// reconcileTol is the relative tolerance for category-sum checks; the
// decomposition folds its residual, so anything beyond float noise is a
// construction bug.
const reconcileTol = 1e-6

// Validate checks the bundle's internal consistency: schema tag, that
// every stage's categories sum to its total, that the critical path's
// category sums reconcile with the query total, finite values
// throughout, and valid embedded comm matrices.
func (b *Bundle) Validate() error {
	if b == nil {
		return fmt.Errorf("bundle: nil")
	}
	if b.Schema != Schema {
		return fmt.Errorf("bundle: schema %q, want %q", b.Schema, Schema)
	}
	for qi, q := range b.Queries {
		if err := q.validate(); err != nil {
			return fmt.Errorf("bundle: query %d (%s): %w", qi, abbreviate(q.Statement), err)
		}
	}
	return nil
}

func (q *QueryRecord) validate() error {
	if !isFinite(q.TotalSec) || !isFinite(q.CompileSec) {
		return fmt.Errorf("non-finite totals: total=%v compile=%v", q.TotalSec, q.CompileSec)
	}
	var commStages []*comm.StageComm
	for _, st := range q.Stages {
		var sum float64
		for _, c := range Categories {
			v := st.Categories[c]
			if !isFinite(v) {
				return fmt.Errorf("stage %s: category %s is %v, want finite", st.Name, c, v)
			}
			if v < -reconcileTol {
				return fmt.Errorf("stage %s: category %s is negative (%v)", st.Name, c, v)
			}
			sum += v
		}
		for c := range st.Categories {
			if !knownCategory(c) {
				return fmt.Errorf("stage %s: unknown category %q", st.Name, c)
			}
		}
		if d := math.Abs(sum - st.TotalSec); d > reconcileTol*(1+st.TotalSec) {
			return fmt.Errorf("stage %s: categories sum to %v, total is %v (off by %v)",
				st.Name, sum, st.TotalSec, d)
		}
		if st.Comm != nil {
			commStages = append(commStages, st.Comm)
		}
	}
	// The critical-path categories plus compile must reconcile with the
	// query's virtual makespan — this is the invariant tracediff's
	// attribution rests on.
	pc := q.PathCategories()
	var sum float64
	for _, c := range Categories {
		sum += pc[c]
	}
	if d := math.Abs(sum - q.TotalSec); d > reconcileTol*(1+q.TotalSec) {
		return fmt.Errorf("critical-path categories sum to %v, query total is %v (off by %v)",
			sum, q.TotalSec, d)
	}
	if len(commStages) > 0 {
		rep := &comm.Report{Schema: comm.Schema, Queries: []*comm.QueryComm{
			{Statement: q.Statement, Stages: commStages},
		}}
		if err := rep.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func knownCategory(c string) bool {
	for _, k := range Categories {
		if k == c {
			return true
		}
	}
	return false
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func abbreviate(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

// WriteJSON serializes the bundle deterministically (indented, fixed
// field order; map keys sort under encoding/json).
func WriteJSON(w io.Writer, b *Bundle) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadJSON decodes and validates a bundle, rejecting unknown schema
// versions before touching the rest of the document.
func ReadJSON(r io.Reader) (*Bundle, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	if probe.Schema != Schema {
		return nil, fmt.Errorf("bundle: unknown schema %q (this tool reads %q)", probe.Schema, Schema)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// ReadFile loads and validates a bundle from path.
func ReadFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// WriteFile serializes a validated bundle to path.
func WriteFile(path string, b *Bundle) error {
	if err := b.Validate(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
