package bundle_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hivempi/internal/obs/bundle"
	"hivempi/internal/perfmodel"
	"hivempi/internal/testutil/leakcheck"
	"hivempi/internal/trace"
)

// synthStage builds a datampi shuffle stage whose consumers receive the
// given per-rank bytes (the skew knob of these tests).
func synthStage(name string, deps []string, consumerBytes []int64) *trace.Stage {
	st := &trace.Stage{
		Name:      name,
		Engine:    "datampi",
		NumMaps:   2,
		NumReds:   len(consumerBytes),
		DependsOn: deps,
	}
	var total int64
	for _, b := range consumerBytes {
		total += b
	}
	for o := 0; o < 2; o++ {
		parts := make([]int64, len(consumerBytes))
		for a, b := range consumerBytes {
			parts[a] = b / 2
		}
		st.Producers = append(st.Producers, &trace.Task{
			ID: o, Kind: trace.KindOTask, Host: "slave1",
			InputBytes: 64 << 10, InputRecords: 2000, LocalRead: true,
			ShuffleOutBytes: total / 2, ShuffleOutPairs: 1000,
			PartitionBytes: parts, CombineInPairs: 500, CombineOutPairs: 200,
			ForcedFlushes: int64(o + 1),
		})
	}
	for a, b := range consumerBytes {
		st.Consumers = append(st.Consumers, &trace.Task{
			ID: a, Kind: trace.KindATask, Host: "slave2",
			ShuffleInBytes: b, ShuffleInPairs: b / 16,
			WriteBytes: b / 4, OutputRecords: b / 32,
		})
	}
	return st
}

// mapOnlyStage builds a scan-only stage (no shuffle).
func mapOnlyStage(name string) *trace.Stage {
	return &trace.Stage{
		Name: name, Engine: "datampi", NumMaps: 2,
		Producers: []*trace.Task{
			{ID: 0, Kind: trace.KindOTask, InputBytes: 32 << 10, InputRecords: 900, LocalRead: true, WriteBytes: 8 << 10},
			{ID: 1, Kind: trace.KindOTask, InputBytes: 32 << 10, InputRecords: 900, LocalRead: true, WriteBytes: 8 << 10},
		},
	}
}

// synthQuery is a three-stage overlapped DAG: two independent producers
// feeding a join, the second branch carrying the skewed shuffle.
func synthQuery(stmt string, skewed []int64) *trace.Query {
	s1 := mapOnlyStage("stage-1")
	s2 := synthStage("stage-2", nil, skewed)
	s3 := synthStage("stage-3", []string{"stage-1", "stage-2"}, []int64{40 << 10, 44 << 10})
	return &trace.Query{Statement: stmt, Stages: []*trace.Stage{s1, s2, s3}, Overlapped: true}
}

func params() *perfmodel.Params {
	p := perfmodel.DefaultParams()
	return &p
}

func synthBundle(label string, skewed []int64) *bundle.Bundle {
	return bundle.Build(bundle.BuildInput{
		Label:   label,
		Queries: []*trace.Query{synthQuery("SELECT a FROM t GROUP BY a", skewed)},
		Statements: []bundle.StatementInfo{{
			Statement: "SELECT a FROM t GROUP BY a",
			Metrics:   map[string]int64{"shuffle.bytes": 123, "datampi.await.p95": 42},
		}},
		Events: []bundle.ClusterEvent{{Node: "slave3", From: "up", To: "suspect", At: 12.5}},
	}, params())
}

// TestBundleRoundTrip is the golden schema check: what WriteJSON
// encodes, ReadJSON decodes back to a byte-identical re-encoding.
func TestBundleRoundTrip(t *testing.T) {
	defer leakcheck.Check(t)()
	b := synthBundle("roundtrip", []int64{96 << 10, 8 << 10, 8 << 10, 8 << 10})
	if err := b.Validate(); err != nil {
		t.Fatalf("built bundle fails validation: %v", err)
	}
	var buf bytes.Buffer
	if err := bundle.WriteJSON(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := bundle.ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode of our own encoding failed: %v", err)
	}
	var buf2 bytes.Buffer
	if err := bundle.WriteJSON(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoded bundle differs from the original encoding (lossy round trip)")
	}
	if got.Label != "roundtrip" || len(got.Queries) != 1 || len(got.Events) != 1 {
		t.Errorf("decoded shape wrong: label=%q queries=%d events=%d",
			got.Label, len(got.Queries), len(got.Events))
	}
	q := got.Queries[0]
	if q.Metrics["shuffle.bytes"] != 123 || q.Metrics["datampi.await.p95"] != 42 {
		t.Errorf("statement metrics lost in round trip: %v", q.Metrics)
	}
	if q.Spans == nil || len(q.Spans.Children) == 0 {
		t.Error("span tree missing from bundle")
	}
	if len(q.Stages) != 3 || q.Stages[1].Comm == nil {
		t.Fatalf("stage records incomplete: %d stages", len(q.Stages))
	}
	if q.Stages[1].Comm.PartitionSkew == nil {
		t.Error("comm skew statistics missing from bundle stage")
	}
}

// TestUnknownSchemaRejected: a bundle from a future (or corrupted)
// schema version must be refused, not misparsed.
func TestUnknownSchemaRejected(t *testing.T) {
	defer leakcheck.Check(t)()
	b := synthBundle("v2", []int64{32 << 10, 32 << 10})
	var buf bytes.Buffer
	if err := bundle.WriteJSON(&buf, b); err != nil {
		t.Fatal(err)
	}
	mutated := bytes.Replace(buf.Bytes(), []byte(bundle.Schema), []byte("hivempi.bundle/v999"), 1)
	if _, err := bundle.ReadJSON(bytes.NewReader(mutated)); err == nil {
		t.Fatal("unknown schema version was accepted")
	} else if !strings.Contains(err.Error(), "hivempi.bundle/v999") {
		t.Errorf("rejection should name the offending schema, got: %v", err)
	}
}

// TestCategoryReconciliation: per stage, the categories sum to the
// stage total; per query, compile plus the critical path's categories
// sum to the query total — within float noise, far inside the 1%
// acceptance bound.
func TestCategoryReconciliation(t *testing.T) {
	defer leakcheck.Check(t)()
	b := synthBundle("recon", []int64{200 << 10, 4 << 10, 4 << 10, 4 << 10})
	for _, q := range b.Queries {
		for _, st := range q.Stages {
			var sum float64
			for _, c := range bundle.Categories {
				sum += st.Categories[c]
			}
			if d := math.Abs(sum - st.TotalSec); d > 1e-6*(1+st.TotalSec) {
				t.Errorf("stage %s: categories sum %.9f != total %.9f", st.Name, sum, st.TotalSec)
			}
		}
		pc := q.PathCategories()
		var sum float64
		for _, c := range bundle.Categories {
			sum += pc[c]
		}
		if d := math.Abs(sum - q.TotalSec); d > 1e-6*(1+q.TotalSec) {
			t.Errorf("critical-path sum %.9f != query total %.9f", sum, q.TotalSec)
		}
	}
}

// TestSkewLandsInAwaitCategory: a heavily skewed shuffle must charge
// its reduce-phase excess to await_skew, and a balanced copy of the
// same stage must not.
func TestSkewLandsInAwaitCategory(t *testing.T) {
	defer leakcheck.Check(t)()
	skewed := synthBundle("skewed", []int64{400 << 10, 2 << 10, 2 << 10, 2 << 10})
	balanced := synthBundle("balanced", []int64{100 << 10, 102 << 10, 100 << 10, 104 << 10})
	sk := skewed.Queries[0].Stages[1].Categories[bundle.CatAwaitSkew]
	bl := balanced.Queries[0].Stages[1].Categories[bundle.CatAwaitSkew]
	if sk <= bl {
		t.Errorf("skewed stage await_skew=%.3f <= balanced %.3f", sk, bl)
	}
	if sk <= 0 {
		t.Errorf("skewed stage charged no await_skew (%.3f)", sk)
	}
}

// TestPlanKeysStableUnderRenumbering: the same plan with every stage
// renamed (a replan that renumbered stages) yields identical plan keys,
// so tracediff still aligns the runs.
func TestPlanKeysStableUnderRenumbering(t *testing.T) {
	defer leakcheck.Check(t)()
	mk := func(names [3]string) *trace.Query {
		s1 := mapOnlyStage(names[0])
		s2 := synthStage(names[1], nil, []int64{32 << 10, 32 << 10})
		s3 := synthStage(names[2], []string{names[0], names[1]}, []int64{16 << 10, 16 << 10})
		return &trace.Query{Statement: "q", Stages: []*trace.Stage{s1, s2, s3}, Overlapped: true}
	}
	a := bundle.Build(bundle.BuildInput{Queries: []*trace.Query{mk([3]string{"stage-1", "stage-2", "stage-3"})}}, params())
	b := bundle.Build(bundle.BuildInput{Queries: []*trace.Query{mk([3]string{"stage-7", "stage-4", "stage-9"})}}, params())
	for i := range a.Queries[0].Stages {
		ak, bk := a.Queries[0].Stages[i].PlanKey, b.Queries[0].Stages[i].PlanKey
		if ak != bk {
			t.Errorf("stage %d: plan key %q != %q after renumbering", i, ak, bk)
		}
	}
	if a.Queries[0].PlanKey != b.Queries[0].PlanKey {
		t.Error("query plan key changed under stage renumbering")
	}
	// Sibling disambiguation: two structurally identical stages must get
	// distinct keys, in plan order.
	twin := &trace.Query{Statement: "twins", Stages: []*trace.Stage{
		synthStage("stage-1", nil, []int64{8 << 10, 8 << 10}),
		synthStage("stage-2", nil, []int64{8 << 10, 8 << 10}),
	}}
	tb := bundle.Build(bundle.BuildInput{Queries: []*trace.Query{twin}}, params())
	k0, k1 := tb.Queries[0].Stages[0].PlanKey, tb.Queries[0].Stages[1].PlanKey
	if k0 == k1 {
		t.Errorf("identical siblings share plan key %q", k0)
	}
}

// TestValidateCatchesCorruption: hand-broken category sums and totals
// must fail validation.
func TestValidateCatchesCorruption(t *testing.T) {
	defer leakcheck.Check(t)()
	b := synthBundle("corrupt", []int64{64 << 10, 64 << 10})
	b.Queries[0].Stages[1].Categories[bundle.CatCompute] += 5
	if err := b.Validate(); err == nil {
		t.Error("inflated category sum passed validation")
	}
	b = synthBundle("corrupt2", []int64{64 << 10, 64 << 10})
	b.Queries[0].TotalSec *= 2
	if err := b.Validate(); err == nil {
		t.Error("inconsistent query total passed validation")
	}
	b = synthBundle("corrupt3", []int64{64 << 10, 64 << 10})
	b.Queries[0].Stages[0].Categories["made_up"] = 0
	if err := b.Validate(); err == nil {
		t.Error("unknown category passed validation")
	}
}
