package bundle_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hivempi/internal/obs/bundle"
	"hivempi/internal/testutil/leakcheck"
	"hivempi/internal/trace"
)

// TestDiffAttributesSkewDelta is the unit-level version of the seeded
// regression test: the same plan run skewed vs. balanced must show a
// delta predominantly attributed to await_skew, and the category sums
// must reconcile exactly with the makespan delta.
func TestDiffAttributesSkewDelta(t *testing.T) {
	defer leakcheck.Check(t)()
	base := synthBundle("balanced", []int64{104 << 10, 100 << 10, 102 << 10, 106 << 10})
	cur := synthBundle("skewed", []int64{400 << 10, 4 << 10, 4 << 10, 4 << 10})
	r := bundle.Diff(base, cur)

	if r.Schema != bundle.DiffSchema {
		t.Errorf("diff schema = %q", r.Schema)
	}
	if r.DeltaSec <= 0 {
		t.Fatalf("skewed run should be slower: delta=%.3f", r.DeltaSec)
	}
	var sum float64
	for _, d := range r.Categories {
		sum += d
	}
	if math.Abs(sum-r.DeltaSec) > 1e-6*(1+math.Abs(r.DeltaSec)) {
		t.Errorf("category deltas sum %.9f != makespan delta %.9f", sum, r.DeltaSec)
	}
	skew := r.Categories[bundle.CatAwaitSkew]
	if skew < 0.5*r.DeltaSec {
		t.Errorf("await_skew attributed %.3fs of %.3fs delta (<50%%): %v",
			skew, r.DeltaSec, r.Categories)
	}
	if len(r.Queries) != 1 {
		t.Fatalf("expected 1 query diff, got %d", len(r.Queries))
	}
	qd := r.Queries[0]
	if qd.PathShifted {
		// Same plan on both sides; only durations changed.
		t.Error("path flagged as shifted for identical plans")
	}
	var qsum float64
	for _, d := range qd.Delta {
		qsum += d
	}
	if math.Abs(qsum-qd.DeltaSec) > 1e-6*(1+math.Abs(qd.DeltaSec)) {
		t.Errorf("query category deltas sum %.9f != query delta %.9f", qsum, qd.DeltaSec)
	}
	// Stage alignment: all three stages pair up by plan key.
	if len(qd.Stages) != 3 {
		t.Errorf("expected 3 aligned stages, got %d", len(qd.Stages))
	}
	for _, sd := range qd.Stages {
		if sd.BaseName == "" || sd.CurName == "" {
			t.Errorf("stage %s failed to align: base=%q cur=%q", sd.PlanKey, sd.BaseName, sd.CurName)
		}
	}
}

// TestDiffFlagsShiftedPath: when the plan itself changes (extra stage),
// the diff must carry the shifted-critical-path flag.
func TestDiffFlagsShiftedPath(t *testing.T) {
	defer leakcheck.Check(t)()
	base := synthBundle("a", []int64{64 << 10, 64 << 10})
	cur := synthBundle("b", []int64{64 << 10, 64 << 10})
	// Graft an extra stage onto cur's plan so the key sequence differs.
	q := synthQuery("SELECT a FROM t GROUP BY a", []int64{64 << 10, 64 << 10})
	q.Stages = append(q.Stages, synthStage("stage-4", []string{"stage-3"}, []int64{8 << 10, 8 << 10}))
	cur2 := bundle.Build(bundle.BuildInput{Label: cur.Label, Queries: []*trace.Query{q}}, params())
	r := bundle.Diff(base, cur2)
	if len(r.Queries) != 1 || !r.Queries[0].PathShifted {
		t.Error("plan change did not set PathShifted")
	}
	if !r.PathShifted {
		t.Error("report-level PathShifted not set")
	}
}

// TestDiffQueryCountMismatch: unpaired queries are attributed whole and
// flagged, never silently dropped.
func TestDiffQueryCountMismatch(t *testing.T) {
	defer leakcheck.Check(t)()
	base := synthBundle("a", []int64{64 << 10, 64 << 10})
	cur := synthBundle("b", []int64{64 << 10, 64 << 10})
	cur.Queries = append(cur.Queries, cur.Queries[0])
	r := bundle.Diff(base, cur)
	if !r.QueryCountMismatch {
		t.Error("query count mismatch not flagged")
	}
	var sum float64
	for _, d := range r.Categories {
		sum += d
	}
	if math.Abs(sum-r.DeltaSec) > 1e-6*(1+math.Abs(r.DeltaSec)) {
		t.Errorf("with unpaired query, category sum %.9f != delta %.9f", sum, r.DeltaSec)
	}
}

// TestRenderReport: the text report names the dominant category and
// both labels.
func TestRenderReport(t *testing.T) {
	defer leakcheck.Check(t)()
	base := synthBundle("balanced", []int64{100 << 10, 100 << 10, 100 << 10, 100 << 10})
	cur := synthBundle("skewed", []int64{380 << 10, 8 << 10, 8 << 10, 8 << 10})
	r := bundle.Diff(base, cur)
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"balanced", "skewed", bundle.CatAwaitSkew, "makespan"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	var jb bytes.Buffer
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jb.String(), bundle.DiffSchema) {
		t.Error("JSON report missing schema marker")
	}
}

// TestFindPairs: bundle-pair discovery over the <name>.<arm>.bundle.json
// convention, lexicographically-first arm as baseline.
func TestFindPairs(t *testing.T) {
	defer leakcheck.Check(t)()
	dir := t.TempDir()
	write := func(name string, b *bundle.Bundle) {
		if err := bundle.WriteFile(filepath.Join(dir, name), b); err != nil {
			t.Fatal(err)
		}
	}
	write("skew.off.bundle.json", synthBundle("skew.off", []int64{64 << 10, 64 << 10}))
	write("skew.on.bundle.json", synthBundle("skew.on", []int64{64 << 10, 64 << 10}))
	write("lonely.run.bundle.json", synthBundle("lonely.run", []int64{64 << 10, 64 << 10}))
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	pairs, err := bundle.FindPairs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("expected 1 pair, got %d: %+v", len(pairs), pairs)
	}
	p := pairs[0]
	if p.Name != "skew" || p.BaseArm != "off" || p.CurArm != "on" {
		t.Errorf("pair = %+v", p)
	}
	r, err := bundle.DiffPair(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaseLabel != "skew.off" || r.CurLabel != "skew.on" {
		t.Errorf("pair diff labels: %q -> %q", r.BaseLabel, r.CurLabel)
	}
}
