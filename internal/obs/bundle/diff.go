// Critical-path extraction and cross-run attribution: the tracediff
// half of the bundle plane. Two bundles are aligned query-by-query (in
// run order) and stage-by-stage (over structural plan keys, robust to
// stage renumbering); each query's critical path is walked through its
// stage DAG, and the end-to-end virtual-time delta is attributed to the
// named categories. Category deltas sum to the makespan delta exactly —
// the same reconciliation invariant Validate enforces per bundle.
package bundle

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DiffSchema identifies the tracediff JSON layout.
const DiffSchema = "hivempi.tracediff/v1"

// CriticalPath returns the indices of the stages on the query's
// virtual-time critical path, in execution order. A serial query's
// path is every stage (they ran back to back); an overlapped query's
// path walks back from the last-finishing stage through the dependency
// whose finish time gates each start.
func (q *QueryRecord) CriticalPath() []int {
	n := len(q.Stages)
	if n == 0 {
		return nil
	}
	if !q.Overlapped {
		path := make([]int, n)
		for i := range path {
			path[i] = i
		}
		return path
	}
	byName := make(map[string]int, n)
	for i, st := range q.Stages {
		byName[st.Name] = i
	}
	finish := func(i int) float64 { return q.Stages[i].StartSec + q.Stages[i].TotalSec }
	cur := 0
	for i := 1; i < n; i++ {
		if finish(i) > finish(cur) {
			cur = i
		}
	}
	path := []int{cur}
	for {
		best := -1
		for _, dep := range q.Stages[cur].DependsOn {
			j, ok := byName[dep]
			if !ok {
				continue
			}
			if best < 0 || finish(j) > finish(best) || (finish(j) == finish(best) && j < best) {
				best = j
			}
		}
		if best < 0 {
			break
		}
		path = append(path, best)
		cur = best
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// PathCategories sums the critical path's per-stage categories plus the
// compile charge; by construction the result reconciles with TotalSec.
func (q *QueryRecord) PathCategories() map[string]float64 {
	out := make(map[string]float64, len(Categories))
	out[CatCompile] = q.CompileSec
	for _, i := range q.CriticalPath() {
		for _, c := range Categories {
			out[c] += q.Stages[i].Categories[c]
		}
	}
	return out
}

// pathKeys returns the plan keys along the critical path.
func (q *QueryRecord) pathKeys() []string {
	path := q.CriticalPath()
	keys := make([]string, len(path))
	for i, j := range path {
		keys[i] = q.Stages[j].PlanKey
	}
	return keys
}

// DiffReport is the machine-readable attribution of a bundle pair.
type DiffReport struct {
	Schema    string `json:"schema"`
	BaseLabel string `json:"base_label,omitempty"`
	CurLabel  string `json:"cur_label,omitempty"`

	BaseSec  float64 `json:"base_sec"`
	CurSec   float64 `json:"cur_sec"`
	DeltaSec float64 `json:"delta_sec"`

	// Categories attributes DeltaSec: summed per-category deltas over
	// every aligned query's critical path (they sum to DeltaSec).
	Categories map[string]float64 `json:"categories"`

	// PathShifted reports that at least one query's critical path runs
	// through structurally different stages in the two bundles.
	PathShifted bool `json:"path_shifted,omitempty"`
	// QueryCountMismatch flags bundles with different statement counts;
	// unpaired queries contribute their whole path to the delta.
	QueryCountMismatch bool `json:"query_count_mismatch,omitempty"`

	Queries []*QueryDiff `json:"queries"`
}

// QueryDiff is one aligned statement pair.
type QueryDiff struct {
	Statement string `json:"statement"`

	BaseSec  float64 `json:"base_sec"`
	CurSec   float64 `json:"cur_sec"`
	DeltaSec float64 `json:"delta_sec"`

	PathShifted bool     `json:"path_shifted,omitempty"`
	BasePath    []string `json:"base_path,omitempty"` // stage names on the path
	CurPath     []string `json:"cur_path,omitempty"`

	Base  map[string]float64 `json:"base_categories"`
	Cur   map[string]float64 `json:"cur_categories"`
	Delta map[string]float64 `json:"delta_categories"`

	Stages []*StageDiff `json:"stages,omitempty"`
}

// StageDiff is one plan-key-aligned stage pair (or an unmatched stage,
// with the missing side zeroed and the name empty).
type StageDiff struct {
	PlanKey  string `json:"plan_key"`
	BaseName string `json:"base_name,omitempty"`
	CurName  string `json:"cur_name,omitempty"`

	BaseSec  float64 `json:"base_sec"`
	CurSec   float64 `json:"cur_sec"`
	DeltaSec float64 `json:"delta_sec"`

	OnPathBase bool `json:"on_path_base,omitempty"`
	OnPathCur  bool `json:"on_path_cur,omitempty"`

	BaseShuffleBytes int64 `json:"base_shuffle_bytes,omitempty"`
	CurShuffleBytes  int64 `json:"cur_shuffle_bytes,omitempty"`
}

// Diff aligns two bundles and attributes the virtual-makespan delta
// (cur minus base) to categories along the critical paths.
func Diff(base, cur *Bundle) *DiffReport {
	r := &DiffReport{
		Schema:     DiffSchema,
		BaseLabel:  base.Label,
		CurLabel:   cur.Label,
		Categories: make(map[string]float64, len(Categories)),
	}
	n := len(base.Queries)
	if len(cur.Queries) != n {
		r.QueryCountMismatch = true
		if len(cur.Queries) < n {
			n = len(cur.Queries)
		}
	}
	for i := 0; i < n; i++ {
		qd := diffQuery(base.Queries[i], cur.Queries[i])
		r.Queries = append(r.Queries, qd)
		r.BaseSec += qd.BaseSec
		r.CurSec += qd.CurSec
		if qd.PathShifted {
			r.PathShifted = true
		}
		for _, c := range Categories {
			r.Categories[c] += qd.Delta[c]
		}
	}
	// Unpaired queries: their whole critical path lands in the delta.
	for i := n; i < len(base.Queries); i++ {
		q := base.Queries[i]
		r.BaseSec += q.TotalSec
		pc := q.PathCategories()
		for _, c := range Categories {
			r.Categories[c] -= pc[c]
		}
	}
	for i := n; i < len(cur.Queries); i++ {
		q := cur.Queries[i]
		r.CurSec += q.TotalSec
		pc := q.PathCategories()
		for _, c := range Categories {
			r.Categories[c] += pc[c]
		}
	}
	r.DeltaSec = r.CurSec - r.BaseSec
	return r
}

func diffQuery(base, cur *QueryRecord) *QueryDiff {
	qd := &QueryDiff{
		Statement: base.Statement,
		BaseSec:   base.TotalSec,
		CurSec:    cur.TotalSec,
		DeltaSec:  cur.TotalSec - base.TotalSec,
		Base:      base.PathCategories(),
		Cur:       cur.PathCategories(),
		Delta:     make(map[string]float64, len(Categories)),
	}
	for _, c := range Categories {
		qd.Delta[c] = qd.Cur[c] - qd.Base[c]
	}
	basePath, curPath := base.CriticalPath(), cur.CriticalPath()
	for _, i := range basePath {
		qd.BasePath = append(qd.BasePath, base.Stages[i].Name)
	}
	for _, i := range curPath {
		qd.CurPath = append(qd.CurPath, cur.Stages[i].Name)
	}
	bk, ck := base.pathKeys(), cur.pathKeys()
	qd.PathShifted = !equalStrings(bk, ck)

	// Stage-level alignment over plan keys (all stages, not just the
	// path), so per-stage deltas survive renumbering.
	onBase := pathSet(basePath)
	onCur := pathSet(curPath)
	curBy := make(map[string]int, len(cur.Stages))
	for j, st := range cur.Stages {
		curBy[st.PlanKey] = j
	}
	matched := make(map[int]bool, len(cur.Stages))
	for i, bs := range base.Stages {
		sd := &StageDiff{
			PlanKey:          bs.PlanKey,
			BaseName:         bs.Name,
			BaseSec:          bs.TotalSec,
			OnPathBase:       onBase[i],
			BaseShuffleBytes: bs.ShuffleBytes,
		}
		if j, ok := curBy[bs.PlanKey]; ok {
			cs := cur.Stages[j]
			matched[j] = true
			sd.CurName = cs.Name
			sd.CurSec = cs.TotalSec
			sd.OnPathCur = onCur[j]
			sd.CurShuffleBytes = cs.ShuffleBytes
		}
		sd.DeltaSec = sd.CurSec - sd.BaseSec
		qd.Stages = append(qd.Stages, sd)
	}
	for j, cs := range cur.Stages {
		if matched[j] {
			continue
		}
		qd.Stages = append(qd.Stages, &StageDiff{
			PlanKey:         cs.PlanKey,
			CurName:         cs.Name,
			CurSec:          cs.TotalSec,
			DeltaSec:        cs.TotalSec,
			OnPathCur:       onCur[j],
			CurShuffleBytes: cs.ShuffleBytes,
		})
	}
	return qd
}

func pathSet(path []int) map[int]bool {
	s := make(map[int]bool, len(path))
	for _, i := range path {
		s[i] = true
	}
	return s
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rankedCategories returns category names ordered by |delta| descending
// (ties alphabetically), dropping zero entries.
func rankedCategories(delta map[string]float64) []string {
	out := make([]string, 0, len(Categories))
	for _, c := range Categories {
		if delta[c] != 0 {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := math.Abs(delta[out[i]]), math.Abs(delta[out[j]])
		if di != dj {
			return di > dj
		}
		return out[i] < out[j]
	})
	return out
}

// Render writes the human-readable attribution report.
func (r *DiffReport) Render(w io.Writer) {
	fmt.Fprintf(w, "tracediff: %s -> %s\n", orDefault(r.BaseLabel, "base"), orDefault(r.CurLabel, "current"))
	pct := 0.0
	if r.BaseSec > 0 {
		pct = 100 * r.DeltaSec / r.BaseSec
	}
	fmt.Fprintf(w, "  virtual makespan %10.1fs -> %10.1fs   (%+.1fs, %+.1f%%)\n",
		r.BaseSec, r.CurSec, r.DeltaSec, pct)
	if r.QueryCountMismatch {
		fmt.Fprintf(w, "  WARNING: bundles record different statement counts; unpaired queries attributed whole\n")
	}
	if r.PathShifted {
		fmt.Fprintf(w, "  NOTE: critical path SHIFTED between runs (see per-query paths below)\n")
	}
	fmt.Fprintf(w, "  critical-path delta by category:\n")
	total := math.Abs(r.DeltaSec)
	for _, c := range rankedCategories(r.Categories) {
		share := 0.0
		if total > 0 {
			share = 100 * math.Abs(r.Categories[c]) / total
		}
		fmt.Fprintf(w, "    %-10s %+10.1fs   (%5.1f%% of |delta|)\n", c, r.Categories[c], share)
	}
	for _, qd := range r.Queries {
		fmt.Fprintf(w, "  query: %s\n", abbreviate(qd.Statement))
		fmt.Fprintf(w, "    %10.1fs -> %10.1fs  (%+.1fs)\n", qd.BaseSec, qd.CurSec, qd.DeltaSec)
		if qd.PathShifted {
			fmt.Fprintf(w, "    path shifted: [%s] -> [%s]\n",
				strings.Join(qd.BasePath, " "), strings.Join(qd.CurPath, " "))
		}
		ranked := rankedCategories(qd.Delta)
		if len(ranked) > 3 {
			ranked = ranked[:3]
		}
		for _, c := range ranked {
			fmt.Fprintf(w, "    %-10s %+10.1fs\n", c, qd.Delta[c])
		}
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// Pair is one <name>.<arm>.bundle.json pair found in a directory; the
// lexicographically first arm is the baseline (so skew.off diffs
// against skew.on the intuitive way round).
type Pair struct {
	Name              string
	BaseArm, CurArm   string
	BasePath, CurPath string
}

// FindPairs scans dir for bundle files named <name>.<arm>.bundle.json
// and returns every name with exactly two arms, sorted by name. Files
// not matching the convention (or names with one or three-plus arms)
// are skipped — a lone capture bundle next to an A/B pair is fine.
func FindPairs(dir string) ([]Pair, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	const suffix = ".bundle.json"
	arms := make(map[string][]string)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, suffix) {
			continue
		}
		stem := strings.TrimSuffix(name, suffix)
		dot := strings.LastIndex(stem, ".")
		if dot <= 0 || dot == len(stem)-1 {
			continue
		}
		arms[stem[:dot]] = append(arms[stem[:dot]], stem[dot+1:])
	}
	names := make([]string, 0, len(arms))
	for n, a := range arms {
		if len(a) == 2 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	pairs := make([]Pair, 0, len(names))
	for _, n := range names {
		a := arms[n]
		sort.Strings(a)
		pairs = append(pairs, Pair{
			Name:     n,
			BaseArm:  a[0],
			CurArm:   a[1],
			BasePath: filepath.Join(dir, n+"."+a[0]+suffix),
			CurPath:  filepath.Join(dir, n+"."+a[1]+suffix),
		})
	}
	return pairs, nil
}

// DiffPair loads and diffs one discovered pair.
func DiffPair(p Pair) (*DiffReport, error) {
	base, err := ReadFile(p.BasePath)
	if err != nil {
		return nil, err
	}
	cur, err := ReadFile(p.CurPath)
	if err != nil {
		return nil, err
	}
	return Diff(base, cur), nil
}

// WriteJSON serializes the diff report (indented, deterministic).
func (r *DiffReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
