package comm_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"math"
	"os"
	"strings"
	"testing"

	"hivempi/internal/datampi"
	"hivempi/internal/metrics"
	"hivempi/internal/obs/comm"
	"hivempi/internal/perfmodel"
	"hivempi/internal/testutil/leakcheck"
	"hivempi/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestSkewOf(t *testing.T) {
	defer leakcheck.Check(t)()
	// Empty and all-zero distributions are defined, not NaN: CV=0,
	// max/mean=0 (the historical 0/0 here is the comm_report poisoner).
	for _, degenerate := range []*comm.Skew{comm.SkewOf(nil, 3), comm.SkewOf([]int64{0, 0}, 3)} {
		if degenerate == nil {
			t.Fatal("degenerate distribution must yield a zero skew, not nil")
		}
		for _, v := range []float64{degenerate.CV, degenerate.MaxMeanRatio, degenerate.MeanBytes} {
			if v != 0 || math.IsNaN(v) {
				t.Errorf("degenerate skew stat = %v, want exactly 0", v)
			}
		}
		if len(degenerate.Top) != 0 {
			t.Errorf("degenerate skew kept top cells: %+v", degenerate.Top)
		}
	}
	s := comm.SkewOf([]int64{100, 100, 100, 100}, 3)
	if s.MaxMeanRatio != 1 || s.CV != 0 {
		t.Errorf("uniform distribution: ratio=%f cv=%f, want 1/0", s.MaxMeanRatio, s.CV)
	}
	if len(s.Top) != 3 {
		t.Errorf("top-k kept %d cells, want 3", len(s.Top))
	}

	// All-to-one: ratio equals the rank count, cv = sqrt(n-1).
	s = comm.SkewOf([]int64{0, 400, 0, 0}, 5)
	if s.MaxBytes != 400 || s.MaxMeanRatio != 4 {
		t.Errorf("all-to-one: max=%d ratio=%f, want 400/4", s.MaxBytes, s.MaxMeanRatio)
	}
	if math.Abs(s.CV-math.Sqrt(3)) > 1e-9 {
		t.Errorf("all-to-one cv = %f, want sqrt(3)", s.CV)
	}
	if len(s.Top) != 1 || s.Top[0].Rank != 1 || s.Top[0].Share != 1 {
		t.Errorf("top = %+v, want single cell rank 1 share 1", s.Top)
	}

	// Heaviest-first ordering with ties broken by rank.
	s = comm.SkewOf([]int64{10, 30, 30, 20}, 2)
	if s.Top[0].Rank != 1 || s.Top[1].Rank != 2 {
		t.Errorf("top order = %+v, want ranks 1,2", s.Top)
	}
}

// skewStage builds a 2x2 datampi stage with a recorded wire matrix and
// task-level accounting, mirroring what the engine produces.
func skewStage() *trace.Stage {
	m := trace.NewCommMatrix(2, 2)
	m.AddMessage(0, 0, 300)
	m.AddMessage(0, 1, 100)
	m.AddMessage(1, 0, 500)
	m.AddRecords(0, 0, 3)
	m.AddRecords(1, 0, 5)
	return &trace.Stage{
		Name:   "stage1",
		Engine: "datampi",
		Producers: []*trace.Task{
			{ShuffleOutBytes: 400, BufPeakBytes: 512, ForcedFlushes: 2, WaitRounds: 1},
			{ShuffleOutBytes: 500, BufPeakBytes: 256, WaitRounds: 1},
		},
		Consumers: []*trace.Task{
			{ShuffleInBytes: 800, RecvRounds: 2},
			{ShuffleInBytes: 100, RecvRounds: 1},
		},
		Comm: m,
	}
}

func TestAnalyzeStage(t *testing.T) {
	defer leakcheck.Check(t)()
	if comm.AnalyzeStage(nil, nil) != nil {
		t.Error("nil stage must analyze to nil")
	}
	if comm.AnalyzeStage(&trace.Stage{Name: "ddl"}, nil) != nil {
		t.Error("stage without communication must analyze to nil")
	}

	p := perfmodel.DefaultParams()
	sc := comm.AnalyzeStage(skewStage(), &p)
	if sc == nil {
		t.Fatal("AnalyzeStage returned nil for a shuffle stage")
	}
	if sc.Derived {
		t.Error("recorded matrix misreported as derived")
	}
	if sc.TotalBytes != 900 || sc.TotalRecords != 8 || sc.TotalMessages != 3 {
		t.Errorf("totals bytes=%d records=%d msgs=%d, want 900/8/3",
			sc.TotalBytes, sc.TotalRecords, sc.TotalMessages)
	}
	if sc.RowBytes[0] != 400 || sc.RowBytes[1] != 500 {
		t.Errorf("row bytes = %v, want [400 500]", sc.RowBytes)
	}
	if sc.ColBytes[0] != 800 || sc.ColBytes[1] != 100 {
		t.Errorf("col bytes = %v, want [800 100]", sc.ColBytes)
	}
	if sc.BufPeakBytes != 512 || sc.ForcedFlushes != 2 || sc.RecvRounds != 3 || sc.WaitRounds != 2 {
		t.Errorf("task accounting = peak %d forced %d recv %d wait %d",
			sc.BufPeakBytes, sc.ForcedFlushes, sc.RecvRounds, sc.WaitRounds)
	}
	if sc.PartitionSkew == nil || sc.PartitionSkew.Top[0].Rank != 0 {
		t.Errorf("partition skew = %+v, want hot consumer 0", sc.PartitionSkew)
	}

	// Blocking datampi: per-rank wait = col bytes at the NIC + one
	// blocking-sync charge per absorbed message.
	want0 := 800*p.ScaleUp/p.Cluster.NetBW + 2*p.DataMPI.BlockingSync
	want1 := 100*p.ScaleUp/p.Cluster.NetBW + 1*p.DataMPI.BlockingSync
	if math.Abs(sc.AWaitSecPerRank[0]-want0) > 1e-12 || math.Abs(sc.AWaitSecPerRank[1]-want1) > 1e-12 {
		t.Errorf("a-wait per rank = %v, want [%g %g]", sc.AWaitSecPerRank, want0, want1)
	}
	if math.Abs(sc.AWaitSec-(want0+want1)) > 1e-12 {
		t.Errorf("a-wait total = %g, want %g", sc.AWaitSec, want0+want1)
	}

	// Per-rank forced-flush breakdown: one entry per O-rank, summing to
	// the stage total (producer 0 flushed twice, producer 1 never).
	if len(sc.ForcedFlushesPerRank) != 2 ||
		sc.ForcedFlushesPerRank[0] != 2 || sc.ForcedFlushesPerRank[1] != 0 {
		t.Errorf("forced flushes per rank = %v, want [2 0]", sc.ForcedFlushesPerRank)
	}

	if s := sc.Summary(); !strings.Contains(s, "2x2 matrix") ||
		!strings.Contains(s, "hot A0") || !strings.Contains(s, "a-wait") {
		t.Errorf("summary line incomplete: %q", s)
	}
}

func TestAnalyzeStageNonBlockingSkipsSyncCharge(t *testing.T) {
	defer leakcheck.Check(t)()
	st := skewStage()
	st.NonBlocking = true
	p := perfmodel.DefaultParams()
	sc := comm.AnalyzeStage(st, &p)
	want := 800 * p.ScaleUp / p.Cluster.NetBW
	if math.Abs(sc.AWaitSecPerRank[0]-want) > 1e-12 {
		t.Errorf("non-blocking a-wait = %g, want %g (no sync charge)", sc.AWaitSecPerRank[0], want)
	}
}

func TestAnalyzeStageDerivedFallback(t *testing.T) {
	defer leakcheck.Check(t)()
	st := &trace.Stage{
		Name:    "legacy",
		Engine:  "hadoop",
		NumReds: 2,
		Producers: []*trace.Task{
			{PartitionBytes: []int64{10, 20}},
			{PartitionBytes: []int64{30, 40}},
		},
	}
	sc := comm.AnalyzeStage(st, nil)
	if sc == nil || !sc.Derived {
		t.Fatalf("stage without a recorded matrix must derive from PartitionBytes: %+v", sc)
	}
	if sc.TotalBytes != 100 || sc.ColBytes[0] != 40 || sc.ColBytes[1] != 60 {
		t.Errorf("derived totals wrong: total=%d cols=%v", sc.TotalBytes, sc.ColBytes)
	}
	if !strings.Contains(sc.Summary(), "(derived)") {
		t.Errorf("derived summary unmarked: %q", sc.Summary())
	}
	if !strings.Contains(comm.RenderHeatmap(sc), "derived from send-time") {
		t.Error("derived heatmap unmarked")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	defer leakcheck.Check(t)()
	mk := func() *comm.Report {
		return &comm.Report{
			Schema: comm.Schema,
			Queries: []*comm.QueryComm{{
				Statement: "SELECT 1",
				Stages:    []*comm.StageComm{comm.AnalyzeStage(skewStage(), nil)},
			}},
		}
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("clean report failed validation: %v", err)
	}
	var nilr *comm.Report
	if nilr.Validate() == nil {
		t.Error("nil report validated")
	}

	r := mk()
	r.Schema = "bogus/v0"
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema not rejected: %v", err)
	}

	r = mk()
	r.Queries[0].Stages[0].RowBytes[0] += 7
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "row") {
		t.Errorf("row corruption not caught: %v", err)
	}

	r = mk()
	r.Queries[0].Stages[0].TotalBytes++
	if err := r.Validate(); err == nil {
		t.Error("total corruption not caught")
	}

	r = mk()
	r.Queries[0].Stages[0].Matrix[0] = r.Queries[0].Stages[0].Matrix[0][:1]
	if err := r.Validate(); err == nil {
		t.Error("ragged matrix not caught")
	}

	// NaN/Inf skew statistics (the historical zero-mean bug) must be
	// rejected so they can never reach comm_report.json again.
	r = mk()
	r.Queries[0].Stages[0].PartitionSkew.CV = math.NaN()
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "finite") {
		t.Errorf("NaN cv not rejected: %v", err)
	}
	r = mk()
	r.Queries[0].Stages[0].ProducerSkew.MaxMeanRatio = math.Inf(1)
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "finite") {
		t.Errorf("Inf max/mean not rejected: %v", err)
	}
	r = mk()
	r.Queries[0].Stages[0].AWaitSec = math.Inf(1)
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "a_wait_sec") {
		t.Errorf("Inf a-wait not rejected: %v", err)
	}
	r = mk()
	r.Queries[0].Stages[0].AWaitSecPerRank[1] = math.NaN()
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "a_wait_sec_per_rank") {
		t.Errorf("NaN per-rank a-wait not rejected: %v", err)
	}

	// Per-rank forced flushes must cover every producer and sum to the
	// stage total.
	r = mk()
	r.Queries[0].Stages[0].ForcedFlushesPerRank = r.Queries[0].Stages[0].ForcedFlushesPerRank[:1]
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "forced_flushes_per_rank") {
		t.Errorf("short per-rank flush vector not rejected: %v", err)
	}
	r = mk()
	r.Queries[0].Stages[0].ForcedFlushesPerRank[0]++
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "forced_flushes_per_rank") {
		t.Errorf("per-rank flush sum mismatch not rejected: %v", err)
	}
}

func TestRenderHeatmap(t *testing.T) {
	defer leakcheck.Check(t)()
	if comm.RenderHeatmap(nil) != "" {
		t.Error("nil stage rendered output")
	}
	sc := comm.AnalyzeStage(skewStage(), nil)
	hm := comm.RenderHeatmap(sc)
	for _, frag := range []string{"stage stage1 [datampi] 2x2", "O0", "O1", "900 B total", "max/mean="} {
		if !strings.Contains(hm, frag) {
			t.Errorf("heatmap missing %q:\n%s", frag, hm)
		}
	}
	// The hottest cell (O1→A0, 500B) renders the darkest shade; the
	// empty cell (O1→A1) renders blank.
	lines := strings.Split(hm, "\n")
	var rowO1 string
	for _, l := range lines {
		if strings.Contains(l, "O1") {
			rowO1 = l
		}
	}
	cells := rowO1[strings.Index(rowO1, "|")+1 : strings.LastIndex(rowO1, "|")]
	if len(cells) != 2 || cells[0] != '@' || cells[1] != ' ' {
		t.Errorf("O1 cells = %q, want \"@ \"", cells)
	}

	// Hadoop stages label rows M and columns R.
	sc.Engine = "hadoop"
	hm = comm.RenderHeatmap(sc)
	if !strings.Contains(hm, "M0") || !strings.Contains(hm, "R0..R1") {
		t.Errorf("hadoop heatmap labels wrong:\n%s", hm)
	}
}

func TestFoldWaits(t *testing.T) {
	defer leakcheck.Check(t)()
	r := metrics.NewRegistry()
	comm.FoldWaits(r, nil) // nil-safe
	comm.FoldWaits(nil, &comm.StageComm{})
	comm.FoldWaits(r, comm.AnalyzeStage(skewStage(), nil))
	snap := r.Snapshot()
	if snap[metrics.TimerAWait+".count"] != 2 {
		t.Errorf("await count = %d, want 2 (snapshot %v)", snap[metrics.TimerAWait+".count"], snap)
	}
	if snap[metrics.TimerAWait+".max"] <= 0 {
		t.Error("await max not positive")
	}
}

// TestSeededSkewDetection runs a real datampi job whose partitioner
// funnels every key to A-rank 0 and asserts the analyzer flags the
// imbalance: max/mean equals the consumer count and the hot partition
// carries 100% of the bytes.
func TestSeededSkewDetection(t *testing.T) {
	defer leakcheck.Check(t)()
	const numO, numA = 3, 4
	job, err := datampi.NewJob(datampi.Config{
		NumO: numO, NumA: numA,
		Partitioner: func(key []byte, n int) int { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	err = job.Run(
		func(o *datampi.OContext) error {
			for i := 0; i < 200; i++ {
				if err := o.Send([]byte{byte(i), byte(o.Rank())}, []byte("v")); err != nil {
					return err
				}
			}
			return nil
		},
		func(a *datampi.AContext) error {
			for {
				if _, _, err := a.NextGroup(); err == io.EOF {
					return nil
				} else if err != nil {
					return err
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}

	st := &trace.Stage{
		Name:      "seeded-skew",
		Engine:    "datampi",
		NumReds:   numA,
		Producers: job.OMetrics(),
		Consumers: job.AMetrics(),
		Comm:      job.Comm(),
	}
	sc := comm.AnalyzeStage(st, nil)
	if sc == nil {
		t.Fatal("skewed job analyzed to nil")
	}
	ps := sc.PartitionSkew
	if ps == nil {
		t.Fatal("no partition skew computed")
	}
	if math.Abs(ps.MaxMeanRatio-numA) > 1e-9 {
		t.Errorf("all-to-one max/mean = %f, want %d", ps.MaxMeanRatio, numA)
	}
	if len(ps.Top) != 1 || ps.Top[0].Rank != 0 || ps.Top[0].Share != 1 {
		t.Errorf("hot partition = %+v, want rank 0 at 100%%", ps.Top)
	}
	for a := 1; a < numA; a++ {
		if sc.ColBytes[a] != 0 {
			t.Errorf("consumer %d received %d bytes, want 0", a, sc.ColBytes[a])
		}
	}
	// The wire matrix still reconciles with the task counters even
	// under total skew.
	for o, task := range st.Producers {
		if sc.RowBytes[o] != task.ShuffleOutBytes {
			t.Errorf("row %d = %d, ShuffleOutBytes = %d", o, sc.RowBytes[o], task.ShuffleOutBytes)
		}
	}
	if sc.ColBytes[0] != st.Consumers[0].ShuffleInBytes {
		t.Errorf("col 0 = %d, ShuffleInBytes = %d", sc.ColBytes[0], st.Consumers[0].ShuffleInBytes)
	}
}

// TestReportGoldenSchema pins the serialized comm_report.json layout:
// a deterministic report must round-trip byte-identical with the
// committed golden file, so schema drift is an explicit choice
// (regenerate with -update).
func TestReportGoldenSchema(t *testing.T) {
	defer leakcheck.Check(t)()
	p := perfmodel.DefaultParams()
	// The second stage carries an all-zero consumer column: its skew
	// stats must serialize as finite zeros, never NaN (regression case
	// for the zero-mean bug).
	zeroCol := &trace.Stage{
		Name: "zerocol", Engine: "datampi", NumReds: 2,
		Producers: []*trace.Task{
			{PartitionBytes: []int64{64, 0}},
			{PartitionBytes: []int64{192, 0}},
		},
	}
	rep := comm.BuildReport([]*trace.Query{
		{Statement: "SELECT k, count(*) FROM t GROUP BY k", Overlapped: true,
			Stages: []*trace.Stage{skewStage(), zeroCol, {Name: "ddl"}}},
	}, &p)
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := comm.WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}

	const golden = "testdata/comm_report_golden.json"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from golden schema (run with -update if intended)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}

	// And the golden itself must carry the schema tag and parse back.
	var parsed comm.Report
	if err := json.Unmarshal(want, &parsed); err != nil {
		t.Fatalf("golden does not parse: %v", err)
	}
	if parsed.Schema != comm.Schema {
		t.Errorf("golden schema = %q, want %q", parsed.Schema, comm.Schema)
	}
	if err := parsed.Validate(); err != nil {
		t.Errorf("golden fails validation: %v", err)
	}
}
