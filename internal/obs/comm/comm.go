// Package comm is the communication-plane half of the observability
// stack: it turns the per-stage (producer, consumer) communication
// matrices the engines record — or, for stages without one, the
// producers' PartitionBytes — into skew statistics (max/mean ratio,
// coefficient of variation, heavy-partition top-k), per-rank virtual
// wait times derived from the perfmodel, and a serializable
// comm_report.json consumed by the hiveql/benchsuite -comm flags.
package comm

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"hivempi/internal/metrics"
	"hivempi/internal/perfmodel"
	"hivempi/internal/trace"
)

// Schema identifies the comm_report.json layout; bump on breaking
// changes so downstream tooling can reject reports it cannot parse.
const Schema = "hivempi.comm_report/v1"

// TopK is how many heavy cells a Skew keeps.
const TopK = 5

// HeavyCell is one of the heaviest ranks of a skew dimension.
type HeavyCell struct {
	Rank  int     `json:"rank"`
	Bytes int64   `json:"bytes"`
	Share float64 `json:"share"` // fraction of the dimension total
}

// Skew summarizes the imbalance of a byte distribution (per-consumer
// column totals = partition skew; per-producer row totals = producer
// skew).
type Skew struct {
	MaxBytes     int64       `json:"max_bytes"`
	MeanBytes    float64     `json:"mean_bytes"`
	MaxMeanRatio float64     `json:"max_mean_ratio"`
	CV           float64     `json:"cv"` // stddev / mean
	Top          []HeavyCell `json:"top,omitempty"`
}

// SkewOf computes the skew statistics of one byte distribution,
// keeping the k heaviest non-zero entries. The function is total:
// empty and all-zero distributions yield a zero-valued Skew (CV=0,
// max/mean=0) rather than NaN — a division by the zero mean here used
// to leak NaN into comm_report.json and poison every BuildReport
// aggregate downstream.
func SkewOf(values []int64, k int) *Skew {
	if len(values) == 0 {
		return &Skew{}
	}
	var sum, max int64
	for _, v := range values {
		sum += v
		if v > max {
			max = v
		}
	}
	mean := float64(sum) / float64(len(values))
	if mean <= 0 {
		// Zero-mean guard: no bytes moved, so there is no imbalance to
		// quantify. CV and max/mean are 0 by definition, never 0/0.
		return &Skew{MaxBytes: max}
	}
	var varSum float64
	for _, v := range values {
		d := float64(v) - mean
		varSum += d * d
	}
	s := &Skew{
		MaxBytes:     max,
		MeanBytes:    mean,
		MaxMeanRatio: float64(max) / mean,
		CV:           math.Sqrt(varSum/float64(len(values))) / mean,
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if values[idx[a]] != values[idx[b]] {
			return values[idx[a]] > values[idx[b]]
		}
		return idx[a] < idx[b]
	})
	for _, i := range idx {
		if len(s.Top) >= k || values[i] == 0 {
			break
		}
		s.Top = append(s.Top, HeavyCell{
			Rank:  i,
			Bytes: values[i],
			Share: float64(values[i]) / float64(sum),
		})
	}
	return s
}

// StageComm is the analyzed communication picture of one shuffle stage.
type StageComm struct {
	Name   string `json:"name"`
	Engine string `json:"engine"`

	NumProducers int `json:"num_producers"`
	NumConsumers int `json:"num_consumers"`

	// Derived marks a matrix reconstructed from the producers'
	// PartitionBytes (pre-combiner Send-time sizes) because the engine
	// recorded no wire-level matrix; such matrices need not reconcile
	// with the post-combiner shuffle byte counters.
	Derived bool `json:"derived,omitempty"`

	TotalBytes    int64 `json:"total_bytes"`
	TotalRecords  int64 `json:"total_records,omitempty"`
	TotalMessages int64 `json:"total_messages,omitempty"`

	RowBytes []int64   `json:"row_bytes"` // per-producer totals
	ColBytes []int64   `json:"col_bytes"` // per-consumer totals
	Matrix   [][]int64 `json:"matrix_bytes"`
	Records  [][]int64 `json:"matrix_records,omitempty"`

	ProducerSkew  *Skew `json:"producer_skew,omitempty"`
	PartitionSkew *Skew `json:"partition_skew,omitempty"`

	// Buffer-manager and receive-loop accounting summed over tasks.
	BufPeakBytes  int64 `json:"buf_peak_bytes,omitempty"` // max over producers
	ForcedFlushes int64 `json:"forced_flushes,omitempty"`
	RecvRounds    int64 `json:"recv_rounds,omitempty"`
	WaitRounds    int64 `json:"wait_rounds,omitempty"` // blocking-style rounds

	// ForcedFlushesPerRank is the per-producer breakdown of
	// ForcedFlushes (index = O-rank), present when the stage's producer
	// tasks were recorded one per rank — so tracediff can attribute a
	// wait-time delta to the rank whose buffer thrashed without
	// re-deriving it from raw task traces.
	ForcedFlushesPerRank []int64 `json:"forced_flushes_per_rank,omitempty"`

	// Virtual per-consumer wait: the perfmodel network time to absorb
	// each consumer's column plus the blocking-sync charge per message
	// (blocking datampi stages only). Seconds of virtual time.
	AWaitSec        float64   `json:"a_wait_sec,omitempty"`
	AWaitSecPerRank []float64 `json:"a_wait_sec_per_rank,omitempty"`
}

// AnalyzeStage builds the communication picture of one stage. Returns
// nil for stages without a shuffle (map-only) or without any recorded
// communication. A nil params analyzes against perfmodel defaults.
func AnalyzeStage(st *trace.Stage, p *perfmodel.Params) *StageComm {
	if st == nil {
		return nil
	}
	if p == nil {
		def := perfmodel.DefaultParams()
		p = &def
	}
	sc := &StageComm{Name: st.Name, Engine: st.Engine}
	colMsgs := sc.fillMatrix(st)
	if sc.TotalBytes == 0 {
		return nil
	}
	sc.ProducerSkew = SkewOf(sc.RowBytes, TopK)
	sc.PartitionSkew = SkewOf(sc.ColBytes, TopK)
	perRank := len(st.Producers) == sc.NumProducers && sc.NumProducers > 0
	if perRank {
		sc.ForcedFlushesPerRank = make([]int64, sc.NumProducers)
	}
	for i, t := range st.Producers {
		if t.BufPeakBytes > sc.BufPeakBytes {
			sc.BufPeakBytes = t.BufPeakBytes
		}
		sc.ForcedFlushes += t.ForcedFlushes
		sc.WaitRounds += t.WaitRounds
		if perRank {
			sc.ForcedFlushesPerRank[i] = t.ForcedFlushes
		}
	}
	if perRank && sc.ForcedFlushes == 0 {
		sc.ForcedFlushesPerRank = nil
	}
	for _, t := range st.Consumers {
		sc.RecvRounds += t.RecvRounds
	}

	// Virtual A-side wait per consumer rank: column bytes at the NIC
	// plus the synchronized-round latency per absorbed message when the
	// stage ran the blocking shuffle style.
	sync := 0.0
	if st.Engine == "datampi" && !st.NonBlocking {
		sync = p.DataMPI.BlockingSync
	}
	netBW := p.Cluster.NetBW
	if netBW <= 0 {
		// Degenerate params must not turn column bytes into +Inf waits.
		netBW = math.Inf(1)
	}
	sc.AWaitSecPerRank = make([]float64, sc.NumConsumers)
	for a := 0; a < sc.NumConsumers; a++ {
		w := float64(sc.ColBytes[a]) * p.ScaleUp / netBW
		if a < len(colMsgs) {
			w += float64(colMsgs[a]) * sync
		}
		sc.AWaitSecPerRank[a] = w
		sc.AWaitSec += w
	}
	return sc
}

// fillMatrix populates the byte/record grids from the stage's recorded
// matrix, or derives a byte grid from PartitionBytes when the engine
// recorded none. Returns per-consumer message counts (nil when
// derived).
func (sc *StageComm) fillMatrix(st *trace.Stage) []int64 {
	if m := st.Comm; m != nil && m.TotalBytes() > 0 {
		sc.NumProducers = m.NumO
		sc.NumConsumers = m.NumA
		sc.Matrix = m.BytesGrid()
		sc.Records = m.RecordsGrid()
		sc.RowBytes = m.RowBytes()
		sc.ColBytes = m.ColBytes()
		sc.TotalBytes = m.TotalBytes()
		sc.TotalMessages = m.TotalMessages()
		colMsgs := make([]int64, m.NumA)
		for o := 0; o < m.NumO; o++ {
			for a := 0; a < m.NumA; a++ {
				sc.TotalRecords += m.Records(o, a)
				colMsgs[a] += m.Messages(o, a)
			}
		}
		return colMsgs
	}

	// Fallback: Send-time partition sizes (pre-combiner).
	numA := st.NumReds
	for _, t := range st.Producers {
		if len(t.PartitionBytes) > numA {
			numA = len(t.PartitionBytes)
		}
	}
	if numA == 0 || len(st.Producers) == 0 {
		return nil
	}
	sc.Derived = true
	sc.NumProducers = len(st.Producers)
	sc.NumConsumers = numA
	sc.Matrix = make([][]int64, sc.NumProducers)
	sc.RowBytes = make([]int64, sc.NumProducers)
	sc.ColBytes = make([]int64, numA)
	for o, t := range st.Producers {
		sc.Matrix[o] = make([]int64, numA)
		for a, b := range t.PartitionBytes {
			sc.Matrix[o][a] = b
			sc.RowBytes[o] += b
			sc.ColBytes[a] += b
			sc.TotalBytes += b
		}
	}
	return nil
}

// Summary renders the one-line skew digest EXPLAIN ANALYZE prints per
// stage.
func (sc *StageComm) Summary() string {
	if sc == nil || sc.PartitionSkew == nil {
		return ""
	}
	ps := sc.PartitionSkew
	var sb strings.Builder
	fmt.Fprintf(&sb, "comm: %dx%d matrix, skew max/mean=%.2f cv=%.2f",
		sc.NumProducers, sc.NumConsumers, ps.MaxMeanRatio, ps.CV)
	if len(ps.Top) > 0 {
		fmt.Fprintf(&sb, ", hot %s%d (%.0f%%)",
			consumerLabel(sc.Engine), ps.Top[0].Rank, 100*ps.Top[0].Share)
	}
	if sc.AWaitSec > 0 {
		fmt.Fprintf(&sb, ", a-wait %.2fs", sc.AWaitSec)
	}
	if sc.Derived {
		sb.WriteString(" (derived)")
	}
	return sb.String()
}

func consumerLabel(engine string) string {
	if engine == "hadoop" {
		return "R"
	}
	return "A"
}

// FoldWaits observes the stage's per-rank virtual waits into the
// registry's datampi.await timer so the distribution lands in the
// per-statement metrics delta. Nil-safe on both arguments.
func FoldWaits(r *metrics.Registry, sc *StageComm) {
	if r == nil || sc == nil {
		return
	}
	t := r.Timer(metrics.TimerAWait)
	for _, w := range sc.AWaitSecPerRank {
		if w > 0 {
			t.ObserveSeconds(w)
		}
	}
}

// QueryComm groups the analyzed shuffle stages of one statement.
type QueryComm struct {
	Statement  string       `json:"statement"`
	Overlapped bool         `json:"overlapped,omitempty"`
	Stages     []*StageComm `json:"stages"`
}

// Report is the serializable communication report.
type Report struct {
	Schema  string       `json:"schema"`
	Queries []*QueryComm `json:"queries"`
}

// BuildReport analyzes every recorded query. Statements whose stages
// all lack communication (DDL, map-only plans) are kept with an empty
// stage list so report consumers see every statement that ran.
func BuildReport(queries []*trace.Query, p *perfmodel.Params) *Report {
	r := &Report{Schema: Schema}
	for _, q := range queries {
		qc := &QueryComm{Statement: q.Statement, Overlapped: q.Overlapped, Stages: []*StageComm{}}
		for _, st := range q.Stages {
			if sc := AnalyzeStage(st, p); sc != nil {
				qc.Stages = append(qc.Stages, sc)
			}
		}
		r.Queries = append(r.Queries, qc)
	}
	return r
}

// Validate checks the report's internal consistency: schema tag, grid
// dimensions, and that row/column totals both reconcile with each
// stage's matrix total.
func (r *Report) Validate() error {
	if r == nil {
		return fmt.Errorf("comm report: nil")
	}
	if r.Schema != Schema {
		return fmt.Errorf("comm report: schema %q, want %q", r.Schema, Schema)
	}
	for _, q := range r.Queries {
		for _, sc := range q.Stages {
			if err := sc.validate(); err != nil {
				return fmt.Errorf("comm report: query %q stage %s: %w", q.Statement, sc.Name, err)
			}
		}
	}
	return nil
}

func (sc *StageComm) validate() error {
	if len(sc.Matrix) != sc.NumProducers {
		return fmt.Errorf("matrix has %d rows, want %d", len(sc.Matrix), sc.NumProducers)
	}
	if len(sc.RowBytes) != sc.NumProducers || len(sc.ColBytes) != sc.NumConsumers {
		return fmt.Errorf("row/col totals %dx%d, want %dx%d",
			len(sc.RowBytes), len(sc.ColBytes), sc.NumProducers, sc.NumConsumers)
	}
	var rowSum, colSum int64
	cols := make([]int64, sc.NumConsumers)
	for o, row := range sc.Matrix {
		if len(row) != sc.NumConsumers {
			return fmt.Errorf("row %d has %d cells, want %d", o, len(row), sc.NumConsumers)
		}
		var rs int64
		for a, b := range row {
			rs += b
			cols[a] += b
		}
		if rs != sc.RowBytes[o] {
			return fmt.Errorf("row %d sums to %d, row_bytes says %d", o, rs, sc.RowBytes[o])
		}
		rowSum += rs
	}
	for a, cb := range cols {
		if cb != sc.ColBytes[a] {
			return fmt.Errorf("col %d sums to %d, col_bytes says %d", a, cb, sc.ColBytes[a])
		}
		colSum += cb
	}
	if rowSum != sc.TotalBytes || colSum != sc.TotalBytes {
		return fmt.Errorf("row sum %d / col sum %d != total %d", rowSum, colSum, sc.TotalBytes)
	}
	for name, sk := range map[string]*Skew{"producer_skew": sc.ProducerSkew, "partition_skew": sc.PartitionSkew} {
		if sk == nil {
			continue
		}
		for field, v := range map[string]float64{"mean_bytes": sk.MeanBytes, "max_mean_ratio": sk.MaxMeanRatio, "cv": sk.CV} {
			if !isFiniteStat(v) {
				return fmt.Errorf("%s.%s is %v, want finite", name, field, v)
			}
		}
	}
	if !isFiniteStat(sc.AWaitSec) {
		return fmt.Errorf("a_wait_sec is %v, want finite", sc.AWaitSec)
	}
	for a, w := range sc.AWaitSecPerRank {
		if !isFiniteStat(w) {
			return fmt.Errorf("a_wait_sec_per_rank[%d] is %v, want finite", a, w)
		}
	}
	if sc.ForcedFlushesPerRank != nil {
		if len(sc.ForcedFlushesPerRank) != sc.NumProducers {
			return fmt.Errorf("forced_flushes_per_rank has %d entries, stage has %d producers",
				len(sc.ForcedFlushesPerRank), sc.NumProducers)
		}
		var sum int64
		for o, n := range sc.ForcedFlushesPerRank {
			if n < 0 {
				return fmt.Errorf("forced_flushes_per_rank[%d] is negative (%d)", o, n)
			}
			sum += n
		}
		if sum != sc.ForcedFlushes {
			return fmt.Errorf("forced_flushes_per_rank sums to %d, forced_flushes says %d",
				sum, sc.ForcedFlushes)
		}
	}
	return nil
}

// isFiniteStat rejects the NaN/Inf values that a zero mean or zero
// bandwidth used to produce; they are not representable in JSON and
// break every consumer of the report.
func isFiniteStat(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// WriteJSON serializes the report deterministically (indented, fixed
// field order).
func WriteJSON(w io.Writer, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// heatShades maps cell intensity (fraction of the hottest cell) to a
// character ramp for the text heatmap.
const heatShades = " .:-=+*#%@"

// RenderHeatmap draws the stage's byte matrix as a text heatmap: one
// row per producer, one column per consumer, shaded by each cell's
// share of the hottest cell, with row/column totals in the margins.
func RenderHeatmap(sc *StageComm) string {
	if sc == nil || len(sc.Matrix) == 0 {
		return ""
	}
	var max int64
	for _, row := range sc.Matrix {
		for _, b := range row {
			if b > max {
				max = b
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "stage %s [%s] %dx%d, %s total",
		sc.Name, sc.Engine, sc.NumProducers, sc.NumConsumers, humanBytes(sc.TotalBytes))
	if sc.Derived {
		sb.WriteString(" (derived from send-time partition sizes)")
	}
	sb.WriteString("\n")
	cl := consumerLabel(sc.Engine)
	for o, row := range sc.Matrix {
		fmt.Fprintf(&sb, "  %s%-3d |", producerLabel(sc.Engine), o)
		for _, b := range row {
			sb.WriteByte(shade(b, max))
		}
		fmt.Fprintf(&sb, "| %s\n", humanBytes(sc.RowBytes[o]))
	}
	sb.WriteString("       ")
	for range sc.ColBytes {
		sb.WriteByte('-')
	}
	sb.WriteString("\n")
	if ps := sc.PartitionSkew; ps != nil {
		fmt.Fprintf(&sb, "  cols %s0..%s%d: max %s, max/mean=%.2f cv=%.2f\n",
			cl, cl, sc.NumConsumers-1, humanBytes(ps.MaxBytes), ps.MaxMeanRatio, ps.CV)
	}
	return sb.String()
}

func producerLabel(engine string) string {
	if engine == "hadoop" {
		return "M"
	}
	return "O"
}

func shade(v, max int64) byte {
	if v <= 0 || max <= 0 {
		return heatShades[0]
	}
	i := 1 + int(float64(v)/float64(max)*float64(len(heatShades)-2))
	if i >= len(heatShades) {
		i = len(heatShades) - 1
	}
	return heatShades[i]
}

func humanBytes(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1f GB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1f MB", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1f KB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
