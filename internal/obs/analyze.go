package obs

import (
	"fmt"
	"sort"
	"strings"

	"hivempi/internal/obs/comm"
	"hivempi/internal/perfmodel"
	"hivempi/internal/trace"
)

// RenderAnalyzedPlan renders EXPLAIN ANALYZE output: the executed stage
// DAG annotated with per-stage rows, bytes, virtual-time placement and
// engine, followed by the statement's counter snapshot. The stage
// traces are real execution records; the timing comes from replaying
// them through the perfmodel (the same simulation the benchmarks
// report), so the printed seconds match the Chrome-trace export.
//
// degraded names the fallback engine when the query finished there
// ("" = primary throughout); metricsSnap is the per-statement counter
// delta (nil = omit the counters section).
func RenderAnalyzedPlan(q *trace.Query, degraded string, metricsSnap map[string]int64, p *perfmodel.Params) string {
	if p == nil {
		def := perfmodel.DefaultParams()
		p = &def
	}
	sim := p.SimulateQuery(q)
	timing := make(map[string]*perfmodel.StageTiming, len(sim.Stages))
	for _, st := range sim.Stages {
		timing[st.Name] = st
	}

	var sb strings.Builder
	// The recorded statement usually still carries the EXPLAIN ANALYZE
	// prefix the user typed; strip it so the header reads once.
	stmt := strings.TrimSpace(q.Statement)
	for _, kw := range []string{"explain", "analyze"} {
		if len(stmt) >= len(kw) && strings.EqualFold(stmt[:len(kw)], kw) {
			stmt = strings.TrimSpace(stmt[len(kw):])
		}
	}
	fmt.Fprintf(&sb, "EXPLAIN ANALYZE %s\n", queryLabel(stmt))
	mode := "serial"
	if q.Overlapped {
		mode = "dag-parallel"
	}
	fmt.Fprintf(&sb, "total %ss virtual (compile %ss), %d stages, %s",
		fmtSec(sim.Total), fmtSec(sim.Compile), len(q.Stages), mode)
	if q.CachedPlan {
		sb.WriteString(" [plan cache hit]")
	}
	if degraded != "" {
		fmt.Fprintf(&sb, " [degraded to %s]", degraded)
	}
	sb.WriteString("\n\n")

	for _, st := range q.Stages {
		fmt.Fprintf(&sb, "STAGE %s [%s] maps=%d reds=%d", st.Name, st.Engine, st.NumMaps, st.NumReds)
		if st.Vectorized {
			fmt.Fprintf(&sb, " vectorized batches=%d", stageBatches(st))
		}
		sb.WriteByte('\n')
		if ti := timing[st.Name]; ti != nil {
			fmt.Fprintf(&sb, "  start %ss  dur %ss  (startup %ss, map+shuffle %ss, others %ss)\n",
				fmtSec(sim.Compile+ti.StartAt), fmtSec(ti.Total),
				fmtSec(ti.Startup), fmtSec(ti.MapShuffle), fmtSec(ti.Others))
		}
		fmt.Fprintf(&sb, "  rows out %d  input %s  shuffle %s  output %s\n",
			stageRowsOut(st), humanBytes(st.TotalInputBytes()),
			humanBytes(st.TotalShuffleBytes()), humanBytes(st.TotalOutputBytes()))
		if sc := comm.AnalyzeStage(st, p); sc != nil {
			if line := sc.Summary(); line != "" {
				fmt.Fprintf(&sb, "  %s\n", line)
			}
		}
		if st.AdaptSplit > 0 || st.AdaptFused > 0 {
			fmt.Fprintf(&sb, "  skew-adapted: split=%d fused=%d (replan %ss)\n",
				st.AdaptSplit, st.AdaptFused, fmtSec(st.AdaptSec))
		}
		if len(st.DependsOn) > 0 {
			fmt.Fprintf(&sb, "  depends on: %s\n", strings.Join(st.DependsOn, ", "))
		}
		if notes := stageFaultNotes(st); notes != "" {
			fmt.Fprintf(&sb, "  %s\n", notes)
		}
	}

	if len(metricsSnap) > 0 {
		sb.WriteString("\ncounters:\n")
		names := make([]string, 0, len(metricsSnap))
		for k := range metricsSnap {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(&sb, "  %-28s %d\n", k, metricsSnap[k])
		}
	}
	return sb.String()
}

// stageBatches sums the column batches the stage's map tasks processed.
func stageBatches(st *trace.Stage) int64 {
	var n int64
	for _, t := range st.Producers {
		n += t.Batches
	}
	return n
}

// stageRowsOut is the stage's emitted row count: consumer output when a
// reduce side exists, else producer output (map-only stages).
func stageRowsOut(st *trace.Stage) int64 {
	var rows int64
	owner := st.Consumers
	if len(owner) == 0 {
		owner = st.Producers
	}
	for _, t := range owner {
		rows += t.OutputRecords
	}
	return rows
}

// stageFaultNotes summarizes the stage's fault-tolerance accounting;
// empty when the stage ran clean on the first attempt.
func stageFaultNotes(st *trace.Stage) string {
	var parts []string
	if st.Relaunched {
		parts = append(parts, "relaunched (output lost with node)")
	}
	if st.Attempts > 1 {
		parts = append(parts, fmt.Sprintf("attempts=%d", st.Attempts))
	}
	if st.RereplicationSec > 0 {
		parts = append(parts, fmt.Sprintf("rereplication=%ss", fmtSec(st.RereplicationSec)))
	}
	if st.TaskRetries > 0 {
		parts = append(parts, fmt.Sprintf("task_retries=%d", st.TaskRetries))
	}
	if st.RetryBackoffSec > 0 {
		parts = append(parts, fmt.Sprintf("retry_backoff=%ss", fmtSec(st.RetryBackoffSec)))
	}
	var recovered, speculative, predicted int
	for _, t := range append(append([]*trace.Task{}, st.Producers...), st.Consumers...) {
		if t.Recovered {
			recovered++
		}
		if t.Speculative {
			speculative++
		}
		if t.PredictiveSpec {
			predicted++
		}
	}
	if recovered > 0 {
		parts = append(parts, fmt.Sprintf("recovered=%d", recovered))
	}
	if speculative > 0 {
		parts = append(parts, fmt.Sprintf("speculative=%d", speculative))
	}
	if predicted > 0 {
		parts = append(parts, fmt.Sprintf("predicted_spec=%d", predicted))
	}
	return strings.Join(parts, " ")
}

// humanBytes renders a byte count with a binary-ish 1000-step unit.
func humanBytes(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1f GB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1f MB", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1f KB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
