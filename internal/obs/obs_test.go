package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"

	"hivempi/internal/perfmodel"
	"hivempi/internal/testutil/leakcheck"
	"hivempi/internal/trace"
)

func TestRegistryNilSafe(t *testing.T) {
	defer leakcheck.Check(t)()
	var r *Registry
	r.Counter("x").Add(5)
	r.Counter("x").Inc()
	r.Gauge("g").Set(7)
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil registry counter = %d", got)
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	if r.Names() != nil {
		t.Error("nil registry names should be nil")
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	defer leakcheck.Check(t)()
	r := NewRegistry()
	r.Counter(CtrShuffleOutBytes).Add(100)
	r.Add(CtrShuffleOutBytes, 50)
	g := r.Gauge(GaugeIMUsedBytes)
	g.Set(80)
	g.Set(30)
	snap := r.Snapshot()
	if snap[CtrShuffleOutBytes] != 150 {
		t.Errorf("counter = %d, want 150", snap[CtrShuffleOutBytes])
	}
	if snap[GaugeIMUsedBytes] != 30 {
		t.Errorf("gauge = %d, want 30", snap[GaugeIMUsedBytes])
	}
	if snap[GaugeIMUsedBytes+".hwm"] != 80 {
		t.Errorf("gauge hwm = %d, want 80", snap[GaugeIMUsedBytes+".hwm"])
	}
}

func TestRegistryConcurrent(t *testing.T) {
	defer leakcheck.Check(t)()
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(n*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if hi := r.Gauge("g").High(); hi < 7000 {
		t.Errorf("gauge hwm = %d, want >= 7000", hi)
	}
}

func TestFoldStage(t *testing.T) {
	defer leakcheck.Check(t)()
	r := NewRegistry()
	st := &trace.Stage{
		Name: "s0", Engine: "datampi", Attempts: 3, TaskRetries: 2,
		Producers: []*trace.Task{
			{ID: 0, Kind: trace.KindOTask, ShuffleOutBytes: 100, ShuffleOutPairs: 10,
				SpillCount: 1, SpillBytes: 40, CombineInPairs: 10, CombineOutPairs: 4},
			{ID: 1, Kind: trace.KindOTask, ShuffleOutBytes: 50, Recovered: true},
		},
		Consumers: []*trace.Task{
			{ID: 0, Kind: trace.KindATask, Speculative: true},
		},
	}
	FoldStage(r, st)
	snap := r.Snapshot()
	want := map[string]int64{
		CtrTasksPrefix + "datampi": 3,
		CtrStageRetries:            2,
		CtrTaskRetries:             2,
		CtrShuffleOutBytes:         150,
		CtrShuffleOutPairs:         10,
		CtrSpillCount:              1,
		CtrSpillBytes:              40,
		CtrCombineInPairs:          10,
		CtrCombineOutPairs:         4,
		CtrTasksRecovered:          1,
		CtrTasksSpeculative:        1,
	}
	for name, w := range want {
		if snap[name] != w {
			t.Errorf("%s = %d, want %d", name, snap[name], w)
		}
	}
	FoldStage(nil, st) // must not panic
	FoldStage(r, nil)
}

// dagQuery builds a synthetic overlapped diamond: s0 and s1 independent,
// s2 depending on both.
func dagQuery() *trace.Query {
	mk := func(name string, bytesIn int64, deps ...string) *trace.Stage {
		return &trace.Stage{
			Name: name, Engine: "datampi", NonBlocking: true, SendQueueSize: 6,
			DependsOn: deps,
			Producers: []*trace.Task{
				{ID: 0, Kind: trace.KindOTask, Host: "s1", InputBytes: bytesIn,
					InputRecords: 1000, ShuffleOutBytes: bytesIn / 4, ShuffleOutPairs: 500},
			},
			Consumers: []*trace.Task{
				{ID: 0, Kind: trace.KindATask, Host: "s2", ShuffleInBytes: bytesIn / 4,
					ShuffleInPairs: 500, WriteBytes: bytesIn / 8},
			},
		}
	}
	return &trace.Query{
		Statement:  "select test",
		Overlapped: true,
		Stages: []*trace.Stage{
			mk("s0", 1<<20),
			mk("s1", 4<<20),
			mk("s2", 1<<19, "s0", "s1"),
		},
	}
}

func TestBuildQuerySpansHierarchy(t *testing.T) {
	defer leakcheck.Check(t)()
	p := perfmodel.DefaultParams()
	q := dagQuery()
	root, sim := BuildQuerySpans(q, &p)
	if root.Kind != SpanQuery || len(root.Children) != 4 {
		// 3 stage spans followed by the query-level compile span.
		t.Fatalf("root: kind=%s children=%d", root.Kind, len(root.Children))
	}
	if math.Abs(root.End-sim.Total) > 1e-9 {
		t.Errorf("root end %f != sim total %f", root.End, sim.Total)
	}
	if last := root.Children[3]; last.Kind != SpanPhase || last.Name != "compile" ||
		math.Abs(last.End-sim.Compile) > 1e-9 {
		t.Fatalf("trailing span = %s %q [%f,%f], want compile phase", last.Kind, last.Name, last.Start, last.End)
	}
	for i, ss := range root.Children[:3] {
		if ss.Kind != SpanStage {
			t.Fatalf("child %d kind = %s", i, ss.Kind)
		}
		wantStart := sim.Compile + sim.Stages[i].StartAt
		if math.Abs(ss.Start-wantStart) > 1e-9 {
			t.Errorf("stage %s start %f, want %f", ss.Name, ss.Start, wantStart)
		}
		if len(ss.Children) != 2 { // 1 producer + 1 consumer
			t.Fatalf("stage %s has %d task spans", ss.Name, len(ss.Children))
		}
		for _, tsp := range ss.Children {
			if tsp.Kind != SpanTask {
				t.Fatalf("task span kind = %s", tsp.Kind)
			}
			if tsp.Start < ss.Start-1e-9 || tsp.End > ss.End+1e-9 {
				t.Errorf("task %s [%f,%f] escapes stage [%f,%f]",
					tsp.Name, tsp.Start, tsp.End, ss.Start, ss.End)
			}
			if len(tsp.Children) == 0 {
				t.Errorf("task %s has no phase spans", tsp.Name)
			}
			for _, ph := range tsp.Children {
				if ph.Kind != SpanPhase {
					t.Fatalf("phase kind = %s", ph.Kind)
				}
				if ph.Start < tsp.Start-1e-9 || ph.End > tsp.End+1e-9 {
					t.Errorf("phase %s escapes task %s", ph.Name, tsp.Name)
				}
			}
		}
	}
	// The dependent stage's attrs carry the DAG edges.
	if got := root.Children[2].Attrs["depends_on"]; got != "s0,s1" {
		t.Errorf("depends_on = %q", got)
	}
	// Critical path: s2 starts at max(end s0, end s1).
	s0End := sim.Stages[0].StartAt + sim.Stages[0].Total
	s1End := sim.Stages[1].StartAt + sim.Stages[1].Total
	wantS2 := math.Max(s0End, s1End)
	if math.Abs(sim.Stages[2].StartAt-wantS2) > 1e-9 {
		t.Errorf("s2 StartAt %f, want %f", sim.Stages[2].StartAt, wantS2)
	}
}

func TestBuildQuerySpansAnnotations(t *testing.T) {
	defer leakcheck.Check(t)()
	p := perfmodel.DefaultParams()
	q := dagQuery()
	q.Stages[0].Attempts = 2
	q.Stages[0].Producers[0].Attempts = 3
	q.Stages[0].Producers[0].Recovered = true
	q.Stages[0].Consumers[0].Speculative = true
	q.Stages[0].Consumers[0].StragglerDelaySec = 4.5
	root, _ := BuildQuerySpans(q, &p)
	ss := root.Children[0]
	if ss.Attrs["attempts"] != "2" {
		t.Errorf("stage attempts attr = %q", ss.Attrs["attempts"])
	}
	prod, cons := ss.Children[0], ss.Children[1]
	if prod.Attrs["attempts"] != "3" || prod.Attrs["recovered"] != "true" {
		t.Errorf("producer attrs = %v", prod.Attrs)
	}
	if cons.Attrs["speculative"] != "true" || cons.Attrs["straggler_sec"] == "" {
		t.Errorf("consumer attrs = %v", cons.Attrs)
	}
}

// TestChromeTraceStageStartsMatchCriticalPath is the acceptance
// assertion: the exported per-stage span starts equal the perfmodel's
// critical-path virtual times (compile + StartAt), in microseconds.
func TestChromeTraceStageStartsMatchCriticalPath(t *testing.T) {
	defer leakcheck.Check(t)()
	p := perfmodel.DefaultParams()
	q := dagQuery()
	sim := p.SimulateQuery(q)

	var buf bytes.Buffer
	n, err := WriteChromeTrace(&buf, []*trace.Query{q}, &p)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events written")
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("self-validation failed: %v", err)
	}

	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}

	stageTs := map[string]float64{}
	stageDur := map[string]float64{}
	flows := 0
	taskEvents := 0
	for _, ev := range parsed.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Cat == "stage":
			stageTs[ev.Name] = ev.Ts
			stageDur[ev.Name] = ev.Dur
			if ev.Tid != 0 {
				t.Errorf("stage %s on tid %d, want 0", ev.Name, ev.Tid)
			}
		case ev.Ph == "X" && ev.Cat == "task":
			taskEvents++
			if ev.Tid < 1 {
				t.Errorf("task %s on tid %d, want >= 1", ev.Name, ev.Tid)
			}
		case ev.Ph == "s" || ev.Ph == "f":
			flows++
		}
	}
	if len(stageTs) != 3 {
		t.Fatalf("got %d stage events, want 3: %v", len(stageTs), stageTs)
	}
	for i, st := range q.Stages {
		want := (sim.Compile + sim.Stages[i].StartAt) * 1e6
		if got := stageTs[st.Name]; math.Abs(got-want) > 1 { // within 1 us
			t.Errorf("stage %s ts = %f us, want %f us (critical path)", st.Name, got, want)
		}
		wantDur := sim.Stages[i].Total * 1e6
		if got := stageDur[st.Name]; math.Abs(got-wantDur) > 1 {
			t.Errorf("stage %s dur = %f us, want %f us", st.Name, got, wantDur)
		}
	}
	// The overlapped branches really overlap: s1 starts before s0 ends.
	if stageTs["s1"] >= stageTs["s0"]+stageDur["s0"] {
		t.Error("independent stages did not overlap in the exported trace")
	}
	// Two dependency edges (s2 -> s0, s2 -> s1) = two s/f pairs.
	if flows != 4 {
		t.Errorf("flow events = %d, want 4", flows)
	}
	if taskEvents == 0 {
		t.Error("no task events exported")
	}
}

func TestChromeTraceLaneOverflow(t *testing.T) {
	defer leakcheck.Check(t)()
	lt := newLaneTable(4)
	a := lt.place(0, 0, 10)
	b := lt.place(0, 5, 15) // overlaps -> overflow lane
	c := lt.place(0, 10, 20)
	if a == b {
		t.Errorf("overlapping tasks share tid %d", a)
	}
	if c != a {
		t.Errorf("disjoint task got tid %d, want reuse of %d", c, a)
	}
	if lt.names[a] != "node0/slot0" {
		t.Errorf("lane name = %q", lt.names[a])
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	defer leakcheck.Check(t)()
	if _, err := ValidateChromeTrace([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ValidateChromeTrace([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := ValidateChromeTrace([]byte(`{"traceEvents":[{"ph":"X","ts":1}]}`)); err == nil {
		t.Error("nameless event accepted")
	}
	if _, err := ValidateChromeTrace([]byte(`{"traceEvents":[{"name":"a","ph":"Z","ts":1}]}`)); err == nil {
		t.Error("unknown phase accepted")
	}
	if _, err := ValidateChromeTrace([]byte(`{"traceEvents":[{"name":"a","ph":"X","ts":-4}]}`)); err == nil {
		t.Error("negative ts accepted")
	}
	n, err := ValidateChromeTrace([]byte(`{"traceEvents":[{"name":"a","ph":"M"},{"name":"b","ph":"X","ts":0,"dur":5}]}`))
	if err != nil || n != 2 {
		t.Errorf("valid trace rejected: n=%d err=%v", n, err)
	}
}
