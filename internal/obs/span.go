package obs

import (
	"fmt"
	"strconv"
	"strings"

	"hivempi/internal/perfmodel"
	"hivempi/internal/trace"
)

// SpanKind classifies a node of the span hierarchy.
type SpanKind string

// Span kinds, outermost first.
const (
	SpanQuery SpanKind = "query"
	SpanStage SpanKind = "stage"
	SpanTask  SpanKind = "task"
	SpanPhase SpanKind = "phase"
)

// Span is one interval of the reconstructed query timeline, in virtual
// seconds from query submit. Spans nest query -> stage -> task ->
// phase; annotations (engine, attempts, recovery, straggler delay,
// dependency edges) ride in Attrs.
type Span struct {
	Name   string
	Kind   SpanKind
	Start  float64
	End    float64
	Engine string
	Slot   int // simulated cluster slot (task spans only)

	Attrs    map[string]string
	Children []*Span
}

func (s *Span) attr(k, v string) {
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[k] = v
}

// Walk visits the span and its descendants depth-first.
func (s *Span) Walk(f func(*Span)) {
	if s == nil {
		return
	}
	f(s)
	for _, c := range s.Children {
		c.Walk(f)
	}
}

// BuildQuerySpans simulates the query trace under p and reconstructs
// its span hierarchy: the stage spans start at compile + the stage's
// critical-path offset (StartAt), task spans follow the simulated slot
// schedule, and each task carries read/compute+shuffle/write phase
// children derived from its segment boundaries. The QueryTiming the
// spans were derived from is returned alongside so callers can reuse
// the simulation.
func BuildQuerySpans(q *trace.Query, p *perfmodel.Params) (*Span, *perfmodel.QueryTiming) {
	sim := p.SimulateQuery(q)
	root := &Span{Name: queryLabel(q.Statement), Kind: SpanQuery, Start: 0, End: sim.Total}
	if q.Overlapped {
		root.attr("overlapped", "true")
	}
	for i, st := range q.Stages {
		if i >= len(sim.Stages) {
			break
		}
		root.Children = append(root.Children, buildStageSpan(st, sim.Stages[i], sim.Compile))
	}
	// Stage spans come first (consumers index them positionally); the
	// compile span rides at the end. A plan-cache hit skips parse/plan
	// entirely, so the span is absent for cached statements.
	if q.CachedPlan {
		root.attr("plan_cache", "hit")
	} else if sim.Compile > 0 {
		root.Children = append(root.Children, &Span{
			Name: "compile", Kind: SpanPhase, Start: 0, End: sim.Compile,
		})
	}
	return root, sim
}

func buildStageSpan(st *trace.Stage, sr *perfmodel.StageTiming, compile float64) *Span {
	base := compile + sr.StartAt
	ss := &Span{
		Name:   st.Name,
		Kind:   SpanStage,
		Start:  base,
		End:    base + sr.Total,
		Engine: st.Engine,
	}
	ss.attr("engine", st.Engine)
	if st.Vectorized {
		ss.attr("vectorized", "true")
		ss.attr("batches", strconv.FormatInt(stageBatches(st), 10))
	}
	if len(st.DependsOn) > 0 {
		ss.attr("depends_on", strings.Join(st.DependsOn, ","))
	}
	if st.Attempts > 1 {
		ss.attr("attempts", strconv.Itoa(st.Attempts))
	}
	if st.TaskRetries > 0 {
		ss.attr("task_retries", strconv.Itoa(st.TaskRetries))
	}
	if st.RetryBackoffSec > 0 {
		ss.attr("retry_backoff_sec", fmtSec(st.RetryBackoffSec))
	}
	if st.Relaunched {
		ss.attr("relaunched", "true")
	}
	if st.RereplicationSec > 0 {
		ss.attr("rereplication_sec", fmtSec(st.RereplicationSec))
	}
	for j, sp := range sr.Producers {
		var tt *trace.Task
		if j < len(st.Producers) {
			tt = st.Producers[j]
		}
		ss.Children = append(ss.Children, buildTaskSpan(base, sp, tt, true))
	}
	for j, sp := range sr.Consumers {
		var tt *trace.Task
		if j < len(st.Consumers) {
			tt = st.Consumers[j]
		}
		ss.Children = append(ss.Children, buildTaskSpan(base, sp, tt, false))
	}
	return ss
}

func buildTaskSpan(base float64, sp perfmodel.TaskSpan, tt *trace.Task, producer bool) *Span {
	ts := &Span{
		Name:  fmt.Sprintf("%s-%d", sp.Kind, sp.ID),
		Kind:  SpanTask,
		Start: base + sp.Start,
		End:   base + sp.End,
		Slot:  sp.Slot,
	}
	if tt != nil {
		if tt.Host != "" {
			ts.attr("host", tt.Host)
		}
		if tt.Attempts > 1 {
			ts.attr("attempts", strconv.Itoa(tt.Attempts))
		}
		if tt.Recovered {
			ts.attr("recovered", "true") // output replayed from a checkpoint
		}
		if tt.Speculative {
			ts.attr("speculative", "true")
		}
		if tt.StragglerDelaySec > 0 {
			ts.attr("straggler_sec", fmtSec(tt.StragglerDelaySec))
		}
	}
	readName, computeName := "read", "compute+shuffle"
	if !producer {
		readName, computeName = "shuffle+merge", "compute"
	}
	phase := func(name string, lo, hi float64) {
		if hi > lo {
			ts.Children = append(ts.Children, &Span{
				Name: name, Kind: SpanPhase, Start: base + lo, End: base + hi, Slot: sp.Slot,
			})
		}
	}
	phase(readName, sp.Start, sp.ReadEnd)
	phase(computeName, sp.ReadEnd, sp.ComputeEnd)
	phase("write", sp.ComputeEnd, sp.End)
	return ts
}

func queryLabel(stmt string) string {
	s := strings.Join(strings.Fields(stmt), " ")
	if len(s) > 80 {
		s = s[:77] + "..."
	}
	if s == "" {
		s = "(anonymous)"
	}
	return s
}

func fmtSec(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }
