package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"hivempi/internal/obs/comm"
	"hivempi/internal/perfmodel"
	"hivempi/internal/trace"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry ts+dur, "M" metadata events name processes
// and threads, and "s"/"f" pairs draw async flow arrows. Perfetto and
// chrome://tracing both open the result directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const usec = 1e6 // virtual seconds -> trace microseconds

// WriteChromeTrace renders the simulated timeline of the given query
// traces as Chrome trace-event JSON. Each query becomes one process;
// tid 0 is the stage row (with flow arrows along the stage DAG) and
// each cluster slot gets its own thread row carrying task spans with
// nested phase spans. Returns the number of events written.
func WriteChromeTrace(w io.Writer, queries []*trace.Query, p *perfmodel.Params) (int, error) {
	if p == nil {
		def := perfmodel.DefaultParams()
		p = &def
	}
	var events []chromeEvent
	flowID := 0
	for qi, q := range queries {
		pid := qi + 1
		root, _ := BuildQuerySpans(q, p)
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("Q%d: %s", pid, root.Name)},
		})
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "stages"},
		})

		stagesByName := make(map[string]*trace.Stage, len(q.Stages))
		for _, st := range q.Stages {
			stagesByName[st.Name] = st
		}

		lanes := newLaneTable(p.Cluster.SlotsPerNode)
		stageEnd := map[string]float64{} // stage name -> end ts (for flows)
		for _, ss := range root.Children {
			if ss.Kind != SpanStage {
				// The query-level compile span rides on the stage row but
				// keeps its own category.
				events = append(events, spanEvent(ss, string(ss.Kind), pid, 0))
				continue
			}
			events = append(events, spanEvent(ss, "stage", pid, 0))
			stageEnd[ss.Name] = ss.End
			events = append(events, commCounterEvents(stagesByName[ss.Name], ss, pid, p)...)

			// Flow arrows: one s->f pair per dependency edge.
			for _, dep := range splitDeps(ss.Attrs["depends_on"]) {
				from, ok := stageEnd[dep]
				if !ok {
					continue
				}
				flowID++
				events = append(events,
					chromeEvent{Name: "dep", Cat: "dag", Ph: "s", Ts: from * usec, Pid: pid, ID: flowID},
					chromeEvent{Name: "dep", Cat: "dag", Ph: "f", BP: "e", Ts: ss.Start * usec, Pid: pid, ID: flowID},
				)
			}

			for _, tsp := range ss.Children {
				tid := lanes.place(tsp.Slot, tsp.Start, tsp.End)
				events = append(events, spanEvent(tsp, "task", pid, tid))
				for _, ph := range tsp.Children {
					events = append(events, spanEvent(ph, "phase", pid, tid))
				}
			}
		}
		for tid, label := range lanes.names {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": label},
			})
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return 0, err
	}
	return len(events), nil
}

func spanEvent(s *Span, cat string, pid, tid int) chromeEvent {
	ev := chromeEvent{
		Name: s.Name, Cat: cat, Ph: "X",
		Ts: s.Start * usec, Dur: (s.End - s.Start) * usec,
		Pid: pid, Tid: tid,
	}
	if len(s.Attrs) > 0 {
		ev.Args = make(map[string]any, len(s.Attrs))
		for k, v := range s.Attrs {
			ev.Args[k] = v
		}
	}
	return ev
}

// commCounterTracks bounds the per-consumer series one counter event
// carries (wide shuffles collapse their tail into one "rest" series).
const commCounterTracks = 16

// commCounterEvents renders a stage's communication picture as Chrome
// counter ("C") events: one track of per-consumer shuffle bytes and one
// of the partition-skew ratio, stepping up at stage start and back to
// zero at stage end so the counters read as per-stage blocks.
func commCounterEvents(st *trace.Stage, ss *Span, pid int, p *perfmodel.Params) []chromeEvent {
	sc := comm.AnalyzeStage(st, p)
	if sc == nil || sc.PartitionSkew == nil {
		return nil
	}
	cols := make(map[string]any, commCounterTracks+1)
	zeros := make(map[string]any, commCounterTracks+1)
	var rest int64
	for a, b := range sc.ColBytes {
		if a < commCounterTracks {
			key := fmt.Sprintf("a%d", a)
			cols[key] = b
			zeros[key] = 0
		} else {
			rest += b
		}
	}
	if rest > 0 {
		cols["rest"] = rest
		zeros["rest"] = 0
	}
	name := "comm bytes " + ss.Name
	skewName := "comm skew " + ss.Name
	ratio := sc.PartitionSkew.MaxMeanRatio
	return []chromeEvent{
		{Name: name, Cat: "comm", Ph: "C", Ts: ss.Start * usec, Pid: pid, Args: cols},
		{Name: name, Cat: "comm", Ph: "C", Ts: ss.End * usec, Pid: pid, Args: zeros},
		{Name: skewName, Cat: "comm", Ph: "C", Ts: ss.Start * usec, Pid: pid,
			Args: map[string]any{"max_mean": ratio}},
		{Name: skewName, Cat: "comm", Ph: "C", Ts: ss.End * usec, Pid: pid,
			Args: map[string]any{"max_mean": 0}},
	}
}

func splitDeps(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for start := 0; start <= len(s); {
		end := start
		for end < len(s) && s[end] != ',' {
			end++
		}
		if end > start {
			out = append(out, s[start:end])
		}
		start = end + 1
	}
	return out
}

// laneTable assigns task spans to thread rows. The base row for a task
// is its simulated cluster slot (tid 1+slot: one row per node/slot),
// but concurrent DAG stages schedule their slots independently, so two
// stages can place partially-overlapping tasks on the same slot index —
// invalid for "X" events on one tid. Overlapping tasks overflow to a
// parallel lane (tid + k*laneStride) labelled with the same slot.
type laneTable struct {
	slotsPerNode int
	busy         map[int][][2]float64 // tid -> occupied intervals
	names        map[int]string       // tid -> thread_name
}

const laneStride = 1 << 10

func newLaneTable(slotsPerNode int) *laneTable {
	if slotsPerNode < 1 {
		slotsPerNode = 1
	}
	return &laneTable{
		slotsPerNode: slotsPerNode,
		busy:         make(map[int][][2]float64),
		names:        make(map[int]string),
	}
}

func (l *laneTable) place(slot int, start, end float64) int {
	base := 1 + slot
	for k := 0; ; k++ {
		tid := base + k*laneStride
		if l.fits(tid, start, end) {
			l.busy[tid] = append(l.busy[tid], [2]float64{start, end})
			if _, ok := l.names[tid]; !ok {
				label := fmt.Sprintf("node%d/slot%d", slot/l.slotsPerNode, slot%l.slotsPerNode)
				if k > 0 {
					label = fmt.Sprintf("%s (+%d)", label, k)
				}
				l.names[tid] = label
			}
			return tid
		}
	}
}

func (l *laneTable) fits(tid int, start, end float64) bool {
	for _, iv := range l.busy[tid] {
		if start < iv[1] && iv[0] < end {
			return false
		}
	}
	return true
}

// ValidateChromeTrace checks that data parses as trace-event JSON with
// a non-empty traceEvents array whose entries all carry a name, a known
// phase, and non-negative timing. Returns the event count.
func ValidateChromeTrace(data []byte) (int, error) {
	var t struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  float64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return 0, fmt.Errorf("chrome trace: %w", err)
	}
	if len(t.TraceEvents) == 0 {
		return 0, fmt.Errorf("chrome trace: no events")
	}
	for i, ev := range t.TraceEvents {
		if ev.Name == "" {
			return 0, fmt.Errorf("chrome trace: event %d has no name", i)
		}
		switch ev.Ph {
		case "X", "M", "s", "f", "b", "e", "i", "C":
		default:
			return 0, fmt.Errorf("chrome trace: event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Ph != "M" && ev.Ts == nil {
			return 0, fmt.Errorf("chrome trace: event %d (%s) has no ts", i, ev.Name)
		}
		if ev.Ts != nil && *ev.Ts < 0 {
			return 0, fmt.Errorf("chrome trace: event %d (%s) has negative ts", i, ev.Name)
		}
		if ev.Ph == "X" && ev.Dur < 0 {
			return 0, fmt.Errorf("chrome trace: event %d (%s) has negative dur", i, ev.Name)
		}
	}
	return len(t.TraceEvents), nil
}
