// Package obs is the query-lifecycle observability plane: a lock-cheap
// counters/gauges registry threaded through driver, scheduler, engines
// and the storage substrate; hierarchical virtual-time spans (query ->
// stage -> task -> phase) reconstructed from execution traces and the
// perfmodel's cluster timing; and a Chrome trace-event exporter that
// renders the simulated DAG timeline for Perfetto.
//
// The paper argues from visibility — per-task collect sequences
// (Fig. 2), send timelines (Fig. 6) and dstat resource series
// (Fig. 13) are how it attributes the DataMPI wins to startup weight,
// shuffle overlap and spill avoidance. This package is the repro's
// equivalent window, and the harness later perf work is validated
// against.
//
// The registry itself lives in the leaf package internal/metrics (so
// low-level layers can link it without pulling in perfmodel); obs
// re-exports it via type aliases, and driver-level code uses only the
// obs names.
package obs

import (
	"hivempi/internal/metrics"
	"hivempi/internal/trace"
)

// Registry types, re-exported from internal/metrics. The aliases make
// obs.Registry and metrics.Registry the same type, so a registry built
// here threads directly into dfs.SetMetrics, datampi.Config and the
// engines.
type (
	Counter  = metrics.Counter
	Gauge    = metrics.Gauge
	Registry = metrics.Registry
)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return metrics.NewRegistry() }

// FoldStage accumulates one completed stage trace into the registry
// (see metrics.FoldStage for the ownership rules).
func FoldStage(r *Registry, st *trace.Stage) { metrics.FoldStage(r, st) }

// Canonical metric names, re-exported from internal/metrics.
const (
	CtrShuffleOutBytes  = metrics.CtrShuffleOutBytes
	CtrShuffleOutPairs  = metrics.CtrShuffleOutPairs
	CtrSpillCount       = metrics.CtrSpillCount
	CtrSpillBytes       = metrics.CtrSpillBytes
	CtrCombineInPairs   = metrics.CtrCombineInPairs
	CtrCombineOutPairs  = metrics.CtrCombineOutPairs
	CtrTaskRetries      = metrics.CtrTaskRetries
	CtrTasksRecovered   = metrics.CtrTasksRecovered
	CtrTasksSpeculative = metrics.CtrTasksSpeculative
	CtrStageRetries     = metrics.CtrStageRetries
	CtrTasksPrefix      = metrics.CtrTasksPrefix

	CtrCheckpointBytes   = metrics.CtrCheckpointBytes
	CtrCheckpointCommits = metrics.CtrCheckpointCommits
	CtrCheckpointReplays = metrics.CtrCheckpointReplays

	CtrMPISendFlushes    = metrics.CtrMPISendFlushes
	CtrMPIBlockingRounds = metrics.CtrMPIBlockingRounds
	CtrMPISpillPairs     = metrics.CtrMPISpillPairs

	CtrDFSReadBytes     = metrics.CtrDFSReadBytes
	CtrDFSWriteBytes    = metrics.CtrDFSWriteBytes
	CtrDFSMemReadBytes  = metrics.CtrDFSMemReadBytes
	CtrDFSMemWriteBytes = metrics.CtrDFSMemWriteBytes

	GaugeIMUsedBytes = metrics.GaugeIMUsedBytes
	GaugeIMHWMBytes  = metrics.GaugeIMHWMBytes
	GaugeIMAdmitted  = metrics.GaugeIMAdmitted
	GaugeIMRejected  = metrics.GaugeIMRejected
	GaugeIMFiles     = metrics.GaugeIMFiles
)
